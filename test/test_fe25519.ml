(* The fixed-limb field vs the generic Nat oracle: every operation is
   cross-checked on random field elements. *)

open Algorand_crypto

let t name f = Alcotest.test_case name `Quick f
let qt ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let p = Ed25519.Fp.p

(* Random field elements via hashing an integer seed. *)
let gen_fe : Nat.t QCheck2.Gen.t =
  QCheck2.Gen.(
    map
      (fun (i, full) ->
        let n = Nat.of_bytes_le (Sha256.digest (string_of_int i)) in
        if full then Nat.rem n p
        else Nat.of_int (abs i land 0xFFFF) (* small values hit carry edges *))
      (pair int bool))

let to_fe = Fe25519.of_nat
let eq_nat msg a b = Alcotest.(check string) msg (Nat.to_decimal a) (Nat.to_decimal b)

let roundtrip () =
  List.iter
    (fun n ->
      let v = Nat.rem n p in
      eq_nat "roundtrip" v (Fe25519.to_nat (to_fe v)))
    [
      Nat.zero;
      Nat.one;
      Nat.of_int 123456789;
      Nat.sub p Nat.one;
      Nat.sub p (Nat.of_int 19);
      Nat.shift_left Nat.one 254;
    ];
  (* of_nat reduces mod p. *)
  eq_nat "reduces" Nat.one (Fe25519.to_nat (to_fe (Nat.add p Nat.one)))

let constants () =
  eq_nat "zero" Nat.zero (Fe25519.to_nat (Fe25519.zero ()));
  eq_nat "one" Nat.one (Fe25519.to_nat (Fe25519.one ()));
  eq_nat "of_int" (Nat.of_int 121665) (Fe25519.to_nat (Fe25519.of_int 121665));
  Alcotest.(check bool) "is_zero" true (Fe25519.is_zero (Fe25519.zero ()));
  Alcotest.(check bool) "one not zero" false (Fe25519.is_zero (Fe25519.one ()))

let edge_values () =
  (* p-1 squared, (p-1) + 1 = 0, etc. *)
  let pm1 = to_fe (Nat.sub p Nat.one) in
  eq_nat "(p-1)+1 = 0" Nat.zero (Fe25519.to_nat (Fe25519.add pm1 (Fe25519.one ())));
  eq_nat "(p-1)^2 = 1" Nat.one (Fe25519.to_nat (Fe25519.sqr pm1));
  eq_nat "0 - 1 = p-1" (Nat.sub p Nat.one)
    (Fe25519.to_nat (Fe25519.sub (Fe25519.zero ()) (Fe25519.one ())));
  eq_nat "neg 0 = 0" Nat.zero (Fe25519.to_nat (Fe25519.neg (Fe25519.zero ())))

let inversion_and_pow () =
  let x = to_fe (Nat.of_int 987654321) in
  eq_nat "x * x^-1 = 1" Nat.one (Fe25519.to_nat (Fe25519.mul x (Fe25519.inv x)));
  (* Fermat via pow. *)
  let y = to_fe (Nat.of_int 31337) in
  eq_nat "y^(p-1) = 1" Nat.one (Fe25519.to_nat (Fe25519.pow y (Nat.sub p Nat.one)))

let sqrt_m1_and_parity () =
  (* sqrt(-1)^2 = -1, and parity is the canonical low bit. *)
  let m1 = Fe25519.neg (Fe25519.one ()) in
  Alcotest.(check bool) "sqrt_m1^2 = -1" true
    (Fe25519.equal (Fe25519.sqr Fe25519.sqrt_m1) m1);
  Alcotest.(check int) "parity 0" 0 (Fe25519.parity (Fe25519.zero ()));
  Alcotest.(check int) "parity 1" 1 (Fe25519.parity (Fe25519.one ()));
  Alcotest.(check int) "parity p-1" 0 (Fe25519.parity (to_fe (Nat.sub p Nat.one)))

let sqrt_ratio_cases () =
  (* For random u, v: either a root of u/v exists and checks, or
     u * v^-1 is a non-residue (cross-checked against Fp.sqrt). *)
  let d = ref 0 in
  for k = 1 to 200 do
    let u = Nat.rem (Nat.of_bytes_le (Sha256.digest ("sru" ^ string_of_int k))) p in
    let v = Nat.rem (Nat.of_bytes_le (Sha256.digest ("srv" ^ string_of_int k))) p in
    if not (Nat.is_zero v) then begin
      let fu = to_fe u and fv = to_fe v in
      match Fe25519.sqrt_ratio ~u:fu ~v:fv with
      | Some x ->
        incr d;
        Alcotest.(check bool) "v*x^2 = u" true
          (Fe25519.equal (Fe25519.mul fv (Fe25519.sqr x)) fu)
      | None ->
        let ratio = Ed25519.Fp.mul u (Ed25519.Fp.inv v) in
        Alcotest.(check bool) "oracle agrees: no root" true
          (Ed25519.Fp.sqrt ratio = None)
    end
  done;
  (* About half the ratios are residues. *)
  Alcotest.(check bool) "some roots found" true (!d > 60 && !d < 140);
  (* u = 0 has the root 0. *)
  match Fe25519.sqrt_ratio ~u:(Fe25519.zero ()) ~v:(Fe25519.one ()) with
  | Some x -> Alcotest.(check bool) "sqrt(0) = 0" true (Fe25519.is_zero x)
  | None -> Alcotest.fail "sqrt_ratio 0/1 must exist"

let inv_many_matches () =
  let xs =
    Array.init 23 (fun i ->
        if i mod 7 = 3 then Fe25519.zero ()
        else to_fe (Nat.of_bytes_le (Sha256.digest ("invm" ^ string_of_int i))))
  in
  let invs = Fe25519.inv_many xs in
  Array.iteri
    (fun i x ->
      if Fe25519.is_zero x then
        Alcotest.(check bool) "zero maps to zero" true (Fe25519.is_zero invs.(i))
      else
        Alcotest.(check bool) "matches inv" true (Fe25519.equal invs.(i) (Fe25519.inv x)))
    xs;
  Alcotest.(check int) "empty" 0 (Array.length (Fe25519.inv_many [||]))

let suite =
  [
    ( "fe25519",
      [
        t "nat roundtrip" roundtrip;
        t "sqrt_m1 and parity" sqrt_m1_and_parity;
        t "sqrt_ratio" sqrt_ratio_cases;
        t "inv_many" inv_many_matches;
        t "constants" constants;
        t "edge values" edge_values;
        t "inversion and pow" inversion_and_pow;
        qt "add matches oracle" QCheck2.Gen.(pair gen_fe gen_fe) (fun (a, b) ->
            Nat.equal
              (Fe25519.to_nat (Fe25519.add (to_fe a) (to_fe b)))
              (Ed25519.Fp.add a b));
        qt "sub matches oracle" QCheck2.Gen.(pair gen_fe gen_fe) (fun (a, b) ->
            Nat.equal
              (Fe25519.to_nat (Fe25519.sub (to_fe a) (to_fe b)))
              (Ed25519.Fp.sub (Nat.rem a p) (Nat.rem b p)));
        qt "mul matches oracle" QCheck2.Gen.(pair gen_fe gen_fe) (fun (a, b) ->
            Nat.equal
              (Fe25519.to_nat (Fe25519.mul (to_fe a) (to_fe b)))
              (Ed25519.Fp.mul a b));
        qt "sqr matches mul" gen_fe (fun a ->
            Fe25519.equal (Fe25519.sqr (to_fe a)) (Fe25519.mul (to_fe a) (to_fe a)));
        qt "neg matches oracle" gen_fe (fun a ->
            Nat.equal (Fe25519.to_nat (Fe25519.neg (to_fe a))) (Ed25519.Fp.neg (Nat.rem a p)));
        qt "inv matches oracle" gen_fe (fun a ->
            Nat.is_zero (Nat.rem a p)
            || Nat.equal (Fe25519.to_nat (Fe25519.inv (to_fe a))) (Ed25519.Fp.inv a));
        qt "distributivity" QCheck2.Gen.(triple gen_fe gen_fe gen_fe) (fun (a, b, c) ->
            let a = to_fe a and b = to_fe b and c = to_fe c in
            Fe25519.equal
              (Fe25519.mul a (Fe25519.add b c))
              (Fe25519.add (Fe25519.mul a b) (Fe25519.mul a c)));
      ] );
  ]
