(* Network simulator: topology latencies, bandwidth serialization,
   adversaries, and gossip dissemination/dedup. *)

open Algorand_sim
open Algorand_netsim

let t name f = Alcotest.test_case name `Quick f

let topology_properties () =
  let rng = Rng.create 1 in
  let topo = Topology.create ~nodes:30 rng in
  Alcotest.(check int) "nodes" 30 (Topology.nodes topo);
  for _ = 1 to 100 do
    let src = Rng.int rng 30 and dst = Rng.int rng 30 in
    if src <> dst then begin
      let l = Topology.latency topo ~src ~dst in
      (* Positive, below a second even across the planet. *)
      if l <= 0.0 || l > 0.5 then Alcotest.failf "implausible latency %f" l
    end
  done;
  (* Same city -> small; antipodal cities -> large. Find two nodes in
     the same city if any. *)
  let name0 = Topology.city_of topo 0 in
  Alcotest.(check bool) "city name nonempty" true (String.length name0 > 0)

let bandwidth_serialization () =
  (* Two 1 MB messages from the same sender must serialize: the second
     arrives ~0.4s after the first at 20 Mbit/s. *)
  let engine = Engine.create () in
  let topo = Topology.create ~jitter_frac:0.0 ~nodes:2 (Rng.create 2) in
  let net = Network.create ~bandwidth_bps:20e6 ~engine ~topology:topo () in
  let arrivals = ref [] in
  Network.set_handler net 1 (fun ~src:_ ~bytes:_ tag ->
      arrivals := (tag, Engine.now engine) :: !arrivals);
  Network.send net ~src:0 ~dst:1 ~bytes:1_000_000 "first";
  Network.send net ~src:0 ~dst:1 ~bytes:1_000_000 "second";
  ignore (Engine.run engine ());
  match List.rev !arrivals with
  | [ ("first", t1); ("second", t2) ] ->
    let gap = t2 -. t1 in
    Alcotest.(check bool) (Printf.sprintf "gap %.3f ~ 0.4s" gap) true
      (gap > 0.35 && gap < 0.45);
    Alcotest.(check bool) "first took at least tx time" true (t1 >= 0.4)
  | _ -> Alcotest.fail "expected two arrivals in order"

let self_send_dropped () =
  let engine = Engine.create () in
  let topo = Topology.create ~nodes:2 (Rng.create 3) in
  let net = Network.create ~engine ~topology:topo () in
  let got = ref 0 in
  Network.set_handler net 0 (fun ~src:_ ~bytes:_ () -> incr got);
  Network.send net ~src:0 ~dst:0 ~bytes:10 ();
  ignore (Engine.run engine ());
  Alcotest.(check int) "no self delivery" 0 !got

let adversary_partition () =
  let engine = Engine.create () in
  let topo = Topology.create ~nodes:4 (Rng.create 4) in
  let net = Network.create ~engine ~topology:topo () in
  let received = Array.make 4 0 in
  for i = 0 to 3 do
    Network.set_handler net i (fun ~src:_ ~bytes:_ () -> received.(i) <- received.(i) + 1)
  done;
  (* Partition {0,1} vs {2,3} until t=100. *)
  Network.set_adversary net
    (Adversary.partition ~group_of:(fun i -> i / 2) ~until:100.0);
  Network.send net ~src:0 ~dst:1 ~bytes:10 ();
  Network.send net ~src:0 ~dst:2 ~bytes:10 ();
  ignore (Engine.run engine ());
  Alcotest.(check int) "same side delivered" 1 received.(1);
  Alcotest.(check int) "cross side dropped" 0 received.(2)

let adversary_hold_until () =
  let engine = Engine.create () in
  let topo = Topology.create ~nodes:2 (Rng.create 5) in
  let net = Network.create ~engine ~topology:topo () in
  let at = ref 0.0 in
  Network.set_handler net 1 (fun ~src:_ ~bytes:_ () -> at := Engine.now engine);
  Network.set_adversary net (Adversary.hold_until ~release:50.0);
  Network.send net ~src:0 ~dst:1 ~bytes:10 ();
  ignore (Engine.run engine ());
  Alcotest.(check bool) "held until release" true (!at >= 50.0)

let gossip_reaches_everyone () =
  let n = 40 in
  let engine = Engine.create () in
  let topo = Topology.create ~nodes:n (Rng.create 6) in
  let net = Network.create ~engine ~topology:topo () in
  let got = Array.make n false in
  let config : string Gossip.config =
    {
      msg_id = (fun m -> m);
      validate = (fun _ _ -> true);
      deliver = (fun node ~src:_ _ -> got.(node) <- true);
      fanout = 4;
      point_to_point = (fun _ -> false);
    }
  in
  let g =
    Gossip.create ~net ~rng:(Rng.create 7) ~weights:(Array.make n 1.0) config
  in
  Gossip.broadcast g ~node:0 ~bytes:100 "hello";
  ignore (Engine.run engine ());
  let reached = Array.fold_left (fun a b -> if b then a + 1 else a) 0 got in
  (* Random 4-regular-out graphs on 40 nodes are connected with
     overwhelming probability. *)
  Alcotest.(check bool) (Printf.sprintf "reached %d/40" reached) true (reached >= 38);
  (* Dedup: relays dropped duplicates rather than looping forever. *)
  Alcotest.(check bool) "duplicates dropped" true (Gossip.duplicates_dropped g > 0)

let gossip_invalid_not_relayed () =
  let n = 20 in
  let engine = Engine.create () in
  let topo = Topology.create ~nodes:n (Rng.create 8) in
  let net = Network.create ~engine ~topology:topo () in
  let got = Array.make n false in
  let config : string Gossip.config =
    {
      msg_id = (fun m -> m);
      (* Node 0's direct peers refuse to relay the "bad" message. *)
      validate = (fun _ m -> m <> "bad");
      deliver = (fun node ~src:_ _ -> got.(node) <- true);
      fanout = 4;
      point_to_point = (fun _ -> false);
    }
  in
  let g = Gossip.create ~net ~rng:(Rng.create 9) ~weights:(Array.make n 1.0) config in
  Gossip.broadcast g ~node:0 ~bytes:50 "bad";
  ignore (Engine.run engine ());
  let reached = Array.fold_left (fun a b -> if b then a + 1 else a) 0 got in
  Alcotest.(check int) "no one accepted it" 0 reached;
  Alcotest.(check bool) "invalid counted" true (Gossip.invalid_dropped g > 0)

let gossip_direct_send () =
  let engine = Engine.create () in
  let topo = Topology.create ~nodes:3 (Rng.create 10) in
  let net = Network.create ~engine ~topology:topo () in
  let got = ref "" in
  let config : string Gossip.config =
    {
      msg_id = (fun m -> m);
      validate = (fun _ _ -> true);
      deliver = (fun node ~src:_ m -> if node = 2 then got := m);
      fanout = 2;
      point_to_point = (fun _ -> false);
    }
  in
  let g = Gossip.create ~net ~rng:(Rng.create 11) ~weights:(Array.make 3 1.0) config in
  Gossip.send_to g ~src:0 ~dst:2 ~bytes:10 "direct";
  ignore (Engine.run engine ());
  Alcotest.(check string) "delivered" "direct" !got

let adversary_compose () =
  let engine = Engine.create () in
  let topo = Topology.create ~nodes:3 (Rng.create 12) in
  let net = Network.create ~engine ~topology:topo () in
  let got = Array.make 3 0 in
  for i = 0 to 2 do
    Network.set_handler net i (fun ~src:_ ~bytes:_ () -> got.(i) <- got.(i) + 1)
  done;
  (* Compose: partition {0} vs {1,2} forever, plus extra delay. The
     partition verdict must win on cross-group links. *)
  Network.set_adversary net
    (Adversary.compose
       [
         Adversary.partition ~group_of:(fun i -> if i = 0 then 0 else 1) ~until:1e9;
         Adversary.uniform_delay ~extra:1.0;
       ]);
  Network.send net ~src:0 ~dst:1 ~bytes:8 ();
  Network.send net ~src:1 ~dst:2 ~bytes:8 ();
  ignore (Engine.run engine ());
  Alcotest.(check int) "cross-group dropped" 0 got.(1);
  Alcotest.(check int) "same-group delayed but delivered" 1 got.(2);
  Alcotest.(check bool) "delay applied" true (Engine.now engine >= 1.0)

let adversary_compose_ordering () =
  (* compose's contract is positional: the FIRST non-Deliver verdict
     wins, later adversaries are never consulted once one objects. *)
  let deliver : unit Network.adversary = fun ~now:_ ~src:_ ~dst:_ _ -> Network.Deliver in
  let drop : unit Network.adversary = fun ~now:_ ~src:_ ~dst:_ _ -> Network.Drop in
  let delay d : unit Network.adversary = fun ~now:_ ~src:_ ~dst:_ _ -> Network.Delay d in
  let verdict advs = Adversary.compose advs ~now:0.0 ~src:0 ~dst:1 () in
  let check_verdict name expected got =
    Alcotest.(check bool) name true (got = expected)
  in
  check_verdict "empty list delivers" Network.Deliver (verdict []);
  check_verdict "all-deliver delivers" Network.Deliver (verdict [ deliver; deliver ]);
  check_verdict "drop before delay wins" Network.Drop (verdict [ drop; delay 1.0 ]);
  check_verdict "delay before drop wins" (Network.Delay 1.0) (verdict [ delay 1.0; drop ]);
  check_verdict "deliver passes through to drop" Network.Drop
    (verdict [ deliver; drop; delay 2.0 ]);
  check_verdict "first delay wins over second" (Network.Delay 1.0)
    (verdict [ deliver; delay 1.0; delay 2.0 ]);
  (* A later adversary must not even be consulted after a verdict. *)
  let consulted = ref false in
  let spy : unit Network.adversary =
   fun ~now:_ ~src:_ ~dst:_ _ ->
    consulted := true;
    Network.Deliver
  in
  check_verdict "verdict short-circuits" Network.Drop (verdict [ drop; spy ]);
  Alcotest.(check bool) "later adversary not consulted" false !consulted

let adversary_reorder_bounded () =
  (* reorder: every verdict is a Delay drawn from [0, window) - lossless
     and bounded, and deterministic given the rng stream. *)
  let sample seed =
    let adv = Adversary.reorder ~rng:(Rng.create seed) ~window:2.0 in
    List.init 50 (fun i ->
        match adv ~now:0.0 ~src:0 ~dst:1 i with
        | Network.Delay d -> d
        | Network.Deliver | Network.Drop | Network.Duplicate _ | Network.Tamper _ ->
          Alcotest.fail "reorder must only delay")
  in
  let ds = sample 21 in
  List.iter
    (fun d ->
      Alcotest.(check bool) (Printf.sprintf "delay %f within window" d) true
        (d >= 0.0 && d < 2.0))
    ds;
  Alcotest.(check bool) "delays vary" true
    (List.sort_uniq compare ds |> List.length > 10);
  Alcotest.(check (list (float 1e-12))) "deterministic per seed" ds (sample 21)

let adversary_uniform_loss () =
  let engine = Engine.create () in
  let topo = Topology.create ~nodes:2 (Rng.create 13) in
  let net = Network.create ~engine ~topology:topo () in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ ~bytes:_ () -> incr got);
  Network.set_adversary net (Adversary.uniform_loss ~rng:(Rng.create 14) ~p:0.5);
  for _ = 1 to 400 do
    Network.send net ~src:0 ~dst:1 ~bytes:8 ()
  done;
  ignore (Engine.run engine ());
  Alcotest.(check bool) (Printf.sprintf "about half delivered (%d/400)" !got) true
    (!got > 140 && !got < 260)

let gossip_redraw_keeps_connectivity () =
  let n = 30 in
  let engine = Engine.create () in
  let topo = Topology.create ~nodes:n (Rng.create 15) in
  let net = Network.create ~engine ~topology:topo () in
  let got = Array.make n false in
  let config : string Gossip.config =
    {
      msg_id = (fun m -> m);
      validate = (fun _ _ -> true);
      deliver = (fun node ~src:_ _ -> got.(node) <- true);
      fanout = 4;
      point_to_point = (fun _ -> false);
    }
  in
  let weights = Array.make n 1.0 in
  let g = Gossip.create ~net ~rng:(Rng.create 16) ~weights config in
  Gossip.redraw g ~weights;
  Gossip.redraw g ~weights;
  Gossip.broadcast g ~node:3 ~bytes:32 "after-redraw";
  ignore (Engine.run engine ());
  let reached = Array.fold_left (fun a b -> if b then a + 1 else a) 0 got in
  Alcotest.(check bool) (Printf.sprintf "still connected (%d/30)" reached) true
    (reached >= 28)

let gossip_bidirectional_degree () =
  (* Symmetrized links: mean degree ~ 2 * fanout, minimum >= fanout. *)
  let n = 40 in
  let engine = Engine.create () in
  let topo = Topology.create ~nodes:n (Rng.create 17) in
  let net = Network.create ~engine ~topology:topo () in
  let config : string Gossip.config =
    {
      msg_id = (fun m -> m);
      validate = (fun _ _ -> true);
      deliver = (fun _ ~src:_ _ -> ());
      fanout = 4;
      point_to_point = (fun _ -> false);
    }
  in
  let g = Gossip.create ~net ~rng:(Rng.create 18) ~weights:(Array.make n 1.0) config in
  let degrees = List.init n (fun i -> List.length (Gossip.peers g i)) in
  let total = List.fold_left ( + ) 0 degrees in
  List.iteri
    (fun i d ->
      Alcotest.(check bool) (Printf.sprintf "node %d degree %d >= 4" i d) true (d >= 4))
    degrees;
  let mean = float_of_int total /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "mean degree %.1f near 8" mean) true
    (mean > 6.0 && mean < 10.0)

let adversary_duplicate () =
  (* duplicate delivers two copies with probability p: expect about
     400 * 1.5 arrivals at p = 0.5. *)
  let engine = Engine.create () in
  let topo = Topology.create ~nodes:2 (Rng.create 22) in
  let net = Network.create ~engine ~topology:topo () in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ ~bytes:_ () -> incr got);
  Network.set_adversary net
    (Adversary.duplicate ~rng:(Rng.create 23) ~p:0.5 ~window:0.1);
  for _ = 1 to 400 do
    Network.send net ~src:0 ~dst:1 ~bytes:8 ()
  done;
  ignore (Engine.run engine ());
  Alcotest.(check bool) (Printf.sprintf "about 1.5x delivered (%d/400)" !got) true
    (!got > 520 && !got < 680)

let gossip_at_most_once_under_dup_loss () =
  (* Relay dedup (section 8.4) must hold when the network both loses
     and duplicates packets: every node sees each message id at most
     once, and validation is re-run only on first receipt. *)
  let n = 30 in
  let engine = Engine.create () in
  let topo = Topology.create ~nodes:n (Rng.create 24) in
  let net = Network.create ~engine ~topology:topo () in
  Network.set_adversary net
    (Adversary.compose
       [
         Adversary.uniform_loss ~rng:(Rng.create 25) ~p:0.15;
         Adversary.duplicate ~rng:(Rng.create 26) ~p:0.4 ~window:0.2;
       ]);
  let deliveries = Array.make n 0 in
  let validations = Array.make n 0 in
  let config : string Gossip.config =
    {
      msg_id = (fun m -> m);
      validate =
        (fun node _ ->
          validations.(node) <- validations.(node) + 1;
          true);
      deliver = (fun node ~src:_ _ -> deliveries.(node) <- deliveries.(node) + 1);
      fanout = 4;
      point_to_point = (fun _ -> false);
    }
  in
  let g = Gossip.create ~net ~rng:(Rng.create 27) ~weights:(Array.make n 1.0) config in
  Gossip.broadcast g ~node:0 ~bytes:64 "payload";
  ignore (Engine.run engine ());
  Array.iteri
    (fun i d ->
      Alcotest.(check bool) (Printf.sprintf "node %d delivered %d <= 1" i d) true (d <= 1);
      Alcotest.(check bool)
        (Printf.sprintf "node %d validated once per accept (%d)" i validations.(i))
        true
        (validations.(i) <= 1 || d <= 1))
    deliveries;
  let reached = Array.fold_left ( + ) 0 deliveries in
  Alcotest.(check bool) (Printf.sprintf "gossip still spreads (%d/30)" reached) true
    (reached >= 20);
  Alcotest.(check bool) "duplicates were dropped by dedup" true
    (Gossip.duplicates_dropped g > 0)

let network_down_node_unreachable () =
  let engine = Engine.create () in
  let topo = Topology.create ~nodes:2 (Rng.create 28) in
  let net = Network.create ~engine ~topology:topo () in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ ~bytes:_ () -> incr got);
  (* Down before send: dropped at the source. *)
  Network.set_up net 1 false;
  Alcotest.(check bool) "is_up reflects state" false (Network.is_up net 1);
  Network.send net ~src:0 ~dst:1 ~bytes:8 ();
  ignore (Engine.run engine ());
  Alcotest.(check int) "down dst got nothing" 0 !got;
  (* Crash while a message is in flight: it is lost, not queued. *)
  Network.set_up net 1 true;
  Network.send net ~src:0 ~dst:1 ~bytes:8 ();
  Network.set_up net 1 false;
  ignore (Engine.run engine ());
  Alcotest.(check int) "in-flight message lost at crash" 0 !got;
  (* Back up: new traffic flows. *)
  Network.set_up net 1 true;
  Network.send net ~src:0 ~dst:1 ~bytes:8 ();
  ignore (Engine.run engine ());
  Alcotest.(check int) "delivered after restart" 1 !got;
  (* A down *sender* cannot send either. *)
  Network.set_up net 0 false;
  Network.send net ~src:0 ~dst:1 ~bytes:8 ();
  ignore (Engine.run engine ());
  Alcotest.(check int) "down src sends nothing" 1 !got

let gossip_relink_rejoins () =
  let n = 20 in
  let engine = Engine.create () in
  let topo = Topology.create ~nodes:n (Rng.create 29) in
  let net = Network.create ~engine ~topology:topo () in
  let got = Array.make n 0 in
  let config : string Gossip.config =
    {
      msg_id = (fun m -> m);
      validate = (fun _ _ -> true);
      deliver = (fun node ~src:_ _ -> got.(node) <- got.(node) + 1);
      fanout = 4;
      point_to_point = (fun _ -> false);
    }
  in
  let weights = Array.make n 1.0 in
  let g = Gossip.create ~net ~rng:(Rng.create 30) ~weights config in
  (* Simulate a restart of node 5: relink clears its dedup memory and
     gives it fresh bidirectional links. *)
  Gossip.relink g ~node:5 ~weights;
  Alcotest.(check bool) "rejoiner has peers" true
    (List.length (Gossip.peers g 5) >= 4);
  (* Its peers link back, so relays reach it. *)
  let back =
    List.exists (fun p -> List.mem 5 (Gossip.peers g p)) (Gossip.peers g 5)
  in
  Alcotest.(check bool) "peers link back" true back;
  Gossip.broadcast g ~node:0 ~bytes:32 "post-relink";
  ignore (Engine.run engine ());
  Alcotest.(check bool) "rejoiner hears broadcasts" true (got.(5) = 1);
  (* Relink cleared the seen table: the same id, sent directly, is
     accepted again (the restarted process genuinely forgot it) - and
     deduped again after that first re-receipt. *)
  Gossip.relink g ~node:5 ~weights;
  Gossip.send_to g ~src:0 ~dst:5 ~bytes:32 "post-relink";
  Gossip.send_to g ~src:0 ~dst:5 ~bytes:32 "post-relink";
  ignore (Engine.run engine ());
  Alcotest.(check int) "forgotten id re-delivered once" 2 got.(5)

let gossip_point_to_point_not_relayed () =
  let n = 20 in
  let engine = Engine.create () in
  let topo = Topology.create ~nodes:n (Rng.create 31) in
  let net = Network.create ~engine ~topology:topo () in
  let got = Array.make n 0 in
  let config : string Gossip.config =
    {
      msg_id = (fun m -> m);
      validate = (fun _ _ -> true);
      deliver = (fun node ~src:_ _ -> got.(node) <- got.(node) + 1);
      fanout = 4;
      point_to_point = (fun m -> String.length m > 0 && m.[0] = 'p');
    }
  in
  let g = Gossip.create ~net ~rng:(Rng.create 32) ~weights:(Array.make n 1.0) config in
  (* A point-to-point message delivered to a direct peer must stop
     there, not flood the overlay. *)
  let dst = List.hd (Gossip.peers g 0) in
  Gossip.send_to g ~src:0 ~dst ~bytes:16 "p2p-request";
  ignore (Engine.run engine ());
  Alcotest.(check int) "only the addressee got it" 1 (Array.fold_left ( + ) 0 got);
  Alcotest.(check int) "and it was the addressee" 1 got.(dst)

let topology_jitter_varies () =
  let rng = Rng.create 19 in
  let topo = Topology.create ~nodes:4 rng in
  let a = Topology.latency topo ~src:0 ~dst:1 in
  let b = Topology.latency topo ~src:0 ~dst:1 in
  (* Jitter makes successive samples differ (with overwhelming prob). *)
  Alcotest.(check bool) "samples differ" true (a <> b)

(* ---------------------- flood defense units ----------------------- *)

(* A tiny identity codec over strings: "frames" are the strings
   themselves, anything starting with '!' fails to decode. *)
let string_codec : string Gossip.codec =
  {
    enc = (fun m -> m);
    dec = (fun s -> if String.length s > 0 && s.[0] = '!' then None else Some s);
  }

let flood_net ~nodes ~seed =
  let engine = Engine.create () in
  let topo = Topology.create ~nodes (Rng.create seed) in
  let net = Network.create ~engine ~topology:topo () in
  (engine, net)

let counting_config counts : string Gossip.config =
  {
    msg_id = (fun m -> m);
    validate = (fun _ _ -> true);
    deliver = (fun node ~src:_ _ -> counts.(node) <- counts.(node) + 1);
    fanout = 4;
    point_to_point = (fun _ -> false);
  }

let gossip_wire_mode_roundtrip () =
  let n = 20 in
  let engine, net = flood_net ~nodes:n ~seed:41 in
  let got = Array.make n 0 in
  let g =
    Gossip.create ~codec:string_codec ~net ~rng:(Rng.create 42)
      ~weights:(Array.make n 1.0) (counting_config got)
  in
  Gossip.broadcast g ~node:0 ~bytes:64 "typed-through-bytes";
  ignore (Engine.run engine ());
  let reached = Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 got in
  Alcotest.(check bool) "reached nearly everyone" true (reached >= n - 2);
  Alcotest.(check int) "clean wire" 0 (Gossip.decode_failures g)

let gossip_garbage_banned () =
  let n = 20 in
  let engine, net = flood_net ~nodes:n ~seed:43 in
  let got = Array.make n 0 in
  let limits =
    { Gossip.default_limits with ban_threshold = 50; decode_fail_score = 10 }
  in
  let g =
    Gossip.create ~codec:string_codec ~limits ~net ~rng:(Rng.create 44)
      ~weights:(Array.make n 1.0) (counting_config got)
  in
  let flooder = 0 in
  let victims_before = Gossip.peers g flooder in
  let degree_before = List.map (fun p -> List.length (Gossip.peers g p)) victims_before in
  (* Pump undecodable frames, spaced out so the leaky bucket never
     tail-drops them: every one must reach the decoder and score. *)
  for k = 0 to 99 do
    Engine.at engine
      ~time:(0.01 *. float_of_int k)
      (fun () -> Gossip.inject_raw g ~node:flooder ~bytes:32 (Printf.sprintf "!junk-%d" k))
  done;
  ignore (Engine.run engine ());
  Alcotest.(check bool)
    (Printf.sprintf "decode failures counted (%d)" (Gossip.decode_failures g))
    true
    (Gossip.decode_failures g > 0);
  Alcotest.(check bool)
    (Printf.sprintf "flooder banned (%d links)" (Gossip.banned_links g))
    true
    (Gossip.banned_links g >= 1);
  (* Every victim that banned the flooder severed the link both ways
     and drew a replacement peer: degree is preserved. *)
  let banners = List.filter (fun p -> List.mem flooder (Gossip.banned_by g p)) victims_before in
  Alcotest.(check bool) "someone banned it" true (banners <> []);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d dropped the flooder" p)
        false
        (List.mem flooder (Gossip.peers g p)))
    banners;
  List.iter2
    (fun p d ->
      if List.mem flooder (Gossip.banned_by g p) then
        Alcotest.(check bool)
          (Printf.sprintf "node %d kept its degree" p)
          true
          (List.length (Gossip.peers g p) >= d))
    victims_before degree_before;
  (* Banned pairs must survive a full peer redraw un-linked. *)
  Gossip.redraw g ~weights:(Array.make n 1.0);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "redraw keeps node %d away from the flooder" p)
        false
        (List.mem flooder (Gossip.peers g p)))
    banners

let gossip_quota_drops () =
  let n = 10 in
  let engine, net = flood_net ~nodes:n ~seed:45 in
  let got = Array.make n 0 in
  let limits =
    {
      Gossip.default_limits with
      quota_msgs = 5;
      quota_window_s = 10.0;
      (* Quota, not banning, is under test here. *)
      ban_threshold = 1_000_000;
    }
  in
  let g =
    Gossip.create ~codec:string_codec ~limits ~net ~rng:(Rng.create 46)
      ~weights:(Array.make n 1.0) (counting_config got)
  in
  (* 50 distinct valid messages from one node, spaced past the leaky
     bucket: far over the 5-per-window per-peer quota. *)
  for k = 0 to 49 do
    Engine.at engine
      ~time:(0.01 *. float_of_int k)
      (fun () -> Gossip.broadcast g ~node:0 ~bytes:16 (Printf.sprintf "m-%d" k))
  done;
  ignore (Engine.run engine ());
  Alcotest.(check bool)
    (Printf.sprintf "quota drops counted (%d)" (Gossip.quota_drops g))
    true
    (Gossip.quota_drops g > 0);
  Alcotest.(check int) "no bans at this threshold" 0 (Gossip.banned_links g)

let gossip_queue_tail_drop () =
  let n = 10 in
  let engine, net = flood_net ~nodes:n ~seed:47 in
  let got = Array.make n 0 in
  let limits =
    {
      Gossip.default_limits with
      queue_capacity = 3;
      drain_per_s = 1.0;
      quota_msgs = 1_000_000;
      ban_threshold = 1_000_000;
    }
  in
  let g =
    Gossip.create ~codec:string_codec ~limits ~net ~rng:(Rng.create 48)
      ~weights:(Array.make n 1.0) (counting_config got)
  in
  (* A burst at one instant: the 3-deep queue draining 1/s must
     tail-drop most of it. *)
  for k = 0 to 29 do
    Gossip.broadcast g ~node:0 ~bytes:16 (Printf.sprintf "burst-%d" k)
  done;
  ignore (Engine.run engine ());
  Alcotest.(check bool)
    (Printf.sprintf "tail drops counted (%d)" (Gossip.quota_drops g))
    true
    (Gossip.quota_drops g > 0)

let suite =
  [
    ( "netsim",
      [
        t "gossip wire mode roundtrip" gossip_wire_mode_roundtrip;
        t "gossip garbage gets you banned" gossip_garbage_banned;
        t "gossip per-peer quota drops" gossip_quota_drops;
        t "gossip ingress queue tail-drop" gossip_queue_tail_drop;
        t "adversary compose" adversary_compose;
        t "adversary compose ordering semantics" adversary_compose_ordering;
        t "adversary reorder bounded + deterministic" adversary_reorder_bounded;
        t "adversary uniform loss" adversary_uniform_loss;
        t "adversary duplicate" adversary_duplicate;
        t "gossip at-most-once under dup+loss" gossip_at_most_once_under_dup_loss;
        t "network down node unreachable" network_down_node_unreachable;
        t "gossip relink rejoins" gossip_relink_rejoins;
        t "gossip point-to-point not relayed" gossip_point_to_point_not_relayed;
        t "gossip redraw keeps connectivity" gossip_redraw_keeps_connectivity;
        t "gossip bidirectional degree" gossip_bidirectional_degree;
        t "topology jitter varies" topology_jitter_varies;
        t "topology properties" topology_properties;
        t "bandwidth serialization" bandwidth_serialization;
        t "self send dropped" self_send_dropped;
        t "adversary partition" adversary_partition;
        t "adversary hold_until" adversary_hold_until;
        t "gossip reaches everyone" gossip_reaches_everyone;
        t "gossip invalid not relayed" gossip_invalid_not_relayed;
        t "gossip direct send" gossip_direct_send;
      ] );
  ]
