(* Crash-restart fault injection: nodes lose all in-memory state, come
   back from their durable checkpoint, and rejoin via live catch-up
   (Round_request / Round_reply with retry, backoff and peer rotation).

   The safety bar, from the paper's model (section 3: users may go
   offline and rejoin): no matter when or how often correct nodes
   crash, (a) no round ever sees two different FINAL blocks, and (b) a
   restarted node's chain re-converges with the strict-majority chain.
   The liveness bar: every crashed node that gets a restart finishes
   the experiment's rounds (is_stopped) - rejoin must not wedge. *)

module Harness = Algorand_core.Harness
module Node = Algorand_core.Node
module Params = Algorand_ba.Params
module Chain = Algorand_ledger.Chain
module Engine = Algorand_sim.Engine
module Retry = Algorand_sim.Retry
module Rng = Algorand_sim.Rng
module Network = Algorand_netsim.Network

let ts name f = Alcotest.test_case name `Slow f

let fast_params ~max_steps =
  {
    Params.paper with
    lambda_priority = 1.0;
    lambda_stepvar = 1.0;
    lambda_block = 10.0;
    lambda_step = 5.0;
    max_steps;
  }

let base ~seed ~users ~rounds ~attack ~loss =
  {
    Harness.default with
    users;
    rounds;
    params = fast_params ~max_steps:8;
    block_bytes = 10_000;
    tx_rate_per_s = 0.0;
    max_sim_time = 2_000.0;
    rng_seed = seed;
    attack;
    loss;
  }

let check_churn_safety ~(ctx : string) (r : Harness.result) =
  Alcotest.(check (list int)) (ctx ^ ": no double finals") [] r.safety.double_final;
  Alcotest.(check (list int))
    (ctx ^ ": restarted nodes converged")
    [] r.churn.divergent_restarted;
  Alcotest.(check (list int)) (ctx ^ ": all nodes finished") [] r.churn.unfinished

(* Every node's tip hash equals node 0's. *)
let check_converged (r : Harness.result) =
  let tip0 = (Chain.tip (Node.chain r.harness.nodes.(0))).hash in
  Array.iteri
    (fun i n ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d on the common chain" i)
        true
        (String.equal tip0 (Chain.tip (Node.chain n)).hash))
    r.harness.nodes

(* No atomic-write temp files may survive a run: Disk_store.save stages
   through .tmp + rename, so a leftover means a torn write path. *)
let check_no_tmp_files (t : Harness.t) =
  match t.store_root with
  | None -> ()
  | Some root ->
    Array.iter
      (fun sub ->
        let dir = Filename.concat root sub in
        if Sys.file_exists dir && Sys.is_directory dir then
          Array.iter
            (fun f ->
              Alcotest.(check bool)
                (Printf.sprintf "no temp leftover %s/%s" sub f)
                false
                (Filename.check_suffix f ".tmp"))
            (Sys.readdir dir))
      (Sys.readdir root)

(* ------------------------ one-shot crash ------------------------- *)

let one_shot_rejoin () =
  (* Crash one node mid-round; it must come back, catch up within a
     bounded (metric-reported) sim-time, and finish all rounds. *)
  let r =
    Harness.run
      (base ~seed:101 ~users:10 ~rounds:4
         ~attack:
           (Harness.Crash_churn
              (Harness.One_shot { at = 6.0; victims = [ 3 ]; down_for = 10.0 }))
         ~loss:0.0)
  in
  Fun.protect
    ~finally:(fun () -> Harness.cleanup_stores r.harness)
    (fun () ->
      Alcotest.(check int) "one crash" 1 r.churn.crashes;
      Alcotest.(check int) "one restart" 1 r.churn.restarts;
      Alcotest.(check bool)
        (Printf.sprintf "rejoined (%d)" r.churn.rejoins)
        true (r.churn.rejoins >= 1);
      Alcotest.(check bool)
        (Printf.sprintf "rejoin latency bounded (%.1fs)" r.churn.max_rejoin_s)
        true
        (r.churn.max_rejoin_s > 0.0 && r.churn.max_rejoin_s <= 300.0);
      check_churn_safety ~ctx:"one-shot" r;
      check_converged r;
      check_no_tmp_files r.harness)

let correlated_outage () =
  (* A third of the cluster dies and restarts together: the survivors
     (still a 2/3 majority) keep going, the cohort's backoff jitter
     de-synchronizes their re-requests, and everyone re-converges. *)
  let r =
    Harness.run
      (base ~seed:202 ~users:12 ~rounds:4
         ~attack:
           (Harness.Crash_churn
              (Harness.Correlated { at = 6.0; fraction = 0.33; down_for = 10.0 }))
         ~loss:0.0)
  in
  Fun.protect
    ~finally:(fun () -> Harness.cleanup_stores r.harness)
    (fun () ->
      Alcotest.(check bool)
        (Printf.sprintf "mass outage injected (%d)" r.churn.crashes)
        true
        (r.churn.crashes >= 3);
      Alcotest.(check int) "every crash restarted" r.churn.crashes r.churn.restarts;
      check_churn_safety ~ctx:"correlated" r;
      check_converged r)

let periodic_churn_under_loss () =
  (* The acceptance scenario: repeatedly crash 30% of nodes while the
     network also drops 5% of packets. All rounds complete, no forked
     finals, restarted chains match the honest majority. *)
  let r =
    Harness.run
      (base ~seed:303 ~users:10 ~rounds:3
         ~attack:
           (Harness.Crash_churn
              (Harness.Periodic
                 {
                   start = 5.0;
                   period = 12.0;
                   fraction = 0.3;
                   down_for = 8.0;
                   until = 80.0;
                 }))
         ~loss:0.05)
  in
  Fun.protect
    ~finally:(fun () -> Harness.cleanup_stores r.harness)
    (fun () ->
      Alcotest.(check bool)
        (Printf.sprintf "repeated churn (%d crashes)" r.churn.crashes)
        true
        (r.churn.crashes >= 2);
      Alcotest.(check bool)
        (Printf.sprintf "retries under loss (%d)" r.churn.retries)
        true (r.churn.retries >= 0);
      check_churn_safety ~ctx:"periodic" r;
      check_converged r;
      check_no_tmp_files r.harness)

let deterministic_per_seed () =
  let cfg =
    base ~seed:404 ~users:10 ~rounds:3
      ~attack:
        (Harness.Crash_churn
           (Harness.Periodic
              {
                start = 5.0;
                period = 12.0;
                fraction = 0.3;
                down_for = 8.0;
                until = 80.0;
              }))
      ~loss:0.05
  in
  let a = Harness.run cfg in
  let b = Harness.run cfg in
  Fun.protect
    ~finally:(fun () ->
      Harness.cleanup_stores a.harness;
      Harness.cleanup_stores b.harness)
    (fun () ->
      Alcotest.(check (float 1e-9)) "same sim time" a.sim_time b.sim_time;
      Alcotest.(check int) "same events" a.events b.events;
      Alcotest.(check int) "same crashes" a.churn.crashes b.churn.crashes;
      Alcotest.(check int) "same rejoins" a.churn.rejoins b.churn.rejoins;
      Alcotest.(check int) "same retries" a.churn.retries b.churn.retries;
      Alcotest.(check (float 1e-9)) "same max rejoin" a.churn.max_rejoin_s
        b.churn.max_rejoin_s)

(* ------------------- incarnation-guarded timers ------------------- *)

let with_store_root f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "algorand-churn-unit-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.file_exists path then begin
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
    end
  in
  rm dir;
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let incarnation_guards_timers () =
  (* Drive crash/restart by hand. After a crash, every timer and
     delivery armed in the previous life must be a no-op: letting the
     engine run with the node down must leave it at genesis with no
     round in flight. Restart bumps the incarnation again and the node
     rejoins live. *)
  with_store_root (fun root ->
      let t =
        Harness.build
          (base ~seed:505 ~users:8 ~rounds:3 ~attack:Harness.No_attack ~loss:0.0
          |> fun c -> { c with store_root = Some root })
      in
      Array.iter Node.start t.nodes;
      let victim = t.nodes.(2) in
      ignore (Engine.run t.engine ~until:20.0 ());
      let inc0 = Node.incarnation victim in
      Node.crash victim;
      Network.set_up t.network 2 false;
      Alcotest.(check bool) "down" true (Node.is_down victim);
      Alcotest.(check int) "crash counted" 1 (Node.crash_count victim);
      Alcotest.(check bool) "incarnation bumped" true (Node.incarnation victim > inc0);
      (* Old-life timers fire into the void while the node is down. *)
      ignore (Engine.run t.engine ~until:60.0 ());
      Alcotest.(check int) "no round in flight while down" 0 (Node.round victim);
      Alcotest.(check int) "memory wiped to genesis" 0
        (Chain.tip (Node.chain victim)).height;
      let inc1 = Node.incarnation victim in
      Network.set_up t.network 2 true;
      Node.restart victim;
      Alcotest.(check bool) "restart bumps incarnation" true
        (Node.incarnation victim > inc1);
      ignore (Engine.run t.engine ());
      Alcotest.(check bool) "victim finished all rounds" true (Node.is_stopped victim);
      let tip0 = (Chain.tip (Node.chain t.nodes.(0))).hash in
      Alcotest.(check bool) "victim re-converged" true
        (String.equal tip0 (Chain.tip (Node.chain victim)).hash))

let truncated_store_recovered () =
  (* Corrupt the tail of a crashed node's checkpoint before its
     restart: the reload keeps the valid prefix and live catch-up
     backfills the rest. Losing the tail costs latency, never safety. *)
  with_store_root (fun root ->
      let t =
        Harness.build
          (base ~seed:606 ~users:8 ~rounds:3 ~attack:Harness.No_attack ~loss:0.0
          |> fun c -> { c with store_root = Some root })
      in
      Array.iter Node.start t.nodes;
      ignore (Engine.run t.engine ());
      (* Everyone finished; node 4's store holds rounds 1..3. *)
      let victim = t.nodes.(4) in
      Alcotest.(check bool) "run completed" true (Node.is_stopped victim);
      Node.crash victim;
      Network.set_up t.network 4 false;
      let dir = Filename.concat root "node-004" in
      let block2 = Filename.concat dir "000002.block" in
      Alcotest.(check bool) "checkpoint present" true (Sys.file_exists block2);
      let oc = open_out_bin block2 in
      output_string oc "torn write";
      close_out oc;
      Network.set_up t.network 4 true;
      Node.restart victim;
      ignore (Engine.run t.engine ());
      Alcotest.(check bool) "recovered despite torn tail" true (Node.is_stopped victim);
      let tip0 = (Chain.tip (Node.chain t.nodes.(0))).hash in
      Alcotest.(check bool) "re-converged" true
        (String.equal tip0 (Chain.tip (Node.chain victim)).hash))

(* -------------------------- retry unit --------------------------- *)

let retry_backoff_schedule () =
  let engine = Engine.create () in
  let rng = Rng.create 1 in
  let times = ref [] in
  let exhausted = ref false in
  let policy =
    {
      Retry.base_delay = 1.0;
      multiplier = 2.0;
      max_delay = 4.0;
      jitter = 0.0;
      max_attempts = 5;
    }
  in
  let r =
    Retry.start ~engine ~rng ~policy
      ~attempt:(fun n -> times := (n, Engine.now engine) :: !times)
      ~on_exhausted:(fun () -> exhausted := true)
      ()
  in
  Alcotest.(check bool) "attempt 0 fires synchronously" true
    (List.mem_assoc 0 !times);
  ignore (Engine.run engine ());
  (* Delays 1, 2, 4, 4 (capped): attempts at t = 0, 1, 3, 7, 11. *)
  Alcotest.(check (list (pair int (float 1e-9))))
    "exponential, capped schedule"
    [ (0, 0.0); (1, 1.0); (2, 3.0); (3, 7.0); (4, 11.0) ]
    (List.rev !times);
  Alcotest.(check bool) "exhausted after max attempts" true !exhausted;
  Alcotest.(check bool) "inactive" false (Retry.active r)

let retry_cancel_stops () =
  let engine = Engine.create () in
  let rng = Rng.create 2 in
  let fired = ref 0 in
  let policy =
    {
      Retry.base_delay = 1.0;
      multiplier = 2.0;
      max_delay = 8.0;
      jitter = 0.0;
      max_attempts = 0 (* forever *);
    }
  in
  let r = Retry.start ~engine ~rng ~policy ~attempt:(fun _ -> incr fired) () in
  Engine.schedule engine ~delay:2.5 (fun () -> Retry.cancel r);
  ignore (Engine.run engine ());
  (* Attempts at t = 0, 1 fired; the t = 3 timer is dead. *)
  Alcotest.(check int) "stopped at cancel" 2 !fired;
  Alcotest.(check bool) "inactive" false (Retry.active r)

(* --------------------------- torture ----------------------------- *)

(* The torture sweeps run in bytes-on-the-wire mode: every message in
   every churn/catch-up path crosses the WAN as Codec bytes and is
   decoded at each hop, so any message a restart path can produce that
   the codec cannot carry shows up here as a divergence or hang. *)
let torture ~(seeds : int) ~(loss : float) () =
  for seed = 1 to seeds do
    let r =
      Harness.run
        {
          (base ~seed:(9_000 + seed) ~users:8 ~rounds:3
             ~attack:
               (Harness.Crash_churn
                  (Harness.Periodic
                     {
                       start = 4.0;
                       period = 10.0;
                       fraction = 0.3;
                       down_for = 8.0;
                       until = 60.0;
                     }))
             ~loss)
          with
          wire = `Bytes;
        }
    in
    Fun.protect
      ~finally:(fun () -> Harness.cleanup_stores r.harness)
      (fun () ->
        if r.safety.double_final <> [] then
          Alcotest.failf "seed %d: double final in rounds %s" seed
            (String.concat "," (List.map string_of_int r.safety.double_final));
        if r.churn.divergent_restarted <> [] then
          Alcotest.failf "seed %d: restarted nodes %s diverged from majority" seed
            (String.concat ","
               (List.map string_of_int r.churn.divergent_restarted));
        if r.churn.unfinished <> [] then
          Alcotest.failf "seed %d: nodes %s never finished (down/resync/hung)" seed
            (String.concat "," (List.map string_of_int r.churn.unfinished));
        (* Nothing corrupts the wire here: every frame honest nodes
           produce must decode at every hop. *)
        if r.wire.decode_failures > 0 then
          Alcotest.failf "seed %d: %d decode failures on a clean wire" seed
            r.wire.decode_failures)
  done

let suite =
  [
    ( "churn",
      [
        ts "one-shot crash rejoins" one_shot_rejoin;
        ts "correlated outage" correlated_outage;
        ts "periodic churn under loss" periodic_churn_under_loss;
        ts "deterministic per seed" deterministic_per_seed;
        ts "incarnation guards stale timers" incarnation_guards_timers;
        ts "truncated checkpoint recovered" truncated_store_recovered;
        Alcotest.test_case "retry backoff schedule" `Quick retry_backoff_schedule;
        Alcotest.test_case "retry cancel" `Quick retry_cancel_stops;
        ts "torture: lossless churn x100" (torture ~seeds:100 ~loss:0.0);
        ts "torture: churn under 5% loss x100" (torture ~seeds:100 ~loss:0.05);
      ] );
  ]
