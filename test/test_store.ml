(* Base32 addresses and the on-disk block/certificate store. *)

open Algorand_crypto
module Harness = Algorand_core.Harness
module Node = Algorand_core.Node
module Catchup = Algorand_core.Catchup
module Disk_store = Algorand_core.Disk_store
module Chain = Algorand_ledger.Chain

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f
let qt ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------------------------- base32 ----------------------------- *)

let base32_known () =
  (* RFC 4648 test vectors (unpadded). *)
  Alcotest.(check string) "f" "MY" (Base32.encode "f");
  Alcotest.(check string) "fo" "MZXQ" (Base32.encode "fo");
  Alcotest.(check string) "foo" "MZXW6" (Base32.encode "foo");
  Alcotest.(check string) "foobar" "MZXW6YTBOI" (Base32.encode "foobar");
  Alcotest.(check (option string)) "decode" (Some "foobar") (Base32.decode "MZXW6YTBOI")

let base32_rejects () =
  Alcotest.(check (option string)) "bad char" None (Base32.decode "M!");
  (* Nonzero trailing padding bits. *)
  Alcotest.(check (option string)) "bad padding" None (Base32.decode "MZ")

let addresses () =
  let pk = Sha256.digest "a" ^ Sha256.digest "b" in
  let addr = Base32.address_of_pk pk in
  Alcotest.(check (option string)) "roundtrip" (Some pk) (Base32.pk_of_address addr);
  (* A single-character typo is caught by the checksum. *)
  let typo =
    String.mapi (fun i c -> if i = 3 then (if c = 'A' then 'B' else 'A') else c) addr
  in
  Alcotest.(check (option string)) "typo caught" None (Base32.pk_of_address typo)

(* --------------------------- disk store --------------------------- *)

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "algorand-store-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.file_exists path then begin
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
    end
  in
  rm dir;
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let config =
  {
    Harness.default with
    users = 16;
    rounds = 3;
    block_bytes = 20_000;
    tx_rate_per_s = 2.0;
    rng_seed = 51;
  }

let save_load_replay () =
  with_tmp_dir (fun dir ->
      let r = Harness.run config in
      let node =
        Array.to_list r.harness.nodes
        |> List.find (fun n ->
               List.for_all (fun round -> Node.certificate n ~round <> None) [ 1; 2; 3 ])
      in
      let items = Catchup.collect node ~up_to_round:3 in
      Disk_store.save dir items;
      Alcotest.(check (list int)) "stored rounds" [ 1; 2; 3 ] (Disk_store.stored_rounds dir);
      Alcotest.(check bool) "nonzero size" true (Disk_store.size_bytes dir > 1000);
      match Disk_store.load dir ~up_to_round:3 with
      | _, Some e -> Alcotest.failf "load: %a" Disk_store.pp_load_error e
      | loaded, None -> (
        match
          Catchup.replay ~params:config.params ~sig_scheme:Signature_scheme.sim
            ~vrf_scheme:Vrf.sim ~genesis:r.harness.genesis loaded
        with
        | Error e -> Alcotest.failf "replay: %a" Catchup.pp_error e
        | Ok chain ->
          Alcotest.(check string) "same tip"
            (Hex.of_string (Chain.tip (Node.chain node)).hash)
            (Hex.of_string (Chain.tip chain).hash)))

let corrupt_store_rejected () =
  with_tmp_dir (fun dir ->
      let r = Harness.run config in
      let node =
        Array.to_list r.harness.nodes
        |> List.find (fun n ->
               List.for_all (fun round -> Node.certificate n ~round <> None) [ 1; 2; 3 ])
      in
      Disk_store.save dir (Catchup.collect node ~up_to_round:3);
      (* Truncate one block file: load keeps the valid prefix (round 1)
         and reports where and why the scan stopped. *)
      let victim = Filename.concat dir "000002.block" in
      let oc = open_out_bin victim in
      output_string oc "garbage";
      close_out oc;
      (match Disk_store.load dir ~up_to_round:3 with
      | prefix, Some (`Corrupt 2) ->
        Alcotest.(check (list int)) "prefix before corruption" [ 1 ]
          (List.map
             (fun (i : Algorand_core.History.item) ->
               Algorand_ledger.Block.round i.block)
             prefix)
      | _, Some e -> Alcotest.failf "unexpected: %a" Disk_store.pp_load_error e
      | _, None -> Alcotest.fail "corrupt block decoded");
      (* Remove a round entirely: same prefix-tolerant behavior. *)
      Sys.remove victim;
      match Disk_store.load dir ~up_to_round:3 with
      | prefix, Some (`Missing 2) ->
        Alcotest.(check int) "prefix before gap" 1 (List.length prefix)
      | _ -> Alcotest.fail "missing round not reported")

let suite =
  [
    ( "store",
      [
        t "base32 RFC vectors" base32_known;
        t "base32 rejects" base32_rejects;
        t "checksummed addresses" addresses;
        ts "save/load/replay" save_load_replay;
        ts "corrupt store rejected" corrupt_store_rejected;
        qt "base32 roundtrip" QCheck2.Gen.string (fun s ->
            Base32.decode (Base32.encode s) = Some s);
      ] );
  ]
