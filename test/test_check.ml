(* Model checker tests (lib/check): the DFS exhausts its reduced
   schedule space with zero violations on sound parameters, the
   negative control (step threshold below 1/2) is caught, shrunk to a
   small reproducer, and replays deterministically - the property that
   makes a checker trace a regression test. *)

module World = Algorand_check.World
module Schedule = Algorand_check.Schedule
module Shrink = Algorand_check.Shrink
module Invariant = Algorand_check.Invariant
module Rng = Algorand_sim.Rng

let t name f = Alcotest.test_case name `Quick f

let fresh config =
  let w = World.create config in
  World.start w;
  w

(* ------------------------- soundness runs ------------------------- *)

let dfs_exhausts_agree () =
  let config = { World.default_config with nodes = 3 } in
  let o = Schedule.explore_dfs ~max_depth:400 ~max_states:100_000 (fresh config) in
  Alcotest.(check bool) "space exhausted" true o.complete;
  Alcotest.(check int) "no violations" 0 (List.length o.violations);
  Alcotest.(check bool) "explored something" true (o.stats.states > 50);
  Alcotest.(check bool) "dedup engaged" true (o.stats.deduped > 0)

let dfs_exhausts_split_default_params () =
  (* Even with an equivocating proposer (split inputs), the paper's
     thresholds (T > 2/3) keep every delivery order safe. *)
  let config = { World.default_config with nodes = 3; scenario = World.Split } in
  let o = Schedule.explore_dfs ~max_depth:400 ~max_states:100_000 (fresh config) in
  Alcotest.(check bool) "space exhausted" true o.complete;
  Alcotest.(check int) "no violations" 0 (List.length o.violations)

let fuzz_clean_on_default_params () =
  let config = { World.default_config with nodes = 4; scenario = World.Split } in
  let base = Rng.create 7 in
  for k = 1 to 10 do
    let rng = Rng.split base (Printf.sprintf "walk-%d" k) in
    let o = Schedule.run_fuzz ~rng (fresh config) in
    Alcotest.(check int) (Printf.sprintf "walk %d clean" k) 0 (List.length o.violations)
  done

let fifo_deterministic () =
  let config = { World.default_config with nodes = 4 } in
  let run () =
    let w = fresh config in
    let o = Schedule.run_fifo w in
    (o.violations, World.render_trace (World.trace w))
  in
  let v1, tr1 = run () and v2, tr2 = run () in
  Alcotest.(check int) "no violations" 0 (List.length v1);
  Alcotest.(check int) "same violation count" (List.length v1) (List.length v2);
  Alcotest.(check string) "bit-identical schedules" tr1 tr2

(* ------------------------ negative control ------------------------ *)

let weak_config =
  {
    World.default_config with
    nodes = 4;
    scenario = World.Split;
    params = { World.default_config.params with t_step = 0.3 };
  }

let find_agreement_violation () =
  let o =
    Schedule.explore_dfs ~max_depth:400 ~max_states:100_000 (fresh weak_config)
  in
  match
    List.find_opt
      (fun (r : Schedule.report) -> String.equal r.violation.invariant "agreement")
      o.violations
  with
  | Some r -> r
  | None -> Alcotest.fail "weakened threshold produced no agreement violation"

let negative_control_caught () =
  let r = find_agreement_violation () in
  Alcotest.(check bool) "trace non-empty" true (r.trace <> [])

let shrinks_to_small_replayable_trace () =
  let r = find_agreement_violation () in
  let minimal =
    Shrink.minimize ~config:weak_config ~invariant:"agreement" r.trace
  in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk %d -> %d <= 30 events" (List.length r.trace)
       (List.length minimal))
    true
    (List.length minimal <= 30);
  Alcotest.(check bool) "shrunk reproduces" true
    (Shrink.reproduces ~config:weak_config ~invariant:"agreement" minimal);
  (* 1-minimality: no single event can be dropped. *)
  List.iteri
    (fun i _ ->
      let cand = List.filteri (fun j _ -> j <> i) minimal in
      Alcotest.(check bool)
        (Printf.sprintf "dropping event %d breaks reproduction" i)
        false
        (Shrink.reproduces ~config:weak_config ~invariant:"agreement" cand))
    minimal

let replay_is_deterministic () =
  (* The shrunk counterexample replays byte-for-byte: two fresh worlds
     fed the same trace apply the same deliveries and report the same
     violation. *)
  let r = find_agreement_violation () in
  let minimal =
    Shrink.minimize ~config:weak_config ~invariant:"agreement" r.trace
  in
  let replay () =
    let w = World.create weak_config in
    World.start w;
    let o = Schedule.run_replay w minimal in
    let violations =
      List.map
        (fun (r : Schedule.report) ->
          Format.asprintf "%a" Invariant.pp_violation r.violation)
        o.violations
    in
    (violations, World.render_trace (World.trace w))
  in
  let v1, tr1 = replay () and v2, tr2 = replay () in
  Alcotest.(check bool) "violation reproduced" true (v1 <> []);
  Alcotest.(check (list string)) "same violations" v1 v2;
  Alcotest.(check string) "bit-identical applied schedule" tr1 tr2

(* ----------------------- exploration support ---------------------- *)

let digest_is_order_independent () =
  (* Delivering the same two (non-crossing) votes in either order must
     collide in the state digest - the property DFS dedup rests on. *)
  let config = { World.default_config with nodes = 3 } in
  let w = fresh config in
  match World.frontier w with
  | p1 :: p2 :: _ ->
    let wa = World.clone w and wb = World.clone w in
    World.deliver wa p1;
    World.deliver wa p2;
    World.deliver wb p2;
    World.deliver wb p1;
    Alcotest.(check string) "digests collide" (World.digest wa) (World.digest wb)
  | _ -> Alcotest.fail "expected at least two frontier messages"

let clone_isolates_branches () =
  let config = { World.default_config with nodes = 3 } in
  let w = fresh config in
  let d0 = World.digest w in
  let w' = World.clone w in
  (match World.pending w' with
  | p :: _ -> World.deliver w' p
  | [] -> Alcotest.fail "no pending");
  Alcotest.(check string) "original untouched" d0 (World.digest w);
  Alcotest.(check bool) "branch diverged" true (World.digest w' <> d0)

let certificates_audited_on_decision () =
  (* A clean FIFO run decides everywhere; every decided node's
     certificate must validate under Core.Certificate. *)
  let config = { World.default_config with nodes = 4 } in
  let w = fresh config in
  ignore (Schedule.run_fifo w);
  Alcotest.(check bool) "all decided" true (World.all_done w);
  Array.iteri
    (fun i _ ->
      match Invariant.certificate_of w i with
      | Some (cert, _) ->
        Alcotest.(check bool)
          (Printf.sprintf "n%d certificate validates" i)
          true
          (Algorand_core.Certificate.validate ~params:config.params
             ~ctx:(World.validation_ctx w) cert
          = Ok ())
      | None -> Alcotest.failf "n%d has no certificate" i)
    (World.machines w)

let suite =
  [
    ( "check",
      [
        t "dfs exhausts agree scenario, no violations" dfs_exhausts_agree;
        t "dfs exhausts split scenario on paper thresholds"
          dfs_exhausts_split_default_params;
        t "fuzz walks clean on paper thresholds" fuzz_clean_on_default_params;
        t "fifo schedule is deterministic" fifo_deterministic;
        t "negative control: T < 1/2 violates agreement" negative_control_caught;
        t "counterexample shrinks to <= 30 events, 1-minimal"
          shrinks_to_small_replayable_trace;
        t "shrunk counterexample replays deterministically" replay_is_deterministic;
        t "world digest is delivery-order independent" digest_is_order_independent;
        t "clone isolates exploration branches" clone_isolates_branches;
        t "certificates audited on decision" certificates_audited_on_decision;
      ] );
  ]
