(* The discrete-event engine, RNG, event queue, and statistics. *)

open Algorand_sim

let t name f = Alcotest.test_case name `Quick f

let queue_orders_by_time () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  let pops = List.init 3 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] pops;
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let queue_fifo_on_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:1.0 i
  done;
  let pops = List.init 10 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list int)) "insertion order" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] pops

let queue_stress () =
  let q = Event_queue.create () in
  let rng = Rng.create 99 in
  for _ = 1 to 2000 do
    Event_queue.push q ~time:(Rng.float rng 100.0) ()
  done;
  let prev = ref neg_infinity in
  let rec drain n =
    match Event_queue.pop q with
    | None -> n
    | Some (time, ()) ->
      if time < !prev then Alcotest.fail "heap order violated";
      prev := time;
      drain (n + 1)
  in
  Alcotest.(check int) "drained all" 2000 (drain 0)

let engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun () -> log := "late" :: !log);
  Engine.schedule e ~delay:1.0 (fun () ->
      log := "early" :: !log;
      (* Handlers can schedule more events. *)
      Engine.schedule e ~delay:0.5 (fun () -> log := "nested" :: !log));
  let n = Engine.run e () in
  Alcotest.(check int) "three events" 3 n;
  Alcotest.(check (list string)) "order" [ "late"; "nested"; "early" ] !log;
  Alcotest.(check (float 1e-9)) "clock at last event" 2.0 (Engine.now e)

let engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~delay:1.0 (fun () -> incr fired);
  Engine.schedule e ~delay:10.0 (fun () -> incr fired);
  ignore (Engine.run e ~until:5.0 ());
  Alcotest.(check int) "only the early event" 1 !fired;
  Alcotest.(check int) "one pending" 1 (Engine.pending e)

let rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys;
  let c = Rng.split (Rng.create 7) "label" in
  let zs = List.init 20 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "split differs" true (xs <> zs)

let rng_ranges () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.int r 13 in
    if v < 0 || v >= 13 then Alcotest.fail "int out of range";
    let f = Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "float out of range"
  done

let rng_exponential_mean () =
  let r = Rng.create 5 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "mean %.2f near 3" mean) true
    (mean > 2.8 && mean < 3.2)

let rng_weighted () =
  let r = Rng.create 17 in
  let counts = Array.make 3 0 in
  for _ = 1 to 10_000 do
    let i = Rng.weighted_index r [| 1.0; 2.0; 7.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "proportions roughly 1:2:7" true
    (counts.(0) > 500 && counts.(0) < 1500 && counts.(2) > 6300 && counts.(2) < 7700)

let rng_sample_indices () =
  let r = Rng.create 23 in
  let s = Rng.sample_indices r ~n:10 ~k:5 in
  Alcotest.(check int) "five distinct" 5 (List.length (List.sort_uniq compare s));
  List.iter (fun i -> if i < 0 || i >= 10 then Alcotest.fail "index range") s

let stats_summary () =
  let s = Stats.summarize [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.max;
  Alcotest.(check (float 1e-9)) "median" 3.0 s.median;
  Alcotest.(check (float 1e-9)) "p25" 2.0 s.p25;
  Alcotest.(check (float 1e-9)) "p75" 4.0 s.p75;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.mean;
  Alcotest.(check int) "count" 5 s.count;
  Alcotest.(check bool) "empty gives nan" true (Float.is_nan (Stats.summarize []).median)

let metrics_phases () =
  let m = Metrics.create ~users:2 () in
  let r = Metrics.start_round m ~user:0 ~round:1 ~now:10.0 in
  r.proposal_done <- 12.0;
  r.ba_done <- 15.0;
  r.final_done <- 16.0;
  Alcotest.(check (list (float 1e-9))) "proposal" [ 2.0 ] (Metrics.phase_times m Block_proposal);
  Alcotest.(check (list (float 1e-9))) "ba" [ 3.0 ] (Metrics.phase_times m Ba_no_final);
  Alcotest.(check (list (float 1e-9))) "final" [ 1.0 ] (Metrics.phase_times m Ba_final);
  Alcotest.(check (list (float 1e-9))) "completion" [ 6.0 ]
    (Metrics.round_completion_times m ~round:1);
  Alcotest.(check int) "completed" 1 (Metrics.completed_rounds m)

let engine_at_clamps_past () =
  let e = Engine.create () in
  let times = ref [] in
  Engine.schedule e ~delay:5.0 (fun () ->
      (* Scheduling in the past runs "now", not before. *)
      Engine.at e ~time:1.0 (fun () -> times := Engine.now e :: !times));
  ignore (Engine.run e ());
  Alcotest.(check (list (float 1e-9))) "clamped" [ 5.0 ] !times

let engine_max_events () =
  let e = Engine.create () in
  let rec loop () = Engine.schedule e ~delay:1.0 loop in
  Engine.schedule e ~delay:0.0 loop;
  let n = Engine.run e ~max_events:100 () in
  Alcotest.(check int) "bounded" 100 n

let engine_negative_delay () =
  let e = Engine.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> Engine.schedule e ~delay:(-1.0) (fun () -> ()))

let engine_reorder_hook () =
  (* Without a hook, simultaneous events run FIFO; with one, the batch
     is handed over for permutation, and causally later same-time
     events form a separate batch. *)
  let run hook =
    let e = Engine.create () in
    let log = ref [] in
    let ev tag () = log := tag :: !log in
    Engine.schedule e ~delay:1.0 (ev "a");
    Engine.schedule e ~delay:1.0 (ev "b");
    Engine.schedule e ~delay:1.0 (ev "c");
    Engine.schedule e ~delay:2.0 (ev "later");
    Engine.set_reorder_hook e hook;
    ignore (Engine.run e ());
    List.rev !log
  in
  Alcotest.(check (list string)) "no hook: FIFO" [ "a"; "b"; "c"; "later" ] (run None);
  Alcotest.(check (list string)) "identity hook: FIFO" [ "a"; "b"; "c"; "later" ]
    (run (Some (fun batch -> batch)));
  let reverse batch =
    let n = Array.length batch in
    Array.init n (fun i -> batch.(n - 1 - i))
  in
  Alcotest.(check (list string)) "reversing hook" [ "c"; "b"; "a"; "later" ]
    (run (Some reverse));
  (* Events scheduled at the same time *by the batch* run afterwards
     (they are causally downstream, not tie-broken). *)
  let e = Engine.create () in
  let log = ref [] in
  Engine.set_reorder_hook e (Some reverse);
  Engine.schedule e ~delay:1.0 (fun () ->
      log := "first" :: !log;
      Engine.schedule e ~delay:0.0 (fun () -> log := "child" :: !log));
  Engine.schedule e ~delay:1.0 (fun () -> log := "second" :: !log);
  ignore (Engine.run e ());
  Alcotest.(check (list string)) "children form a later batch"
    [ "second"; "first"; "child" ] (List.rev !log)

let metrics_bandwidth () =
  let m = Metrics.create ~users:3 () in
  Metrics.record_bytes_sent m ~user:1 500;
  Metrics.record_bytes_sent m ~user:1 250;
  Metrics.record_bytes_received m ~user:2 100;
  Alcotest.(check (float 1e-9)) "sent accumulates" 750.0 (Metrics.bytes_sent m).(1);
  Alcotest.(check (float 1e-9)) "received" 100.0 (Metrics.bytes_received m).(2);
  Alcotest.(check (float 1e-9)) "others zero" 0.0 (Metrics.bytes_sent m).(0)

let stats_percentiles_interpolate () =
  let a = [| 0.0; 10.0 |] in
  Alcotest.(check (float 1e-9)) "p50 interpolated" 5.0 (Stats.percentile a 0.5);
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile a 0.0);
  Alcotest.(check (float 1e-9)) "p100" 10.0 (Stats.percentile a 1.0)

let suite =
  [
    ( "sim",
      [
        t "engine at clamps past times" engine_at_clamps_past;
        t "engine max_events" engine_max_events;
        t "engine rejects negative delay" engine_negative_delay;
        t "engine reorder hook permutes tie batches" engine_reorder_hook;
        t "metrics bandwidth counters" metrics_bandwidth;
        t "percentile interpolation" stats_percentiles_interpolate;
        t "queue orders by time" queue_orders_by_time;
        t "queue fifo on ties" queue_fifo_on_ties;
        t "queue stress" queue_stress;
        t "engine runs in order" engine_runs_in_order;
        t "engine until" engine_until;
        t "rng determinism" rng_determinism;
        t "rng ranges" rng_ranges;
        t "rng exponential mean" rng_exponential_mean;
        t "rng weighted index" rng_weighted;
        t "rng sample indices" rng_sample_indices;
        t "stats summary" stats_summary;
        t "metrics phases" metrics_phases;
      ] );
  ]
