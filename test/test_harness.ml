(* Whole-network integration tests through the experiment harness:
   liveness and safety in the common case, transaction confirmation,
   byzantine equivocation, targeted DoS, and determinism. These run a
   real simulated deployment, so they are tagged slow. *)

module Harness = Algorand_core.Harness
module Node = Algorand_core.Node
module Chain = Algorand_ledger.Chain
module Block = Algorand_ledger.Block
module Transaction = Algorand_ledger.Transaction
module Balances = Algorand_ledger.Balances
module Metrics = Algorand_sim.Metrics

let ts name f = Alcotest.test_case name `Slow f

let base_config =
  {
    Harness.default with
    users = 16;
    rounds = 2;
    block_bytes = 50_000;
    tx_rate_per_s = 1.0;
    rng_seed = 1;
  }

let check_safety (r : Harness.result) =
  Alcotest.(check (list int)) "no double finals" [] r.safety.double_final

let happy_network () =
  let r = Harness.run base_config in
  check_safety r;
  Alcotest.(check (list int)) "no forks at all" [] r.safety.forked_rounds;
  Alcotest.(check int) "both rounds final" 2 r.final_rounds;
  (* All users completed both rounds. *)
  Alcotest.(check int) "completions" (16 * 2) r.completion.count;
  (* Rounds complete within the paper's "about a minute". *)
  Alcotest.(check bool)
    (Printf.sprintf "median %.1fs < 60s" r.completion.median)
    true (r.completion.median < 60.0)

let transactions_confirm () =
  let r = Harness.run { base_config with tx_rate_per_s = 5.0; rounds = 3 } in
  check_safety r;
  (* Some submitted transactions must have landed in blocks and moved
     money on every node's chain identically. *)
  let committed (node : Node.t) =
    let chain = Node.chain node in
    List.concat_map
      (fun (e : Chain.entry) -> e.block.txs)
      (Chain.ancestry chain (Chain.tip chain).hash)
  in
  let txs0 = committed r.harness.nodes.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "committed %d txs" (List.length txs0))
    true
    (List.length txs0 > 0);
  Array.iter
    (fun n ->
      Alcotest.(check int) "same tx count everywhere" (List.length txs0)
        (List.length (committed n)))
    r.harness.nodes;
  (* Total stake is conserved on the final balances. *)
  let tip = Chain.tip (Node.chain r.harness.nodes.(0)) in
  Alcotest.(check int) "conservation" (16 * base_config.stake_per_user)
    (Balances.total tip.balances_after)

let equivocation_attack_safe () =
  (* 20% byzantine stake equivocating (section 10.4's attack): safety
     must hold; liveness may degrade to empty blocks at worst. *)
  let r =
    Harness.run
      {
        base_config with
        users = 16;
        rounds = 2;
        malicious_fraction = 0.2;
        attack = Harness.Equivocate;
        rng_seed = 3;
      }
  in
  check_safety r;
  Alcotest.(check bool) "all users completed" true
    (r.completion.count = 16 * 2)

let targeted_dos_safe () =
  (* Disconnect 10% of users mid-run: the rest keep going; reconnected
     users are simply late. Safety must hold throughout. *)
  let r =
    Harness.run
      {
        base_config with
        rounds = 2;
        attack = Harness.Targeted_dos { fraction = 0.1; from_ = 5.0; until = 30.0 };
        rng_seed = 4;
      }
  in
  check_safety r

let deterministic_runs () =
  let r1 = Harness.run { base_config with rounds = 1 } in
  let r2 = Harness.run { base_config with rounds = 1 } in
  Alcotest.(check (float 1e-9)) "same sim time" r1.sim_time r2.sim_time;
  Alcotest.(check int) "same events" r1.events r2.events;
  Alcotest.(check (float 1e-9)) "same median" r1.completion.median r2.completion.median;
  let r3 = Harness.run { base_config with rounds = 1; rng_seed = 99 } in
  Alcotest.(check bool) "different seed differs" true
    (r3.events <> r1.events || r3.sim_time <> r1.sim_time)

let deterministic_bit_identical () =
  (* The model checker's replay traces (lib/check) assume the whole
     deployment is a pure function of rng_seed: same seed must yield
     bit-identical chain hashes on every node and identical byte
     counters, not merely matching aggregates. *)
  let run () = Harness.run { base_config with rounds = 2; rng_seed = 11 } in
  let r1 = run () and r2 = run () in
  let chain_hashes (r : Harness.result) =
    Array.to_list r.harness.nodes
    |> List.concat_map (fun n ->
           let chain = Node.chain n in
           List.map
             (fun (e : Chain.entry) -> Printf.sprintf "%d:%s:%b" e.height e.hash e.final)
             (Chain.ancestry chain (Chain.tip chain).hash))
  in
  Alcotest.(check (list string)) "bit-identical chains" (chain_hashes r1)
    (chain_hashes r2);
  Alcotest.(check (list (float 0.0))) "bit-identical bytes sent"
    (Array.to_list (Metrics.bytes_sent r1.harness.metrics))
    (Array.to_list (Metrics.bytes_sent r2.harness.metrics));
  Alcotest.(check (list (float 0.0))) "bit-identical bytes received"
    (Array.to_list (Metrics.bytes_received r1.harness.metrics))
    (Array.to_list (Metrics.bytes_received r2.harness.metrics));
  Alcotest.(check int) "same event count" r1.events r2.events;
  Alcotest.(check (float 0.0)) "same sim time" r1.sim_time r2.sim_time

let all_chains_converge () =
  let r = Harness.run { base_config with rounds = 3; rng_seed = 5 } in
  check_safety r;
  let tip_hash n = (Chain.tip (Node.chain n)).hash in
  let h0 = tip_hash r.harness.nodes.(0) in
  Array.iter
    (fun n -> Alcotest.(check bool) "same tip" true (String.equal h0 (tip_hash n)))
    r.harness.nodes;
  (* Final blocks carry certificates on at least one node. *)
  let has_cert =
    Array.exists (fun n -> Node.certificate n ~round:1 <> None) r.harness.nodes
  in
  Alcotest.(check bool) "certificates assembled" true has_cert

let bandwidth_accounted () =
  let r = Harness.run { base_config with rounds = 1 } in
  let sent = Metrics.bytes_sent r.harness.metrics in
  let total = Array.fold_left ( +. ) 0.0 sent in
  Alcotest.(check bool) "bytes flowed" true (total > 100_000.0)

let partition_recovery () =
  (* Weak synchrony (section 8.2): a partition splits the network into
     halves, neither of which can cross the vote threshold; with a
     small MaxSteps every node hangs. After the network heals, the
     synchronized recovery protocol must restore liveness: fork
     proposal, BA* on the recovery block, and normal rounds resuming,
     with all users converging on one chain. *)
  let params =
    {
      Algorand_ba.Params.paper with
      lambda_priority = 1.0;
      lambda_stepvar = 1.0;
      lambda_block = 10.0;
      lambda_step = 5.0;
      max_steps = 6;
      recovery_interval = 150.0;
    }
  in
  let r =
    Harness.run
      {
        base_config with
        users = 16;
        rounds = 3;
        params;
        block_bytes = 20_000;
        tx_rate_per_s = 0.0;
        attack = Harness.Partition { from_ = 4.0; until = 100.0 };
        recovery_enabled = true;
        max_sim_time = 600.0;
        rng_seed = 8;
      }
  in
  check_safety r;
  let recoveries =
    Array.fold_left (fun acc n -> acc + Node.recoveries_completed n) 0 r.harness.nodes
  in
  Alcotest.(check bool)
    (Printf.sprintf "recoveries happened (%d)" recoveries)
    true (recoveries >= 16);
  (* Liveness restored: everyone reached the final round and converged. *)
  let tip_height n = (Chain.tip (Node.chain n)).height in
  Array.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "node reached round 3 (tip %d)" (tip_height n))
        true
        (tip_height n >= 3))
    r.harness.nodes;
  let tip0 = (Chain.tip (Node.chain r.harness.nodes.(0))).hash in
  Array.iter
    (fun n ->
      Alcotest.(check bool) "converged tips" true
        (String.equal tip0 (Chain.tip (Node.chain n)).hash))
    r.harness.nodes

let real_crypto_end_to_end () =
  (* A tiny deployment on the *real* cryptography (ed25519 Schnorr +
     ECVRF): every signature, sortition proof, seed proof and priority
     is actually verified. Committee sizes are scaled down so the run
     stays in seconds. *)
  let params =
    {
      Algorand_ba.Params.paper with
      tau_proposer = 4.0;
      tau_step = 12.0;
      tau_final = 16.0;
      lambda_priority = 1.0;
      lambda_stepvar = 1.0;
      lambda_block = 10.0;
      lambda_step = 5.0;
    }
  in
  let r =
    Harness.run
      {
        base_config with
        users = 5;
        rounds = 1;
        params;
        crypto = Harness.Real_crypto;
        block_bytes = 5_000;
        tx_rate_per_s = 1.0;
        cpu_vote_verify_s = 0.0;
        cpu_block_verify_s = 0.0;
        rng_seed = 6;
      }
  in
  check_safety r;
  Alcotest.(check int) "everyone completed" 5 r.completion.count;
  Alcotest.(check bool) "round reached consensus" true
    (r.final_rounds + r.tentative_rounds >= 1)

let pipelining_works_and_helps () =
  (* Section 10.2: the final step can be pipelined with the next round.
     With pipelining on, rounds must still agree and be final, and the
     cadence (time to finish all rounds) must not be worse. *)
  let run pipeline_final =
    Harness.run { base_config with rounds = 4; pipeline_final; rng_seed = 17 }
  in
  let plain = run false and piped = run true in
  check_safety plain;
  check_safety piped;
  Alcotest.(check int) "piped all rounds final" 4 piped.final_rounds;
  (* Cadence: last completion timestamp across users. *)
  let last_done (r : Harness.result) =
    List.fold_left
      (fun acc (rec_ : Algorand_sim.Metrics.round_record) ->
        if Float.is_nan rec_.final_done then acc else Float.max acc rec_.final_done)
      0.0 (Algorand_sim.Metrics.records r.harness.metrics)
  in
  let t_plain = last_done plain and t_piped = last_done piped in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined cadence %.2fs <= plain %.2fs" t_piped t_plain)
    true
    (t_piped <= t_plain +. 0.001)

let vote_scheduling_attack () =
  (* Section 7.4's "getting unstuck" scenario: for a window, BinaryBA*
     votes arrive only after the step timeout, so every step resolves
     by timeout and the users' next votes are steered by stale
     information. Once delivery normalizes, the common coin aligns the
     groups and consensus lands - at the cost of extra steps, never of
     safety. *)
  let params =
    {
      Algorand_ba.Params.paper with
      lambda_priority = 1.0;
      lambda_stepvar = 1.0;
      lambda_block = 10.0;
      lambda_step = 4.0;
      max_steps = 60;
    }
  in
  let r =
    Harness.run
      {
        base_config with
        users = 16;
        rounds = 2;
        params;
        block_bytes = 10_000;
        tx_rate_per_s = 0.0;
        attack = Harness.Delay_votes { delay = 4.5; from_ = 0.0; until = 35.0 };
        max_sim_time = 1_200.0;
        rng_seed = 23;
      }
  in
  check_safety r;
  (* Everyone still finished both rounds... *)
  Alcotest.(check int) "all completed" (16 * 2) r.completion.count;
  (* ...and the delayed half needed more than one BinaryBA* step. *)
  let max_steps_taken =
    List.fold_left
      (fun acc (rec_ : Algorand_sim.Metrics.round_record) -> max acc rec_.steps_taken)
      0 (Algorand_sim.Metrics.records r.harness.metrics)
  in
  Alcotest.(check bool)
    (Printf.sprintf "extra steps taken (max %d)" max_steps_taken)
    true (max_steps_taken > 1)

let unequal_stakes () =
  (* Linear stake distribution: weighted sortition and weighted peer
     selection both get exercised; consensus and safety must hold. *)
  let r =
    Harness.run
      { base_config with stake_distribution = `Linear; rounds = 2; rng_seed = 18 }
  in
  check_safety r;
  Alcotest.(check int) "all completed" (16 * 2) r.completion.count;
  (* Heavier users get selected (and thus vote) more: check the biggest
     staker produced at least one committee appearance via completion of
     consensus itself (indirect), and conservation of total stake. *)
  let tip = Chain.tip (Node.chain r.harness.nodes.(0)) in
  let expected_total = 1000 * (16 * 17 / 2) in
  Alcotest.(check int) "stake conserved" expected_total
    (Balances.total tip.balances_after)

let per_round_seed_refresh () =
  (* R = 1 refreshes the sortition seed every round (the paper uses
     R = 1000; small R stresses the seed-evolution machinery: every
     round reads the previous block's VRF-derived seed). *)
  let params = { Algorand_ba.Params.paper with seed_refresh_interval = 1 } in
  let r = Harness.run { base_config with params; rounds = 3; rng_seed = 19 } in
  check_safety r;
  Alcotest.(check int) "all three rounds final" 3 r.final_rounds;
  (* The per-round seeds must actually differ (they are VRF outputs
     chained through the blocks). *)
  let chain = Node.chain r.harness.nodes.(0) in
  let seeds =
    List.map
      (fun (e : Chain.entry) -> e.seed)
      (Chain.ancestry chain (Chain.tip chain).hash)
  in
  Alcotest.(check int) "all seeds distinct" (List.length seeds)
    (List.length (List.sort_uniq compare seeds))

let suite =
  [
    ( "harness",
      [
        ts "real crypto end-to-end" real_crypto_end_to_end;
        ts "final-step pipelining" pipelining_works_and_helps;
        ts "look-back variant end-to-end" (fun () ->
            let params =
              { Algorand_ba.Params.paper with ba_variant = Algorand_ba.Params.Look_back }
            in
            let r = Harness.run { base_config with params; rng_seed = 25 } in
            check_safety r;
            Alcotest.(check int) "all rounds final" 2 r.final_rounds);
        ts "vote scheduling attack (common coin)" vote_scheduling_attack;
        ts "unequal stakes" unequal_stakes;
        ts "per-round seed refresh" per_round_seed_refresh;
        ts "happy network: final consensus" happy_network;
        ts "partition + recovery restores liveness" partition_recovery;
        ts "transactions confirm consistently" transactions_confirm;
        ts "equivocation attack preserves safety" equivocation_attack_safe;
        ts "targeted DoS preserves safety" targeted_dos_safe;
        ts "deterministic runs" deterministic_runs;
        ts "deterministic runs are bit-identical" deterministic_bit_identical;
        ts "all chains converge + certificates" all_chains_converge;
        ts "bandwidth accounted" bandwidth_accounted;
      ] );
  ]
