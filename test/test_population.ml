(* Population-engine equivalence audit and unboxed event-queue tests.

   The audit is the load-bearing proof behind the million-user engine:
   at small N, a population run (only sortition-selected users
   materialized, direct-delivery network model) must certify
   bit-identical blocks, round for round, to a fully materialized
   Harness run of the same seed. The event-queue tests check the
   unboxed parallel-array heap against a naive sorted-list oracle. *)

module Harness = Algorand_core.Harness
module Population = Algorand_core.Population
module Node = Algorand_core.Node
module Chain = Algorand_ledger.Chain
module Params = Algorand_ba.Params
module Event_queue = Algorand_sim.Event_queue
module Engine = Algorand_sim.Engine

let small_params = Params.scaled ~factor:0.01
let audit_users = 24
let audit_rounds = 2

let harness_config ~seed : Harness.config =
  {
    Harness.default with
    users = audit_users;
    rounds = audit_rounds;
    params = small_params;
    block_bytes = 20_000;
    rng_seed = seed;
    crypto = Sim_crypto;
    tx_rate_per_s = 0.0;
    deterministic_ts = true;
  }

let population_config ~seed : Population.config =
  {
    Population.default with
    users = audit_users;
    rounds = audit_rounds;
    params = small_params;
    block_bytes = 20_000;
    rng_seed = seed;
  }

(* Certified block hashes of the fully materialized run, read off node
   0's chain (the safety audit guarantees all nodes agree). *)
let harness_hashes (result : Harness.result) : string list =
  let chain = Node.chain result.harness.nodes.(0) in
  let tip = Chain.tip chain in
  List.init audit_rounds (fun i ->
      match Chain.ancestor_at chain ~hash:tip.hash ~height:(i + 1) with
      | Some e -> e.hash
      | None -> Alcotest.failf "harness chain missing height %d" (i + 1))

let test_equivalence_audit () =
  (* >= 20 seeds: same seed -> identical certified blocks, with the
     population engine materializing only the selected minority. *)
  for seed = 101 to 120 do
    let h = Harness.run (harness_config ~seed) in
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d: harness forks" seed)
      [] h.safety.forked_rounds;
    let p = Population.run (population_config ~seed) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: population agreement" seed)
      true p.agreement;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: round count" seed)
      audit_rounds
      (List.length p.block_hashes);
    List.iteri
      (fun i (hh, ph) ->
        if not (String.equal hh ph) then
          Alcotest.failf "seed %d round %d: harness %s <> population %s" seed
            (i + 1)
            (String.sub hh 0 8 |> String.to_seq |> Seq.map Char.code
            |> Seq.map (Printf.sprintf "%02x")
            |> List.of_seq |> String.concat "")
            (String.sub ph 0 8 |> String.to_seq |> Seq.map Char.code
            |> Seq.map (Printf.sprintf "%02x")
            |> List.of_seq |> String.concat ""))
      (List.combine (harness_hashes h) p.block_hashes);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: materialized bounded" seed)
      true
      (p.max_materialized <= audit_users)
  done

let test_abstraction_materializes_minority () =
  (* At tiny N every user lands in some committee, so the minority
     property only shows at scale: with 512 users and the same scaled
     taus, the whole role window should select well under half. *)
  let r =
    Population.run { (population_config ~seed:11) with users = 512; rounds = 1 }
  in
  Alcotest.(check bool) "agreement" true r.agreement;
  Alcotest.(check bool) "some users materialized" true (r.max_materialized > 0);
  Alcotest.(check bool)
    (Printf.sprintf "materialized %d < 256" r.max_materialized)
    true
    (r.max_materialized < 256)

let test_population_determinism () =
  let a = Population.run (population_config ~seed:7) in
  let b = Population.run (population_config ~seed:7) in
  Alcotest.(check bool) "agreement" true (a.agreement && b.agreement);
  Alcotest.(check (list string)) "same seed, same blocks" a.block_hashes b.block_hashes;
  Alcotest.(check int) "same event count" a.total_events b.total_events;
  let c = Population.run (population_config ~seed:8) in
  Alcotest.(check bool)
    "different seed, different blocks" true
    (c.block_hashes <> a.block_hashes)

let test_population_stats () =
  let r = Population.run (population_config ~seed:3) in
  Alcotest.(check bool) "agreement" true r.agreement;
  Alcotest.(check int) "window never exceeded" 0 r.window_exceeded_rounds;
  List.iter
    (fun (s : Population.round_stat) ->
      Alcotest.(check bool) "proposer selected" true (s.proposers >= 1);
      Alcotest.(check bool) "eligible bounded" true
        (s.eligible >= 1 && s.eligible <= audit_users);
      Alcotest.(check bool) "latency positive" true (s.latency_s > 0.0);
      Alcotest.(check bool) "events counted" true (s.events > 0);
      Alcotest.(check bool) "bytes modeled" true (s.modeled_bytes_per_user > 0.0))
    r.round_stats;
  Alcotest.(check bool) "peak pending tracked" true (r.peak_pending > 0)

let contains ~(affix : string) (s : string) : bool =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) affix || go (i + 1)) in
  n = 0 || go 0

let test_population_gauges () =
  let registry = Algorand_obs.Registry.create () in
  let cfg = { (population_config ~seed:5) with registry = Some registry } in
  let r = Population.run cfg in
  Alcotest.(check bool) "agreement" true r.agreement;
  let json = Algorand_obs.Registry.to_json registry in
  List.iter
    (fun gauge ->
      Alcotest.(check bool)
        (Printf.sprintf "%s exported" gauge)
        true
        (contains ~affix:gauge json))
    [ "sim.population"; "sim.events_live"; "sim.heap_peak" ]

(* ---- Unboxed event-queue vs sorted-list oracle. ------------------- *)

(* The oracle: (time, arrival index, value) sorted by time then
   arrival - the FIFO tie-break contract. *)
module Oracle = struct
  type 'a t = { mutable items : (float * int * 'a) list; mutable next : int }

  let create () = { items = []; next = 0 }

  let push t ~time v =
    t.items <- (time, t.next, v) :: t.items;
    t.next <- t.next + 1

  let pop t =
    match
      List.sort
        (fun (t1, s1, _) (t2, s2, _) ->
          match compare t1 t2 with 0 -> compare s1 s2 | c -> c)
        t.items
    with
    | [] -> None
    | ((time, _, v) as hd) :: _ ->
      t.items <- List.filter (fun x -> x != hd) t.items;
      Some (time, v)
end

let test_queue_ordering () =
  let q = Event_queue.create () in
  let o = Oracle.create () in
  List.iteri
    (fun i time ->
      Event_queue.push q ~time i;
      Oracle.push o ~time i)
    [ 5.0; 1.0; 3.0; 1.0; 0.0; 3.0; 2.5 ];
  let rec drain acc =
    match (Event_queue.pop q, Oracle.pop o) with
    | None, None -> List.rev acc
    | Some (t1, v1), Some (t2, v2) ->
      Alcotest.(check (float 0.0)) "time matches oracle" t2 t1;
      Alcotest.(check int) "value matches oracle" v2 v1;
      drain (v1 :: acc)
    | _ -> Alcotest.fail "queue and oracle disagree on length"
  in
  (* Ties at 1.0 and 3.0 must come out in push order. *)
  Alcotest.(check (list int)) "drain order" [ 4; 1; 3; 6; 2; 5; 0 ] (drain [])

let test_queue_random_interleaving () =
  let rng = Algorand_sim.Rng.create 99 in
  let q = Event_queue.create () in
  let o = Oracle.create () in
  for _ = 1 to 2_000 do
    if Algorand_sim.Rng.float rng 1.0 < 0.6 || Event_queue.is_empty q then begin
      (* coarse times force plenty of FIFO ties *)
      let time = float_of_int (Algorand_sim.Rng.int rng 50) in
      let v = Algorand_sim.Rng.int rng 1_000_000 in
      Event_queue.push q ~time v;
      Oracle.push o ~time v
    end
    else begin
      match (Event_queue.pop q, Oracle.pop o) with
      | Some (t1, v1), Some (t2, v2) ->
        Alcotest.(check (float 0.0)) "time" t2 t1;
        Alcotest.(check int) "value" v2 v1
      | _ -> Alcotest.fail "length mismatch"
    end;
    Alcotest.(check int) "length agrees" (List.length o.items) (Event_queue.length q)
  done;
  while not (Event_queue.is_empty q) do
    match (Event_queue.pop q, Oracle.pop o) with
    | Some (t1, v1), Some (t2, v2) ->
      Alcotest.(check (float 0.0)) "time" t2 t1;
      Alcotest.(check int) "value" v2 v1
    | _ -> Alcotest.fail "length mismatch at drain"
  done;
  Alcotest.(check bool) "oracle drained" true (o.items = [])

let test_queue_peak () =
  let q = Event_queue.create () in
  Alcotest.(check int) "empty peak" 0 (Event_queue.peak q);
  for i = 1 to 100 do
    Event_queue.push q ~time:(float_of_int i) i
  done;
  for _ = 1 to 60 do
    ignore (Event_queue.pop q)
  done;
  for i = 1 to 10 do
    Event_queue.push q ~time:(float_of_int i) i
  done;
  Alcotest.(check int) "peak is high-water mark" 100 (Event_queue.peak q);
  Alcotest.(check int) "length is live count" 50 (Event_queue.length q)

let test_engine_batch_semantics () =
  (* Reorder-hook batches: events sharing a timestamp pop as one batch;
     events a batch schedules at the same virtual time form a later
     batch. The unboxed queue and scratch-buffer pop_batch must
     preserve these semantics. *)
  let engine = Engine.create () in
  let log = ref [] in
  let batches = ref [] in
  Engine.set_reorder_hook engine
    (Some
       (fun batch ->
         batches := Array.length batch :: !batches;
         batch));
  Engine.schedule engine ~delay:1.0 (fun () ->
      log := "a" :: !log;
      Engine.schedule engine ~delay:0.0 (fun () -> log := "d" :: !log));
  Engine.schedule engine ~delay:1.0 (fun () -> log := "b" :: !log);
  Engine.schedule engine ~delay:1.0 (fun () -> log := "c" :: !log);
  ignore (Engine.run engine ());
  Alcotest.(check (list string)) "FIFO within batch, spawn in next batch"
    [ "a"; "b"; "c"; "d" ] (List.rev !log);
  Alcotest.(check (list int)) "batch sizes" [ 3; 1 ] (List.rev !batches)

let test_engine_counters () =
  let engine = Engine.create () in
  for i = 1 to 5 do
    Engine.schedule engine ~delay:(float_of_int i) (fun () -> ())
  done;
  Alcotest.(check int) "pending" 5 (Engine.pending engine);
  Alcotest.(check int) "peak" 5 (Engine.peak_pending engine);
  ignore (Engine.run engine ());
  Alcotest.(check int) "drained" 0 (Engine.pending engine);
  Alcotest.(check int) "peak survives drain" 5 (Engine.peak_pending engine);
  Alcotest.(check int) "events processed" 5 (Engine.events_processed engine)

let suite =
  [
    ( "population",
      [
        Alcotest.test_case "equivalence audit: 20 seeds vs harness" `Slow
          test_equivalence_audit;
        Alcotest.test_case "same seed, same blocks" `Quick test_population_determinism;
        Alcotest.test_case "only a minority materialized at scale" `Quick
          test_abstraction_materializes_minority;
        Alcotest.test_case "round stats are sane" `Quick test_population_stats;
        Alcotest.test_case "obs gauges exported" `Quick test_population_gauges;
      ] );
    ( "event-queue-unboxed",
      [
        Alcotest.test_case "ordering and FIFO tie-break vs oracle" `Quick
          test_queue_ordering;
        Alcotest.test_case "2000-op random interleaving vs oracle" `Quick
          test_queue_random_interleaving;
        Alcotest.test_case "peak high-water mark" `Quick test_queue_peak;
        Alcotest.test_case "engine batch semantics" `Quick test_engine_batch_semantics;
        Alcotest.test_case "engine counters" `Quick test_engine_counters;
      ] );
  ]
