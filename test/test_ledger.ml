(* Ledger building blocks: wire format, transactions, balances,
   transaction pool, blocks, genesis, storage sharding. *)

open Algorand_crypto
open Algorand_ledger

let t name f = Alcotest.test_case name `Quick f
let qt ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let sig_scheme = Signature_scheme.sim
let signer_of seed = sig_scheme.generate ~seed
let alice_signer, alice = signer_of "alice"
let _bob_signer, bob = signer_of "bob"

let wire_roundtrip () =
  let fields = [ "a"; ""; String.make 1000 'x'; "\x00\xff" ] in
  Alcotest.(check (list string)) "roundtrip" fields (Wire.split (Wire.concat fields));
  Alcotest.(check int) "u64 read" 123456 (Wire.read_u64 (Wire.u64 123456) 0)

let wire_rejects_truncation () =
  let s = Wire.concat [ "hello" ] in
  Alcotest.check_raises "truncated" (Invalid_argument "Wire.split: truncated field")
    (fun () -> ignore (Wire.split (String.sub s 0 (String.length s - 1))))

let tx_roundtrip () =
  let tx =
    Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount:42 ~nonce:0
  in
  (match Transaction.deserialize (Transaction.serialize tx) with
  | Some tx' -> Alcotest.(check string) "id stable" (Transaction.id tx) (Transaction.id tx')
  | None -> Alcotest.fail "deserialize failed");
  Alcotest.(check bool) "signature valid" true
    (Transaction.verify_signature ~scheme:sig_scheme tx);
  let forged = { tx with amount = 43 } in
  Alcotest.(check bool) "forgery rejected" false
    (Transaction.verify_signature ~scheme:sig_scheme forged)

let balances_flow () =
  let b = Balances.credit Balances.empty alice 100 in
  Alcotest.(check int) "credited" 100 (Balances.balance b alice);
  Alcotest.(check int) "total" 100 (Balances.total b);
  let tx =
    Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount:30 ~nonce:0
  in
  match Balances.apply_tx b tx with
  | Error _ -> Alcotest.fail "valid tx rejected"
  | Ok b' ->
    Alcotest.(check int) "alice debited" 70 (Balances.balance b' alice);
    Alcotest.(check int) "bob credited" 30 (Balances.balance b' bob);
    Alcotest.(check int) "total conserved" 100 (Balances.total b');
    Alcotest.(check int) "nonce advanced" 1 (Balances.nonce b' alice);
    (* Replay: same nonce again must fail. *)
    (match Balances.apply_tx b' tx with
    | Error (`Bad_nonce _) -> ()
    | _ -> Alcotest.fail "replay accepted");
    (* Overdraft. *)
    let big =
      Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount:500
        ~nonce:1
    in
    (match Balances.apply_tx b' big with
    | Error (`Insufficient_balance _) -> ()
    | _ -> Alcotest.fail "overdraft accepted")

let double_spend_rejected () =
  (* The core double-spending scenario: two transactions spending the
     same balance; only the first applies. *)
  let b = Balances.credit Balances.empty alice 10 in
  let spend1 =
    Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount:10 ~nonce:0
  in
  let spend2 =
    Transaction.make ~signer:alice_signer ~sender:alice ~recipient:alice ~amount:10
      ~nonce:0
  in
  match Balances.apply_all b [ spend1; spend2 ] with
  | Ok _ -> Alcotest.fail "double spend accepted"
  | Error (`Bad_nonce _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Balances.pp_tx_error e

let txpool_dedup_and_take () =
  let pool = Txpool.create () in
  let tx n =
    Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount:1 ~nonce:n
  in
  Alcotest.(check bool) "first add" true (Txpool.add pool (tx 0));
  Alcotest.(check bool) "duplicate" false (Txpool.add pool (tx 0));
  ignore (Txpool.add pool (tx 1));
  ignore (Txpool.add pool (tx 2));
  Alcotest.(check int) "size" 3 (Txpool.size pool);
  let one_tx_bytes = Transaction.size_bytes (tx 0) in
  let taken = Txpool.take pool ~max_bytes:(2 * one_tx_bytes) in
  Alcotest.(check int) "took two (byte limit)" 2 (List.length taken);
  Alcotest.(check int) "one left" 1 (Txpool.size pool);
  (* FIFO order. *)
  Alcotest.(check (list int)) "fifo" [ 0; 1 ]
    (List.map (fun (x : Transaction.t) -> x.nonce) taken);
  Txpool.remove_committed pool ~round:1 [ tx 2 ];
  Alcotest.(check int) "committed removed" 0 (Txpool.size pool);
  (* take released the ids: an uncommitted taken tx can re-enter. *)
  Alcotest.(check bool) "taken tx re-enters" true (Txpool.add pool (tx 0));
  (* ...but a committed one cannot until its id expires. *)
  Alcotest.(check bool) "committed blocked" false (Txpool.add pool (tx 2));
  Txpool.expire pool ~before_round:2;
  Alcotest.(check bool) "expired id re-enters" true (Txpool.add pool (tx 2))

let txpool_seen_bounded () =
  (* The dedup table must not grow without bound under sustained
     commit traffic: committed ids are retained only until [expire]
     passes their round. *)
  let pool = Txpool.create () in
  let tx n =
    Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount:1 ~nonce:n
  in
  for round = 1 to 50 do
    let txs = List.init 10 (fun i -> tx ((round * 10) + i)) in
    List.iter (fun tx -> ignore (Txpool.add pool tx)) txs;
    ignore (Txpool.take pool ~max_bytes:max_int);
    Txpool.remove_committed pool ~round txs;
    (* Retention window of 8 rounds. *)
    Txpool.expire pool ~before_round:(round - 8)
  done;
  Alcotest.(check int) "pool drained" 0 (Txpool.size pool);
  Alcotest.(check bool) "seen table bounded" true (Txpool.seen_ids pool <= 9 * 10);
  (* An id inside the retention window still dedups; an expired one
     re-enters. *)
  Alcotest.(check bool) "recent still dedup" false (Txpool.add pool (tx 509));
  Alcotest.(check bool) "old id expired" true (Txpool.add pool (tx 15))

let txpool_prune_stale () =
  let pool = Txpool.create () in
  let tx n =
    Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount:1 ~nonce:n
  in
  for n = 0 to 9 do
    ignore (Txpool.add pool (tx n))
  done;
  (* On-chain nonce advanced to 4: transactions 0..3 are stale. *)
  let dropped = Txpool.prune pool ~stale:(fun (t : Transaction.t) -> t.nonce < 4) in
  Alcotest.(check int) "dropped" 4 dropped;
  Alcotest.(check int) "left" 6 (Txpool.size pool);
  (* Pruned ids are released: a pruned tx can re-enter. *)
  Alcotest.(check bool) "pruned tx re-enters" true (Txpool.add pool (tx 0));
  Alcotest.(check (list int)) "order preserved"
    [ 4; 5; 6; 7; 8; 9; 0 ]
    (List.map
       (fun (x : Transaction.t) -> x.nonce)
       (Txpool.select pool ~max_bytes:max_int))

(* The headline bugfix: a self-payment must net to zero. The original
   [apply_tx] read the recipient's balance from the pre-debit map, so
   paying yourself X minted X coins out of thin air - inflating the
   sender's sortition weight without bound. *)
let self_payment_conserves () =
  let b = Balances.credit Balances.empty alice 100 in
  let self =
    Transaction.make ~signer:alice_signer ~sender:alice ~recipient:alice ~amount:60
      ~nonce:0
  in
  (match Balances.apply_tx b self with
  | Error e -> Alcotest.failf "self-payment rejected: %a" Balances.pp_tx_error e
  | Ok b' ->
    Alcotest.(check int) "balance unchanged" 100 (Balances.balance b' alice);
    Alcotest.(check int) "total unchanged" 100 (Balances.total b');
    Alcotest.(check int) "nonce consumed" 1 (Balances.nonce b' alice);
    Alcotest.(check bool) "invariant holds" true (Balances.invariant b');
    (* Repeated self-payments still cannot inflate. *)
    let rec spin b n =
      if n = 0 then b
      else
        let tx =
          Transaction.make ~signer:alice_signer ~sender:alice ~recipient:alice ~amount:60
            ~nonce:(Balances.nonce b alice)
        in
        spin (Result.get_ok (Balances.apply_tx b tx)) (n - 1)
    in
    let b100 = spin b' 100 in
    Alcotest.(check int) "still 100 after 101 self-pays" 100
      (Balances.balance b100 alice));
  (* A self-payment exceeding the balance is still an overdraft. *)
  let over =
    Transaction.make ~signer:alice_signer ~sender:alice ~recipient:alice ~amount:101
      ~nonce:0
  in
  match Balances.apply_tx b over with
  | Error (`Insufficient_balance _) -> ()
  | _ -> Alcotest.fail "self-overdraft accepted"

(* Randomized conservation oracle: drive the same arbitrary sequence of
   valid / invalid / self-pay transactions through a 1-shard and an
   8-shard ledger. After every step both must agree on the verdict and
   on all observable state, the money supply must never change, and the
   internal invariant must hold. *)
let conservation_oracle () =
  let n_accounts = 6 in
  let signers = Array.init n_accounts (fun i -> signer_of (Printf.sprintf "acct%d" i)) in
  let pk i = snd signers.(i) in
  (* Java-style 48-bit LCG: deterministic, fits a 63-bit int. *)
  let rng = ref 0x5DEECE66D in
  let rand bound =
    rng := ((!rng * 25214903917) + 11) land 0xFFFFFFFFFFFF;
    (!rng lsr 16) mod bound
  in
  let sequences = 1000 in
  for _seq = 1 to sequences do
    let b1 =
      ref
        (Array.fold_left
           (fun b (_, pk) -> Balances.credit b pk (10 + rand 50))
           (Balances.create ~shards:1) signers)
    in
    let b8 = ref (Balances.create ~shards:8) in
    Array.iter (fun (_, pk) -> b8 := Balances.credit !b8 pk (Balances.balance !b1 pk)) signers;
    let supply = Balances.total !b1 in
    for _step = 1 to 12 do
      let si = rand n_accounts in
      let sender = pk si in
      (* ~1/4 self-payments, the rest to a random recipient. *)
      let recipient = if rand 4 = 0 then sender else pk (rand n_accounts) in
      (* Mostly in-range amounts and correct nonces, with deliberate
         overdrafts and bad nonces mixed in. *)
      let amount =
        if rand 8 = 0 then Balances.balance !b1 sender + 1 + rand 100
        else rand (1 + Balances.balance !b1 sender)
      in
      let nonce =
        if rand 8 = 0 then Balances.nonce !b1 sender + 1 + rand 3
        else Balances.nonce !b1 sender
      in
      let tx =
        Transaction.make ~signer:(fst signers.(si)) ~sender ~recipient ~amount ~nonce
      in
      match (Balances.apply_tx !b1 tx, Balances.apply_tx !b8 tx) with
      | Ok b1', Ok b8' ->
        b1 := b1';
        b8 := b8'
      | Error e1, Error e2 ->
        if e1 <> e2 then
          Alcotest.failf "shard-dependent error: %a vs %a" Balances.pp_tx_error e1
            Balances.pp_tx_error e2
      | Ok _, Error e | Error e, Ok _ ->
        Alcotest.failf "shard-dependent verdict (%a)" Balances.pp_tx_error e
    done;
    if Balances.total !b1 <> supply then Alcotest.fail "1-shard supply drifted";
    if Balances.total !b8 <> supply then Alcotest.fail "8-shard supply drifted";
    if not (Balances.invariant !b1 && Balances.invariant !b8) then
      Alcotest.fail "invariant violated";
    if Balances.weights !b1 <> Balances.weights !b8 then
      Alcotest.fail "weights differ across shard counts";
    Array.iter
      (fun (_, pk) ->
        if Balances.nonce !b1 pk <> Balances.nonce !b8 pk then
          Alcotest.fail "nonces differ across shard counts")
      signers
  done

(* [apply_block] must be observably identical to [apply_all] - both on
   blocks big enough to take the parallel per-shard path and on blocks
   that force the sequential fallback by spending intra-block credits. *)
let apply_block_equals_apply_all () =
  let n_accounts = 40 in
  let signers = Array.init n_accounts (fun i -> signer_of (Printf.sprintf "blk%d" i)) in
  let pk i = snd signers.(i) in
  let equal_state (a : Balances.t) (b : Balances.t) =
    Balances.total a = Balances.total b
    && Balances.weights a = Balances.weights b
    && Array.for_all (fun (_, pk) -> Balances.nonce a pk = Balances.nonce b pk) signers
  in
  let check name base txs =
    let seq = Balances.apply_all base txs in
    let par = Balances.apply_block base txs in
    let nopar = Balances.apply_block ~parallel:false base txs in
    match (seq, par, nopar) with
    | Ok s, Ok p, Ok np ->
      Alcotest.(check bool) (name ^ ": parallel = sequential") true (equal_state s p);
      Alcotest.(check bool) (name ^ ": no-domain = sequential") true (equal_state s np);
      Alcotest.(check bool) (name ^ ": invariant") true (Balances.invariant p)
    | Error e, _, _ -> Alcotest.failf "%s: apply_all failed: %a" name Balances.pp_tx_error e
    | _, Error e, _ ->
      Alcotest.failf "%s: apply_block failed: %a" name Balances.pp_tx_error e
    | _, _, Error e ->
      Alcotest.failf "%s: apply_block (seq) failed: %a" name Balances.pp_tx_error e
  in
  let base =
    Array.fold_left (fun b (_, pk) -> Balances.credit b pk 1000) Balances.empty signers
  in
  (* A 400-tx block (over the 256 parallel threshold), each sender
     staying within its starting balance: the conservative per-shard
     path must succeed and match. *)
  let nonces = Array.make n_accounts 0 in
  let big_block =
    List.init 400 (fun k ->
        let i = k mod n_accounts in
        let nonce = nonces.(i) in
        nonces.(i) <- nonce + 1;
        Transaction.make ~signer:(fst signers.(i)) ~sender:(pk i)
          ~recipient:(pk ((i + 7) mod n_accounts))
          ~amount:2 ~nonce)
  in
  check "conservative block" base big_block;
  (* Credit-spending block: account 0 is broke and can only pay by
     spending coins received *earlier in the same block*. The
     conservative check fails, the fallback must get it right. *)
  let broke_base =
    Array.fold_left (fun b (_, pk) -> Balances.credit b pk 1000)
      (Balances.credit Balances.empty (pk 0) 0)
      (Array.sub signers 1 (n_accounts - 1))
  in
  let nonces = Array.make n_accounts 0 in
  let mk i recipient amount =
    let nonce = nonces.(i) in
    nonces.(i) <- nonce + 1;
    Transaction.make ~signer:(fst signers.(i)) ~sender:(pk i) ~recipient ~amount ~nonce
  in
  (* Funding first, then the broke account spends it; padded to cross
     the parallel threshold. Built with explicit sequencing: [mk]
     mutates the nonce counters, and [::] evaluates right to left. *)
  let funding = mk 1 (pk 0) 500 in
  let spend = mk 0 (pk 2) 400 in
  let padding =
    List.init 300 (fun k ->
        let i = 1 + (k mod (n_accounts - 1)) in
        mk i (pk ((i + 3) mod n_accounts)) 1)
  in
  let credit_spend = funding :: spend :: padding in
  check "credit-spending fallback" broke_base credit_spend;
  (* And self-payments inside a parallel block conserve. *)
  let nonces = Array.make n_accounts 0 in
  let selfy =
    List.init 300 (fun k ->
        let i = k mod n_accounts in
        let nonce = nonces.(i) in
        nonces.(i) <- nonce + 1;
        let recipient = if k mod 3 = 0 then pk i else pk ((i + 1) mod n_accounts) in
        Transaction.make ~signer:(fst signers.(i)) ~sender:(pk i) ~recipient ~amount:5
          ~nonce)
  in
  check "self-pays in parallel block" base selfy;
  (* An invalid transaction mid-block must fail identically. *)
  let bad =
    big_block
    @ [ Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount:1
          ~nonce:7 ]
  in
  (match (Balances.apply_all base bad, Balances.apply_block base bad) with
  | Error e1, Error e2 when e1 = e2 -> ()
  | _ -> Alcotest.fail "invalid block verdicts differ")

let filter_valid_batch_isolates () =
  let signers = Array.init 16 (fun i -> signer_of (Printf.sprintf "fv%d" i)) in
  let txs =
    List.init 16 (fun i ->
        let signer, pk = signers.(i) in
        Transaction.make ~signer ~sender:pk ~recipient:alice ~amount:1 ~nonce:0)
  in
  let corrupt (tx : Transaction.t) =
    { tx with signature = String.map (fun c -> Char.chr (Char.code c lxor 1)) tx.signature }
  in
  (* Clean batch: everything passes, order preserved. *)
  let valid, rejected = Transaction.filter_valid_batch ~scheme:sig_scheme txs in
  Alcotest.(check int) "clean: all valid" 16 (List.length valid);
  Alcotest.(check int) "clean: none rejected" 0 (List.length rejected);
  Alcotest.(check bool) "clean: order" true (valid = txs);
  (* Corrupt exactly #5 and #11: bisection must isolate those two and
     keep the other fourteen, order preserved. *)
  let tainted = List.mapi (fun i tx -> if i = 5 || i = 11 then corrupt tx else tx) txs in
  let valid, rejected = Transaction.filter_valid_batch ~scheme:sig_scheme tainted in
  Alcotest.(check int) "tainted: 14 valid" 14 (List.length valid);
  Alcotest.(check int) "tainted: 2 rejected" 2 (List.length rejected);
  Alcotest.(check bool) "tainted: the right ones" true
    (List.for_all2 ( = ) valid (List.filteri (fun i _ -> i <> 5 && i <> 11) txs));
  Alcotest.(check bool) "tainted: rejects are the corrupted" true
    (rejected = List.filteri (fun i _ -> i = 5 || i = 11) tainted)

let deserialize_bounds () =
  (* Oversized fields are hostile input, not transactions. *)
  let big = String.make 4096 'k' in
  let tx =
    Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount:1 ~nonce:0
  in
  let with_sender s = Wire.concat [ s; tx.recipient; Wire.u64 1; Wire.u64 0; tx.signature ] in
  Alcotest.(check bool) "oversized sender rejected" true
    (Transaction.deserialize (with_sender big) = None);
  let bloated =
    Wire.concat [ tx.sender; tx.recipient; Wire.u64 1; Wire.u64 0; big ]
  in
  Alcotest.(check bool) "oversized signature rejected" true
    (Transaction.deserialize bloated = None);
  (* Short integer fields must not escape as exceptions. *)
  let short_int = Wire.concat [ tx.sender; tx.recipient; "xx"; Wire.u64 0; tx.signature ] in
  Alcotest.(check bool) "short amount rejected" true
    (Transaction.deserialize short_int = None);
  (* [pp] is total even on weird-but-accepted keys shorter than its
     4-byte preview. *)
  let stubby = Option.get (Transaction.deserialize (with_sender "a")) in
  Alcotest.(check bool) "pp total on short keys" true
    (String.length (Format.asprintf "%a" Transaction.pp stubby) > 0)

(* ------------------------------------------------------------------ *)
(* Workload generator                                                  *)
(* ------------------------------------------------------------------ *)

let wl_config n mix zipf =
  {
    Workload.default_config with
    accounts = Workload.Synthetic { n; scheme = sig_scheme };
    zipf_s = zipf;
    mix;
    seed = 99;
  }

let workload_deterministic () =
  let mk () = Workload.create (wl_config 200 Workload.hostile 1.1) in
  let a = Workload.next_n (mk ()) 500 in
  let b = Workload.next_n (mk ()) 500 in
  Alcotest.(check bool) "same seed, same stream" true
    (List.for_all2
       (fun x y -> String.equal (Transaction.serialize x) (Transaction.serialize y))
       a b);
  let c = Workload.create { (wl_config 200 Workload.hostile 1.1) with seed = 100 } in
  Alcotest.(check bool) "different seed, different stream" false
    (List.for_all2
       (fun x y -> String.equal (Transaction.serialize x) (Transaction.serialize y))
       a
       (Workload.next_n c 500))

let workload_clean_applies () =
  (* A clean stream must apply with zero rejections and conserve the
     money supply, on both shard counts. *)
  let wl = Workload.create (wl_config 100 Workload.clean 1.0) in
  let txs = Workload.next_n wl 800 in
  let check shards =
    let b0 = Workload.initial_balances wl ~stake:1000 ~shards in
    match Balances.apply_all b0 txs with
    | Error e -> Alcotest.failf "clean stream rejected (%d shards): %a" shards
                   Balances.pp_tx_error e
    | Ok b ->
      Alcotest.(check int) "supply conserved" (Balances.total b0) (Balances.total b);
      Alcotest.(check bool) "invariant" true (Balances.invariant b)
  in
  check 1;
  check 8;
  let s = Workload.stats wl in
  Alcotest.(check int) "all valid" s.generated s.valid

let workload_mix_and_skew () =
  let wl = Workload.create (wl_config 500 Workload.hostile 1.1) in
  let n = 4000 in
  let txs = Workload.next_n wl n in
  let s = Workload.stats wl in
  Alcotest.(check int) "counters add up" s.generated
    (s.valid + s.invalid + s.duplicate + s.self_pay);
  (* Each hostile category lands within loose binomial bounds. *)
  let within name lo hi x =
    if x < lo || x > hi then Alcotest.failf "%s count %d outside [%d, %d]" name x lo hi
  in
  within "invalid" (n / 20) (n / 5) s.invalid;
  within "duplicate" (n / 20) (n / 5) s.duplicate;
  within "self-pay" (n / 50) (n / 8) s.self_pay;
  (* Duplicates are byte-identical re-emissions. *)
  let tbl = Hashtbl.create n in
  let dups = ref 0 in
  List.iter
    (fun tx ->
      let raw = Transaction.serialize tx in
      if Hashtbl.mem tbl raw then incr dups else Hashtbl.add tbl raw ())
    txs;
  Alcotest.(check bool) "byte-identical duplicates present" true (!dups >= s.duplicate / 2);
  (* Zipf skew: the hottest sender dwarfs the uniform share. *)
  let freq = Hashtbl.create 512 in
  List.iter
    (fun (tx : Transaction.t) ->
      Hashtbl.replace freq tx.sender (1 + Option.value ~default:0 (Hashtbl.find_opt freq tx.sender)))
    txs;
  let hottest = Hashtbl.fold (fun _ c acc -> max c acc) freq 0 in
  Alcotest.(check bool) "hot key skew" true (hottest > 20 * (n / 500))

let workload_burst_modulates () =
  let burst = { Workload.period_s = 10.0; duty = 0.25; mult = 8.0 } in
  let wl =
    Workload.create { (wl_config 50 Workload.clean 0.0) with burst = Some burst }
  in
  let mean ~now =
    let k = 400 in
    let acc = ref 0.0 in
    for _ = 1 to k do
      acc := !acc +. Workload.interarrival wl ~now ~rate_per_s:10.0
    done;
    !acc /. float_of_int k
  in
  let inside = mean ~now:1.0 in
  (* Inside the duty window arrivals are [mult] times faster. *)
  let outside = mean ~now:6.0 in
  Alcotest.(check bool) "burst compresses interarrivals" true
    (inside *. 3.0 < outside)

let block_hash_sensitivity () =
  let e = Block.empty ~round:3 ~prev_hash:(String.make 32 'p') in
  Alcotest.(check bool) "is_empty" true (Block.is_empty e);
  let e' = Block.empty ~round:4 ~prev_hash:(String.make 32 'p') in
  Alcotest.(check bool) "round changes hash" false
    (String.equal (Block.hash e) (Block.hash e'));
  let padded = { e with padding = 100 } in
  Alcotest.(check bool) "padding changes hash" false
    (String.equal (Block.hash e) (Block.hash padded));
  Alcotest.(check int) "padding counts in size" (Block.size_bytes e + 100)
    (Block.size_bytes padded);
  (* Empty blocks are deterministic: everyone computes the same hash. *)
  Alcotest.(check string) "deterministic empty"
    (Block.hash (Block.empty ~round:3 ~prev_hash:(String.make 32 'p')))
    (Block.hash e)

let genesis_checks () =
  let g = Genesis.make [ (alice, 60); (bob, 40) ] in
  Alcotest.(check int) "total" 100 (Balances.total g.balances);
  Alcotest.(check int) "alice stake" 60 (Balances.balance g.balances alice);
  Alcotest.(check int) "round 0" 0 (Block.round g.block);
  Alcotest.(check bool) "seed nonempty" true (String.length g.seed0 = 32);
  (* Deterministic given the same participants. *)
  let g' = Genesis.make [ (alice, 60); (bob, 40) ] in
  Alcotest.(check string) "deterministic" (Genesis.hash g) (Genesis.hash g');
  Alcotest.check_raises "empty allocations" (Invalid_argument
    "Genesis.make: no initial accounts") (fun () -> ignore (Genesis.make []));
  Alcotest.check_raises "zero stake" (Invalid_argument
    "Genesis.make: non-positive stake") (fun () -> ignore (Genesis.make [ (alice, 0) ]))

let storage_sharding () =
  Alcotest.(check bool) "single shard stores all" true
    (Storage.stores ~shards:1 ~pk:alice ~round:17);
  (* Across 10 shards each key stores ~1/10 of rounds. *)
  let stored = ref 0 in
  for round = 0 to 999 do
    if Storage.stores ~shards:10 ~pk:alice ~round then incr stored
  done;
  Alcotest.(check int) "exactly a tenth" 100 !stored;
  Alcotest.(check (float 0.01)) "cost" 130_000.0
    (Storage.per_block_cost_bytes ~shards:10 ~block_bytes:1_000_000
       ~certificate_bytes:300_000)

let suite =
  [
    ( "ledger",
      [
        t "wire roundtrip" wire_roundtrip;
        t "wire rejects truncation" wire_rejects_truncation;
        t "tx roundtrip + signatures" tx_roundtrip;
        t "balances flow" balances_flow;
        t "double spend rejected" double_spend_rejected;
        t "txpool dedup/take" txpool_dedup_and_take;
        t "txpool seen-table bounded" txpool_seen_bounded;
        t "txpool prune stale" txpool_prune_stale;
        t "self-payment conserves" self_payment_conserves;
        Alcotest.test_case "conservation oracle (1000 sequences)" `Slow
          conservation_oracle;
        t "apply_block = apply_all" apply_block_equals_apply_all;
        t "batch filter isolates corruption" filter_valid_batch_isolates;
        t "deserialize bounds + pp totality" deserialize_bounds;
        t "workload deterministic" workload_deterministic;
        t "workload clean stream applies" workload_clean_applies;
        t "workload mix and skew" workload_mix_and_skew;
        t "workload bursts" workload_burst_modulates;
        t "block hash sensitivity" block_hash_sensitivity;
        t "genesis" genesis_checks;
        t "storage sharding" storage_sharding;
        qt "deserialize total on garbage"
          QCheck2.Gen.(string_size (int_range 0 200))
          (fun junk ->
            (* Must never raise; any [Some] must re-serialize to the
               same id (deserialize is a partial inverse). *)
            match Transaction.deserialize junk with
            | None -> true
            | Some tx ->
              ignore (Format.asprintf "%a" Transaction.pp tx);
              (match Transaction.deserialize (Transaction.serialize tx) with
              | Some tx' -> Transaction.id tx = Transaction.id tx'
              | None -> false));
        qt "tx serialize roundtrips"
          QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 1000))
          (fun (amount, nonce) ->
            let tx =
              Transaction.make ~signer:alice_signer ~sender:alice ~recipient:bob ~amount
                ~nonce
            in
            match Transaction.deserialize (Transaction.serialize tx) with
            | Some tx' -> Transaction.id tx = Transaction.id tx'
            | None -> false);
      ] );
  ]
