(* The fast scalar-multiplication engine cross-checked against the
   naive double-and-add oracle on random and edge-case scalars, batch
   verification soundness (a single corrupted signature must sink the
   batch), and the small-order-component forgery that the engine's
   subgroup check rejects (and the retained naive verifier accepts,
   demonstrating the bug this PR fixes). *)

open Algorand_crypto

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f
let point_eq = Ed25519.equal_points
let order = Ed25519.order

(* Scalars the recoders historically get wrong: zero, one, around the
   group order, and around the w-NAF carry horizon at 2^252. *)
let edge_scalars =
  [
    Nat.zero;
    Nat.one;
    Nat.of_int 2;
    Nat.sub order Nat.one;
    order;
    Nat.add order Nat.one;
    Nat.shift_left Nat.one 252;
    Nat.sub (Nat.shift_left Nat.one 252) Nat.one;
  ]

let random_scalars ~seed ~bytes n =
  let d = Drbg.create ~seed in
  List.init n (fun _ -> Nat.of_bytes_le (Drbg.random_bytes d bytes))

(* A point of order 2: (0, -1). On the curve since -0 + 1 = 1 + 0. *)
let torsion2 () =
  match Ed25519.decode (Nat.to_bytes_le (Nat.sub Ed25519.Fp.p Nat.one) ~len:32) with
  | Some p -> p
  | None -> Alcotest.fail "torsion point (0,-1) must decode"

let fixed_base_oracle () =
  (* scalar_mult_base reduces mod L; the naive oracle doesn't need to,
     because B generates the order-L subgroup. *)
  let scalars =
    edge_scalars
    @ random_scalars ~seed:"comb" ~bytes:32 300
    @ random_scalars ~seed:"comb-wide" ~bytes:40 40
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) "comb = naive" true
        (point_eq (Ed25519.scalar_mult_base k) (Ed25519.scalar_mult k Ed25519.base)))
    scalars

let comb_of_point_oracle () =
  (* The generalized comb, built for a non-base prime-subgroup point
     (the shape the VRF caches for its hash-to-curve point). *)
  let p = Vrf.hash_to_curve "comb-of-point-test" in
  let c = Ed25519.comb_of_point p in
  let scalars = edge_scalars @ random_scalars ~seed:"comb-pt" ~bytes:32 60 in
  List.iter
    (fun k ->
      Alcotest.(check bool) "comb(P) = naive" true
        (point_eq (Ed25519.scalar_mult_comb c k) (Ed25519.scalar_mult k p)))
    scalars

let wnaf_oracle () =
  let p = Ed25519.scalar_mult (Nat.of_int 87654321) Ed25519.base in
  let scalars = edge_scalars @ random_scalars ~seed:"wnaf" ~bytes:32 300 in
  List.iter
    (fun k ->
      Alcotest.(check bool) "wnaf = naive" true
        (point_eq (Ed25519.scalar_mult_fast k p) (Ed25519.scalar_mult k p)))
    scalars;
  (* Exactness on the whole group: w-NAF is not allowed to reduce mod L,
     so it must agree with the oracle on a small-order point too. *)
  let tor = torsion2 () in
  List.iter
    (fun k ->
      Alcotest.(check bool) "wnaf exact on torsion" true
        (point_eq (Ed25519.scalar_mult_fast k tor) (Ed25519.scalar_mult k tor)))
    (edge_scalars @ random_scalars ~seed:"wnaf-tor" ~bytes:32 20)

let strauss_oracle () =
  let d = Drbg.create ~seed:"strauss" in
  let rand () = Nat.of_bytes_le (Drbg.random_bytes d 32) in
  for _ = 1 to 150 do
    let a = rand () and b = rand () in
    let q = Ed25519.scalar_mult (rand ()) Ed25519.base in
    let expect =
      Ed25519.add (Ed25519.scalar_mult a Ed25519.base) (Ed25519.scalar_mult b q)
    in
    Alcotest.(check bool) "aB + bQ" true
      (point_eq (Ed25519.double_scalar_mult_base a b q) expect);
    let p = Ed25519.scalar_mult (rand ()) Ed25519.base in
    let expect2 = Ed25519.add (Ed25519.scalar_mult a p) (Ed25519.scalar_mult b q) in
    Alcotest.(check bool) "aP + bQ" true
      (point_eq (Ed25519.double_scalar_mult a p b q) expect2)
  done;
  (* Edge scalars through the interleaved path. *)
  let q = Ed25519.scalar_mult (Nat.of_int 5) Ed25519.base in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let expect =
            Ed25519.add (Ed25519.scalar_mult a Ed25519.base) (Ed25519.scalar_mult b q)
          in
          Alcotest.(check bool) "edge aB + bQ" true
            (point_eq (Ed25519.double_scalar_mult_base a b q) expect))
        edge_scalars)
    edge_scalars

let multi_oracle () =
  let d = Drbg.create ~seed:"multi" in
  let rand () = Nat.of_bytes_le (Drbg.random_bytes d 32) in
  for n = 0 to 12 do
    let base_scalar = rand () in
    let pairs =
      List.init n (fun _ -> (rand (), Ed25519.scalar_mult (rand ()) Ed25519.base))
    in
    let expect =
      List.fold_left
        (fun acc (k, p) -> Ed25519.add acc (Ed25519.scalar_mult k p))
        (Ed25519.scalar_mult base_scalar Ed25519.base)
        pairs
    in
    Alcotest.(check bool)
      (Printf.sprintf "msm with %d terms" n)
      true
      (point_eq (Ed25519.multi_scalar_mult_base ~base_scalar pairs) expect)
  done

let affine_many () =
  let d = Drbg.create ~seed:"affine" in
  let pts =
    Array.init 17 (fun i ->
        if i = 0 then Ed25519.identity
        else Ed25519.scalar_mult (Nat.of_bytes_le (Drbg.random_bytes d 32)) Ed25519.base)
  in
  let batch = Ed25519.to_affine_many pts in
  Array.iteri
    (fun i p ->
      let x, y = Ed25519.to_affine p in
      let bx, by = batch.(i) in
      Alcotest.(check bool) "batch affine x" true (Nat.equal x bx);
      Alcotest.(check bool) "batch affine y" true (Nat.equal y by))
    pts;
  let ix, iy = batch.(0) in
  Alcotest.(check bool) "identity -> (0,1)" true
    (Nat.equal ix Nat.zero && Nat.equal iy Nat.one)

let subgroup_membership () =
  Alcotest.(check bool) "base in subgroup" true (Ed25519.in_prime_subgroup Ed25519.base);
  Alcotest.(check bool) "identity in subgroup" true
    (Ed25519.in_prime_subgroup Ed25519.identity);
  let tor = torsion2 () in
  Alcotest.(check bool) "torsion not in subgroup" false (Ed25519.in_prime_subgroup tor);
  let mixed = Ed25519.add Ed25519.base tor in
  Alcotest.(check bool) "mixed-order not in subgroup" false
    (Ed25519.in_prime_subgroup mixed);
  (* decode_checked mirrors the membership test. *)
  Alcotest.(check bool) "decode_checked rejects torsion" true
    (Ed25519.decode_checked (Ed25519.encode tor) = None);
  Alcotest.(check bool) "decode_checked rejects mixed" true
    (Ed25519.decode_checked (Ed25519.encode mixed) = None);
  Alcotest.(check bool) "decode_checked accepts honest pk" true
    (Ed25519.decode_checked (Ed25519.public_key (Ed25519.generate ~seed:"member"))
    <> None)

(* A signature under pk' = A + T (T of order 2) that the naive verifier
   accepts whenever the challenge is even: s*B = R + e*A = R + e*(A+T)
   - e*T and e*T = O for even e. The engine's verify must reject pk'
   outright (prime-subgroup check), closing the forgery. *)
let small_order_forgery () =
  let sk = Ed25519.generate ~seed:"forgery-victim" in
  let a = Ed25519.secret_scalar sk in
  let a_pt = Ed25519.scalar_mult_base a in
  let tor = torsion2 () in
  let pk' = Ed25519.encode (Ed25519.add a_pt tor) in
  let k = Nat.of_bytes_le (Sha256.digest_concat [ "forgery-nonce"; "x" ]) in
  let r_enc = Ed25519.encode (Ed25519.scalar_mult_base k) in
  let challenge msg =
    Nat.rem
      (Nat.of_bytes_le (Sha256.digest_concat [ "ed25519-chal"; r_enc; pk'; msg ]))
      order
  in
  (* Grind the message until the challenge is even (~1 bit). *)
  let rec find i =
    if i > 64 then Alcotest.fail "no even challenge in 64 tries (p ~ 2^-64)"
    else begin
      let msg = Printf.sprintf "forged-%d" i in
      let e = challenge msg in
      if Nat.testbit e 0 then find (i + 1) else (msg, e)
    end
  in
  let msg, e = find 0 in
  let s = Nat.rem (Nat.add k (Nat.mul e a)) order in
  let signature = r_enc ^ Nat.to_bytes_le s ~len:32 in
  Alcotest.(check bool) "naive verifier accepts the forgery" true
    (Ed25519.verify_ref ~public:pk' ~msg ~signature);
  Alcotest.(check bool) "engine verifier rejects the forgery" false
    (Ed25519.verify ~public:pk' ~msg ~signature);
  (* Control: the engine still accepts the honest signature. *)
  let honest = Ed25519.sign sk msg in
  Alcotest.(check bool) "honest signature accepted" true
    (Ed25519.verify ~public:(Ed25519.public_key sk) ~msg ~signature:honest)

let verify_matches_ref () =
  (* On honest keys the engine and the naive verifier agree, for both
     valid and corrupted signatures. *)
  let sk = Ed25519.generate ~seed:"agree" in
  let pk = Ed25519.public_key sk in
  let d = Drbg.create ~seed:"agree-msgs" in
  for i = 1 to 40 do
    let msg = Drbg.random_bytes d 48 in
    let signature = Ed25519.sign sk msg in
    let signature =
      if i mod 3 = 0 then begin
        (* Corrupt one byte. *)
        let b = Bytes.of_string signature in
        let j = Drbg.random_int d (Bytes.length b) in
        Bytes.set b j (Char.chr (Char.code (Bytes.get b j) lxor 0x40));
        Bytes.to_string b
      end
      else signature
    in
    Alcotest.(check bool) "verify = verify_ref"
      (Ed25519.verify_ref ~public:pk ~msg ~signature)
      (Ed25519.verify ~public:pk ~msg ~signature)
  done

let batch_sigs n ~seed =
  List.init n (fun i ->
      let sk = Ed25519.generate ~seed:(Printf.sprintf "%s-%d" seed i) in
      let msg = Printf.sprintf "batch message %d" i in
      (Ed25519.public_key sk, msg, Ed25519.sign sk msg))

let batch_accepts () =
  Alcotest.(check bool) "empty batch" true (Ed25519.verify_batch []);
  Alcotest.(check bool) "singleton" true (Ed25519.verify_batch (batch_sigs 1 ~seed:"b1"));
  Alcotest.(check bool) "32 sigs" true (Ed25519.verify_batch (batch_sigs 32 ~seed:"b32"))

let batch_rejects_one_corruption () =
  let items = batch_sigs 24 ~seed:"corrupt" in
  Alcotest.(check bool) "clean batch accepted" true (Ed25519.verify_batch items);
  (* Corrupting exactly one signature - any position - must sink the
     whole batch. *)
  List.iteri
    (fun victim _ ->
      let corrupted =
        List.mapi
          (fun i (pk, msg, signature) ->
            if i = victim then begin
              let b = Bytes.of_string signature in
              Bytes.set b 33 (Char.chr (Char.code (Bytes.get b 33) lxor 0x01));
              (pk, msg, Bytes.to_string b)
            end
            else (pk, msg, signature))
          items
      in
      if Ed25519.verify_batch corrupted then
        Alcotest.fail (Printf.sprintf "batch with corrupted sig %d accepted" victim))
    items;
  (* One wrong message also sinks it. *)
  let wrong_msg =
    List.mapi
      (fun i (pk, msg, signature) -> if i = 7 then (pk, msg ^ "!", signature) else (pk, msg, signature))
      items
  in
  Alcotest.(check bool) "wrong message rejected" false (Ed25519.verify_batch wrong_msg);
  (* A non-canonical s (s + order) is rejected even though it is
     congruent mod L. *)
  let bumped =
    List.mapi
      (fun i (pk, msg, signature) ->
        if i <> 3 then (pk, msg, signature)
        else begin
          let r_enc = String.sub signature 0 32 in
          let s = Nat.of_bytes_le (String.sub signature 32 32) in
          (pk, msg, r_enc ^ Nat.to_bytes_le (Nat.add s order) ~len:32)
        end)
      items
  in
  Alcotest.(check bool) "non-canonical s rejected" false (Ed25519.verify_batch bumped)

let batch_rejects_small_order_pk () =
  let items = batch_sigs 8 ~seed:"batch-tor" in
  let tor = torsion2 () in
  let poisoned =
    List.mapi
      (fun i (pk, msg, signature) ->
        if i <> 2 then (pk, msg, signature)
        else begin
          match Ed25519.decode pk with
          | Some a -> (Ed25519.encode (Ed25519.add a tor), msg, signature)
          | None -> Alcotest.fail "pk must decode"
        end)
      items
  in
  Alcotest.(check bool) "mixed-order pk rejected" false (Ed25519.verify_batch poisoned)

let scheme_batch_matches_single () =
  (* The scheme record's batch agrees with per-signature verify, for
     both implementations. *)
  List.iter
    (fun (scheme : Signature_scheme.scheme) ->
      let items =
        List.init 12 (fun i ->
            let signer, pk =
              scheme.generate ~seed:(Printf.sprintf "scheme-%s-%d" scheme.name i)
            in
            let msg = Printf.sprintf "m%d" i in
            (pk, msg, signer.sign msg))
      in
      Alcotest.(check bool) (scheme.name ^ " batch ok") true (scheme.verify_batch items);
      let bad =
        List.mapi
          (fun i (pk, msg, s) -> if i = 5 then (pk, msg ^ "x", s) else (pk, msg, s))
          items
      in
      Alcotest.(check bool) (scheme.name ^ " batch bad") false (scheme.verify_batch bad))
    [ Signature_scheme.ed25519; Signature_scheme.sim ]

let suite =
  [
    ( "scalarmult",
      [
        ts "fixed-base comb vs oracle" fixed_base_oracle;
        ts "arbitrary-point comb vs oracle" comb_of_point_oracle;
        ts "variable-base w-NAF vs oracle" wnaf_oracle;
        ts "Strauss-Shamir vs oracle" strauss_oracle;
        ts "multi-scalar vs oracle" multi_oracle;
        t "batched affine conversion" affine_many;
        ts "prime-subgroup membership" subgroup_membership;
        ts "small-order forgery rejected" small_order_forgery;
        ts "verify agrees with reference" verify_matches_ref;
        ts "batch accepts valid" batch_accepts;
        ts "batch rejects single corruption" batch_rejects_one_corruption;
        ts "batch rejects mixed-order pk" batch_rejects_small_order_pk;
        ts "scheme batch matches single" scheme_batch_matches_single;
      ] );
  ]
