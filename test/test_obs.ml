(* The observability layer: summary statistics under NaN poisoning,
   the typed metrics registry, the structured trace, and the
   Figure 7 regeneration pipeline built on top of them. *)

open Algorand_sim
module Trace = Algorand_obs.Trace
module Registry = Algorand_obs.Registry
module Figures = Algorand_core.Figures

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f

let contains needle hay =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Blank out JSON string literals so "no NaN token" checks only see
   value positions: keys like "nan_values_dropped" legitimately contain
   the letters. *)
let strip_quoted s =
  let b = Buffer.create (String.length s) in
  let in_string = ref false in
  String.iter
    (fun ch ->
      if ch = '"' then in_string := not !in_string
      else if not !in_string then Buffer.add_char b ch)
    s;
  Buffer.contents b

(* ---- Stats: percentile / summarize edge cases ---- *)

let stats_empty () =
  let s = Stats.summarize [] in
  Alcotest.(check int) "count" 0 s.count;
  Alcotest.(check int) "nans" 0 s.nans;
  Alcotest.(check bool) "median is NaN" true (Float.is_nan s.median);
  Alcotest.(check bool) "mean is NaN" true (Float.is_nan s.mean)

let stats_singleton () =
  let s = Stats.summarize [ 4.5 ] in
  Alcotest.(check int) "count" 1 s.count;
  Alcotest.(check (float 1e-9)) "min" 4.5 s.min;
  Alcotest.(check (float 1e-9)) "median" 4.5 s.median;
  Alcotest.(check (float 1e-9)) "max" 4.5 s.max;
  Alcotest.(check (float 1e-9)) "mean" 4.5 s.mean

let stats_two_element_interpolation () =
  (* Percentiles between two samples interpolate linearly. *)
  Alcotest.(check (float 1e-9)) "p50" 5.0 (Stats.percentile [| 0.0; 10.0 |] 0.5);
  Alcotest.(check (float 1e-9)) "p25" 2.5 (Stats.percentile [| 0.0; 10.0 |] 0.25);
  let s = Stats.summarize [ 10.0; 0.0 ] in
  Alcotest.(check (float 1e-9)) "median" 5.0 s.median;
  Alcotest.(check (float 1e-9)) "p75" 7.5 s.p75

let stats_nan_quarantine () =
  (* A NaN sample must not poison the sort or any statistic: it is
     counted and dropped. With polymorphic [compare] this test fails
     intermittently depending on where the NaN lands in the array. *)
  let s = Stats.summarize [ 1.0; nan; 3.0 ] in
  Alcotest.(check int) "count" 2 s.count;
  Alcotest.(check int) "nans" 1 s.nans;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "median" 2.0 s.median;
  Alcotest.(check (float 1e-9)) "max" 3.0 s.max;
  Alcotest.(check (float 1e-9)) "mean" 2.0 s.mean;
  let all_nan = Stats.summarize [ nan; nan ] in
  Alcotest.(check int) "all-NaN count" 0 all_nan.count;
  Alcotest.(check int) "all-NaN counted" 2 all_nan.nans;
  Alcotest.(check bool) "mean of NaNs is NaN" true (Float.is_nan (Stats.mean [ nan ]));
  Alcotest.(check (float 1e-9)) "mean skips NaN" 2.0 (Stats.mean [ 1.0; nan; 3.0 ])

(* ---- Registry ---- *)

let registry_counters_and_gauges () =
  let reg = Registry.create () in
  let c = Registry.counter reg "a.count" in
  Registry.incr c;
  Registry.add c 4;
  Alcotest.(check int) "count" 5 (Registry.count c);
  (* Same name returns the same underlying counter. *)
  Registry.incr (Registry.counter reg "a.count");
  Alcotest.(check (option int)) "shared" (Some 6) (Registry.counter_value reg "a.count");
  let g = Registry.gauge reg "a.gauge" in
  Registry.set g 2.5;
  Alcotest.(check (option (float 1e-9))) "gauge" (Some 2.5) (Registry.gauge_value reg "a.gauge");
  (* Requesting an existing name with a different type is a bug. *)
  (match Registry.gauge reg "a.count" with
  | _ -> Alcotest.fail "type mismatch accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check (list string)) "names sorted" [ "a.count"; "a.gauge" ] (Registry.names reg)

let registry_histogram_nan () =
  let reg = Registry.create () in
  let h = Registry.histogram reg "h" in
  Registry.observe h 0.010;
  Registry.observe h 0.020;
  Registry.observe h nan;
  let s = Registry.hist_snapshot h in
  Alcotest.(check int) "finite count" 2 s.h_count;
  Alcotest.(check int) "nan count" 1 s.h_nan;
  Alcotest.(check (float 1e-9)) "sum" 0.030 s.h_sum;
  Alcotest.(check (float 1e-9)) "min" 0.010 s.h_min;
  Alcotest.(check (float 1e-9)) "max" 0.020 s.h_max;
  Alcotest.(check int) "bucketed observations" 2
    (List.fold_left (fun n (_, c) -> n + c) 0 s.h_buckets)

let registry_histogram_buckets () =
  let reg = Registry.create () in
  let h = Registry.histogram reg ~lo:1.0 ~growth:2.0 ~buckets:3 "b" in
  (* underflow, (1,2], (2,4], (4,8], overflow *)
  List.iter (Registry.observe h) [ 0.5; 1.5; 3.0; 3.5; 100.0 ];
  let s = Registry.hist_snapshot h in
  Alcotest.(check int) "count" 5 s.h_count;
  let bucket bound =
    List.fold_left (fun n (b, c) -> if b = bound then n + c else n) 0 s.h_buckets
  in
  Alcotest.(check int) "underflow" 1 (bucket 1.0);
  Alcotest.(check int) "(1,2]" 1 (bucket 2.0);
  Alcotest.(check int) "(2,4]" 2 (bucket 4.0);
  Alcotest.(check int) "overflow" 1 (bucket infinity)

let registry_json_deterministic () =
  let build () =
    let reg = Registry.create () in
    Registry.add (Registry.counter reg "z.last") 3;
    Registry.add (Registry.counter reg "a.first") 1;
    Registry.set (Registry.gauge reg "poisoned") nan;
    let h = Registry.histogram reg "h" in
    Registry.observe h 0.5;
    Registry.observe h nan;
    Registry.to_json reg
  in
  let a = build () and b = build () in
  Alcotest.(check string) "bit-identical" a b;
  Alcotest.(check bool) "no nan value" false (contains "nan" (strip_quoted a));
  Alcotest.(check bool) "keys sorted" true (contains "\"a.first\":1,\"z.last\":3" a);
  Alcotest.(check bool) "nan observation counted" true (contains "\"nan\":1" a)

(* ---- Trace ---- *)

let trace_disabled_by_default () =
  let tr = Trace.create () in
  Trace.add_ring tr ~capacity:8;
  Alcotest.(check bool) "disabled" false (Trace.enabled tr);
  Trace.instant tr ~ts:1.0 ~cat:"x" ~name:"dropped" ();
  Alcotest.(check int) "emit is a no-op" 0 (List.length (Trace.ring_events tr))

let trace_ring_and_spans () =
  let tr = Trace.create () in
  Trace.enable tr;
  Trace.add_ring tr ~capacity:3;
  (* A nested pair of spans: the outer covers the inner. *)
  Trace.span tr ~node:2 ~round:5 ~step:1 ~start_ts:1.0 ~ts:2.0 ~cat:"step" ~name:"inner" ();
  Trace.span tr ~node:2 ~round:5 ~start_ts:0.0 ~ts:3.0 ~cat:"round" ~name:"outer" ();
  (match Trace.ring_events tr with
  | [ inner; outer ] ->
    Alcotest.(check (float 1e-9)) "inner dur" 1.0 (Trace.duration inner);
    Alcotest.(check (float 1e-9)) "outer dur" 3.0 (Trace.duration outer);
    Alcotest.(check bool) "nesting" true
      (outer.start_ts <= inner.start_ts && inner.ts <= outer.ts);
    Alcotest.(check int) "step tagged" 1 inner.step;
    Alcotest.(check int) "step absent" (-1) outer.step
  | evs -> Alcotest.fail (Printf.sprintf "expected 2 events, got %d" (List.length evs)));
  (* The ring keeps only the most recent [capacity] events. *)
  for i = 1 to 5 do
    Trace.instant tr ~ts:(float_of_int i) ~cat:"x" ~name:(string_of_int i) ()
  done;
  Alcotest.(check (list string)) "ring evicts oldest" [ "3"; "4"; "5" ]
    (List.map (fun (e : Trace.event) -> e.name) (Trace.ring_events tr))

let trace_json_shape () =
  let tr = Trace.create () in
  Trace.enable tr;
  Trace.add_ring tr ~capacity:2;
  Trace.instant tr ~node:1 ~ts:0.5 ~cat:"gossip" ~name:"drop" ~detail:[ ("why", "dup") ] ();
  Trace.span tr ~start_ts:1.0 ~ts:2.5 ~cat:"phase" ~name:"proposal" ();
  (match Trace.ring_events tr with
  | [ i; s ] ->
    Alcotest.(check string) "instant json"
      "{\"ts\":0.500000,\"cat\":\"gossip\",\"name\":\"drop\",\"node\":1,\"detail\":{\"why\":\"dup\"}}"
      (Trace.event_to_json i);
    Alcotest.(check string) "span json"
      "{\"ts\":2.500000,\"start\":1.000000,\"dur\":1.500000,\"cat\":\"phase\",\"name\":\"proposal\"}"
      (Trace.event_to_json s)
  | _ -> Alcotest.fail "expected 2 events")

let trace_disabled_zero_allocation () =
  (* The whole point of the [if Trace.enabled tr then ...] discipline:
     a disabled trace must cost nothing on the hot path. Run many
     guarded emission sites and check the minor heap barely moves (the
     epsilon absorbs the boxed floats from Gc.minor_words itself). *)
  let tr = Trace.create () in
  Trace.add_ring tr ~capacity:64;
  let emit_site i =
    if Trace.enabled tr then
      Trace.instant tr ~node:i ~round:i ~ts:(float_of_int i) ~cat:"hot" ~name:"site" ()
  in
  (* Warm up so any one-time allocation is done. *)
  emit_site 0;
  let before = Gc.minor_words () in
  for i = 1 to 100_000 do
    emit_site i
  done;
  let after = Gc.minor_words () in
  Alcotest.(check bool) "no per-site allocation" true (after -. before < 256.0)

(* ---- Metrics: catch-up records and the per-round index ---- *)

let metrics_skips_catchup_records () =
  let m = Metrics.create ~users:2 () in
  let r1 = Metrics.start_round m ~user:0 ~round:1 ~now:0.0 in
  r1.proposal_done <- 1.0;
  r1.ba_done <- 2.0;
  r1.final_done <- 3.0;
  (* A catch-up graft: the round completed, but the node never ran the
     proposal or BinaryBA* phases, so the intermediates stay NaN. *)
  let r2 = Metrics.start_round m ~user:1 ~round:1 ~now:0.0 in
  r2.final_done <- 4.0;
  Alcotest.(check (list (float 1e-9))) "proposal excludes graft" [ 1.0 ]
    (Metrics.phase_times m Metrics.Block_proposal);
  Alcotest.(check (list (float 1e-9))) "ba excludes graft" [ 1.0 ]
    (Metrics.phase_times m Metrics.Ba_no_final);
  Alcotest.(check (list (float 1e-9))) "final excludes graft" [ 1.0 ]
    (Metrics.phase_times m Metrics.Ba_final);
  Alcotest.(check int) "graft counted" 1 (Metrics.incomplete_phase_records m);
  (* Total round time is still measurable for the graft. *)
  Alcotest.(check (list (float 1e-9))) "completion keeps both" [ 3.0; 4.0 ]
    (List.sort Float.compare (Metrics.round_completion_times m ~round:1));
  Alcotest.(check int) "both completed" 2 (Metrics.completed_rounds m)

let metrics_round_index () =
  let m = Metrics.create ~users:1 () in
  for round = 1 to 50 do
    let r = Metrics.start_round m ~user:0 ~round ~now:0.0 in
    r.final_done <- float_of_int round
  done;
  Alcotest.(check (list (float 1e-9))) "indexed lookup" [ 17.0 ]
    (Metrics.round_completion_times m ~round:17);
  Alcotest.(check (list (float 1e-9))) "absent round" []
    (Metrics.round_completion_times m ~round:99);
  Alcotest.(check int) "record count" 50 (Metrics.record_count m)

(* ---- Figure 7 golden output ---- *)

let fig7_deterministic () =
  let run () = Figures.fig7_run ~users:8 ~rounds:2 ~seed:3 ~block_bytes:50_000 () in
  let a = run () and b = run () in
  Alcotest.(check string) "bit-identical across runs" a b;
  let bare = String.lowercase_ascii (strip_quoted a) in
  Alcotest.(check bool) "no nan value" false (contains "nan" bare);
  Alcotest.(check bool) "no inf value" false (contains "inf" bare);
  List.iter
    (fun key -> Alcotest.(check bool) key true (contains (Printf.sprintf "\"%s\"" key) a))
    [
      "figure"; "seed"; "users"; "rounds"; "completed_records"; "skipped_incomplete_records";
      "nan_values_dropped"; "block_proposal"; "ba_no_final"; "ba_final"; "round_total";
    ]

let suite =
  [
    ( "obs",
      [
        t "stats: empty summary" stats_empty;
        t "stats: singleton" stats_singleton;
        t "stats: two-element interpolation" stats_two_element_interpolation;
        t "stats: NaN quarantine" stats_nan_quarantine;
        t "registry: counters and gauges" registry_counters_and_gauges;
        t "registry: histogram NaN quarantine" registry_histogram_nan;
        t "registry: histogram buckets" registry_histogram_buckets;
        t "registry: deterministic NaN-free json" registry_json_deterministic;
        t "trace: disabled by default" trace_disabled_by_default;
        t "trace: ring buffer and span nesting" trace_ring_and_spans;
        t "trace: json shape" trace_json_shape;
        t "trace: disabled mode allocates nothing" trace_disabled_zero_allocation;
        t "metrics: catch-up records quarantined" metrics_skips_catchup_records;
        t "metrics: per-round index" metrics_round_index;
        ts "figure 7: deterministic and NaN-free" fig7_deterministic;
      ] );
  ]
