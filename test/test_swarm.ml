(* Swarm tests (lib/check/swarm + gallery): the config codec
   round-trips, episodes and whole swarm runs are deterministic, a
   deliberately seeded ledger bug is found and shrunk to the same
   minimal composition twice, the adversary gallery audits pass, and a
   six-family composition survives a full episode. *)

module Swarm = Algorand_check.Swarm
module Gallery = Algorand_check.Gallery
module Balances = Algorand_ledger.Balances
module Rng = Algorand_sim.Rng

let t name f = Alcotest.test_case name `Quick f

(* --------------------------- config codec -------------------------- *)

let codec_round_trip () =
  let rng = Rng.create 1234 in
  for _ = 1 to 200 do
    let c = Swarm.fresh_config rng in
    let c = if Rng.bool rng then Swarm.mutate rng c else c in
    let line = Swarm.to_string c in
    match Swarm.of_string line with
    | Ok c' -> Alcotest.(check string) "round-trip" line (Swarm.to_string c')
    | Error e -> Alcotest.failf "could not parse %S: %s" line e
  done

let codec_rejects_garbage () =
  List.iter
    (fun s ->
      match Swarm.of_string s with
      | Ok _ -> Alcotest.failf "parsed %S" s
      | Error _ -> ())
    [ ""; "seed=1"; "seed=x;users=8;rounds=3;st="; "seed=1;users=8;rounds=3;st=warp" ]

(* --------------------------- determinism --------------------------- *)

let episode_deterministic () =
  let c =
    {
      Swarm.seed = 4242;
      users = 9;
      rounds = 3;
      stressors = [ Swarm.Loss 0.05; Swarm.Dup 0.1; Swarm.Partition ];
    }
  in
  let a = Swarm.run_episode c and b = Swarm.run_episode c in
  Alcotest.(check (option string)) "verdict" a.violation b.violation;
  Alcotest.(check string) "detail" a.detail b.detail;
  Alcotest.(check int) "events" a.events b.events;
  Alcotest.(check (list string)) "fingerprint" a.fingerprint b.fingerprint

let swarm_run_deterministic () =
  let capture () =
    let lines = ref [] in
    let r =
      Swarm.run ~log:(fun l -> lines := l :: !lines) ~budget_sec:2 ~seed_stream:1 ()
    in
    (List.rev !lines, r)
  in
  let log_a, a = capture () in
  let log_b, b = capture () in
  Alcotest.(check (list string)) "episode logs" log_a log_b;
  Alcotest.(check string) "corpus digest" (Swarm.corpus_digest a) (Swarm.corpus_digest b);
  Alcotest.(check int) "episodes" a.episodes b.episodes;
  Alcotest.(check bool) "ran something" true (a.episodes > 0);
  Alcotest.(check bool) "corpus grew" true (List.length a.corpus > 0)

(* ------------------------- seeded violation ------------------------ *)

(* Reintroduce the PR 8 self-payment inflation bug behind its test
   hook: the swarm must catch it as a conservation violation and
   shrink it to the hostile-workload stressor alone - twice, with
   identical output. *)
let seeded_bug_shrinks_deterministically () =
  Fun.protect
    ~finally:(fun () -> Balances.chaos_selfpay_inflation := false)
    (fun () ->
      Balances.chaos_selfpay_inflation := true;
      let c =
        {
          Swarm.seed = 7;
          users = 9;
          rounds = 3;
          stressors =
            [
              Swarm.Loss 0.02;
              Swarm.Dup 0.05;
              Swarm.Hostile_txs { rate = 20.0; zipf = 1.1 };
            ];
        }
      in
      let ep = Swarm.run_episode c in
      Alcotest.(check (option string)) "found" (Some "conservation") ep.violation;
      let s1 = Swarm.shrink c ~invariant:"conservation" in
      let s2 = Swarm.shrink c ~invariant:"conservation" in
      Alcotest.(check string) "shrink deterministic" (Swarm.to_string s1)
        (Swarm.to_string s2);
      Alcotest.(check int) "minimal composition" 1 (List.length s1.stressors);
      (match s1.stressors with
      | [ Swarm.Hostile_txs _ ] -> ()
      | _ -> Alcotest.failf "unexpected shrink %s" (Swarm.to_string s1));
      let r1 = Swarm.reproducer s1 ~invariant:"conservation" in
      let r2 = Swarm.reproducer s2 ~invariant:"conservation" in
      Alcotest.(check string) "reproducer deterministic" r1 r2;
      Alcotest.(check bool) "replayable one-liner" true
        (String.length r1 > 0
        && (not (String.contains r1 '\n'))
        && String.length r1 >= 10
        && String.equal (String.sub r1 0 10) "REPRODUCE:"))

(* ------------------------- adversary gallery ----------------------- *)

let gallery_undecidable_safe () =
  let r = Gallery.undecidable_run ~laggard:0 () in
  Alcotest.(check int) "no violations" 0 (List.length r.violations);
  Alcotest.(check bool) "stale traffic exercised" true (r.stale_deliveries > 0);
  Alcotest.(check int) "nobody wedged" 0 r.hung

let gallery_adaptive_erasure_safe () =
  let forged = ref 0 in
  for seed = 1 to 3 do
    let r = Gallery.adaptive_run ~seed ~budget:2 ~erasure:true () in
    Alcotest.(check int) "no violations" 0 (List.length r.violations);
    Alcotest.(check int) "no retro forgeries under erasure" 0 r.retro_forged;
    forged := !forged + r.forged
  done;
  Alcotest.(check bool) "adversary exercised" true (!forged > 0)

(* ----------------------- composition coverage ---------------------- *)

let six_families_compose () =
  let c =
    {
      Swarm.seed = 99;
      users = 9;
      rounds = 3;
      stressors =
        [
          Swarm.Churn { fraction = 0.1; down_for = 8.0 };
          Swarm.Loss 0.02;
          Swarm.Dup 0.05;
          Swarm.Partition;
          Swarm.Bytes_wire;
          Swarm.Hostile_txs { rate = 2.0; zipf = 0.0 };
        ];
    }
  in
  Alcotest.(check int) "six distinct families" 6 (Swarm.families c.stressors);
  let ep = Swarm.run_episode c in
  Alcotest.(check (option string)) "no violation" None ep.violation;
  Alcotest.(check bool) "coverage observed" true (List.length ep.fingerprint > 0)

let suite =
  [
    ( "swarm",
        [
        t "codec round-trip" codec_round_trip;
        t "codec rejects garbage" codec_rejects_garbage;
        t "episode deterministic" episode_deterministic;
        t "swarm run deterministic" swarm_run_deterministic;
        t "seeded bug shrinks deterministically" seeded_bug_shrinks_deterministically;
        t "gallery: undecidable messages safe" gallery_undecidable_safe;
        t "gallery: adaptive corruption safe under erasure" gallery_adaptive_erasure_safe;
        t "six stressor families compose" six_families_compose;
      ] );
  ]
