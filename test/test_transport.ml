(* The real-wire transport stack, bottom to top: length-prefixed frame
   reassembly under adversarial segmentation, the versioned handshake,
   the in-memory loopback backend, the gossip overlay functor running
   full consensus over a byte transport inside the simulator, and the
   TCP backend on real localhost sockets (handshake, mid-frame death,
   digest rejection, backpressure, reconnect, SIGTERM drain). *)

module Node = Algorand_core.Node
module Codec = Algorand_core.Codec
module Message = Algorand_core.Message
module Identity = Algorand_core.Identity
module Harness = Algorand_core.Harness
module Disk_store = Algorand_core.Disk_store
module History = Algorand_core.History
module Wire_gossip = Algorand_core.Wire_gossip
module Chain = Algorand_ledger.Chain
module Genesis = Algorand_ledger.Genesis
module Params = Algorand_ba.Params
module Engine = Algorand_sim.Engine
module Metrics = Algorand_sim.Metrics
module Retry = Algorand_sim.Retry
module Rng = Algorand_sim.Rng
module Registry = Algorand_obs.Registry
module Frame = Algorand_transport.Frame
module Handshake = Algorand_transport.Handshake
module Transport = Algorand_transport.Transport
module Loopback = Algorand_transport.Loopback
module Tcp = Algorand_transport.Tcp_transport
module Wirefuzz = Algorand_check.Wirefuzz

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f

(* ------------------------------ frames ----------------------------- *)

let payloads = [ "a"; String.make 300 'b'; ""; String.make 70_000 'c'; "tail" ]

let feed_all r segs =
  List.fold_left
    (fun acc seg ->
      match Frame.Reassembler.feed r seg with
      | Ok frames -> acc @ frames
      | Error e -> Alcotest.failf "framing error: %a" Frame.Reassembler.pp_error e)
    [] segs

let segmented_roundtrip () =
  let stream = String.concat "" (List.map Frame.encode payloads) in
  let n = String.length stream in
  let cut k =
    let rec go off acc =
      if off >= n then List.rev acc
      else begin
        let len = min k (n - off) in
        go (off + len) (String.sub stream off len :: acc)
      end
    in
    go 0 []
  in
  List.iter
    (fun (name, segs) ->
      let r = Frame.Reassembler.create ~max_frame_bytes:Frame.max_payload in
      Alcotest.(check (list string)) name payloads (feed_all r segs))
    [
      ("whole stream", [ stream ]);
      ("1-byte dribble", cut 1);
      ("3-byte chunks", cut 3);
      ("64k chunks", cut 65_536);
      (* Jitter: prime-sized chunks so cuts drift across header and
         payload boundaries alike. *)
      ("7-byte chunks", cut 7);
    ]

let oversized_poisons () =
  let r = Frame.Reassembler.create ~max_frame_bytes:100 in
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 101l;
  (match Frame.Reassembler.feed r (Bytes.to_string b) with
  | Error (`Oversized 101) -> ()
  | Ok _ | Error _ -> Alcotest.fail "oversized declared length accepted");
  match Frame.Reassembler.feed r (Frame.encode "ok") with
  | Error `Closed -> ()
  | Ok _ | Error _ -> Alcotest.fail "reassembler not poisoned after error"

let fuzz_reassembly () =
  let report = Wirefuzz.reassembly_run ~seed:5 ~streams:400 () in
  List.iter
    (fun (f : Wirefuzz.failure) ->
      Printf.printf "FAIL via %s: %s (%d bytes)\n%s\n" f.mutation f.reason
        f.frame_len f.frame_hex)
    report.reassembly_failures;
  Alcotest.(check int) "no failures" 0 (List.length report.reassembly_failures);
  Alcotest.(check bool) "clean streams recovered" true (report.clean_streams > 0);
  Alcotest.(check bool) "poison path exercised" true (report.poisoned_streams > 0)

(* ----------------------------- handshake --------------------------- *)

let hello ?(digest = "digest-A") ?(pk = "pk-1") () : Handshake.hello =
  { version = Handshake.version; params_digest = digest; pk }

let handshake_roundtrip () =
  let check_rt msg =
    match Handshake.decode (Handshake.encode msg) with
    | Some m when m = msg -> ()
    | _ -> Alcotest.fail "handshake did not round-trip"
  in
  check_rt (Handshake.Hello (hello ()));
  check_rt (Handshake.Hello (hello ~digest:(String.make 64 'x') ~pk:(String.make 200 'k') ()));
  check_rt (Handshake.Reject (`Version 3));
  check_rt (Handshake.Reject `Params_digest);
  check_rt (Handshake.Reject `Banned);
  Alcotest.(check bool) "garbage rejected" true (Handshake.decode "nonsense" = None);
  Alcotest.(check bool) "empty rejected" true (Handshake.decode "" = None);
  let enc = Handshake.encode (Handshake.Hello (hello ())) in
  Alcotest.(check bool) "truncation rejected" true
    (Handshake.decode (String.sub enc 0 (String.length enc - 1)) = None);
  Alcotest.(check bool) "trailing bytes rejected" true (Handshake.decode (enc ^ "x") = None)

let handshake_check () =
  let ours = hello () in
  (match Handshake.check ~ours ~theirs:(hello ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "matching hello rejected");
  (match Handshake.check ~ours ~theirs:{ (hello ()) with version = 99 } with
  | Error (`Version v) when v = Handshake.version ->
    (* The reject carries the version WE speak, for the peer's log. *)
    ()
  | _ -> Alcotest.fail "version mismatch not flagged");
  match Handshake.check ~ours ~theirs:(hello ~digest:"digest-B" ()) with
  | Error `Params_digest -> ()
  | _ -> Alcotest.fail "params digest mismatch not flagged"

(* ----------------------------- loopback ---------------------------- *)

type ep = {
  tr : Loopback.t;
  hs : Transport.handlers;
  ups : (int * Handshake.hello) list ref;
  downs : (int * Transport.reason) list ref;
  frames : (int * string) list ref;
}

let endpoint ~hub ~addr ?registry ?(digest = "digest-A") () : ep =
  let hs = Transport.handlers () in
  let ups = ref [] and downs = ref [] and frames = ref [] in
  hs.on_peer_up <- (fun ~conn h -> ups := (conn, h) :: !ups);
  hs.on_peer_down <- (fun ~conn r -> downs := (conn, r) :: !downs);
  hs.on_frame <- (fun ~conn f -> frames := (conn, f) :: !frames);
  let tr = Loopback.create ~hub ~addr ~hello:(hello ~digest ~pk:addr ()) ?registry ~handlers:hs () in
  { tr; hs; ups; downs; frames }

let loopback_basic () =
  let engine = Engine.create () in
  let registry = Registry.create () in
  (* Byte-at-a-time dribble: every frame crosses the reassembler the
     hard way. *)
  let hub = Loopback.hub ~engine ~seg:(`Chunk 1) () in
  let a = endpoint ~hub ~addr:"A" ~registry () in
  let b = endpoint ~hub ~addr:"B" ~registry () in
  Loopback.connect a.tr "B";
  ignore (Engine.run engine ~until:1.0 ());
  Alcotest.(check int) "a up" 1 (List.length !(a.ups));
  Alcotest.(check int) "b up" 1 (List.length !(b.ups));
  let conn_a = List.hd (Loopback.conns a.tr) in
  Alcotest.(check (option string)) "dialer remembers the address" (Some "B")
    (Loopback.dialed_addr a.tr ~conn:conn_a);
  (match Loopback.peer a.tr ~conn:conn_a with
  | Some h -> Alcotest.(check string) "peer identity" "B" h.pk
  | None -> Alcotest.fail "no peer hello");
  Alcotest.(check bool) "send ok" true (Loopback.send a.tr ~conn:conn_a "ping" = `Ok);
  let conn_b = List.hd (Loopback.conns b.tr) in
  Alcotest.(check bool) "reply ok" true (Loopback.send b.tr ~conn:conn_b (String.make 5_000 'z') = `Ok);
  ignore (Engine.run engine ~until:2.0 ());
  Alcotest.(check (list string)) "b received" [ "ping" ] (List.map snd !(b.frames));
  Alcotest.(check (list string)) "a received" [ String.make 5_000 'z' ] (List.map snd !(a.frames));
  (* Satellite: the transport.* family is maintained. *)
  let cnt name = Option.value ~default:0 (Registry.counter_value registry name) in
  Alcotest.(check bool) "bytes_sent counted" true (cnt "transport.bytes_sent" > 5_000);
  Alcotest.(check bool) "bytes_received counted" true (cnt "transport.bytes_received" > 5_000);
  (* 2 data frames + 2 handshake hellos, both endpoints on one registry. *)
  Alcotest.(check int) "frames counted" 4 (cnt "transport.frames_sent");
  Alcotest.(check int) "dials counted" 1 (cnt "transport.dials");
  Alcotest.(check int) "accepts counted" 1 (cnt "transport.accepts");
  Alcotest.(check bool) "write queue histogram observed" true
    (Registry.histogram_value registry "transport.write_queue_depth" <> None);
  (* Abrupt death: the peer observes Remote_closed, one latency later. *)
  Loopback.kill a.tr ~conn:conn_a;
  ignore (Engine.run engine ~until:3.0 ());
  (match !(b.downs) with
  | [ (c, Transport.Remote_closed) ] when c = conn_b -> ()
  | _ -> Alcotest.fail "peer did not observe Remote_closed");
  Alcotest.(check bool) "down counted" true (cnt "transport.peer_downs" >= 1)

let loopback_digest_reject () =
  let engine = Engine.create () in
  let registry = Registry.create () in
  let hub = Loopback.hub ~engine () in
  let a = endpoint ~hub ~addr:"A" ~registry ~digest:"digest-A" () in
  let b = endpoint ~hub ~addr:"B" ~registry ~digest:"digest-B" () in
  Loopback.connect a.tr "B";
  ignore (Engine.run engine ~until:1.0 ());
  Alcotest.(check int) "no peer up on a" 0 (List.length !(a.ups));
  Alcotest.(check int) "no peer up on b" 0 (List.length !(b.ups));
  (match !(a.downs) with
  | [ (_, Transport.Handshake_rejected `Params_digest) ] -> ()
  | _ -> Alcotest.fail "dialer was not told why it was rejected");
  let cnt name = Option.value ~default:0 (Registry.counter_value registry name) in
  Alcotest.(check bool) "handshake failures counted" true
    (cnt "transport.handshake_failures" >= 1)

let loopback_garbage_handshake () =
  let engine = Engine.create () in
  let hub = Loopback.hub ~engine () in
  let a = endpoint ~hub ~addr:"A" () in
  let b = endpoint ~hub ~addr:"B" () in
  Loopback.connect a.tr "B";
  (* Race the handshake: replace the dialer's hello with framed
     garbage before it is processed. *)
  let conn_a = ref (-1) in
  (match Loopback.conns a.tr with
  | [] -> () (* handshake not yet up: the dial is in flight *)
  | c :: _ -> conn_a := c);
  ignore conn_a;
  ignore (Engine.run engine ~until:1.0 ());
  (* Connection is up; now inject raw bytes that cannot frame. *)
  let c = List.hd (Loopback.conns a.tr) in
  let bomb = Bytes.create 8 in
  Bytes.set_int32_be bomb 0 0x7FFFFFFFl;
  Loopback.inject a.tr ~conn:c (Bytes.to_string bomb);
  ignore (Engine.run engine ~until:2.0 ());
  match !(b.downs) with
  | [ (_, Transport.Framing_error) ] -> ()
  | _ -> Alcotest.fail "framing bomb did not close the connection"

(* ------------------- consensus over the loopback ------------------- *)

let fast_params =
  {
    Params.paper with
    lambda_priority = 1.0;
    lambda_stepvar = 1.0;
    lambda_block = 10.0;
    lambda_step = 5.0;
    max_steps = 8;
  }

(* Build a cluster exactly as the harness derives it (same seed
   strings, stakes, genesis), but networked through Wire_gossip over
   the loopback byte transport instead of the simulated overlay. *)
module WGL = Wire_gossip.Make (Loopback)

let loopback_cluster ~users ~rounds ~seed ~seg =
  let engine = Engine.create () in
  let registry = Registry.create () in
  let sig_scheme, vrf_scheme = Harness.schemes Harness.Sim_crypto in
  let identities =
    Array.init users (fun i ->
        Identity.generate ~sig_scheme ~vrf_scheme
          ~seed:(Printf.sprintf "user-%d-%d" seed i))
  in
  let genesis =
    Genesis.make (Array.to_list (Array.map (fun id -> (id.Identity.pk, 1_000)) identities))
  in
  let rng = Rng.create seed in
  let hub = Loopback.hub ~engine ~latency:0.01 ~seg ~rng:(Rng.split rng "seg") () in
  let metrics = Metrics.create ~registry ~users () in
  let digest = Codec.params_digest ~genesis:(Genesis.hash genesis) fast_params in
  let config =
    {
      Node.default_config with
      params = fast_params;
      block_target_bytes = 10_000;
      max_round = rounds;
      deterministic_ts = true;
    }
  in
  let nodes_and_overlays =
    Array.init users (fun i ->
        let handlers = Transport.handlers () in
        let tr =
          Loopback.create ~hub ~addr:(string_of_int i)
            ~hello:{ version = Handshake.version; params_digest = digest; pk = identities.(i).Identity.pk }
            ~registry ~handlers ()
        in
        let node =
          Node.create ~index:i ~identity:identities.(i) ~config ~engine ~metrics
            ~rng:(Rng.split rng (Printf.sprintf "node-%d" i))
            ~genesis ()
        in
        let wg =
          WGL.create ~engine ~transport:tr ~handlers ~self:i
            ~roster:(Array.map (fun id -> id.Identity.pk) identities)
            ~limits:(Codec.limits_of_params ~block_bytes:10_000 fast_params)
            ~fanout:2
            ~rng:(Rng.split rng (Printf.sprintf "wire-%d" i))
            ~registry ()
        in
        WGL.install wg
          ~validate:(fun msg -> Node.gossip_validate node msg)
          ~deliver:(fun ~src msg -> Node.deliver node ~src msg);
        Node.set_net node (WGL.as_net wg);
        (node, wg, tr))
  in
  (* Full mesh, higher index dials lower. *)
  Array.iteri
    (fun i (_, wg, _) ->
      for j = 0 to i - 1 do
        WGL.dial wg ~index:j ~addr:(string_of_int j)
      done)
    nodes_and_overlays;
  ignore (Engine.run engine ~until:1.0 ());
  Array.iter (fun (node, _, _) -> Node.start node) nodes_and_overlays;
  ignore (Engine.run engine ~until:2_000.0 ());
  (engine, nodes_and_overlays)

let hashes_of node ~rounds =
  let chain = Node.chain node in
  let tip = Chain.tip chain in
  List.filter_map
    (fun r ->
      Option.map
        (fun (e : Chain.entry) -> e.hash)
        (Chain.ancestor_at chain ~hash:tip.Chain.hash ~height:r))
    (List.init (min rounds tip.Chain.height) (fun k -> k + 1))

(* The in-sim wire leg of the determinism triple: the same seed and
   params produce the same ledger whether messages cross the simulated
   overlay as typed values or a byte transport as framed, segmented,
   reassembled, codec-decoded streams. *)
let consensus_over_loopback () =
  let users = 4 and rounds = 3 and seed = 21 in
  let _, cluster = loopback_cluster ~users ~rounds ~seed ~seg:(`Chunk 7) in
  let wire_hashes = hashes_of (let n, _, _ = cluster.(0) in n) ~rounds in
  Alcotest.(check int) "wire cluster completed" rounds (List.length wire_hashes);
  Array.iteri
    (fun i (node, _, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d agrees" i)
        true
        (hashes_of node ~rounds = wire_hashes))
    cluster;
  let sim =
    Harness.run
      {
        Harness.default with
        users;
        rounds;
        rng_seed = seed;
        params = fast_params;
        block_bytes = 10_000;
        tx_rate_per_s = 0.0;
        deterministic_ts = true;
      }
  in
  Alcotest.(check int) "no forks in sim" 0 (List.length sim.Harness.safety.Harness.forked_rounds);
  let sim_hashes = hashes_of sim.Harness.harness.Harness.nodes.(0) ~rounds in
  Alcotest.(check bool) "sim and wire ledgers identical" true (sim_hashes = wire_hashes)

(* Segmentation must be invisible: dribble and random splits give the
   same ledger as whole-frame delivery. *)
let consensus_segmentation_invariant () =
  let users = 4 and rounds = 2 and seed = 33 in
  let run seg =
    let _, cluster = loopback_cluster ~users ~rounds ~seed ~seg in
    hashes_of (let n, _, _ = cluster.(0) in n) ~rounds
  in
  let whole = run `Whole in
  Alcotest.(check int) "completed" rounds (List.length whole);
  Alcotest.(check bool) "dribble identical" true (run (`Chunk 1) = whole);
  Alcotest.(check bool) "random splits identical" true (run `Random = whole)

(* Kill a live link: the overlay's Retry-driven redial must bring the
   mesh back without outside help. *)
let loopback_redial () =
  let engine = Engine.create () in
  let registry = Registry.create () in
  let hub = Loopback.hub ~engine () in
  let mk addr =
    let handlers = Transport.handlers () in
    let tr = Loopback.create ~hub ~addr ~hello:(hello ~pk:addr ()) ~registry ~handlers () in
    (tr, handlers)
  in
  let tr_a, hs_a = mk "pk-0" in
  let tr_b, hs_b = mk "pk-1" in
  let rng = Rng.create 5 in
  let wg_a =
    WGL.create ~engine ~transport:tr_a ~handlers:hs_a ~self:0 ~roster:[| "pk-0"; "pk-1" |]
      ~limits:Codec.default_limits ~rng:(Rng.split rng "a") ~registry ()
  in
  let wg_b =
    WGL.create ~engine ~transport:tr_b ~handlers:hs_b ~self:1 ~roster:[| "pk-0"; "pk-1" |]
      ~limits:Codec.default_limits ~rng:(Rng.split rng "b") ~registry ()
  in
  WGL.dial wg_a ~index:1 ~addr:"pk-1";
  ignore (Engine.run engine ~until:1.0 ());
  Alcotest.(check (list int)) "a connected" [ 1 ] (WGL.connected wg_a);
  Alcotest.(check (list int)) "b connected" [ 0 ] (WGL.connected wg_b);
  Loopback.kill tr_a ~conn:(List.hd (Loopback.conns tr_a));
  (* Retry's attempt 0 fires synchronously on the peer-down, so the
     redial may already be in flight; just let it land. *)
  ignore (Engine.run engine ~until:60.0 ());
  Alcotest.(check (list int)) "a redialed" [ 1 ] (WGL.connected wg_a);
  Alcotest.(check (list int)) "b accepted the redial" [ 0 ] (WGL.connected wg_b);
  let cnt name = Option.value ~default:0 (Registry.counter_value registry name) in
  Alcotest.(check bool) "reconnects counted" true (cnt "transport.reconnects" >= 1)

(* -------------------------------- TCP ------------------------------ *)

type tep = {
  ttr : Tcp.t;
  ths : Transport.handlers;
  tups : (int * Handshake.hello) list ref;
  tdowns : (int * Transport.reason) list ref;
  tframes : (int * string) list ref;
}

let tcp_endpoint ?registry ?write_queue_frames ?(digest = "digest-A") ~pk () : tep =
  let ths = Transport.handlers () in
  let tups = ref [] and tdowns = ref [] and tframes = ref [] in
  ths.on_peer_up <- (fun ~conn h -> tups := (conn, h) :: !tups);
  ths.on_peer_down <- (fun ~conn r -> tdowns := (conn, r) :: !tdowns);
  ths.on_frame <- (fun ~conn f -> tframes := (conn, f) :: !tframes);
  let ttr =
    Tcp.create ~listen:"127.0.0.1:0" ~hello:(hello ~digest ~pk ()) ?registry
      ?write_queue_frames ~handlers:ths ()
  in
  { ttr; ths; tups; tdowns; tframes }

(* Poll both endpoints until a predicate holds; wall-clock bounded. *)
let pump2 ?(wall = 10.0) a b pred =
  let deadline = Unix.gettimeofday () +. wall in
  while (not (pred ())) && Unix.gettimeofday () < deadline do
    Tcp.poll a ~timeout:0.01;
    Tcp.poll b ~timeout:0.01
  done;
  if not (pred ()) then Alcotest.fail "TCP condition not reached in time"

let tcp_handshake_and_frames () =
  let registry = Registry.create () in
  let a = tcp_endpoint ~registry ~pk:"pk-a" () in
  let b = tcp_endpoint ~registry ~pk:"pk-b" () in
  Tcp.connect a.ttr (Tcp.addr b.ttr);
  pump2 a.ttr b.ttr (fun () -> !(a.tups) <> [] && !(b.tups) <> []);
  (match !(a.tups) with
  | [ (_, h) ] -> Alcotest.(check string) "a sees b" "pk-b" h.pk
  | _ -> Alcotest.fail "expected exactly one peer on a");
  let conn_a = List.hd (Tcp.conns a.ttr) in
  Alcotest.(check (option string)) "dialed address retained"
    (Some (Tcp.addr b.ttr))
    (Tcp.dialed_addr a.ttr ~conn:conn_a);
  let big = String.make 200_000 'x' in
  Alcotest.(check bool) "send ok" true (Tcp.send a.ttr ~conn:conn_a "hello-wire" = `Ok);
  Alcotest.(check bool) "big send ok" true (Tcp.send a.ttr ~conn:conn_a big = `Ok);
  pump2 a.ttr b.ttr (fun () -> List.length !(b.tframes) >= 2);
  Alcotest.(check (list string)) "frames in order, reassembled" [ "hello-wire"; big ]
    (List.rev_map snd !(b.tframes));
  let cnt name = Option.value ~default:0 (Registry.counter_value registry name) in
  Alcotest.(check bool) "bytes counted" true (cnt "transport.bytes_received" > 200_000);
  Tcp.shutdown a.ttr;
  Tcp.shutdown b.ttr

let tcp_digest_rejected () =
  let registry = Registry.create () in
  let a = tcp_endpoint ~registry ~pk:"pk-a" ~digest:"digest-A" () in
  let b = tcp_endpoint ~registry ~pk:"pk-b" ~digest:"digest-B" () in
  Tcp.connect a.ttr (Tcp.addr b.ttr);
  pump2 a.ttr b.ttr (fun () -> !(a.tdowns) <> []);
  (match !(a.tdowns) with
  | [ (_, Transport.Handshake_rejected `Params_digest) ] -> ()
  | _ -> Alcotest.fail "dialer did not learn the reject reason");
  Alcotest.(check int) "no peer up" 0 (List.length !(a.tups) + List.length !(b.tups));
  let cnt name = Option.value ~default:0 (Registry.counter_value registry name) in
  Alcotest.(check bool) "handshake failure counted" true
    (cnt "transport.handshake_failures" >= 1);
  Tcp.shutdown a.ttr;
  Tcp.shutdown b.ttr

(* A raw socket client that completes the handshake, starts a frame,
   and dies mid-payload: the endpoint must observe Remote_closed and
   deliver nothing. *)
let tcp_death_mid_frame () =
  let b = tcp_endpoint ~pk:"pk-b" () in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let port =
    match String.rindex_opt (Tcp.addr b.ttr) ':' with
    | Some i ->
      int_of_string (String.sub (Tcp.addr b.ttr) (i + 1) (String.length (Tcp.addr b.ttr) - i - 1))
    | None -> Alcotest.fail "bad addr"
  in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let send_all s =
    ignore (Unix.write_substring sock s 0 (String.length s))
  in
  send_all (Frame.encode (Handshake.encode (Handshake.Hello (hello ~pk:"pk-raw" ()))));
  pump2 b.ttr b.ttr (fun () -> !(b.tups) <> []);
  (* Header declares 100 bytes; send 10 and vanish. *)
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 100l;
  send_all (Bytes.to_string header ^ "partial-10");
  Unix.close sock;
  pump2 b.ttr b.ttr (fun () -> !(b.tdowns) <> []);
  (match !(b.tdowns) with
  | [ (_, Transport.Remote_closed) ] -> ()
  | _ -> Alcotest.fail "mid-frame death not observed as Remote_closed");
  Alcotest.(check int) "partial frame not delivered" 0 (List.length !(b.tframes));
  Tcp.shutdown b.ttr

(* First bytes on the wire are not a handshake: the acceptor drops the
   connection without ever reporting a peer. *)
let tcp_garbage_handshake () =
  let registry = Registry.create () in
  let b = tcp_endpoint ~registry ~pk:"pk-b" () in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let port =
    let addr = Tcp.addr b.ttr in
    let i = String.rindex addr ':' in
    int_of_string (String.sub addr (i + 1) (String.length addr - i - 1))
  in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let garbage = Frame.encode "definitely not a handshake" in
  ignore (Unix.write_substring sock garbage 0 (String.length garbage));
  let cnt name = Option.value ~default:0 (Registry.counter_value registry name) in
  pump2 b.ttr b.ttr (fun () -> cnt "transport.handshake_failures" >= 1);
  Alcotest.(check int) "no peer up" 0 (List.length !(b.tups));
  Unix.close sock;
  Tcp.shutdown b.ttr

(* Stop draining the receiver: once the socket and the bounded write
   queue are full, sends report `Dropped and the drop is counted. *)
let tcp_backpressure () =
  let registry = Registry.create () in
  let a = tcp_endpoint ~registry ~write_queue_frames:4 ~pk:"pk-a" () in
  let b = tcp_endpoint ~registry ~pk:"pk-b" () in
  Tcp.connect a.ttr (Tcp.addr b.ttr);
  pump2 a.ttr b.ttr (fun () -> !(a.tups) <> []);
  let conn_a = List.hd (Tcp.conns a.ttr) in
  let frame = String.make 262_144 'q' in
  let dropped = ref false in
  (* Only poll the sender: the receiver's socket fills, then the write
     queue, then sends start dropping. *)
  let i = ref 0 in
  while (not !dropped) && !i < 500 do
    (match Tcp.send a.ttr ~conn:conn_a frame with
    | `Dropped -> dropped := true
    | `Ok | `No_conn -> ());
    Tcp.poll a.ttr ~timeout:0.0;
    incr i
  done;
  Alcotest.(check bool) "backpressure engaged" true !dropped;
  let cnt name = Option.value ~default:0 (Registry.counter_value registry name) in
  Alcotest.(check bool) "drops counted" true (cnt "transport.backpressure_drops" >= 1);
  Tcp.shutdown a.ttr;
  Tcp.shutdown b.ttr

(* The overlay's redial machinery over real sockets: kill one
   endpoint, bring a fresh one up on the same port, and watch the
   surviving side's Retry reconnect to it. *)
module WGT = Wire_gossip.Make (Tcp)

let tcp_reconnect () =
  let engine = Engine.create () in
  let registry = Registry.create () in
  let mk_b () =
    let ths = Transport.handlers () in
    let ttr = Tcp.create ~listen:"127.0.0.1:0" ~hello:(hello ~pk:"pk-1" ()) ~registry ~handlers:ths () in
    let wg =
      WGT.create ~engine ~transport:ttr ~handlers:ths ~self:1 ~roster:[| "pk-0"; "pk-1" |]
        ~limits:Codec.default_limits ~rng:(Rng.create 9) ~registry ()
    in
    (ttr, wg)
  in
  let hs_a = Transport.handlers () in
  let tr_a = Tcp.create ~listen:"127.0.0.1:0" ~hello:(hello ~pk:"pk-0" ()) ~registry ~handlers:hs_a () in
  let retry = { Retry.default_policy with base_delay = 0.2; jitter = 0.0 } in
  let wg_a =
    WGT.create ~engine ~transport:tr_a ~handlers:hs_a ~self:0 ~roster:[| "pk-0"; "pk-1" |]
      ~limits:Codec.default_limits ~retry ~rng:(Rng.create 8) ~registry ()
  in
  let tr_b, _wg_b = mk_b () in
  let b_addr = Tcp.addr tr_b in
  WGT.dial wg_a ~index:1 ~addr:b_addr;
  (* Drive both the engine (Retry timers) and the sockets. *)
  let vt = ref 0.0 in
  let pump ?(also = fun () -> ()) pred =
    let deadline = Unix.gettimeofday () +. 20.0 in
    while (not (pred ())) && Unix.gettimeofday () < deadline do
      vt := !vt +. 0.1;
      ignore (Engine.run engine ~until:!vt ());
      Tcp.poll tr_a ~timeout:0.01;
      also ()
    done;
    if not (pred ()) then Alcotest.fail "TCP reconnect condition not reached"
  in
  pump ~also:(fun () -> Tcp.poll tr_b ~timeout:0.01) (fun () -> WGT.connected wg_a = [ 1 ]);
  (* The peer process dies... *)
  Tcp.shutdown tr_b;
  pump (fun () -> WGT.connected wg_a = []);
  (* ...and restarts on the same port. *)
  let port = String.sub b_addr (String.rindex b_addr ':' + 1) (String.length b_addr - String.rindex b_addr ':' - 1) in
  let ths2 = Transport.handlers () in
  let tr_b2 = Tcp.create ~listen:("127.0.0.1:" ^ port) ~hello:(hello ~pk:"pk-1" ()) ~registry ~handlers:ths2 () in
  let _wg_b2 =
    WGT.create ~engine ~transport:tr_b2 ~handlers:ths2 ~self:1 ~roster:[| "pk-0"; "pk-1" |]
      ~limits:Codec.default_limits ~rng:(Rng.create 10) ~registry ()
  in
  pump ~also:(fun () -> Tcp.poll tr_b2 ~timeout:0.01) (fun () -> WGT.connected wg_a = [ 1 ]);
  let cnt name = Option.value ~default:0 (Registry.counter_value registry name) in
  Alcotest.(check bool) "reconnects counted" true (cnt "transport.reconnects" >= 1);
  Tcp.shutdown tr_a;
  Tcp.shutdown tr_b2

(* --------------------------- SIGTERM drain ------------------------- *)

let node_bin () =
  let candidate =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/algorand_node.exe"
  in
  if Sys.file_exists candidate then candidate
  else Alcotest.failf "algorand_node binary not found at %s" candidate

(* Two daemons run an endless deployment; SIGTERM must make them drain,
   checkpoint, and leave stores whose certificates replay cleanly. *)
let sigterm_drains_and_checkpoints () =
  let bin = node_bin () in
  let root = Filename.concat (Filename.get_temp_dir_name ()) (Printf.sprintf "algorand-sigterm-%d" (Unix.getpid ())) in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote root)));
  let seed = 13 and users = 2 and port_base = 48350 in
  let common =
    [|
      "run"; "--users"; string_of_int users; "--rounds"; "1000000";
      "--seed"; string_of_int seed; "--port-base"; string_of_int port_base;
      "--store"; root; "--time-scale"; "50"; "--wall-timeout"; "600";
      "--linger"; "1";
    |]
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pids =
    List.init users (fun i ->
        Unix.create_process bin
          (Array.append [| bin |] (Array.append common [| "--index"; string_of_int i |]))
          Unix.stdin devnull devnull)
  in
  Unix.close devnull;
  (* Wait until both processes have certified and persisted rounds. *)
  let sig_scheme, vrf_scheme = Harness.schemes Harness.Sim_crypto in
  let identities =
    Array.init users (fun i ->
        Identity.generate ~sig_scheme ~vrf_scheme ~seed:(Printf.sprintf "user-%d-%d" seed i))
  in
  let dirs =
    Array.map (fun id -> Disk_store.node_dir ~root ~pk:id.Identity.pk) identities
  in
  let persisted () =
    Array.for_all
      (fun dir -> (try List.length (Disk_store.stored_rounds dir) with Sys_error _ -> 0) >= 2)
      dirs
  in
  let deadline = Unix.gettimeofday () +. 60.0 in
  while (not (persisted ())) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.2
  done;
  Alcotest.(check bool) "daemons made progress" true (persisted ());
  List.iter (fun pid -> Unix.kill pid Sys.sigterm) pids;
  List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
  (* Replay both stores: every certificate must validate. *)
  let genesis =
    Genesis.make (Array.to_list (Array.map (fun id -> (id.Identity.pk, 1_000)) identities))
  in
  Array.iteri
    (fun i dir ->
      let items, _err = Disk_store.load dir in
      Alcotest.(check bool) (Printf.sprintf "node %d persisted" i) true (items <> []);
      match History.replay ~params:Params.paper ~sig_scheme ~vrf_scheme ~genesis items with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "node %d store invalid after SIGTERM: %a" i History.pp_error e)
    dirs;
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote root)))

(* ------------------------------ stores ----------------------------- *)

let node_dir_per_identity () =
  let d1 = Disk_store.node_dir ~root:"/tmp/r" ~pk:"pk-one" in
  let d2 = Disk_store.node_dir ~root:"/tmp/r" ~pk:"pk-two" in
  Alcotest.(check bool) "distinct identities get distinct dirs" true (d1 <> d2);
  Alcotest.(check string) "deterministic" d1 (Disk_store.node_dir ~root:"/tmp/r" ~pk:"pk-one");
  Alcotest.(check string) "under the root" "/tmp/r" (Filename.dirname d1)

let suite =
  [
    ( "transport",
      [
        t "frames survive adversarial segmentation" segmented_roundtrip;
        t "oversized length poisons the reassembler" oversized_poisons;
        t "reassembly fuzz: split/coalesce/corrupt" fuzz_reassembly;
        t "handshake round-trips, garbage rejected" handshake_roundtrip;
        t "handshake checks version then digest" handshake_check;
        t "loopback: dribble delivery, metrics, abrupt death" loopback_basic;
        t "loopback: params digest mismatch rejected" loopback_digest_reject;
        t "loopback: framing bomb closes the connection" loopback_garbage_handshake;
        t "per-identity store dirs never collide" node_dir_per_identity;
        ts "consensus over loopback equals the simulated overlay" consensus_over_loopback;
        ts "ledger invariant under segmentation policy" consensus_segmentation_invariant;
        ts "killed link redials with backoff" loopback_redial;
        ts "tcp: handshake and reassembled frames" tcp_handshake_and_frames;
        ts "tcp: wrong params digest rejected with reason" tcp_digest_rejected;
        ts "tcp: peer death mid-frame" tcp_death_mid_frame;
        ts "tcp: garbage handshake dropped" tcp_garbage_handshake;
        ts "tcp: bounded write queue drops under backpressure" tcp_backpressure;
        ts "tcp: reconnect after peer restart" tcp_reconnect;
        ts "sigterm drains and checkpoints" sigterm_drains_and_checkpoints;
      ] );
  ]
