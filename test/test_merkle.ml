(* Merkle trees, block transaction commitments, and light-client
   payment verification. *)

open Algorand_crypto
module Block = Algorand_ledger.Block
module Transaction = Algorand_ledger.Transaction
module Harness = Algorand_core.Harness
module Node = Algorand_core.Node
module Catchup = Algorand_core.Catchup
module Lightclient = Algorand_core.Lightclient
module Chain = Algorand_ledger.Chain

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f
let qt ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let leaves n = List.init n (fun i -> Printf.sprintf "leaf-%d" i)

let empty_tree () =
  Alcotest.(check string) "empty root" (Hex.of_string Merkle.empty_root)
    (Hex.of_string (Merkle.root []));
  Alcotest.(check bool) "no proof for empty" true (Merkle.prove [] ~index:0 = None)

let roots_differ () =
  let r3 = Merkle.root (leaves 3) in
  let r4 = Merkle.root (leaves 4) in
  Alcotest.(check bool) "size matters" false (String.equal r3 r4);
  let swapped = Merkle.root [ "leaf-1"; "leaf-0"; "leaf-2" ] in
  Alcotest.(check bool) "order matters" false (String.equal r3 swapped);
  (* Single leaf root <> the leaf's own hash domain (tagged). *)
  Alcotest.(check bool) "leaf domain separated" false
    (String.equal (Merkle.root [ "x" ]) (Sha256.digest "x"))

let all_proofs_verify () =
  List.iter
    (fun n ->
      let ls = leaves n in
      let root = Merkle.root ls in
      List.iteri
        (fun i leaf ->
          match Merkle.prove ls ~index:i with
          | None -> Alcotest.failf "no proof for %d/%d" i n
          | Some p ->
            if not (Merkle.verify ~root ~leaf p) then
              Alcotest.failf "proof %d/%d rejected" i n)
        ls)
    [ 1; 2; 3; 4; 5; 7; 8; 9; 16; 33 ]

let wrong_leaf_rejected () =
  let ls = leaves 8 in
  let root = Merkle.root ls in
  let p = Option.get (Merkle.prove ls ~index:3) in
  Alcotest.(check bool) "wrong leaf" false (Merkle.verify ~root ~leaf:"leaf-4" p);
  Alcotest.(check bool) "wrong root" false
    (Merkle.verify ~root:(Sha256.digest "other") ~leaf:"leaf-3" p);
  (* Tampered path element. *)
  let tampered =
    { p with path = List.map (fun (s, h) -> (s, Sha256.digest h)) p.path }
  in
  Alcotest.(check bool) "tampered path" false
    (Merkle.verify ~root ~leaf:"leaf-3" tampered)

let proof_size_logarithmic () =
  let size n =
    Merkle.proof_size_bytes (Option.get (Merkle.prove (leaves n) ~index:0))
  in
  (* 1024 leaves need 10 siblings; 33 bytes each plus the index. *)
  Alcotest.(check bool) "1024 leaves ~ 10 hashes" true (size 1024 <= 8 + (10 * 33));
  Alcotest.(check bool) "grows slowly" true (size 1024 < 2 * size 32)

let block_summary_roundtrip () =
  let sig_scheme = Signature_scheme.sim in
  let signer, pk = sig_scheme.generate ~seed:"m" in
  let _, pk2 = sig_scheme.generate ~seed:"m2" in
  let txs =
    List.init 5 (fun i ->
        Transaction.make ~signer ~sender:pk ~recipient:pk2 ~amount:1 ~nonce:i)
  in
  let block = { (Block.empty ~round:1 ~prev_hash:(String.make 32 'p')) with txs } in
  let s = Block.summarize block in
  Alcotest.(check string) "summary hash = block hash"
    (Hex.of_string (Block.hash block))
    (Hex.of_string (Block.hash_of_summary s));
  let tx = List.nth txs 2 in
  let tx_id = Transaction.id tx in
  (match Block.prove_tx block ~tx_id with
  | None -> Alcotest.fail "no inclusion proof"
  | Some proof ->
    Alcotest.(check bool) "inclusion verifies" true
      (Block.summary_contains s ~tx_id proof);
    Alcotest.(check bool) "other tx rejected" false
      (Block.summary_contains s ~tx_id:(Sha256.digest "nope") proof));
  Alcotest.(check bool) "absent tx has no proof" true
    (Block.prove_tx block ~tx_id:(Sha256.digest "absent") = None)

let tree_matches_naive () =
  (* The build-once tree must agree with the per-proof list walk on
     every size and index: same root, byte-identical proofs. *)
  List.iter
    (fun n ->
      let ls = leaves n in
      let tree = Merkle.build ls in
      Alcotest.(check int) "size" n (Merkle.tree_size tree);
      Alcotest.(check string)
        (Printf.sprintf "root n=%d" n)
        (Hex.of_string (Merkle.root ls))
        (Hex.of_string (Merkle.tree_root tree));
      List.iteri
        (fun i leaf ->
          match (Merkle.prove ls ~index:i, Merkle.prove_tree tree ~index:i) with
          | Some naive, Some fast ->
            if naive <> fast then Alcotest.failf "proof %d/%d differs" i n;
            Alcotest.(check bool) "verifies" true
              (Merkle.verify ~root:(Merkle.tree_root tree) ~leaf fast)
          | _ -> Alcotest.failf "missing proof %d/%d" i n)
        ls;
      Alcotest.(check bool) "out of range" true (Merkle.prove_tree tree ~index:n = None))
    [ 1; 2; 3; 4; 5; 7; 8; 9; 16; 33 ];
  Alcotest.(check string) "empty tree root" (Hex.of_string Merkle.empty_root)
    (Hex.of_string (Merkle.tree_root (Merkle.build [])))

let proof_server () =
  let sig_scheme = Signature_scheme.sim in
  let signer, pk = sig_scheme.generate ~seed:"srv" in
  let _, pk2 = sig_scheme.generate ~seed:"srv2" in
  let block_of round n =
    let txs =
      List.init n (fun i ->
          Transaction.make ~signer ~sender:pk ~recipient:pk2 ~amount:(round + 1) ~nonce:i)
    in
    { (Block.empty ~round ~prev_hash:(String.make 32 'p')) with txs }
  in
  let server = Lightclient.create_server ~max_blocks:2 () in
  let block = block_of 1 50 in
  let summary = Block.summarize block in
  (* Every transaction in the block gets a verifying proof. *)
  List.iter
    (fun tx ->
      let tx_id = Transaction.id tx in
      match Lightclient.serve_proof server ~block ~tx_id with
      | None -> Alcotest.fail "no proof for included tx"
      | Some (s, proof) ->
        Alcotest.(check string) "summary hash" (Hex.of_string (Block.hash_of_summary summary))
          (Hex.of_string (Block.hash_of_summary s));
        Alcotest.(check bool) "verifies" true (Block.summary_contains s ~tx_id proof))
    block.txs;
  Alcotest.(check bool) "absent tx" true
    (Lightclient.serve_proof server ~block ~tx_id:(Sha256.digest "absent") = None);
  (* One build, all subsequent requests hits (the physical-equality
     fast path never recomputes the block hash). *)
  Alcotest.(check int) "one miss" 1 (Lightclient.server_misses server);
  Alcotest.(check int) "rest are hits" 50 (Lightclient.server_hits server);
  (* A structurally-equal rebuild (different pointer) is still a cache
     hit via the hash path. *)
  let rebuilt = block_of 1 50 in
  ignore (Lightclient.serve_proof server ~block:rebuilt
            ~tx_id:(Transaction.id (List.hd rebuilt.txs)));
  Alcotest.(check int) "rebuild is a hit" 1 (Lightclient.server_misses server);
  (* FIFO bound: serving a third distinct block evicts the oldest. *)
  ignore (Lightclient.serve_proof server ~block:(block_of 2 8)
            ~tx_id:(Sha256.digest "x"));
  ignore (Lightclient.serve_proof server ~block:(block_of 3 8)
            ~tx_id:(Sha256.digest "x"));
  Alcotest.(check int) "cache bounded" 2 (Lightclient.server_cached_blocks server)

let light_client_end_to_end () =
  (* Run a network, pick a committed payment, and verify it as a light
     client: certificate + summary + Merkle proof, no block bodies. *)
  let config =
    {
      Harness.default with
      users = 16;
      rounds = 3;
      block_bytes = 30_000;
      tx_rate_per_s = 5.0;
      rng_seed = 33;
    }
  in
  let r = Harness.run config in
  Alcotest.(check (list int)) "safe" [] r.safety.double_final;
  (* Find a round whose block carries transactions and a certificate. *)
  let node = r.harness.nodes.(0) in
  let chain = Node.chain node in
  let entry =
    List.find
      (fun (e : Chain.entry) -> e.height > 0 && e.block.txs <> [])
      (List.rev (Chain.ancestry chain (Chain.tip chain).hash))
  in
  let source =
    Array.to_list r.harness.nodes
    |> List.find_map (fun n ->
           match Node.certificate n ~round:entry.height with
           | Some c when String.equal c.block_hash entry.hash -> Some c
           | _ -> None)
  in
  let certificate = Option.get source in
  let tx = List.hd entry.block.txs in
  let tx_id = Transaction.id tx in
  let summary = Block.summarize entry.block in
  let proof = Option.get (Block.prove_tx entry.block ~tx_id) in
  let ctx =
    Catchup.validation_ctx ~params:config.params
      ~sig_scheme:Algorand_crypto.Signature_scheme.sim ~vrf_scheme:Algorand_crypto.Vrf.sim
      ~chain ~round:entry.height
  in
  (* The context must see the chain as it was before this block. *)
  let ctx = { ctx with last_block_hash = entry.parent } in
  (match
     Lightclient.verify_payment ~params:config.params ~ctx ~summary ~certificate ~tx_id
       ~proof
   with
  | Ok v ->
    Alcotest.(check int) "round" entry.height v.round;
    Alcotest.(check string) "hash" (Hex.of_string entry.hash) (Hex.of_string v.block_hash)
  | Error e -> Alcotest.failf "light verification failed: %a" Lightclient.pp_error e);
  (* A payment that is not in the block must be rejected. *)
  match
    Lightclient.verify_payment ~params:config.params ~ctx ~summary ~certificate
      ~tx_id:(Sha256.digest "forged") ~proof
  with
  | Error `Not_included -> ()
  | Ok _ -> Alcotest.fail "forged payment accepted"
  | Error e -> Alcotest.failf "unexpected: %a" Lightclient.pp_error e

let suite =
  [
    ( "merkle",
      [
        t "empty tree" empty_tree;
        t "roots differ" roots_differ;
        t "all proofs verify" all_proofs_verify;
        t "wrong leaf rejected" wrong_leaf_rejected;
        t "proof size logarithmic" proof_size_logarithmic;
        t "block summary roundtrip" block_summary_roundtrip;
        t "tree matches naive prover" tree_matches_naive;
        t "proof server" proof_server;
        ts "light client end-to-end" light_client_end_to_end;
        qt "random trees verify"
          QCheck2.Gen.(pair (int_range 1 40) (int_range 0 1000))
          (fun (n, seed) ->
            let ls = List.init n (fun i -> Printf.sprintf "%d-%d" seed i) in
            let root = Merkle.root ls in
            let idx = seed mod n in
            match Merkle.prove ls ~index:idx with
            | None -> false
            | Some p -> Merkle.verify ~root ~leaf:(List.nth ls idx) p);
      ] );
  ]
