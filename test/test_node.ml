(* Node-level units: identities, proposal priorities, seed evolution,
   message ids and sizes. (Whole-network behavior is in
   test_harness.ml.) *)

open Algorand_crypto
module Identity = Algorand_core.Identity
module Proposal = Algorand_core.Proposal
module Message = Algorand_core.Message
module Transaction = Algorand_ledger.Transaction
module Block = Algorand_ledger.Block
module Vote = Algorand_ba.Vote

let t name f = Alcotest.test_case name `Quick f

let sig_scheme = Signature_scheme.sim
let vrf_scheme = Vrf.sim
let users =
  Array.init 12 (fun i ->
      Identity.generate ~sig_scheme ~vrf_scheme ~seed:(Printf.sprintf "node%d" i))

let composite_key_projections () =
  let u = users.(0) in
  Alcotest.(check int) "composite length" Identity.pk_length (String.length u.pk);
  Alcotest.(check int) "sig half" 32 (String.length (Identity.sig_pk u.pk));
  Alcotest.(check int) "vrf half" 32 (String.length (Identity.vrf_pk u.pk));
  Alcotest.(check string) "concatenation"
    (Hex.of_string u.pk)
    (Hex.of_string (Identity.sig_pk u.pk ^ Identity.vrf_pk u.pk));
  (* The projections must actually work with the schemes. *)
  let s = u.signer.sign "m" in
  Alcotest.(check bool) "sig half verifies" true
    (sig_scheme.verify ~pk:(Identity.sig_pk u.pk) ~msg:"m" ~signature:s)

let weight_of _ = 100
let total_weight = 100 * Array.length users
let seed = "prop-seed"
let prev_hash = String.make 32 'H'

let proposals () =
  (* With tau = 6 over 12 users someone is selected; priorities are
     validatable and comparable. *)
  let proposals =
    Array.to_list users
    |> List.filter_map (fun (u : Identity.t) ->
           Proposal.try_propose ~prover:u.prover ~pk:u.pk ~seed ~tau:6.0 ~round:1
             ~prev_hash ~w:100 ~total_weight)
  in
  Alcotest.(check bool)
    (Printf.sprintf "some proposers (%d)" (List.length proposals))
    true
    (List.length proposals > 0);
  List.iter
    (fun (p : Proposal.priority_msg) ->
      Alcotest.(check bool) "validates" true
        (Proposal.validate ~vrf_scheme ~vrf_pk_of:Identity.vrf_pk ~seed ~tau:6.0
           ~weight_of ~total_weight p);
      (* A forged priority must not validate. *)
      Alcotest.(check bool) "forged priority rejected" false
        (Proposal.validate ~vrf_scheme ~vrf_pk_of:Identity.vrf_pk ~seed ~tau:6.0
           ~weight_of ~total_weight
           { p with priority = Sha256.digest "fake" }))
    proposals;
  (* higher is a strict total order on distinct proposals. *)
  match proposals with
  | a :: b :: _ ->
    Alcotest.(check bool) "antisymmetric" true
      (Proposal.higher a b <> Proposal.higher b a)
  | _ -> ()

let seed_evolution () =
  let u = users.(0) in
  let s1, proof = Proposal.next_seed ~prover:u.prover ~current_seed:"seed-r" ~round:3 in
  Alcotest.(check bool) "verifies" true
    (Proposal.verify_next_seed ~vrf_scheme ~vrf_pk:(Identity.vrf_pk u.pk)
       ~current_seed:"seed-r" ~round:3 ~seed:s1 ~proof);
  Alcotest.(check bool) "wrong round rejected" false
    (Proposal.verify_next_seed ~vrf_scheme ~vrf_pk:(Identity.vrf_pk u.pk)
       ~current_seed:"seed-r" ~round:4 ~seed:s1 ~proof);
  Alcotest.(check bool) "wrong key rejected" false
    (Proposal.verify_next_seed ~vrf_scheme ~vrf_pk:(Identity.vrf_pk users.(1).pk)
       ~current_seed:"seed-r" ~round:3 ~seed:s1 ~proof);
  (* Different rounds give different seeds (pseudo-randomness). *)
  let s2, _ = Proposal.next_seed ~prover:u.prover ~current_seed:"seed-r" ~round:4 in
  Alcotest.(check bool) "fresh per round" false (String.equal s1 s2)

let empty_hash_determinism () =
  let h1 = Proposal.empty_hash ~round:2 ~prev_hash in
  let h2 = Proposal.empty_hash ~round:2 ~prev_hash in
  let h3 = Proposal.empty_hash ~round:3 ~prev_hash in
  Alcotest.(check string) "deterministic" (Hex.of_string h1) (Hex.of_string h2);
  Alcotest.(check bool) "round-dependent" false (String.equal h1 h3)

let message_ids () =
  let u = users.(0) in
  let signer = u.signer in
  let tx =
    Transaction.make ~signer ~sender:u.pk ~recipient:users.(1).pk ~amount:1 ~nonce:0
  in
  let b = Block.empty ~round:1 ~prev_hash in
  (* Ids are distinct across kinds and stable. *)
  let ids =
    [
      Message.id (Message.Tx tx);
      Message.id (Message.Block_gossip b);
      Message.id (Message.Block_request { round = 1; block_hash = "h"; requester = 0; attempt = 0 });
      Message.id (Message.Block_reply b);
    ]
  in
  Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare ids));
  Alcotest.(check string) "stable" (Message.id (Message.Tx tx)) (Message.id (Message.Tx tx));
  (* Block gossip id is per (round, proposer): two variants from the
     same proposer share an id (relay rule of section 8.4). *)
  let b2 = { b with padding = 77 } in
  Alcotest.(check string) "equivocating blocks share id"
    (Message.id (Message.Block_gossip b))
    (Message.id (Message.Block_gossip b2));
  Alcotest.(check bool) "sizes positive" true
    (List.for_all
       (fun m -> Message.size_bytes m > 0)
       [ Message.Tx tx; Message.Block_gossip b ])

let priority_message_size () =
  (* Paper: ~200 bytes for priority+proof gossip. *)
  Alcotest.(check int) "200 bytes" 200 Proposal.priority_size_bytes

let suite =
  [
    ( "node-units",
      [
        t "composite key projections" composite_key_projections;
        t "proposals and priorities" proposals;
        t "seed evolution" seed_evolution;
        t "empty hash determinism" empty_hash_determinism;
        t "message ids" message_ids;
        t "priority message size" priority_message_size;
      ] );
  ]
