(* Hostile-wire hardening: bytes-on-the-wire equivalence, the codec
   vector corpus, the mutation fuzzer, on-path corruption, flood
   defense, and the cache-poisoning regressions.

   The threat model (paper section 3 plus ordinary internet reality):
   the attacker controls bytes in flight and can run flooding peers,
   but cannot forge signatures. Consensus must not notice - safety
   always, liveness within a constant factor. *)

open Algorand_crypto
module Harness = Algorand_core.Harness
module Node = Algorand_core.Node
module Codec = Algorand_core.Codec
module Message = Algorand_core.Message
module Identity = Algorand_core.Identity
module Params = Algorand_ba.Params
module Vote = Algorand_ba.Vote
module Chain = Algorand_ledger.Chain
module Engine = Algorand_sim.Engine
module Rng = Algorand_sim.Rng
module Gossip = Algorand_netsim.Gossip
module Wirefuzz = Algorand_check.Wirefuzz

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f

let fast_params =
  {
    Params.paper with
    lambda_priority = 1.0;
    lambda_stepvar = 1.0;
    lambda_block = 10.0;
    lambda_step = 5.0;
    max_steps = 8;
  }

let base ~seed ~users ~rounds =
  {
    Harness.default with
    users;
    rounds;
    params = fast_params;
    block_bytes = 10_000;
    tx_rate_per_s = 1.0;
    max_sim_time = 2_000.0;
    rng_seed = seed;
  }

(* ------------------- committed vector corpus ---------------------- *)

(* The vectors live in test/vectors/codec (dune copies them into the
   sandbox): every valid frame must decode and re-encode to identical
   bytes (the codec is canonical); every bad frame must be rejected. *)
let vectors_dir sub =
  (* The executable sits next to the copied-in vectors tree in _build,
     which holds regardless of the caller's working directory. *)
  let roots =
    [
      Filename.concat (Filename.dirname Sys.executable_name) "vectors";
      "vectors";
      Filename.concat "test" "vectors";
    ]
  in
  let usable r = try Sys.is_directory (Filename.concat r "codec") with Sys_error _ -> false in
  let root =
    try List.find usable roots
    with Not_found -> Alcotest.failf "vector corpus not found near %s" Sys.executable_name
  in
  Filename.concat (Filename.concat root "codec") sub

let read_vector path =
  let ic = open_in path in
  let hex = try input_line ic with End_of_file -> "" in
  close_in ic;
  Hex.to_string (String.trim hex)

let vector_files sub =
  let dir = vectors_dir sub in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".hex")
  |> List.sort compare
  |> List.map (fun f -> (f, read_vector (Filename.concat dir f)))

let valid_vectors () =
  let vs = vector_files "valid" in
  Alcotest.(check bool) "corpus present" true (List.length vs >= 10);
  List.iter
    (fun (name, frame) ->
      match Codec.decode frame with
      | None -> Alcotest.failf "%s: valid vector did not decode" name
      | Some m ->
        Alcotest.(check string)
          (name ^ ": canonical re-encode")
          (Hex.of_string frame)
          (Hex.of_string (Codec.encode m)))
    vs

let bad_vectors () =
  let vs = vector_files "bad" in
  Alcotest.(check bool) "corpus present" true (List.length vs >= 8);
  List.iter
    (fun (name, frame) ->
      match Codec.decode frame with
      | None -> ()
      | Some _ -> Alcotest.failf "%s: known-bad vector decoded" name)
    vs

(* --------------------------- fuzzer -------------------------------- *)

let fuzz_10k () =
  let report = Wirefuzz.run ~seed:7 ~mutations:10_000 () in
  List.iter
    (fun (f : Wirefuzz.failure) ->
      Printf.printf "FAIL via %s: %s\n  %s\n" f.mutation f.reason f.frame_hex)
    report.failures;
  Alcotest.(check int) "no oracle failures" 0 (List.length report.failures);
  Alcotest.(check int) "all mutants accounted for" report.mutations
    (report.rejected + report.decoded);
  (* The mutators must actually reach both outcomes, or the run tested
     nothing. *)
  Alcotest.(check bool) "some mutants rejected" true (report.rejected > 1000);
  Alcotest.(check bool) "some mutants survive" true (report.decoded > 100)

let fuzz_deterministic () =
  let a = Wirefuzz.run ~seed:11 ~mutations:1_000 () in
  let b = Wirefuzz.run ~seed:11 ~mutations:1_000 () in
  Alcotest.(check int) "rejected equal" a.rejected b.rejected;
  Alcotest.(check int) "decoded equal" a.decoded b.decoded

(* -------------------- typed/bytes equivalence ---------------------- *)

(* The same deployment, same seed, in both wire modes: because the
   bandwidth model is driven by the same declared sizes and every
   honest frame decodes to the value that was encoded, the two runs
   must agree on every chain. This is the strongest cheap check that
   the codec loses nothing consensus reads. *)
let tips (r : Harness.result) =
  Array.to_list r.harness.nodes
  |> List.map (fun n -> Hex.of_string (Chain.tip (Node.chain n)).hash)

let typed_bytes_equivalent () =
  let run wire = Harness.run { (base ~seed:33 ~users:10 ~rounds:3) with wire } in
  let rt = run `Typed and rb = run `Bytes in
  Alcotest.(check (list string)) "identical tips" (tips rt) (tips rb);
  Alcotest.(check int) "identical final rounds" rt.final_rounds rb.final_rounds;
  Alcotest.(check (float 1e-9)) "identical sim time" rt.sim_time rb.sim_time;
  Alcotest.(check int) "clean wire: no decode failures" 0 rb.wire.decode_failures

(* ---------------------- on-path corruption ------------------------- *)

let corruption_survived () =
  (* 10% of frames mangled for the first minute: consensus must hold
     (relays re-request what they lose; the vote threshold absorbs the
     rest) and every mangled frame must land in the decode-fail
     counter, not in a crash. *)
  let r =
    Harness.run
      {
        (base ~seed:44 ~users:10 ~rounds:3) with
        wire = `Bytes;
        attack = Harness.Corrupt { p = 0.1; from_ = 0.0; until = 60.0 };
      }
  in
  Alcotest.(check (list int)) "no double finals" [] r.safety.double_final;
  Alcotest.(check bool)
    (Printf.sprintf "corruption reached decoders (%d)" r.wire.decode_failures)
    true (r.wire.decode_failures > 0);
  Alcotest.(check bool) "all rounds still complete" true (r.final_rounds >= 1)

(* ------------------------- flood defense --------------------------- *)

let flood_contained () =
  (* One flooder pumping 200 garbage frames/s from t=2: honest nodes
     must ban it, consensus must finish every round, and completion
     latency must stay within 2x the no-attack baseline. *)
  (* 20 users so the banned flooder's stake (5%) is well below any
     committee threshold margin - the paper's honest-majority setting. *)
  let no_attack = Harness.run { (base ~seed:55 ~users:20 ~rounds:3) with wire = `Bytes } in
  let flooded =
    Harness.run
      {
        (base ~seed:55 ~users:20 ~rounds:3) with
        wire = `Bytes;
        attack =
          Harness.Flood
            {
              flooders = 0.05;
              rate_per_s = 200.0;
              frame_bytes = 512;
              from_ = 2.0;
              until = 1_000.0;
            };
      }
  in
  Alcotest.(check (list int)) "no double finals" [] flooded.safety.double_final;
  Alcotest.(check bool)
    (Printf.sprintf "flooder banned (%d links, nodes %s)" flooded.wire.banned_links
       (String.concat "," (List.map string_of_int flooded.wire.banned_nodes)))
    true
    (flooded.wire.banned_links >= 1 && flooded.wire.banned_nodes <> []);
  Alcotest.(check bool)
    (Printf.sprintf "garbage counted (%d decode failures, %d quota drops)"
       flooded.wire.decode_failures flooded.wire.quota_drops)
    true
    (flooded.wire.decode_failures > 0);
  Alcotest.(check int) "all rounds complete" no_attack.final_rounds flooded.final_rounds;
  (* Worst honest completion (max across users ~ p99 at this scale)
     must stay within 2x the undisturbed baseline. *)
  let worst (r : Harness.result) = r.completion.max in
  Alcotest.(check bool)
    (Printf.sprintf "honest worst-case %.2fs within 2x baseline %.2fs"
       (worst flooded) (worst no_attack))
    true
    (worst flooded <= 2.0 *. worst no_attack)

let quota_drops_engage () =
  (* Per-peer quotas tight enough that even honest bursts trip them:
     the run must still complete (drops degrade, never deadlock). *)
  let r =
    Harness.run
      {
        (base ~seed:66 ~users:8 ~rounds:2) with
        wire = `Bytes;
        gossip_limits =
          Some { Gossip.default_limits with quota_msgs = 40; quota_window_s = 1.0 };
      }
  in
  Alcotest.(check (list int)) "no double finals" [] r.safety.double_final;
  Alcotest.(check bool) "rounds complete under quota pressure" true (r.final_rounds >= 1)

(* -------------------- cache-poisoning regressions ------------------ *)

(* A corrupted vote variant (bad signature, same gossip id as the
   honest vote) must not poison any cache: the honest copy arriving
   later must still validate and relay. Drive Node.gossip_validate
   directly on a built deployment. *)
let poisoned_vote_then_honest () =
  let h = Harness.build (base ~seed:77 ~users:6 ~rounds:2) in
  Array.iter Node.start h.nodes;
  (* Run a moment so nodes enter round 1 and have vote contexts. *)
  ignore (Engine.run h.engine ~until:3.0 ());
  let node = h.nodes.(0) in
  let rs_round = Node.round node in
  (* Craft a committee vote the node will accept: at these early rounds
     the sortition seed is still seed_0 and the weights are the genesis
     allocation, so we can sign as any identity sortition selects. *)
  let prev_hash = (Chain.tip (Node.chain node)).hash in
  let vote =
    let rec find i =
      if i >= Array.length h.identities then None
      else begin
        let id = h.identities.(i) in
        match
          Vote.make ~signer:id.Identity.signer ~prover:id.Identity.prover
            ~pk:id.Identity.pk ~seed:h.genesis.seed0 ~tau:fast_params.tau_step
            ~w:1000 ~total_weight:(6 * 1000) ~round:rs_round ~step:(Vote.Bin 1)
            ~prev_hash ~value:(Sha256.digest "candidate")
        with
        | Some v -> Some v
        | None -> find (i + 1)
      end
    in
    find 0
  in
  match vote with
  | None -> Alcotest.skip ()
  | Some honest ->
    let corrupted = { honest with signature = "forged" } in
    (* The corrupted variant must be rejected... *)
    Alcotest.(check bool) "corrupted variant rejected" false
      (Node.gossip_validate node (Message.Ba_vote corrupted));
    (* ...and must not have poisoned the honest copy's validation. *)
    Alcotest.(check bool) "honest vote still accepted" true
      (Node.gossip_validate node (Message.Ba_vote honest))

(* Same attack against the future-round blind-relay path: a forged
   future vote must not be relayed (it would be marked seen and
   suppress the honest copy at every hop). *)
let future_vote_needs_signature () =
  let h = Harness.build (base ~seed:88 ~users:6 ~rounds:2) in
  Array.iter Node.start h.nodes;
  ignore (Engine.run h.engine ~until:3.0 ());
  let node = h.nodes.(0) in
  let id = h.identities.(1) in
  let future_round = Node.round node + 2 in
  let body : Vote.t =
    {
      round = future_round;
      step = Vote.Bin 1;
      voter_pk = id.Identity.pk;
      sorthash = Sha256.digest "sh";
      sortproof = "sp";
      prev_hash = Sha256.digest "ph";
      value = Sha256.digest "v";
      signature = "";
    }
  in
  let signed = { body with signature = id.Identity.signer.sign (Vote.signed_body body) } in
  let forged = { body with signature = "garbage" } in
  Alcotest.(check bool) "signed future vote relayed" true
    (Node.gossip_validate node (Message.Ba_vote signed));
  Alcotest.(check bool) "forged future vote dropped" false
    (Node.gossip_validate node (Message.Ba_vote forged));
  (* Hostile voter_pk shapes must not crash the check. *)
  Alcotest.(check bool) "short pk dropped, not crashed" false
    (Node.gossip_validate node (Message.Ba_vote { signed with voter_pk = "x" }))

let suite =
  [
    ( "wire",
      [
        t "valid vectors decode canonically" valid_vectors;
        t "bad vectors rejected" bad_vectors;
        ts "fuzzer: 10k mutations, zero failures" fuzz_10k;
        t "fuzzer deterministic per seed" fuzz_deterministic;
        ts "typed and bytes runs identical" typed_bytes_equivalent;
        ts "corruption survived and counted" corruption_survived;
        ts "flood contained: ban + bounded latency" flood_contained;
        ts "tight quotas degrade, not deadlock" quota_drops_engage;
        ts "vote cache immune to corrupted variant" poisoned_vote_then_honest;
        ts "future votes need a valid signature" future_vote_needs_signature;
      ] );
  ]
