(* Wire-codec roundtrips for every message type, with qcheck-generated
   values where structure allows. *)

open Algorand_crypto
module Codec = Algorand_core.Codec
module Message = Algorand_core.Message
module Proposal = Algorand_core.Proposal
module Certificate = Algorand_core.Certificate
module Identity = Algorand_core.Identity
module Block = Algorand_ledger.Block
module Transaction = Algorand_ledger.Transaction
module Vote = Algorand_ba.Vote

let t name f = Alcotest.test_case name `Quick f
let qt ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let sig_scheme = Signature_scheme.sim
let signer, pk = sig_scheme.generate ~seed:"codec"
let _, pk2 = sig_scheme.generate ~seed:"codec2"

let h32 s = Sha256.digest s

let sample_tx n =
  Transaction.make ~signer ~sender:pk ~recipient:pk2 ~amount:(n * 3) ~nonce:n

let sample_vote step : Vote.t =
  {
    round = 7;
    step;
    voter_pk = pk ^ pk2;
    sorthash = h32 "sort";
    sortproof = "proofbytes";
    prev_hash = h32 "prev";
    value = h32 "value";
    signature = "sig";
  }

let sample_block ~txs ~padding : Block.t =
  {
    header =
      {
        round = 9;
        prev_hash = h32 "p";
        timestamp = 123.456;
        seed = h32 "s";
        seed_proof = "sp";
        proposer_pk = pk ^ pk2;
        proposer_vrf_hash = h32 "v";
        proposer_vrf_proof = "vp";
      };
    txs;
    padding;
  }

let roundtrip (m : Message.t) =
  match Codec.decode (Codec.encode m) with
  | Some m' -> Alcotest.(check string) "id stable" (Message.id m) (Message.id m')
  | None -> Alcotest.fail "decode failed"

let all_kinds () =
  roundtrip (Message.Tx (sample_tx 1));
  roundtrip
    (Message.Priority
       {
         round = 3;
         proposer_pk = pk ^ pk2;
         prev_hash = h32 "p";
         vrf_hash = h32 "v";
         vrf_proof = "vp";
         priority = h32 "pr";
       });
  roundtrip (Message.Block_gossip (sample_block ~txs:[ sample_tx 1; sample_tx 2 ] ~padding:77));
  roundtrip (Message.Block_reply (sample_block ~txs:[] ~padding:0));
  roundtrip (Message.Ba_vote (sample_vote (Vote.Bin 4)));
  roundtrip (Message.Block_request { round = 5; block_hash = h32 "b"; requester = 12; attempt = 2 });
  roundtrip
    (Message.Fork_proposal
       {
         attempt = 2;
         proposer_pk = pk ^ pk2;
         vrf_hash = h32 "v";
         vrf_proof = "vp";
         priority = h32 "pr";
         suffix = [ sample_block ~txs:[ sample_tx 3 ] ~padding:5 ];
         tip_hash = h32 "tip";
       })

let block_hash_survives () =
  let b = sample_block ~txs:[ sample_tx 1; sample_tx 2; sample_tx 3 ] ~padding:123 in
  match Codec.decode_block (Codec.encode_block b) with
  | Some b' ->
    Alcotest.(check string) "hash preserved" (Hex.of_string (Block.hash b))
      (Hex.of_string (Block.hash b'))
  | None -> Alcotest.fail "block decode failed"

let vote_fields_survive () =
  List.iter
    (fun step ->
      let v = sample_vote step in
      match Codec.decode_vote (Codec.encode_vote v) with
      | Some v' ->
        Alcotest.(check bool) "equal" true (v = v');
        Alcotest.(check bool) "step equal" true (Vote.equal_step v.step v'.step)
      | None -> Alcotest.fail "vote decode failed")
    [ Vote.Reduction_one; Vote.Reduction_two; Vote.Bin 1; Vote.Bin 150; Vote.Final ]

let certificate_roundtrip () =
  let votes = List.init 5 (fun i -> { (sample_vote (Vote.Bin 2)) with round = i }) in
  let c = Certificate.make ~round:4 ~step:(Vote.Bin 2) ~block_hash:(h32 "b") ~votes in
  match Codec.decode_certificate (Codec.encode_certificate c) with
  | Some c' ->
    Alcotest.(check int) "round" c.round c'.round;
    Alcotest.(check int) "votes" (List.length c.votes) (List.length c'.votes);
    Alcotest.(check string) "hash" (Hex.of_string c.block_hash) (Hex.of_string c'.block_hash)
  | None -> Alcotest.fail "certificate decode failed"

let garbage_rejected () =
  Alcotest.(check bool) "empty" true (Codec.decode "" = None);
  Alcotest.(check bool) "junk" true (Codec.decode "not a message" = None);
  Alcotest.(check bool) "bad tag" true
    (Codec.decode (Algorand_ledger.Wire.concat [ Algorand_ledger.Wire.u64 99; "x" ]) = None);
  (* Truncations of a valid encoding must never decode to a value. *)
  let enc = Codec.encode (Message.Ba_vote (sample_vote (Vote.Bin 1))) in
  for cut = 1 to String.length enc - 1 do
    match Codec.decode (String.sub enc 0 cut) with
    | Some _ -> Alcotest.failf "truncation at %d decoded" cut
    | None -> ()
  done

(* Hostile declared quantities must be rejected by the decoder limits,
   not crash it or survive into downstream arithmetic. *)
let limits_enforced () =
  let max_step = Codec.default_limits.max_step in
  (* Step indices: Bin is clamped to [1, max_steps]; a vote carrying a
     step near max_int must not decode. *)
  Alcotest.(check bool) "bin at cap ok" true
    (Codec.decode_step (Codec.encode_step (Vote.Bin max_step)) = Some (Vote.Bin max_step));
  Alcotest.(check bool) "bin above cap rejected" true
    (Codec.decode_step (Codec.encode_step (Vote.Bin (max_step + 1))) = None);
  Alcotest.(check bool) "bin 0 rejected" true
    (Codec.decode_step (Codec.encode_step (Vote.Bin 0)) = None);
  Alcotest.(check bool) "bin near max_int rejected" true
    (Codec.decode_step (Codec.encode_step (Vote.Bin (max_int - 20))) = None);
  (* A vote whose step field survived the clamp still roundtrips. *)
  let v = sample_vote (Vote.Bin max_step) in
  Alcotest.(check bool) "vote at cap ok" true
    (Codec.decode_vote (Codec.encode_vote v) = Some v);
  Alcotest.(check bool) "vote above cap rejected" true
    (Codec.decode_vote (Codec.encode_vote { v with step = Vote.Bin (max_step + 1) })
    = None);
  (* Padding is a declared byte count: a small frame claiming 2^60
     pretend-bytes would wedge the receiver's modeled uplink. *)
  let bomb = sample_block ~txs:[] ~padding:(1 lsl 60) in
  Alcotest.(check bool) "padding bomb rejected" true
    (Codec.decode_block (Codec.encode_block bomb) = None);
  Alcotest.(check bool) "padding at cap ok" true
    (Codec.decode_block
       (Codec.encode_block
          (sample_block ~txs:[] ~padding:Codec.default_limits.max_padding))
    <> None);
  (* Tighter experiment-derived limits bite earlier. *)
  let tight = Codec.limits_of_params ~block_bytes:10_000 Algorand_ba.Params.paper in
  Alcotest.(check bool) "tight padding cap" true
    (Codec.decode_block ~limits:tight
       (Codec.encode_block (sample_block ~txs:[] ~padding:1_000_000))
    = None);
  (* Short integer fields must not raise out of the decoder: a vote
     frame whose round field is 3 bytes used to crash decode_vote. *)
  let short_round =
    Algorand_ledger.Wire.concat
      [ "abc"; Codec.encode_step (Vote.Bin 1); "pk"; "sh"; "sp"; "ph"; "v"; "sig" ]
  in
  Alcotest.(check bool) "short round field rejected" true
    (Codec.decode_vote short_round = None);
  (* Negative (top-bit-set) u64s are rejected everywhere. *)
  let neg = String.make 1 '\xff' ^ String.make 7 '\x00' in
  let neg_round_vote =
    Algorand_ledger.Wire.concat
      [ neg; Codec.encode_step (Vote.Bin 1); "pk"; "sh"; "sp"; "ph"; "v"; "sig" ]
  in
  Alcotest.(check bool) "negative round rejected" true
    (Codec.decode_vote neg_round_vote = None);
  (* Oversized frames are rejected before parsing. *)
  let small = { Codec.default_limits with max_frame_bytes = 64 } in
  let big = Codec.encode (Message.Block_gossip (sample_block ~txs:[] ~padding:0)) in
  Alcotest.(check bool) "frame cap" true (Codec.decode ~limits:small big = None)

(* The catch-up reply item list is capped; an attacker cannot claim an
   absurd number of (block, certificate) pairs. *)
let list_caps_enforced () =
  let tight = { Codec.default_limits with max_items = 2; max_votes = 3 } in
  let votes n = List.init n (fun i -> { (sample_vote (Vote.Bin 2)) with round = i }) in
  let cert n = Certificate.make ~round:1 ~step:(Vote.Bin 2) ~block_hash:(h32 "b") ~votes:(votes n) in
  Alcotest.(check bool) "votes at cap ok" true
    (Codec.decode_certificate ~limits:tight (Codec.encode_certificate (cert 3)) <> None);
  Alcotest.(check bool) "votes above cap rejected" true
    (Codec.decode_certificate ~limits:tight (Codec.encode_certificate (cert 4)) = None);
  let reply n =
    Message.Round_reply
      {
        to_ = 1;
        current_round = 5;
        items = List.init n (fun _ -> (sample_block ~txs:[] ~padding:0, cert 1));
      }
  in
  Alcotest.(check bool) "items at cap ok" true
    (Codec.decode ~limits:tight (Codec.encode (reply 2)) <> None);
  Alcotest.(check bool) "items above cap rejected" true
    (Codec.decode ~limits:tight (Codec.encode (reply 3)) = None)

let wire_size_includes_padding () =
  let b = sample_block ~txs:[] ~padding:10_000 in
  let m = Message.Block_gossip b in
  Alcotest.(check bool) "padding counted" true
    (Codec.wire_size_bytes m > 10_000);
  Alcotest.(check bool) "close to size estimate" true
    (abs (Codec.wire_size_bytes m - Message.size_bytes m) < 600)

let suite =
  [
    ( "codec",
      [
        t "all message kinds roundtrip" all_kinds;
        t "block hash survives" block_hash_survives;
        t "vote fields survive" vote_fields_survive;
        t "certificate roundtrip" certificate_roundtrip;
        t "garbage rejected" garbage_rejected;
        t "decoder limits enforced" limits_enforced;
        t "list caps enforced" list_caps_enforced;
        t "wire size includes padding" wire_size_includes_padding;
        qt "tx roundtrips" QCheck2.Gen.(pair (int_range 0 100000) (int_range 0 1000))
          (fun (amount, nonce) ->
            let tx = Transaction.make ~signer ~sender:pk ~recipient:pk2 ~amount ~nonce in
            match Codec.decode (Codec.encode (Message.Tx tx)) with
            | Some (Message.Tx tx') -> Transaction.id tx = Transaction.id tx'
            | _ -> false);
        qt "votes roundtrip"
          QCheck2.Gen.(
            triple (int_range 0 10000)
              (int_range 1 Algorand_ba.Params.paper.max_steps)
              string)
          (fun (round, bin, value) ->
            let v = { (sample_vote (Vote.Bin bin)) with round; value } in
            Codec.decode_vote (Codec.encode_vote v) = Some v);
        qt "blocks roundtrip" QCheck2.Gen.(pair (int_range 0 5) (int_range 0 100000))
          (fun (ntx, padding) ->
            let b = sample_block ~txs:(List.init ntx sample_tx) ~padding in
            match Codec.decode_block (Codec.encode_block b) with
            | Some b' -> Block.hash b = Block.hash b'
            | None -> false);
      ] );
  ]
