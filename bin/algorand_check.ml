(* algorand-check: schedule-exploring model checker for BA*.

   The simulator exercises one delivery schedule per seed; this tool
   drives small BA* clusters through systematically (DFS with
   partial-order reduction) or randomly (seeded walks) explored
   delivery schedules, audits the paper's invariants after every
   transition, and shrinks any violation to a minimal replayable trace.

     algorand-check --mode dfs  --nodes 3 --depth 300
     algorand-check --mode fuzz --nodes 4 --seeds 50
     algorand-check --mode fuzz --scenario split --t-step 0.3   # negative control
     algorand-check --mode sim  --seeds 10   # whole-harness schedule fuzz
     algorand-check --mode fuzz-wire --mutations 10000   # codec mutation fuzz

   Subcommands widen the net:

     algorand-check swarm --budget-sec 30        # coverage-guided stressor swarm
     algorand-check swarm --replay 'seed=..;users=..;rounds=..;st=..'
     algorand-check gallery                      # literature adversary gallery

   Every failure path prints a single-line machine-readable REPRODUCE:
   command before exiting nonzero. *)

open Cmdliner
module World = Algorand_check.World
module Schedule = Algorand_check.Schedule
module Shrink = Algorand_check.Shrink
module Swarm = Algorand_check.Swarm
module Gallery = Algorand_check.Gallery
module Params = Algorand_ba.Params
module Rng = Algorand_sim.Rng
module Harness = Algorand_core.Harness
module Engine = Algorand_sim.Engine
module Adversary = Algorand_netsim.Adversary

let row label value = Printf.printf "  %-18s %s\n" label value
let rowi label value = row label (string_of_int value)

let print_stats (s : Schedule.stats) =
  rowi "states explored" s.states;
  rowi "transitions" s.transitions;
  rowi "schedules run" s.schedules;
  rowi "deduped" s.deduped;
  rowi "truncated" s.truncated

let print_violations ~(config : World.config) ~(shrink : bool)
    (violations : Schedule.report list) : unit =
  rowi "violations" (List.length violations);
  List.iter
    (fun (r : Schedule.report) ->
      print_newline ();
      if shrink then begin
        let minimal =
          Shrink.minimize ~config ~invariant:r.violation.invariant r.trace
        in
        Printf.printf "%s\n" (Shrink.render ~invariant:r.violation minimal)
      end
      else Printf.printf "%s\n" (Shrink.render ~invariant:r.violation r.trace))
    violations

(* ------------------------- world modes ---------------------------- *)

let run_world_mode ~mode ~nodes ~seeds ~depth ~max_states ~scenario ~t_step ~t_final
    ~shrink =
  let params =
    {
      World.default_config.params with
      t_step = Option.value t_step ~default:World.default_config.params.t_step;
      t_final = Option.value t_final ~default:World.default_config.params.t_final;
    }
  in
  let config = { World.default_config with nodes; scenario; params } in
  let fresh () =
    let w = World.create config in
    World.start w;
    w
  in
  Printf.printf "algorand-check mode=%s nodes=%d scenario=%s t_step=%.3f t_final=%.3f\n"
    (match mode with `Dfs -> "dfs" | `Fuzz -> "fuzz" | `Fifo -> "fifo")
    nodes
    (match scenario with World.Agree -> "agree" | World.Split -> "split")
    params.t_step params.t_final;
  let outcome =
    match mode with
    | `Dfs ->
      let o = Schedule.explore_dfs ~max_depth:depth ~max_states (fresh ()) in
      row "space exhausted" (if o.complete then "yes" else "no");
      o
    | `Fifo -> Schedule.run_fifo ~max_depth:depth (fresh ())
    | `Fuzz ->
      let base = Rng.create 0x5eed in
      let stats = Schedule.fresh_stats () in
      let violations = ref [] in
      for k = 1 to seeds do
        if !violations = [] then begin
          let rng = Rng.split base (Printf.sprintf "walk-%d" k) in
          let o = Schedule.run_fuzz ~max_depth:depth ~rng (fresh ()) in
          stats.transitions <- stats.transitions + o.stats.transitions;
          stats.states <- stats.states + o.stats.states;
          stats.schedules <- stats.schedules + o.stats.schedules;
          stats.truncated <- stats.truncated + o.stats.truncated;
          violations := !violations @ o.violations
        end
      done;
      { Schedule.stats; violations = !violations; complete = false }
  in
  print_stats outcome.stats;
  print_violations ~config ~shrink outcome.violations;
  if outcome.violations <> [] then begin
    Printf.printf
      "REPRODUCE: algorand-check --mode %s --nodes %d --scenario %s --depth %d \
       --seeds %d --t-step %g --t-final %g\n"
      (match mode with `Dfs -> "dfs" | `Fuzz -> "fuzz" | `Fifo -> "fifo")
      nodes
      (match scenario with World.Agree -> "agree" | World.Split -> "split")
      depth seeds params.t_step params.t_final;
    exit 1
  end

(* ------------------------- harness mode --------------------------- *)

(* Whole-simulator schedule fuzz: run the full deployment (gossip, WAN,
   blocks) per seed with (a) the engine's tie-break hook shuffling
   simultaneous events and (b) a lossless reordering adversary jittering
   every message, then audit cross-node safety. *)
let run_sim_mode ~nodes ~seeds ~seed_base =
  Printf.printf "algorand-check mode=sim users=%d seeds=%d seed-base=%d\n" nodes
    seeds seed_base;
  let bad = ref [] in
  for k = seed_base to seed_base + seeds - 1 do
    let config =
      {
        Harness.default with
        users = nodes;
        rounds = 1;
        block_bytes = 20_000;
        tx_rate_per_s = 0.0;
        rng_seed = k;
        max_sim_time = 600.0;
      }
    in
    let h = Harness.build config in
    let rng = Rng.split (Rng.create k) "engine-shuffle" in
    Engine.set_reorder_hook h.engine
      (Some
         (fun batch ->
           Rng.shuffle rng batch;
           batch));
    Algorand_netsim.Network.set_adversary h.network
      (Adversary.reorder ~rng:(Rng.split (Rng.create k) "net-jitter")
         ~window:(config.params.lambda_step /. 4.0));
    Harness.install_workload h;
    Array.iter Algorand_core.Node.start h.nodes;
    ignore (Engine.run h.engine ~until:config.max_sim_time ());
    let safety = Harness.audit_safety h in
    if safety.double_final <> [] then begin
      bad := !bad @ [ k ];
      Printf.printf "  seed %d: DOUBLE FINAL in rounds %s\n" k
        (String.concat "," (List.map string_of_int safety.double_final))
    end
  done;
  rowi "seeds run" seeds;
  rowi "double finals" (List.length !bad);
  if !bad <> [] then begin
    List.iter
      (fun k ->
        Printf.printf
          "REPRODUCE: algorand-check --mode sim --nodes %d --seeds 1 --seed-base %d\n"
          nodes k)
      !bad;
    exit 1
  end

(* ------------------------- fuzz-wire mode ------------------------- *)

(* Codec mutation fuzz: mutate valid encodings and hold the decoder to
   its contract (no exception, bounded allocation, self-consistency).
   Any failure prints a shrunk hex reproducer and exits nonzero. *)
let run_fuzz_wire ~seed ~mutations =
  Printf.printf "algorand-check mode=fuzz-wire seed=%d mutations=%d\n" seed mutations;
  let report = Algorand_check.Wirefuzz.run ~seed ~mutations () in
  rowi "mutations" report.mutations;
  rowi "rejected" report.rejected;
  rowi "still decoded" report.decoded;
  rowi "failures" (List.length report.failures);
  List.iter
    (fun (f : Algorand_check.Wirefuzz.failure) ->
      Printf.printf "\n  FAIL via %s: %s\n  frame (%d bytes): %s\n" f.mutation
        f.reason f.frame_len f.frame_hex)
    report.failures;
  (* Transport layer below the codec: frame reassembly under
     adversarial segmentation and stream corruption. *)
  let streams = max 100 (mutations / 10) in
  let rr = Algorand_check.Wirefuzz.reassembly_run ~seed ~streams () in
  rowi "reassembly streams" rr.streams;
  rowi "clean streams" rr.clean_streams;
  rowi "poisoned streams" rr.poisoned_streams;
  rowi "reassembly failures" (List.length rr.reassembly_failures);
  List.iter
    (fun (f : Algorand_check.Wirefuzz.failure) ->
      Printf.printf "\n  FAIL via %s: %s\n  stream (%d bytes): %s\n" f.mutation
        f.reason f.frame_len f.frame_hex)
    rr.reassembly_failures;
  if report.failures <> [] || rr.reassembly_failures <> [] then begin
    Printf.printf
      "REPRODUCE: algorand-check --mode fuzz-wire --seed %d --mutations %d\n" seed
      mutations;
    exit 1
  end

(* --------------------------- swarm mode ---------------------------- *)

(* Coverage-guided stressor swarm (lib/check/swarm.ml): deterministic
   per (budget, seed-stream) pair, so two identical invocations print
   identical episode logs and corpus digests. *)
let run_swarm ~budget_sec ~seed_stream ~corpus_out ~replay =
  match replay with
  | Some line -> (
    match Swarm.of_string line with
    | Error e ->
      Printf.printf "swarm: bad replay config: %s\n" e;
      exit 2
    | Ok config ->
      Printf.printf "algorand-check swarm replay cfg='%s'\n" (Swarm.to_string config);
      let e = Swarm.run_episode config in
      rowi "events" e.events;
      rowi "coverage items" (List.length e.fingerprint);
      (match e.violation with
      | None -> row "verdict" "ok"
      | Some invariant ->
        row "verdict" (Printf.sprintf "VIOLATION:%s (%s)" invariant e.detail);
        print_endline (Swarm.reproducer config ~invariant);
        exit 1))
  | None ->
    Printf.printf "algorand-check swarm budget-sec=%d seed-stream=%d\n" budget_sec
      seed_stream;
    let r = Swarm.run ~log:print_endline ~budget_sec ~seed_stream () in
    rowi "episodes" r.episodes;
    rowi "events" r.total_events;
    rowi "corpus size" (List.length r.corpus);
    rowi "coverage items" r.coverage_items;
    rowi "max families composed" r.max_families;
    row "corpus digest" (Swarm.corpus_digest r);
    (match corpus_out with
    | None -> ()
    | Some path ->
      (* The corpus as a JSON array (config strings are plain
         [a-z0-9=;:,.] so no escaping is needed) for jq validation. *)
      let oc = open_out path in
      output_string oc "[\n";
      List.iteri
        (fun i (e : Swarm.corpus_entry) ->
          Printf.fprintf oc "  {\"config\": \"%s\", \"coverage\": \"%s\", \"novel\": %d}%s\n"
            (Swarm.to_string e.entry_config)
            e.coverage e.novel
            (if i = List.length r.corpus - 1 then "" else ","))
        r.corpus;
      output_string oc "]\n";
      close_out oc;
      Printf.printf "corpus: wrote %s\n" path);
    if r.found <> [] then begin
      rowi "violations" (List.length r.found);
      List.iter
        (fun (c, invariant, detail) ->
          Printf.printf "  %s: %s\n" invariant detail;
          print_endline (Swarm.reproducer c ~invariant))
        r.found;
      exit 1
    end

let swarm_cmd =
  let budget_sec =
    Arg.(
      value & opt int 30
      & info [ "budget-sec" ]
          ~doc:
            "Episode budget, in simulated-event-seconds (deterministic: counted \
             in engine events at a fixed nominal rate, not wall clock).")
  in
  let seed_stream =
    Arg.(
      value & opt int 0
      & info [ "seed-stream" ] ~doc:"Which deterministic seed stream to run.")
  in
  let corpus_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"FILE" ~doc:"Write the coverage corpus as JSON.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"CFG"
          ~doc:"Replay one episode config (the REPRODUCE: line payload).")
  in
  let go budget_sec seed_stream corpus_out replay =
    run_swarm ~budget_sec ~seed_stream ~corpus_out ~replay
  in
  Cmd.v
    (Cmd.info "swarm"
       ~doc:
         "Coverage-guided simulation swarm: compose every fault, attack and \
          fuzzer; audit all invariants; shrink violations to one-line \
          reproducers")
    Term.(const go $ budget_sec $ seed_stream $ corpus_out $ replay)

(* -------------------------- gallery mode --------------------------- *)

(* Literature adversary gallery (lib/check/gallery.ml) against the
   small-world model checker. *)
let run_gallery ~seeds =
  Printf.printf "algorand-check gallery seeds=%d\n" seeds;
  let failed = ref false in
  let u = Gallery.undecidable_run ~laggard:0 () in
  Printf.printf "undecidable-messages: stale=%d decided=%d hung=%d violations=%d\n"
    u.stale_deliveries u.decided u.hung (List.length u.violations);
  List.iter
    (fun (v : Algorand_check.Invariant.violation) ->
      Printf.printf "  VIOLATION %s: %s\n" v.invariant v.detail;
      failed := true)
    u.violations;
  for seed = 1 to seeds do
    let a = Gallery.adaptive_run ~seed ~budget:2 ~erasure:true () in
    Printf.printf
      "adaptive-corruption seed=%d erasure=on: corrupted=%d forged=%d retro=%d \
       decided=%d violations=%d\n"
      seed a.corrupted a.forged a.retro_forged a.decided (List.length a.violations);
    if a.retro_forged > 0 then begin
      Printf.printf "  VIOLATION erasure: retro-forged %d votes\n" a.retro_forged;
      failed := true
    end;
    List.iter
      (fun (v : Algorand_check.Invariant.violation) ->
        Printf.printf "  VIOLATION %s: %s\n" v.invariant v.detail;
        failed := true)
      a.violations
  done;
  if !failed then begin
    Printf.printf "REPRODUCE: algorand-check gallery --seeds %d\n" seeds;
    exit 1
  end

let gallery_cmd =
  let seeds =
    Arg.(value & opt int 5 & info [ "seeds" ] ~doc:"Adaptive-corruption schedules to run.")
  in
  Cmd.v
    (Cmd.info "gallery"
       ~doc:
         "Literature adversary gallery: undecidable messages (Conti et al.) and \
          adaptive corruption racing ephemeral-key erasure (Wang)")
    Term.(const (fun seeds -> run_gallery ~seeds) $ seeds)

(* ----------------------------- CLI -------------------------------- *)

let cmd =
  let mode =
    Arg.(
      value
      & opt
          (enum
             [
               ("dfs", `Dfs);
               ("fuzz", `Fuzz);
               ("fifo", `Fifo);
               ("sim", `Sim);
               ("fuzz-wire", `Fuzz_wire);
             ])
          `Fuzz
      & info [ "mode" ] ~doc:"Exploration mode: dfs, fuzz, fifo, sim or fuzz-wire.")
  in
  let nodes = Arg.(value & opt int 4 & info [ "nodes" ] ~doc:"Cluster size.") in
  let seeds =
    Arg.(value & opt int 20 & info [ "seeds" ] ~doc:"Random walks (fuzz) or harness runs (sim).")
  in
  let depth =
    Arg.(value & opt int 400 & info [ "depth" ] ~doc:"Max transitions per schedule.")
  in
  let max_states =
    Arg.(value & opt int 200_000 & info [ "max-states" ] ~doc:"DFS state budget.")
  in
  let scenario =
    Arg.(
      value
      & opt (enum [ ("agree", World.Agree); ("split", World.Split) ]) World.Agree
      & info [ "scenario" ]
          ~doc:"Inputs: agree (one proposed block) or split (equivocating proposer).")
  in
  let t_step =
    Arg.(value & opt (some float) None & info [ "t-step" ] ~doc:"Override the step vote threshold fraction T (negative control: set below 0.5).")
  in
  let t_final =
    Arg.(value & opt (some float) None & info [ "t-final" ] ~doc:"Override the final-step threshold fraction.")
  in
  let no_shrink =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report raw violation traces without shrinking.")
  in
  let mutations =
    Arg.(
      value & opt int 10_000
      & info [ "mutations" ] ~doc:"Mutant frames to run (fuzz-wire mode).")
  in
  let fuzz_seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fuzzer seed (fuzz-wire mode).")
  in
  let seed_base =
    Arg.(
      value & opt int 1
      & info [ "seed-base" ] ~doc:"First seed of the range (sim mode).")
  in
  let go mode nodes seeds depth max_states scenario t_step t_final no_shrink mutations
      fuzz_seed seed_base =
    match mode with
    | `Sim -> run_sim_mode ~nodes ~seeds ~seed_base
    | `Fuzz_wire -> run_fuzz_wire ~seed:fuzz_seed ~mutations
    | (`Dfs | `Fuzz | `Fifo) as mode ->
      run_world_mode ~mode ~nodes ~seeds ~depth ~max_states ~scenario ~t_step ~t_final
        ~shrink:(not no_shrink)
  in
  let default =
    Term.(
      const go $ mode $ nodes $ seeds $ depth $ max_states $ scenario $ t_step
      $ t_final $ no_shrink $ mutations $ fuzz_seed $ seed_base)
  in
  Cmd.group ~default
    (Cmd.info "algorand-check"
       ~doc:"Schedule-exploring model checker for BA* with invariant audits")
    [ swarm_cmd; gallery_cmd ]

let () = exit (Cmd.eval cmd)
