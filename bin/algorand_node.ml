(* algorand-node: the real-wire deployment driver.

     algorand-node run --index 0 --users 8 --rounds 5      one daemon
     algorand-node spawn --procs 8 --rounds 5              N-process localhost run
     algorand-node audit-triple --users 8 --rounds 5       sim(typed) = sim(bytes) = wire

   One daemon is the sans-IO node core (lib/core Node) attached to a
   TCP transport (lib/transport) through the Wire_gossip overlay, with
   the virtual-clock engine driven by wall time (Realtime). Every
   process derives the full roster - identities, stakes, genesis -
   from the shared seed, exactly as the simulation harness does, which
   is what makes an on-wire ledger comparable hash-for-hash with an
   in-sim one. *)

open Cmdliner
module Node = Algorand_core.Node
module Codec = Algorand_core.Codec
module Message = Algorand_core.Message
module Identity = Algorand_core.Identity
module Harness = Algorand_core.Harness
module Disk_store = Algorand_core.Disk_store
module History = Algorand_core.History
module Wire_gossip = Algorand_core.Wire_gossip
module Chain = Algorand_ledger.Chain
module Genesis = Algorand_ledger.Genesis
module Params = Algorand_ba.Params
module Engine = Algorand_sim.Engine
module Metrics = Algorand_sim.Metrics
module Retry = Algorand_sim.Retry
module Rng = Algorand_sim.Rng
module Gossip = Algorand_netsim.Gossip
module Registry = Algorand_obs.Registry
module Trace = Algorand_obs.Trace
module Transport = Algorand_transport.Transport
module Tcp = Algorand_transport.Tcp_transport
module Handshake = Algorand_transport.Handshake
module Realtime = Algorand_transport.Realtime
module WG = Wire_gossip.Make (Tcp)

let hex (s : string) : string =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let rec mkdir_p (dir : string) : unit =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Shared deployment description                                       *)
(* ------------------------------------------------------------------ *)

type opts = {
  users : int;
  rounds : int;
  seed : int;
  port_base : int;
  block_bytes : int;
  committee_scale : float;
  time_scale : float;
  fanout : int;
  store_root : string option;
  crypto : Harness.crypto;
  wall_timeout : float;  (** wall-clock seconds before a run is abandoned *)
  linger : float;  (** wall seconds to keep serving peers after finishing *)
  flood_limits : bool;
}

let params_of (o : opts) : Params.t =
  if o.committee_scale = 1.0 then Params.paper
  else Params.scaled ~factor:o.committee_scale

(* Must mirror Harness.build exactly: same seed string per identity,
   same stakes, same genesis - or the determinism triple is vacuous. *)
let roster_of (o : opts) : Identity.t array * Genesis.t =
  let sig_scheme, vrf_scheme = Harness.schemes o.crypto in
  let identities =
    Array.init o.users (fun i ->
        Identity.generate ~sig_scheme ~vrf_scheme
          ~seed:(Printf.sprintf "user-%d-%d" o.seed i))
  in
  let genesis =
    Genesis.make
      (Array.to_list (Array.map (fun id -> (id.Identity.pk, 1_000)) identities))
  in
  (identities, genesis)

let addr_of (o : opts) (i : int) : string =
  Printf.sprintf "127.0.0.1:%d" (o.port_base + i)

let resolve_store_root (o : opts) : string =
  match o.store_root with
  | Some root -> root
  | None ->
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "algorand-wire-%d-%d" o.seed o.port_base)

(* ------------------------------------------------------------------ *)
(* One daemon                                                          *)
(* ------------------------------------------------------------------ *)

let terminating = ref false

type daemon_result = {
  dr_rounds : int;
  dr_block_hashes : string list;  (** raw, rounds 1.. *)
  dr_store_ok : bool;
}

(* The full life of one node process: listen, mesh up, run the
   protocol under the wall-clock driver, drain, persist, report. *)
let run_daemon (o : opts) ~(index : int) ~(report_path : string option)
    ~(metrics_path : string option) : daemon_result =
  let params = params_of o in
  let sig_scheme, vrf_scheme = Harness.schemes o.crypto in
  let identities, genesis = roster_of o in
  let identity = identities.(index) in
  let engine = Engine.create () in
  let registry = Registry.create () in
  let metrics = Metrics.create ~registry ~trace:(Trace.create ()) ~users:o.users () in
  let root = resolve_store_root o in
  mkdir_p root;
  let store_dir = Disk_store.node_dir ~root ~pk:identity.Identity.pk in
  let retry_policy : Retry.policy =
    {
      base_delay = Float.max 0.5 params.lambda_priority;
      multiplier = 2.0;
      max_delay = Float.max 5.0 params.lambda_step;
      jitter = 0.2;
      max_attempts = 0;
    }
  in
  let config : Node.config =
    {
      params;
      sig_scheme;
      vrf_scheme;
      block_target_bytes = o.block_bytes;
      max_round = o.rounds;
      byzantine = None;
      cpu_vote_verify_s = 0.0002;
      cpu_block_verify_s = 0.005;
      recovery_enabled = false;
      storage_shards = 1;
      pipeline_final = false;
      resync_enabled = true;
      store_dir = Some store_dir;
      checkpoint_every = 1;
      retry = retry_policy;
      verify_tx_sigs = true;
      txpool_retention_rounds = 8;
      deterministic_ts = true;
    }
  in
  let rng = Rng.create o.seed in
  let node =
    Node.create ~index ~identity ~config ~engine ~metrics
      ~rng:(Rng.split rng (Printf.sprintf "node-%d" index))
      ~genesis ()
  in
  let hello : Handshake.hello =
    {
      version = Handshake.version;
      params_digest = Codec.params_digest ~genesis:(Genesis.hash genesis) params;
      pk = identity.Identity.pk;
    }
  in
  let handlers = Transport.handlers () in
  let tcp = Tcp.create ~listen:(addr_of o index) ~hello ~registry ~handlers () in
  let wg =
    WG.create ~engine ~transport:tcp ~handlers ~self:index
      ~roster:(Array.map (fun id -> id.Identity.pk) identities)
      ~limits:(Codec.limits_of_params ~block_bytes:o.block_bytes params)
      ?flood:(if o.flood_limits then Some Gossip.default_limits else None)
      ~fanout:o.fanout ~retry:retry_policy
      ~rng:(Rng.split rng (Printf.sprintf "wire-%d" index))
      ~registry ()
  in
  WG.install wg
    ~validate:(fun msg -> Node.gossip_validate node msg)
    ~deliver:(fun ~src msg -> Node.deliver node ~src msg);
  Node.set_net node (WG.as_net wg);
  (* Dial convention: one connection per pair, opened by the higher
     index; acceptors learn the dialer from its handshake pk. *)
  for j = 0 to index - 1 do
    WG.dial wg ~index:j ~addr:(addr_of o j)
  done;
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> terminating := true));
  let start_wall = Unix.gettimeofday () in
  let expired () = Unix.gettimeofday () -. start_wall > o.wall_timeout in
  (* Phase 1: full mesh before round 1, so no process starts proposing
     into a half-built overlay. Redials (with backoff) cover peers
     that have not bound their listeners yet. *)
  Realtime.run ~engine ~time_scale:o.time_scale
    ~poll:(fun ~timeout -> Tcp.poll tcp ~timeout)
    ~until:(fun () ->
      !terminating || expired ()
      || List.length (WG.connected wg) >= o.users - 1)
    ();
  (* Phase 2: the protocol itself, to [rounds] completed rounds. *)
  if not (!terminating || expired ()) then begin
    Node.start node;
    Realtime.run ~engine ~time_scale:o.time_scale
      ~poll:(fun ~timeout -> Tcp.poll tcp ~timeout)
      ~until:(fun () -> !terminating || expired () || Node.is_stopped node)
      ()
  end;
  (* Phase 3: drain. Persist everything certified (the SIGTERM path
     lands here too), stop redialing, and keep serving straggler
     catch-up requests for a grace period. *)
  Node.checkpoint_now node;
  WG.stop wg;
  let drain_start = Unix.gettimeofday () in
  Realtime.run ~engine ~time_scale:o.time_scale
    ~poll:(fun ~timeout -> Tcp.poll tcp ~timeout)
    ~until:(fun () -> Unix.gettimeofday () -. drain_start > o.linger)
    ();
  Node.checkpoint_now node;
  Tcp.shutdown tcp;
  (* Self-audit: reload our own store and re-validate every
     certificate through History.replay - the report's [store_ok] is
     proven, not assumed. *)
  let store_ok =
    (* [`Missing] just marks where the contiguous prefix ends; only a
       corrupt file or an invalid certificate fails the self-audit. *)
    match Disk_store.load store_dir with
    | items, (None | Some (`Missing _)) when items <> [] -> (
      match History.replay ~params ~sig_scheme ~vrf_scheme ~genesis items with
      | Ok _ -> true
      | Error _ -> false)
    | _ -> false
  in
  let tip = Chain.tip (Node.chain node) in
  let block_hashes =
    List.filter_map
      (fun r ->
        Option.map
          (fun (e : Chain.entry) -> e.hash)
          (Chain.ancestor_at (Node.chain node) ~hash:tip.Chain.hash ~height:r))
      (List.init tip.Chain.height (fun i -> i + 1))
  in
  let cnt name = Option.value ~default:0 (Registry.counter_value registry name) in
  let stats = WG.stats wg in
  (match report_path with
  | None -> ()
  | Some path ->
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"index\":%d,\"pk\":\"%s\",\"rounds\":%d,\"store_ok\":%b,\"terminated\":%b,"
         index (hex identity.Identity.pk) tip.Chain.height store_ok !terminating);
    Buffer.add_string b "\"blocks\":[";
    List.iteri
      (fun i h ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\"" (hex h)))
      block_hashes;
    Buffer.add_string b "],";
    Buffer.add_string b
      (Printf.sprintf
         "\"decode_failures\":%d,\"handshake_failures\":%d,\"quota_drops\":%d,\"bans\":%d,"
         stats.Wire_gossip.decode_failures
         (cnt "transport.handshake_failures")
         stats.Wire_gossip.quota_drops stats.Wire_gossip.bans);
    Buffer.add_string b
      (Printf.sprintf
         "\"delivered\":%d,\"relayed\":%d,\"reconnects\":%d,\"bytes_sent\":%d,\"bytes_received\":%d}"
         stats.Wire_gossip.delivered stats.Wire_gossip.relayed
         (cnt "transport.reconnects") (cnt "transport.bytes_sent")
         (cnt "transport.bytes_received"));
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc (Buffer.contents b);
    close_out oc;
    Sys.rename tmp path);
  (match metrics_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Registry.to_json registry);
    output_string oc "\n";
    close_out oc);
  { dr_rounds = tip.Chain.height; dr_block_hashes = block_hashes; dr_store_ok = store_ok }

(* ------------------------------------------------------------------ *)
(* Launcher: N OS processes on localhost                               *)
(* ------------------------------------------------------------------ *)

type wire_audit = {
  wa_ok : bool;
  wa_rounds : int;  (** shortest agreed certified prefix across processes *)
  wa_hashes : string list;  (** that prefix's block hashes (raw) *)
  wa_decode_failures : int;
  wa_handshake_failures : int;
  wa_details : string list;  (** human-readable failure notes *)
}

let read_file (path : string) : string option =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  end

(* Pull one integer field out of a daemon's flat report JSON. *)
let json_int (json : string) (field : string) : int =
  let needle = Printf.sprintf "\"%s\":" field in
  match String.index_opt json '{' with
  | None -> 0
  | Some _ -> (
    let rec find i =
      if i + String.length needle > String.length json then None
      else if String.sub json i (String.length needle) = needle then
        Some (i + String.length needle)
      else find (i + 1)
    in
    match find 0 with
    | None -> 0
    | Some start ->
      let stop = ref start in
      while
        !stop < String.length json
        && (match json.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr stop
      done;
      if !stop = start then 0
      else int_of_string (String.sub json start (!stop - start)))

(* Fork [users] daemons, wait for them, then audit their on-disk
   ledgers against each other: every process's certified prefix must
   replay cleanly (all certificates valid) and agree block-for-block. *)
let spawn_cluster (o : opts) : wire_audit =
  let identities, genesis = roster_of o in
  let params = params_of o in
  let sig_scheme, vrf_scheme = Harness.schemes o.crypto in
  let root = resolve_store_root o in
  mkdir_p root;
  let report_path i = Filename.concat root (Printf.sprintf "report-%d.json" i) in
  let pids =
    List.init o.users (fun i ->
        match Unix.fork () with
        | 0 ->
          (* Child: own log file, then the whole daemon life. *)
          (try
             let log =
               Unix.openfile
                 (Filename.concat root (Printf.sprintf "node-%d.log" i))
                 [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
                 0o644
             in
             Unix.dup2 log Unix.stdout;
             Unix.dup2 log Unix.stderr;
             Unix.close log;
             ignore
               (run_daemon o ~index:i ~report_path:(Some (report_path i))
                  ~metrics_path:
                    (Some (Filename.concat root (Printf.sprintf "metrics-%d.json" i))));
             exit 0
           with e ->
             prerr_endline (Printexc.to_string e);
             exit 1)
        | pid -> (i, pid))
  in
  let deadline = Unix.gettimeofday () +. o.wall_timeout +. 10.0 in
  let remaining = ref pids in
  let statuses = Hashtbl.create o.users in
  let reap blocking =
    remaining :=
      List.filter
        (fun (i, pid) ->
          match Unix.waitpid (if blocking then [] else [ Unix.WNOHANG ]) pid with
          | 0, _ -> true
          | _, status ->
            Hashtbl.replace statuses i status;
            false
          | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
            Hashtbl.replace statuses i (Unix.WEXITED 0);
            false)
        !remaining
  in
  while !remaining <> [] && Unix.gettimeofday () < deadline do
    reap false;
    if !remaining <> [] then Unix.sleepf 0.05
  done;
  if !remaining <> [] then begin
    (* Ask nicely first: SIGTERM runs the drain-and-checkpoint path. *)
    List.iter (fun (_, pid) -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()) !remaining;
    let grace = Unix.gettimeofday () +. 5.0 in
    while !remaining <> [] && Unix.gettimeofday () < grace do
      reap false;
      if !remaining <> [] then Unix.sleepf 0.05
    done;
    List.iter (fun (_, pid) -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()) !remaining;
    reap true
  end;
  let details = ref [] in
  let note fmt = Printf.ksprintf (fun s -> details := s :: !details) fmt in
  List.iter
    (fun (i, _) ->
      match Hashtbl.find_opt statuses i with
      | Some (Unix.WEXITED 0) -> ()
      | Some (Unix.WEXITED c) -> note "process %d exited with code %d" i c
      | Some (Unix.WSIGNALED s) -> note "process %d killed by signal %d" i s
      | Some (Unix.WSTOPPED _) | None -> note "process %d did not exit" i)
    pids;
  (* Independent ledger audit: replay every process's store here, in
     the parent, so certificate validity is not taken on faith. *)
  let ledgers =
    Array.init o.users (fun i ->
        let dir = Disk_store.node_dir ~root ~pk:identities.(i).Identity.pk in
        let items, load_err = Disk_store.load dir in
        (match load_err with
        | Some (`Corrupt _ as e) ->
          note "process %d store: %s" i (Format.asprintf "%a" Disk_store.pp_load_error e)
        | Some (`Missing _) | None -> ());
        if items = [] then begin
          note "process %d has an empty store" i;
          []
        end
        else begin
          match History.replay ~params ~sig_scheme ~vrf_scheme ~genesis items with
          | Ok chain ->
            let tip = Chain.tip chain in
            List.filter_map
              (fun r ->
                Option.map
                  (fun (e : Chain.entry) -> e.hash)
                  (Chain.ancestor_at chain ~hash:tip.Chain.hash ~height:r))
              (List.init tip.Chain.height (fun k -> k + 1))
          | Error e ->
            note "process %d replay failed: %s" i (Format.asprintf "%a" History.pp_error e);
            []
        end)
  in
  let min_rounds = Array.fold_left (fun acc l -> min acc (List.length l)) max_int ledgers in
  let min_rounds = if min_rounds = max_int then 0 else min_rounds in
  let prefix = List.filteri (fun i _ -> i < min_rounds) ledgers.(0) in
  let agree =
    Array.for_all
      (fun l -> List.filteri (fun i _ -> i < min_rounds) l = prefix)
      ledgers
  in
  if not agree then note "ledger prefixes disagree";
  if min_rounds < o.rounds then
    note "shortest certified prefix %d < requested %d rounds" min_rounds o.rounds;
  let decode_failures = ref 0 and handshake_failures = ref 0 in
  List.iter
    (fun (i, _) ->
      match read_file (report_path i) with
      | None -> note "process %d wrote no report" i
      | Some json ->
        decode_failures := !decode_failures + json_int json "decode_failures";
        handshake_failures := !handshake_failures + json_int json "handshake_failures")
    pids;
  if !decode_failures > 0 then note "%d decode failures on the wire" !decode_failures;
  if !handshake_failures > 0 then note "%d handshake failures" !handshake_failures;
  {
    wa_ok = !details = [] && agree && min_rounds >= o.rounds;
    wa_rounds = min_rounds;
    wa_hashes = prefix;
    wa_decode_failures = !decode_failures;
    wa_handshake_failures = !handshake_failures;
    wa_details = List.rev !details;
  }

let print_wire_audit (o : opts) (a : wire_audit) : unit =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"processes\":%d,\"requested_rounds\":%d,\"agreed_rounds\":%d,\"ledger_identical\":%b,"
       o.users o.rounds a.wa_rounds
       (a.wa_ok || (a.wa_details = [] && a.wa_rounds > 0)));
  Buffer.add_string b
    (Printf.sprintf "\"final_hash\":\"%s\","
       (match List.rev a.wa_hashes with h :: _ -> hex h | [] -> ""));
  Buffer.add_string b
    (Printf.sprintf "\"decode_failures\":%d,\"handshake_failures\":%d,\"ok\":%b,"
       a.wa_decode_failures a.wa_handshake_failures a.wa_ok);
  Buffer.add_string b "\"notes\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%S" s))
    a.wa_details;
  Buffer.add_string b "]}";
  print_endline (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* The determinism triple                                              *)
(* ------------------------------------------------------------------ *)

(* Same seed, same params: the typed simulation, the bytes-on-the-wire
   simulation, and the N-process TCP deployment must certify the same
   blocks. This is the repo's strongest claim that the transport stack
   changes how bytes move, not what the protocol decides. *)
let audit_triple (o : opts) : int =
  let sim wire =
    let config =
      {
        Harness.default with
        users = o.users;
        rounds = o.rounds;
        rng_seed = o.seed;
        block_bytes = o.block_bytes;
        params = params_of o;
        crypto = o.crypto;
        tx_rate_per_s = 0.0;
        deterministic_ts = true;
        wire;
      }
    in
    let result = Harness.run config in
    let safety = result.Harness.safety in
    if safety.Harness.forked_rounds <> [] then
      failwith "simulated run violated agreement";
    let chain = Node.chain result.Harness.harness.Harness.nodes.(0) in
    let tip = Chain.tip chain in
    List.filter_map
      (fun r ->
        Option.map
          (fun (e : Chain.entry) -> e.hash)
          (Chain.ancestor_at chain ~hash:tip.Chain.hash ~height:r))
      (List.init (min o.rounds tip.Chain.height) (fun k -> k + 1))
  in
  let typed = sim `Typed in
  let bytes = sim `Bytes in
  let wire = spawn_cluster o in
  let wire_hashes = List.filteri (fun i _ -> i < o.rounds) wire.wa_hashes in
  let ledger_hash l = Algorand_crypto.Sha256.digest_concat l in
  let th = ledger_hash typed and bh = ledger_hash bytes and wh = ledger_hash wire_hashes in
  let identical =
    List.length typed = o.rounds && typed = bytes && bytes = wire_hashes && wire.wa_ok
  in
  let arr l = String.concat "," (List.map (fun h -> Printf.sprintf "\"%s\"" (hex h)) l) in
  Printf.printf
    "{\"users\":%d,\"rounds\":%d,\"typed\":\"%s\",\"bytes\":\"%s\",\"wire\":\"%s\",\"wire_ok\":%b,\"identical\":%b,\"typed_blocks\":[%s],\"wire_blocks\":[%s]}\n"
    o.users o.rounds (hex th) (hex bh) (hex wh) wire.wa_ok identical (arr typed)
    (arr wire_hashes);
  if identical then 0 else 1

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

let opts_term =
  let users =
    Arg.(value & opt int 8 & info [ "users"; "procs" ] ~docv:"N"
         ~doc:"Roster size: one OS process per user when spawning.")
  in
  let rounds = Arg.(value & opt int 5 & info [ "rounds" ] ~doc:"Rounds to complete.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed (shared by all processes).") in
  let port_base =
    Arg.(value & opt int 47800 & info [ "port-base" ] ~doc:"Process i listens on 127.0.0.1:(port-base + i).")
  in
  let block_bytes =
    Arg.(value & opt int 100_000 & info [ "block-bytes" ] ~doc:"Target block size.")
  in
  let committee_scale =
    Arg.(value & opt float 1.0
         & info [ "committee-scale" ] ~doc:"Scale factor for the paper's committee sizes.")
  in
  let time_scale =
    Arg.(value & opt float 50.0
         & info [ "time-scale" ] ~doc:"Virtual (protocol) seconds per wall-clock second.")
  in
  let fanout = Arg.(value & opt int 4 & info [ "fanout" ] ~doc:"Gossip relay fanout.") in
  let store =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Shared state root; each process keeps its ledger under a per-identity subdirectory.")
  in
  let real_crypto =
    Arg.(value & flag & info [ "real-crypto" ] ~doc:"Ed25519 + ECVRF instead of simulated crypto.")
  in
  let wall_timeout =
    Arg.(value & opt float 120.0 & info [ "wall-timeout" ] ~doc:"Abandon the run after this many wall seconds.")
  in
  let linger =
    Arg.(value & opt float 2.0
         & info [ "linger" ] ~doc:"Wall seconds to keep serving peers after finishing.")
  in
  let no_flood_limits =
    Arg.(value & flag & info [ "no-flood-limits" ] ~doc:"Disable per-peer quotas and ban scoring.")
  in
  let make users rounds seed port_base block_bytes committee_scale time_scale fanout
      store real_crypto wall_timeout linger no_flood_limits =
    {
      users;
      rounds;
      seed;
      port_base;
      block_bytes;
      committee_scale;
      time_scale;
      fanout;
      store_root = store;
      crypto = (if real_crypto then Harness.Real_crypto else Harness.Sim_crypto);
      wall_timeout;
      linger;
      flood_limits = not no_flood_limits;
    }
  in
  Term.(
    const make $ users $ rounds $ seed $ port_base $ block_bytes $ committee_scale
    $ time_scale $ fanout $ store $ real_crypto $ wall_timeout $ linger
    $ no_flood_limits)

let run_cmd =
  let index = Arg.(value & opt int 0 & info [ "index" ] ~docv:"I" ~doc:"This node's roster index.") in
  let report =
    Arg.(value & opt (some string) None & info [ "report" ] ~doc:"Write a JSON run report here.")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~doc:"Write the metrics registry snapshot here.")
  in
  let run o index report metrics =
    let r = run_daemon o ~index ~report_path:report ~metrics_path:metrics in
    Printf.printf "{\"index\":%d,\"rounds\":%d,\"store_ok\":%b}\n" index r.dr_rounds
      r.dr_store_ok;
    if r.dr_rounds >= o.rounds && r.dr_store_ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one node daemon over TCP.")
    Term.(const run $ opts_term $ index $ report $ metrics)

let spawn_cmd =
  let run o =
    let audit = spawn_cluster o in
    print_wire_audit o audit;
    if audit.wa_ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "spawn"
       ~doc:"Fork one process per user on localhost, run the protocol over TCP, audit \
             that every ledger agrees.")
    Term.(const run $ opts_term)

let triple_cmd =
  Cmd.v
    (Cmd.info "audit-triple"
       ~doc:"Assert the determinism triple: typed sim, bytes sim and the N-process \
             wire run certify identical ledgers.")
    Term.(const audit_triple $ opts_term)

let () =
  let info = Cmd.info "algorand-node" ~doc:"Real-wire Algorand deployment driver." in
  exit (Cmd.eval' (Cmd.group info [ run_cmd; spawn_cmd; triple_cmd ]))
