(* algorand-sim: command-line driver for the simulated Algorand
   deployment and its baselines.

     algorand-sim run --users 50 --rounds 3 --block-bytes 1000000
     algorand-sim run --attack equivocate --malicious 0.2
     algorand-sim run --attack partition --recovery
     algorand-sim committee --honest 0.8
     algorand-sim bitcoin --days 30 *)

open Cmdliner
module Harness = Algorand_core.Harness
module Figures = Algorand_core.Figures
module Node = Algorand_core.Node
module Chain = Algorand_ledger.Chain
module Params = Algorand_ba.Params
module Committee = Algorand_sortition.Committee
module Nakamoto = Algorand_baselines.Nakamoto
module Metrics = Algorand_sim.Metrics
module Trace = Algorand_obs.Trace
module Registry = Algorand_obs.Registry

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let users =
    Arg.(value & opt int 50 & info [ "users" ] ~docv:"N" ~doc:"Number of simulated users.")
  in
  let rounds = Arg.(value & opt int 3 & info [ "rounds" ] ~doc:"Rounds to run.") in
  let block_bytes =
    Arg.(value & opt int 1_000_000 & info [ "block-bytes" ] ~doc:"Target block size.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic RNG seed.") in
  let attack =
    Arg.(
      value
      & opt
          (enum
             [
               ("none", `None);
               ("equivocate", `Equivocate);
               ("partition", `Partition);
               ("dos", `Dos);
               ("delay-votes", `Delay_votes);
               ("churn", `Churn);
               ("flood", `Flood);
               ("corrupt", `Corrupt);
             ])
          `None
      & info [ "attack" ]
          ~doc:"Adversary: none, equivocate, partition, dos, delay-votes, churn, \
                flood or corrupt.")
  in
  let wire =
    Arg.(
      value
      & opt (enum [ ("typed", `Typed); ("bytes", `Bytes) ]) `Typed
      & info [ "wire" ]
          ~doc:"Transport: typed OCaml values, or bytes (every message runs \
                through the codec at each hop).")
  in
  let flood_rate =
    Arg.(value & opt float 200.0
         & info [ "flood-rate" ] ~doc:"Garbage frames/s per flooder (for flood).")
  in
  let flood_fraction =
    Arg.(value & opt float 0.1
         & info [ "flood-fraction" ] ~doc:"Fraction of users that turn flooder.")
  in
  let corrupt_p =
    Arg.(value & opt float 0.05
         & info [ "corrupt-p" ] ~doc:"Per-frame corruption probability (for corrupt).")
  in
  let loss =
    Arg.(value & opt float 0.0 & info [ "loss" ] ~doc:"Uniform message-loss probability.")
  in
  let churn_fraction =
    Arg.(value & opt float 0.3
         & info [ "churn-fraction" ] ~doc:"Fraction of nodes crashed per churn tick.")
  in
  let churn_period =
    Arg.(value & opt float 12.0 & info [ "churn-period" ] ~doc:"Seconds between churn ticks.")
  in
  let churn_down =
    Arg.(value & opt float 8.0 & info [ "churn-down" ] ~doc:"Seconds a crashed node stays down.")
  in
  let churn_until =
    Arg.(value & opt float 80.0 & info [ "churn-until" ] ~doc:"Sim-time when churn stops.")
  in
  let malicious =
    Arg.(value & opt float 0.2 & info [ "malicious" ] ~doc:"Malicious stake fraction (for equivocate).")
  in
  let bandwidth =
    Arg.(value & opt float 20e6 & info [ "bandwidth" ] ~doc:"Per-process uplink, bits/s.")
  in
  let fanout = Arg.(value & opt int 4 & info [ "fanout" ] ~doc:"Gossip connections initiated per user.") in
  let tx_rate = Arg.(value & opt float 2.0 & info [ "tx-rate" ] ~doc:"Transactions/s workload.") in
  let tx_skew =
    Arg.(value & opt float 0.0
         & info [ "tx-skew" ] ~doc:"Zipf hot-key skew exponent for the workload (0 = uniform).")
  in
  let tx_invalid =
    Arg.(value & opt float 0.0
         & info [ "tx-invalid" ] ~doc:"Fraction of workload transactions that are invalid (bad nonce / overdraft).")
  in
  let tx_dup =
    Arg.(value & opt float 0.0
         & info [ "tx-dup" ] ~doc:"Fraction of workload transactions that are byte-identical duplicates.")
  in
  let tx_selfpay =
    Arg.(value & opt float 0.0
         & info [ "tx-selfpay" ] ~doc:"Fraction of workload transactions that are self-payments.")
  in
  let tx_burst_period =
    Arg.(value & opt float 0.0
         & info [ "tx-burst-period" ] ~doc:"Square-wave burst period in seconds (0 = no bursts).")
  in
  let tx_burst_mult =
    Arg.(value & opt float 5.0
         & info [ "tx-burst-mult" ] ~doc:"Arrival-rate multiplier inside the burst window.")
  in
  let recovery = Arg.(value & flag & info [ "recovery" ] ~doc:"Enable the section 8.2 recovery protocol.") in
  let real_crypto =
    Arg.(value & flag & info [ "real-crypto" ] ~doc:"Use ed25519 + ECVRF instead of the simulation schemes (slow).")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging.") in
  let save_dir =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"DIR"
             ~doc:"After the run, save the certified block history to DIR.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write the structured event trace to FILE as JSONL (one event per line).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"After the run, write the metrics-registry snapshot to FILE as JSON.")
  in
  let run users rounds block_bytes seed attack malicious bandwidth fanout tx_rate
      recovery real_crypto verbose save_dir loss churn_fraction churn_period churn_down
      churn_until trace_out metrics_out wire flood_rate flood_fraction corrupt_p tx_skew
      tx_invalid tx_dup tx_selfpay tx_burst_period tx_burst_mult =
    setup_logs verbose;
    let tx_profile =
      if
        tx_skew > 0.0 || tx_invalid > 0.0 || tx_dup > 0.0 || tx_selfpay > 0.0
        || tx_burst_period > 0.0
      then
        Some
          {
            Harness.tx_zipf_s = tx_skew;
            tx_mix =
              {
                Algorand_ledger.Workload.invalid = tx_invalid;
                duplicate = tx_dup;
                self_pay = tx_selfpay;
              };
            tx_burst =
              (if tx_burst_period > 0.0 then
                 Some
                   {
                     Algorand_ledger.Workload.period_s = tx_burst_period;
                     duty = 0.25;
                     mult = tx_burst_mult;
                   }
               else None);
          }
      else None
    in
    let trace, trace_oc =
      match trace_out with
      | None -> (None, None)
      | Some path ->
        let tr = Trace.create () in
        Trace.enable tr;
        let oc = open_out path in
        Trace.add_jsonl tr oc;
        (Some tr, Some oc)
    in
    let params =
      if recovery || attack = `Churn || attack = `Flood || attack = `Corrupt then
        { Params.paper with
          lambda_priority = 1.0; lambda_stepvar = 1.0; lambda_block = 10.0;
          lambda_step = 5.0; max_steps = 6; recovery_interval = 150.0 }
      else Params.paper
    in
    let attack, malicious_fraction =
      match attack with
      | `None -> (Harness.No_attack, 0.0)
      | `Equivocate -> (Harness.Equivocate, malicious)
      | `Partition -> (Harness.Partition { from_ = 4.0; until = 100.0 }, 0.0)
      | `Dos -> (Harness.Targeted_dos { fraction = 0.1; from_ = 5.0; until = 60.0 }, 0.0)
      | `Delay_votes ->
        ( Harness.Delay_votes
            { delay = params.lambda_step *. 1.1; from_ = 0.0; until = 60.0 },
          0.0 )
      | `Churn ->
        ( Harness.Crash_churn
            (Harness.Periodic
               {
                 start = 5.0;
                 period = churn_period;
                 fraction = churn_fraction;
                 down_for = churn_down;
                 until = churn_until;
               }),
          0.0 )
      | `Flood ->
        ( Harness.Flood
            {
              flooders = flood_fraction;
              rate_per_s = flood_rate;
              frame_bytes = 512;
              from_ = 2.0;
              until = 1_000.0;
            },
          0.0 )
      | `Corrupt -> (Harness.Corrupt { p = corrupt_p; from_ = 0.0; until = 60.0 }, 0.0)
    in
    let config =
      {
        Harness.default with
        users;
        rounds;
        block_bytes;
        rng_seed = seed;
        attack;
        malicious_fraction;
        bandwidth_bps = bandwidth;
        fanout;
        tx_rate_per_s = tx_rate;
        tx_profile;
        recovery_enabled = recovery;
        params;
        crypto = (if real_crypto then Harness.Real_crypto else Harness.Sim_crypto);
        max_sim_time = 3_600.0;
        loss;
        trace;
        wire;
      }
    in
    let r = Harness.run config in
    (match trace_oc with
    | Some oc ->
      (match trace with Some tr -> Trace.flush tr | None -> ());
      close_out oc;
      Printf.printf "trace: wrote %s\n" (Option.get trace_out)
    | None -> ());
    (match metrics_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Registry.to_json (Metrics.registry r.harness.metrics));
      output_char oc '\n';
      close_out oc;
      Printf.printf "metrics: wrote %s\n" path);
    Printf.printf "simulated %.1fs of network time, %d events\n" r.sim_time r.events;
    Printf.printf "round completion: %s\n"
      (Format.asprintf "%a" Algorand_sim.Stats.pp_summary r.completion);
    Printf.printf "finality: %d final rounds, %d tentative\n" r.final_rounds
      r.tentative_rounds;
    if r.txs.submitted > 0 || r.txs.committed > 0 then
      Printf.printf
        "txs: %d submitted (%d invalid, %d dup, %d self-pay), %d committed (%d \
         self-pay), conservation %s\n"
        r.txs.submitted r.txs.submitted_invalid r.txs.submitted_duplicate
        r.txs.submitted_self_pay r.txs.committed r.txs.committed_self_pay
        (if r.txs.conservation_ok then "ok" else "VIOLATED");
    Printf.printf "safety: %d agreed rounds, forked=%s, double-final=%s\n"
      r.safety.agreement_rounds
      (String.concat "," (List.map string_of_int r.safety.forked_rounds))
      (String.concat "," (List.map string_of_int r.safety.double_final));
    if
      wire = `Bytes || r.wire.decode_failures > 0 || r.wire.quota_drops > 0
      || r.wire.banned_links > 0
    then
      Printf.printf "wire: %d decode failures, %d quota drops, %d banned links (nodes %s)\n"
        r.wire.decode_failures r.wire.quota_drops r.wire.banned_links
        (String.concat "," (List.map string_of_int r.wire.banned_nodes));
    let recoveries =
      Array.fold_left (fun a n -> a + Node.recoveries_completed n) 0 r.harness.nodes
    in
    if recoveries > 0 then Printf.printf "recoveries completed: %d\n" recoveries;
    let churn_failed =
      if r.churn.crashes > 0 then begin
        Printf.printf
          "churn: %d crashes, %d restarts, %d rejoins (mean %.1fs, max %.1fs), %d \
           retries\n"
          r.churn.crashes r.churn.restarts r.churn.rejoins r.churn.mean_rejoin_s
          r.churn.max_rejoin_s r.churn.retries;
        Array.iteri
          (fun i n ->
            if Node.is_down n || Node.is_resyncing n || Node.is_hung n || not (Node.is_stopped n)
            then
              Printf.printf
                "churn: node %d unfinished: down=%b resync=%b hung=%b round=%d tip=%d \
                 crashes=%d\n"
                i (Node.is_down n) (Node.is_resyncing n) (Node.is_hung n) (Node.round n)
                (Chain.tip (Node.chain n)).height (Node.crash_count n))
          r.harness.nodes;
        if r.churn.divergent_restarted <> [] then
          Printf.printf "churn: DIVERGENT restarted nodes: %s\n"
            (String.concat "," (List.map string_of_int r.churn.divergent_restarted));
        r.churn.divergent_restarted <> [] || r.churn.unfinished <> []
      end
      else false
    in
    Harness.cleanup_stores r.harness;
    let tip = Chain.tip (Node.chain r.harness.nodes.(0)) in
    Printf.printf "node 0 tip: height %d%s\n" tip.height (if tip.final then " [final]" else "");
    (match save_dir with
    | None -> ()
    | Some dir -> (
      match
        Array.to_list r.harness.nodes
        |> List.find_opt (fun n ->
               List.for_all
                 (fun round -> Algorand_core.Node.certificate n ~round <> None)
                 (List.init rounds (fun i -> i + 1)))
      with
      | None -> Printf.printf "no node holds certificates for every round; nothing saved\n"
      | Some node ->
        let items = Algorand_core.Catchup.collect node ~up_to_round:rounds in
        Algorand_core.Disk_store.save dir items;
        Printf.printf "saved %d certified blocks to %s (%d KB)\n" (List.length items)
          dir
          (Algorand_core.Disk_store.size_bytes dir / 1024)));
    if r.safety.double_final <> [] || churn_failed || not r.txs.conservation_ok then begin
      Printf.printf "SAFETY VIOLATION at seed %d\n" seed;
      let attack_name =
        match attack with
        | Harness.No_attack -> "none"
        | Harness.Equivocate -> "equivocate"
        | Harness.Partition _ -> "partition"
        | Harness.Targeted_dos _ -> "dos"
        | Harness.Delay_votes _ -> "delay-votes"
        | Harness.Crash_churn _ -> "churn"
        | Harness.Flood _ -> "flood"
        | Harness.Corrupt _ -> "corrupt"
        | Harness.Undecidable _ -> "undecidable"
        | Harness.Adaptive_corrupt _ -> "adaptive"
      in
      Printf.printf
        "REPRODUCE: algorand-sim run --users %d --rounds %d --seed %d --attack %s \
         --malicious %g --loss %g --churn-fraction %g --churn-period %g --churn-down \
         %g --churn-until %g --tx-rate %g --wire %s --flood-rate %g --flood-fraction \
         %g --corrupt-p %g%s\n"
        users rounds seed attack_name malicious loss churn_fraction churn_period
        churn_down churn_until tx_rate
        (match wire with `Typed -> "typed" | `Bytes -> "bytes")
        flood_rate flood_fraction corrupt_p
        (if recovery then " --recovery" else "");
      exit 1
    end
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a simulated Algorand deployment.")
    Term.(
      const run $ users $ rounds $ block_bytes $ seed $ attack $ malicious $ bandwidth
      $ fanout $ tx_rate $ recovery $ real_crypto $ verbose $ save_dir $ loss
      $ churn_fraction $ churn_period $ churn_down $ churn_until $ trace_out
      $ metrics_out $ wire $ flood_rate $ flood_fraction $ corrupt_p $ tx_skew
      $ tx_invalid $ tx_dup $ tx_selfpay $ tx_burst_period $ tx_burst_mult)

(* ------------------------------------------------------------------ *)
(* committee                                                           *)
(* ------------------------------------------------------------------ *)

let committee_cmd =
  let honest =
    Arg.(value & opt float 0.8 & info [ "honest" ] ~docv:"H" ~doc:"Honest stake fraction (> 2/3).")
  in
  let target =
    Arg.(value & opt float 5e-9 & info [ "target" ] ~doc:"Violation probability target.")
  in
  let go honest target =
    let tau, t = Committee.required_committee_size ~target ~h:honest () in
    Printf.printf "h=%.2f target=%.1e -> tau_step=%d T=%.3f (violation %.2e)\n" honest
      target tau t
      (Committee.violation_probability ~h:honest ~tau:(float_of_int tau) ~t)
  in
  Cmd.v
    (Cmd.info "committee" ~doc:"Committee size required for a safety target (Figure 3).")
    Term.(const go $ honest $ target)

(* ------------------------------------------------------------------ *)
(* bitcoin                                                             *)
(* ------------------------------------------------------------------ *)

let bitcoin_cmd =
  let days = Arg.(value & opt float 30.0 & info [ "days" ] ~doc:"Simulated days.") in
  let interval =
    Arg.(value & opt float 600.0 & info [ "interval" ] ~doc:"Mean block interval (s).")
  in
  let go days interval =
    let r =
      Nakamoto.run
        { Nakamoto.bitcoin_default with duration_s = days *. 86_400.0; mean_block_interval_s = interval }
    in
    Printf.printf "blocks found: %d  main chain: %d  orphan rate: %.2f%%\n" r.blocks_found
      r.main_chain_length (100.0 *. r.orphan_rate);
    Printf.printf "throughput: %.1f MB/hour  confirmation (6 deep): %.0f s\n"
      (r.throughput_bytes_per_hour /. 1e6)
      r.mean_confirmation_latency_s
  in
  Cmd.v (Cmd.info "bitcoin" ~doc:"Run the Nakamoto-consensus baseline.")
    Term.(const go $ days $ interval)

(* ------------------------------------------------------------------ *)
(* --figure: regenerate a section 10 figure artifact                   *)
(* ------------------------------------------------------------------ *)

(* Default command, so `algorand-sim --figure 7` works without a
   subcommand. Writes the Figure 7 latency breakdown regenerated from
   the metrics registry; deterministic per seed, NaN-free. *)
let figure_term =
  let figure =
    Arg.(value & opt (some int) None
         & info [ "figure" ] ~docv:"N"
             ~doc:"Regenerate the paper's figure N from a fresh deterministic run \
                   (currently only 7: the round-latency breakdown).")
  in
  let users = Arg.(value & opt int 50 & info [ "users" ] ~doc:"Simulated users.") in
  let rounds = Arg.(value & opt int 5 & info [ "rounds" ] ~doc:"Rounds to run.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic RNG seed.") in
  let block_bytes =
    Arg.(value & opt int 1_000_000 & info [ "block-bytes" ] ~doc:"Target block size.")
  in
  let out =
    Arg.(value & opt string "results/FIG7.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Output path for the figure artifact.")
  in
  let go figure users rounds seed block_bytes out =
    match figure with
    | None -> `Help (`Pager, None)
    | Some 7 ->
      let json = Figures.fig7_run ~users ~rounds ~seed ~block_bytes () in
      Figures.write ~path:out json;
      Printf.printf "figure 7: wrote %s\n" out;
      `Ok ()
    | Some n ->
      `Error (false, Printf.sprintf "figure %d not supported (only --figure 7)" n)
  in
  Term.(ret (const go $ figure $ users $ rounds $ seed $ block_bytes $ out))

let () =
  let doc = "Simulated Algorand (SOSP 2017) deployments and baselines" in
  exit
    (Cmd.eval
       (Cmd.group ~default:figure_term
          (Cmd.info "algorand-sim" ~doc)
          [ run_cmd; committee_cmd; bitcoin_cmd ]))
