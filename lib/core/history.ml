(* Certified chain histories (section 8.3): the (block, certificate)
   pairs a bootstrapping or restarting user downloads and re-validates
   in round order - validating in order is what lets it know the
   correct weights for checking sortition proofs at every round.

   This is the node-independent core shared by Catchup (which harvests
   histories from running nodes), Disk_store (which persists them), and
   Node.restart (which replays its own checkpoint and then validates
   live Round_reply items incrementally). *)

module Block = Algorand_ledger.Block
module Chain = Algorand_ledger.Chain
module Genesis = Algorand_ledger.Genesis
module Balances = Algorand_ledger.Balances
module Vote = Algorand_ba.Vote
module Params = Algorand_ba.Params

type item = { block : Block.t; certificate : Certificate.t }

type error =
  [ `Round of int * Certificate.error
  | `Chain of int * Chain.add_error
  | `Hash_mismatch of int
  | `Final_certificate of Certificate.error ]

let pp_error fmt = function
  | `Round (r, e) -> Format.fprintf fmt "round %d: %a" r Certificate.pp_error e
  | `Chain (r, e) -> Format.fprintf fmt "round %d: %a" r Chain.pp_add_error e
  | `Hash_mismatch r -> Format.fprintf fmt "round %d: certificate is for another block" r
  | `Final_certificate e ->
    Format.fprintf fmt "final certificate: %a" Certificate.pp_error e

(* The validation context a new user derives for [round] from the chain
   prefix it has verified so far. Mirrors Node.make_round_state. *)
let validation_ctx ~(params : Params.t) ~(sig_scheme : Algorand_crypto.Signature_scheme.scheme)
    ~(vrf_scheme : Algorand_crypto.Vrf.scheme) ~(chain : Chain.t) ~(round : int) :
    Vote.validation_ctx =
  let tip = Chain.tip chain in
  let seed_height = max 0 (round - 1 - (round mod params.seed_refresh_interval)) in
  let seed_entry =
    match Chain.ancestor_at chain ~hash:tip.hash ~height:seed_height with
    | Some e -> e
    | None -> Chain.genesis_entry chain
  in
  let cutoff = seed_entry.block.header.timestamp -. params.lookback_b in
  let rec back (e : Chain.entry) =
    if e.height = 0 || e.block.header.timestamp <= cutoff then e
    else match Chain.find chain e.parent with None -> e | Some p -> back p
  in
  let weights = (back seed_entry).balances_after in
  {
    sig_scheme;
    vrf_scheme;
    sig_pk_of = Identity.sig_pk;
    vrf_pk_of = Identity.vrf_pk;
    seed = seed_entry.seed;
    total_weight = Balances.total weights;
    weight_of = Balances.balance weights;
    last_block_hash = tip.hash;
    tau_of_step = (function Vote.Final -> params.tau_final | _ -> params.tau_step);
  }

(* Replay a downloaded history. Returns the reconstructed chain, with
   every certified block applied and the tip advanced. *)
let replay ~(params : Params.t) ~(sig_scheme : Algorand_crypto.Signature_scheme.scheme)
    ~(vrf_scheme : Algorand_crypto.Vrf.scheme) ~(genesis : Genesis.t)
    ?(final_certificate : Certificate.t option) (items : item list) :
    (Chain.t, error) result =
  let chain = Chain.create genesis in
  let rec go = function
    | [] -> Ok ()
    | { block; certificate } :: rest ->
      let round = Block.round block in
      if not (String.equal certificate.block_hash (Block.hash block)) then
        Error (`Hash_mismatch round)
      else begin
        let ctx = validation_ctx ~params ~sig_scheme ~vrf_scheme ~chain ~round in
        match Certificate.validate ~params ~ctx certificate with
        | Error e -> Error (`Round (round, e))
        | Ok () -> (
          match Chain.add chain block with
          | Error e -> Error (`Chain (round, e))
          | Ok entry ->
            Chain.set_tip chain entry.hash;
            go rest)
      end
  in
  match go items with
  | Error e -> Error e
  | Ok () -> (
    (* Optionally prove safety of the newest block: a valid final
       certificate makes it (and transitively its prefix) final. *)
    match final_certificate with
    | None -> Ok chain
    | Some fc -> (
      let tip = Chain.tip chain in
      if not (String.equal fc.block_hash tip.hash) then
        Error (`Final_certificate `Wrong_value)
      else begin
        let ctx =
          validation_ctx ~params ~sig_scheme ~vrf_scheme ~chain ~round:tip.height
        in
        (* Final votes bind to the previous block, i.e. the tip's
           parent, so validate against that context. *)
        let ctx = { ctx with last_block_hash = tip.parent } in
        match Certificate.validate ~params ~ctx fc with
        | Ok () ->
          Chain.mark_final chain tip.hash;
          Ok chain
        | Error e -> Error (`Final_certificate e)
      end))
