(** Certified chain histories (section 8.3): replay downloaded blocks
    and certificates from genesis, learning weights round by round so
    every sortition proof can be checked. Node-independent core shared
    by {!Catchup}, {!Disk_store}, and [Node.restart]. *)

module Block = Algorand_ledger.Block
module Chain = Algorand_ledger.Chain
module Genesis = Algorand_ledger.Genesis
module Vote = Algorand_ba.Vote
module Params = Algorand_ba.Params

type item = { block : Block.t; certificate : Certificate.t }

type error =
  [ `Round of int * Certificate.error
  | `Chain of int * Chain.add_error
  | `Hash_mismatch of int
  | `Final_certificate of Certificate.error ]

val pp_error : Format.formatter -> error -> unit

val validation_ctx :
  params:Params.t ->
  sig_scheme:Algorand_crypto.Signature_scheme.scheme ->
  vrf_scheme:Algorand_crypto.Vrf.scheme ->
  chain:Chain.t ->
  round:int ->
  Vote.validation_ctx
(** The context a verifier derives for [round] from a chain prefix
    (seed refresh and weight look-back included). *)

val replay :
  params:Params.t ->
  sig_scheme:Algorand_crypto.Signature_scheme.scheme ->
  vrf_scheme:Algorand_crypto.Vrf.scheme ->
  genesis:Genesis.t ->
  ?final_certificate:Certificate.t ->
  item list ->
  (Chain.t, error) result
(** Verify a downloaded history in round order. A valid
    [final_certificate] for the last block additionally marks it final
    (proving safety of the whole prefix, since final blocks are totally
    ordered). *)
