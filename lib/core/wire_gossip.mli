(** Gossip overlay over a real transport: the wire counterpart of
    [lib/netsim]'s simulated {!Gossip}. Functorized over
    {!Algorand_transport.Transport.S}, so the same relay logic runs
    over the in-memory {!Algorand_transport.Loopback} (deterministic,
    testable) and over {!Algorand_transport.Tcp_transport} (the
    multi-process deployment).

    The untrusted-ingress pipeline mirrors the simulated overlay frame
    for frame: ban check, flood admission (per-peer message quotas and
    ban scores from a {!Gossip.limits}; the leaky ingress queue is the
    socket's own buffer here), bounded {!Codec.decode}, dedup by
    message id, validate-before-relay, then deliver and relay the raw
    bytes onward - a hop never re-encodes. Peers are identified by the
    handshake public key, which must appear in the roster.

    Connection management: {!dial} makes this endpoint responsible for
    a peer link; if the dial fails or an established link drops, it is
    redialed on a {!Retry} backoff schedule (counted in
    [transport.reconnects]) until the peer is banned or {!stop}.
    Accepted links are the dialer's responsibility.

    Relay topology: broadcasts and relays go to the [fanout] ring
    successors (indices self+1..self+fanout mod n) that are currently
    connected - a deterministic connected overlay - while point-to-point
    sends use any direct connection, so a full-mesh deployment still
    exercises multi-hop gossip dissemination. *)

module Engine = Algorand_sim.Engine
module Retry = Algorand_sim.Retry
module Rng = Algorand_sim.Rng
module Gossip = Algorand_netsim.Gossip
module Registry = Algorand_obs.Registry

(** Plain-int mirror of the [gossip.*] registry counters, for tests
    and reports. *)
type stats = {
  originated : int;
  delivered : int;
  relayed : int;
  duplicates : int;
  invalid : int;
  decode_failures : int;
  quota_drops : int;
  bans : int;
}

module Make (T : Algorand_transport.Transport.S) : sig
  type t

  val create :
    engine:Engine.t ->
    transport:T.t ->
    handlers:Algorand_transport.Transport.handlers ->
    self:int ->
    roster:string array ->
    limits:Codec.limits ->
    ?flood:Gossip.limits ->
    ?fanout:int ->
    ?retry:Retry.policy ->
    rng:Rng.t ->
    ?registry:Registry.t ->
    unit ->
    t
  (** Install this overlay into [handlers] (the record the transport
      endpoint was created with). [roster.(i)] is the public key of
      global index [i]; [self] is our index. Defaults: [fanout = 4],
      [retry = Retry.default_policy], no flood limits. *)

  val install :
    t -> validate:(Message.t -> bool) -> deliver:(src:int -> Message.t -> unit) -> unit
  (** Wire the node in: relay gating and the delivery callback
      (typically [Node.gossip_validate] and [Node.deliver]). *)

  val as_net : t -> Node.net
  (** The overlay as a node's network seam. *)

  val dial : t -> index:int -> addr:string -> unit
  (** Take responsibility for the link to [index] at [addr]: dial now
      and redial with backoff whenever it is down. *)

  val connected : t -> int list
  (** Roster indices with an established connection, ascending. *)

  val banned : t -> int list

  val stats : t -> stats

  val stop : t -> unit
  (** Cancel all redial schedules; existing connections stay up. *)
end
