(* Bootstrapping new users (section 8.3): a joining user downloads the
   chain of blocks with their certificates and validates them in order
   starting from the genesis block. The validation core (re-deriving
   seeds and look-back weights per round, replaying with certificate
   checks) lives in History, shared with Disk_store and Node.restart;
   this module keeps the node-facing side: harvesting histories from
   running (possibly sharded) nodes. *)

module Block = Algorand_ledger.Block
module Chain = Algorand_ledger.Chain
module Genesis = Algorand_ledger.Genesis
module Vote = Algorand_ba.Vote
module Params = Algorand_ba.Params

type item = History.item = { block : Block.t; certificate : Certificate.t }

type error = History.error

let pp_error = History.pp_error
let validation_ctx = History.validation_ctx
let replay = History.replay

(* Harvest a catch-up history from a running node (what a bootstrap
   server would hand out). With sharded storage the node only serves
   its own rounds; use [collect_from] to assemble a full history from
   several servers. *)
let collect ?(respect_shards = false) (node : Node.t) ~(up_to_round : int) : item list =
  let chain = Node.chain node in
  let tip = Chain.tip chain in
  List.filter_map
    (fun (e : Chain.entry) ->
      if e.height = 0 || e.height > up_to_round then None
      else if respect_shards && not (Node.serves_round node ~round:e.height) then None
      else
        match Node.certificate node ~round:e.height with
        | Some certificate when String.equal certificate.block_hash e.hash ->
          Some { block = e.block; certificate }
        | _ -> None)
    (List.rev (Chain.ancestry chain tip.hash))

(* Assemble a full history from sharded servers: for every round, ask
   any node whose shard covers it (section 8.3: "for N shards, users
   store blocks/certificates whose round number equals their public key
   modulo N"). Returns None if some round is not served by anyone. *)
let collect_from (nodes : Node.t list) ~(up_to_round : int) : item list option =
  let rec per_round r acc =
    if r > up_to_round then Some (List.rev acc)
    else begin
      let served =
        List.find_map
          (fun node ->
            if Node.serves_round node ~round:r then
              match
                List.find_opt
                  (fun (i : item) -> Block.round i.block = r)
                  (collect ~respect_shards:true node ~up_to_round:r)
              with
              | Some item -> Some item
              | None -> None
            else None)
          nodes
      in
      match served with None -> None | Some item -> per_round (r + 1) (item :: acc)
    end
  in
  per_round 1 []
