(** Light-client payment verification (section 11's "cost of joining"):
    certified block summaries plus Merkle inclusion proofs, no block
    bodies. *)

module Block = Algorand_ledger.Block
module Merkle = Algorand_crypto.Merkle
module Vote = Algorand_ba.Vote
module Params = Algorand_ba.Params

type verified_payment = { round : int; block_hash : string; tx_id : string }

type error =
  [ `Summary_hash_mismatch | `Certificate of Certificate.error | `Not_included ]

val pp_error : Format.formatter -> error -> unit

val verify_payment :
  params:Params.t ->
  ctx:Vote.validation_ctx ->
  summary:Block.summary ->
  certificate:Certificate.t ->
  tx_id:string ->
  proof:Merkle.proof ->
  (verified_payment, error) result
(** Check the certificate quorum against H(summary), then the Merkle
    proof against the summary's transaction root. The certificate's
    vote signatures are checked with one batched equation. *)

val verify_payments :
  params:Params.t ->
  ctx:Vote.validation_ctx ->
  summary:Block.summary ->
  certificate:Certificate.t ->
  (string * Merkle.proof) list ->
  ((verified_payment, error) result list, error) result
(** Many payments against one block: the certificate (the expensive
    part) is validated once, then each [(tx_id, proof)] pair gets its
    own inclusion verdict. The outer [Error] is a summary/certificate
    failure. *)

val summary_size_bytes : int
(** Per-block storage for a light client. *)

type server
(** The full-node side: answers "prove tx T is in block B" queries.
    Per block it lazily builds and caches the Merkle tree over
    transaction ids plus an id->index table, so a hot block costs one
    O(n) build and O(log n) per proof instead of O(n) per proof. The
    cache is FIFO-bounded at [max_blocks]. *)

val create_server : ?max_blocks:int -> unit -> server

val serve_proof :
  server -> block:Block.t -> tx_id:string -> (Block.summary * Merkle.proof) option
(** The summary and inclusion proof a light client needs, or [None]
    when the transaction is not in the block. *)

val server_cached_blocks : server -> int
val server_hits : server -> int
val server_misses : server -> int
