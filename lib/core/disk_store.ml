(* File-backed block and certificate storage: the persistence a real
   deployment needs to survive restarts, and the concrete form of the
   sharded storage of section 8.3 (a user on shard k keeps exactly
   these files for its rounds).

   Layout: one directory, two files per round -
     <round>.block  : Codec-encoded block
     <round>.cert   : Codec-encoded certificate
   Every file is written crash-atomically (temp file + rename), so a
   process killed mid-checkpoint leaves either the old round files, the
   new ones, or a clean absence - never a half-written file that poisons
   the whole history. Loading re-validates everything through
   History.replay, so a corrupted or tampered store is rejected, not
   trusted. *)

module Block = Algorand_ledger.Block

let block_file dir round = Filename.concat dir (Printf.sprintf "%06d.block" round)
let cert_file dir round = Filename.concat dir (Printf.sprintf "%06d.cert" round)

(* Crash-atomic write: the data lands under a temp name and is renamed
   into place, so readers only ever see complete files. *)
let write_file (path : string) (data : string) : unit =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc data;
  close_out oc;
  Sys.rename tmp path

let read_file (path : string) : string option =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let data = really_input_string ic n in
    close_in ic;
    Some data
  end

(* Persist a catch-up history (from Catchup.collect / collect_from, or
   a node's periodic checkpoint). The certificate is written before the
   block, so a round whose block file exists is complete. *)
let save (dir : string) (items : History.item list) : unit =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun ({ block; certificate } : History.item) ->
      let round = Block.round block in
      write_file (cert_file dir round) (Codec.encode_certificate certificate);
      write_file (block_file dir round) (Codec.encode_block block))
    items

(* Rounds present on disk, ascending. *)
let stored_rounds (dir : string) : int list =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f ->
           match Filename.chop_suffix_opt ~suffix:".block" f with
           | Some stem -> int_of_string_opt stem
           | None -> None)
    |> List.sort compare

type load_error = [ `Missing of int | `Corrupt of int ]

let pp_load_error fmt = function
  | `Missing r -> Format.fprintf fmt "round %d missing from store" r
  | `Corrupt r -> Format.fprintf fmt "round %d does not decode" r

(* Read rounds 1..up_to back as a catch-up history (unvalidated: feed
   to History.replay, which re-checks every certificate). A truncated
   or corrupted tail - what a crash mid-checkpoint leaves - costs only
   the tail: the valid prefix is returned along with the reason the
   scan stopped ([None] when every requested round was read). *)
let load ?(up_to_round = max_int) (dir : string) :
    History.item list * load_error option =
  let rec go r acc =
    if r > up_to_round then (List.rev acc, None)
    else begin
      match (read_file (block_file dir r), read_file (cert_file dir r)) with
      | None, _ | _, None -> (List.rev acc, Some (`Missing r))
      | Some braw, Some craw -> (
        match (Codec.decode_block braw, Codec.decode_certificate craw) with
        | Some block, Some certificate ->
          go (r + 1) ({ History.block; certificate } :: acc)
        | _ -> (List.rev acc, Some (`Corrupt r)))
    end
  in
  go 1 []

(* Bytes on disk (the section 10.3 storage-cost accounting, measured
   rather than estimated). *)
let size_bytes (dir : string) : int =
  if not (Sys.file_exists dir) then 0
  else
    Sys.readdir dir |> Array.to_list
    |> List.fold_left
         (fun acc f ->
           let st = Unix.stat (Filename.concat dir f) in
           acc + st.Unix.st_size)
         0

(* Per-identity state directory: N daemons sharing one --store root
   must never collide, and a pk can contain bytes unfit for a path, so
   the directory name is a hash of the identity. *)
let node_dir ~(root : string) ~(pk : string) : string =
  let tag = String.sub (Algorand_crypto.Sha256.digest_hex pk) 0 16 in
  Filename.concat root ("node-" ^ tag)
