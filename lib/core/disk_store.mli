(** File-backed block/certificate storage (two Codec-encoded files per
    round, each written crash-atomically via temp file + rename).
    Loading returns an *unvalidated* history; feed it to
    {!History.replay}, which re-checks every certificate, so a tampered
    store is rejected rather than trusted. *)

val save : string -> History.item list -> unit
(** [save dir items] writes each round's block and certificate under
    [dir] (created if needed). Each file lands atomically; the
    certificate is written before the block, so a round whose block
    file exists is complete. *)

val stored_rounds : string -> int list

type load_error = [ `Missing of int | `Corrupt of int ]

val pp_load_error : Format.formatter -> load_error -> unit

val load : ?up_to_round:int -> string -> History.item list * load_error option
(** Read rounds 1.. (up to [up_to_round], default unlimited) back as a
    catch-up history. Tolerates a truncated or corrupted tail - the
    debris of a crash mid-checkpoint - by returning the longest valid
    prefix plus the reason the scan stopped ([None] when every
    requested round was read). *)

val size_bytes : string -> int
(** Total bytes on disk - the measured form of the section 10.3
    storage-cost accounting. *)

val node_dir : root:string -> pk:string -> string
(** The state directory for one identity under a shared root:
    [root/node-<hex16 of sha256(pk)>]. Daemons derive their directory
    from their own public key, so any number of processes can share
    one [--store] root without colliding. *)
