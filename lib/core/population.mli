(** Million-user population engine (section 10.1 at paper scale).

    Runs BA* rounds over populations of 500k-1M users by materializing
    full {!Node.t} state machines only for the users sortition selects
    into the round's role window; the passive population exists as flat
    per-user arrays (VRF public key, stake) swept once per role with the
    sim VRF's public evaluation path. Identities, genesis, seeds and
    sortition match {!Harness} exactly, so at the same seed the
    abstracted run certifies bit-identical blocks to a fully
    materialized run (the per-seed equivalence audit in the test
    suite). Requires sim crypto, zero transaction workload and no
    adversary - the regime of Figures 5 and 6. *)

module Params = Algorand_ba.Params
module Registry = Algorand_obs.Registry

type config = {
  users : int;
  stake_per_user : int;
  stake_distribution : [ `Equal | `Linear ];
  params : Params.t;
  block_bytes : int;
  rounds : int;
  rng_seed : int;
  fanout : int;  (** modeled uplink copies per originated message *)
  bandwidth_bps : float;
  bin_window : int;
      (** BinaryBA* steps materialized per round; must be >= 4 (a bin-1
          decider still votes in bins 2-4), and wide enough to ride out
          committees that miss their vote threshold - a few percent per
          step at sweep-sized taus. Rounds needing more are counted,
          not silently truncated. *)
  registry : Registry.t option;
      (** metrics registry to export the [sim.population],
          [sim.events_live] and [sim.heap_peak] gauges into *)
}

val default : config

type round_stat = {
  round : int;
  block_hash : string;
  final : bool;
  eligible : int;  (** users selected for any window role - the materialized set *)
  proposers : int;
  latency_s : float;  (** round start to the last materialized node's completion *)
  events : int;
  modeled_bytes_per_user : float;
  max_bin_steps : int;
}

type result = {
  config : config;
  round_stats : round_stat list;  (** oldest first *)
  block_hashes : string list;  (** certified block hash per round, oldest first *)
  sim_time : float;
  total_events : int;
  peak_pending : int;  (** event-queue live-heap high-water mark *)
  max_materialized : int;
  window_exceeded_rounds : int;
  agreement : bool;  (** every materialized node certified the same block each round *)
}

val run : config -> result
(** Drive [config.rounds] rounds; stops early (with [agreement = false])
    if any round fails its cross-node certification audit.
    @raise Invalid_argument on degenerate configs (fewer than 4 users,
    no rounds, [bin_window < 4]). *)
