(** Experiment harness: builds a simulated deployment (users, genesis,
    WAN, gossip, workload, adversary), runs it, and audits safety. All
    section 10 experiments run through this module. *)

module Params = Algorand_ba.Params
module Engine = Algorand_sim.Engine
module Metrics = Algorand_sim.Metrics
module Genesis = Algorand_ledger.Genesis
module Gossip = Algorand_netsim.Gossip
module Network = Algorand_netsim.Network

type crypto = Real_crypto | Sim_crypto

type crash_plan =
  | One_shot of { at : float; victims : int list; down_for : float }
      (** crash the listed nodes at [at]; each restarts [down_for] later *)
  | Periodic of {
      start : float;
      period : float;
      fraction : float;  (** of users, re-drawn randomly each tick *)
      down_for : float;
      until : float;
    }
  | Correlated of { at : float; fraction : float; down_for : float }
      (** one mass outage: a random fraction crash and restart together *)

type attack =
  | No_attack
  | Equivocate  (** section 10.4: equivocating proposers, double-voting committees *)
  | Partition of { from_ : float; until : float }
  | Targeted_dos of { fraction : float; from_ : float; until : float }
  | Delay_votes of { delay : float; from_ : float; until : float }
  | Crash_churn of crash_plan
      (** crash-restart fault injection: victims lose all in-memory
          state, reload their durable checkpoint, rejoin via live
          catch-up *)
  | Flood of {
      flooders : float;  (** fraction of users that turn flooder *)
      rate_per_s : float;  (** garbage frames per second per flooder *)
      frame_bytes : int;
      from_ : float;
      until : float;
    }
      (** malicious nodes pump garbage frames at their peers; the
          overlay's per-peer flood defense must contain them *)
  | Corrupt of { p : float; from_ : float; until : float }
      (** on-path byte corruption: each frame independently mangled
          with probability [p] during the window *)
  | Undecidable of { fraction : float; from_ : float; until : float }
      (** Conti et al.'s "undecidable messages": a random laggard
          fraction has every vote/block/priority message to it held
          just past the step horizon, so traffic arrives signed and
          sortition-valid - and unserviceable for the step it was for *)
  | Adaptive_corrupt of { fraction : float; from_ : float; until : float }
      (** Wang's adaptive corruption: corrupt a committee member the
          moment its vote (hence VRF proof) crosses the wire; only
          future steps equivocate, because the revealing step's
          ephemeral key is already erased (section 11) *)

type tx_profile = {
  tx_zipf_s : float;  (** Zipf skew exponent; 0.0 = uniform *)
  tx_mix : Algorand_ledger.Workload.mix;
  tx_burst : Algorand_ledger.Workload.burst option;
}
(** Workload shaping for the transaction stream. Accounts are the
    deployment's own users (synthetic extra accounts would dilute
    sortition stake), so the profile only picks skew, mix and bursts. *)

val hostile_profile : tx_profile
(** Zipf 1.1 skew with the {!Algorand_ledger.Workload.hostile} mix. *)

type wire = [ `Typed | `Bytes ]
(** [`Typed] ships OCaml values across the simulated WAN; [`Bytes]
    encodes every message via {!Codec} at the sender and decodes it at
    each receiving hop (hostile-wire mode). *)

type config = {
  users : int;
  stake_per_user : int;
  stake_distribution : [ `Equal | `Linear ];
  params : Params.t;
  block_bytes : int;
  rounds : int;
  rng_seed : int;
  crypto : crypto;
  bandwidth_bps : float;
  fanout : int;
  malicious_fraction : float;
  attack : attack;
  stressors : attack list;
      (** additional attacks composed with [attack] through the unified
          entrypoint ({!attacks_of}): the simulation swarm's way of
          running churn x loss x flood x corrupt x byzantine in one
          deployment *)
  tx_rate_per_s : float;
  tx_profile : tx_profile option;
      (** hostile workload shaping layered on [tx_rate_per_s]; [None]
          keeps the legacy uniform all-valid Poisson stream *)
  verify_tx_sigs : bool;
      (** nodes batch-verify transaction signatures on the block
          assembly and validation paths *)
  txpool_retention_rounds : int;
      (** committed-id retention before pool dedup-table eviction *)
  max_sim_time : float;
  cpu_vote_verify_s : float;
  cpu_block_verify_s : float;
  recovery_enabled : bool;
  storage_shards : int;
  pipeline_final : bool;
  loss : float;  (** uniform message-loss probability, composed with any attack *)
  duplication : float;  (** uniform message-duplication probability *)
  store_root : string option;
      (** root for per-node durable checkpoints; [None] means no
          persistence, except under [Crash_churn], which creates (and
          owns) a temp root - release it with {!cleanup_stores} *)
  checkpoint_every : int;  (** persist every k completed rounds *)
  trace : Algorand_obs.Trace.t option;
      (** structured event trace shared by harness, nodes, gossip and
          retries; [None] builds a disabled trace internally *)
  wire : wire;
  gossip_limits : Gossip.limits option;
      (** per-peer flood defense (ingress queues, quotas, bans);
          [None] disables it. [Flood] runs supply a default. *)
  deterministic_ts : bool;
      (** round-number block timestamps: makes the ledger independent
          of the clock, so a sim run can be compared hash-for-hash with
          a wall-clock wire run of the same seed *)
}

val default : config

val attacks_of : config -> attack list
(** The unified stressor composition: the legacy single [attack] slot
    followed by every [stressors] element, in wiring order. The first
    attack keeps the legacy RNG stream labels, so single-attack runs
    replay bit-identically to configs that predate [stressors]. *)

val schemes :
  crypto -> Algorand_crypto.Signature_scheme.scheme * Algorand_crypto.Vrf.scheme
(** The signature and VRF scheme pair behind a [crypto] choice - what
    any out-of-harness deployment (the wire daemon) must use to derive
    the same identities. *)

type t = {
  config : config;
  engine : Engine.t;
  metrics : Metrics.t;
  identities : Identity.t array;
  nodes : Node.t array;
  gossip : Message.t Gossip.t;
  network : Message.t Gossip.packet Network.t;
  genesis : Genesis.t;
  store_root : string option;  (** resolved checkpoint root, if any *)
  owns_store : bool;  (** the root is a temp dir this harness created *)
  mutable workload : Algorand_ledger.Workload.t option;
      (** the profile-driven generator, when [tx_profile] is set
          (populated by {!install_workload}) *)
  mutable legacy_submitted : int;
      (** transactions injected by the profile-less legacy stream *)
}

type safety_report = {
  agreement_rounds : int;
  forked_rounds : int list;  (** rounds with conflicting blocks across users *)
  double_final : int list;  (** rounds with two different final blocks: must be [] *)
}

type churn_report = {
  crashes : int;
  restarts : int;
  rejoins : int;  (** completed live catch-ups *)
  mean_rejoin_s : float;
  max_rejoin_s : float;
  retries : int;  (** re-issued catch-up / block-fetch requests *)
  divergent_restarted : int list;
      (** restarted nodes whose chain disagrees with the strict-majority
          chain at some height both cover: must be [] *)
  unfinished : int list;
      (** nodes down, resyncing, hung, or short of the last round at
          quiescence: must be [] when every crash gets a restart *)
}

type wire_report = {
  decode_failures : int;
  quota_drops : int;
  banned_links : int;
  banned_nodes : int list;  (** nodes banned by at least one peer *)
  invalid_dropped : int;
  duplicates_dropped : int;
}
(** Post-run accounting of the hostile-wire machinery: what the
    ingress pipeline dropped and who got disconnected for it. All
    zeros on a clean typed run. *)

type tx_report = {
  submitted : int;
  submitted_invalid : int;
  submitted_duplicate : int;
  submitted_self_pay : int;
  committed : int;  (** transactions in node 0's canonical chain *)
  committed_self_pay : int;
  conservation_ok : bool;  (** tip balances sum to the genesis total *)
}
(** Transaction-path accounting (submitted counts are zero without a
    [tx_profile]). [conservation_ok] must hold on every run: it is the
    money-supply audit that catches inflation bugs like crediting a
    self-payment against the stale balance map. *)

type result = {
  harness : t;
  sim_time : float;
  events : int;
  safety : safety_report;
  completion : Algorand_sim.Stats.summary;
  final_rounds : int;
  tentative_rounds : int;
  churn : churn_report;
  wire : wire_report;
  txs : tx_report;
}

val build : config -> t
(** Construct the deployment without starting it (for custom drivers;
    see examples/payments.ml). *)

val install_workload : t -> unit
val audit_safety : t -> safety_report
val audit_churn : t -> churn_report
val audit_wire : t -> wire_report
val audit_txs : t -> tx_report

val cleanup_stores : t -> unit
(** Remove the temp checkpoint root, when this harness created one
    (no-op for an explicit [store_root]). *)

val run : config -> result
(** Build, start every node, run to quiescence, audit. *)
