(** Regeneration of the paper's section 10 figures from the metrics
    registry and round records of a finished run. *)

val fig7_json : Harness.result -> string
(** The Figure 7 latency breakdown - block proposal / BA* without the
    final step / final step, plus the total round time - as a JSON
    document. Each quantity is a min/p25/median/p75/max/mean summary
    across (user, round) records; records completed without the
    intermediate phase timestamps (catch-up grafts) are skipped and
    counted. Deterministic for a given config and seed: fixed float
    formatting, no wall-clock input, and never a NaN token (empty
    summaries serialize as zeros with ["count":0]). *)

val fig7_run : ?users:int -> ?rounds:int -> ?seed:int -> ?block_bytes:int -> unit -> string
(** Run the standard Figure 7 deployment (defaults: 50 users, 5
    rounds, seed 42, 1 MB blocks) and return {!fig7_json} of it. *)

val write : path:string -> string -> unit
(** Write a document to [path], creating parent directories. *)
