(* Block certificates (section 8.3): the aggregate of votes from the
   last BinaryBA* step, sufficient for any user to re-derive the
   consensus conclusion. A *final* certificate additionally collects
   final-step votes and proves safety of the block to late joiners.

   Validation re-runs Algorithm 6 on every vote: same round and step,
   same value, valid signatures and sortition proofs, and strictly more
   than floor(T * tau) weighted votes in total. *)

module Vote = Algorand_ba.Vote
module Params = Algorand_ba.Params

type t = {
  round : int;
  step : Vote.step;  (** the BinaryBA* step (or Final) the votes come from *)
  block_hash : string;
  votes : Vote.t list;
}

let make ~(round : int) ~(step : Vote.step) ~(block_hash : string)
    ~(votes : Vote.t list) : t =
  { round; step; block_hash; votes }

let size_bytes (c : t) : int =
  List.fold_left (fun acc v -> acc + Vote.size_bytes v) 0 c.votes

type error =
  [ `Wrong_round
  | `Mixed_steps
  | `Wrong_value
  | `Invalid_vote
  | `Duplicate_voter
  | `Insufficient_votes of int * float
  | `Too_many_steps ]

let pp_error fmt = function
  | `Wrong_round -> Format.fprintf fmt "vote for a different round"
  | `Mixed_steps -> Format.fprintf fmt "votes from different steps"
  | `Wrong_value -> Format.fprintf fmt "vote for a different value"
  | `Invalid_vote -> Format.fprintf fmt "invalid vote (signature or sortition)"
  | `Duplicate_voter -> Format.fprintf fmt "duplicate voter"
  | `Insufficient_votes (got, need) ->
    Format.fprintf fmt "insufficient votes: %d <= %.1f" got need
  | `Too_many_steps -> Format.fprintf fmt "step number exceeds MaxSteps"

(* [validate] needs the same context votes are checked against during
   the round. The MaxSteps bound guards the attack discussed in
   section 8.3: an adversary searching for a late step number whose
   committee it controls.

   Validation is two-phase: a per-vote pass checks everything cheap or
   vote-specific (round, step, value, duplicates, fork binding, the
   sortition credential) and collects the signature triples; then all
   signatures are checked at once with the scheme's [verify_batch] -
   for ed25519 a single random-linear-combination equation, several
   times cheaper per vote than one-by-one verification. Rejection
   granularity is unchanged (any bad signature fails the certificate,
   which is all a certificate consumer needs). *)
let validate ~(params : Params.t) ~(ctx : Vote.validation_ctx) (c : t) :
    (unit, error) result =
  let threshold =
    match c.step with
    | Vote.Final -> Params.final_threshold params
    | _ -> Params.step_threshold params
  in
  let step_ok =
    match c.step with
    | Vote.Bin s -> s <= params.max_steps
    | Vote.Final -> true
    | Vote.Reduction_one | Vote.Reduction_two -> false
  in
  if not step_ok then Error `Too_many_steps
  else begin
    let seen = Hashtbl.create 32 in
    let rec check total triples = function
      | [] ->
        if float_of_int total <= threshold then
          Error (`Insufficient_votes (total, threshold))
        else if ctx.sig_scheme.verify_batch (List.rev triples) then Ok ()
        else Error `Invalid_vote
      | (v : Vote.t) :: rest ->
        if v.round <> c.round then Error `Wrong_round
        else if not (Vote.equal_step v.step c.step) then Error `Mixed_steps
        else if not (String.equal v.value c.block_hash) then Error `Wrong_value
        else if Hashtbl.mem seen v.voter_pk then Error `Duplicate_voter
        else begin
          let votes = Vote.validate_credential ctx v in
          if votes = 0 then Error `Invalid_vote
          else begin
            Hashtbl.replace seen v.voter_pk ();
            check (total + votes) (Vote.signature_triple ctx v :: triples) rest
          end
        end
    in
    check 0 [] c.votes
  end
