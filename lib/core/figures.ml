(* Section 10 figure regeneration. Figure 7 is the paper's latency
   story: where a round's time goes (block proposal, BA* without the
   final step, the final step), plotted as min/p25/median/p75/max
   across users. Here it is rebuilt from the round records of a
   finished run and emitted as a committed JSON artifact, so the
   repo carries a reproducible perf trajectory for the consensus path
   (results/FIG7.json) next to the crypto microbenches.

   Output discipline: deterministic for a given config and seed - the
   sim is deterministic, floats are printed with fixed precision, and
   no wall-clock or environment data enters the document - and free of
   NaN tokens: empty summaries serialize as zeros with "count":0, and
   records that skipped phases (catch-up grafts) are excluded and
   counted rather than allowed to poison the decomposition. *)

module Metrics = Algorand_sim.Metrics
module Stats = Algorand_sim.Stats

let num (v : float) : string =
  if Float.is_nan v then "0.000000" else Printf.sprintf "%.6f" v

let summary_json (s : Stats.summary) : string =
  Printf.sprintf
    "{\"count\":%d,\"min\":%s,\"p25\":%s,\"median\":%s,\"p75\":%s,\"max\":%s,\"mean\":%s}"
    s.count (num s.min) (num s.p25) (num s.median) (num s.p75) (num s.max) (num s.mean)

let fig7_json (r : Harness.result) : string =
  let m = r.harness.Harness.metrics in
  let c = r.harness.Harness.config in
  let phase p = Stats.summarize (Metrics.phase_times m p) in
  let proposal = phase Metrics.Block_proposal in
  let ba = phase Metrics.Ba_no_final in
  let final = phase Metrics.Ba_final in
  let total = Stats.summarize (Metrics.all_round_completion_times m) in
  let nans_dropped = proposal.nans + ba.nans + final.nans + total.nans in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"figure\": 7,\n";
  Buffer.add_string b "  \"description\": \"round latency split: block proposal / BA* w/o final step / final step (seconds)\",\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" c.Harness.rng_seed);
  Buffer.add_string b (Printf.sprintf "  \"users\": %d,\n" c.Harness.users);
  Buffer.add_string b (Printf.sprintf "  \"rounds\": %d,\n" c.Harness.rounds);
  Buffer.add_string b (Printf.sprintf "  \"block_bytes\": %d,\n" c.Harness.block_bytes);
  Buffer.add_string b (Printf.sprintf "  \"sim_time_s\": %s,\n" (num r.Harness.sim_time));
  Buffer.add_string b (Printf.sprintf "  \"completed_records\": %d,\n" (Metrics.completed_rounds m));
  Buffer.add_string b
    (Printf.sprintf "  \"skipped_incomplete_records\": %d,\n" (Metrics.incomplete_phase_records m));
  Buffer.add_string b (Printf.sprintf "  \"nan_values_dropped\": %d,\n" nans_dropped);
  Buffer.add_string b (Printf.sprintf "  \"final_rounds\": %d,\n" r.Harness.final_rounds);
  Buffer.add_string b (Printf.sprintf "  \"tentative_rounds\": %d,\n" r.Harness.tentative_rounds);
  Buffer.add_string b "  \"phases\": {\n";
  Buffer.add_string b (Printf.sprintf "    \"block_proposal\": %s,\n" (summary_json proposal));
  Buffer.add_string b (Printf.sprintf "    \"ba_no_final\": %s,\n" (summary_json ba));
  Buffer.add_string b (Printf.sprintf "    \"ba_final\": %s,\n" (summary_json final));
  Buffer.add_string b (Printf.sprintf "    \"round_total\": %s\n" (summary_json total));
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

let fig7_run ?(users = 50) ?(rounds = 5) ?(seed = 42) ?(block_bytes = 1_000_000) () :
    string =
  let r =
    Harness.run
      { Harness.default with users; rounds; rng_seed = seed; block_bytes }
  in
  fig7_json r

let rec mkdir_p (dir : string) : unit =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write ~(path : string) (doc : string) : unit =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  output_string oc doc;
  close_out oc
