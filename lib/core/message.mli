(** Gossip message types (Figure 1, sections 6 and 8.2). *)

module Block = Algorand_ledger.Block
module Transaction = Algorand_ledger.Transaction
module Vote = Algorand_ba.Vote

type fork_proposal = {
  attempt : int;  (** recovery clock tick *)
  proposer_pk : string;
  vrf_hash : string;
  vrf_proof : string;
  priority : string;
  suffix : Block.t list;  (** blocks above the stable prefix, oldest first *)
  tip_hash : string;
}

type t =
  | Tx of Transaction.t
  | Priority of Proposal.priority_msg
  | Block_gossip of Block.t
  | Ba_vote of Vote.t
  | Block_request of { round : int; block_hash : string; requester : int; attempt : int }
      (** BlockOfHash (Algorithm 3): fetch an agreed hash's pre-image;
          [attempt] distinguishes retries from relay-deduped originals *)
  | Block_reply of Block.t
  | Fork_proposal of fork_proposal  (** recovery (section 8.2) *)
  | Round_request of { from_round : int; requester : int; attempt : int }
      (** live catch-up (section 8.3): ask a peer for the certified
          rounds we missed, starting at [from_round] *)
  | Round_reply of {
      to_ : int;
      current_round : int;
      items : (Block.t * Certificate.t) list;
    }

val id : t -> string
(** Relay-dedup id; one message per key per (round, step), and one
    block per (round, proposer), per section 8.4. Retried requests
    carry their attempt number so re-issues are not deduped away. *)

val size_bytes : t -> int
val kind : t -> string
