(* Everything that travels over the gossip network (Figure 1 and
   section 6): transactions, proposer priority announcements, full
   blocks, BA* votes, and a block-fetch pair used when a user agrees on
   a hash whose pre-image it has not yet received (BlockOfHash in
   Algorithm 3). *)

open Algorand_crypto
module Block = Algorand_ledger.Block
module Transaction = Algorand_ledger.Transaction
module Vote = Algorand_ba.Vote

type fork_proposal = {
  attempt : int;  (** recovery attempt number (synchronized clock tick) *)
  proposer_pk : string;
  vrf_hash : string;
  vrf_proof : string;
  priority : string;
  suffix : Block.t list;  (** the proposed fork: blocks above the stable prefix, oldest first *)
  tip_hash : string;  (** hash of the last block in [suffix] (or of the stable block) *)
}

type t =
  | Tx of Transaction.t
  | Priority of Proposal.priority_msg
  | Block_gossip of Block.t
  | Ba_vote of Vote.t
  | Block_request of { round : int; block_hash : string; requester : int; attempt : int }
  | Block_reply of Block.t
  | Fork_proposal of fork_proposal
  | Round_request of { from_round : int; requester : int; attempt : int }
      (** live catch-up (section 8.3): a rejoining user asks a peer for
          the certified rounds it missed, starting at [from_round] *)
  | Round_reply of {
      to_ : int;
      current_round : int;  (** the replier's round, so the requester knows its target *)
      items : (Block.t * Certificate.t) list;  (** contiguous certified rounds *)
    }

(* Gossip dedup id. Per section 8.4, nodes relay at most one message
   per public key per (round, step): the vote id therefore excludes the
   value, and the block id is per (round, proposer), so an equivocating
   proposer cannot flood relays with variants. Retried requests carry
   their attempt number so a re-issue is not swallowed as a duplicate
   of the lost original. *)
let id (m : t) : string =
  match m with
  | Tx tx -> "tx|" ^ Transaction.id tx
  | Priority p -> Printf.sprintf "prio|%d|%s" p.round p.proposer_pk
  | Block_gossip b ->
    Printf.sprintf "block|%d|%s" (Block.round b) b.header.proposer_pk
  | Ba_vote v -> Vote.gossip_id v
  | Block_request { round; block_hash; requester; attempt } ->
    Printf.sprintf "breq|%d|%s|%d|%d" round (Hex.of_string block_hash) requester attempt
  | Block_reply b -> "brep|" ^ Block.hash b
  | Fork_proposal f -> Printf.sprintf "fork|%d|%s" f.attempt f.proposer_pk
  | Round_request { from_round; requester; attempt } ->
    Printf.sprintf "rreq|%d|%d|%d" from_round requester attempt
  | Round_reply { to_; current_round; items } ->
    Printf.sprintf "rrep|%d|%d|%s" to_ current_round
      (Hex.of_string
         (Sha256.digest_concat (List.map (fun (b, _) -> Block.hash b) items)))

let size_bytes (m : t) : int =
  match m with
  | Tx tx -> Transaction.size_bytes tx
  | Priority _ -> Proposal.priority_size_bytes
  | Block_gossip b | Block_reply b -> Block.size_bytes b
  | Ba_vote v -> Vote.size_bytes v
  | Block_request _ | Round_request _ -> 80
  | Fork_proposal f ->
    Proposal.priority_size_bytes
    + List.fold_left (fun acc b -> acc + Block.size_bytes b) 0 f.suffix
  | Round_reply { items; _ } ->
    64
    + List.fold_left
        (fun acc (b, c) -> acc + Block.size_bytes b + Certificate.size_bytes c)
        0 items

let kind (m : t) : string =
  match m with
  | Tx _ -> "tx"
  | Priority _ -> "priority"
  | Block_gossip _ -> "block"
  | Ba_vote _ -> "vote"
  | Block_request _ -> "block-request"
  | Block_reply _ -> "block-reply"
  | Fork_proposal _ -> "fork-proposal"
  | Round_request _ -> "round-request"
  | Round_reply _ -> "round-reply"
