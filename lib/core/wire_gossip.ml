(* Gossip over a real transport; see the interface. The ingress
   pipeline deliberately tracks lib/netsim/gossip.ml step for step so
   the two overlays stay behaviorally interchangeable - any divergence
   here is a bug in the sim-vs-wire equivalence claim. *)

module Engine = Algorand_sim.Engine
module Retry = Algorand_sim.Retry
module Rng = Algorand_sim.Rng
module Gossip = Algorand_netsim.Gossip
module Registry = Algorand_obs.Registry
module Transport = Algorand_transport.Transport
module Handshake = Algorand_transport.Handshake

type stats = {
  originated : int;
  delivered : int;
  relayed : int;
  duplicates : int;
  invalid : int;
  decode_failures : int;
  quota_drops : int;
  bans : int;
}

(* Per-peer flood-defense state: a message quota over a sliding window
   plus a misbehavior score. The netsim overlay also models a leaky
   ingress queue; on a real transport the socket's receive buffer and
   the sender-side write queue play that role, so only the quota and
   scoring layers are reimplemented here. *)
type pstate = {
  mutable window_start : float;
  mutable window_count : int;
  mutable score : int;
}

module Make (T : Transport.S) = struct
  type t = {
    engine : Engine.t;
    transport : T.t;
    self : int;
    roster : string array;
    pk_index : (string, int) Hashtbl.t;
    limits : Codec.limits;
    flood : Gossip.limits option;
    fanout : int;
    retry_policy : Retry.policy;
    rng : Rng.t;
    registry : Registry.t option;
    tm : Transport.metrics option;  (** for the reconnects counter *)
    c_originated : Registry.counter option;
    c_delivered : Registry.counter option;
    c_relayed : Registry.counter option;
    c_duplicates : Registry.counter option;
    c_invalid : Registry.counter option;
    c_decode_fail : Registry.counter option;
    c_quota_drops : Registry.counter option;
    c_banned : Registry.counter option;
    c_p2p : Registry.counter option;
    seen : (string, unit) Hashtbl.t;
    conn_index : (int, int) Hashtbl.t;  (** conn id -> roster index *)
    dial_addrs : (int, string) Hashtbl.t;  (** links we are responsible for *)
    addr_index : (string, int) Hashtbl.t;
    redials : (int, Retry.t) Hashtbl.t;
    peer_state : (int, pstate) Hashtbl.t;
    banned_tbl : (int, unit) Hashtbl.t;
    mutable validate : Message.t -> bool;
    mutable deliver : src:int -> Message.t -> unit;
    mutable n_originated : int;
    mutable n_delivered : int;
    mutable n_relayed : int;
    mutable n_duplicates : int;
    mutable n_invalid : int;
    mutable n_decode_fail : int;
    mutable n_quota_drops : int;
    mutable n_bans : int;
    mutable stopped : bool;
  }

  let bump = function Some c -> Registry.incr c | None -> ()

  let index_of_conn (t : t) (conn : int) : int option =
    Hashtbl.find_opt t.conn_index conn

  let conns_to (t : t) (index : int) : int list =
    Hashtbl.fold
      (fun conn i acc -> if i = index then conn :: acc else acc)
      t.conn_index []
    |> List.sort compare

  let connected (t : t) : int list =
    Hashtbl.fold (fun _ i acc -> if List.mem i acc then acc else i :: acc) t.conn_index []
    |> List.sort compare

  let banned (t : t) : int list =
    Hashtbl.fold (fun i () acc -> i :: acc) t.banned_tbl [] |> List.sort compare

  (* The deterministic relay overlay: our [fanout] ring successors. *)
  let gossip_neighbors (t : t) : int list =
    let n = Array.length t.roster in
    let rec go k acc =
      if k > t.fanout || k >= n then List.rev acc
      else go (k + 1) (((t.self + k) mod n) :: acc)
    in
    go 1 []

  let send_frame (t : t) ~(index : int) (frame : string) : bool =
    match conns_to t index with
    | conn :: _ -> (
      match T.send t.transport ~conn frame with `Ok -> true | `Dropped | `No_conn -> false)
    | [] -> false

  (* Relay raw bytes to the connected subset of our overlay neighbors,
     never back toward the source. *)
  let relay (t : t) ?(except = -1) (frame : string) : unit =
    List.iter
      (fun index ->
        if index <> except && index <> t.self then
          if send_frame t ~index frame then begin
            t.n_relayed <- t.n_relayed + 1;
            bump t.c_relayed
          end)
      (gossip_neighbors t)

  (* ---------------- flood defense ---------------- *)

  let pstate_of (t : t) (src : int) : pstate =
    match Hashtbl.find_opt t.peer_state src with
    | Some p -> p
    | None ->
      let p = { window_start = Engine.now t.engine; window_count = 0; score = 0 } in
      Hashtbl.replace t.peer_state src p;
      p

  let ban (t : t) (src : int) : unit =
    if not (Hashtbl.mem t.banned_tbl src) then begin
      Hashtbl.replace t.banned_tbl src ();
      t.n_bans <- t.n_bans + 1;
      bump t.c_banned;
      (match Hashtbl.find_opt t.redials src with
      | Some r ->
        Retry.cancel r;
        Hashtbl.remove t.redials src
      | None -> ());
      List.iter (fun conn -> T.disconnect t.transport ~conn) (conns_to t src)
    end

  let score (t : t) ~(limits : Gossip.limits) (src : int) (s : int) : unit =
    let p = pstate_of t src in
    p.score <- p.score + s;
    if p.score >= limits.ban_threshold then ban t src

  let admit (t : t) (src : int) : bool =
    match t.flood with
    | None -> true
    | Some l ->
      let p = pstate_of t src in
      let now = Engine.now t.engine in
      if now -. p.window_start >= l.quota_window_s then begin
        p.window_start <- now;
        p.window_count <- 0
      end;
      if p.window_count >= l.quota_msgs then begin
        t.n_quota_drops <- t.n_quota_drops + 1;
        bump t.c_quota_drops;
        score t ~limits:l src l.quota_score;
        false
      end
      else begin
        p.window_count <- p.window_count + 1;
        true
      end

  (* ---------------- ingress ---------------- *)

  let point_to_point : Message.t -> bool = function
    | Message.Round_request _ | Message.Round_reply _ -> true
    | _ -> false

  (* Strict netsim ingress order: ban, admission, decode, dedup,
     validate, deliver + relay. Raw frames relay as the bytes that
     arrived. Not marked seen on validation failure, for the same
     reasons as the simulated overlay (stateful validation; corrupted
     copies must not poison dedup). *)
  let on_frame (t : t) ~(conn : int) (frame : string) : unit =
    match index_of_conn t conn with
    | None -> ()
    | Some src ->
      if not (Hashtbl.mem t.banned_tbl src) && admit t src then begin
        match Codec.decode ~limits:t.limits frame with
        | None ->
          t.n_decode_fail <- t.n_decode_fail + 1;
          bump t.c_decode_fail;
          (match t.flood with
          | Some l -> score t ~limits:l src l.decode_fail_score
          | None -> ())
        | Some msg ->
          let id = Message.id msg in
          if Hashtbl.mem t.seen id then begin
            t.n_duplicates <- t.n_duplicates + 1;
            bump t.c_duplicates
          end
          else if not (t.validate msg) then begin
            t.n_invalid <- t.n_invalid + 1;
            bump t.c_invalid
          end
          else begin
            Hashtbl.replace t.seen id ();
            t.n_delivered <- t.n_delivered + 1;
            bump t.c_delivered;
            t.deliver ~src msg;
            if not (point_to_point msg) then relay t ~except:src frame
          end
      end

  (* ---------------- connection management ---------------- *)

  let connected_to (t : t) (index : int) : bool = conns_to t index <> []

  let ensure_redial ?(initial = false) (t : t) (index : int) : unit =
    match Hashtbl.find_opt t.dial_addrs index with
    | None -> ()
    | Some addr ->
      if
        (not t.stopped)
        && (not (Hashtbl.mem t.banned_tbl index))
        && (not (Hashtbl.mem t.redials index))
        && not (connected_to t index)
      then begin
        let r =
          Retry.start ~engine:t.engine ~rng:t.rng ~policy:t.retry_policy
            ~attempt:(fun n ->
              if
                (not t.stopped)
                && (not (Hashtbl.mem t.banned_tbl index))
                && not (connected_to t index)
              then begin
                (* The very first dial to a peer is not a reconnect;
                   every attempt after an established link dropped is,
                   including the re-arm's synchronous attempt 0. *)
                (if n > 0 || not initial then
                   match t.tm with
                   | Some m -> Registry.incr m.reconnects
                   | None -> ());
                T.connect t.transport addr
              end)
            ~on_exhausted:(fun () -> Hashtbl.remove t.redials index)
            ~name:"reconnect" ?registry:t.registry ()
        in
        Hashtbl.replace t.redials index r
      end

  let on_peer_up (t : t) ~(conn : int) (hello : Handshake.hello) : unit =
    match Hashtbl.find_opt t.pk_index hello.pk with
    | None -> T.disconnect t.transport ~conn (* roster race; accept_peer gates *)
    | Some index ->
      Hashtbl.replace t.conn_index conn index;
      (match Hashtbl.find_opt t.redials index with
      | Some r ->
        Retry.cancel r;
        Hashtbl.remove t.redials index
      | None -> ())

  let on_peer_down (t : t) ~(conn : int) (_reason : Transport.reason) : unit =
    let index =
      match index_of_conn t conn with
      | Some i -> Some i
      | None -> (
        (* A dial that never completed its handshake: resolve the peer
           through the address we were dialing. *)
        match T.dialed_addr t.transport ~conn with
        | Some addr -> Hashtbl.find_opt t.addr_index addr
        | None -> None)
    in
    Hashtbl.remove t.conn_index conn;
    match index with Some i -> ensure_redial t i | None -> ()

  let accept_peer (t : t) (hello : Handshake.hello) : bool =
    match Hashtbl.find_opt t.pk_index hello.pk with
    | Some index -> not (Hashtbl.mem t.banned_tbl index)
    | None -> false

  let create ~engine ~transport ~(handlers : Transport.handlers) ~self ~roster
      ~limits ?flood ?(fanout = 4) ?(retry = Retry.default_policy) ~rng ?registry ()
      : t =
    let pk_index = Hashtbl.create (Array.length roster) in
    Array.iteri (fun i pk -> Hashtbl.replace pk_index pk i) roster;
    let c name = Option.map (fun r -> Registry.counter r ("gossip." ^ name)) registry in
    let t =
      {
        engine;
        transport;
        self;
        roster;
        pk_index;
        limits;
        flood;
        fanout;
        retry_policy = retry;
        rng;
        registry;
        tm = Option.map Transport.metrics registry;
        c_originated = c "originated";
        c_delivered = c "delivered";
        c_relayed = c "relayed";
        c_duplicates = c "duplicates_dropped";
        c_invalid = c "invalid_dropped";
        c_decode_fail = c "decode_fail";
        c_quota_drops = c "quota_drops";
        c_banned = c "banned_peers";
        c_p2p = c "p2p_sends";
        seen = Hashtbl.create 1024;
        conn_index = Hashtbl.create 16;
        dial_addrs = Hashtbl.create 16;
        addr_index = Hashtbl.create 16;
        redials = Hashtbl.create 8;
        peer_state = Hashtbl.create 16;
        banned_tbl = Hashtbl.create 4;
        validate = (fun _ -> true);
        deliver = (fun ~src:_ _ -> ());
        n_originated = 0;
        n_delivered = 0;
        n_relayed = 0;
        n_duplicates = 0;
        n_invalid = 0;
        n_decode_fail = 0;
        n_quota_drops = 0;
        n_bans = 0;
        stopped = false;
      }
    in
    handlers.on_peer_up <- on_peer_up t;
    handlers.on_frame <- on_frame t;
    handlers.on_peer_down <- on_peer_down t;
    handlers.accept_peer <- accept_peer t;
    t

  let install (t : t) ~validate ~deliver : unit =
    t.validate <- validate;
    t.deliver <- deliver

  let dial (t : t) ~(index : int) ~(addr : string) : unit =
    Hashtbl.replace t.dial_addrs index addr;
    Hashtbl.replace t.addr_index addr index;
    (* The first dial runs as the Retry's synchronous attempt 0, so a
       refused connection (the peer's listener not bound yet - the
       normal multi-process startup race) is redialed on the backoff
       schedule without depending on anyone reporting it. *)
    if not (connected_to t index) then ensure_redial ~initial:true t index

  let as_net (t : t) : Node.net =
    {
      Node.net_broadcast =
        (fun msg ->
          let id = Message.id msg in
          if not (Hashtbl.mem t.seen id) then begin
            Hashtbl.replace t.seen id ();
            t.n_originated <- t.n_originated + 1;
            bump t.c_originated;
            relay t (Codec.encode msg)
          end);
      net_send_to =
        (fun ~dst msg ->
          bump t.c_p2p;
          ignore (send_frame t ~index:dst (Codec.encode msg)));
      net_peers = (fun () -> List.filter (fun i -> i <> t.self) (connected t));
      net_mark_seen = (fun msg -> Hashtbl.replace t.seen (Message.id msg) ());
    }

  let stats (t : t) : stats =
    {
      originated = t.n_originated;
      delivered = t.n_delivered;
      relayed = t.n_relayed;
      duplicates = t.n_duplicates;
      invalid = t.n_invalid;
      decode_failures = t.n_decode_fail;
      quota_drops = t.n_quota_drops;
      bans = t.n_bans;
    }

  let stop (t : t) : unit =
    t.stopped <- true;
    Hashtbl.iter (fun _ r -> Retry.cancel r) t.redials;
    Hashtbl.reset t.redials
end
