(* Binary wire codecs for every gossip message.

   The simulator moves OCaml values between nodes directly (copying
   would only burn memory), but a real deployment needs a canonical
   wire format; this module provides it, built on the same
   length-prefixed framing as the ledger structures. Every encoder has
   a decoder inverse, property-tested in test/test_codec.ml.

   Block padding is declared-length on the wire: the simulator's
   synthetic payload bytes are represented by their count. A production
   encoder would stream the actual payload; the framing is unchanged. *)

module Block = Algorand_ledger.Block
module Transaction = Algorand_ledger.Transaction
module Wire = Algorand_ledger.Wire
module Vote = Algorand_ba.Vote

let ( let* ) = Option.bind

(* ------------------------------------------------------------------ *)
(* Steps.                                                              *)
(* ------------------------------------------------------------------ *)

let encode_step (s : Vote.step) : string =
  match s with
  | Vote.Reduction_one -> Wire.u64 0
  | Vote.Reduction_two -> Wire.u64 1
  | Vote.Final -> Wire.u64 2
  | Vote.Bin i -> Wire.u64 (16 + i)

let decode_step (s : string) : Vote.step option =
  if String.length s <> 8 then None
  else begin
    match Wire.read_u64 s 0 with
    | 0 -> Some Vote.Reduction_one
    | 1 -> Some Vote.Reduction_two
    | 2 -> Some Vote.Final
    | n when n >= 16 -> Some (Vote.Bin (n - 16))
    | _ -> None
  end

(* ------------------------------------------------------------------ *)
(* Votes.                                                              *)
(* ------------------------------------------------------------------ *)

let encode_vote (v : Vote.t) : string =
  Wire.concat
    [
      Wire.u64 v.round;
      encode_step v.step;
      v.voter_pk;
      v.sorthash;
      v.sortproof;
      v.prev_hash;
      v.value;
      v.signature;
    ]

let decode_vote (s : string) : Vote.t option =
  match Wire.split s with
  | [ round; step; voter_pk; sorthash; sortproof; prev_hash; value; signature ] ->
    let* step = decode_step step in
    Some
      {
        Vote.round = Wire.read_u64 round 0;
        step;
        voter_pk;
        sorthash;
        sortproof;
        prev_hash;
        value;
        signature;
      }
  | _ | (exception Invalid_argument _) -> None

(* ------------------------------------------------------------------ *)
(* Blocks.                                                             *)
(* ------------------------------------------------------------------ *)

let encode_block (b : Block.t) : string =
  Wire.concat
    [
      Wire.u64 b.header.round;
      b.header.prev_hash;
      Wire.u64 (int_of_float (b.header.timestamp *. 1000.0));
      b.header.seed;
      b.header.seed_proof;
      b.header.proposer_pk;
      b.header.proposer_vrf_hash;
      b.header.proposer_vrf_proof;
      Wire.u64 b.padding;
      Wire.concat (List.map Transaction.serialize b.txs);
    ]

let decode_block (s : string) : Block.t option =
  match Wire.split s with
  | [ round; prev_hash; ts; seed; seed_proof; pk; vrf_hash; vrf_proof; padding; txs ] ->
    let* tx_list =
      try
        Wire.split txs
        |> List.map Transaction.deserialize
        |> List.fold_left
             (fun acc tx ->
               match (acc, tx) with Some l, Some tx -> Some (tx :: l) | _ -> None)
             (Some [])
        |> Option.map List.rev
      with Invalid_argument _ -> None
    in
    Some
      {
        Block.header =
          {
            round = Wire.read_u64 round 0;
            prev_hash;
            timestamp = float_of_int (Wire.read_u64 ts 0) /. 1000.0;
            seed;
            seed_proof;
            proposer_pk = pk;
            proposer_vrf_hash = vrf_hash;
            proposer_vrf_proof = vrf_proof;
          };
        txs = tx_list;
        padding = Wire.read_u64 padding 0;
      }
  | _ | (exception Invalid_argument _) -> None

(* ------------------------------------------------------------------ *)
(* Priorities, certificates, fork proposals.                           *)
(* ------------------------------------------------------------------ *)

let encode_priority (p : Proposal.priority_msg) : string =
  Wire.concat
    [ Wire.u64 p.round; p.proposer_pk; p.prev_hash; p.vrf_hash; p.vrf_proof; p.priority ]

let decode_priority (s : string) : Proposal.priority_msg option =
  match Wire.split s with
  | [ round; proposer_pk; prev_hash; vrf_hash; vrf_proof; priority ] ->
    Some
      {
        Proposal.round = Wire.read_u64 round 0;
        proposer_pk;
        prev_hash;
        vrf_hash;
        vrf_proof;
        priority;
      }
  | _ | (exception Invalid_argument _) -> None

let encode_certificate (c : Certificate.t) : string =
  Wire.concat
    [
      Wire.u64 c.round;
      encode_step c.step;
      c.block_hash;
      Wire.concat (List.map encode_vote c.votes);
    ]

let decode_certificate (s : string) : Certificate.t option =
  match Wire.split s with
  | [ round; step; block_hash; votes ] ->
    let* step = decode_step step in
    let* vote_list =
      try
        Wire.split votes
        |> List.map decode_vote
        |> List.fold_left
             (fun acc v ->
               match (acc, v) with Some l, Some v -> Some (v :: l) | _ -> None)
             (Some [])
        |> Option.map List.rev
      with Invalid_argument _ -> None
    in
    Some (Certificate.make ~round:(Wire.read_u64 round 0) ~step ~block_hash ~votes:vote_list)
  | _ | (exception Invalid_argument _) -> None

let encode_fork_proposal (f : Message.fork_proposal) : string =
  Wire.concat
    [
      Wire.u64 f.attempt;
      f.proposer_pk;
      f.vrf_hash;
      f.vrf_proof;
      f.priority;
      Wire.concat (List.map encode_block f.suffix);
      f.tip_hash;
    ]

let decode_fork_proposal (s : string) : Message.fork_proposal option =
  match Wire.split s with
  | [ attempt; proposer_pk; vrf_hash; vrf_proof; priority; suffix; tip_hash ] ->
    let* blocks =
      try
        Wire.split suffix
        |> List.map decode_block
        |> List.fold_left
             (fun acc b ->
               match (acc, b) with Some l, Some b -> Some (b :: l) | _ -> None)
             (Some [])
        |> Option.map List.rev
      with Invalid_argument _ -> None
    in
    Some
      {
        Message.attempt = Wire.read_u64 attempt 0;
        proposer_pk;
        vrf_hash;
        vrf_proof;
        priority;
        suffix = blocks;
        tip_hash;
      }
  | _ | (exception Invalid_argument _) -> None

(* ------------------------------------------------------------------ *)
(* Top-level messages.                                                 *)
(* ------------------------------------------------------------------ *)

let tag_of (m : Message.t) : int =
  match m with
  | Message.Tx _ -> 1
  | Message.Priority _ -> 2
  | Message.Block_gossip _ -> 3
  | Message.Ba_vote _ -> 4
  | Message.Block_request _ -> 5
  | Message.Block_reply _ -> 6
  | Message.Fork_proposal _ -> 7
  | Message.Round_request _ -> 8
  | Message.Round_reply _ -> 9

let encode (m : Message.t) : string =
  let body =
    match m with
    | Message.Tx tx -> Transaction.serialize tx
    | Message.Priority p -> encode_priority p
    | Message.Block_gossip b | Message.Block_reply b -> encode_block b
    | Message.Ba_vote v -> encode_vote v
    | Message.Block_request { round; block_hash; requester; attempt } ->
      Wire.concat [ Wire.u64 round; block_hash; Wire.u64 requester; Wire.u64 attempt ]
    | Message.Fork_proposal f -> encode_fork_proposal f
    | Message.Round_request { from_round; requester; attempt } ->
      Wire.concat [ Wire.u64 from_round; Wire.u64 requester; Wire.u64 attempt ]
    | Message.Round_reply { to_; current_round; items } ->
      Wire.concat
        [
          Wire.u64 to_;
          Wire.u64 current_round;
          Wire.concat
            (List.map
               (fun (b, c) ->
                 Wire.concat [ encode_block b; encode_certificate c ])
               items);
        ]
  in
  Wire.concat [ Wire.u64 (tag_of m); body ]

let decode (s : string) : Message.t option =
  match Wire.split s with
  | [ tag; body ] -> (
    match Wire.read_u64 tag 0 with
    | 1 -> Option.map (fun tx -> Message.Tx tx) (Transaction.deserialize body)
    | 2 -> Option.map (fun p -> Message.Priority p) (decode_priority body)
    | 3 -> Option.map (fun b -> Message.Block_gossip b) (decode_block body)
    | 4 -> Option.map (fun v -> Message.Ba_vote v) (decode_vote body)
    | 5 -> (
      match Wire.split body with
      | [ round; block_hash; requester; attempt ] ->
        Some
          (Message.Block_request
             {
               round = Wire.read_u64 round 0;
               block_hash;
               requester = Wire.read_u64 requester 0;
               attempt = Wire.read_u64 attempt 0;
             })
      | _ | (exception Invalid_argument _) -> None)
    | 6 -> Option.map (fun b -> Message.Block_reply b) (decode_block body)
    | 7 -> Option.map (fun f -> Message.Fork_proposal f) (decode_fork_proposal body)
    | 8 -> (
      match Wire.split body with
      | [ from_round; requester; attempt ] ->
        Some
          (Message.Round_request
             {
               from_round = Wire.read_u64 from_round 0;
               requester = Wire.read_u64 requester 0;
               attempt = Wire.read_u64 attempt 0;
             })
      | _ | (exception Invalid_argument _) -> None)
    | 9 -> (
      match Wire.split body with
      | [ to_; current_round; items ] -> (
        let decoded =
          try
            Wire.split items
            |> List.map (fun item ->
                   match Wire.split item with
                   | [ braw; craw ] -> (
                     match (decode_block braw, decode_certificate craw) with
                     | Some b, Some c -> Some (b, c)
                     | _ -> None)
                   | _ -> None)
            |> List.fold_left
                 (fun acc i ->
                   match (acc, i) with Some l, Some i -> Some (i :: l) | _ -> None)
                 (Some [])
            |> Option.map List.rev
          with Invalid_argument _ -> None
        in
        match decoded with
        | Some items ->
          Some
            (Message.Round_reply
               {
                 to_ = Wire.read_u64 to_ 0;
                 current_round = Wire.read_u64 current_round 0;
                 items;
               })
        | None -> None)
      | _ | (exception Invalid_argument _) -> None)
    | _ -> None)
  | _ | (exception Invalid_argument _) -> None

(* True on-wire size: encoded framing plus the declared padding bytes a
   production encoder would stream. *)
let wire_size_bytes (m : Message.t) : int =
  let padding =
    match m with
    | Message.Block_gossip b | Message.Block_reply b -> b.padding
    | Message.Fork_proposal f ->
      List.fold_left (fun acc (b : Block.t) -> acc + b.padding) 0 f.suffix
    | Message.Round_reply { items; _ } ->
      List.fold_left (fun acc ((b : Block.t), _) -> acc + b.padding) 0 items
    | _ -> 0
  in
  String.length (encode m) + padding
