(* Binary wire codecs for every gossip message.

   This is the only layer that ever faces attacker-controlled bytes: in
   the harness's bytes-on-the-wire mode every delivery is decoded from
   the frame the sender encoded, so each decoder here must treat its
   input as hostile. Three rules keep decoding resource-bounded:

   - every declared length is validated against the bytes actually
     present (Wire.split) before anything is allocated, so a 16-byte
     frame can never claim 2^60 bytes;
   - every declared *quantity* (block padding, vote step index, list
     lengths, rounds) is clamped by a {!limits} record tied to the
     protocol parameters, so a decoded value cannot smuggle an absurd
     number into downstream arithmetic or buffering;
   - integers are read through {!ru64}, which rejects short fields and
     the negative encodings a 64-bit big-endian word can surface in a
     63-bit OCaml int.

   Decode failure is always [None], never an exception: the gossip
   layer counts and drops malformed frames (and scores the sending
   peer), it does not crash.

   Block padding is declared-length on the wire: the simulator's
   synthetic payload bytes are represented by their count. A production
   encoder would stream the actual payload; the framing is unchanged. *)

module Block = Algorand_ledger.Block
module Transaction = Algorand_ledger.Transaction
module Wire = Algorand_ledger.Wire
module Vote = Algorand_ba.Vote
module Params = Algorand_ba.Params

let ( let* ) = Option.bind

(* ------------------------------------------------------------------ *)
(* Decoder resource limits.                                            *)
(* ------------------------------------------------------------------ *)

type limits = {
  max_frame_bytes : int;  (** reject longer frames before parsing anything *)
  max_round : int;  (** cap on round numbers (recovery vote rounds included) *)
  max_step : int;  (** cap on the BinaryBA* [Bin] step index *)
  max_padding : int;  (** cap on a block's declared padding byte count *)
  max_txs : int;  (** transactions per block *)
  max_votes : int;  (** votes per certificate *)
  max_suffix : int;  (** blocks per recovery fork proposal *)
  max_items : int;  (** (block, certificate) pairs per catch-up reply *)
}

(* Generous but strictly bounded: shaped around [Params.paper] and a
   multi-megabyte block. Every cap is far above anything an honest
   encoder produces and far below anything that could hurt. *)
(* A decider at step s broadcasts votes for steps s+1..s+3 so laggards
   can count them (the vote-next-three arm of Algorithm 8); honest
   step indices therefore reach max_steps + 3, and the decoder must
   admit exactly that far. *)
let step_overshoot = 3

let default_limits : limits =
  {
    max_frame_bytes = 1 lsl 30;
    max_round = 1 lsl 40;
    max_step = Params.paper.max_steps + step_overshoot;
    max_padding = 1 lsl 30;
    max_txs = 1 lsl 20;
    max_votes = 1 lsl 16;
    max_suffix = 64;
    max_items = 32;
  }

(* Limits an experiment derives from its own configuration: step index
   from [max_steps], padding and transaction count from the configured
   block size. Recovery votes run in a shifted round namespace
   (1_000_000 * attempt + round), so the round cap stays generous. *)
let limits_of_params ?(block_bytes = 1_000_000) (p : Params.t) : limits =
  {
    default_limits with
    max_step = p.max_steps + step_overshoot;
    max_padding = (4 * block_bytes) + 4096;
    max_txs = (block_bytes / 32) + 1024;
    max_votes = (4 * int_of_float (Float.max p.tau_step p.tau_final)) + 64;
  }

(* Read an 8-byte big-endian integer from a field, rejecting short
   fields and values outside [0, cap]. [Wire.read_u64] alone would
   raise on a short field and can return a negative int for a 64-bit
   word with the top bit set - both attacker-reachable. *)
let ru64 ?(cap = max_int) (s : string) : int option =
  if String.length s <> 8 then None
  else begin
    let v = Wire.read_u64 s 0 in
    if v < 0 || v > cap then None else Some v
  end

(* Split a frame into at most [max_fields] fields; [Wire.split] already
   guarantees every field's declared length is backed by real bytes. *)
let split_opt ?(max_fields = max_int) (s : string) : string list option =
  match Wire.split s with
  | fields -> if List.length fields > max_fields then None else Some fields
  | exception Invalid_argument _ -> None

(* Decode each element of a split list, failing the whole list on the
   first bad element or when the count exceeds [cap]. *)
let decode_list ~(cap : int) (decode_one : string -> 'a option) (raw : string) :
    'a list option =
  let* fields = split_opt raw in
  if List.length fields > cap then None
  else
    List.fold_left
      (fun acc f ->
        match (acc, decode_one f) with
        | Some l, Some v -> Some (v :: l)
        | _ -> None)
      (Some []) fields
    |> Option.map List.rev

(* ------------------------------------------------------------------ *)
(* Steps.                                                              *)
(* ------------------------------------------------------------------ *)

let encode_step (s : Vote.step) : string =
  match s with
  | Vote.Reduction_one -> Wire.u64 0
  | Vote.Reduction_two -> Wire.u64 1
  | Vote.Final -> Wire.u64 2
  | Vote.Bin i -> Wire.u64 (16 + i)

(* BinaryBA* runs at most [max_steps] steps (Algorithm 8 hangs there),
   so a step index above the cap can only be hostile - without the
   clamp a vote could carry [Bin (max_int - 16)] into every per-step
   table downstream. *)
let decode_step ?(limits = default_limits) (s : string) : Vote.step option =
  let* n = ru64 s in
  match n with
  | 0 -> Some Vote.Reduction_one
  | 1 -> Some Vote.Reduction_two
  | 2 -> Some Vote.Final
  | n when n >= 16 && n - 16 >= 1 && n - 16 <= limits.max_step ->
    Some (Vote.Bin (n - 16))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Votes.                                                              *)
(* ------------------------------------------------------------------ *)

let encode_vote (v : Vote.t) : string =
  Wire.concat
    [
      Wire.u64 v.round;
      encode_step v.step;
      v.voter_pk;
      v.sorthash;
      v.sortproof;
      v.prev_hash;
      v.value;
      v.signature;
    ]

let decode_vote ?(limits = default_limits) (s : string) : Vote.t option =
  match split_opt s with
  | Some [ round; step; voter_pk; sorthash; sortproof; prev_hash; value; signature ] ->
    let* round = ru64 ~cap:limits.max_round round in
    let* step = decode_step ~limits step in
    Some
      { Vote.round; step; voter_pk; sorthash; sortproof; prev_hash; value; signature }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Blocks.                                                             *)
(* ------------------------------------------------------------------ *)

let encode_block (b : Block.t) : string =
  Wire.concat
    [
      Wire.u64 b.header.round;
      b.header.prev_hash;
      Wire.u64 (int_of_float (b.header.timestamp *. 1000.0));
      b.header.seed;
      b.header.seed_proof;
      b.header.proposer_pk;
      b.header.proposer_vrf_hash;
      b.header.proposer_vrf_proof;
      Wire.u64 b.padding;
      Wire.concat (List.map Transaction.serialize b.txs);
    ]

let decode_block ?(limits = default_limits) (s : string) : Block.t option =
  match split_opt s with
  | Some [ round; prev_hash; ts; seed; seed_proof; pk; vrf_hash; vrf_proof; padding; txs ]
    ->
    let* round = ru64 ~cap:limits.max_round round in
    let* ts = ru64 ts in
    (* The declared padding feeds the bandwidth model (wire_size_bytes)
       and block-size accounting: uncapped, one 16-byte claim of 2^60
       pretend-bytes would wedge the receiver's modeled uplink forever. *)
    let* padding = ru64 ~cap:limits.max_padding padding in
    let* tx_list = decode_list ~cap:limits.max_txs Transaction.deserialize txs in
    Some
      {
        Block.header =
          {
            round;
            prev_hash;
            timestamp = float_of_int ts /. 1000.0;
            seed;
            seed_proof;
            proposer_pk = pk;
            proposer_vrf_hash = vrf_hash;
            proposer_vrf_proof = vrf_proof;
          };
        txs = tx_list;
        padding;
      }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Priorities, certificates, fork proposals.                           *)
(* ------------------------------------------------------------------ *)

let encode_priority (p : Proposal.priority_msg) : string =
  Wire.concat
    [ Wire.u64 p.round; p.proposer_pk; p.prev_hash; p.vrf_hash; p.vrf_proof; p.priority ]

let decode_priority ?(limits = default_limits) (s : string) :
    Proposal.priority_msg option =
  match split_opt s with
  | Some [ round; proposer_pk; prev_hash; vrf_hash; vrf_proof; priority ] ->
    let* round = ru64 ~cap:limits.max_round round in
    Some { Proposal.round; proposer_pk; prev_hash; vrf_hash; vrf_proof; priority }
  | _ -> None

let encode_certificate (c : Certificate.t) : string =
  Wire.concat
    [
      Wire.u64 c.round;
      encode_step c.step;
      c.block_hash;
      Wire.concat (List.map encode_vote c.votes);
    ]

let decode_certificate ?(limits = default_limits) (s : string) : Certificate.t option =
  match split_opt s with
  | Some [ round; step; block_hash; votes ] ->
    let* round = ru64 ~cap:limits.max_round round in
    let* step = decode_step ~limits step in
    let* vote_list = decode_list ~cap:limits.max_votes (decode_vote ~limits) votes in
    Some (Certificate.make ~round ~step ~block_hash ~votes:vote_list)
  | _ -> None

let encode_fork_proposal (f : Message.fork_proposal) : string =
  Wire.concat
    [
      Wire.u64 f.attempt;
      f.proposer_pk;
      f.vrf_hash;
      f.vrf_proof;
      f.priority;
      Wire.concat (List.map encode_block f.suffix);
      f.tip_hash;
    ]

let decode_fork_proposal ?(limits = default_limits) (s : string) :
    Message.fork_proposal option =
  match split_opt s with
  | Some [ attempt; proposer_pk; vrf_hash; vrf_proof; priority; suffix; tip_hash ] ->
    let* attempt = ru64 ~cap:limits.max_round attempt in
    let* blocks = decode_list ~cap:limits.max_suffix (decode_block ~limits) suffix in
    Some
      {
        Message.attempt;
        proposer_pk;
        vrf_hash;
        vrf_proof;
        priority;
        suffix = blocks;
        tip_hash;
      }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Top-level messages.                                                 *)
(* ------------------------------------------------------------------ *)

let tag_of (m : Message.t) : int =
  match m with
  | Message.Tx _ -> 1
  | Message.Priority _ -> 2
  | Message.Block_gossip _ -> 3
  | Message.Ba_vote _ -> 4
  | Message.Block_request _ -> 5
  | Message.Block_reply _ -> 6
  | Message.Fork_proposal _ -> 7
  | Message.Round_request _ -> 8
  | Message.Round_reply _ -> 9

let encode (m : Message.t) : string =
  let body =
    match m with
    | Message.Tx tx -> Transaction.serialize tx
    | Message.Priority p -> encode_priority p
    | Message.Block_gossip b | Message.Block_reply b -> encode_block b
    | Message.Ba_vote v -> encode_vote v
    | Message.Block_request { round; block_hash; requester; attempt } ->
      Wire.concat [ Wire.u64 round; block_hash; Wire.u64 requester; Wire.u64 attempt ]
    | Message.Fork_proposal f -> encode_fork_proposal f
    | Message.Round_request { from_round; requester; attempt } ->
      Wire.concat [ Wire.u64 from_round; Wire.u64 requester; Wire.u64 attempt ]
    | Message.Round_reply { to_; current_round; items } ->
      Wire.concat
        [
          Wire.u64 to_;
          Wire.u64 current_round;
          Wire.concat
            (List.map
               (fun (b, c) -> Wire.concat [ encode_block b; encode_certificate c ])
               items);
        ]
  in
  Wire.concat [ Wire.u64 (tag_of m); body ]

let decode_item ~(limits : limits) (item : string) : (Block.t * Certificate.t) option =
  match split_opt item with
  | Some [ braw; craw ] -> (
    match (decode_block ~limits braw, decode_certificate ~limits craw) with
    | Some b, Some c -> Some (b, c)
    | _ -> None)
  | _ -> None

let decode ?(limits = default_limits) (s : string) : Message.t option =
  if String.length s > limits.max_frame_bytes then None
  else
    match split_opt ~max_fields:2 s with
    | Some [ tag; body ] -> (
      let* tag = ru64 tag in
      match tag with
      | 1 -> Option.map (fun tx -> Message.Tx tx) (Transaction.deserialize body)
      | 2 -> Option.map (fun p -> Message.Priority p) (decode_priority ~limits body)
      | 3 -> Option.map (fun b -> Message.Block_gossip b) (decode_block ~limits body)
      | 4 -> Option.map (fun v -> Message.Ba_vote v) (decode_vote ~limits body)
      | 5 -> (
        match split_opt body with
        | Some [ round; block_hash; requester; attempt ] ->
          let* round = ru64 ~cap:limits.max_round round in
          let* requester = ru64 requester in
          let* attempt = ru64 ~cap:limits.max_round attempt in
          Some (Message.Block_request { round; block_hash; requester; attempt })
        | _ -> None)
      | 6 -> Option.map (fun b -> Message.Block_reply b) (decode_block ~limits body)
      | 7 ->
        Option.map (fun f -> Message.Fork_proposal f) (decode_fork_proposal ~limits body)
      | 8 -> (
        match split_opt body with
        | Some [ from_round; requester; attempt ] ->
          let* from_round = ru64 ~cap:limits.max_round from_round in
          let* requester = ru64 requester in
          let* attempt = ru64 ~cap:limits.max_round attempt in
          Some (Message.Round_request { from_round; requester; attempt })
        | _ -> None)
      | 9 -> (
        match split_opt body with
        | Some [ to_; current_round; items ] ->
          let* to_ = ru64 to_ in
          let* current_round = ru64 ~cap:limits.max_round current_round in
          let* items = decode_list ~cap:limits.max_items (decode_item ~limits) items in
          Some (Message.Round_reply { to_; current_round; items })
        | _ -> None)
      | _ -> None)
    | _ -> None

(* True on-wire size: encoded framing plus the declared padding bytes a
   production encoder would stream. *)
let wire_size_bytes (m : Message.t) : int =
  let padding =
    match m with
    | Message.Block_gossip b | Message.Block_reply b -> b.padding
    | Message.Fork_proposal f ->
      List.fold_left (fun acc (b : Block.t) -> acc + b.padding) 0 f.suffix
    | Message.Round_reply { items; _ } ->
      List.fold_left (fun acc ((b : Block.t), _) -> acc + b.padding) 0 items
    | _ -> 0
  in
  String.length (encode m) + padding

(* Canonical digest of the protocol configuration, carried in the
   transport handshake: two processes that disagree on any parameter
   (or on genesis) would silently diverge, so they must refuse to talk
   instead. Floats are rendered with %.17g (round-trip exact), and a
   leading version token lets the format evolve without colliding. *)
let params_digest ?(genesis = "") (p : Params.t) : string =
  let f = Printf.sprintf "%.17g" in
  let fields =
    [
      "pdigest-v1";
      f p.honest_fraction;
      string_of_int p.seed_refresh_interval;
      f p.tau_proposer;
      f p.tau_step;
      f p.t_step;
      f p.tau_final;
      f p.t_final;
      string_of_int p.max_steps;
      f p.lambda_priority;
      f p.lambda_block;
      f p.lambda_step;
      f p.lambda_stepvar;
      f p.lookback_b;
      f p.recovery_interval;
      (match p.ba_variant with Params.Vote_next_three -> "vote-next-three" | Params.Look_back -> "look-back");
      genesis;
    ]
  in
  Algorand_crypto.Sha256.digest (String.concat "|" fields)
