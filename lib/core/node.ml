(* A full Algorand user (sections 4-8): collects transactions, runs
   block proposal, drives BA*, maintains the chain, and serves
   catch-up requests. All I/O goes through the gossip overlay; all
   waiting goes through the simulation engine, so the same code runs
   under every experiment in section 10.

   Byzantine behaviors used by the evaluation (section 10.4) are
   switched on per node: an equivocating proposer sends different
   block versions to different peers, and malicious committee members
   vote for two values by showing different votes to different peers. *)

open Algorand_crypto
module Block = Algorand_ledger.Block
module Balances = Algorand_ledger.Balances
module Chain = Algorand_ledger.Chain
module Genesis = Algorand_ledger.Genesis
module Transaction = Algorand_ledger.Transaction
module Txpool = Algorand_ledger.Txpool
module Vote = Algorand_ba.Vote
module Params = Algorand_ba.Params
module Ba_star = Algorand_ba.Ba_star
module Engine = Algorand_sim.Engine
module Metrics = Algorand_sim.Metrics
module Retry = Algorand_sim.Retry
module Rng = Algorand_sim.Rng
module Gossip = Algorand_netsim.Gossip
module Trace = Algorand_obs.Trace

let src = Logs.Src.create "algorand.node" ~doc:"Algorand node"

module Log = (val Logs.src_log src : Logs.LOG)

type byzantine = {
  equivocate_proposal : bool;  (** propose two block versions, one per half of peers *)
  double_vote : bool;  (** vote both values in committee steps *)
}

type config = {
  params : Params.t;
  sig_scheme : Signature_scheme.scheme;
  vrf_scheme : Vrf.scheme;
  block_target_bytes : int;  (** proposers pad blocks to this size *)
  max_round : int;  (** stop after completing this round *)
  byzantine : byzantine option;
  cpu_vote_verify_s : float;  (** modeled per-vote verification CPU time *)
  cpu_block_verify_s : float;
  recovery_enabled : bool;  (** run the section 8.2 fork-recovery protocol *)
  storage_shards : int;
      (** section 8.3 storage sharding: this node serves old blocks and
          certificates only for rounds matching its key mod shards
          (1 = serve everything) *)
  pipeline_final : bool;
      (** start the next round as soon as BinaryBA* returns, overlapping
          the final-step classification with the next round's proposal
          (the throughput optimization sketched in section 10.2) *)
  resync_enabled : bool;
      (** run the live catch-up rejoin (Round_request/Round_reply with
          retry and backoff) after a restart, on MaxSteps, or when the
          network is observed >= 2 rounds ahead *)
  store_dir : string option;
      (** durable checkpoint directory; [None] disables persistence *)
  checkpoint_every : int;
      (** checkpoint every k completed rounds (when [store_dir] is set) *)
  retry : Retry.policy;  (** backoff for block fetch and catch-up requests *)
  verify_tx_sigs : bool;
      (** check transaction signatures on the block paths: batch
          verification of a proposed block's transactions during
          validation, and a batch filter (with bisection fallback) on
          the pool candidates during assembly *)
  txpool_retention_rounds : int;
      (** how many rounds committed transaction ids stay in the pool's
          dedup table before eviction (the seen-set watermark) *)
  deterministic_ts : bool;
      (** stamp blocks with the round number instead of the clock, so
          runs on different clocks (sim vs wall time) build
          bit-identical ledgers *)
}

let default_config =
  {
    params = Params.paper;
    sig_scheme = Signature_scheme.sim;
    vrf_scheme = Vrf.sim;
    block_target_bytes = 1_000_000;
    max_round = 3;
    byzantine = None;
    cpu_vote_verify_s = 0.0002;
    cpu_block_verify_s = 0.005;
    recovery_enabled = false;
    storage_shards = 1;
    pipeline_final = false;
    resync_enabled = true;
    store_dir = None;
    checkpoint_every = 1;
    retry = Retry.default_policy;
    verify_tx_sigs = true;
    txpool_retention_rounds = 8;
    deterministic_ts = false;
  }

type round_state = {
  round : int;
  record : Metrics.round_record;
  prev_hash : string;
  seed : string;
  total_weight : int;
  weights : Balances.t;  (** the look-back weight snapshot (section 5.3) *)
  empty_hash : string;
  vctx : Vote.validation_ctx;
  proposed_blocks : (string, Block.t) Hashtbl.t;  (** block hash -> block *)
  blocks_by_proposer : (string, string) Hashtbl.t;  (** proposer pk -> block hash *)
  equivocators : (string, unit) Hashtbl.t;
  vote_weight_cache : (string, int) Hashtbl.t;  (** vote content digest -> weighted votes *)
  mutable best_priority : Proposal.priority_msg option;
  mutable first_priority_at : float option;
  mutable ba : Ba_star.t option;
  mutable waiting_for_block : bool;
  mutable last_step_started : float;
  mutable decided_value : string option;  (** set while fetching a missing block *)
  mutable decided_final : bool;
  mutable completed : bool;  (** block appended, next round scheduled *)
  mutable classified : bool;  (** final/tentative classification arrived *)
  mutable buffered_votes : Vote.t list;  (** votes that arrived before BA started *)
  mutable fetch : Retry.t option;
      (** retry schedule for an outstanding BlockOfHash fetch *)
}

(* State of one engagement of the fork-recovery protocol (section 8.2). *)
type recovery_state = {
  generation : int;  (** invalidates stale recovery timers *)
  attempt : int;  (** the synchronized recovery tick that started this engagement *)
  stable : Chain.entry;  (** deepest final entry: seed/weights come from before any fork *)
  rseed : string;
  rweights : Balances.t;
  rtotal_weight : int;
  mutable best_fork : Message.fork_proposal option;
  mutable fork_round : int;  (** round of the recovery empty block, once adopted *)
  mutable rvote_round : int;
      (** vote-round namespace for this attempt: distinct from the
          stalled regular round so recovery votes are not swallowed by
          the gossip relay's one-message-per-(round,step,pk) rule *)
  mutable rempty_hash : string;
  mutable rtip_hash : string;  (** adopted fork tip *)
  mutable rba : Ba_star.t option;
  mutable rvctx : Vote.validation_ctx option;
  mutable rbuffered : Vote.t list;
}

(* Live catch-up after a restart (or after falling behind): request
   certified rounds from rotating peers on a retry schedule until our
   tip reaches the round the network is working on (section 8.3 made
   into an online protocol). *)
(* Recovery BA* votes are tagged with synthetic rounds above this base
   ([base * attempt + fork_round]) so they can never collide with - or
   be mistaken for - regular-round traffic. *)
let recovery_round_base = 1_000_000

type resync_state = {
  started_at : float;
  mutable target_round : int;  (** tip height to reach before rejoining BA* *)
  mutable retry : Retry.t option;
  mutable requests_sent : int;  (** rotates the peer we ask *)
  mutable backtrack : int;
      (** how far below our tip the next request starts: grows when
          replies graft nothing (our tip sits on a dead tentative fork,
          so the divergence point must be rediscovered) *)
}

(* The node's entire view of the network. The four operations are all
   the protocol ever needs, which is what lets one node core run over
   the simulated overlay (lib/netsim Gossip) and over a real transport
   (Wire_gossip) unchanged. Byte accounting happens inside the
   closures; dst indices refer to the global roster. *)
type net = {
  net_broadcast : Message.t -> unit;  (** originate on the overlay *)
  net_send_to : dst:int -> Message.t -> unit;  (** point-to-point *)
  net_peers : unit -> int list;  (** current overlay neighbors *)
  net_mark_seen : Message.t -> unit;
      (** suppress our own relay of a message id (equivocation sends) *)
}

type t = {
  index : int;
  identity : Identity.t;
  mutable config : config;
      (** mutable only for {!set_byzantine}: adaptive corruption flips
          a node's behavior mid-run *)
  engine : Engine.t;
  metrics : Metrics.t;
  genesis : Genesis.t;
  rng : Rng.t;  (** retry jitter; deterministic per node *)
  mutable chain : Chain.t;  (** replaced wholesale on crash/restart *)
  mutable txpool : Txpool.t;
  mutable net : net option;
  mutable current : round_state option;
  pending : (int, Message.t list ref) Hashtbl.t;  (** future-round messages *)
  mutable previous : round_state option;
      (** with [pipeline_final]: the completed round whose final-step
          classification is still outstanding *)
  certificates : (int, Certificate.t) Hashtbl.t;
  final_certificates : (int, Certificate.t) Hashtbl.t;
  mutable cpu_free_at : float;
  mutable hung : bool;
  mutable stopped : bool;
  mutable recovering : recovery_state option;
  mutable recovery_generation : int;
  mutable recoveries_completed : int;
  mutable on_round_complete : (t -> round:int -> final:bool -> unit) option;
  mutable incarnation : int;
      (** bumped on crash, restart and resync teardown; every timer and
          deferred CPU-model delivery captures the value it was armed
          under and is ignored if the node has since moved on *)
  mutable down : bool;  (** crashed and not yet restarted *)
  mutable crash_count : int;
  mutable resync : resync_state option;
  mutable last_checkpoint : int;  (** highest round persisted to [store_dir] *)
}

let create ~(index : int) ~(identity : Identity.t) ~(config : config)
    ~(engine : Engine.t) ~(metrics : Metrics.t) ?rng ~(genesis : Genesis.t) () : t =
  {
    index;
    identity;
    config;
    engine;
    metrics;
    genesis;
    rng = (match rng with Some r -> r | None -> Rng.create ((1_000_003 * index) + 17));
    chain = Chain.create genesis;
    txpool = Txpool.create ();
    net = None;
    current = None;
    pending = Hashtbl.create 8;
    previous = None;
    certificates = Hashtbl.create 8;
    final_certificates = Hashtbl.create 8;
    cpu_free_at = 0.0;
    hung = false;
    stopped = false;
    recovering = None;
    recovery_generation = 0;
    recoveries_completed = 0;
    on_round_complete = None;
    incarnation = 0;
    down = false;
    crash_count = 0;
    resync = None;
    last_checkpoint = 0;
  }

(* Structured tracing (lib/obs): every emission site below guards on
   [Trace.enabled], so a run without tracing pays one field load and
   allocates nothing. *)
let tracer (t : t) : Trace.t = Metrics.trace t.metrics

let trace_instant (t : t) ?round ?detail (name : string) : unit =
  let tr = tracer t in
  if Trace.enabled tr then
    Trace.instant tr ~node:t.index ~incarnation:t.incarnation ?round ?detail
      ~ts:(Engine.now t.engine) ~cat:"node" ~name ()

let set_net (t : t) (n : net) : unit = t.net <- Some n
let net (t : t) : net = Option.get t.net

(* The netsim overlay exposed through the [net] seam; harness and
   tests keep calling this, the daemon installs a Wire_gossip-backed
   [net] instead. *)
let set_gossip (t : t) (g : Message.t Gossip.t) : unit =
  set_net t
    {
      net_broadcast =
        (fun msg ->
          Gossip.broadcast g ~node:t.index ~bytes:(Message.size_bytes msg) msg);
      net_send_to =
        (fun ~dst msg ->
          Gossip.send_to g ~src:t.index ~dst ~bytes:(Message.size_bytes msg) msg);
      net_peers = (fun () -> Gossip.peers g t.index);
      net_mark_seen = (fun msg -> Gossip.mark_seen g ~node:t.index msg);
    }
let pk (t : t) : string = t.identity.pk
let chain (t : t) : Chain.t = t.chain
let round (t : t) : int = match t.current with Some rs -> rs.round | None -> 0
let is_hung (t : t) : bool = t.hung
let certificate (t : t) ~(round : int) : Certificate.t option =
  Hashtbl.find_opt t.certificates round
let final_certificate (t : t) ~(round : int) : Certificate.t option =
  Hashtbl.find_opt t.final_certificates round

(* Storage sharding (section 8.3): does this node serve round [round]'s
   block and certificate to others? *)
let serves_round (t : t) ~(round : int) : bool =
  Algorand_ledger.Storage.stores ~shards:t.config.storage_shards ~pk:t.identity.pk
    ~round

let broadcast (t : t) (msg : Message.t) : unit = (net t).net_broadcast msg

(* Schedule a timer that dies with the node's current life: crash,
   restart and resync teardown bump [t.incarnation], so a closure armed
   in a previous life finds a different value and does nothing. *)
let sched (t : t) ~(delay : float) (f : unit -> unit) : unit =
  let inc = t.incarnation in
  Engine.schedule t.engine ~delay (fun () -> if t.incarnation = inc then f ())

let cancel_fetch (rs : round_state) : unit =
  (match rs.fetch with Some r -> Retry.cancel r | None -> ());
  rs.fetch <- None

(* Durable checkpoint: persist every certified round above the last
   checkpoint, but only as a contiguous run - a gap on disk would
   truncate what a restart can replay, so a round missing its
   certificate (e.g. adopted during fork recovery) blocks the
   checkpoint until resync backfills it. *)
let do_checkpoint (t : t) ~(min_new : int) : unit =
  match t.config.store_dir with
  | None -> ()
  | Some dir ->
    let tip = Chain.tip t.chain in
    if tip.height >= t.last_checkpoint + min_new then begin
      let rec collect r acc =
        if r <= t.last_checkpoint then Some acc
        else begin
          match
            ( Chain.ancestor_at t.chain ~hash:tip.hash ~height:r,
              Hashtbl.find_opt t.certificates r )
          with
          | Some e, Some c when String.equal c.Certificate.block_hash e.hash ->
            collect (r - 1) ({ History.block = e.block; certificate = c } :: acc)
          | _ -> None
        end
      in
      match collect tip.height [] with
      | Some items when items <> [] ->
        Disk_store.save dir items;
        t.last_checkpoint <- tip.height
      | Some _ | None -> ()
    end

let maybe_checkpoint (t : t) : unit =
  if t.config.checkpoint_every > 0 then
    do_checkpoint t ~min_new:t.config.checkpoint_every

(* Forced checkpoint, cadence ignored: what a daemon does on SIGTERM
   so a drained process leaves its full certified prefix on disk. *)
let checkpoint_now (t : t) : unit = do_checkpoint t ~min_new:1

(* ------------------------------------------------------------------ *)
(* Round context (seeds and look-back weights, sections 5.2-5.3).      *)
(* ------------------------------------------------------------------ *)

(* The chain entry whose established seed selects committees for
   round [r]: height max(0, r - 1 - (r mod R)). *)
let seed_entry_for_round (t : t) ~(tip : Chain.entry) ~(r : int) : Chain.entry =
  let height = max 0 (r - 1 - (r mod t.config.params.seed_refresh_interval)) in
  match Chain.ancestor_at t.chain ~hash:tip.hash ~height with
  | Some e -> e
  | None -> Chain.genesis_entry t.chain

(* Weights come from the last block created lookback_b before the seed
   block (the "nothing at stake" look-back of section 5.3). *)
let weight_entry (t : t) ~(seed_entry : Chain.entry) : Chain.entry =
  let cutoff = seed_entry.block.header.timestamp -. t.config.params.lookback_b in
  let rec back (e : Chain.entry) =
    if e.height = 0 || e.block.header.timestamp <= cutoff then e
    else begin
      match Chain.find t.chain e.parent with None -> e | Some p -> back p
    end
  in
  back seed_entry

let make_round_state (t : t) ~(r : int) : round_state =
  let tip = Chain.tip t.chain in
  assert (tip.height = r - 1);
  let seed_entry = seed_entry_for_round t ~tip ~r in
  let weights = (weight_entry t ~seed_entry).balances_after in
  let total_weight = Balances.total weights in
  let prev_hash = tip.hash in
  let p = t.config.params in
  let vctx : Vote.validation_ctx =
    {
      sig_scheme = t.config.sig_scheme;
      vrf_scheme = t.config.vrf_scheme;
      sig_pk_of = Identity.sig_pk;
      vrf_pk_of = Identity.vrf_pk;
      seed = seed_entry.seed;
      total_weight;
      weight_of = Balances.balance weights;
      last_block_hash = prev_hash;
      tau_of_step = (function Vote.Final -> p.tau_final | _ -> p.tau_step);
    }
  in
  {
    round = r;
    record = Metrics.start_round t.metrics ~user:t.index ~round:r ~now:(Engine.now t.engine);
    prev_hash;
    seed = seed_entry.seed;
    total_weight;
    weights;
    empty_hash = Proposal.empty_hash ~round:r ~prev_hash;
    vctx;
    proposed_blocks = Hashtbl.create 8;
    blocks_by_proposer = Hashtbl.create 8;
    equivocators = Hashtbl.create 4;
    vote_weight_cache = Hashtbl.create 256;
    best_priority = None;
    first_priority_at = None;
    ba = None;
    waiting_for_block = false;
    last_step_started = Engine.now t.engine;
    decided_value = None;
    decided_final = false;
    completed = false;
    classified = false;
    buffered_votes = [];
    fetch = None;
  }

(* ------------------------------------------------------------------ *)
(* Vote creation and (byzantine) equivocation.                         *)
(* ------------------------------------------------------------------ *)

let make_vote (t : t) (rs : round_state) ~(step : Vote.step) ~(value : string) :
    Vote.t option =
  let p = t.config.params in
  let tau = match step with Vote.Final -> p.tau_final | _ -> p.tau_step in
  Vote.make ~signer:t.identity.signer ~prover:t.identity.prover
    ~pk:t.identity.pk ~seed:rs.seed ~tau ~w:(Balances.balance rs.weights t.identity.pk)
    ~total_weight:rs.total_weight ~round:rs.round ~step ~prev_hash:rs.prev_hash ~value

(* An alternative value for double-voting: some other proposed block,
   or the empty block if the primary vote already names a block. *)
let alternative_value (rs : round_state) ~(value : string) : string option =
  if not (String.equal value rs.empty_hash) then Some rs.empty_hash
  else
    Hashtbl.fold
      (fun h _ acc -> if String.equal h value then acc else Some h)
      rs.proposed_blocks None

let send_vote (t : t) (rs : round_state) (v : Vote.t) : unit =
  broadcast t (Message.Ba_vote v);
  match t.config.byzantine with
  | Some { double_vote = true; _ } -> (
    match alternative_value rs ~value:v.value with
    | None -> ()
    | Some alt -> (
      match make_vote t rs ~step:v.step ~value:alt with
      | None -> ()
      | Some v' ->
        (* Show the conflicting vote to half of our peers directly; the
           gossip id is shared, so each honest relay forwards whichever
           version reached it first (section 8.4's relay rule). *)
        let nt = net t in
        List.iteri
          (fun i dst -> if i mod 2 = 1 then nt.net_send_to ~dst (Message.Ba_vote v'))
          (nt.net_peers ())))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* BA* wiring.                                                         *)
(* ------------------------------------------------------------------ *)

let vote_weight (_t : t) (rs : round_state) (v : Vote.t) : int =
  (* The cache key covers the full vote content, not just the gossip
     id (round, step, voter): a corrupted variant sharing an id with
     an honest vote must not poison the cache with weight 0 and
     suppress the honest copy when it arrives later. *)
  let key = Sha256.digest_concat [ Vote.signed_body v; v.voter_pk; v.signature ] in
  match Hashtbl.find_opt rs.vote_weight_cache key with
  | Some w -> w
  | None ->
    let w = Vote.validate rs.vctx v in
    Hashtbl.replace rs.vote_weight_cache key w;
    w

let rec apply_ba_actions (t : t) (rs : round_state) (actions : Ba_star.action list) : unit =
  let now = Engine.now t.engine in
  List.iter
    (fun action ->
      match action with
      | Ba_star.Broadcast v ->
        send_vote t rs v;
        (* Count our own vote locally (we do not gossip to ourselves). *)
        deliver_to_ba t rs v
      | Ba_star.Set_timer { token; delay } ->
        Metrics.record_step_duration t.metrics (now -. rs.last_step_started);
        let tr = tracer t in
        if Trace.enabled tr then
          Trace.span tr ~node:t.index ~incarnation:t.incarnation ~round:rs.round
            ~step:token ~start_ts:rs.last_step_started ~ts:now ~cat:"step" ~name:"ba_step"
            ();
        rs.last_step_started <- now;
        (* The closure captures this round's machine; stale tokens are
           filtered inside it, so a pipelined previous round still gets
           its final-classification timeout after [t.current] moves on. *)
        sched t ~delay (fun () ->
            match rs.ba with
            | Some ba -> apply_ba_actions t rs (Ba_star.handle ba (Ba_star.Timer token))
            | None -> ())
      | Ba_star.Bin_decided { value; bin_steps } ->
        rs.record.ba_done <- now;
        rs.record.steps_taken <- bin_steps;
        let tr = tracer t in
        if Trace.enabled tr && not (Float.is_nan rs.record.proposal_done) then
          Trace.span tr ~node:t.index ~incarnation:t.incarnation ~round:rs.round
            ~start_ts:rs.record.proposal_done ~ts:now ~cat:"phase" ~name:"ba_no_final"
            ~detail:[ ("bin_steps", string_of_int bin_steps) ]
            ();
        if t.config.pipeline_final then eager_complete t rs ~value
      | Ba_star.Decided { value; final; bin_steps = _ } -> decide t rs ~value ~final
      | Ba_star.Hang ->
        let is_current =
          match t.current with Some c -> c == rs | None -> false
        in
        if not is_current then
          (* A pipelined previous round timing out of its final
             classification: the round stays tentative, the node has
             already moved on (or stopped) - not a node hang. *)
          Log.debug (fun m ->
              m "node %d: round %d classification timed out (stays tentative)"
                t.index rs.round)
        else if
          t.config.resync_enabled
          && (not t.config.recovery_enabled)
          && t.resync = None
        then begin
          (* MaxSteps without the section 8.2 protocol: treat it as
             having fallen behind and rejoin via live catch-up. *)
          Log.warn (fun m ->
              m "node %d hit MaxSteps in round %d; resyncing" t.index rs.round);
          begin_resync t
        end
        else begin
          t.hung <- true;
          Log.warn (fun m -> m "node %d hung in round %d (MaxSteps)" t.index rs.round)
        end)
    actions

and deliver_to_ba (t : t) (rs : round_state) (v : Vote.t) : unit =
  match rs.ba with
  | Some ba -> apply_ba_actions t rs (Ba_star.handle ba (Ba_star.Deliver v))
  | None -> rs.buffered_votes <- v :: rs.buffered_votes

(* Start BA* once the proposal phase settles on an initial block hash. *)
and start_ba (t : t) (rs : round_state) ~(hblock : string) : unit =
  if rs.ba <> None then ()
  else begin
    rs.record.proposal_done <- Engine.now t.engine;
    let tr = tracer t in
    if Trace.enabled tr then
      Trace.span tr ~node:t.index ~incarnation:t.incarnation ~round:rs.round
        ~start_ts:rs.record.started ~ts:rs.record.proposal_done ~cat:"phase"
        ~name:"proposal" ();
    rs.waiting_for_block <- false;
    let ctx : Ba_star.ctx =
      {
        params = t.config.params;
        round = rs.round;
        empty_hash = rs.empty_hash;
        my_votes =
          (fun ~step ~value ->
            match make_vote t rs ~step ~value with None -> [] | Some v -> [ v ]);
        validate = (fun v -> vote_weight t rs v);
      }
    in
    let ba = Ba_star.create ctx in
    rs.ba <- Some ba;
    rs.last_step_started <- Engine.now t.engine;
    let buffered = List.rev rs.buffered_votes in
    rs.buffered_votes <- [];
    List.iter (fun v -> apply_ba_actions t rs (Ba_star.handle ba (Ba_star.Deliver v))) buffered;
    apply_ba_actions t rs (Ba_star.handle ba (Ba_star.Start hblock))
  end

(* ------------------------------------------------------------------ *)
(* Round completion.                                                   *)
(* ------------------------------------------------------------------ *)

(* Resolve the agreed hash to a block and complete; shared by the
   normal (post-classification) and pipelined (post-BinaryBA) paths. *)
and resolve_and_complete (t : t) (rs : round_state) ~(value : string) : unit =
  if String.equal value rs.empty_hash then
    complete_round t rs (Block.empty ~round:rs.round ~prev_hash:rs.prev_hash)
  else begin
    match Hashtbl.find_opt rs.proposed_blocks value with
    | Some b -> complete_round t rs b
    | None ->
      (* BlockOfHash (Algorithm 3): we agreed on a hash whose pre-image
         we never received; fetch it from peers, re-asking on the
         backoff schedule (rotating the peer) until the reply lands -
         under message loss a single fire-and-forget request can vanish
         and strand the round forever. *)
      start_block_fetch t rs ~value
  end

and start_block_fetch (t : t) (rs : round_state) ~(value : string) : unit =
  if rs.fetch = None then begin
    let inc = t.incarnation in
    let request n =
      Message.Block_request
        { round = rs.round; block_hash = value; requester = t.index; attempt = n }
    in
    rs.fetch <-
      Some
        (Retry.start ~engine:t.engine ~rng:t.rng ~policy:t.config.retry
           ~attempt:(fun n ->
             if t.incarnation = inc && not rs.completed then
               if n = 0 then broadcast t (request n)
               else begin
                 Metrics.record_retry t.metrics;
                 let msg = request n in
                 match (net t).net_peers () with
                 | [] -> broadcast t msg
                 | peers ->
                   let dst = List.nth peers ((n - 1) mod List.length peers) in
                   (net t).net_send_to ~dst msg
               end)
           ~name:"block_fetch" ~registry:(Metrics.registry t.metrics)
           ~trace:(Metrics.trace t.metrics) ())
  end

(* Pipelined completion at BinaryBA* return: append the block and start
   the next round now; the final/tentative classification lands later
   through [decide]. *)
and eager_complete (t : t) (rs : round_state) ~(value : string) : unit =
  if not (rs.completed || rs.decided_value <> None) then begin
    rs.decided_value <- Some value;
    rs.decided_final <- false;
    resolve_and_complete t rs ~value
  end

and decide (t : t) (rs : round_state) ~(value : string) ~(final : bool) : unit =
  if rs.completed then begin
    (* Pipelined round: the chain already moved on; record the
       classification and upgrade finality. *)
    rs.classified <- true;
    rs.record.final <- final;
    if final then begin
      (match rs.decided_value with
      | Some v ->
        (match Chain.find t.chain v with
        | Some e -> Chain.mark_final t.chain e.hash
        | None -> ());
        (match rs.ba with
        | Some ba ->
          let fvotes = Ba_star.final_certificate_votes ba in
          if fvotes <> [] then
            Hashtbl.replace t.final_certificates rs.round
              (Certificate.make ~round:rs.round ~step:Vote.Final ~block_hash:v
                 ~votes:fvotes)
        | None -> ())
      | None -> ())
    end;
    match t.previous with
    | Some p when p.round = rs.round -> t.previous <- None
    | _ -> ()
  end
  else begin
    rs.classified <- true;
    rs.decided_value <- Some value;
    rs.decided_final <- final;
    resolve_and_complete t rs ~value
  end

and complete_round (t : t) (rs : round_state) (block : Block.t) : unit =
  if rs.completed then ()
  else begin
  rs.completed <- true;
  cancel_fetch rs;
  let now = Engine.now t.engine in
  rs.record.final_done <- now;
  rs.record.final <- rs.decided_final;
  let tr = tracer t in
  if Trace.enabled tr then begin
    if not (Float.is_nan rs.record.ba_done) then
      Trace.span tr ~node:t.index ~incarnation:t.incarnation ~round:rs.round
        ~start_ts:rs.record.ba_done ~ts:now ~cat:"phase" ~name:"final" ();
    Trace.span tr ~node:t.index ~incarnation:t.incarnation ~round:rs.round
      ~start_ts:rs.record.started ~ts:now ~cat:"round" ~name:"round"
      ~detail:
        [
          ("final", string_of_bool rs.decided_final);
          ("steps", string_of_int rs.record.steps_taken);
        ]
      ()
  end;
  if not rs.classified then t.previous <- Some rs;
  (match Chain.add t.chain block with
  | Ok _ | Error `Duplicate -> (
    match Chain.find t.chain (Block.hash block) with
    | Some entry ->
      Chain.set_tip t.chain entry.hash;
      if rs.decided_final then Chain.mark_final t.chain entry.hash
    | None -> assert false)
  | Error (`Unknown_parent | `Wrong_round _ | `Invalid_tx _) as e ->
    Log.err (fun m ->
        m "node %d: agreed block rejected by chain: %a" t.index Chain.pp_add_error
          (match e with Error err -> err | Ok _ -> assert false)));
  (* Store certificates (section 8.3). *)
  (match rs.ba with
  | Some ba ->
    let votes = Ba_star.certificate_votes ba in
    if votes <> [] then
      Hashtbl.replace t.certificates rs.round
        (Certificate.make ~round:rs.round
           ~step:(Vote.Bin (Ba_star.bin_steps ba))
           ~block_hash:(Block.hash block) ~votes);
    let fvotes = Ba_star.final_certificate_votes ba in
    if rs.decided_final && fvotes <> [] then
      Hashtbl.replace t.final_certificates rs.round
        (Certificate.make ~round:rs.round ~step:Vote.Final ~block_hash:(Block.hash block)
           ~votes:fvotes)
  | None -> ());
  Txpool.remove_committed t.txpool ~round:rs.round block.txs;
  (* Bound the pool under sustained traffic: evict committed ids past
     the retention watermark (the chain's nonce rule still rejects
     late replays) and drop queued transactions whose nonce the chain
     has already consumed - they can never apply. *)
  Txpool.expire t.txpool ~before_round:(rs.round - t.config.txpool_retention_rounds);
  (let committed = (Chain.tip t.chain).balances_after in
   ignore
     (Txpool.prune t.txpool ~stale:(fun tx ->
          tx.Transaction.nonce < Balances.nonce committed tx.Transaction.sender)));
  Log.debug (fun m ->
      m "node %d completed round %d (%s, %d bin steps) at %.2fs" t.index rs.round
        (if rs.decided_final then "final" else "tentative")
        rs.record.steps_taken now);
  (match t.on_round_complete with
  | Some f -> f t ~round:rs.round ~final:rs.decided_final
  | None -> ());
  maybe_checkpoint t;
  if rs.round >= t.config.max_round then begin
    t.stopped <- true;
    t.current <- None
  end
  else sched t ~delay:0.0 (fun () -> start_round t ~r:(rs.round + 1))
  end

(* ------------------------------------------------------------------ *)
(* Block proposal (section 6).                                         *)
(* ------------------------------------------------------------------ *)

and build_block (t : t) (rs : round_state) ~(variant : int) : Block.t =
  let tip = Chain.tip t.chain in
  let candidates =
    (* Non-destructive: a losing proposal must not cost the pool its
       transactions; commitment prunes pools via remove_committed. *)
    Txpool.select t.txpool
      ~max_bytes:(max 0 (t.config.block_target_bytes - Block.header_size_bytes))
  in
  (* Batch-check candidate signatures (one verify_batch equation when
     the pool is clean, bisection to exclude corrupt entries when not)
     so the proposed block always passes other nodes' signature
     check. *)
  let candidates =
    if t.config.verify_tx_sigs then begin
      let valid, rejected =
        Transaction.filter_valid_batch ~sig_pk_of:Identity.sig_pk
          ~scheme:t.config.sig_scheme candidates
      in
      if rejected <> [] then
        ignore
          (Txpool.prune t.txpool ~stale:(fun tx ->
               List.exists
                 (fun (bad : Transaction.t) ->
                   String.equal (Transaction.id bad) (Transaction.id tx))
                 rejected));
      valid
    end
    else candidates
  in
  (* Keep only transactions that apply cleanly in order, so the block
     always passes validation (racing nonces are simply left out). *)
  let txs =
    List.rev
      (fst
         (List.fold_left
            (fun (kept, st) tx ->
              match Balances.apply_tx st tx with
              | Ok st' -> (tx :: kept, st')
              | Error _ -> (kept, st))
            ([], tip.balances_after) candidates))
  in
  let tx_bytes = List.fold_left (fun a tx -> a + Transaction.size_bytes tx) 0 txs in
  (* [variant] perturbs the payload so an equivocating proposer's two
     versions really are different blocks (different hashes). *)
  let padding =
    max 0 (t.config.block_target_bytes - Block.header_size_bytes - tx_bytes) + variant
  in
  let seed, seed_proof =
    Proposal.next_seed ~prover:t.identity.prover ~current_seed:tip.seed ~round:rs.round
  in
  let role = Vote.proposer_role ~round:rs.round in
  let sel =
    Algorand_sortition.Sortition.select ~prover:t.identity.prover ~seed:rs.seed
      ~tau:t.config.params.tau_proposer ~role
      ~w:(Balances.balance rs.weights t.identity.pk) ~total_weight:rs.total_weight
  in
  {
    Block.header =
      {
        round = rs.round;
        prev_hash = rs.prev_hash;
        timestamp =
          (* Round-number timestamps make the header independent of the
             clock that ran the protocol: exact under the codec's ms
             encoding, so sim and wire runs hash identically. *)
          (if t.config.deterministic_ts then float_of_int rs.round
           else Engine.now t.engine);
        seed;
        seed_proof;
        proposer_pk = t.identity.pk;
        proposer_vrf_hash = sel.vrf_hash;
        proposer_vrf_proof = sel.vrf_proof;
      };
    txs;
    padding;
  }

and record_proposed_block (t : t) (rs : round_state) (b : Block.t) : unit =
  let h = Block.hash b in
  let proposer = b.header.proposer_pk in
  (match Hashtbl.find_opt rs.blocks_by_proposer proposer with
  | Some h' when not (String.equal h h') ->
    (* Conflicting versions from one proposer: the section 10.4
       optimization discards both and falls back to the empty block. *)
    Hashtbl.replace rs.equivocators proposer ()
  | _ -> ());
  Hashtbl.replace rs.blocks_by_proposer proposer h;
  Hashtbl.replace rs.proposed_blocks h b;
  ignore t

and try_propose (t : t) (rs : round_state) : unit =
  match
    Proposal.try_propose ~prover:t.identity.prover ~pk:t.identity.pk ~seed:rs.seed
      ~tau:t.config.params.tau_proposer ~round:rs.round ~prev_hash:rs.prev_hash
      ~w:(Balances.balance rs.weights t.identity.pk) ~total_weight:rs.total_weight
  with
  | None -> ()
  | Some prio ->
    let block = build_block t rs ~variant:0 in
    record_proposed_block t rs block;
    consider_priority t rs prio;
    broadcast t (Message.Priority prio);
    let equivocate =
      match t.config.byzantine with Some b -> b.equivocate_proposal | None -> false
    in
    if not equivocate then broadcast t (Message.Block_gossip block)
    else begin
      (* Equivocation attack (section 10.4): version A to half of our
         peers, version B to the other half. Relays forward whichever
         they saw first. *)
      let block_b = build_block t rs ~variant:1 in
      let nt = net t in
      nt.net_mark_seen (Message.Block_gossip block);
      List.iteri
        (fun i dst ->
          let b = if i mod 2 = 0 then block else block_b in
          nt.net_send_to ~dst (Message.Block_gossip b))
        (nt.net_peers ())
    end

and consider_priority (t : t) (rs : round_state) (p : Proposal.priority_msg) : unit =
  ignore t;
  match rs.best_priority with
  | Some best when not (Proposal.higher p best) -> ()
  | _ -> rs.best_priority <- Some p

(* Section 10.5 instrumentation: how long after the round started did
   the first *remote* proposer priority arrive? *)
and note_remote_priority (t : t) (rs : round_state) : unit =
  if rs.first_priority_at = None then begin
    rs.first_priority_at <- Some (Engine.now t.engine);
    Metrics.record_priority_gossip t.metrics (Engine.now t.engine -. rs.record.started)
  end

(* The proposal wait of section 6: lambda_stepvar (for others to finish
   the previous round) + lambda_priority (for the best priority to
   gossip), then wait up to lambda_block for the block itself. *)
and on_proposal_window_closed (t : t) (rs : round_state) : unit =
  if rs.ba <> None then ()
  else begin
    match rs.best_priority with
    | None -> start_ba t rs ~hblock:rs.empty_hash
    | Some best ->
      if Hashtbl.mem rs.equivocators best.proposer_pk then
        start_ba t rs ~hblock:rs.empty_hash
      else begin
        match Hashtbl.find_opt rs.blocks_by_proposer best.proposer_pk with
        | Some h -> start_ba t rs ~hblock:h
        | None ->
          rs.waiting_for_block <- true;
          sched t ~delay:t.config.params.lambda_block (fun () ->
              match t.current with
              | Some rs' when rs'.round = rs.round && rs.ba = None ->
                start_ba t rs ~hblock:rs.empty_hash
              | _ -> ())
      end
  end

and start_round (t : t) ~(r : int) : unit =
  if t.stopped || t.hung || t.down || t.resync <> None then ()
  else begin
    let rs = make_round_state t ~r in
    t.current <- Some rs;
    trace_instant t ~round:r "round.start";
    try_propose t rs;
    let p = t.config.params in
    sched t ~delay:(p.lambda_priority +. p.lambda_stepvar) (fun () ->
        match t.current with
        | Some rs' when rs'.round = r -> on_proposal_window_closed t rs
        | _ -> ());
    (* Replay messages that arrived while we were in earlier rounds. *)
    match Hashtbl.find_opt t.pending r with
    | None -> ()
    | Some msgs ->
      let replay = List.rev !msgs in
      Hashtbl.remove t.pending r;
      List.iter (fun m -> process_message t m) replay
  end

(* ------------------------------------------------------------------ *)
(* Block validation (section 8.1).                                     *)
(* ------------------------------------------------------------------ *)

and validate_block (t : t) (rs : round_state) (b : Block.t) : bool =
  let tip = Chain.tip t.chain in
  Block.round b = rs.round
  && String.equal (Block.prev_hash b) rs.prev_hash
  && (if t.config.deterministic_ts then b.header.timestamp = float_of_int rs.round
      else
        b.header.timestamp > tip.block.header.timestamp
        && b.header.timestamp <= Engine.now t.engine +. 1.0)
  && (match Algorand_ledger.Balances.apply_block tip.balances_after b.txs with
     | Ok _ -> true
     | Error _ -> false)
  && (not t.config.verify_tx_sigs
     || Transaction.verify_batch ~sig_pk_of:Identity.sig_pk ~scheme:t.config.sig_scheme
          b.txs)
  && Proposal.verify_next_seed ~vrf_scheme:t.config.vrf_scheme
       ~vrf_pk:(Identity.vrf_pk b.header.proposer_pk) ~current_seed:tip.seed
       ~round:rs.round ~seed:b.header.seed ~proof:b.header.seed_proof
  && Algorand_sortition.Sortition.verify ~scheme:t.config.vrf_scheme
       ~pk:(Identity.vrf_pk b.header.proposer_pk) ~vrf_hash:b.header.proposer_vrf_hash
       ~vrf_proof:b.header.proposer_vrf_proof ~seed:rs.seed
       ~tau:t.config.params.tau_proposer
       ~role:(Vote.proposer_role ~round:rs.round)
       ~w:(Balances.balance rs.weights b.header.proposer_pk)
       ~total_weight:rs.total_weight
     > 0

(* ------------------------------------------------------------------ *)
(* Message handling.                                                   *)
(* ------------------------------------------------------------------ *)

and process_message (t : t) (msg : Message.t) : unit =
  if t.down then ()
  else begin
    match msg with
    | Message.Round_request { from_round; requester; attempt = _ } ->
      (* Served from any live state except our own resync: chain and
         certificates survive round and recovery transitions. *)
      if t.resync = None then serve_round_request t ~from_round ~requester
    | Message.Round_reply { to_; current_round; items } -> (
      if to_ = t.index then begin
        match t.resync with
        | Some st -> process_round_reply t st ~current_round ~items
        | None -> ()
      end)
    | Message.Block_request { round; block_hash; requester; attempt = _ } ->
      (* Served independently of round state: a node that already
         stopped (or moved on) must still answer a straggler's fetch,
         or the last round's late deciders can never learn the block
         they agreed on. *)
      let reply b = (net t).net_send_to ~dst:requester (Message.Block_reply b) in
      (match t.current with
      | Some rs when round = rs.round -> (
        match Hashtbl.find_opt rs.proposed_blocks block_hash with
        | Some b -> reply b
        | None -> ())
      | _ -> (
        (* Old rounds come out of sharded storage (section 8.3). *)
        match Chain.find t.chain block_hash with
        | Some e when serves_round t ~round:e.height -> reply e.block
        | Some _ | None -> ()))
    | _ -> (
      match t.resync with
      | Some _ -> (
        (* Catching up: bank round-tagged traffic for replay once we
           rejoin; everything else waits for the next request. *)
        match msg with
        | Message.Tx tx -> ignore (Txpool.add t.txpool tx)
        | Message.Ba_vote v -> buffer t v.round msg
        | Message.Priority p -> buffer t p.round msg
        | Message.Block_gossip b | Message.Block_reply b ->
          buffer t (Block.round b) msg
        | _ -> ())
      | None -> (
        match t.recovering with
        | Some recovery -> process_recovery_message t recovery msg
        | None -> (
          match t.current with
          | None -> (
            (* Stopped - but a pipelined final round may still be
               awaiting its classification votes. *)
            match (msg, t.previous) with
            | Message.Ba_vote v, Some p when p.round = v.round && not p.classified
              ->
              deliver_to_ba t p v
            | _ -> ())
          | Some rs -> process_normal_message t rs msg)))
  end

and process_normal_message (t : t) (rs : round_state) (msg : Message.t) : unit =
  match msg with
    | Message.Tx tx -> ignore (Txpool.add t.txpool tx)
    | Message.Priority p ->
      if p.round > rs.round then buffer t p.round msg
      else if p.round = rs.round && String.equal p.prev_hash rs.prev_hash then begin
        if
          Proposal.validate ~vrf_scheme:t.config.vrf_scheme ~vrf_pk_of:Identity.vrf_pk
            ~seed:rs.seed ~tau:t.config.params.tau_proposer
            ~weight_of:(Balances.balance rs.weights) ~total_weight:rs.total_weight p
        then begin
          note_remote_priority t rs;
          consider_priority t rs p
        end
      end
    | Message.Block_gossip b | Message.Block_reply b ->
      if Block.round b > rs.round then buffer t (Block.round b) msg
      else if Block.round b = rs.round then begin
        if validate_block t rs b then begin
          record_proposed_block t rs b;
          let h = Block.hash b in
          (* A node blocked on the proposal, or one that already agreed
             on this hash, can now make progress. *)
          (match rs.decided_value with
          | Some v when String.equal v h -> complete_round t rs b
          | _ -> ());
          if rs.waiting_for_block && rs.ba = None then begin
            match rs.best_priority with
            | Some best when String.equal best.proposer_pk b.header.proposer_pk ->
              if Hashtbl.mem rs.equivocators best.proposer_pk then
                start_ba t rs ~hblock:rs.empty_hash
              else start_ba t rs ~hblock:h
            | _ -> ()
          end
        end
      end
    | Message.Ba_vote v ->
      if v.round > rs.round then begin
        buffer t v.round msg;
        (* Votes two or more rounds ahead mean the network moved on
           without us (one ahead is normal under pipelining): catch up
           via certified history instead of waiting to hang. *)
        if
          t.config.resync_enabled && v.round > rs.round + 1
          && v.round < recovery_round_base
          && t.resync = None && t.recovering = None
        then begin
          Log.debug (fun m ->
              m "node %d saw round-%d traffic while in round %d; resyncing"
                t.index v.round rs.round);
          begin_resync t
        end
      end
      else if v.round = rs.round then deliver_to_ba t rs v
      else begin
        (* With pipelining, the previous round's final-step votes are
           still relevant until it is classified. *)
        match t.previous with
        | Some p when p.round = v.round && not p.classified -> deliver_to_ba t p v
        | _ -> ()
      end
    | Message.Block_request _ ->
      (* Served in the state-independent dispatch above. *)
      ()
    | Message.Fork_proposal _ ->
      (* Recovery ticks are clock-synchronized, so by the time a fork
         proposal arrives we are either recovering (handled above) or
         healthy and not interested. *)
      ()
    | Message.Round_request _ | Message.Round_reply _ ->
      (* Handled before the per-round dispatch. *)
      ()

and buffer (t : t) (round : int) (msg : Message.t) : unit =
  match Hashtbl.find_opt t.pending round with
  | Some l -> l := msg :: !l
  | None -> Hashtbl.replace t.pending round (ref [ msg ])

(* ------------------------------------------------------------------ *)
(* Live catch-up (restart rejoin and laggard resync).                  *)
(*                                                                     *)
(* Section 8.3's catch-up, run as an online protocol: the node asks    *)
(* one peer at a time for the certified rounds above its tip, with     *)
(* exponential backoff and peer rotation so a lossy network or a dead  *)
(* peer only delays - never strands - the rejoin. Every reply is       *)
(* re-validated against our own chain before it is grafted.            *)
(* ------------------------------------------------------------------ *)

and begin_resync (t : t) : unit =
  (* Tear down any in-flight round: the incarnation bump silences every
     timer armed for it, so the abandoned round cannot fire into the
     rejoin. *)
  t.incarnation <- t.incarnation + 1;
  (match t.current with Some rs -> cancel_fetch rs | None -> ());
  t.current <- None;
  t.previous <- None;
  t.hung <- false;
  let st =
    {
      started_at = Engine.now t.engine;
      target_round = (Chain.tip t.chain).height;
      retry = None;
      requests_sent = 0;
      backtrack = 0;
    }
  in
  t.resync <- Some st;
  trace_instant t "resync.start";
  arm_resync_retry t st

and arm_resync_retry (t : t) (st : resync_state) : unit =
  (match st.retry with Some r -> Retry.cancel r | None -> ());
  let inc = t.incarnation in
  st.retry <-
    Some
      (Retry.start ~engine:t.engine ~rng:t.rng ~policy:t.config.retry
         ~attempt:(fun _ ->
           match t.resync with
           | Some st' when st' == st && t.incarnation = inc ->
             if st.requests_sent > 0 then Metrics.record_retry t.metrics;
             send_round_request t st
           | _ -> ())
         ~name:"resync" ~registry:(Metrics.registry t.metrics)
         ~trace:(Metrics.trace t.metrics) ())

and send_round_request (t : t) (st : resync_state) : unit =
  let tip = Chain.tip t.chain in
  (* [backtrack] re-requests rounds below our tip after unproductive
     replies: a tip stranded on a dead tentative branch needs the
     divergence point rediscovered from the certified history. *)
  let from_round = max 1 (tip.height + 1 - st.backtrack) in
  st.requests_sent <- st.requests_sent + 1;
  let msg =
    Message.Round_request
      { from_round; requester = t.index; attempt = st.requests_sent }
  in
  let nt = net t in
  match nt.net_peers () with
  | [] -> broadcast t msg
  | peers ->
    let dst = List.nth peers ((st.requests_sent - 1) mod List.length peers) in
    nt.net_send_to ~dst msg

and serve_round_request (t : t) ~(from_round : int) ~(requester : int) : unit =
  if requester <> t.index then begin
    let tip = Chain.tip t.chain in
    (* Bounded reply: at most 8 rounds per request; the requester asks
       again from its new tip. Live rejoin ignores storage sharding -
       a node always serves the recent rounds it still holds. *)
    let upto = min tip.height (from_round + 7) in
    let rec collect r acc =
      if r > upto then List.rev acc
      else begin
        match
          ( Chain.ancestor_at t.chain ~hash:tip.hash ~height:r,
            Hashtbl.find_opt t.certificates r )
        with
        | Some e, Some c when String.equal c.Certificate.block_hash e.hash ->
          collect (r + 1) ((e.block, c) :: acc)
        | _ -> List.rev acc (* stop at the first gap: replies are contiguous *)
      end
    in
    let items = if from_round < 1 then [] else collect from_round [] in
    let current_round =
      match t.current with Some rs -> rs.round | None -> tip.height + 1
    in
    let msg = Message.Round_reply { to_ = requester; current_round; items } in
    (net t).net_send_to ~dst:requester msg
  end

and process_round_reply (t : t) (st : resync_state) ~(current_round : int)
    ~(items : (Block.t * Certificate.t) list) : unit =
  st.target_round <- max st.target_round (current_round - 1);
  let tip_before = (Chain.tip t.chain).hash in
  List.iter (fun (b, c) -> graft_certified t b c) items;
  let tip = Chain.tip t.chain in
  if tip.height >= st.target_round then finish_resync t st
  else if not (String.equal tip.hash tip_before) then begin
    (* Progress: reset backoff and ask for the next batch right away. *)
    st.backtrack <- 0;
    arm_resync_retry t st
  end
  else
    (* Nothing grafted: our tip may sit on a branch the network
       abandoned. Widen the request window; the armed backoff timer
       will send it. *)
    st.backtrack <- min tip.height (max 1 (2 * st.backtrack))

(* Validate and adopt one (block, certificate) pair from a reply. The
   certificate is checked in the context derived from the block's own
   parent (temporarily re-tipping the chain, since contexts are built
   at the tip), so replies can also heal a fork: a certified sibling
   of a block we hold tentatively replaces it as tip. *)
and graft_certified (t : t) (b : Block.t) (c : Certificate.t) : unit =
  let round = Block.round b in
  if String.equal c.Certificate.block_hash (Block.hash b) then begin
    match Chain.find t.chain (Block.prev_hash b) with
    | Some parent when parent.height = round - 1 ->
      let saved = (Chain.tip t.chain).hash in
      Chain.set_tip t.chain parent.hash;
      let ctx =
        History.validation_ctx ~params:t.config.params
          ~sig_scheme:t.config.sig_scheme ~vrf_scheme:t.config.vrf_scheme
          ~chain:t.chain ~round
      in
      let restore () = Chain.set_tip t.chain saved in
      (match Certificate.validate ~params:t.config.params ~ctx c with
      | Error _ -> restore ()
      | Ok () -> (
        match Chain.add t.chain b with
        | Ok e ->
          Chain.set_tip t.chain e.hash;
          Hashtbl.replace t.certificates round c
        | Error `Duplicate -> (
          match Chain.find t.chain (Block.hash b) with
          | Some e ->
            Chain.set_tip t.chain e.hash;
            Hashtbl.replace t.certificates round c
          | None -> restore ())
        | Error (`Unknown_parent | `Wrong_round _ | `Invalid_tx _) -> restore ()))
    | _ -> () (* unknown parent: backtracking will find the fork point *)
  end

and finish_resync (t : t) (st : resync_state) : unit =
  (match st.retry with Some r -> Retry.cancel r | None -> ());
  st.retry <- None;
  t.resync <- None;
  let latency = Engine.now t.engine -. st.started_at in
  Metrics.record_rejoin t.metrics latency;
  let tr = tracer t in
  if Trace.enabled tr then
    Trace.span tr ~node:t.index ~incarnation:t.incarnation ~start_ts:st.started_at
      ~ts:(Engine.now t.engine) ~cat:"node" ~name:"resync"
      ~detail:[ ("requests", string_of_int st.requests_sent) ]
      ();
  maybe_checkpoint t;
  let tip = Chain.tip t.chain in
  Log.debug (fun m ->
      m "node %d resynced to round %d in %.2fs (%d requests)" t.index tip.height
        latency st.requests_sent);
  if tip.height >= t.config.max_round then begin
    t.stopped <- true;
    t.current <- None
  end
  else if t.recovering = None && not t.stopped then
    sched t ~delay:0.0 (fun () ->
        if t.resync = None && t.recovering = None && t.current = None then
          start_round t ~r:((Chain.tip t.chain).height + 1))

(* ------------------------------------------------------------------ *)
(* Fork recovery (section 8.2).                                        *)
(*                                                                     *)
(* At every synchronized clock tick all users stop regular processing  *)
(* and run the recovery protocol: fork proposers (chosen by sortition  *)
(* under a recovery seed derived from a pre-fork block) propose their  *)
(* longest fork, everyone adopts the highest-priority proposal, and    *)
(* BA* decides on an empty block extending that fork. Seeds and        *)
(* weights come from the deepest *final* block - our stand-in for the  *)
(* paper's next-to-last b-period quantization; both pick a block from  *)
(* before any live fork (finality implies uniqueness), which is the    *)
(* property the protocol needs.                                        *)
(* ------------------------------------------------------------------ *)

and fork_proposer_role ~(attempt : int) : string =
  Printf.sprintf "fork-proposer|%d" attempt

and deepest_final (t : t) : Chain.entry =
  let tip = Chain.tip t.chain in
  List.fold_left
    (fun (best : Chain.entry) (e : Chain.entry) ->
      if e.final && e.height > best.height then e else best)
    (Chain.genesis_entry t.chain)
    (Chain.ancestry t.chain tip.hash)

and longest_leaf_above (t : t) (stable : Chain.entry) : Chain.entry =
  let candidates =
    List.filter
      (fun (e : Chain.entry) ->
        Chain.descends_from t.chain ~hash:e.hash ~ancestor:stable.hash)
      (Chain.leaves t.chain)
  in
  match candidates with
  | [] -> stable
  | first :: rest ->
    List.fold_left
      (fun (best : Chain.entry) (e : Chain.entry) ->
        if
          e.height > best.height
          || (e.height = best.height && String.compare e.hash best.hash < 0)
        then e
        else best)
      first rest

and engage_recovery (t : t) ~(attempt : int) : unit =
  t.hung <- false;
  (match t.current with Some rs -> cancel_fetch rs | None -> ());
  t.current <- None;
  t.recovery_generation <- t.recovery_generation + 1;
  let stable = deepest_final t in
  let rseed = Sha256.digest_concat [ "recovery"; stable.seed; string_of_int attempt ] in
  let rweights = stable.balances_after in
  let rs =
    {
      generation = t.recovery_generation;
      attempt;
      stable;
      rseed;
      rweights;
      rtotal_weight = Balances.total rweights;
      best_fork = None;
      fork_round = -1;
      rvote_round = -1;
      rempty_hash = "";
      rtip_hash = "";
      rba = None;
      rvctx = None;
      rbuffered = [];
    }
  in
  t.recovering <- Some rs;
  let p = t.config.params in
  (* Fork proposal, if sortition selects us. *)
  let sel =
    Algorand_sortition.Sortition.select ~prover:t.identity.prover ~seed:rseed
      ~tau:p.tau_proposer ~role:(fork_proposer_role ~attempt)
      ~w:(Balances.balance rweights t.identity.pk) ~total_weight:rs.rtotal_weight
  in
  (match Algorand_sortition.Sortition.best_priority ~vrf_hash:sel.vrf_hash ~j:sel.j with
  | None -> ()
  | Some priority ->
    let leaf = longest_leaf_above t stable in
    let suffix =
      Chain.ancestry t.chain leaf.hash
      |> List.rev
      |> List.filter (fun (e : Chain.entry) -> e.height > stable.height)
      |> List.map (fun (e : Chain.entry) -> e.block)
    in
    let f =
      {
        Message.attempt;
        proposer_pk = t.identity.pk;
        vrf_hash = sel.vrf_hash;
        vrf_proof = sel.vrf_proof;
        priority;
        suffix;
        tip_hash = leaf.hash;
      }
    in
    consider_fork rs f;
    broadcast t (Message.Fork_proposal f));
  sched t ~delay:(p.lambda_priority +. p.lambda_stepvar) (fun () ->
      match t.recovering with
      | Some rs' when rs'.generation = rs.generation -> adopt_fork t rs
      | _ -> ())

and consider_fork (rs : recovery_state) (f : Message.fork_proposal) : unit =
  match rs.best_fork with
  | Some best when String.compare best.priority f.priority >= 0 -> ()
  | _ -> rs.best_fork <- Some f

and validate_fork_proposal (t : t) (rs : recovery_state) (f : Message.fork_proposal) :
    bool =
  let p = t.config.params in
  f.attempt = rs.attempt
  && (let j =
        Algorand_sortition.Sortition.verify ~scheme:t.config.vrf_scheme
          ~pk:(Identity.vrf_pk f.proposer_pk) ~vrf_hash:f.vrf_hash
          ~vrf_proof:f.vrf_proof ~seed:rs.rseed ~tau:p.tau_proposer
          ~role:(fork_proposer_role ~attempt:rs.attempt)
          ~w:(Balances.balance rs.rweights f.proposer_pk)
          ~total_weight:rs.rtotal_weight
      in
      j > 0
      &&
      match Algorand_sortition.Sortition.best_priority ~vrf_hash:f.vrf_hash ~j with
      | Some pr -> String.equal pr f.priority
      | None -> false)
  &&
  match f.suffix with
  | [] -> String.equal f.tip_hash rs.stable.hash
  | first :: _ -> (
    (* The proposed fork must graft onto a descendant of the stable
       (final) block - anything branching below finality is rejected -
       and form a linked chain ending at the claimed tip. *)
    match Chain.find t.chain (Block.prev_hash first) with
    | None -> false
    | Some parent ->
      Chain.descends_from t.chain ~hash:parent.hash ~ancestor:rs.stable.hash
      &&
      let rec linked prev = function
        | [] -> String.equal prev f.tip_hash
        | (b : Block.t) :: rest ->
          String.equal (Block.prev_hash b) prev && linked (Block.hash b) rest
      in
      linked (Block.prev_hash first) f.suffix)

and adopt_fork (t : t) (rs : recovery_state) : unit =
  match rs.best_fork with
  | None -> abandon_recovery t rs
  | Some f ->
    let grafted =
      List.for_all
        (fun b ->
          match Chain.add t.chain b with
          | Ok _ | Error `Duplicate -> true
          | Error (`Unknown_parent | `Wrong_round _ | `Invalid_tx _) -> false)
        f.suffix
    in
    if (not grafted) || not (Chain.mem t.chain f.tip_hash) then abandon_recovery t rs
    else begin
      let tip = Option.get (Chain.find t.chain f.tip_hash) in
      rs.fork_round <- tip.height + 1;
      rs.rvote_round <- (recovery_round_base * rs.attempt) + rs.fork_round;
      rs.rtip_hash <- tip.hash;
      rs.rempty_hash <- Proposal.empty_hash ~round:rs.fork_round ~prev_hash:tip.hash;
      let p = t.config.params in
      let vctx : Vote.validation_ctx =
        {
          sig_scheme = t.config.sig_scheme;
          vrf_scheme = t.config.vrf_scheme;
          sig_pk_of = Identity.sig_pk;
          vrf_pk_of = Identity.vrf_pk;
          seed = rs.rseed;
          total_weight = rs.rtotal_weight;
          weight_of = Balances.balance rs.rweights;
          last_block_hash = tip.hash;
          tau_of_step = (function Vote.Final -> p.tau_final | _ -> p.tau_step);
        }
      in
      rs.rvctx <- Some vctx;
      let ctx : Ba_star.ctx =
        {
          params = p;
          round = rs.rvote_round;
          empty_hash = rs.rempty_hash;
          my_votes =
            (fun ~step ~value ->
              let tau =
                match step with Vote.Final -> p.tau_final | _ -> p.tau_step
              in
              match
                Vote.make ~signer:t.identity.signer ~prover:t.identity.prover
                  ~pk:t.identity.pk ~seed:rs.rseed ~tau
                  ~w:(Balances.balance rs.rweights t.identity.pk)
                  ~total_weight:rs.rtotal_weight ~round:rs.rvote_round ~step
                  ~prev_hash:rs.rtip_hash ~value
              with
              | Some v -> [ v ]
              | None -> []);
          validate = (fun v -> Vote.validate vctx v);
        }
      in
      let ba = Ba_star.create ctx in
      rs.rba <- Some ba;
      let buffered = List.rev rs.rbuffered in
      rs.rbuffered <- [];
      List.iter
        (fun v -> apply_recovery_actions t rs (Ba_star.handle ba (Ba_star.Deliver v)))
        buffered;
      apply_recovery_actions t rs (Ba_star.handle ba (Ba_star.Start rs.rempty_hash))
    end

and apply_recovery_actions (t : t) (rs : recovery_state) (actions : Ba_star.action list) :
    unit =
  List.iter
    (fun action ->
      match action with
      | Ba_star.Broadcast v ->
        broadcast t (Message.Ba_vote v);
        deliver_to_recovery_ba t rs v
      | Ba_star.Set_timer { token; delay } ->
        sched t ~delay (fun () ->
            match (t.recovering, rs.rba) with
            | Some rs', Some ba when rs'.generation = rs.generation ->
              apply_recovery_actions t rs (Ba_star.handle ba (Ba_star.Timer token))
            | _ -> ())
      | Ba_star.Bin_decided _ -> ()
      | Ba_star.Decided { value; final = _; bin_steps = _ } ->
        finish_recovery t rs ~value
      | Ba_star.Hang -> abandon_recovery t rs)
    actions

and deliver_to_recovery_ba (t : t) (rs : recovery_state) (v : Vote.t) : unit =
  match rs.rba with
  | Some ba -> apply_recovery_actions t rs (Ba_star.handle ba (Ba_star.Deliver v))
  | None -> rs.rbuffered <- v :: rs.rbuffered

and finish_recovery (t : t) (rs : recovery_state) ~(value : string) : unit =
  if not (String.equal value rs.rempty_hash) then abandon_recovery t rs
  else begin
    let b = Block.empty ~round:rs.fork_round ~prev_hash:rs.rtip_hash in
    (match Chain.add t.chain b with
    | Ok _ | Error `Duplicate -> ()
    | Error (`Unknown_parent | `Wrong_round _ | `Invalid_tx _) -> ());
    (match Chain.find t.chain (Block.hash b) with
    | Some e -> Chain.set_tip t.chain e.hash
    | None -> ());
    t.recovering <- None;
    t.recoveries_completed <- t.recoveries_completed + 1;
    Log.debug (fun m ->
        m "node %d recovered to round %d at %.1fs" t.index rs.fork_round
          (Engine.now t.engine));
    maybe_checkpoint t;
    if rs.fork_round >= t.config.max_round then t.stopped <- true
    else
      sched t ~delay:0.0 (fun () ->
          if t.recovering = None && not t.stopped && t.current = None then
            start_round t ~r:(rs.fork_round + 1))
  end

and abandon_recovery (t : t) (rs : recovery_state) : unit =
  if t.recovering <> None then begin
    t.recovering <- None;
    Log.debug (fun m ->
        m "node %d abandoned recovery attempt %d" t.index rs.attempt);
    (* Resume the stalled round; the next synchronized tick retries.
       Exception: a recovery attempt that found no quorum while we
       hold buffered traffic for rounds past the restart means the
       network finished this round without us and moved on - peers
       that already stopped never join recovery, so retrying the tick
       forever strands us. Rejoin by certified history instead. *)
    if not t.stopped then begin
      let tip = Chain.tip t.chain in
      if tip.height >= t.config.max_round then t.stopped <- true
      else begin
        let restart = tip.height + 1 in
        let observed_ahead =
          (* Synthetic recovery rounds in the buffer are evidence of
             peers *recovering*, not of the network being ahead. *)
          Hashtbl.fold
            (fun r _ acc -> acc || (r > restart && r < recovery_round_base))
            t.pending false
        in
        if t.config.resync_enabled && observed_ahead && t.resync = None then
          begin_resync t
        else start_round t ~r:restart
      end
    end
  end

and process_recovery_message (t : t) (rs : recovery_state) (msg : Message.t) : unit =
  match msg with
  | Message.Tx tx -> ignore (Txpool.add t.txpool tx)
  | Message.Fork_proposal f ->
    if validate_fork_proposal t rs f then consider_fork rs f
  | Message.Ba_vote v ->
    if rs.rba = None || v.round = rs.rvote_round then deliver_to_recovery_ba t rs v
  | Message.Priority _ | Message.Block_gossip _ | Message.Block_reply _
  | Message.Block_request _ | Message.Round_request _ | Message.Round_reply _ ->
    ()

(* Stateless plausibility check for votes we cannot fully validate yet
   (future rounds, resync, recovery): the signature must at least
   verify. Without this, blind-relay paths would mark a corrupted
   variant as seen - poisoning the dedup cache and suppressing the
   honest original, which shares its gossip id. Byzantine equivocation
   is unaffected: a double-vote is validly signed. *)
let vote_plausible (t : t) (v : Vote.t) : bool =
  t.config.sig_scheme.verify
    ~pk:(Identity.sig_pk v.voter_pk)
    ~msg:(Vote.signed_body v) ~signature:v.signature

(* Gossip relay gating (section 8.4): validate what can be validated at
   our current round; relay plausible near-future messages so laggards
   do not partition the overlay; drop stale rounds. *)
let gossip_validate (t : t) (msg : Message.t) : bool =
  if t.down then false
  else
  match msg with
  | Message.Round_request _ | Message.Round_reply _ ->
    (* Point-to-point catch-up traffic: never relayed by the overlay,
       but delivery still requires passing validation. *)
    true
  | Message.Ba_vote v when t.resync <> None -> vote_plausible t v
  | _ when t.resync <> None ->
    (* We are behind: everything current is plausibly ahead of us.
       Relay it rather than partition the overlay around a laggard. *)
    true
  | _ -> (
  match (t.recovering, t.current) with
  | Some _, _ ->
    (* During recovery, relay recovery traffic and anything we cannot
       judge yet; regular-round traffic is stale by construction. *)
    (match msg with
    | Message.Ba_vote v -> vote_plausible t v
    | Message.Tx _ | Message.Fork_proposal _
    | Message.Block_request _ | Message.Block_reply _
    | Message.Round_request _ | Message.Round_reply _ ->
      true
    | Message.Priority _ | Message.Block_gossip _ -> false)
  | None, None -> (
    match msg with
    | Message.Fork_proposal _ -> true
    | Message.Ba_vote v -> (
      match t.previous with
      | Some p when p.round = v.round && not p.classified -> vote_weight t p v > 0
      | _ -> false)
    | Message.Block_request _ ->
      (* A stopped node still serves block fetches: the last round's
         late deciders depend on someone answering. *)
      true
    | _ -> false)
  | None, Some rs -> (
    match msg with
    | Message.Tx _ -> true
    | Message.Priority p -> p.round >= rs.round
    | Message.Block_gossip b ->
      (* Priority-based block discard (section 6): relay a block only
         if it comes from the highest-priority proposer seen so far,
         so the network carries ~one full block per round instead of
         tau_proposer of them. *)
      Block.round b > rs.round
      || Block.round b = rs.round
         && (match rs.best_priority with
            | None -> true
            | Some best -> String.equal b.header.proposer_pk best.proposer_pk)
    | Message.Ba_vote v ->
      if v.round > rs.round then vote_plausible t v
      else if v.round = rs.round then vote_weight t rs v > 0
      else (
        match t.previous with
        | Some p when p.round = v.round && not p.classified -> vote_weight t p v > 0
        | _ -> false)
    | Message.Block_request _ | Message.Block_reply _ -> true
    | Message.Fork_proposal _ -> true
    | Message.Round_request _ | Message.Round_reply _ -> true))

(* CPU model: message processing is serialized through one core with a
   per-kind cost; with the default sub-millisecond costs this matters
   only when thousands of votes land at once (the very effect the paper
   hit at 500k users, section 10.1). *)
let cpu_cost (t : t) (msg : Message.t) : float =
  match msg with
  | Message.Ba_vote _ -> t.config.cpu_vote_verify_s
  | Message.Block_gossip _ | Message.Block_reply _ | Message.Fork_proposal _
  | Message.Round_reply _ ->
    t.config.cpu_block_verify_s
  | Message.Tx _ | Message.Priority _ | Message.Block_request _
  | Message.Round_request _ ->
    0.0

let deliver (t : t) ~(src : int) (msg : Message.t) : unit =
  ignore src;
  if t.down then ()
  else begin
    let cost = cpu_cost t msg in
    if cost <= 0.0 then process_message t msg
    else begin
      let now = Engine.now t.engine in
      let start = Float.max now t.cpu_free_at in
      t.cpu_free_at <- start +. cost;
      (* Incarnation-guarded: a message sitting in the modeled CPU queue
         when the node crashes must not surface after the restart. *)
      sched t ~delay:(start +. cost -. now) (fun () -> process_message t msg)
    end
  end

let start (t : t) : unit =
  if t.config.recovery_enabled && t.config.params.recovery_interval > 0.0 then begin
    (* Loosely synchronized clocks: everyone kicks off recovery at the
       same absolute multiples of the interval (section 8.2). *)
    let interval = t.config.params.recovery_interval in
    let rec tick k () =
      if not t.stopped then begin
        (* A crashed node misses its ticks; a resyncing one rejoins
           through catch-up instead. The tick chain itself persists
           across crashes (it belongs to the node, not a round). *)
        if (not t.down) && t.resync = None then engage_recovery t ~attempt:k;
        Engine.at t.engine ~time:(float_of_int (k + 1) *. interval) (tick (k + 1))
      end
    in
    Engine.at t.engine ~time:interval (tick 1)
  end;
  start_round t ~r:1

(* Population-engine entry points: a per-round materialized node is
   handed a clone of the canonical certified prefix and starts at the
   round after its tip, instead of replaying from genesis. *)
let adopt_chain (t : t) (chain : Chain.t) : unit =
  if t.current <> None || t.stopped then
    invalid_arg "Node.adopt_chain: node already running";
  t.chain <- chain

let start_from_tip (t : t) : unit =
  let tip = Chain.tip t.chain in
  if tip.height >= t.config.max_round then t.stopped <- true
  else start_round t ~r:(tip.height + 1)

let recoveries_completed (t : t) : int = t.recoveries_completed
let is_recovering (t : t) : bool = t.recovering <> None

let set_on_round_complete (t : t) f : unit = t.on_round_complete <- Some f

(* Adaptive corruption (Wang, "Another Look at ALGORAND"): the
   adversary turns a node byzantine *mid-run*, after its VRF proof has
   revealed it as a committee member. Only future sends are affected:
   votes already broadcast were signed and sent, and the section 11
   ephemeral-key discipline means the step key behind them is erased,
   so corruption cannot retro-equivocate a past step - which is exactly
   the race this hook lets the harness model. *)
let set_byzantine (t : t) (b : byzantine option) : unit =
  t.config <- { t.config with byzantine = b }

(* Submit a transaction at this node (entering its pool and the gossip
   network), as a wallet would. *)
let submit_tx (t : t) (tx : Transaction.t) : unit =
  if t.down then ()
  else if Txpool.add t.txpool tx then broadcast t (Message.Tx tx)

(* ------------------------------------------------------------------ *)
(* Crash and restart.                                                  *)
(* ------------------------------------------------------------------ *)

(* A crash is total: every in-memory structure is dropped, exactly as a
   killed process would lose them. Only [store_dir] (and the node's
   keys, which real deployments keep on disk too) survives. The
   incarnation bump makes every armed timer and queued CPU delivery
   from this life a no-op. *)
let crash (t : t) : unit =
  if not t.down then begin
    t.down <- true;
    t.crash_count <- t.crash_count + 1;
    t.incarnation <- t.incarnation + 1;
    (match t.current with Some rs -> cancel_fetch rs | None -> ());
    (match t.resync with
    | Some st -> (match st.retry with Some r -> Retry.cancel r | None -> ())
    | None -> ());
    t.resync <- None;
    t.current <- None;
    t.previous <- None;
    t.recovering <- None;
    Hashtbl.reset t.pending;
    Hashtbl.reset t.certificates;
    Hashtbl.reset t.final_certificates;
    t.chain <- Chain.create t.genesis;
    t.txpool <- Txpool.create ();
    t.cpu_free_at <- 0.0;
    t.hung <- false;
    t.stopped <- false;
    t.last_checkpoint <- 0;
    Metrics.record_crash t.metrics;
    trace_instant t "crash";
    Log.debug (fun m -> m "node %d crashed at %.2fs" t.index (Engine.now t.engine))
  end

(* Restart: reload the durable checkpoint (never trusted - every
   certificate is re-validated by History.replay, and a corrupt or
   truncated tail costs only the tail), then rejoin through live
   catch-up. *)
let restart (t : t) : unit =
  if t.down then begin
    t.down <- false;
    t.incarnation <- t.incarnation + 1;
    t.cpu_free_at <- Engine.now t.engine;
    Metrics.record_restart t.metrics;
    trace_instant t "restart";
    (match t.config.store_dir with
    | None -> ()
    | Some dir ->
      let items, err = Disk_store.load dir in
      (match err with
      | Some e ->
        Log.debug (fun m ->
            m "node %d: store truncated: %a" t.index Disk_store.pp_load_error e)
      | None -> ());
      (* Replay what validates; on a failure, retry with the prefix
         below the offending round so a bad tail costs only the tail. *)
      let rec replay_prefix items =
        if items = [] then ()
        else begin
          match
            History.replay ~params:t.config.params ~sig_scheme:t.config.sig_scheme
              ~vrf_scheme:t.config.vrf_scheme ~genesis:t.genesis items
          with
          | Ok chain ->
            t.chain <- chain;
            List.iter
              (fun ({ block; certificate } : History.item) ->
                Hashtbl.replace t.certificates (Block.round block) certificate)
              items;
            t.last_checkpoint <- (Chain.tip chain).height
          | Error e ->
            Log.warn (fun m ->
                m "node %d: checkpoint replay: %a" t.index History.pp_error e);
            let bad =
              match e with
              | `Round (r, _) | `Chain (r, _) | `Hash_mismatch r -> r
              | `Final_certificate _ -> 0
            in
            replay_prefix
              (List.filter
                 (fun ({ block; _ } : History.item) -> Block.round block < bad)
                 items)
        end
      in
      replay_prefix items);
    Log.debug (fun m ->
        m "node %d restarted at %.2fs with %d durable rounds" t.index
          (Engine.now t.engine)
          (Chain.tip t.chain).height);
    if t.config.resync_enabled then begin_resync t
    else begin
      let tip = Chain.tip t.chain in
      if tip.height >= t.config.max_round then t.stopped <- true
      else start_round t ~r:(tip.height + 1)
    end
  end

let is_down (t : t) : bool = t.down
let is_resyncing (t : t) : bool = t.resync <> None
let is_stopped (t : t) : bool = t.stopped
let crash_count (t : t) : int = t.crash_count
let incarnation (t : t) : int = t.incarnation
