(* Experiment harness: builds a complete simulated deployment - users
   with stakes, genesis, WAN topology, gossip overlay, workload,
   adversary - runs it for a number of rounds, and checks the safety
   property across all users (section 3: no two honest users accept
   conflicting blocks; no two different final blocks per round).

   This is the module every experiment in section 10 goes through. *)

open Algorand_crypto
module Params = Algorand_ba.Params
module Engine = Algorand_sim.Engine
module Metrics = Algorand_sim.Metrics
module Rng = Algorand_sim.Rng
module Topology = Algorand_netsim.Topology
module Network = Algorand_netsim.Network
module Gossip = Algorand_netsim.Gossip
module Adversary = Algorand_netsim.Adversary
module Trace = Algorand_obs.Trace
module Registry = Algorand_obs.Registry
module Transaction = Algorand_ledger.Transaction
module Genesis = Algorand_ledger.Genesis
module Chain = Algorand_ledger.Chain
module Block = Algorand_ledger.Block
module Balances = Algorand_ledger.Balances
module Workload = Algorand_ledger.Workload

type crypto = Real_crypto | Sim_crypto

(* Crash-restart fault injection: who goes down, when, for how long. *)
type crash_plan =
  | One_shot of { at : float; victims : int list; down_for : float }
      (** crash the listed nodes at [at]; each restarts [down_for] later *)
  | Periodic of {
      start : float;
      period : float;
      fraction : float;  (** of users, re-drawn randomly each tick *)
      down_for : float;
      until : float;
    }
  | Correlated of { at : float; fraction : float; down_for : float }
      (** one mass outage: a random fraction all crash (and later
          restart) together - the rack/AZ failure shape *)

type attack =
  | No_attack
  | Equivocate  (** section 10.4: malicious proposers + double-voting committee *)
  | Partition of { from_ : float; until : float }
      (** network split into two halves (weak synchrony) *)
  | Targeted_dos of { fraction : float; from_ : float; until : float }
      (** drop all traffic of a random user fraction *)
  | Delay_votes of { delay : float; from_ : float; until : float }
      (** the section 7.4 scheduling flavor: BinaryBA* votes are held
          past the step timeout, so steps resolve by timeout and the
          groups' next votes are steered by what trickled in; the
          common coin must get the network unstuck once delivery
          resumes *)
  | Crash_churn of crash_plan
      (** crash-restart fault injection: victims lose all in-memory
          state, reload their durable checkpoint, and rejoin via live
          catch-up while the rest of the network keeps going *)
  | Flood of {
      flooders : float;  (** fraction of users that turn flooder *)
      rate_per_s : float;  (** garbage frames per second per flooder *)
      frame_bytes : int;
      from_ : float;
      until : float;
    }
      (** malicious nodes pump garbage frames at their peers; the
          overlay's per-peer flood defense must contain them *)
  | Corrupt of { p : float; from_ : float; until : float }
      (** on-path byte corruption: each frame independently mangled
          with probability [p] during the window *)
  | Undecidable of { fraction : float; from_ : float; until : float }
      (** Conti et al.'s "undecidable messages": a random laggard
          fraction has every vote/block/priority message to it held
          just past the step horizon, so traffic arrives signed and
          sortition-valid - and unserviceable for the step it was for
          (stale deliveries across period boundaries) *)
  | Adaptive_corrupt of { fraction : float; from_ : float; until : float }
      (** Wang's adaptive corruption: the moment a node's VRF proof
          reveals it as a committee member (its vote crosses the wire),
          the adversary corrupts it - but only future steps equivocate,
          because the revealing step's ephemeral key is already erased
          (section 11); up to [fraction] of users, permanently *)

(* Workload shaping for the transaction stream: accounts are the
   deployment's own users (synthetic extra accounts would dilute
   sortition stake), so the profile only picks skew, mix and bursts. *)
type tx_profile = {
  tx_zipf_s : float;
  tx_mix : Workload.mix;
  tx_burst : Workload.burst option;
}

let hostile_profile =
  { tx_zipf_s = 1.1; tx_mix = Workload.hostile; tx_burst = None }

(* Wire mode: [`Typed] ships OCaml values through the simulated WAN
   (the fast path); [`Bytes] encodes every message via Codec at the
   sender and decodes it at each receiving hop - the hostile-wire
   configuration where corruption and garbage are survivable events
   rather than type errors. *)
type wire = [ `Typed | `Bytes ]

type config = {
  users : int;
  stake_per_user : int;
  stake_distribution : [ `Equal | `Linear ];
      (** [`Equal] matches the paper's setup (it maximizes message
          count); [`Linear] gives user i stake proportional to i+1,
          exercising weighted sortition and weighted peer selection. *)
  params : Params.t;
  block_bytes : int;
  rounds : int;
  rng_seed : int;
  crypto : crypto;
  bandwidth_bps : float;
  fanout : int;
  malicious_fraction : float;  (** fraction of users (hence stake) that is malicious *)
  attack : attack;
  stressors : attack list;
      (** additional attacks composed with [attack]: every element is
          wired through the same unified entrypoint, so the swarm can
          run churn x loss x flood x corrupt x byzantine in one
          deployment. Order matters only for tie-breaking adversary
          verdicts (first non-Deliver wins). *)
  tx_rate_per_s : float;
  tx_profile : tx_profile option;
      (** hostile workload shaping (Zipf skew, invalid/duplicate/
          self-pay mixes, bursts) layered on [tx_rate_per_s]; [None]
          keeps the legacy uniform all-valid Poisson stream, so
          committed artifacts of profile-less runs replay unchanged *)
  verify_tx_sigs : bool;
      (** nodes batch-verify transaction signatures on the block
          assembly and validation paths *)
  txpool_retention_rounds : int;
      (** committed-id retention before pool dedup-table eviction *)
  max_sim_time : float;
  cpu_vote_verify_s : float;
  cpu_block_verify_s : float;
  recovery_enabled : bool;  (** run the section 8.2 recovery protocol on clock ticks *)
  storage_shards : int;  (** section 8.3 sharded block/certificate serving *)
  pipeline_final : bool;  (** overlap final-step classification with the next round *)
  loss : float;  (** uniform message-loss probability, composed with any attack *)
  duplication : float;  (** uniform message-duplication probability *)
  store_root : string option;
      (** root directory for per-node durable checkpoints; [None] means
          no persistence, except under [Crash_churn], which creates (and
          owns) a temporary root so restarts have something to reload *)
  checkpoint_every : int;  (** persist every k completed rounds *)
  trace : Algorand_obs.Trace.t option;
      (** structured event trace shared by harness, nodes, gossip and
          retries; [None] builds a disabled trace internally *)
  wire : wire;
  gossip_limits : Gossip.limits option;
      (** per-peer flood defense (ingress queues, quotas, bans);
          [None] disables it. [Flood] runs supply a default. *)
  deterministic_ts : bool;
      (** round-number block timestamps: makes the ledger independent
          of the clock, so a sim run can be compared hash-for-hash with
          a wall-clock wire run of the same seed *)
}

let default =
  {
    users = 50;
    stake_per_user = 1_000;
    stake_distribution = `Equal;
    params = Params.paper;
    block_bytes = 1_000_000;
    rounds = 3;
    rng_seed = 42;
    crypto = Sim_crypto;
    bandwidth_bps = 20e6;
    fanout = 4;
    malicious_fraction = 0.0;
    attack = No_attack;
    stressors = [];
    tx_rate_per_s = 2.0;
    tx_profile = None;
    verify_tx_sigs = true;
    txpool_retention_rounds = 8;
    max_sim_time = 3_600.0;
    cpu_vote_verify_s = 0.0002;
    cpu_block_verify_s = 0.005;
    recovery_enabled = false;
    storage_shards = 1;
    pipeline_final = false;
    loss = 0.0;
    duplication = 0.0;
    store_root = None;
    checkpoint_every = 1;
    trace = None;
    wire = `Typed;
    gossip_limits = None;
    deterministic_ts = false;
  }

(* The unified stressor-composition entrypoint: the legacy single
   [attack] slot followed by every [stressors] element. All wiring in
   [build] - byzantine flags, durable stores, flood defense, in-flight
   adversaries, fault scheduling - iterates this list, so a composed
   run behaves exactly like each attack alone, superposed. *)
let attacks_of (config : config) : attack list =
  (match config.attack with No_attack -> [] | a -> [ a ]) @ config.stressors

type t = {
  config : config;
  engine : Engine.t;
  metrics : Metrics.t;
  identities : Identity.t array;
  nodes : Node.t array;
  gossip : Message.t Gossip.t;
  network : Message.t Gossip.packet Network.t;
  genesis : Genesis.t;
  store_root : string option;  (** resolved checkpoint root, if any *)
  owns_store : bool;  (** the root is a temp dir this harness created *)
  mutable workload : Workload.t option;
      (** the profile-driven generator, when [tx_profile] is set *)
  mutable legacy_submitted : int;
      (** transactions injected by the profile-less legacy stream *)
}

type safety_report = {
  agreement_rounds : int;  (** rounds on which every user agrees *)
  forked_rounds : int list;  (** rounds with conflicting blocks across users *)
  double_final : int list;  (** rounds with two different *final* blocks: must be [] *)
}

(* Post-run accounting of the crash-restart machinery. Meaningful for
   any run (all zeros without churn). *)
type churn_report = {
  crashes : int;
  restarts : int;
  rejoins : int;  (** completed live catch-ups *)
  mean_rejoin_s : float;
  max_rejoin_s : float;
  retries : int;  (** re-issued catch-up / block-fetch requests *)
  divergent_restarted : int list;
      (** restarted nodes whose chain disagrees with the majority chain
          at some height they both cover: must be [] *)
  unfinished : int list;
      (** nodes still down, resyncing, hung, or mid-round at quiescence:
          must be [] when every crash gets a restart *)
}

(* Post-run accounting of the hostile-wire machinery: what the ingress
   pipeline dropped and who got disconnected for it. All zeros on a
   clean typed run. *)
type wire_report = {
  decode_failures : int;
  quota_drops : int;
  banned_links : int;
  banned_nodes : int list;  (** nodes banned by at least one peer *)
  invalid_dropped : int;
  duplicates_dropped : int;
}

(* Transaction-path accounting: what the workload injected and what the
   canonical chain actually committed. [conservation_ok] re-checks the
   money-supply invariant on the tip balances - the self-payment
   inflation bug is the kind of error only this audit catches. *)
type tx_report = {
  submitted : int;
  submitted_invalid : int;
  submitted_duplicate : int;
  submitted_self_pay : int;
  committed : int;  (** transactions in node 0's canonical chain *)
  committed_self_pay : int;
  conservation_ok : bool;  (** tip balances sum to the genesis total *)
}

type result = {
  harness : t;
  sim_time : float;
  events : int;
  safety : safety_report;
  completion : Algorand_sim.Stats.summary;  (** per-user round completion times *)
  final_rounds : int;  (** rounds that reached final consensus somewhere *)
  tentative_rounds : int;
  churn : churn_report;
  wire : wire_report;
  txs : tx_report;
}

let schemes (c : crypto) : Signature_scheme.scheme * Vrf.scheme =
  match c with
  | Real_crypto -> (Signature_scheme.ed25519, Vrf.ecvrf)
  | Sim_crypto -> (Signature_scheme.sim, Vrf.sim)

let rec mkdir_p (dir : string) : unit =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* Distinct auto store roots even for identical configs run twice in
   one process (torture tests sweep hundreds of seeds). *)
let store_instance = ref 0

let rec rm_rf (path : string) : unit =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let build (config : config) : t =
  let attacks = attacks_of config in
  let sig_scheme, vrf_scheme = schemes config.crypto in
  let identities =
    Array.init config.users (fun i ->
        Identity.generate ~sig_scheme ~vrf_scheme
          ~seed:(Printf.sprintf "user-%d-%d" config.rng_seed i))
  in
  let stakes =
    Array.init config.users (fun i ->
        match config.stake_distribution with
        | `Equal -> config.stake_per_user
        | `Linear -> config.stake_per_user * (i + 1))
  in
  let genesis =
    Genesis.make
      (Array.to_list (Array.mapi (fun i id -> (id.Identity.pk, stakes.(i))) identities))
  in
  let engine = Engine.create () in
  let trace = match config.trace with Some tr -> tr | None -> Trace.create () in
  let registry = Registry.create () in
  let metrics = Metrics.create ~registry ~trace ~users:config.users () in
  let rng = Rng.create config.rng_seed in
  let topology = Topology.create ~nodes:config.users (Rng.split rng "topology") in
  let network =
    Network.create ~bandwidth_bps:config.bandwidth_bps
      ~on_send:(fun ~src ~bytes -> Metrics.record_bytes_sent metrics ~user:src bytes)
      ~on_receive:(fun ~dst ~bytes -> Metrics.record_bytes_received metrics ~user:dst bytes)
      ~engine ~topology ()
  in
  let malicious_count =
    int_of_float (Float.round (config.malicious_fraction *. float_of_int config.users))
  in
  let malicious =
    (* Random subset so city assignment does not correlate with behavior. *)
    let l = Rng.sample_indices (Rng.split rng "malicious") ~n:config.users ~k:malicious_count in
    let s = Hashtbl.create 16 in
    List.iter (fun i -> Hashtbl.replace s i ()) l;
    s
  in
  (* Durable checkpoints: explicit root, or a temp root owned by this
     harness when churn needs one. *)
  let store_root, owns_store =
    match
      ( config.store_root,
        List.exists (function Crash_churn _ -> true | _ -> false) attacks )
    with
    | Some root, _ -> (Some root, false)
    | None, true ->
      incr store_instance;
      let root =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "algorand-churn-%d-%d-%d" (Unix.getpid ())
             config.rng_seed !store_instance)
      in
      (Some root, true)
    | None, false -> (None, false)
  in
  (match store_root with Some root -> mkdir_p root | None -> ());
  let retry_policy : Algorand_sim.Retry.policy =
    {
      base_delay = Float.max 0.5 config.params.lambda_priority;
      multiplier = 2.0;
      max_delay = Float.max 5.0 config.params.lambda_step;
      jitter = 0.2;
      max_attempts = 0;
    }
  in
  let node_config i : Node.config =
    {
      params = config.params;
      sig_scheme;
      vrf_scheme;
      block_target_bytes = config.block_bytes;
      max_round = config.rounds;
      byzantine =
        (if Hashtbl.mem malicious i && List.mem Equivocate attacks then
           Some { Node.equivocate_proposal = true; double_vote = true }
         else None);
      cpu_vote_verify_s = config.cpu_vote_verify_s;
      cpu_block_verify_s = config.cpu_block_verify_s;
      recovery_enabled = config.recovery_enabled;
      storage_shards = config.storage_shards;
      pipeline_final = config.pipeline_final;
      resync_enabled = true;
      store_dir =
        Option.map
          (fun root -> Filename.concat root (Printf.sprintf "node-%03d" i))
          store_root;
      checkpoint_every = config.checkpoint_every;
      retry = retry_policy;
      verify_tx_sigs = config.verify_tx_sigs;
      txpool_retention_rounds = config.txpool_retention_rounds;
      deterministic_ts = config.deterministic_ts;
    }
  in
  let nodes =
    Array.init config.users (fun i ->
        Node.create ~index:i ~identity:identities.(i) ~config:(node_config i) ~engine
          ~metrics
          ~rng:(Rng.split rng (Printf.sprintf "node-%d" i))
          ~genesis ())
  in
  let weights = Array.map float_of_int stakes in
  let gossip_config : Message.t Gossip.config =
    {
      msg_id = Message.id;
      validate = (fun node msg -> Node.gossip_validate nodes.(node) msg);
      deliver = (fun node ~src msg -> Node.deliver nodes.(node) ~src msg);
      fanout = config.fanout;
      point_to_point =
        (function
        | Message.Round_request _ | Message.Round_reply _ -> true
        | _ -> false);
    }
  in
  (* Hostile-wire mode: every message crosses the WAN as Codec bytes,
     decoded under limits derived from this experiment's own
     parameters. The decoder closure is what every receiving hop runs
     on untrusted ingress. *)
  let codec_limits = Codec.limits_of_params ~block_bytes:config.block_bytes config.params in
  let codec : Message.t Gossip.codec option =
    match config.wire with
    | `Typed -> None
    | `Bytes ->
      Some { Gossip.enc = Codec.encode; dec = Codec.decode ~limits:codec_limits }
  in
  (* Flood runs get the defense on by default; explicit limits win.
     Honest relay traffic grows with the deployment (every message
     crosses every link, bursting at step boundaries), so the
     auto-enabled quota and drain scale with the user count - a flat
     quota at 50 users has honest peers banning each other. Garbage
     floods are still caught immediately by the decode-fail score. *)
  let gossip_limits =
    match
      ( config.gossip_limits,
        List.exists (function Flood _ -> true | _ -> false) attacks )
    with
    | (Some _ as l), _ -> l
    | None, true ->
      Some
        {
          Gossip.default_limits with
          quota_msgs = max Gossip.default_limits.quota_msgs (20 * config.users);
          drain_per_s =
            Float.max Gossip.default_limits.drain_per_s
              (100.0 *. float_of_int config.users);
        }
    | None, false -> None
  in
  let gossip =
    Gossip.create ~registry ~trace ?codec ?limits:gossip_limits ~net:network
      ~rng:(Rng.split rng "gossip") ~weights gossip_config
  in
  Array.iter (fun n -> Node.set_gossip n gossip) nodes;
  (* Replace gossip peers each round (section 8.4), keyed off node 0's
     progress as the round clock. *)
  Node.set_on_round_complete nodes.(0) (fun _ ~round:_ ~final:_ ->
      Gossip.redraw gossip ~weights);
  (* Network adversary: the configured attack composed with the uniform
     loss and duplication faults (first non-Deliver verdict wins). *)
  (* The in-flight adversaries now see packets; content-directed ones
     (Delay_votes) peek inside, decoding Raw frames the same way a
     receiver would. *)
  let msg_of_packet : Message.t Gossip.packet -> Message.t option = function
    | Gossip.Plain m -> Some m
    | Gossip.Raw s -> Codec.decode ~limits:codec_limits s
  in
  (* Per-attack Rng split labels: the first attack keeps the legacy
     label so existing single-attack runs replay bit-identically;
     later stressors get a "-<idx>" suffix. [Rng.split] is stateless
     (derived from parent state + label), so the extra splits never
     perturb any existing stream. *)
  let lbl idx base = if idx = 0 then base else Printf.sprintf "%s-%d" base idx in
  let adversary_of idx (a : attack) :
      Message.t Gossip.packet Network.adversary option =
    match a with
    | No_attack | Equivocate | Crash_churn _ | Flood _ -> None
    | Corrupt { p; from_; until } ->
      let corrupt = Adversary.corrupt ~rng:(Rng.split rng (lbl idx "corrupt")) ~p in
      Some
        (fun ~now ~src ~dst pkt ->
          if now >= from_ && now < until then corrupt ~now ~src ~dst pkt
          else Network.Deliver)
    | Delay_votes { delay; from_; until } ->
      Some
        (fun ~now ~src:_ ~dst:_ pkt ->
          if now < from_ || now >= until then Network.Deliver
          else
            match msg_of_packet pkt with
            | Some (Message.Ba_vote { step = Algorand_ba.Vote.Bin _; _ }) ->
              Network.Delay delay
            | _ -> Network.Deliver)
    | Partition { from_; until } ->
      let group_of i = if i < config.users / 2 then 0 else 1 in
      Some
        (fun ~now ~src ~dst msg ->
          if now >= from_ then Adversary.partition ~group_of ~until ~now ~src ~dst msg
          else Network.Deliver)
    | Targeted_dos { fraction; from_; until } ->
      let k = int_of_float (fraction *. float_of_int config.users) in
      let targets = Hashtbl.create 16 in
      List.iter
        (fun i -> Hashtbl.replace targets i ())
        (Rng.sample_indices (Rng.split rng (lbl idx "dos")) ~n:config.users ~k);
      Some
        (Adversary.target_nodes
           ~targeted:(fun i -> Hashtbl.mem targets i)
           ~active:(fun now -> now >= from_ && now < until))
    | Undecidable { fraction; from_; until } ->
      (* Conti et al.'s undecidable messages: protocol traffic to the
         chosen laggards is held just past the step horizon. Every
         delivery is still signed and sortition-valid - it is merely
         for a step the receiver has already timed out of, so honest
         nodes must absorb streams of valid-but-unserviceable votes
         and blocks across period boundaries without wedging. *)
      let k =
        min (config.users - 1)
          (max 1 (int_of_float (Float.round (fraction *. float_of_int config.users))))
      in
      let laggards = Hashtbl.create 16 in
      List.iter
        (fun i -> Hashtbl.replace laggards i ())
        (Rng.sample_indices (Rng.split rng (lbl idx "undecidable")) ~n:config.users ~k);
      let stale_delay = config.params.lambda_step *. 1.5 in
      Some
        (fun ~now ~src:_ ~dst pkt ->
          if now < from_ || now >= until || not (Hashtbl.mem laggards dst) then
            Network.Deliver
          else
            match msg_of_packet pkt with
            | Some (Message.Ba_vote _ | Message.Block_gossip _ | Message.Priority _)
              ->
              Network.Delay stale_delay
            | _ -> Network.Deliver)
    | Adaptive_corrupt { fraction; from_; until } ->
      (* Wang-style adaptive corruption: an observing adversary watches
         the wire and corrupts a committee member the moment its vote
         (hence its VRF proof) reveals it. The corruption only flips
         the node's byzantine flags for *future* sends -
         [Node.set_byzantine] cannot retro-sign the revealing step,
         which is exactly the section 11 guarantee: the ephemeral key
         for that step is erased before the adversary can use it. *)
      let index_of_pk = Hashtbl.create config.users in
      Array.iteri
        (fun i (id : Identity.t) -> Hashtbl.replace index_of_pk id.Identity.pk i)
        identities;
      let budget =
        ref (int_of_float (Float.round (fraction *. float_of_int config.users)))
      in
      let corrupted = Hashtbl.create 8 in
      Some
        (fun ~now ~src:_ ~dst:_ pkt ->
          (if now >= from_ && now < until && !budget > 0 then
             match msg_of_packet pkt with
             | Some (Message.Ba_vote v) -> (
               match Hashtbl.find_opt index_of_pk v.Algorand_ba.Vote.voter_pk with
               | Some i when not (Hashtbl.mem corrupted i) ->
                 Hashtbl.replace corrupted i ();
                 decr budget;
                 Node.set_byzantine nodes.(i)
                   (Some { Node.equivocate_proposal = true; double_vote = true })
               | _ -> ())
             | _ -> ());
          Network.Deliver)
  in
  let attack_adversaries =
    List.concat
      (List.mapi (fun idx a -> Option.to_list (adversary_of idx a)) attacks)
  in
  let faults =
    (if config.loss > 0.0 then
       [ Adversary.uniform_loss ~rng:(Rng.split rng "loss") ~p:config.loss ]
     else [])
    @
    if config.duplication > 0.0 then
      [
        Adversary.duplicate ~rng:(Rng.split rng "dup") ~p:config.duplication
          ~window:0.05;
      ]
    else []
  in
  (match attack_adversaries @ faults with
  | [] -> ()
  | [ a ] -> Network.set_adversary network a
  | many -> Network.set_adversary network (Adversary.compose many));
  (* Flood attack: a random subset of users starts pumping garbage
     frames at its peers for the window. Flooders keep running the
     protocol normally otherwise - the worst case for detection, since
     their honest traffic is interleaved with the garbage. *)
  List.iteri
    (fun idx a ->
      match a with
      | Flood { flooders; rate_per_s; frame_bytes; from_; until } ->
        let k =
          min (config.users - 1)
            (max 1
               (int_of_float (Float.round (flooders *. float_of_int config.users))))
        in
        let chosen =
          Rng.sample_indices (Rng.split rng (lbl idx "flooders")) ~n:config.users ~k
        in
        let flood_rng = Rng.split rng (lbl idx "flood") in
        Engine.at engine ~time:from_ (fun () ->
            List.iter
              (fun node ->
                Adversary.flood ~engine
                  ~rng:(Rng.split flood_rng (string_of_int node))
                  ~gossip ~node ~rate_per_s ~bytes:frame_bytes ~until)
              chosen)
      | _ -> ())
    attacks;
  (* Crash-restart churn: crash takes the node's network interface down
     too (in-flight packets to it are lost); restart re-links the node
     into the gossip overlay with fresh peers before it resyncs. *)
  List.iteri
    (fun idx a ->
      match a with
      | Crash_churn plan ->
        let churn_rng = Rng.split rng (lbl idx "churn") in
        let crash_one ~down_for i =
          if (not (Node.is_down nodes.(i))) && not (Node.is_stopped nodes.(i))
          then begin
            Node.crash nodes.(i);
            Network.set_up network i false;
            Engine.schedule engine ~delay:down_for (fun () ->
                Network.set_up network i true;
                Gossip.relink gossip ~node:i ~weights;
                Node.restart nodes.(i))
          end
        in
        let pick fraction =
          let k =
            int_of_float (Float.round (fraction *. float_of_int config.users))
          in
          let k = min (max 1 k) (config.users - 1) in
          Rng.sample_indices churn_rng ~n:config.users ~k
        in
        (match plan with
        | One_shot { at; victims; down_for } ->
          Engine.at engine ~time:at (fun () ->
              List.iter
                (fun i -> if i >= 0 && i < config.users then crash_one ~down_for i)
                victims)
        | Correlated { at; fraction; down_for } ->
          Engine.at engine ~time:at (fun () ->
              List.iter (crash_one ~down_for) (pick fraction))
        | Periodic { start; period; fraction; down_for; until } ->
          let rec tick time () =
            if time <= until && not (Array.for_all Node.is_stopped nodes) then begin
              if Trace.enabled trace then
                Trace.instant trace ~ts:time ~cat:"harness" ~name:"churn.tick" ();
              List.iter (crash_one ~down_for) (pick fraction);
              Engine.at engine ~time:(time +. period) (tick (time +. period))
            end
          in
          Engine.at engine ~time:start (tick start))
      | _ -> ())
    attacks;
  {
    config;
    engine;
    metrics;
    identities;
    nodes;
    gossip;
    network;
    genesis;
    store_root;
    owns_store;
    workload = None;
    legacy_submitted = 0;
  }

(* Remove the temp checkpoint root, when this harness created one. *)
let cleanup_stores (t : t) : unit =
  match t.store_root with
  | Some root when t.owns_store -> rm_rf root
  | _ -> ()

(* Transaction workload, two flavors sharing the submit-at-origin shape
   (each transaction enters at its sender's node, as a wallet would):

   - legacy (no [tx_profile]): uniform all-valid Poisson stream with
     nonces tracked inline - kept bit-compatible so committed artifacts
     of profile-less runs (FIG7 and friends) replay unchanged;
   - profiled: the [Workload] generator over the deployment's own
     identities, with Zipf skew, hostile mixes and bursts, its
     interarrival clock burst-modulated by the same generator. *)
let install_workload (t : t) : unit =
  if t.config.tx_rate_per_s > 0.0 then begin
    match t.config.tx_profile with
    | None ->
      let rng = Rng.create (t.config.rng_seed + 7919) in
      let nonces = Array.make t.config.users 0 in
      let rec arrival () =
        let all_stopped = Array.for_all (fun n -> Node.round n = 0) t.nodes in
        if not all_stopped then begin
          let payer = Rng.int rng t.config.users in
          let payee = (payer + 1 + Rng.int rng (t.config.users - 1)) mod t.config.users in
          let tx =
            Transaction.make ~signer:t.identities.(payer).signer
              ~sender:t.identities.(payer).pk ~recipient:t.identities.(payee).pk ~amount:1
              ~nonce:nonces.(payer)
          in
          nonces.(payer) <- nonces.(payer) + 1;
          t.legacy_submitted <- t.legacy_submitted + 1;
          Node.submit_tx t.nodes.(payer) tx;
          Engine.schedule t.engine
            ~delay:(Rng.exponential rng ~mean:(1.0 /. t.config.tx_rate_per_s))
            arrival
        end
      in
      Engine.schedule t.engine ~delay:0.5 arrival
    | Some profile ->
      let wl =
        Workload.create
          {
            Workload.accounts =
              Workload.Provided
                {
                  pks = Array.map (fun (id : Identity.t) -> id.pk) t.identities;
                  signers =
                    Array.map (fun (id : Identity.t) -> id.signer) t.identities;
                };
            zipf_s = profile.tx_zipf_s;
            mix = profile.tx_mix;
            burst = profile.tx_burst;
            amount = 1;
            seed = t.config.rng_seed + 7919;
          }
      in
      t.workload <- Some wl;
      let rec arrival () =
        let all_stopped = Array.for_all (fun n -> Node.round n = 0) t.nodes in
        if not all_stopped then begin
          let tx, origin = Workload.next wl in
          Node.submit_tx t.nodes.(origin) tx;
          Engine.schedule t.engine
            ~delay:
              (Workload.interarrival wl ~now:(Engine.now t.engine)
                 ~rate_per_s:t.config.tx_rate_per_s)
            arrival
        end
      in
      Engine.schedule t.engine ~delay:0.5 arrival
  end

(* Cross-user safety audit over the final chains. *)
let audit_safety (t : t) : safety_report =
  let per_round : (int, (string, bool) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun node ->
      let chain = Node.chain node in
      let tip = Chain.tip chain in
      List.iter
        (fun (e : Chain.entry) ->
          if e.height > 0 then begin
            let tbl =
              match Hashtbl.find_opt per_round e.height with
              | Some tbl -> tbl
              | None ->
                let tbl = Hashtbl.create 4 in
                Hashtbl.replace per_round e.height tbl;
                tbl
            in
            let was_final =
              match Hashtbl.find_opt tbl e.hash with Some f -> f | None -> false
            in
            Hashtbl.replace tbl e.hash (was_final || e.final)
          end)
        (Chain.ancestry chain tip.hash))
    t.nodes;
  let agreement = ref 0 and forked = ref [] and double_final = ref [] in
  Hashtbl.iter
    (fun round tbl ->
      let variants = Hashtbl.length tbl in
      let finals = Hashtbl.fold (fun _ f acc -> if f then acc + 1 else acc) tbl 0 in
      if variants <= 1 then incr agreement else forked := round :: !forked;
      if finals > 1 then double_final := round :: !double_final)
    per_round;
  {
    agreement_rounds = !agreement;
    forked_rounds = List.sort compare !forked;
    double_final = List.sort compare !double_final;
  }

(* Churn accounting: retry/rejoin metrics plus two per-node audits -
   every restarted node's chain must match the strict-majority chain at
   every height both cover, and at quiescence no node may be left down,
   resyncing, hung, or short of the last round. *)
let audit_churn (t : t) : churn_report =
  let hash_at node h =
    let chain = Node.chain node in
    let tip = Chain.tip chain in
    if h > tip.height then None
    else
      Option.map
        (fun (e : Chain.entry) -> e.hash)
        (Chain.ancestor_at chain ~hash:tip.hash ~height:h)
  in
  let max_h =
    Array.fold_left
      (fun acc n -> max acc (Chain.tip (Node.chain n)).height)
      0 t.nodes
  in
  let majority_at h =
    let counts = Hashtbl.create 8 in
    Array.iter
      (fun n ->
        match hash_at n h with
        | Some hash ->
          Hashtbl.replace counts hash
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts hash))
        | None -> ())
      t.nodes;
    Hashtbl.fold
      (fun hash c acc ->
        if 2 * c > Array.length t.nodes then Some hash else acc)
      counts None
  in
  let divergent = ref [] in
  Array.iteri
    (fun i n ->
      if Node.crash_count n > 0 then begin
        let bad = ref false in
        for h = 1 to max_h do
          match (hash_at n h, majority_at h) with
          | Some mine, Some maj when not (String.equal mine maj) -> bad := true
          | _ -> ()
        done;
        if !bad then divergent := i :: !divergent
      end)
    t.nodes;
  let unfinished = ref [] in
  Array.iteri
    (fun i n ->
      if
        Node.is_down n || Node.is_resyncing n || Node.is_hung n
        || not (Node.is_stopped n)
      then unfinished := i :: !unfinished)
    t.nodes;
  let m = t.metrics in
  let lat = Metrics.rejoin_latencies m in
  let rejoins = List.length lat in
  {
    crashes = Metrics.crashes m;
    restarts = Metrics.restarts m;
    rejoins;
    mean_rejoin_s =
      (if rejoins = 0 then 0.0
       else List.fold_left ( +. ) 0.0 lat /. float_of_int rejoins);
    max_rejoin_s = List.fold_left Float.max 0.0 lat;
    retries = Metrics.retry_attempts m;
    divergent_restarted = List.sort compare !divergent;
    unfinished = List.sort compare !unfinished;
  }

(* Hostile-wire accounting: ingress drops and who got banned.
   [banned_nodes] inverts the per-node ban lists - a node appears if
   any peer disconnected it. *)
let audit_wire (t : t) : wire_report =
  let banned = Hashtbl.create 8 in
  Array.iteri
    (fun node _ ->
      List.iter (fun p -> Hashtbl.replace banned p ()) (Gossip.banned_by t.gossip node))
    t.nodes;
  {
    decode_failures = Gossip.decode_failures t.gossip;
    quota_drops = Gossip.quota_drops t.gossip;
    banned_links = Gossip.banned_links t.gossip;
    banned_nodes = Hashtbl.fold (fun p () acc -> p :: acc) banned [] |> List.sort compare;
    invalid_dropped = Gossip.invalid_dropped t.gossip;
    duplicates_dropped = Gossip.duplicates_dropped t.gossip;
  }

(* Transaction accounting over node 0's canonical chain, plus the
   money-supply audit: whatever traffic was injected, the tip balances
   must sum to the genesis total with no negative account. *)
let audit_txs (t : t) : tx_report =
  let chain = Node.chain t.nodes.(0) in
  let tip = Chain.tip chain in
  let committed = ref 0 and committed_self_pay = ref 0 in
  List.iter
    (fun (e : Chain.entry) ->
      if e.height > 0 then
        List.iter
          (fun (tx : Transaction.t) ->
            incr committed;
            if String.equal tx.sender tx.recipient then incr committed_self_pay)
          e.block.txs)
    (Chain.ancestry chain tip.hash);
  let conservation_ok =
    Balances.invariant tip.balances_after
    && Balances.total tip.balances_after = Balances.total t.genesis.balances
  in
  let submitted, inv, dup, selfp =
    match t.workload with
    | Some wl ->
      let s = Workload.stats wl in
      (s.generated, s.invalid, s.duplicate, s.self_pay)
    | None -> (t.legacy_submitted, 0, 0, 0)
  in
  {
    submitted;
    submitted_invalid = inv;
    submitted_duplicate = dup;
    submitted_self_pay = selfp;
    committed = !committed;
    committed_self_pay = !committed_self_pay;
    conservation_ok;
  }

let run (config : config) : result =
  let t = build config in
  install_workload t;
  let trace = Metrics.trace t.metrics in
  if Trace.enabled trace then
    Trace.instant trace ~ts:0.0 ~cat:"harness" ~name:"run.start"
      ~detail:
        [
          ("users", string_of_int config.users);
          ("rounds", string_of_int config.rounds);
          ("seed", string_of_int config.rng_seed);
        ]
      ();
  Array.iter Node.start t.nodes;
  let events = Engine.run t.engine ~until:config.max_sim_time () in
  let registry = Metrics.registry t.metrics in
  Registry.set (Registry.gauge registry "sim.time_s") (Engine.now t.engine);
  Registry.set (Registry.gauge registry "sim.events") (float_of_int events);
  Registry.set (Registry.gauge registry "sim.population") (float_of_int config.users);
  Registry.set (Registry.gauge registry "sim.events_live")
    (float_of_int (Engine.pending t.engine));
  Registry.set (Registry.gauge registry "sim.heap_peak")
    (float_of_int (Engine.peak_pending t.engine));
  if Trace.enabled trace then
    Trace.span trace ~start_ts:0.0 ~ts:(Engine.now t.engine) ~cat:"harness"
      ~name:"run"
      ~detail:[ ("events", string_of_int events) ]
      ();
  let safety = audit_safety t in
  let completion =
    Algorand_sim.Stats.summarize (Metrics.all_round_completion_times t.metrics)
  in
  let final_rounds = ref 0 and tentative_rounds = ref 0 in
  for r = 1 to config.rounds do
    let finals =
      Array.exists
        (fun node ->
          match Chain.ancestor_at (Node.chain node) ~hash:(Chain.tip (Node.chain node)).hash ~height:r with
          | Some e -> e.final
          | None -> false)
        t.nodes
    in
    if finals then incr final_rounds else incr tentative_rounds
  done;
  {
    harness = t;
    sim_time = Engine.now t.engine;
    events;
    safety;
    completion;
    final_rounds = !final_rounds;
    tentative_rounds = !tentative_rounds;
    churn = audit_churn t;
    wire = audit_wire t;
    txs = audit_txs t;
  }
