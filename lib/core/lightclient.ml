(* Light-client payment verification: the answer to the paper's "cost
   of joining" concern (section 11). Instead of fetching whole blocks,
   a light client holds block *summaries* (header + padding length +
   transaction Merkle root, ~300 bytes each) and checks that

     1. the block's certificate carries a quorum of valid committee
        votes for H(summary), so the block was agreed by BA-star, and
     2. a Merkle inclusion proof ties the payment's id to the
        summary's transaction root.

   The validation context comes from the weights/seed of the client's
   verified prefix (Catchup.validation_ctx) or from a trusted
   checkpoint. *)

module Block = Algorand_ledger.Block
module Merkle = Algorand_crypto.Merkle
module Vote = Algorand_ba.Vote
module Params = Algorand_ba.Params

type verified_payment = { round : int; block_hash : string; tx_id : string }

type error =
  [ `Summary_hash_mismatch
  | `Certificate of Certificate.error
  | `Not_included ]

let pp_error fmt = function
  | `Summary_hash_mismatch ->
    Format.fprintf fmt "certificate is not for this block summary"
  | `Certificate e -> Format.fprintf fmt "certificate: %a" Certificate.pp_error e
  | `Not_included -> Format.fprintf fmt "Merkle proof does not tie the payment to the block"

(* Certificate validation dominates (even batched, it is thousands of
   curve operations); the Merkle walk is a handful of hashes. So the
   plural form below validates the certificate once and amortizes it
   over every payment in the same block. *)
let verify_payment ~(params : Params.t) ~(ctx : Vote.validation_ctx)
    ~(summary : Block.summary) ~(certificate : Certificate.t) ~(tx_id : string)
    ~(proof : Merkle.proof) : (verified_payment, error) result =
  let block_hash = Block.hash_of_summary summary in
  if not (String.equal certificate.block_hash block_hash) then
    Error `Summary_hash_mismatch
  else begin
    match Certificate.validate ~params ~ctx certificate with
    | Error e -> Error (`Certificate e)
    | Ok () ->
      if Block.summary_contains summary ~tx_id proof then
        Ok { round = certificate.round; block_hash; tx_id }
      else Error `Not_included
  end

let verify_payments ~(params : Params.t) ~(ctx : Vote.validation_ctx)
    ~(summary : Block.summary) ~(certificate : Certificate.t)
    (payments : (string * Merkle.proof) list) :
    ((verified_payment, error) result list, error) result =
  let block_hash = Block.hash_of_summary summary in
  if not (String.equal certificate.block_hash block_hash) then
    Error `Summary_hash_mismatch
  else begin
    match Certificate.validate ~params ~ctx certificate with
    | Error e -> Error (`Certificate e)
    | Ok () ->
      Ok
        (List.map
           (fun (tx_id, proof) ->
             if Block.summary_contains summary ~tx_id proof then
               Ok { round = certificate.round; block_hash; tx_id }
             else Error `Not_included)
           payments)
  end

(* What the light client stores per block, in bytes. *)
let summary_size_bytes : int = Block.header_size_bytes + 8 + 32

(* ------------------------------------------------------------------ *)
(* Proof serving                                                       *)
(* ------------------------------------------------------------------ *)

(* The full-node side of the protocol: a server answering "prove tx T
   is in block B" queries. Per block it lazily builds, then caches, the
   Merkle tree over transaction ids plus an id -> leaf-index table, so
   a hot block (every wallet asking about the same round) costs one
   O(n) build and O(log n) per request instead of O(n) per request.
   The cache is FIFO-bounded: serving is load-bearing under sustained
   TPS, and an unbounded tree cache over a long chain would leak. *)

type served = {
  sv_summary : Block.summary;
  sv_tree : Merkle.tree;
  sv_index : (string, int) Hashtbl.t;  (** tx id -> leaf index *)
}

type server = {
  cache : (string, served) Hashtbl.t;  (** block hash -> cached trees *)
  order : string Queue.t;  (** FIFO eviction order *)
  max_blocks : int;
  mutable by_ptr : (Block.t * served) list;
      (** physical-identity fast path (MRU, short): [Block.hash] itself
          recomputes the O(n) transaction root, so keying every request
          on it would cost as much as the naive path it replaces. *)
  mutable hits : int;
  mutable misses : int;
}

let max_ptr_entries = 8

let create_server ?(max_blocks = 64) () : server =
  {
    cache = Hashtbl.create 64;
    order = Queue.create ();
    max_blocks = max 1 max_blocks;
    by_ptr = [];
    hits = 0;
    misses = 0;
  }

let rec served_for (s : server) (b : Algorand_ledger.Block.t) : served =
  match List.find_opt (fun (b', _) -> b' == b) s.by_ptr with
  | Some (_, sv) ->
    s.hits <- s.hits + 1;
    sv
  | None ->
    served_for_slow s b

and served_for_slow (s : server) (b : Algorand_ledger.Block.t) : served =
  let h = Block.hash b in
  let remember sv =
    let keep =
      List.filteri (fun i _ -> i < max_ptr_entries - 1) s.by_ptr
    in
    s.by_ptr <- (b, sv) :: keep;
    sv
  in
  match Hashtbl.find_opt s.cache h with
  | Some sv ->
    s.hits <- s.hits + 1;
    remember sv
  | None ->
    s.misses <- s.misses + 1;
    let index = Hashtbl.create (List.length b.txs) in
    List.iteri
      (fun i (tx : Algorand_ledger.Transaction.t) ->
        let id = Algorand_ledger.Transaction.id tx in
        if not (Hashtbl.mem index id) then Hashtbl.add index id i)
      b.txs;
    let sv =
      { sv_summary = Block.summarize b; sv_tree = Block.tx_tree b; sv_index = index }
    in
    while Queue.length s.order >= s.max_blocks do
      Hashtbl.remove s.cache (Queue.pop s.order)
    done;
    Hashtbl.add s.cache h sv;
    Queue.add h s.order;
    remember sv

let serve_proof (s : server) ~(block : Block.t) ~(tx_id : string) :
    (Block.summary * Merkle.proof) option =
  let sv = served_for s block in
  match Hashtbl.find_opt sv.sv_index tx_id with
  | None -> None
  | Some index ->
    Option.map (fun p -> (sv.sv_summary, p)) (Merkle.prove_tree sv.sv_tree ~index)

let server_cached_blocks (s : server) : int = Hashtbl.length s.cache
let server_hits (s : server) : int = s.hits
let server_misses (s : server) : int = s.misses
