(* Light-client payment verification: the answer to the paper's "cost
   of joining" concern (section 11). Instead of fetching whole blocks,
   a light client holds block *summaries* (header + padding length +
   transaction Merkle root, ~300 bytes each) and checks that

     1. the block's certificate carries a quorum of valid committee
        votes for H(summary), so the block was agreed by BA-star, and
     2. a Merkle inclusion proof ties the payment's id to the
        summary's transaction root.

   The validation context comes from the weights/seed of the client's
   verified prefix (Catchup.validation_ctx) or from a trusted
   checkpoint. *)

module Block = Algorand_ledger.Block
module Merkle = Algorand_crypto.Merkle
module Vote = Algorand_ba.Vote
module Params = Algorand_ba.Params

type verified_payment = { round : int; block_hash : string; tx_id : string }

type error =
  [ `Summary_hash_mismatch
  | `Certificate of Certificate.error
  | `Not_included ]

let pp_error fmt = function
  | `Summary_hash_mismatch ->
    Format.fprintf fmt "certificate is not for this block summary"
  | `Certificate e -> Format.fprintf fmt "certificate: %a" Certificate.pp_error e
  | `Not_included -> Format.fprintf fmt "Merkle proof does not tie the payment to the block"

(* Certificate validation dominates (even batched, it is thousands of
   curve operations); the Merkle walk is a handful of hashes. So the
   plural form below validates the certificate once and amortizes it
   over every payment in the same block. *)
let verify_payment ~(params : Params.t) ~(ctx : Vote.validation_ctx)
    ~(summary : Block.summary) ~(certificate : Certificate.t) ~(tx_id : string)
    ~(proof : Merkle.proof) : (verified_payment, error) result =
  let block_hash = Block.hash_of_summary summary in
  if not (String.equal certificate.block_hash block_hash) then
    Error `Summary_hash_mismatch
  else begin
    match Certificate.validate ~params ~ctx certificate with
    | Error e -> Error (`Certificate e)
    | Ok () ->
      if Block.summary_contains summary ~tx_id proof then
        Ok { round = certificate.round; block_hash; tx_id }
      else Error `Not_included
  end

let verify_payments ~(params : Params.t) ~(ctx : Vote.validation_ctx)
    ~(summary : Block.summary) ~(certificate : Certificate.t)
    (payments : (string * Merkle.proof) list) :
    ((verified_payment, error) result list, error) result =
  let block_hash = Block.hash_of_summary summary in
  if not (String.equal certificate.block_hash block_hash) then
    Error `Summary_hash_mismatch
  else begin
    match Certificate.validate ~params ~ctx certificate with
    | Error e -> Error (`Certificate e)
    | Ok () ->
      Ok
        (List.map
           (fun (tx_id, proof) ->
             if Block.summary_contains summary ~tx_id proof then
               Ok { round = certificate.round; block_hash; tx_id }
             else Error `Not_included)
           payments)
  end

(* What the light client stores per block, in bytes. *)
let summary_size_bytes : int = Block.header_size_bytes + 8 + 32
