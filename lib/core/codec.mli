(** Binary wire codecs for every gossip message — the untrusted-ingress
    surface. In bytes-on-the-wire mode every delivery runs through
    [decode], so decoders treat input as attacker-controlled: no decode
    raises, no decode allocates beyond a small multiple of its input,
    and every declared quantity is clamped by a {!limits} record tied
    to the protocol parameters. *)

module Block = Algorand_ledger.Block
module Vote = Algorand_ba.Vote
module Params = Algorand_ba.Params

(** {1 Decoder resource limits} *)

type limits = {
  max_frame_bytes : int;  (** reject longer frames before parsing anything *)
  max_round : int;  (** cap on round numbers (recovery vote rounds included) *)
  max_step : int;  (** cap on the BinaryBA* [Bin] step index *)
  max_padding : int;  (** cap on a block's declared padding byte count *)
  max_txs : int;  (** transactions per block *)
  max_votes : int;  (** votes per certificate *)
  max_suffix : int;  (** blocks per recovery fork proposal *)
  max_items : int;  (** (block, certificate) pairs per catch-up reply *)
}

val default_limits : limits
(** Shaped around [Params.paper] and a multi-megabyte block: generous
    for any honest encoder, strict against declared-length bombs. *)

val limits_of_params : ?block_bytes:int -> Params.t -> limits
(** Limits derived from an experiment's own configuration: step cap
    from [max_steps], padding and transaction caps from [block_bytes],
    vote caps from the committee sizes. *)

(** {1 Codecs}

    Every encoder has a decoder inverse; decoders return [None] on any
    malformed, truncated, oversized or limit-violating input. *)

val encode_step : Vote.step -> string
val decode_step : ?limits:limits -> string -> Vote.step option
(** Rejects [Bin] indices outside [1, limits.max_step] — a hostile vote
    may not carry a step index near [max_int]. Derived limits set the
    cap to [max_steps + 3]: deciders vote three steps ahead (the
    vote-next-three arm of Algorithm 8), so those indices are honest. *)

val encode_vote : Vote.t -> string
val decode_vote : ?limits:limits -> string -> Vote.t option
val encode_block : Block.t -> string
val decode_block : ?limits:limits -> string -> Block.t option
val encode_priority : Proposal.priority_msg -> string
val decode_priority : ?limits:limits -> string -> Proposal.priority_msg option
val encode_certificate : Certificate.t -> string
val decode_certificate : ?limits:limits -> string -> Certificate.t option
val encode_fork_proposal : Message.fork_proposal -> string
val decode_fork_proposal : ?limits:limits -> string -> Message.fork_proposal option

val tag_of : Message.t -> int
val encode : Message.t -> string
val decode : ?limits:limits -> string -> Message.t option

val wire_size_bytes : Message.t -> int
(** Encoded framing plus the declared padding bytes a production
    encoder would stream. *)

val params_digest : ?genesis:string -> Params.t -> string
(** 32-byte canonical digest of the protocol parameters (plus,
    optionally, the genesis hash) — the value the transport handshake
    compares so differently-configured processes refuse to peer. *)
