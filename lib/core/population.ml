(* Million-user population engine (section 10.1 at full scale).

   The paper's headline figures run 5,000-500,000 users, but per round
   only ~tau_proposer + a few committees' worth of them ever send a
   message; everyone else just validates and counts. This engine
   exploits that: the full population exists only as three flat
   per-user facts (VRF public key, stake, and the genesis balance map
   they share with every run of the same seed), and each round
   materializes full [Node.t] state machines *only* for the users
   cryptographic sortition actually selects for that round's role
   window. The passive population is an aggregate - weighted sortition
   draws evaluated over the flat arrays, gossip fan-out statistics
   (bytes/user modeled as fanout uplink copies of every originated
   message), and relay-hop latency sampled from a population model
   (uniform 1..ceil(log_fanout N) hops, WAN-shaped per-hop delay).

   Faithfulness: identities, genesis, seeds and sortition are computed
   exactly as [Harness] computes them (same "user-<seed>-<i>" identity
   derivation, same genesis, same role strings), so a user is
   materialized iff it would have sent a message in the fully
   materialized run. With zero transaction traffic and deterministic
   (round-number) block timestamps, the certified block content is
   independent of message timing, so the abstracted run certifies
   bit-identical blocks to [Harness.run] at the same seed - the
   equivalence audit in test/test_population.ml proves this per seed.

   Constraints inherited from that argument (checked at [run]): sim
   crypto only (eligibility must be computable from the public key
   alone), no transaction workload, no adversary, no crash churn.

   The committee window covers BinaryBA* steps bin-1..bin-[bin_window].
   Deciders at step s also carry their vote forward to steps s+1..s+3
   (section 9), so a round is exactly covered when max(bin steps) + 3
   <= bin_window; rounds that overrun are counted in
   [window_exceeded_rounds] (never in a clean run - the common case
   decides at bin-1). *)

open Algorand_crypto
module Params = Algorand_ba.Params
module Vote = Algorand_ba.Vote
module Sortition = Algorand_sortition.Sortition
module Binomial = Algorand_sortition.Binomial
module Engine = Algorand_sim.Engine
module Metrics = Algorand_sim.Metrics
module Rng = Algorand_sim.Rng
module Registry = Algorand_obs.Registry
module Chain = Algorand_ledger.Chain
module Genesis = Algorand_ledger.Genesis
module Block = Algorand_ledger.Block

type config = {
  users : int;
  stake_per_user : int;
  stake_distribution : [ `Equal | `Linear ];
  params : Params.t;
  block_bytes : int;
  rounds : int;
  rng_seed : int;
  fanout : int;
  bandwidth_bps : float;
  bin_window : int;
  registry : Registry.t option;
}

let default : config =
  {
    users = 10_000;
    stake_per_user = 1_000;
    stake_distribution = `Equal;
    params = Params.scaled ~factor:0.01;
    block_bytes = 1_000_000;
    rounds = 3;
    rng_seed = 42;
    fanout = 4;
    bandwidth_bps = 20e6;
    (* Ten bins of recovery room: at sweep-sized committees
       (tau_step ~ 20) a single step misses its vote threshold a few
       percent of the time, and the round must be able to ride out a
       weak stretch inside the materialized window (500k users at seed
       2017 decide round 1 at bin 8). *)
    bin_window = 10;
    registry = None;
  }

type round_stat = {
  round : int;
  block_hash : string;
  final : bool;
  eligible : int;  (** users selected for any window role - the materialized set *)
  proposers : int;
  latency_s : float;  (** round start to the last materialized node's completion *)
  events : int;
  modeled_bytes_per_user : float;
  max_bin_steps : int;
}

type result = {
  config : config;
  round_stats : round_stat list;  (** oldest first *)
  block_hashes : string list;  (** certified block hash per round, oldest first *)
  sim_time : float;
  total_events : int;
  peak_pending : int;  (** event-queue live-heap high-water mark *)
  max_materialized : int;
  window_exceeded_rounds : int;
  agreement : bool;  (** every materialized node certified the same block each round *)
}

(* The committee roles whose members may speak during a round:
   reduction, the BinaryBA* window, and the final step. *)
let window_steps (bin_window : int) : Vote.step list =
  (Vote.Reduction_one :: Vote.Reduction_two
   :: List.init bin_window (fun i -> Vote.Bin (i + 1)))
  @ [ Vote.Final ]

let node_config (config : config) ~sig_scheme ~vrf_scheme ~(max_round : int) :
    Node.config =
  {
    params = config.params;
    sig_scheme;
    vrf_scheme;
    block_target_bytes = config.block_bytes;
    max_round;
    byzantine = None;
    cpu_vote_verify_s = 0.0002;
    cpu_block_verify_s = 0.005;
    recovery_enabled = false;
    storage_shards = 1;
    pipeline_final = false;
    resync_enabled = false;
    store_dir = None;
    checkpoint_every = 0;
    retry =
      {
        base_delay = Float.max 0.5 config.params.lambda_priority;
        multiplier = 2.0;
        max_delay = Float.max 5.0 config.params.lambda_step;
        jitter = 0.2;
        max_attempts = 0;
      };
    verify_tx_sigs = true;
    txpool_retention_rounds = 8;
    deterministic_ts = true;
  }

let run (config : config) : result =
  if config.users < 4 then invalid_arg "Population.run: need at least 4 users";
  if config.rounds < 1 then invalid_arg "Population.run: need at least 1 round";
  if config.bin_window < 4 then
    (* deciders carry votes three steps past a bin-1 decision *)
    invalid_arg "Population.run: bin_window must be >= 4";
  let sig_scheme = Signature_scheme.sim and vrf_scheme = Vrf.sim in
  let n = config.users in
  let p = config.params in
  (* ---- The passive population: flat per-user facts. ------------- *)
  let stakes =
    Array.init n (fun i ->
        match config.stake_distribution with
        | `Equal -> config.stake_per_user
        | `Linear -> config.stake_per_user * (i + 1))
  in
  let total_weight = Array.fold_left ( + ) 0 stakes in
  (* Same identity derivation as Harness.build; only the 32-byte VRF
     public key is retained per user (the composite pk strings live on
     inside the genesis balance map, shared, not duplicated here). *)
  let vrf_pks = Array.make n "" in
  let genesis =
    let allocs = ref [] in
    for i = n - 1 downto 0 do
      let id =
        Identity.generate ~sig_scheme ~vrf_scheme
          ~seed:(Printf.sprintf "user-%d-%d" config.rng_seed i)
      in
      vrf_pks.(i) <- Identity.vrf_pk id.pk;
      allocs := (id.pk, stakes.(i)) :: !allocs
    done;
    Genesis.make !allocs
  in
  let rng = Rng.create config.rng_seed in
  let net_rng = Rng.split rng "population-net" in
  let engine = Engine.create () in
  let registry =
    match config.registry with Some r -> r | None -> Registry.create ()
  in
  let metrics = Metrics.create ~registry ~users:n () in
  let canonical = Chain.create genesis in
  (* Interned identities: a user selected in several rounds is
     regenerated once. *)
  let identity_cache : (int, Identity.t) Hashtbl.t = Hashtbl.create 256 in
  let identity u =
    match Hashtbl.find_opt identity_cache u with
    | Some id -> id
    | None ->
      let id =
        Identity.generate ~sig_scheme ~vrf_scheme
          ~seed:(Printf.sprintf "user-%d-%d" config.rng_seed u)
      in
      Hashtbl.replace identity_cache u id;
      id
  in
  (* ---- Population network model. -------------------------------- *)
  let overlay_hops =
    max 1
      (int_of_float
         (Float.ceil (log (float_of_int n) /. log (float_of_int (max 2 config.fanout)))))
  in
  let sample_delay (bytes : int) : float =
    let tx = 8.0 *. float_of_int bytes /. config.bandwidth_bps in
    let hops = 1 + Rng.int net_rng overlay_hops in
    let d = ref tx in
    for _ = 1 to hops do
      d := !d +. tx +. 0.02 +. Rng.exponential net_rng ~mean:0.03
    done;
    !d
  in
  (* ---- Per-round eligibility sweep over the flat arrays. --------- *)
  let selected = Array.make n false in
  let equal_w =
    match config.stake_distribution with
    | `Equal -> Some config.stake_per_user
    | `Linear -> None
  in
  (* Evaluate one role for every user; returns how many are selected.
     This is the engine's hot loop: one short SHA-256 per (user, role)
     via the sim VRF's public-key evaluation path, then the equal-stake
     fast path compares the hash fraction against the precomputed
     P(j = 0) before paying for the CDF inversion. *)
  let sweep_role ~(seed : string) ~(role : string) ~(tau : float) : int =
    let input = Sortition.vrf_input ~seed ~role in
    let prob = tau /. float_of_int total_weight in
    let c0 =
      match equal_w with
      | Some w -> Binomial.cdf ~k:0 ~n:w ~p:prob
      | None -> 0.0
    in
    let count = ref 0 in
    for u = 0 to n - 1 do
      match vrf_scheme.verify ~pk:vrf_pks.(u) ~input ~proof:"" with
      | None -> assert false (* sim VRF accepts every empty proof *)
      | Some h ->
        let frac = Sortition.hash_fraction h in
        let j =
          if equal_w <> None && frac < c0 then 0
          else Binomial.select_j ~frac ~w:stakes.(u) ~p:prob
        in
        if j > 0 then begin
          incr count;
          selected.(u) <- true
        end
    done;
    !count
  in
  (* ---- Drive the rounds. ---------------------------------------- *)
  let round_stats = ref [] in
  let agreement = ref true in
  let window_exceeded = ref 0 in
  let max_materialized = ref 0 in
  let round_ceiling = 3_600.0 in
  let r = ref 1 in
  let ok = ref true in
  while !ok && !r <= config.rounds do
    let round = !r in
    let tip = Chain.tip canonical in
    assert (tip.height = round - 1);
    let seed_height = max 0 (round - 1 - (round mod p.seed_refresh_interval)) in
    let seed =
      match Chain.ancestor_at canonical ~hash:tip.hash ~height:seed_height with
      | Some e -> e.seed
      | None -> (Chain.genesis_entry canonical).seed
    in
    (* Weight look-back: with zero transaction traffic balances never
       move, so the stakes array is the weight vector at every height -
       identical to what each node reads from its own chain. *)
    Array.fill selected 0 n false;
    let proposers = sweep_role ~seed ~role:(Vote.proposer_role ~round) ~tau:p.tau_proposer in
    List.iter
      (fun step ->
        let tau = match step with Vote.Final -> p.tau_final | _ -> p.tau_step in
        ignore (sweep_role ~seed ~role:(Vote.committee_role ~round ~step) ~tau))
      (window_steps config.bin_window);
    let chosen = ref [] in
    for u = n - 1 downto 0 do
      if selected.(u) then chosen := u :: !chosen
    done;
    let chosen = !chosen in
    let eligible = List.length chosen in
    max_materialized := max !max_materialized eligible;
    (* Materialize: full Node.t state machines for the selected users,
       each on a structure-sharing clone of the canonical prefix. *)
    let ncfg = node_config config ~sig_scheme ~vrf_scheme ~max_round:round in
    let roster =
      Array.of_list
        (List.map
           (fun u ->
             let node =
               Node.create ~index:u ~identity:(identity u) ~config:ncfg ~engine
                 ~metrics
                 ~rng:(Rng.split rng (Printf.sprintf "node-%d" u))
                 ~genesis ()
             in
             Node.adopt_chain node (Chain.clone canonical);
             (u, node))
           chosen)
    in
    let by_id = Hashtbl.create (2 * Array.length roster) in
    Array.iter (fun (u, node) -> Hashtbl.replace by_id u node) roster;
    let round_bytes = ref 0.0 in
    (* Per-(src,dst) FIFO: a pair's deliveries never reorder, like a
       real connection. Without this a proposer's block can overtake
       its own priority message and be discarded by the section 6
       priority filter - the gossip overlay absorbs such inversions via
       redundant relay paths, but direct delivery gets one shot. *)
    let last_arrival : (int, float) Hashtbl.t = Hashtbl.create 1024 in
    let deliver_later ~(src : int) ~(dst : int) ~(dst_node : Node.t)
        (msg : Message.t) : unit =
      let delay = sample_delay (Message.size_bytes msg) in
      let arrival = Engine.now engine +. delay in
      let key = (src * n) + dst in
      let arrival =
        match Hashtbl.find_opt last_arrival key with
        | Some t when t > arrival -> t
        | _ -> arrival
      in
      Hashtbl.replace last_arrival key arrival;
      Engine.at engine ~time:arrival (fun () ->
          if Node.gossip_validate dst_node msg then Node.deliver dst_node ~src msg)
    in
    Array.iter
      (fun (u, node) ->
        let peers =
          Array.to_list roster |> List.filter_map (fun (v, _) -> if v <> u then Some v else None)
        in
        Node.set_net node
          {
            Node.net_broadcast =
              (fun msg ->
                round_bytes := !round_bytes +. float_of_int (Message.size_bytes msg);
                Array.iter
                  (fun (v, dst_node) ->
                    if v <> u then deliver_later ~src:u ~dst:v ~dst_node msg)
                  roster);
            net_send_to =
              (fun ~dst msg ->
                match Hashtbl.find_opt by_id dst with
                | Some dst_node -> deliver_later ~src:u ~dst ~dst_node msg
                | None -> ());
            net_peers = (fun () -> peers);
            net_mark_seen = (fun _ -> ());
          })
      roster;
    let t0 = Engine.now engine in
    let events_before = Engine.events_processed engine in
    Array.iter (fun (_, node) -> Node.start_from_tip node) roster;
    ignore (Engine.run engine ~until:(t0 +. round_ceiling) ());
    let events = Engine.events_processed engine - events_before in
    let all_stopped = Array.for_all (fun (_, node) -> Node.is_stopped node) roster in
    (* Audit: every materialized node must have certified the same
       block at this height. *)
    let hashes =
      Array.map
        (fun (_, node) ->
          let chain = Node.chain node in
          match
            Chain.ancestor_at chain ~hash:(Chain.tip chain).hash ~height:round
          with
          | Some e -> Some (e.hash, e)
          | None -> None)
        roster
    in
    let round_ok =
      all_stopped
      && Array.length hashes > 0
      && Array.for_all Option.is_some hashes
      &&
      match hashes.(0) with
      | Some (h0, _) ->
        Array.for_all (function Some (h, _) -> String.equal h h0 | None -> false) hashes
      | None -> false
    in
    if not round_ok then begin
      (* Say why on stderr: a failed audit at 500k users is otherwise
         undebuggable. *)
      let unstopped =
        Array.fold_left
          (fun acc (_, node) -> if Node.is_stopped node then acc else acc + 1)
          0 roster
      in
      let missing = Array.fold_left (fun acc h -> if h = None then acc + 1 else acc) 0 hashes in
      let distinct =
        Array.fold_left
          (fun acc -> function Some (h, _) -> if List.mem h acc then acc else h :: acc | None -> acc)
          [] hashes
        |> List.length
      in
      let max_steps =
        List.fold_left
          (fun acc (rec_ : Metrics.round_record) ->
            if rec_.round = round then max acc rec_.steps_taken else acc)
          0 (Metrics.records metrics)
      in
      Printf.eprintf
        "population: round %d audit failed: %d/%d nodes unstopped, %d missing height-%d \
         entries, %d distinct hashes, %d pending events, max bin steps %d\n%!"
        round unstopped (Array.length roster) missing round distinct
        (Engine.pending engine) max_steps;
      agreement := false;
      ok := false
    end
    else begin
      let _, entry = Option.get hashes.(0) in
      let final =
        Array.exists
          (fun (_, node) -> Node.final_certificate node ~round <> None)
          roster
      in
      (match Chain.add canonical entry.block with
      | Ok e ->
        Chain.set_tip canonical e.hash;
        if final then Chain.mark_final canonical e.hash
      | Error `Duplicate -> ()
      | Error (`Unknown_parent | `Wrong_round _ | `Invalid_tx _) ->
        agreement := false;
        ok := false);
      let latency_s =
        List.fold_left Float.max 0.0 (Metrics.round_completion_times metrics ~round)
      in
      let max_bin_steps =
        List.fold_left
          (fun acc (rec_ : Metrics.round_record) ->
            if rec_.round = round then max acc rec_.steps_taken else acc)
          0 (Metrics.records metrics)
      in
      if max_bin_steps + 3 > config.bin_window then incr window_exceeded;
      round_stats :=
        {
          round;
          block_hash = entry.hash;
          final;
          eligible;
          proposers;
          latency_s;
          events;
          modeled_bytes_per_user = !round_bytes *. float_of_int config.fanout;
          max_bin_steps;
        }
        :: !round_stats
    end;
    Registry.set (Registry.gauge registry "sim.population") (float_of_int n);
    Registry.set (Registry.gauge registry "sim.events_live")
      (float_of_int (Engine.pending engine));
    Registry.set (Registry.gauge registry "sim.heap_peak")
      (float_of_int (Engine.peak_pending engine));
    incr r
  done;
  let round_stats = List.rev !round_stats in
  {
    config;
    round_stats;
    block_hashes = List.map (fun s -> s.block_hash) round_stats;
    sim_time = Engine.now engine;
    total_events = Engine.events_processed engine;
    peak_pending = Engine.peak_pending engine;
    max_materialized = !max_materialized;
    window_exceeded_rounds = !window_exceeded;
    agreement = !agreement;
  }
