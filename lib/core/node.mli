(** A full Algorand user (sections 4-8): transaction pool, block
    proposal, BA* execution, chain maintenance, certificates, fork
    recovery, and catch-up serving. All I/O goes through the gossip
    overlay and all waiting through the simulation engine, so the same
    code runs under every experiment of section 10. *)

module Block = Algorand_ledger.Block
module Chain = Algorand_ledger.Chain
module Genesis = Algorand_ledger.Genesis
module Transaction = Algorand_ledger.Transaction
module Params = Algorand_ba.Params
module Engine = Algorand_sim.Engine
module Metrics = Algorand_sim.Metrics
module Retry = Algorand_sim.Retry
module Rng = Algorand_sim.Rng
module Gossip = Algorand_netsim.Gossip

type byzantine = {
  equivocate_proposal : bool;
      (** when proposing, send different block versions to different peers *)
  double_vote : bool;  (** vote for two values in committee steps *)
}

type config = {
  params : Params.t;
  sig_scheme : Algorand_crypto.Signature_scheme.scheme;
  vrf_scheme : Algorand_crypto.Vrf.scheme;
  block_target_bytes : int;  (** proposers pad blocks to this size *)
  max_round : int;  (** stop after completing this round *)
  byzantine : byzantine option;
  cpu_vote_verify_s : float;  (** modeled per-vote verification CPU time *)
  cpu_block_verify_s : float;
  recovery_enabled : bool;  (** run the section 8.2 recovery protocol *)
  storage_shards : int;
      (** serve old blocks/certificates only for rounds in this node's
          shard (section 8.3); 1 = serve everything *)
  pipeline_final : bool;
      (** overlap the final-step classification with the next round's
          proposal (the throughput optimization of section 10.2) *)
  resync_enabled : bool;
      (** rejoin via live catch-up (Round_request / Round_reply with
          retry, backoff and peer rotation) after a restart, on
          MaxSteps, or when the network is observed >= 2 rounds ahead *)
  store_dir : string option;
      (** durable checkpoint directory; [None] disables persistence *)
  checkpoint_every : int;
      (** checkpoint every k completed rounds (when [store_dir] is set) *)
  retry : Retry.policy;
      (** backoff for block-fetch and catch-up requests *)
  verify_tx_sigs : bool;
      (** check transaction signatures on the block paths: batch
          verification of a proposed block's transactions during
          validation, and a batch filter (bisection fallback) over pool
          candidates during assembly *)
  txpool_retention_rounds : int;
      (** rounds a committed transaction id stays in the pool's dedup
          table before watermark eviction *)
  deterministic_ts : bool;
      (** stamp blocks with the round number instead of the engine
          clock (and validate them as such), making block hashes
          independent of which clock ran the protocol - the flag behind
          the sim-vs-wire ledger-equality audit *)
}

val default_config : config

type t

(** The node's entire view of the network: everything the protocol
    sends goes through these four operations, so a [net] backed by the
    simulated overlay and one backed by a real transport run the same
    node core. Destinations are global roster indices; byte accounting
    is the implementation's job. *)
type net = {
  net_broadcast : Message.t -> unit;  (** originate on the overlay *)
  net_send_to : dst:int -> Message.t -> unit;  (** point-to-point *)
  net_peers : unit -> int list;  (** current overlay neighbors *)
  net_mark_seen : Message.t -> unit;
      (** suppress our own relay of a message id (equivocation sends) *)
}

val create :
  index:int ->
  identity:Identity.t ->
  config:config ->
  engine:Engine.t ->
  metrics:Metrics.t ->
  ?rng:Rng.t ->
  genesis:Genesis.t ->
  unit ->
  t

val set_net : t -> net -> unit
(** Install the node's network; must be called before [start]. *)

val set_gossip : t -> Message.t Gossip.t -> unit
(** [set_net] with the simulated overlay: what the harness and every
    in-sim experiment use. *)

val start : t -> unit
(** Begin round 1 (and, if enabled, schedule recovery clock ticks). *)

val adopt_chain : t -> Algorand_ledger.Chain.t -> unit
(** Replace the node's chain with a preloaded one (a clone of a
    certified canonical prefix) before it starts. The population
    engine's join path: a node materialized for round r receives the
    height-(r-1) prefix instead of replaying from genesis.
    @raise Invalid_argument once the node is running. *)

val start_from_tip : t -> unit
(** Begin at the round after the current tip (recovery ticks are
    [start]'s job; population rounds do not use them). Marks the node
    stopped if the tip already reaches [max_round]. *)

val pk : t -> string
val chain : t -> Chain.t

val round : t -> int
(** Current round, or 0 when idle/stopped. *)

val is_hung : t -> bool
val is_recovering : t -> bool
val recoveries_completed : t -> int

val crash : t -> unit
(** Kill the node: all in-memory state is dropped (chain, pools, round
    machines, buffered messages); armed timers and queued deliveries
    from this life become no-ops. Only the durable store survives.
    No-op if already down. *)

val restart : t -> unit
(** Bring a crashed node back: reload and re-validate the durable
    checkpoint (a corrupt or truncated tail costs only the tail), then
    rejoin via live catch-up ([resync_enabled]) or by starting the next
    round directly. No-op if not down. *)

val is_down : t -> bool
val is_resyncing : t -> bool
val is_stopped : t -> bool

val crash_count : t -> int
(** Crashes suffered so far. *)

val incarnation : t -> int
(** Bumped on crash, restart and resync teardown; timers armed under an
    older incarnation never fire. *)

val certificate : t -> round:int -> Certificate.t option
(** The certificate assembled for an agreed round (section 8.3). *)

val final_certificate : t -> round:int -> Certificate.t option

val serves_round : t -> round:int -> bool
(** Storage sharding (section 8.3): whether this node serves the given
    round's block and certificate to catch-up clients. *)

val gossip_validate : t -> Message.t -> bool
(** Relay gating (section 8.4), including the priority-based block
    discard of section 6. Used as the overlay's validator. *)

val deliver : t -> src:int -> Message.t -> unit
(** The overlay's delivery callback (applies the modeled CPU cost). *)

val submit_tx : t -> Transaction.t -> unit
(** Submit a transaction at this node, as a wallet would. *)

val checkpoint_now : t -> unit
(** Persist the certified prefix to [store_dir] immediately, ignoring
    the [checkpoint_every] cadence - the daemon's SIGTERM drain. *)

val set_on_round_complete : t -> (t -> round:int -> final:bool -> unit) -> unit

val set_byzantine : t -> byzantine option -> unit
(** Flip the node's byzantine behavior mid-run: the adaptive-corruption
    attack (corrupt a committee member {e after} its VRF proof reveals
    it). Affects only future proposals/votes - already-sent votes were
    signed with since-erased ephemeral keys (section 11), so corruption
    cannot retro-equivocate a past step. *)
