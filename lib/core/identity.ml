(* A user's key material. The paper gives each user one public key used
   both to sign messages and to evaluate the VRF; our signature and VRF
   schemes have separate keys, so the user-visible public key is the
   64-byte concatenation sig_pk || vrf_pk. Account balances (sortition
   weights) are keyed by this composite key. *)

open Algorand_crypto

let sig_pk_length = 32
let vrf_pk_length = 32
let pk_length = sig_pk_length + vrf_pk_length

type t = {
  pk : string;  (** composite public key: sig_pk || vrf_pk *)
  signer : Signature_scheme.signer;
  prover : Vrf.prover;
}

let generate ~(sig_scheme : Signature_scheme.scheme) ~(vrf_scheme : Vrf.scheme)
    ~(seed : string) : t =
  let signer, sig_pk = sig_scheme.generate ~seed in
  let prover, vrf_pk = vrf_scheme.generate ~seed in
  if String.length sig_pk <> sig_pk_length || String.length vrf_pk <> vrf_pk_length then
    invalid_arg "Identity.generate: unexpected key length";
  { pk = sig_pk ^ vrf_pk; signer; prover }

(* Total on hostile input: a decoded message may carry a voter_pk of
   any length, and the projections run during validation. A malformed
   composite key projects to "", which verifies against nothing and
   owns no stake. *)
let sig_pk (pk : string) : string =
  if String.length pk < sig_pk_length then "" else String.sub pk 0 sig_pk_length

let vrf_pk (pk : string) : string =
  if String.length pk < pk_length then "" else String.sub pk sig_pk_length vrf_pk_length

let short (pk : string) : string =
  Hex.of_string (String.sub pk 0 (min 4 (String.length pk)))
