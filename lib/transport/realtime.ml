open Algorand_sim

let run ~(engine : Engine.t) ?(time_scale = 1.0) ?(max_poll = 0.05)
    ~(poll : timeout:float -> unit) ~(until : unit -> bool) () : unit =
  if time_scale <= 0.0 then invalid_arg "Realtime.run: time_scale must be positive";
  let start = Unix.gettimeofday () in
  let vnow () = (Unix.gettimeofday () -. start) *. time_scale in
  while not (until ()) do
    let v = vnow () in
    ignore (Engine.run engine ~until:v ());
    Engine.advance_to engine v;
    let timeout =
      match Engine.next_time engine with
      | Some next -> Float.min max_poll (Float.max 0.0 ((next -. v) /. time_scale))
      | None -> max_poll
    in
    poll ~timeout
  done
