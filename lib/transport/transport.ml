(* Shared types of the transport boundary; see the interface. *)

open Algorand_obs

type reason =
  | Handshake_rejected of Handshake.reject_reason
  | Handshake_garbage
  | Framing_error
  | Remote_closed
  | Dial_failed
  | Local_close

let pp_reason fmt = function
  | Handshake_rejected r -> Format.fprintf fmt "handshake rejected: %a" Handshake.pp_reject r
  | Handshake_garbage -> Format.fprintf fmt "handshake garbage"
  | Framing_error -> Format.fprintf fmt "framing error"
  | Remote_closed -> Format.fprintf fmt "remote closed"
  | Dial_failed -> Format.fprintf fmt "dial failed"
  | Local_close -> Format.fprintf fmt "local close"

type handlers = {
  mutable on_peer_up : conn:int -> Handshake.hello -> unit;
  mutable on_frame : conn:int -> string -> unit;
  mutable on_peer_down : conn:int -> reason -> unit;
  mutable accept_peer : Handshake.hello -> bool;
}

let handlers () =
  {
    on_peer_up = (fun ~conn:_ _ -> ());
    on_frame = (fun ~conn:_ _ -> ());
    on_peer_down = (fun ~conn:_ _ -> ());
    accept_peer = (fun _ -> true);
  }

type send_result = [ `Ok | `Dropped | `No_conn ]

module type S = sig
  type t

  val addr : t -> string
  val connect : t -> string -> unit
  val send : t -> conn:int -> string -> send_result
  val disconnect : t -> conn:int -> unit
  val conns : t -> int list
  val peer : t -> conn:int -> Handshake.hello option
  val dialed_addr : t -> conn:int -> string option
  val shutdown : t -> unit
end

type metrics = {
  bytes_sent : Registry.counter;
  bytes_received : Registry.counter;
  frames_sent : Registry.counter;
  frames_received : Registry.counter;
  handshake_failures : Registry.counter;
  backpressure_drops : Registry.counter;
  reconnects : Registry.counter;
  dials : Registry.counter;
  accepts : Registry.counter;
  peer_downs : Registry.counter;
  write_queue_depth : Registry.histogram;
}

let metrics (r : Registry.t) : metrics =
  {
    bytes_sent = Registry.counter r "transport.bytes_sent";
    bytes_received = Registry.counter r "transport.bytes_received";
    frames_sent = Registry.counter r "transport.frames_sent";
    frames_received = Registry.counter r "transport.frames_received";
    handshake_failures = Registry.counter r "transport.handshake_failures";
    backpressure_drops = Registry.counter r "transport.backpressure_drops";
    reconnects = Registry.counter r "transport.reconnects";
    dials = Registry.counter r "transport.dials";
    accepts = Registry.counter r "transport.accepts";
    peer_downs = Registry.counter r "transport.peer_downs";
    write_queue_depth =
      Registry.histogram r ~lo:1.0 ~growth:2.0 ~buckets:20
        "transport.write_queue_depth";
  }
