(** Wall-clock driver for the virtual-time engine. The node core and
    all protocol timeouts are scheduled on {!Engine}'s virtual clock;
    this loop maps wall time onto it - [virtual = (wall - start) *
    time_scale] - interleaving engine events with socket polls. With
    [time_scale > 1] the paper's step timeouts (tens of seconds)
    elapse proportionally faster on the wire, which is what makes a
    localhost deployment finish rounds in wall-seconds while running
    the unmodified protocol constants. *)

open Algorand_sim

val run :
  engine:Engine.t ->
  ?time_scale:float ->
  ?max_poll:float ->
  poll:(timeout:float -> unit) ->
  until:(unit -> bool) ->
  unit ->
  unit
(** Loop until [until ()] is true: run engine events due by the
    current virtual time, advance the clock, then [poll] sockets with
    a timeout of min(wall time to the next engine event, [max_poll]).
    Defaults: [time_scale = 1.0] (virtual seconds per wall second),
    [max_poll = 0.05] so external stop conditions are noticed
    promptly. [until] is checked between iterations. *)
