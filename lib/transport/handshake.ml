(* Handshake frames. Layout (after the Frame length prefix):

     magic   4  "AWH1"
     tag     1  0 = Hello, 1 = Reject
   Hello:
     version 2  big-endian u16
     dlen    2  params-digest length (<= 64)
     digest  dlen
     klen    2  pk length (<= 256)
     pk      klen
   Reject:
     reason  1  0 = version (followed by u16 our version), 1 = params, 2 = banned

   Decoders never raise and never allocate beyond the input length. *)

let version = 1
let magic = "AWH1"
let max_digest = 64
let max_pk = 256

type hello = { version : int; params_digest : string; pk : string }
type reject_reason = [ `Version of int | `Params_digest | `Banned ]
type t = Hello of hello | Reject of reject_reason

let u16 (n : int) : string =
  let b = Bytes.create 2 in
  Bytes.set b 0 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 1 (Char.chr (n land 0xff));
  Bytes.unsafe_to_string b

let encode (t : t) : string =
  match t with
  | Hello h ->
    if String.length h.params_digest > max_digest then
      invalid_arg "Handshake.encode: digest too long";
    if String.length h.pk > max_pk then invalid_arg "Handshake.encode: pk too long";
    String.concat ""
      [
        magic; "\x00"; u16 h.version;
        u16 (String.length h.params_digest); h.params_digest;
        u16 (String.length h.pk); h.pk;
      ]
  | Reject r ->
    let body =
      match r with
      | `Version v -> "\x00" ^ u16 v
      | `Params_digest -> "\x01"
      | `Banned -> "\x02"
    in
    magic ^ "\x01" ^ body

(* Bounds-checked cursor reads; [None] on any shortfall. *)
let ru16 (s : string) (pos : int) : (int * int) option =
  if pos + 2 > String.length s then None
  else Some ((Char.code s.[pos] lsl 8) lor Char.code s.[pos + 1], pos + 2)

let rstr (s : string) (pos : int) (n : int) : (string * int) option =
  if n < 0 || pos + n > String.length s then None
  else Some (String.sub s pos n, pos + n)

let decode (s : string) : t option =
  if String.length s < 5 || not (String.equal (String.sub s 0 4) magic) then None
  else begin
    match s.[4] with
    | '\x00' ->
      Option.bind (ru16 s 5) (fun (ver, pos) ->
          Option.bind (ru16 s pos) (fun (dlen, pos) ->
              if dlen > max_digest then None
              else
                Option.bind (rstr s pos dlen) (fun (digest, pos) ->
                    Option.bind (ru16 s pos) (fun (klen, pos) ->
                        if klen > max_pk then None
                        else
                          Option.bind (rstr s pos klen) (fun (pk, pos) ->
                              if pos <> String.length s then None
                              else
                                Some (Hello { version = ver; params_digest = digest; pk }))))))
    | '\x01' ->
      if String.length s < 6 then None
      else begin
        match s.[5] with
        | '\x00' ->
          Option.bind (ru16 s 6) (fun (v, pos) ->
              if pos <> String.length s then None else Some (Reject (`Version v)))
        | '\x01' -> if String.length s = 6 then Some (Reject `Params_digest) else None
        | '\x02' -> if String.length s = 6 then Some (Reject `Banned) else None
        | _ -> None
      end
    | _ -> None
  end

let check ~(ours : hello) ~(theirs : hello) : (unit, reject_reason) result =
  if theirs.version <> ours.version then Error (`Version ours.version)
  else if not (String.equal theirs.params_digest ours.params_digest) then
    Error `Params_digest
  else Ok ()

let pp_reject fmt = function
  | `Version v -> Format.fprintf fmt "version mismatch (peer wants %d)" v
  | `Params_digest -> Format.fprintf fmt "params digest mismatch"
  | `Banned -> Format.fprintf fmt "banned"
