(* Non-blocking TCP endpoint. All socket work happens inside [poll];
   [connect] and [send] only mutate queues (plus an opportunistic
   non-blocking flush on send). Connection lifecycle:

     Dialing      connect(2) in flight; the socket sits in the write
                  set until select reports it, then SO_ERROR decides
     Handshaking  transport-level hello exchange
     Up           frames flow to [on_frame]
     Closing r    we rejected the peer: drain the queued Reject frame,
                  then close and report [r]

   Every teardown funnels through [teardown], which defers the
   [on_peer_down] callback to the top of the next [poll] so no handler
   ever runs inside [connect]/[send]. *)

open Algorand_obs

type state =
  | Dialing
  | Handshaking
  | Up
  | Closing of Transport.reason

type conn = {
  id : int;
  fd : Unix.file_descr;
  dialer : bool;
  dial_addr : string option;
  reasm : Frame.Reassembler.t;
  outq : string Queue.t;
  mutable out_off : int;  (** bytes of the queue head already written *)
  mutable state : state;
  mutable peer_hello : Handshake.hello option;
  mutable alive : bool;
}

type t = {
  listen_fd : Unix.file_descr;
  bound : string;
  hello : Handshake.hello;
  handlers : Transport.handlers;
  m : Transport.metrics;
  max_frame_bytes : int;
  write_queue_frames : int;
  conns_tbl : (int, conn) Hashtbl.t;
  mutable next_id : int;
  mutable pending_down : (conn * Transport.reason) list;
  mutable closed : bool;
  read_buf : Bytes.t;
}

let parse_addr (s : string) : Unix.sockaddr =
  match String.rindex_opt s ':' with
  | None -> invalid_arg (Printf.sprintf "Tcp_transport: address %S lacks a port" s)
  | Some i ->
    let host = String.sub s 0 i in
    let port =
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some p when p >= 0 && p < 65536 -> p
      | _ -> invalid_arg (Printf.sprintf "Tcp_transport: bad port in %S" s)
    in
    let ip =
      if String.equal host "localhost" then Unix.inet_addr_loopback
      else
        try Unix.inet_addr_of_string host
        with Failure _ ->
          invalid_arg (Printf.sprintf "Tcp_transport: bad host in %S" s)
    in
    Unix.ADDR_INET (ip, port)

let format_addr : Unix.sockaddr -> string = function
  | Unix.ADDR_INET (ip, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
  | Unix.ADDR_UNIX p -> p

let create ~listen ~hello ?registry ?(max_frame_bytes = Frame.max_payload)
    ?(write_queue_frames = 1024) ~(handlers : Transport.handlers) () : t =
  (* A peer closing mid-write must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let registry = match registry with Some r -> r | None -> Registry.create () in
  let sa = parse_addr listen in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd sa;
     Unix.listen fd 64;
     Unix.set_nonblock fd
   with e ->
     Unix.close fd;
     raise e);
  {
    listen_fd = fd;
    bound = format_addr (Unix.getsockname fd);
    hello;
    handlers;
    m = Transport.metrics registry;
    max_frame_bytes;
    write_queue_frames;
    conns_tbl = Hashtbl.create 16;
    next_id = 0;
    pending_down = [];
    closed = false;
    read_buf = Bytes.create 65536;
  }

let addr (t : t) : string = t.bound

let fresh_conn (t : t) ~fd ~dialer ~dial_addr ~state : conn =
  t.next_id <- t.next_id + 1;
  let c =
    {
      id = t.next_id;
      fd;
      dialer;
      dial_addr;
      reasm = Frame.Reassembler.create ~max_frame_bytes:t.max_frame_bytes;
      outq = Queue.create ();
      out_off = 0;
      state;
      peer_hello = None;
      alive = true;
    }
  in
  Hashtbl.replace t.conns_tbl c.id c;
  c

(* Close the socket now; the user-visible notification is deferred to
   the next [poll] so teardown is safe from any call site. *)
let teardown (t : t) (c : conn) (reason : Transport.reason) : unit =
  if c.alive then begin
    c.alive <- false;
    Hashtbl.remove t.conns_tbl c.id;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    if not t.closed then t.pending_down <- (c, reason) :: t.pending_down
  end

let rec drain_pending_down (t : t) : unit =
  match t.pending_down with
  | [] -> ()
  | pending ->
    (* Each entry stays on the list until after its callback returns:
       [dialed_addr]'s fallback reads it, and the reconnect layer asks
       exactly during [on_peer_down]. Callbacks may tear down further
       connections, so drain again until quiescent. *)
    let downs = List.rev pending in
    List.iter
      (fun ((c, reason) as entry) ->
        Registry.incr t.m.peer_downs;
        t.handlers.on_peer_down ~conn:c.id reason;
        t.pending_down <- List.filter (fun e -> e != entry) t.pending_down)
      downs;
    drain_pending_down t

let enqueue (t : t) (c : conn) (frame_bytes : string) : unit =
  Queue.push frame_bytes c.outq;
  Registry.observe t.m.write_queue_depth (float_of_int (Queue.length c.outq))

(* Write as much of the queue as the socket takes. *)
let flush_out (t : t) (c : conn) : unit =
  let progressing = ref true in
  while c.alive && !progressing && not (Queue.is_empty c.outq) do
    let head = Queue.peek c.outq in
    let len = String.length head - c.out_off in
    match Unix.write_substring c.fd head c.out_off len with
    | n ->
      Registry.add t.m.bytes_sent n;
      if n = len then begin
        ignore (Queue.pop c.outq);
        c.out_off <- 0
      end
      else begin
        c.out_off <- c.out_off + n;
        progressing := false
      end
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      ->
      progressing := false
    | exception Unix.Unix_error _ -> teardown t c Transport.Remote_closed
  done;
  match c.state with
  | Closing reason when c.alive && Queue.is_empty c.outq -> teardown t c reason
  | _ -> ()

let send_hello (t : t) (c : conn) : unit =
  Registry.incr t.m.frames_sent;
  enqueue t c (Frame.encode (Handshake.encode (Handshake.Hello t.hello)));
  flush_out t c

let handle_frame (t : t) (c : conn) (frame : string) : unit =
  Registry.incr t.m.frames_received;
  match c.state with
  | Up -> t.handlers.on_frame ~conn:c.id frame
  | Handshaking -> (
    match Handshake.decode frame with
    | None ->
      Registry.incr t.m.handshake_failures;
      teardown t c Transport.Handshake_garbage
    | Some (Handshake.Reject r) ->
      Registry.incr t.m.handshake_failures;
      teardown t c (Transport.Handshake_rejected r)
    | Some (Handshake.Hello theirs) ->
      let reject r =
        Registry.incr t.m.handshake_failures;
        enqueue t c (Frame.encode (Handshake.encode (Handshake.Reject r)));
        c.state <- Closing (Transport.Handshake_rejected r);
        flush_out t c
      in
      if not (t.handlers.accept_peer theirs) then reject `Banned
      else begin
        match Handshake.check ~ours:t.hello ~theirs with
        | Error r -> reject r
        | Ok () ->
          if not c.dialer then begin
            Registry.incr t.m.accepts;
            send_hello t c
          end;
          if c.alive then begin
            c.state <- Up;
            c.peer_hello <- Some theirs;
            t.handlers.on_peer_up ~conn:c.id theirs
          end
      end)
  | Dialing | Closing _ -> ()

let handle_readable (t : t) (c : conn) : unit =
  let progressing = ref true in
  while c.alive && !progressing do
    match Unix.read c.fd t.read_buf 0 (Bytes.length t.read_buf) with
    | 0 ->
      progressing := false;
      teardown t c Transport.Remote_closed
    | n ->
      Registry.add t.m.bytes_received n;
      let chunk = Bytes.sub_string t.read_buf 0 n in
      (match Frame.Reassembler.feed c.reasm chunk with
      | Error _ ->
        (match c.state with
        | Handshaking -> Registry.incr t.m.handshake_failures
        | _ -> ());
        teardown t c Transport.Framing_error
      | Ok frames -> List.iter (fun f -> if c.alive then handle_frame t c f) frames);
      if n < Bytes.length t.read_buf then progressing := false
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      ->
      progressing := false
    | exception Unix.Unix_error _ ->
      progressing := false;
      teardown t c Transport.Remote_closed
  done

let finish_dial (t : t) (c : conn) : unit =
  match Unix.getsockopt_error c.fd with
  | Some _ -> teardown t c Transport.Dial_failed
  | None ->
    c.state <- Handshaking;
    send_hello t c

let handle_accept (t : t) : unit =
  let progressing = ref true in
  while !progressing do
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _peer_sa ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      ignore (fresh_conn t ~fd ~dialer:false ~dial_addr:None ~state:Handshaking)
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      ->
      progressing := false
    | exception Unix.Unix_error _ -> progressing := false
  done

let connect (t : t) (address : string) : unit =
  if not t.closed then begin
    Registry.incr t.m.dials;
    let sa = parse_addr address in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    let c = fresh_conn t ~fd ~dialer:true ~dial_addr:(Some address) ~state:Dialing in
    match Unix.connect fd sa with
    | () -> finish_dial t c
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> teardown t c Transport.Dial_failed
  end

let send (t : t) ~(conn : int) (payload : string) : Transport.send_result =
  match Hashtbl.find_opt t.conns_tbl conn with
  | Some c when c.alive && c.state = Up ->
    if Queue.length c.outq >= t.write_queue_frames then begin
      Registry.incr t.m.backpressure_drops;
      `Dropped
    end
    else begin
      Registry.incr t.m.frames_sent;
      enqueue t c (Frame.encode payload);
      flush_out t c;
      `Ok
    end
  | _ -> `No_conn

let disconnect (t : t) ~(conn : int) : unit =
  match Hashtbl.find_opt t.conns_tbl conn with
  | Some c -> teardown t c Transport.Local_close
  | None -> ()

let conns (t : t) : int list =
  Hashtbl.fold
    (fun id c acc -> if c.state = Up then id :: acc else acc)
    t.conns_tbl []
  |> List.sort compare

let peer (t : t) ~(conn : int) : Handshake.hello option =
  match Hashtbl.find_opt t.conns_tbl conn with
  | Some c -> c.peer_hello
  | None -> None

let dialed_addr (t : t) ~(conn : int) : string option =
  match Hashtbl.find_opt t.conns_tbl conn with
  | Some c -> c.dial_addr
  | None ->
    (* Torn down but not yet reported: the pending-down list still
       knows the address, which is exactly when a reconnector asks. *)
    List.fold_left
      (fun acc (c, _) -> if c.id = conn then c.dial_addr else acc)
      None t.pending_down

let shutdown (t : t) : unit =
  if not t.closed then begin
    t.closed <- true;
    let all = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns_tbl [] in
    List.iter (fun c -> teardown t c Transport.Local_close) all;
    t.pending_down <- [];
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end

let poll (t : t) ~(timeout : float) : unit =
  if not t.closed then begin
    drain_pending_down t;
    let live = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns_tbl [] in
    let read_fds =
      t.listen_fd
      :: List.filter_map
           (fun c -> match c.state with Dialing -> None | _ -> Some c.fd)
           live
    in
    let write_fds =
      List.filter_map
        (fun c ->
          match c.state with
          | Dialing -> Some c.fd
          | _ when not (Queue.is_empty c.outq) -> Some c.fd
          | _ -> None)
        live
    in
    match Unix.select read_fds write_fds [] (Float.max 0.0 timeout) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
      if List.memq t.listen_fd readable then handle_accept t;
      List.iter
        (fun c ->
          if c.alive && List.memq c.fd writable then
            match c.state with Dialing -> finish_dial t c | _ -> flush_out t c)
        live;
      List.iter
        (fun c -> if c.alive && List.memq c.fd readable then handle_readable t c)
        live;
      drain_pending_down t
  end
