(** In-memory transport: endpoints register on a {!hub} keyed by
    address, and every byte crosses as engine-scheduled deliveries with
    a fixed latency - so a multi-node "wire" deployment runs inside
    the deterministic simulator. Crucially this is not a shortcut
    around the byte layer: frames are {!Frame}-encoded into a stream,
    segmented per the hub's policy (whole frames, fixed-size chunks, or
    random splits), and reassembled at the receiver - the exact code
    path the TCP backend runs on socket reads. *)

open Algorand_sim

type segmentation =
  [ `Whole  (** one delivery per frame *)
  | `Chunk of int  (** fixed-size chunks (1 = byte-at-a-time dribble) *)
  | `Random  (** random split points drawn from the hub rng *) ]

type hub

val hub :
  engine:Engine.t ->
  ?latency:float ->
  ?seg:segmentation ->
  ?rng:Rng.t ->
  unit ->
  hub
(** Default latency 0.01s, segmentation [`Whole]. [`Random] requires
    [rng]. *)

type t

val create :
  hub:hub ->
  addr:string ->
  hello:Handshake.hello ->
  ?registry:Algorand_obs.Registry.t ->
  handlers:Transport.handlers ->
  unit ->
  t
(** Register an endpoint at [addr].
    @raise Invalid_argument if the address is taken. *)

include Transport.S with type t := t

val kill : t -> conn:int -> unit
(** Abrupt death mid-stream, as a crashed process: no goodbye, the
    peer observes [Remote_closed] one latency later, any partially
    transmitted frame stays partial. *)

val inject : t -> conn:int -> string -> unit
(** Transmit raw bytes outside the framing layer (garbage, partial
    frames): the adversarial-segmentation test primitive. *)
