(* Length-prefixed framing and incremental reassembly. The reassembler
   is a tiny state machine - reading the 4-byte header, then reading
   the declared payload - that makes no assumption about how the
   stream is segmented: TCP may deliver a frame one byte at a time or
   three frames in one read, and both must recover the same frames. *)

let header_bytes = 4

(* Well below Sys.max_string_length on any platform, far above any
   honest block: declared lengths past this are length bombs. *)
let max_payload = 1 lsl 27 (* 128 MB *)

let encode (payload : string) : string =
  let n = String.length payload in
  if n > max_payload then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (header_bytes + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b header_bytes n;
  Bytes.unsafe_to_string b

module Reassembler = struct
  type error = [ `Oversized of int | `Closed ]

  type t = {
    max_frame_bytes : int;
    header : Bytes.t;  (** partial length prefix *)
    mutable header_have : int;
    mutable body : Bytes.t;  (** payload under assembly (len = declared) *)
    mutable body_have : int;  (** -1: still reading the header *)
    mutable closed : bool;
  }

  let create ~max_frame_bytes =
    {
      max_frame_bytes = min max_frame_bytes max_payload;
      header = Bytes.create header_bytes;
      header_have = 0;
      body = Bytes.empty;
      body_have = -1;
      closed = false;
    }

  let buffered (t : t) : int = t.header_have + max 0 t.body_have

  let declared (t : t) : int =
    (Char.code (Bytes.get t.header 0) lsl 24)
    lor (Char.code (Bytes.get t.header 1) lsl 16)
    lor (Char.code (Bytes.get t.header 2) lsl 8)
    lor Char.code (Bytes.get t.header 3)

  let feed (t : t) ?(off = 0) ?len (chunk : string) :
      (string list, error) result =
    let len = match len with Some l -> l | None -> String.length chunk - off in
    if off < 0 || len < 0 || off + len > String.length chunk then
      invalid_arg "Reassembler.feed";
    if t.closed then Error `Closed
    else begin
      let frames = ref [] in
      let pos = ref off in
      let remaining () = off + len - !pos in
      let err = ref None in
      while remaining () > 0 && !err = None do
        if t.body_have < 0 then begin
          (* Reading the length prefix. *)
          let take = min (header_bytes - t.header_have) (remaining ()) in
          Bytes.blit_string chunk !pos t.header t.header_have take;
          t.header_have <- t.header_have + take;
          pos := !pos + take;
          if t.header_have = header_bytes then begin
            let n = declared t in
            if n > t.max_frame_bytes then begin
              t.closed <- true;
              err := Some (`Oversized n)
            end
            else begin
              t.header_have <- 0;
              t.body <- Bytes.create n;
              t.body_have <- 0;
              (* Zero-length frames complete immediately. *)
              if n = 0 then begin
                frames := "" :: !frames;
                t.body <- Bytes.empty;
                t.body_have <- -1
              end
            end
          end
        end
        else begin
          (* Reading the payload. *)
          let want = Bytes.length t.body - t.body_have in
          let take = min want (remaining ()) in
          Bytes.blit_string chunk !pos t.body t.body_have take;
          t.body_have <- t.body_have + take;
          pos := !pos + take;
          if t.body_have = Bytes.length t.body then begin
            frames := Bytes.unsafe_to_string t.body :: !frames;
            t.body <- Bytes.empty;
            t.body_have <- -1
          end
        end
      done;
      match !err with Some e -> Error e | None -> Ok (List.rev !frames)
    end

  let pp_error fmt = function
    | `Oversized n -> Format.fprintf fmt "declared frame length %d over limit" n
    | `Closed -> Format.fprintf fmt "reassembler poisoned by earlier framing error"
end
