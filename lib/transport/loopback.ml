(* In-memory transport over the simulation engine. One [hub] models
   the localhost loopback: endpoints register by address, connections
   couple two conn records, and transmitted bytes arrive as scheduled
   deliveries after a fixed latency, segmented per policy and fed
   through the same Frame.Reassembler the TCP backend uses. *)

open Algorand_sim

type segmentation = [ `Whole | `Chunk of int | `Random ]

type hub = {
  engine : Engine.t;
  latency : float;
  seg : segmentation;
  rng : Rng.t option;
  endpoints : (string, endpoint) Hashtbl.t;
  mutable next_id : int;
}

and endpoint = {
  hub : hub;
  addr_ : string;
  hello : Handshake.hello;
  handlers : Transport.handlers;
  m : Transport.metrics;
  conns_tbl : (int, conn) Hashtbl.t;
  dialed : (int, string) Hashtbl.t;  (** conn id -> address we dialed *)
  mutable closed : bool;
}

and conn = {
  id : int;
  owner : endpoint;
  mutable peer : conn option;  (** None while dialing or after teardown *)
  reasm : Frame.Reassembler.t;
  dialer : bool;
  mutable up : bool;  (** handshake complete *)
  mutable alive : bool;
}

type t = endpoint

let max_frame_bytes = Frame.max_payload

let hub ~engine ?(latency = 0.01) ?(seg = `Whole) ?rng () : hub =
  (match (seg, rng) with
  | `Random, None -> invalid_arg "Loopback.hub: `Random segmentation needs an rng"
  | _ -> ());
  { engine; latency; seg; rng; endpoints = Hashtbl.create 16; next_id = 0 }

let create ~hub:(h : hub) ~addr ~hello ?registry ~(handlers : Transport.handlers) () : t
    =
  if Hashtbl.mem h.endpoints addr then
    invalid_arg (Printf.sprintf "Loopback.create: address %s taken" addr);
  let registry =
    match registry with Some r -> r | None -> Algorand_obs.Registry.create ()
  in
  let ep =
    {
      hub = h;
      addr_ = addr;
      hello;
      handlers;
      m = Transport.metrics registry;
      conns_tbl = Hashtbl.create 8;
      dialed = Hashtbl.create 8;
      closed = false;
    }
  in
  Hashtbl.replace h.endpoints addr ep;
  ep

let addr (t : t) : string = t.addr_

let fresh_conn (t : t) ~dialer : conn =
  let h = t.hub in
  h.next_id <- h.next_id + 1;
  let c =
    {
      id = h.next_id;
      owner = t;
      peer = None;
      reasm = Frame.Reassembler.create ~max_frame_bytes;
      dialer;
      up = false;
      alive = true;
    }
  in
  Hashtbl.replace t.conns_tbl c.id c;
  c

(* Tear down one side; the peer (if still linked) observes a remote
   close one latency later. [on_peer_down] fires before the dialed
   table is cleaned, so a reconnecting layer can still resolve the
   address it was dialing. *)
let rec teardown (c : conn) (reason : Transport.reason) : unit =
  if c.alive then begin
    c.alive <- false;
    let ep = c.owner in
    Hashtbl.remove ep.conns_tbl c.id;
    (match c.peer with
    | Some p when p.alive ->
      c.peer <- None;
      p.peer <- None;
      Engine.schedule ep.hub.engine ~delay:ep.hub.latency (fun () ->
          teardown p Transport.Remote_closed)
    | _ -> ());
    if not ep.closed then begin
      Algorand_obs.Registry.incr ep.m.peer_downs;
      ep.handlers.on_peer_down ~conn:c.id reason
    end;
    Hashtbl.remove ep.dialed c.id
  end

(* Split [bytes] into delivery segments per the hub policy. *)
let segments (h : hub) (bytes : string) : string list =
  let n = String.length bytes in
  match h.seg with
  | `Whole -> [ bytes ]
  | `Chunk k ->
    let k = max 1 k in
    let rec go i acc =
      if i >= n then List.rev acc
      else go (i + k) (String.sub bytes i (min k (n - i)) :: acc)
    in
    go 0 []
  | `Random ->
    let rng = Option.get h.rng in
    let rec go i acc =
      if i >= n then List.rev acc
      else begin
        let k = 1 + Rng.int rng (min 64 (n - i)) in
        go (i + k) (String.sub bytes i k :: acc)
      end
    in
    go 0 []

let rec transmit (c : conn) (bytes : string) : unit =
  match c.peer with
  | None -> ()
  | Some p ->
    let h = c.owner.hub in
    Algorand_obs.Registry.add c.owner.m.bytes_sent (String.length bytes);
    List.iter
      (fun seg ->
        Engine.schedule h.engine ~delay:h.latency (fun () ->
            if p.alive && not p.owner.closed then receive p seg))
      (segments h bytes)

and receive (c : conn) (seg : string) : unit =
  let ep = c.owner in
  Algorand_obs.Registry.add ep.m.bytes_received (String.length seg);
  match Frame.Reassembler.feed c.reasm seg with
  | Error _ -> teardown c Transport.Framing_error
  | Ok frames -> List.iter (fun f -> if c.alive then handle_frame c f) frames

and handle_frame (c : conn) (frame : string) : unit =
  let ep = c.owner in
  Algorand_obs.Registry.incr ep.m.frames_received;
  if c.up then ep.handlers.on_frame ~conn:c.id frame
  else begin
    (* First frame: the handshake. *)
    match Handshake.decode frame with
    | None ->
      Algorand_obs.Registry.incr ep.m.handshake_failures;
      teardown c Transport.Handshake_garbage
    | Some (Handshake.Reject r) ->
      Algorand_obs.Registry.incr ep.m.handshake_failures;
      teardown c (Transport.Handshake_rejected r)
    | Some (Handshake.Hello theirs) ->
      let reject r =
        Algorand_obs.Registry.incr ep.m.handshake_failures;
        transmit c (Frame.encode (Handshake.encode (Handshake.Reject r)));
        teardown c Transport.(Handshake_rejected r)
      in
      if not (ep.handlers.accept_peer theirs) then reject `Banned
      else begin
        match Handshake.check ~ours:ep.hello ~theirs with
        | Error r -> reject r
        | Ok () ->
          (* An acceptor answers with its own hello; a dialer already
             sent one when the link came up. *)
          if not c.dialer then begin
            Algorand_obs.Registry.incr ep.m.accepts;
            send_hello c
          end;
          c.up <- true;
          ep.handlers.on_peer_up ~conn:c.id theirs
      end
  end

and send_hello (c : conn) : unit =
  Algorand_obs.Registry.incr c.owner.m.frames_sent;
  transmit c (Frame.encode (Handshake.encode (Handshake.Hello c.owner.hello)))

let connect (t : t) (addr : string) : unit =
  if not t.closed then begin
    let h = t.hub in
    Algorand_obs.Registry.incr t.m.dials;
    let c = fresh_conn t ~dialer:true in
    Hashtbl.replace t.dialed c.id addr;
    Engine.schedule h.engine ~delay:h.latency (fun () ->
        if c.alive then begin
          match Hashtbl.find_opt h.endpoints addr with
          | Some remote when not remote.closed ->
            let rc = fresh_conn remote ~dialer:false in
            c.peer <- Some rc;
            rc.peer <- Some c;
            send_hello c
          | _ -> teardown c Transport.Dial_failed
        end)
  end

let send (t : t) ~(conn : int) (payload : string) : Transport.send_result =
  match Hashtbl.find_opt t.conns_tbl conn with
  | Some c when c.up && c.alive ->
    Algorand_obs.Registry.incr t.m.frames_sent;
    (* The loopback wire has no finite socket buffer; depth 1 keeps the
       histogram alive so dashboards see the same metric family. *)
    Algorand_obs.Registry.observe t.m.write_queue_depth 1.0;
    transmit c (Frame.encode payload);
    `Ok
  | _ -> `No_conn

let disconnect (t : t) ~(conn : int) : unit =
  match Hashtbl.find_opt t.conns_tbl conn with
  | Some c -> teardown c Transport.Local_close
  | None -> ()

let conns (t : t) : int list =
  Hashtbl.fold (fun id c acc -> if c.up then id :: acc else acc) t.conns_tbl []
  |> List.sort compare

let peer (t : t) ~(conn : int) : Handshake.hello option =
  match Hashtbl.find_opt t.conns_tbl conn with
  | Some c when c.up -> (
    match c.peer with Some p -> Some p.owner.hello | None -> None)
  | _ -> None

let dialed_addr (t : t) ~(conn : int) : string option = Hashtbl.find_opt t.dialed conn

let kill (t : t) ~(conn : int) : unit =
  match Hashtbl.find_opt t.conns_tbl conn with
  | Some c -> teardown c Transport.Local_close
  | None -> ()

let inject (t : t) ~(conn : int) (bytes : string) : unit =
  match Hashtbl.find_opt t.conns_tbl conn with
  | Some c when c.alive -> transmit c bytes
  | _ -> ()

let shutdown (t : t) : unit =
  if not t.closed then begin
    t.closed <- true;
    Hashtbl.remove t.hub.endpoints t.addr_;
    let all = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns_tbl [] in
    List.iter (fun c -> teardown c Transport.Local_close) all
  end
