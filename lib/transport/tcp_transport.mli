(** TCP backend: non-blocking [Unix] sockets driven by a [select]
    event loop the caller pumps via {!poll}. Each endpoint owns one
    listening socket plus its connections; reads feed the same
    {!Frame.Reassembler} the loopback uses, writes go through
    per-connection bounded queues (a full queue drops the frame and
    counts it in [transport.backpressure_drops]).

    Nothing here blocks except {!poll}, and only up to its [timeout]:
    dials are asynchronous (outcome arrives as [on_peer_up] /
    [on_peer_down]), handshake rejections are flushed before the
    socket closes, and all callbacks fire from inside {!poll} - never
    from [connect] or [send] - so callers can re-dial from
    [on_peer_down] without re-entrancy surprises. *)

type t

val create :
  listen:string ->
  hello:Handshake.hello ->
  ?registry:Algorand_obs.Registry.t ->
  ?max_frame_bytes:int ->
  ?write_queue_frames:int ->
  handlers:Transport.handlers ->
  unit ->
  t
(** Bind and listen on [listen] ("host:port"; port 0 picks an
    ephemeral port - read the result back with [addr]). Defaults:
    [max_frame_bytes = Frame.max_payload], [write_queue_frames = 1024].
    @raise Unix.Unix_error if the bind fails. *)

include Transport.S with type t := t

val poll : t -> timeout:float -> unit
(** One event-loop iteration: select up to [timeout] seconds, then
    accept, complete dials, read (dispatching complete frames) and
    flush writes. All handler callbacks fire from here. *)
