(** The abstract transport boundary (TSUNAGI phasing: interface first,
    sockets after the boundary is tested). A transport endpoint owns a
    listen address and a set of connections; every connection carries
    length-prefixed {!Frame}s and opens with a {!Handshake} exchange in
    both directions. Implementations: {!Loopback} (in-memory, scheduled
    on the deterministic simulation engine) and {!Tcp_transport}
    (non-blocking [Unix] sockets). Everything above this boundary -
    gossip relay, the node core, the daemon - is identical across the
    two, which is what makes the in-sim and on-wire ledgers comparable
    bit for bit. *)

open Algorand_obs

(** Why a connection went down. *)
type reason =
  | Handshake_rejected of Handshake.reject_reason
      (** the peer told us why (version/params/ban) before closing *)
  | Handshake_garbage  (** first frame was not a parseable handshake *)
  | Framing_error  (** undecodable byte stream (oversized declared length) *)
  | Remote_closed  (** orderly or abrupt close by the peer *)
  | Dial_failed  (** connect could not reach the address *)
  | Local_close  (** we closed it *)

val pp_reason : Format.formatter -> reason -> unit

(** Callbacks an endpoint invokes. Mutable so the layer above (which
    needs the endpoint handle to exist first) can install itself after
    construction; defaults are no-ops. [on_frame] only fires after
    [on_peer_up] for the same connection - handshake frames are
    consumed by the transport. *)
type handlers = {
  mutable on_peer_up : conn:int -> Handshake.hello -> unit;
  mutable on_frame : conn:int -> string -> unit;
  mutable on_peer_down : conn:int -> reason -> unit;
  mutable accept_peer : Handshake.hello -> bool;
      (** identity-level admission (roster membership, bans); a [false]
          sends [Reject `Banned] and closes *)
}

val handlers : unit -> handlers

type send_result = [ `Ok | `Dropped | `No_conn ]
(** [`Dropped]: the per-connection write queue was full (backpressure)
    and the frame was discarded, counted in
    [transport.backpressure_drops]. *)

(** What both backends implement. Connection ids are endpoint-local
    and never reused. *)
module type S = sig
  type t

  val addr : t -> string
  (** Our listen address, as peers would dial it. *)

  val connect : t -> string -> unit
  (** Dial an address; asynchronous. Outcome arrives as [on_peer_up]
      or [on_peer_down]. *)

  val send : t -> conn:int -> string -> send_result
  (** Enqueue one frame (payload; framing is the transport's job). *)

  val disconnect : t -> conn:int -> unit
  val conns : t -> int list
  (** Connections that completed their handshake, ascending. *)

  val peer : t -> conn:int -> Handshake.hello option

  val dialed_addr : t -> conn:int -> string option
  (** For dialed connections, the address given to [connect] - what a
      reconnecting layer redials. [None] for accepted connections.
      Survives until after the connection's [on_peer_down] returns. *)

  val shutdown : t -> unit
end

(** {1 Shared observability}

    Both backends maintain the same [transport.*] metrics in a
    {!Registry.t}: [transport.bytes_sent], [transport.bytes_received],
    [transport.frames_sent], [transport.frames_received],
    [transport.handshake_failures], [transport.backpressure_drops],
    [transport.reconnects], [transport.dials], [transport.accepts],
    [transport.peer_downs] counters and a
    [transport.write_queue_depth] histogram (queue depth in frames,
    observed at every enqueue). *)

type metrics = {
  bytes_sent : Registry.counter;
  bytes_received : Registry.counter;
  frames_sent : Registry.counter;
  frames_received : Registry.counter;
  handshake_failures : Registry.counter;
  backpressure_drops : Registry.counter;
  reconnects : Registry.counter;  (** bumped by the layer that redials *)
  dials : Registry.counter;
  accepts : Registry.counter;
  peer_downs : Registry.counter;
  write_queue_depth : Registry.histogram;
}

val metrics : Registry.t -> metrics
(** Get-or-create the [transport.*] family in [registry]. *)
