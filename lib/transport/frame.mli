(** Length-prefixed wire framing: every payload (handshake or encoded
    gossip message) crosses a connection as a 4-byte big-endian length
    followed by that many bytes. The {!Reassembler} is the only code
    that touches raw socket bytes, and it treats them as
    attacker-controlled: declared lengths are clamped before any
    allocation, partial frames are buffered incrementally, and feeding
    it one byte at a time, in jittered chunks, or across coalesced
    frame boundaries recovers exactly the frames that were encoded. *)

val header_bytes : int
(** 4: the big-endian u32 length prefix. *)

val encode : string -> string
(** [encode payload] is the on-wire form: length prefix ++ payload. *)

val max_payload : int
(** Hard ceiling on a declared frame length (independent of the
    per-reassembler limit): rejects length bombs near [max_int]. *)

module Reassembler : sig
  type t

  type error =
    [ `Oversized of int  (** declared length exceeded the limit *)
    | `Closed  (** bytes fed after a framing error *) ]

  val create : max_frame_bytes:int -> t
  (** [max_frame_bytes] bounds the *payload* length a peer may declare;
      anything larger poisons the connection (the caller should drop
      it - there is no way to resynchronize a byte stream after a bad
      length). *)

  val feed : t -> ?off:int -> ?len:int -> string -> (string list, error) result
  (** Consume a chunk of stream bytes and return the complete frames it
      finished, in order. Partial header and partial payload bytes are
      buffered across calls. After an error the reassembler is poisoned
      and every further feed returns [`Closed]. *)

  val buffered : t -> int
  (** Bytes currently buffered (partial header + partial payload):
      bounded by [header_bytes + max_frame_bytes]. *)

  val pp_error : Format.formatter -> error -> unit
end
