(** The versioned transport handshake. The first frame on every
    connection, in both directions, is a [Hello] carrying the protocol
    version, a digest of the protocol parameters (and genesis) the
    sender is configured with, and the sender's node identity (its
    composite public key). A receiver that disagrees answers with an
    explicit [Reject] and closes, so a misconfigured dialer learns
    *why* instead of seeing a silent hangup. Decoding treats the frame
    as attacker-controlled: bounded lengths, no exceptions. *)

val version : int
(** Current protocol version. *)

type hello = {
  version : int;
  params_digest : string;  (** digest of protocol params + genesis *)
  pk : string;  (** node identity (composite public key) *)
}

type reject_reason = [ `Version of int | `Params_digest | `Banned ]

type t = Hello of hello | Reject of reject_reason

val encode : t -> string
val decode : string -> t option
(** [None] on malformed, truncated, oversized or wrong-magic input. *)

val check : ours:hello -> theirs:hello -> (unit, reject_reason) result
(** Version first, then params digest; identity is the caller's to
    judge (roster membership, bans). *)

val pp_reject : Format.formatter -> reject_reason -> unit
