(** Addition chains for exponentiation in GF(2{^255} - 19), shared by
    the fixed-limb field ([Fe25519]) and the arbitrary-precision oracle
    field ([Ed25519.Fp]): 254 squarings + 11 multiplications instead of
    the generic square-and-multiply's ~127 multiplications. *)

val pow_p_minus_2 : mul:('a -> 'a -> 'a) -> sqr:('a -> 'a) -> 'a -> 'a
(** [z{^p-2}] — the Fermat inverse exponent [2{^255} - 21]. *)

val pow_2_252_minus_3 : mul:('a -> 'a -> 'a) -> sqr:('a -> 'a) -> 'a -> 'a
(** [z{^(p-5)/8}] [= z{^2{^252} - 3}] — the square-root exponent. *)
