(** Pluggable signature schemes, mirroring the two VRF implementations:
    [ed25519] is real Schnorr; [sim] is a recomputable hash tag with
    the same interface, for large-scale simulations. *)

type signer = { sign : string -> string }

type scheme = {
  name : string;
  generate : seed:string -> signer * string;  (** seed -> (signer, public key) *)
  verify : pk:string -> msg:string -> signature:string -> bool;
  verify_batch : (string * string * string) list -> bool;
      (** [(pk, msg, signature)] triples, all checked at once; accepts
          iff every signature is valid. For [ed25519] this is the
          random-linear-combination batch equation (several times
          cheaper per signature than [verify]); for [sim] it is a
          plain fold. The empty batch is valid. *)
  signature_length : int;
}

val ed25519 : scheme
val sim : scheme
