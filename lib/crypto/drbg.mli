(** Deterministic random byte generator (HMAC-SHA256 counter mode).

    Expands a short seed into unbounded key material. Deterministic by
    design so experiments and tests are reproducible. *)

type t

val create : seed:string -> t
val random_bytes : t -> int -> string

val random_int : t -> int -> int
(** [random_int t bound] is uniform in [\[0, bound)], rejection-sampled. *)

val random_nat : t -> bytes:int -> Nat.t
(** [random_nat t ~bytes] is a uniform natural below [2{^8*bytes}]
    (little-endian interpretation of [bytes] generator bytes); used for
    the batch-verification coefficients. *)
