(* Pluggable signature scheme, mirroring the two VRF implementations:
   [ed25519] is the real Schnorr scheme; [sim] is a recomputable hash
   tag with the same interface and sizes, used by large-scale
   simulations where the paper, too, elides cryptographic verification
   cost (section 10.1). *)

type signer = { sign : string -> string }

type scheme = {
  name : string;
  generate : seed:string -> signer * string;  (** seed -> (signer, public key) *)
  verify : pk:string -> msg:string -> signature:string -> bool;
  verify_batch : (string * string * string) list -> bool;
      (** [(pk, msg, signature)] triples, all checked at once; accepts
          iff every signature is valid. For [ed25519] this is the
          random-linear-combination batch equation (several times
          cheaper per signature than [verify]); for [sim] it is a
          plain fold. The empty batch is valid. *)
  signature_length : int;
}

let ed25519 : scheme =
  let generate ~seed =
    let sk = Ed25519.generate ~seed in
    ({ sign = (fun msg -> Ed25519.sign sk msg) }, Ed25519.public_key sk)
  in
  let verify ~pk ~msg ~signature = Ed25519.verify ~public:pk ~msg ~signature in
  {
    name = "ed25519";
    generate;
    verify;
    verify_batch = Ed25519.verify_batch;
    signature_length = Ed25519.signature_length;
  }

let sim : scheme =
  let generate ~seed =
    let pk = Sha256.digest_concat [ "simsig-key"; seed ] in
    ({ sign = (fun msg -> Sha256.digest_concat [ "simsig"; pk; msg ]) }, pk)
  in
  let verify ~pk ~msg ~signature =
    String.equal signature (Sha256.digest_concat [ "simsig"; pk; msg ])
  in
  let verify_batch items =
    List.for_all (fun (pk, msg, signature) -> verify ~pk ~msg ~signature) items
  in
  { name = "sim"; generate; verify; verify_batch; signature_length = Sha256.digest_length }
