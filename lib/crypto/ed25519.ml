(* The ed25519 twisted Edwards curve (-x^2 + y^2 = 1 + d x^2 y^2 over
   GF(2^255 - 19)) with Schnorr signatures.

   All group constants are computed rather than transcribed: d is
   -121665/121666, the base point is recovered from y = 4/5 with even x,
   and sqrt(-1) is 2^((p-1)/4). Module initialization asserts the base
   point is on the curve and that [L]B is the identity, so a derivation
   bug cannot go unnoticed.

   The signature scheme is textbook Schnorr over this curve with SHA-256
   as the hash (deliberately not RFC 8032 wire-compatible; this is a
   closed system with no interop requirement). *)

(* ------------------------------------------------------------------ *)
(* Field GF(p), p = 2^255 - 19, with pseudo-Mersenne reduction.        *)
(* ------------------------------------------------------------------ *)

module Fp = struct
  let p = Ed25519_p.p

  (* x mod p, folding the high part with 2^255 = 19 (mod p). *)
  let reduce (x : Nat.t) : Nat.t =
    let x = ref x in
    while Nat.bit_length !x > 255 do
      let lo = Nat.low_bits !x 255 and hi = Nat.shift_right !x 255 in
      x := Nat.add lo (Nat.mul_int hi 19)
    done;
    if Nat.compare !x p >= 0 then Nat.sub !x p else !x

  let zero = Nat.zero
  let one = Nat.one
  let add a b = reduce (Nat.add a b)
  let sub a b = if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a p) b
  let mul a b = reduce (Nat.mul a b)
  let sqr a = mul a a
  let neg a = if Nat.is_zero a then a else Nat.sub p a

  (* Generic square-and-multiply; the exponent's bits are extracted to
     an int array once rather than re-querying the arbitrary-precision
     layer per bit. *)
  let pow (base : Nat.t) (e : Nat.t) : Nat.t =
    let bits = Nat.bits e in
    let result = ref one in
    let b = ref (reduce base) in
    let n = Array.length bits in
    for i = 0 to n - 1 do
      if bits.(i) = 1 then result := mul !result !b;
      if i < n - 1 then b := sqr !b
    done;
    !result

  let inv a = Addchain.pow_p_minus_2 ~mul ~sqr a

  (* sqrt(-1) = 2^((p-1)/4); (p-1)/4 = 2*(2^252 - 3) + 1. *)
  let sqrt_m1 = mul (sqr (Addchain.pow_2_252_minus_3 ~mul ~sqr Nat.two)) Nat.two

  (* Square root via the (p+3)/8 exponent trick, with the exponent
     (p+3)/8 = (p-5)/8 + 1 run as an addition chain. *)
  let sqrt (u : Nat.t) : Nat.t option =
    let u = reduce u in
    let cand = mul u (Addchain.pow_2_252_minus_3 ~mul ~sqr u) in
    let c2 = sqr cand in
    if Nat.equal c2 u then Some cand
    else begin
      let cand' = mul cand sqrt_m1 in
      if Nat.equal (sqr cand') u then Some cand' else None
    end

  let of_int = Nat.of_int
end

(* Curve coefficient d = -121665/121666 and 2d. *)
let d = Fp.mul (Fp.neg (Fp.of_int 121665)) (Fp.inv (Fp.of_int 121666))
let two_d = Fp.add d d

(* Prime subgroup order L = 2^252 + 27742317777372353535851937790883648493 *)
let order =
  Nat.add
    (Nat.shift_left Nat.one 252)
    (Nat.of_decimal "27742317777372353535851937790883648493")

(* ------------------------------------------------------------------ *)
(* Points in extended homogeneous coordinates (X : Y : Z : T).         *)
(*                                                                     *)
(* Coordinates live in the fixed-limb field (Fe25519): the group law   *)
(* runs thousands of field multiplications per scalar multiplication,  *)
(* and the fixed representation is several times faster than the       *)
(* generic Nat arithmetic (which remains the reference oracle in the   *)
(* Fp module above and in the test suite).                             *)
(* ------------------------------------------------------------------ *)

module Fe = Fe25519

type point = { x : Fe.t; y : Fe.t; z : Fe.t; t : Fe.t }

let two_d_fe = Fe.of_nat two_d
let d_fe = Fe.of_nat d

let identity = { x = Fe.zero (); y = Fe.one (); z = Fe.one (); t = Fe.zero () }

let to_affine (p : point) : Nat.t * Nat.t =
  let zi = Fe.inv p.z in
  (Fe.to_nat (Fe.mul p.x zi), Fe.to_nat (Fe.mul p.y zi))

let on_curve (pt : point) : bool =
  let x, y = to_affine pt in
  let x2 = Fp.sqr x and y2 = Fp.sqr y in
  let lhs = Fp.sub y2 x2 in
  let rhs = Fp.add Fp.one (Fp.mul d (Fp.mul x2 y2)) in
  Nat.equal lhs rhs

(* RFC 8032 extended-coordinate addition (a = -1, complete formulas). *)
let add (p : point) (q : point) : point =
  let a = Fe.mul (Fe.sub p.y p.x) (Fe.sub q.y q.x) in
  let b = Fe.mul (Fe.add p.y p.x) (Fe.add q.y q.x) in
  let c = Fe.mul (Fe.mul p.t two_d_fe) q.t in
  let dd = Fe.mul (Fe.add p.z p.z) q.z in
  let e = Fe.sub b a in
  let f = Fe.sub dd c in
  let g = Fe.add dd c in
  let h = Fe.add b a in
  { x = Fe.mul e f; y = Fe.mul g h; t = Fe.mul e h; z = Fe.mul f g }

let double (p : point) : point =
  let a = Fe.sqr p.x in
  let b = Fe.sqr p.y in
  let z2 = Fe.sqr p.z in
  let c = Fe.add z2 z2 in
  let h = Fe.add a b in
  let e = Fe.sub h (Fe.sqr (Fe.add p.x p.y)) in
  let g = Fe.sub a b in
  let f = Fe.add c g in
  { x = Fe.mul e f; y = Fe.mul g h; t = Fe.mul e h; z = Fe.mul f g }

(* Doubling never reads [p.t], and the [t] it produces is only consumed
   by a following addition. At w-NAF chain positions whose digits are
   all zero the next operation is another doubling, so the [t = e*h]
   multiplication is pure waste; this variant skips it (its output [t]
   is garbage and must be consumed only by [double]/[double_nt]). The
   chain loops below fall back to the full [double] at positions with a
   nonzero digit and at position 0, so every point that escapes a chain
   carries a valid extended coordinate. *)
let double_nt (p : point) : point =
  let a = Fe.sqr p.x in
  let b = Fe.sqr p.y in
  let z2 = Fe.sqr p.z in
  let c = Fe.add z2 z2 in
  let h = Fe.add a b in
  let e = Fe.sub h (Fe.sqr (Fe.add p.x p.y)) in
  let g = Fe.sub a b in
  let f = Fe.add c g in
  { x = Fe.mul e f; y = Fe.mul g h; t = Fe.zero (); z = Fe.mul f g }

let neg (p : point) : point = { p with x = Fe.neg p.x; t = Fe.neg p.t }

let scalar_mult (k : Nat.t) (p : point) : point =
  let acc = ref identity in
  for i = Nat.bit_length k - 1 downto 0 do
    acc := double !acc;
    if Nat.testbit k i then acc := add !acc p
  done;
  !acc

let equal_points (p : point) (q : point) : bool =
  (* Cross-multiplied comparison avoids inversions. *)
  Fe.equal (Fe.mul p.x q.z) (Fe.mul q.x p.z)
  && Fe.equal (Fe.mul p.y q.z) (Fe.mul q.y p.z)

(* ------------------------------------------------------------------ *)
(* The fast scalar-multiplication engine.                              *)
(*                                                                     *)
(* Building blocks: batched affine conversion (one shared inversion),  *)
(* precomputed affine points with mixed addition (7M instead of 9M),   *)
(* and signed sliding-window (w-NAF) scalar recoding. On top of these  *)
(* sit a fixed-base comb table for B (sign, keygen, VRF nonces), w-NAF *)
(* variable-base multiplication, Strauss-Shamir interleaved            *)
(* double-scalar multiplication (verification), and an n-way           *)
(* multi-scalar accumulator (batch verification). The naive            *)
(* [scalar_mult] above stays as the randomized-test oracle.            *)
(* ------------------------------------------------------------------ *)

(* Normalize many points to z = 1 with a single field inversion
   (Montgomery's trick); used to build precomputed tables cheaply. *)
let normalize_many (ps : point array) : point array =
  let zinvs = Fe.inv_many (Array.map (fun p -> p.z) ps) in
  Array.mapi
    (fun i p ->
      let x = Fe.mul p.x zinvs.(i) and y = Fe.mul p.y zinvs.(i) in
      { x; y; z = Fe.one (); t = Fe.mul x y })
    ps

let to_affine_many (ps : point array) : (Nat.t * Nat.t) array =
  Array.map (fun p -> (Fe.to_nat p.x, Fe.to_nat p.y)) (normalize_many ps)

(* Precomputed affine form (y+x, y-x, 2d*x*y), z = 1 implicit. *)
type precomp = { yplusx : Fe.t; yminusx : Fe.t; xy2d : Fe.t }

(* Requires p.z = 1 (see [normalize_many]). *)
let precomp_of_affine (p : point) : precomp =
  {
    yplusx = Fe.add p.y p.x;
    yminusx = Fe.sub p.y p.x;
    xy2d = Fe.mul (Fe.mul p.x p.y) two_d_fe;
  }

(* Mixed addition p + q with q precomputed affine: the general addition
   with Z2 = 1 folded in, 7 multiplications instead of 9. *)
let madd (p : point) (q : precomp) : point =
  let a = Fe.mul (Fe.sub p.y p.x) q.yminusx in
  let b = Fe.mul (Fe.add p.y p.x) q.yplusx in
  let c = Fe.mul q.xy2d p.t in
  let dd = Fe.add p.z p.z in
  let e = Fe.sub b a in
  let f = Fe.sub dd c in
  let g = Fe.add dd c in
  let h = Fe.add b a in
  { x = Fe.mul e f; y = Fe.mul g h; t = Fe.mul e h; z = Fe.mul f g }

(* p - q: negating an affine point swaps (y+x, y-x) and negates xy2d,
   which folds into swapped factors and swapped F/G terms. *)
let msub (p : point) (q : precomp) : point =
  let a = Fe.mul (Fe.sub p.y p.x) q.yplusx in
  let b = Fe.mul (Fe.add p.y p.x) q.yminusx in
  let c = Fe.mul q.xy2d p.t in
  let dd = Fe.add p.z p.z in
  let e = Fe.sub b a in
  let f = Fe.add dd c in
  let g = Fe.sub dd c in
  let h = Fe.add b a in
  { x = Fe.mul e f; y = Fe.mul g h; t = Fe.mul e h; z = Fe.mul f g }

(* Signed sliding-window recoding: digits are odd with |d| < 2^(w-1),
   and any w consecutive positions hold at most one nonzero digit, so
   a 253-bit scalar costs ~253/(w+1) additions. *)
let wnaf_digits (k : Nat.t) ~(w : int) : int array =
  let kbits = Nat.bits k in
  let n = Array.length kbits in
  let len = n + (2 * w) + 2 in
  let bits = Array.make len 0 in
  Array.blit kbits 0 bits 0 n;
  let naf = Array.make len 0 in
  let i = ref 0 in
  while !i < len do
    if bits.(!i) = 0 then incr i
    else begin
      (* Odd here: take w bits as a signed digit. *)
      let u = ref 0 in
      for j = w - 1 downto 0 do
        u := (!u lsl 1) lor (if !i + j < len then bits.(!i + j) else 0)
      done;
      let d = if !u land (1 lsl (w - 1)) <> 0 then !u - (1 lsl w) else !u in
      naf.(!i) <- d;
      for j = 0 to w - 1 do
        if !i + j < len then bits.(!i + j) <- 0
      done;
      (* A negative digit borrows 2^w: propagate the carry upward. *)
      if d < 0 then begin
        let j = ref (!i + w) in
        while !j < len && bits.(!j) = 1 do
          bits.(!j) <- 0;
          incr j
        done;
        if !j < len then bits.(!j) <- 1
      end;
      i := !i + w
    end
  done;
  naf

let top_nonzero (naf : int array) : int =
  let i = ref (Array.length naf - 1) in
  while !i >= 0 && naf.(!i) = 0 do
    decr i
  done;
  !i

(* [p; 3p; 5p; ...; (2*size - 1)p] in extended coordinates. *)
let odd_multiples (p : point) ~(size : int) : point array =
  let p2 = double p in
  let tbl = Array.make size p in
  for i = 1 to size - 1 do
    tbl.(i) <- add tbl.(i - 1) p2
  done;
  tbl

(* Add digit * P into acc, where tbl holds odd multiples of P. *)
let apply_digit (acc : point) (tbl : point array) (d : int) : point =
  if d > 0 then add acc tbl.((d - 1) / 2)
  else if d < 0 then add acc (neg tbl.((-d - 1) / 2))
  else acc

let apply_digit_pre (acc : point) (tbl : precomp array) (d : int) : point =
  if d > 0 then madd acc tbl.((d - 1) / 2)
  else if d < 0 then msub acc tbl.((-d - 1) / 2)
  else acc

(* Variable-base w-NAF scalar multiplication. The scalar is NOT reduced
   mod L, so this is exact on the whole group (including mixed-order
   points), matching the naive oracle. *)
let scalar_mult_fast (k : Nat.t) (p : point) : point =
  let naf = wnaf_digits k ~w:5 in
  let top = top_nonzero naf in
  if top < 0 then identity
  else begin
    let tbl = odd_multiples p ~size:8 in
    let acc = ref (apply_digit identity tbl naf.(top)) in
    for i = top - 1 downto 0 do
      let d = naf.(i) in
      acc := (if d <> 0 || i = 0 then double !acc else double_nt !acc);
      if d <> 0 then acc := apply_digit !acc tbl d
    done;
    !acc
  end

(* ------------------------------------------------------------------ *)
(* Point compression: 32 bytes, little-endian y with x parity on top.  *)
(* ------------------------------------------------------------------ *)

let encode (p : point) : string =
  let x, y = to_affine p in
  let b = Bytes.of_string (Nat.to_bytes_le y ~len:32) in
  if Nat.testbit x 0 then Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) lor 0x80));
  Bytes.unsafe_to_string b

(* Encode a whole array with one shared inversion; each [encode] above
   costs a full field inversion, so callers that need several encodings
   at once (the VRF's proof and verification points) batch them. *)
let encode_many (ps : point array) : string array =
  Array.map
    (fun p ->
      (* z = 1 after normalization, so x and y are affine. *)
      let b = Bytes.of_string (Nat.to_bytes_le (Fe.to_nat p.y) ~len:32) in
      if Fe.parity p.x = 1 then
        Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) lor 0x80));
      Bytes.unsafe_to_string b)
    (normalize_many ps)

(* Decompression runs entirely in the fast field: x is recovered with
   the combined sqrt-ratio trick (one addition chain, no inversion),
   several times cheaper than the old Nat-based sqrt + invert path.
   Non-canonical encodings (y >= p, or x = 0 with the sign bit set) are
   rejected as before. *)
let decode (s : string) : point option =
  if String.length s <> 32 then None
  else begin
    let sign = Char.code s.[31] lsr 7 in
    let y_bytes =
      let b = Bytes.of_string s in
      Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) land 0x7f));
      Bytes.unsafe_to_string b
    in
    let y_nat = Nat.of_bytes_le y_bytes in
    if Nat.compare y_nat Fp.p >= 0 then None
    else begin
      let y = Fe.of_nat y_nat in
      let y2 = Fe.sqr y in
      let u = Fe.sub y2 (Fe.one ()) in
      let v = Fe.add (Fe.mul d_fe y2) (Fe.one ()) in
      match Fe.sqrt_ratio ~u ~v with
      | None -> None
      | Some x ->
        if Fe.is_zero x && sign = 1 then None
        else begin
          let x = if Fe.parity x <> sign then Fe.neg x else x in
          Some { x; y; z = Fe.one (); t = Fe.mul x y }
        end
    end
  end

(* Base point: y = 4/5, even x. *)
let base =
  let y = Fp.mul (Fp.of_int 4) (Fp.inv (Fp.of_int 5)) in
  let enc = Nat.to_bytes_le y ~len:32 in
  match decode enc with
  | Some b -> b
  | None -> failwith "ed25519: base point derivation failed"

let () =
  (* Self-check the derived constants once at startup. *)
  assert (on_curve base);
  assert (equal_points (scalar_mult order base) identity)

(* ------------------------------------------------------------------ *)
(* Precomputed tables for the base point.                              *)
(* ------------------------------------------------------------------ *)

(* Fixed-base comb: radix-16 digits of the (mod-L-reduced) scalar, one
   precomputed row per digit position, so k*P costs ~64 mixed additions
   and zero doublings. comb.(i).(j-1) = j * 16^i * P. Built for the
   base point below, and on demand for any other heavily-reused point
   (sortition's per-step hash-to-curve point). *)
let comb_positions = 64
let comb_row = 15

type comb = precomp array array

(* ~1000 point operations plus one shared inversion: only worth
   building for a point that will be multiplied many times. [p] must
   lie in the prime-order subgroup, because [scalar_mult_comb] reduces
   scalars mod L before taking digits. *)
let comb_of_point (p : point) : comb =
  let buf = Array.make (comb_positions * comb_row) identity in
  let pos = ref p (* 16^i * P *) in
  for i = 0 to comb_positions - 1 do
    let acc = ref !pos in
    for j = 1 to comb_row do
      buf.((i * comb_row) + (j - 1)) <- !acc;
      acc := add !acc !pos
    done;
    for _ = 1 to 4 do
      pos := double !pos
    done
  done;
  let affine = normalize_many buf in
  Array.init comb_positions (fun i ->
      Array.init comb_row (fun j -> precomp_of_affine affine.((i * comb_row) + j)))

let comb_table : comb = comb_of_point base

(* Odd multiples B, 3B, ..., 63B for the w=7 w-NAF base-point side of
   Strauss-Shamir and batch accumulation. *)
let base_wnaf_table : precomp array =
  Array.map precomp_of_affine (normalize_many (odd_multiples base ~size:32))

(* k*P off a comb table. P has order L, so reducing k mod L first is
   exact and bounds the digit count. *)
let scalar_mult_comb (c : comb) (k : Nat.t) : point =
  let k = Nat.rem k order in
  let bytes = Nat.to_bytes_le k ~len:32 in
  let acc = ref identity in
  for i = 0 to comb_positions - 1 do
    let byte = Char.code bytes.[i / 2] in
    let digit = if i land 1 = 0 then byte land 0xf else byte lsr 4 in
    if digit <> 0 then acc := madd !acc c.(i).(digit - 1)
  done;
  !acc

let scalar_mult_base (k : Nat.t) : point = scalar_mult_comb comb_table k

(* Strauss-Shamir interleaving: a*B + b*Q in one shared doubling chain,
   the base-point digits off the precomputed w=7 table. b is used
   unreduced so the result is exact for Q of any order. *)
let double_scalar_mult_base (a : Nat.t) (b : Nat.t) (q : point) : point =
  let anaf = wnaf_digits (Nat.rem a order) ~w:7 in
  let bnaf = wnaf_digits b ~w:5 in
  let qtbl = odd_multiples q ~size:8 in
  let top = max (top_nonzero anaf) (top_nonzero bnaf) in
  let acc = ref identity in
  for i = top downto 0 do
    let da = if i < Array.length anaf then anaf.(i) else 0 in
    let db = if i < Array.length bnaf then bnaf.(i) else 0 in
    acc := (if da <> 0 || db <> 0 || i = 0 then double !acc else double_nt !acc);
    if da <> 0 then acc := apply_digit_pre !acc base_wnaf_table da;
    if db <> 0 then acc := apply_digit !acc qtbl db
  done;
  !acc

(* a*P + b*Q for two variable points, one shared doubling chain. *)
let double_scalar_mult (a : Nat.t) (p : point) (b : Nat.t) (q : point) : point =
  let anaf = wnaf_digits a ~w:5 in
  let bnaf = wnaf_digits b ~w:5 in
  let ptbl = odd_multiples p ~size:8 in
  let qtbl = odd_multiples q ~size:8 in
  let top = max (top_nonzero anaf) (top_nonzero bnaf) in
  let acc = ref identity in
  for i = top downto 0 do
    let da = if i < Array.length anaf then anaf.(i) else 0 in
    let db = if i < Array.length bnaf then bnaf.(i) else 0 in
    acc := (if da <> 0 || db <> 0 || i = 0 then double !acc else double_nt !acc);
    if da <> 0 then acc := apply_digit !acc ptbl da;
    if db <> 0 then acc := apply_digit !acc qtbl db
  done;
  !acc

(* kb*B + sum_i k_i*P_i: the n-way interleaved accumulator behind batch
   verification. One doubling chain total; each point pays only its own
   w-NAF additions and an 8-entry odd-multiples table. *)
let multi_scalar_mult_base ~(base_scalar : Nat.t) (pairs : (Nat.t * point) list) : point =
  let bnaf = wnaf_digits (Nat.rem base_scalar order) ~w:7 in
  let items =
    List.map (fun (k, p) -> (wnaf_digits k ~w:5, odd_multiples p ~size:8)) pairs
  in
  let top =
    List.fold_left (fun m (naf, _) -> max m (top_nonzero naf)) (top_nonzero bnaf) items
  in
  let acc = ref identity in
  for i = top downto 0 do
    let db = if i < Array.length bnaf then bnaf.(i) else 0 in
    let live =
      db <> 0 || i = 0
      || List.exists (fun (naf, _) -> i < Array.length naf && naf.(i) <> 0) items
    in
    acc := (if live then double !acc else double_nt !acc);
    if db <> 0 then acc := apply_digit_pre !acc base_wnaf_table db;
    List.iter
      (fun (naf, tbl) ->
        if i < Array.length naf then acc := apply_digit !acc tbl naf.(i))
      items
  done;
  !acc

(* Membership in the prime-order subgroup: [L]P = O. Curve points have
   order dividing 8L, so this rejects any small-order component. *)
let in_prime_subgroup (p : point) : bool =
  equal_points (scalar_mult_fast order p) identity

(* Decode a key that must lie in the prime subgroup, memoized: the
   subgroup check is a full scalar multiplication, and verification
   keys repeat heavily (every committee vote, every round), so the
   steady-state cost is one hash lookup. Bounded; reset on overflow. *)
let checked_cache : (string, point option) Hashtbl.t = Hashtbl.create 1024
let checked_cache_limit = 16_384

let decode_checked (s : string) : point option =
  match Hashtbl.find_opt checked_cache s with
  | Some r -> r
  | None ->
    let r =
      match decode s with
      | Some p when in_prime_subgroup p -> Some p
      | _ -> None
    in
    if Hashtbl.length checked_cache >= checked_cache_limit then
      Hashtbl.reset checked_cache;
    Hashtbl.add checked_cache s r;
    r

let () =
  (* Cross-check every table-driven path against the naive oracle once
     at startup, so a table-construction bug cannot go unnoticed. *)
  let k = Nat.rem (Nat.of_bytes_le (Sha256.digest "ed25519-selfcheck")) order in
  let expect = scalar_mult k base in
  assert (equal_points (scalar_mult_base k) expect);
  assert (equal_points (scalar_mult_fast k base) expect);
  assert (
    equal_points
      (double_scalar_mult_base k k (double base))
      (scalar_mult_base (Nat.mul k (Nat.of_int 3))));
  assert (in_prime_subgroup base)

(* ------------------------------------------------------------------ *)
(* Schnorr signatures.                                                 *)
(* ------------------------------------------------------------------ *)

type secret = { seed : string; scalar : Nat.t; public : string }
type public = string

let scalar_of_hash (h : string) : Nat.t =
  (* Uniform nonzero scalar: 1 + (h mod (L-1)). *)
  Nat.add Nat.one (Nat.rem (Nat.of_bytes_le h) (Nat.sub order Nat.one))

let derive_scalar ~seed = scalar_of_hash (Sha256.digest_concat [ "ed25519-scalar"; seed ])

let generate ~(seed : string) : secret =
  let scalar = derive_scalar ~seed in
  let public = encode (scalar_mult_base scalar) in
  { seed; scalar; public }

let public_key (sk : secret) : public = sk.public
let secret_scalar (sk : secret) : Nat.t = sk.scalar
let secret_seed (sk : secret) : string = sk.seed

let signature_length = 64

let challenge ~r_enc ~public ~msg =
  Nat.rem (Nat.of_bytes_le (Sha256.digest_concat [ "ed25519-chal"; r_enc; public; msg ])) order

let sign (sk : secret) (msg : string) : string =
  let k = scalar_of_hash (Sha256.digest_concat [ "ed25519-nonce"; sk.seed; msg ]) in
  let r_enc = encode (scalar_mult_base k) in
  let e = challenge ~r_enc ~public:sk.public ~msg in
  let s = Nat.rem (Nat.add k (Nat.mul e sk.scalar)) order in
  r_enc ^ Nat.to_bytes_le s ~len:32

(* Verification checks s*B - e*A = R with one Strauss-Shamir chain.

   The public key must decode into the prime subgroup ([decode_checked]):
   a key A' = A + D with D of small order would otherwise validate
   signatures made for A whenever e*D = O (the classic small-order
   forgery). R needs no separate check: with A and B in the prime
   subgroup, s*B - e*A is too, and the *exact* (non-cofactored) point
   equality then forces R to match it exactly - an R with a small-order
   component can never satisfy the equation. *)
let verify ~(public : public) ~(msg : string) ~(signature : string) : bool =
  String.length signature = signature_length
  &&
  let r_enc = String.sub signature 0 32 in
  let s = Nat.of_bytes_le (String.sub signature 32 32) in
  Nat.compare s order < 0
  &&
  match (decode r_enc, decode_checked public) with
  | Some r, Some a ->
    let e = challenge ~r_enc ~public ~msg in
    (* s*B - e*A = R *)
    equal_points (double_scalar_mult_base s e (neg a)) r
  | _ -> false

(* The pre-engine verifier, kept verbatim as the randomized-test
   oracle (naive double-and-add, no subgroup check - the tests use the
   missing check to demonstrate the small-order forgery this module now
   rejects). *)
let verify_ref ~(public : public) ~(msg : string) ~(signature : string) : bool =
  String.length signature = signature_length
  &&
  let r_enc = String.sub signature 0 32 in
  let s = Nat.of_bytes_le (String.sub signature 32 32) in
  Nat.compare s order < 0
  &&
  match (decode r_enc, decode public) with
  | Some r, Some a ->
    let e = challenge ~r_enc ~public ~msg in
    (* s*B = R + e*A *)
    equal_points (scalar_mult s base) (add r (scalar_mult e a))
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Batch verification.                                                 *)
(*                                                                     *)
(* A random linear combination folds n verification equations into one *)
(* multi-scalar accumulation sharing a single doubling chain:          *)
(*                                                                     *)
(*   (sum z_i s_i mod L) * B - sum z_i R_i - sum (z_i e_i mod L) A_i   *)
(*     = sum z_i (s_i B - e_i A_i - R_i)  =  O                         *)
(*                                                                     *)
(* with 128-bit coefficients z_i drawn from the deterministic Drbg     *)
(* seeded by a hash of the whole batch (Fiat-Shamir style: the batch   *)
(* content is fixed before the coefficients exist). If some signature  *)
(* i fails s_i B - e_i A_i = R_i, the combination vanishes for at most *)
(* a 2^-128 fraction of coefficient vectors. Public keys go through    *)
(* the same prime-subgroup check as single verification; see DESIGN.md *)
(* for the soundness discussion.                                       *)
(* ------------------------------------------------------------------ *)

(* Bounding the chunk size bounds the w-NAF table memory. *)
let batch_chunk = 256

let verify_batch (items : (public * string * string) list) : bool =
  let check_chunk chunk =
    let parsed =
      List.map
        (fun (pk, msg, signature) ->
          if String.length signature <> signature_length then None
          else begin
            let r_enc = String.sub signature 0 32 in
            let s = Nat.of_bytes_le (String.sub signature 32 32) in
            if Nat.compare s order >= 0 then None
            else begin
              match (decode r_enc, decode_checked pk) with
              | Some r, Some a ->
                let e = challenge ~r_enc ~public:pk ~msg in
                Some (pk, r_enc, signature, s, e, r, a)
              | _ -> None
            end
          end)
        chunk
    in
    List.for_all Option.is_some parsed
    &&
    let parsed = List.filter_map Fun.id parsed in
    let seed =
      Sha256.digest_concat
        ("ed25519-batch"
        :: List.concat_map
             (fun (pk, _, signature, _, _, _, _) -> [ pk; signature ])
             parsed)
    in
    let drbg = Drbg.create ~seed in
    let terms =
      List.map
        (fun (_, _, _, s, e, r, a) -> (Drbg.random_nat drbg ~bytes:16, s, e, r, a))
        parsed
    in
    (* The scalars stay unreduced: w-NAF is exact on scalars of any
       length, and Nat's bit-by-bit division is expensive enough that
       two mod-L reductions per signature would rival the curve work.
       The z_i*e_i products are ~381 bits, which only lengthens the
       shared doubling chain by ~128 doubles per chunk - amortized
       noise. One reduction of the summed base scalar happens inside
       [multi_scalar_mult_base]. *)
    let combined_s =
      List.fold_left (fun acc (z, s, _, _, _) -> Nat.add acc (Nat.mul z s)) Nat.zero terms
    in
    let pairs =
      List.concat_map
        (fun (z, _, e, r, a) -> [ (z, neg r); (Nat.mul z e, neg a) ])
        terms
    in
    equal_points (multi_scalar_mult_base ~base_scalar:combined_s pairs) identity
  in
  let rec chunks = function
    | [] -> true
    | items ->
      let rec split n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> split (n - 1) (x :: acc) rest
      in
      let chunk, rest = split batch_chunk [] items in
      check_chunk chunk && chunks rest
  in
  chunks items
