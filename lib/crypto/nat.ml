(* Arbitrary-precision natural numbers.

   Representation: little-endian array of limbs, each limb holding
   [limb_bits] = 26 bits. Normalized form has no trailing (most
   significant) zero limbs; zero is the empty array. 26-bit limbs keep
   every intermediate product of a schoolbook multiplication within an
   OCaml 63-bit int even after thousands of accumulated additions. *)

type t = int array

let limb_bits = 26
let limb_mask = (1 lsl limb_bits) - 1

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int (x : int) : t =
  if x < 0 then invalid_arg "Nat.of_int: negative";
  let rec limbs x = if x = 0 then [] else (x land limb_mask) :: limbs (x lsr limb_bits) in
  Array.of_list (limbs x)

let to_int_opt (a : t) : int option =
  (* Fits when the bit length is at most 62 (OCaml int is 63-bit). *)
  let n = Array.length a in
  if n * limb_bits <= 62 || (n <= 3 && a.(n - 1) lsr (62 - ((n - 1) * limb_bits)) = 0) then begin
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl limb_bits) lor a.(i)
    done;
    Some !v
  end
  else None

let one = of_int 1
let two = of_int 2

let compare (a : t) (b : t) : int =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize r

(* [sub a b] requires a >= b. *)
let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Nat.sub: underflow";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + limb_mask + 1;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let mul_int (a : t) (m : int) : t =
  if m < 0 then invalid_arg "Nat.mul_int: negative"
  else if m <= limb_mask then begin
    let la = Array.length a in
    if la = 0 || m = 0 then zero
    else begin
      let r = Array.make (la + 1) 0 in
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let s = (a.(i) * m) + !carry in
        r.(i) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      r.(la) <- !carry;
      normalize r
    end
  end
  else mul a (of_int m)

let bit_length (a : t) : int =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((n - 1) * limb_bits) + width 0
  end

let testbit (a : t) (i : int) : bool =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

(* All bits at once, least significant first. Reads the limbs directly,
   so exponentiation loops can scan an int array instead of paying the
   per-bit [testbit] indexing arithmetic. *)
let bits (a : t) : int array =
  let n = bit_length a in
  let r = Array.make n 0 in
  for i = 0 to Array.length a - 1 do
    let limb = a.(i) in
    let base = i * limb_bits in
    for j = 0 to limb_bits - 1 do
      if base + j < n then r.(base + j) <- (limb lsr j) land 1
    done
  done;
  r

let shift_left (a : t) (k : int) : t =
  if is_zero a || k = 0 then a
  else begin
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land limb_mask);
      r.(i + limb_shift + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right (a : t) (k : int) : t =
  if is_zero a || k = 0 then a
  else begin
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let n = la - limb_shift in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land limb_mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* [low_bits a k] is a mod 2^k. *)
let low_bits (a : t) (k : int) : t =
  let limb = k / limb_bits and off = k mod limb_bits in
  let la = Array.length a in
  if limb >= la then a
  else begin
    let n = if off = 0 then limb else limb + 1 in
    let r = Array.sub a 0 (min n la) in
    if off > 0 && limb < Array.length r then r.(limb) <- r.(limb) land ((1 lsl off) - 1);
    normalize r
  end

(* Shift-and-subtract long division; adequate for the <=1024-bit numbers
   used in this codebase (field elements go through the dedicated
   pseudo-Mersenne reduction in Ed25519 instead). *)
let divmod (a : t) (d : t) : t * t =
  if is_zero d then raise Division_by_zero;
  if compare a d < 0 then (zero, a)
  else begin
    let bits_a = bit_length a and bits_d = bit_length d in
    let q = Array.make ((bits_a / limb_bits) + 1) 0 in
    let r = ref zero in
    for i = bits_a - 1 downto 0 do
      r := shift_left !r 1;
      if testbit a i then r := add !r one;
      if compare !r d >= 0 then begin
        r := sub !r d;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    ignore bits_d;
    (normalize q, !r)
  end

let div a d = fst (divmod a d)
let rem a d = snd (divmod a d)

let mod_add m a b = rem (add a b) m
let mod_sub m a b = if compare a b >= 0 then rem (sub a b) m else sub m (rem (sub b a) m)
let mod_mul m a b = rem (mul a b) m

let mod_pow (m : t) (base : t) (e : t) : t =
  if equal m one then zero
  else begin
    let result = ref one in
    let b = ref (rem base m) in
    let bits = bit_length e in
    for i = 0 to bits - 1 do
      if testbit e i then result := mod_mul m !result !b;
      if i < bits - 1 then b := mod_mul m !b !b
    done;
    !result
  end

(* Modular inverse via Fermat (prime modulus only). *)
let mod_inv_prime (m : t) (a : t) : t = mod_pow m a (sub m two)

let of_bytes_be (s : string) : t =
  let r = ref zero in
  String.iter (fun c -> r := add (shift_left !r 8) (of_int (Char.code c))) s;
  !r

let of_bytes_le (s : string) : t =
  let r = ref zero in
  for i = String.length s - 1 downto 0 do
    r := add (shift_left !r 8) (of_int (Char.code s.[i]))
  done;
  !r

let to_bytes_be (a : t) ~(len : int) : string =
  if bit_length a > 8 * len then invalid_arg "Nat.to_bytes_be: does not fit";
  String.init len (fun i ->
      let bit = 8 * (len - 1 - i) in
      let limb = bit / limb_bits and off = bit mod limb_bits in
      let v =
        if limb >= Array.length a then 0
        else begin
          let lo = a.(limb) lsr off in
          let hi =
            if off + 8 <= limb_bits || limb + 1 >= Array.length a then 0
            else a.(limb + 1) lsl (limb_bits - off)
          in
          lo lor hi
        end
      in
      Char.chr (v land 0xff))

let to_bytes_le (a : t) ~(len : int) : string =
  let be = to_bytes_be a ~len in
  String.init len (fun i -> be.[len - 1 - i])

let of_decimal (s : string) : t =
  let r = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> r := add (mul_int !r 10) (of_int (Char.code c - Char.code '0'))
      | '_' -> ()
      | _ -> invalid_arg "Nat.of_decimal")
    s;
  !r

let to_decimal (a : t) : string =
  if is_zero a then "0"
  else begin
    let ten = of_int 10 in
    let buf = Buffer.create 32 in
    let rec go x =
      if not (is_zero x) then begin
        let q, r = divmod x ten in
        go q;
        let d = match to_int_opt r with Some d -> d | None -> assert false in
        Buffer.add_char buf (Char.chr (Char.code '0' + d))
      end
    in
    go a;
    Buffer.contents buf
  end

let pp fmt a = Format.pp_print_string fmt (to_decimal a)
