(** Fixed-limb arithmetic in GF(2{^255} - 19): ten 26-bit limbs in
    native ints with fused multiply-and-fold reduction. Several times
    faster than the generic [Nat] field ops, against which the test
    suite cross-checks every operation. All public values are
    canonical (fully reduced). *)

type t

val zero : unit -> t
val one : unit -> t
val of_int : int -> t
val of_nat : Nat.t -> t
(** Reduces mod p. *)

val to_nat : t -> Nat.t
val equal : t -> t -> bool
val is_zero : t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val sqr : t -> t

val pow : t -> Nat.t -> t
(** Square-and-multiply exponentiation (the generic oracle path; the
    exponent's bits are precomputed into an int array once). *)

val inv : t -> t
(** Multiplicative inverse: Fermat by addition chain (254 squarings +
    11 multiplies). *)

val inv_many : t array -> t array
(** All inverses with one field inversion (Montgomery's trick). Zero
    entries map to zero. *)

val parity : t -> int
(** The low bit of the canonical representative. *)

val sqrt_m1 : t
(** A square root of -1 (derived, not transcribed). *)

val sqrt_ratio : u:t -> v:t -> t option
(** [sqrt_ratio ~u ~v] is some [x] with [v * x^2 = u], if one exists:
    the combined decompression trick, one addition chain and no
    inversion. *)

val copy : t -> t
