(** Arbitrary-precision natural numbers (unsigned).

    The representation is a little-endian array of 26-bit limbs. All
    operations are functional; values are never mutated after creation.
    This module backs the Ed25519 field/scalar arithmetic and the
    sortition hash-interval comparisons. *)

type t

val zero : t
val one : t
val two : t
val is_zero : t -> bool
val of_int : int -> t
val to_int_opt : t -> int option
val compare : t -> t -> int
val equal : t -> t -> bool
val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] requires [a >= b]. @raise Invalid_argument on underflow. *)

val mul : t -> t -> t
val mul_int : t -> int -> t
val bit_length : t -> int
val testbit : t -> int -> bool

val bits : t -> int array
(** All bits, least significant first ([bit_length] entries of 0/1).
    One pass over the limbs; cheaper than [testbit] per bit in
    exponentiation loops. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val low_bits : t -> int -> t
(** [low_bits a k] is [a mod 2{^k}]. *)

val divmod : t -> t -> t * t
(** [divmod a d] is [(a / d, a mod d)]. @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t
val mod_add : t -> t -> t -> t
val mod_sub : t -> t -> t -> t
val mod_mul : t -> t -> t -> t

val mod_pow : t -> t -> t -> t
(** [mod_pow m base e] is [base{^e} mod m]. *)

val mod_inv_prime : t -> t -> t
(** [mod_inv_prime p a] is [a{^-1} mod p] for prime [p] (Fermat). *)

val of_bytes_be : string -> t
val of_bytes_le : string -> t

val to_bytes_be : t -> len:int -> string
(** @raise Invalid_argument if the value needs more than [len] bytes. *)

val to_bytes_le : t -> len:int -> string
val of_decimal : string -> t
val to_decimal : t -> string
val pp : Format.formatter -> t -> unit
