(* Verifiable random functions (Micali-Rabin-Vadhan), two implementations
   behind one closure-record interface:

   - [ecvrf]: an ECVRF-style construction over the ed25519 curve
     (try-and-increment hash-to-curve, Gamma = sk*H, Fiat-Shamir proof,
     cofactor-cleared output), following the structure of the Goldberg
     et al. VRF cited by the paper (section 9).

   - [sim]: a hash-based stand-in with the same interface and the same
     output distribution but no secrecy (outputs are derivable from the
     public key). The paper itself replaces cryptographic verification
     with sleeps when simulating 500,000 users (section 10.1); [sim]
     plays that role for our large-scale simulations, with verification
     cost modeled by the simulator instead of burned in CPU. *)

type prover = { prove : string -> string * string  (** input -> (hash, proof) *) }

type scheme = {
  name : string;
  generate : seed:string -> prover * string;  (** seed -> (prover, public key) *)
  verify : pk:string -> input:string -> proof:string -> string option;
      (** Returns the VRF hash iff the proof is valid for [pk] and [input]. *)
  proof_length : int;
  output_length : int;
}

(* ------------------------------------------------------------------ *)
(* ECVRF over ed25519.                                                 *)
(* ------------------------------------------------------------------ *)

let hash_to_curve_uncached (input : string) : Ed25519.point =
  let rec attempt ctr =
    if ctr > 255 then failwith "Vrf.hash_to_curve: no point found (probability ~2^-256)"
    else begin
      let candidate =
        Sha256.digest_concat [ "vrf-h2c"; input; String.make 1 (Char.chr ctr) ]
      in
      match Ed25519.decode candidate with
      | Some p ->
        (* Multiply by the cofactor 8 so the point lies in the prime
           subgroup; reject the (negligible) identity outcome. *)
        let p8 = Ed25519.double (Ed25519.double (Ed25519.double p)) in
        if Ed25519.equal_points p8 Ed25519.identity then attempt (ctr + 1) else p8
      | None -> attempt (ctr + 1)
    end
  in
  attempt 0

(* Sortition hashes the same (seed, role) input for every member of a
   committee step, so one try-and-increment run serves a whole step's
   worth of proofs and verifications. Cached alongside the point: its
   encoding (a field inversion) and a fixed-base comb table, which
   turns every s*H / k*H below into ~64 mixed additions with no
   doubling chain. The comb costs ~1000 point operations to build, so
   it is lazy: verification forces it (committee floods repay it ~2000
   times over), while a prove on a cold input — one multiplication per
   scalar, possibly never repeated — sticks to the w-NAF chain. A comb
   is a few hundred KB, so the cache is kept small; bounded, reset on
   overflow. *)
let h2c_cache : (string, Ed25519.point * string * Ed25519.comb Lazy.t) Hashtbl.t =
  Hashtbl.create 64

let h2c_cache_limit = 64

let hash_to_curve_full (input : string) :
    Ed25519.point * string * Ed25519.comb Lazy.t =
  match Hashtbl.find_opt h2c_cache input with
  | Some entry -> entry
  | None ->
    let p = hash_to_curve_uncached input in
    let entry = (p, Ed25519.encode p, lazy (Ed25519.comb_of_point p)) in
    if Hashtbl.length h2c_cache >= h2c_cache_limit then Hashtbl.reset h2c_cache;
    Hashtbl.add h2c_cache input entry;
    entry

let hash_to_curve (input : string) : Ed25519.point =
  let p, _, _ = hash_to_curve_full input in
  p

let challenge ~h_enc ~gamma_enc ~u_enc ~v_enc : Nat.t =
  (* 128-bit Fiat-Shamir challenge. *)
  Nat.low_bits
    (Nat.of_bytes_le (Sha256.digest_concat [ "vrf-chal"; h_enc; gamma_enc; u_enc; v_enc ]))
    128

(* The output hashes 8*Gamma, not Gamma. This is what makes the output
   unique per (pk, input): a malicious prover who knows its own key can
   grind nonces until the challenge c = 0 (mod 8) and then open a valid
   DLEQ proof for Gamma + D with D any 8-torsion point (the verifier's
   V = s*H - c*Gamma' differs from the honest V by c*D = O). Clearing
   the cofactor collapses all eight Gamma variants to one output, so
   the grind buys nothing. Three doublings - essentially free. *)
let cofactor_clear gamma = Ed25519.double (Ed25519.double (Ed25519.double gamma))
let output_of_gamma8_enc gamma8_enc = Sha256.digest_concat [ "vrf-out"; gamma8_enc ]

let ecvrf : scheme =
  let proof_length = 32 + 16 + 32 in
  let generate ~seed =
    let sk = Ed25519.generate ~seed:("vrf-" ^ seed) in
    let pk = Ed25519.public_key sk in
    let a = Ed25519.secret_scalar sk in
    let prove input =
      let h, h_enc, hcomb = hash_to_curve_full input in
      (* Ride the comb only if a verification has already paid for it. *)
      let mult_h k =
        if Lazy.is_val hcomb then Ed25519.scalar_mult_comb (Lazy.force hcomb) k
        else Ed25519.scalar_mult_fast k h
      in
      let gamma = mult_h a in
      let k =
        Nat.add Nat.one
          (Nat.rem
             (Nat.of_bytes_le
                (Sha256.digest_concat [ "vrf-nonce"; Ed25519.secret_seed sk; input ]))
             (Nat.sub Ed25519.order Nat.one))
      in
      (* One shared inversion for all four encodings. *)
      let encs =
        Ed25519.encode_many
          [|
            gamma;
            Ed25519.scalar_mult_base k;
            mult_h k;
            cofactor_clear gamma;
          |]
      in
      let gamma_enc = encs.(0) and u_enc = encs.(1) and v_enc = encs.(2) in
      let c = challenge ~h_enc ~gamma_enc ~u_enc ~v_enc in
      let s = Nat.rem (Nat.add k (Nat.mul c a)) Ed25519.order in
      let proof = gamma_enc ^ Nat.to_bytes_le c ~len:16 ^ Nat.to_bytes_le s ~len:32 in
      (output_of_gamma8_enc encs.(3), proof)
    in
    ({ prove }, pk)
  in
  let verify ~pk ~input ~proof =
    if String.length proof <> proof_length then None
    else begin
      let gamma_enc = String.sub proof 0 32 in
      let c = Nat.of_bytes_le (String.sub proof 32 16) in
      let s = Nat.of_bytes_le (String.sub proof 48 32) in
      if Nat.compare s Ed25519.order >= 0 then None
      else begin
        match (Ed25519.decode gamma_enc, Ed25519.decode_checked pk) with
        | Some gamma, Some a_pt ->
          let _, h_enc, hcomb = hash_to_curve_full input in
          let hcomb = Lazy.force hcomb in
          (* U = s*B - c*A and V = s*H - c*Gamma have the same shape:
             the combs (B's static one, H's cached per input) give the
             s-side with zero doublings, so the only doubling chains
             are c*A's and c*Gamma's - and c is a 128-bit challenge,
             half the length of a Strauss chain over s. *)
          let u =
            Ed25519.add (Ed25519.scalar_mult_base s)
              (Ed25519.scalar_mult_fast c (Ed25519.neg a_pt))
          in
          let v =
            Ed25519.add
              (Ed25519.scalar_mult_comb hcomb s)
              (Ed25519.scalar_mult_fast c (Ed25519.neg gamma))
          in
          (* One shared inversion for the two commitment encodings plus
             the cofactor-cleared output point. *)
          let encs = Ed25519.encode_many [| u; v; cofactor_clear gamma |] in
          let c' = challenge ~h_enc ~gamma_enc ~u_enc:encs.(0) ~v_enc:encs.(1) in
          if Nat.equal c c' then Some (output_of_gamma8_enc encs.(2)) else None
        | _ -> None
      end
    end
  in
  { name = "ecvrf"; generate; verify; proof_length; output_length = 32 }

(* ------------------------------------------------------------------ *)
(* Simulation VRF: distribution-faithful, zero-cost, no secrecy.       *)
(* ------------------------------------------------------------------ *)

let sim : scheme =
  let generate ~seed =
    (* pk doubles as the (publicly known) key material: correct selection
       distribution, no privacy. See DESIGN.md, substitution 3. *)
    let pk = Sha256.digest_concat [ "simvrf-key"; seed ] in
    let prove input = (Sha256.digest_concat [ "simvrf-out"; pk; input ], "") in
    ({ prove }, pk)
  in
  let verify ~pk ~input ~proof =
    if proof <> "" then None else Some (Sha256.digest_concat [ "simvrf-out"; pk; input ])
  in
  { name = "sim"; generate; verify; proof_length = 0; output_length = 32 }
