(** The ed25519 twisted Edwards curve with Schnorr signatures.

    Group constants are derived (not transcribed) and self-checked at
    module initialization. The signature scheme is Schnorr with SHA-256
    and is not RFC 8032 wire-compatible; Algorand is a closed system so
    no interop is required (see DESIGN.md, substitution 2). *)

module Fp : sig
  val p : Nat.t
  val zero : Nat.t
  val one : Nat.t
  val add : Nat.t -> Nat.t -> Nat.t
  val sub : Nat.t -> Nat.t -> Nat.t
  val mul : Nat.t -> Nat.t -> Nat.t
  val sqr : Nat.t -> Nat.t
  val neg : Nat.t -> Nat.t
  val inv : Nat.t -> Nat.t
  val pow : Nat.t -> Nat.t -> Nat.t
  val sqrt : Nat.t -> Nat.t option
  val of_int : int -> Nat.t
end

type point

val order : Nat.t
(** Order of the prime subgroup (the scalar group). *)

val identity : point
val base : point
val add : point -> point -> point
val double : point -> point
val neg : point -> point
val scalar_mult : Nat.t -> point -> point
(** Naive double-and-add. Kept as the randomized-test oracle for the
    fast paths below; production code uses the engine. *)

val equal_points : point -> point -> bool
val on_curve : point -> bool
val to_affine : point -> Nat.t * Nat.t

val to_affine_many : point array -> (Nat.t * Nat.t) array
(** Affine coordinates for a whole array with a single field inversion
    (Montgomery-batched); identity maps to [(0, 1)]. *)

val encode : point -> string
(** 32-byte compressed encoding (little-endian y, x parity in the top bit). *)

val encode_many : point array -> string array
(** [encode] for a whole array with one shared field inversion. *)

val decode : string -> point option

(** {1 Fast scalar-multiplication engine}

    All fast paths are cross-checked against the naive [scalar_mult]
    oracle: once at module initialization, and on thousands of random
    scalars in the test suite. *)

val scalar_mult_base : Nat.t -> point
(** [k*B] off the precomputed radix-16 comb table for the base point
    (64 positions x 15 odd multiples): ~64 mixed additions, no
    doublings. The scalar is reduced mod [order]. *)

type comb
(** A radix-16 comb table for an arbitrary fixed point. *)

val comb_of_point : point -> comb
(** Build the 64x15 comb for [p]. Costs ~1000 point operations, so it
    only pays off for a point multiplied many times — e.g. sortition's
    hash-to-curve point, shared by every proof of a committee step.
    [p] must lie in the prime-order subgroup ([scalar_mult_comb]
    reduces scalars mod [order]). *)

val scalar_mult_comb : comb -> Nat.t -> point
(** [k*P] off a prebuilt comb: ~64 mixed additions, no doublings. *)

val scalar_mult_fast : Nat.t -> point -> point
(** Variable-base width-5 w-NAF with an 8-entry odd-multiples table.
    The scalar is {e not} reduced mod [order], so the result is exact
    on the whole curve group including small-order and mixed-order
    points (this is what makes it usable as the subgroup test). *)

val double_scalar_mult_base : Nat.t -> Nat.t -> point -> point
(** [double_scalar_mult_base a b Q = a*B + b*Q] with one shared
    doubling chain (Strauss-Shamir); [a] runs width-7 off the base
    w-NAF table, [b] width-5 off a per-call table. *)

val double_scalar_mult : Nat.t -> point -> Nat.t -> point -> point
(** [double_scalar_mult a P b Q = a*P + b*Q], both variable-base. *)

val multi_scalar_mult_base : base_scalar:Nat.t -> (Nat.t * point) list -> point
(** [base_scalar*B + sum k_i*P_i] in a single interleaved chain; the
    workhorse of batch verification. *)

val in_prime_subgroup : point -> bool
(** [L]P = O — membership in the prime-order subgroup. *)

val decode_checked : string -> point option
(** [decode] restricted to canonical encodings of prime-subgroup
    points. Memoized in a bounded cache: committee public keys repeat
    across votes, so the subgroup check amortizes to a hash lookup. *)

(** {1 Schnorr signatures} *)

type secret
type public = string

val generate : seed:string -> secret
(** Deterministic key generation from an arbitrary seed string. *)

val public_key : secret -> public

val secret_scalar : secret -> Nat.t
(** The private scalar; consumed by the VRF (Gamma = scalar * H). *)

val secret_seed : secret -> string
(** The generation seed; consumed by the VRF for deterministic nonces. *)

val signature_length : int
val sign : secret -> string -> string

val verify : public:public -> msg:string -> signature:string -> bool
(** Checks [s*B - e*A = R] with one Strauss-Shamir chain. Rejects
    public keys outside the prime subgroup (small-order-component
    forgeries) and non-canonical encodings. *)

val verify_ref : public:public -> msg:string -> signature:string -> bool
(** The pre-engine naive verifier, kept as a behavioral oracle for the
    tests. No subgroup check — the small-order forgery test relies on
    this to demonstrate the attack [verify] now rejects. *)

val verify_batch : (public * string * string) list -> bool
(** [verify_batch \[(pk, msg, signature); ...\]] checks all signatures
    at once via a random linear combination with 128-bit coefficients
    drawn from a deterministic DRBG seeded by the batch contents; a
    batch with any invalid signature is rejected except with
    probability ~2{^-128}. Several times cheaper per signature than
    [verify]. The empty batch is valid. *)
