(* Binary Merkle trees with inclusion proofs.

   Blocks commit to their transaction list through a Merkle root, so a
   light client can verify that a payment is in a (certified) block
   from the block header plus a logarithmic proof, without downloading
   block bodies - the natural answer to the paper's "cost of joining"
   concern (section 11).

   Construction notes: leaves and interior nodes are hashed under
   distinct tags (second-preimage separation); odd nodes are promoted
   unpaired rather than duplicated (no CVE-2012-2459-style ambiguity);
   the empty tree has a distinguished root. *)

let leaf_hash (data : string) : string = Sha256.digest_concat [ "merkle-leaf"; data ]

let node_hash (l : string) (r : string) : string =
  Sha256.digest_concat [ "merkle-node"; l; r ]

let empty_root : string = Sha256.digest "merkle-empty"

(* Hash level-by-level; odd last nodes are carried up unchanged. *)
let root_of_hashes (leaves : string list) : string =
  match leaves with
  | [] -> empty_root
  | _ ->
    let rec level = function
      | [ single ] -> single
      | nodes ->
        let rec pair = function
          | a :: b :: rest -> node_hash a b :: pair rest
          | [ a ] -> [ a ]
          | [] -> []
        in
        level (pair nodes)
    in
    level (List.map leaf_hash leaves)

let root (leaves : string list) : string = root_of_hashes leaves

(* An inclusion proof: the sibling hash (if any) at each level, tagged
   with which side the sibling sits on. *)
type side = Left | Right

type proof = { leaf_index : int; path : (side * string) list }

let prove (leaves : string list) ~(index : int) : proof option =
  if index < 0 || index >= List.length leaves then None
  else begin
    let rec build nodes idx acc =
      match nodes with
      | [ _ ] -> List.rev acc
      | _ ->
        let arr = Array.of_list nodes in
        let n = Array.length arr in
        let sibling =
          if idx land 1 = 0 then if idx + 1 < n then Some (Right, arr.(idx + 1)) else None
          else Some (Left, arr.(idx - 1))
        in
        let rec pair i =
          if i >= n then []
          else if i + 1 < n then node_hash arr.(i) arr.(i + 1) :: pair (i + 2)
          else [ arr.(i) ]
        in
        let acc = match sibling with Some s -> s :: acc | None -> acc in
        build (pair 0) (idx / 2) acc
    in
    Some { leaf_index = index; path = build (List.map leaf_hash leaves) index [] }
  end

(* Build-once tree: every level materialized bottom-up, so serving k
   proofs over an n-transaction block costs O(n + k log n) instead of
   the O(k n) of re-running [prove] per request - the difference
   between a light-client server surviving a hot block and not. *)
type tree = { levels : string array array  (** levels.(0) = leaf hashes *) }

let build (leaves : string list) : tree =
  match leaves with
  | [] -> { levels = [||] }
  | _ ->
    let base = Array.of_list (List.map leaf_hash leaves) in
    let rec go acc nodes =
      if Array.length nodes <= 1 then List.rev (nodes :: acc)
      else begin
        let n = Array.length nodes in
        let next =
          Array.init ((n + 1) / 2) (fun i ->
              if (2 * i) + 1 < n then node_hash nodes.(2 * i) nodes.((2 * i) + 1)
              else nodes.(2 * i))
        in
        go (nodes :: acc) next
      end
    in
    { levels = Array.of_list (go [] base) }

let tree_size (t : tree) : int =
  if Array.length t.levels = 0 then 0 else Array.length t.levels.(0)

let tree_root (t : tree) : string =
  let k = Array.length t.levels in
  if k = 0 then empty_root else t.levels.(k - 1).(0)

let prove_tree (t : tree) ~(index : int) : proof option =
  if index < 0 || index >= tree_size t then None
  else begin
    let path = ref [] and idx = ref index in
    for l = 0 to Array.length t.levels - 2 do
      let nodes = t.levels.(l) in
      let n = Array.length nodes in
      let i = !idx in
      (if i land 1 = 0 then begin
         if i + 1 < n then path := (Right, nodes.(i + 1)) :: !path
       end
       else path := (Left, nodes.(i - 1)) :: !path);
      idx := i / 2
    done;
    Some { leaf_index = index; path = List.rev !path }
  end

let verify ~(root : string) ~(leaf : string) (p : proof) : bool =
  let h =
    List.fold_left
      (fun acc (side, sibling) ->
        match side with Left -> node_hash sibling acc | Right -> node_hash acc sibling)
      (leaf_hash leaf) p.path
  in
  String.equal h root

let proof_size_bytes (p : proof) : int =
  8 + List.fold_left (fun acc (_, h) -> acc + 1 + String.length h) 0 p.path
