(* Addition chains for the two exponents the curve arithmetic needs in
   GF(p), p = 2^255 - 19:

     p - 2       = 2^255 - 21   (Fermat inversion)
     (p - 5) / 8 = 2^252 - 3    (the square-root / sqrt-ratio exponent)

   Both share the classic ref10/libsodium ladder built from the values
   z^(2^k - 1): 254 squarings + 11 multiplications for the inverse,
   against ~255 squarings + ~127 multiplications for the generic
   bit-scan exponentiation they replace. The chain is written once,
   parametrized over the field's [mul]/[sqr], so the fixed-limb field
   (Fe25519) and the arbitrary-precision oracle field (Ed25519.Fp) run
   the identical sequence and cross-check each other in the tests. *)

(* z^(2^n) by n squarings. *)
let sqr_n ~sqr z n =
  let r = ref z in
  for _ = 1 to n do
    r := sqr !r
  done;
  !r

(* The shared ladder: returns (z^11, z^(2^250 - 1)). *)
let ladder ~mul ~sqr z =
  let z2 = sqr z in
  let z8 = sqr_n ~sqr z2 2 in
  let z9 = mul z z8 in
  let z11 = mul z2 z9 in
  let z22 = sqr z11 in
  let z_5_0 = mul z9 z22 (* z^(2^5 - 1) *) in
  let z_10_0 = mul (sqr_n ~sqr z_5_0 5) z_5_0 (* z^(2^10 - 1) *) in
  let z_20_0 = mul (sqr_n ~sqr z_10_0 10) z_10_0 in
  let z_40_0 = mul (sqr_n ~sqr z_20_0 20) z_20_0 in
  let z_50_0 = mul (sqr_n ~sqr z_40_0 10) z_10_0 in
  let z_100_0 = mul (sqr_n ~sqr z_50_0 50) z_50_0 in
  let z_200_0 = mul (sqr_n ~sqr z_100_0 100) z_100_0 in
  let z_250_0 = mul (sqr_n ~sqr z_200_0 50) z_50_0 in
  (z11, z_250_0)

(* z^(p - 2) = z^(2^255 - 21) = (z^(2^250 - 1))^(2^5) * z^11. *)
let pow_p_minus_2 ~mul ~sqr z =
  let z11, z_250_0 = ladder ~mul ~sqr z in
  mul (sqr_n ~sqr z_250_0 5) z11

(* z^((p - 5) / 8) = z^(2^252 - 3) = (z^(2^250 - 1))^(2^2) * z. *)
let pow_2_252_minus_3 ~mul ~sqr z =
  let _, z_250_0 = ladder ~mul ~sqr z in
  mul (sqr_n ~sqr z_250_0 2) z
