(* A small deterministic random byte generator built on HMAC-SHA256.
   Used to expand short seeds into key material for tests, examples and
   simulations; determinism is a feature (reproducible experiments), so
   this is intentionally not seeded from the OS. *)

type t = { key : string; mutable counter : int }

let create ~(seed : string) : t = { key = Sha256.digest_concat [ "drbg-seed"; seed ]; counter = 0 }

let block t =
  let ctr =
    String.init 8 (fun i -> Char.chr ((t.counter lsr (8 * i)) land 0xff))
  in
  t.counter <- t.counter + 1;
  Hmac.sha256 ~key:t.key ctr

let random_bytes (t : t) (n : int) : string =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    Buffer.add_string buf (block t)
  done;
  Buffer.sub buf 0 n

let random_nat (t : t) ~(bytes : int) : Nat.t =
  Nat.of_bytes_le (random_bytes t bytes)

let random_int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Drbg.random_int";
  (* Rejection-sample to avoid modulo bias. *)
  let rec go () =
    let b = random_bytes t 8 in
    let v = ref 0 in
    String.iter (fun c -> v := (!v lsl 8) lor Char.code c) b;
    let v = !v land max_int in
    let limit = max_int - (max_int mod bound) in
    if v >= limit then go () else v mod bound
  in
  go ()
