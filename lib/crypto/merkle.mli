(** Binary Merkle trees with inclusion proofs. Used by blocks to commit
    to their transaction list, enabling light-client payment
    verification from certified headers (the "cost of joining" concern
    of section 11). *)

val leaf_hash : string -> string
val node_hash : string -> string -> string
val empty_root : string

val root : string list -> string
(** Root over leaf data (leaves hashed with a distinct tag; odd nodes
    promoted unpaired; empty list gives [empty_root]). *)

type side = Left | Right
type proof = { leaf_index : int; path : (side * string) list }

val prove : string list -> index:int -> proof option
(** Inclusion proof for the [index]-th leaf; [None] out of range.
    Rebuilds every level per call - use {!build} + {!prove_tree} when
    serving many proofs over the same leaves. *)

type tree
(** Build-once Merkle tree: all levels materialized, so k proofs over n
    leaves cost O(n + k log n) instead of O(k n). *)

val build : string list -> tree
val tree_root : tree -> string
(** Equals [root] of the same leaves (and [empty_root] when empty). *)

val tree_size : tree -> int
val prove_tree : tree -> index:int -> proof option
(** Same proofs as {!prove}, in O(log n). *)

val verify : root:string -> leaf:string -> proof -> bool
val proof_size_bytes : proof -> int
