(* Fixed-size field arithmetic for GF(p), p = 2^255 - 19.

   The generic Nat-based field ops in Ed25519.Fp allocate variable-size
   arrays and renormalize on every step; this module uses a fixed
   10-limb base-2^26 representation in native ints, with fused
   multiply-and-fold reduction, making scalar multiplication several
   times faster. Discipline: every public operation takes and returns
   *canonical* values (limbs < 2^26, top limb < 2^22, value < p), so
   intermediate bounds are easy to audit:

   - a schoolbook product limb is at most 19 * (2^26)^2 < 2^57, safely
     inside a 63-bit native int;
   - limb 10+k of a product is worth 2^(260+26k) = 608 * 2^26k (mod p)
     since 2^255 = 19 (mod p) and 260 - 255 = 5, 19 * 2^5 = 608.

   The test suite cross-checks every operation against the Nat oracle
   on random values. *)

let limbs = 10
let limb_bits = 26
let limb_mask = (1 lsl limb_bits) - 1

type t = int array (* canonical: 10 limbs, value < p *)

(* p in limb form: [2^26-19; 2^26-1 x8; 2^21-1]. *)
let p_limbs =
  Array.init limbs (fun i ->
      if i = 0 then limb_mask - 18 else if i = 9 then (1 lsl 21) - 1 else limb_mask)

(* 2p in limb form (for subtraction staging): [2^27-38; 2^27-2 x8; 2^22-2]. *)
let two_p_limbs = Array.map (fun l -> 2 * l) p_limbs

let zero () : t = Array.make limbs 0

let one () : t =
  let a = zero () in
  a.(0) <- 1;
  a

(* Compare as field values (canonical form assumed). *)
let compare_t (a : t) (b : t) : int =
  let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
  go (limbs - 1)

let equal (a : t) (b : t) : bool = compare_t a b = 0

let ge_p (a : t) : bool =
  let rec go i =
    if i < 0 then true
    else if a.(i) > p_limbs.(i) then true
    else if a.(i) < p_limbs.(i) then false
    else go (i - 1)
  in
  go (limbs - 1)

let sub_p_in_place (a : t) : unit =
  let borrow = ref 0 in
  for i = 0 to limbs - 1 do
    let d = a.(i) - p_limbs.(i) - !borrow in
    if d < 0 then begin
      a.(i) <- d + limb_mask + 1;
      borrow := 1
    end
    else begin
      a.(i) <- d;
      borrow := 0
    end
  done

(* Carry-propagate nonnegative limbs (each < 2^62), folding overflow
   beyond bit 260 back with 2^260 = 608 (mod p), then fully
   canonicalize. *)
let canonicalize (a : int array) : t =
  let fold = ref 0 in
  let pass () =
    (* carry chain *)
    let carry = ref 0 in
    for i = 0 to limbs - 1 do
      let v = a.(i) + !carry + if i = 0 then !fold * 608 else 0 in
      a.(i) <- v land limb_mask;
      carry := v asr limb_bits
    done;
    fold := !carry
  in
  pass ();
  (* One more pass folds any remaining overflow (at most a few bits). *)
  while !fold <> 0 do
    pass ()
  done;
  (* Now value < 2^260; fold bits 255..259 (top limb bits 21..25). *)
  let top = a.(9) asr 21 in
  if top <> 0 then begin
    a.(9) <- a.(9) land ((1 lsl 21) - 1);
    let v = a.(0) + (top * 19) in
    a.(0) <- v land limb_mask;
    let carry = ref (v asr limb_bits) in
    let i = ref 1 in
    while !carry <> 0 && !i < limbs do
      let v = a.(!i) + !carry in
      a.(!i) <- v land limb_mask;
      carry := v asr limb_bits;
      incr i
    done
  end;
  (* Value < 2^255 + small; at most two subtractions of p. *)
  if ge_p a then sub_p_in_place a;
  if ge_p a then sub_p_in_place a;
  a

let add (a : t) (b : t) : t =
  canonicalize (Array.init limbs (fun i -> a.(i) + b.(i)))

(* a - b = a + (2p - b); all stage values nonnegative for canonical b. *)
let sub (a : t) (b : t) : t =
  canonicalize (Array.init limbs (fun i -> a.(i) + two_p_limbs.(i) - b.(i)))

let neg (a : t) : t = sub (zero ()) a

(* Carry-normalize a double-width product first (limbs are up to ~2^57;
   multiplying those by 608 directly would overflow), then fold: limb
   (10+k) is worth 608 * 2^26k. The product is below p^2 < 2^510 <
   2^520, so no carry escapes limb 19. *)
let reduce_product (prod : int array) : t =
  let carry = ref 0 in
  for i = 0 to (2 * limbs) - 1 do
    let v = prod.(i) + !carry in
    prod.(i) <- v land limb_mask;
    carry := v asr limb_bits
  done;
  let folded = Array.init limbs (fun k -> prod.(k) + (prod.(k + limbs) * 608)) in
  canonicalize folded

let mul (a : t) (b : t) : t =
  let prod = Array.make (2 * limbs) 0 in
  for i = 0 to limbs - 1 do
    let ai = a.(i) in
    if ai <> 0 then
      for j = 0 to limbs - 1 do
        prod.(i + j) <- prod.(i + j) + (ai * b.(j))
      done
  done;
  reduce_product prod

(* Dedicated squaring: the symmetric half of the schoolbook product is
   computed once and doubled (55 limb products instead of 100). The
   curve's double-and-add chains are squaring-heavy, so this is worth
   ~25% of a scalar multiplication. Bound: a product limb accumulates
   at most 10 terms of 2 * 2^26 * 2^26 < 2^53, so < 2^57. *)
let sqr (a : t) : t =
  let prod = Array.make (2 * limbs) 0 in
  for i = 0 to limbs - 1 do
    let ai = a.(i) in
    if ai <> 0 then begin
      prod.(2 * i) <- prod.(2 * i) + (ai * ai);
      let ai2 = 2 * ai in
      for j = i + 1 to limbs - 1 do
        prod.(i + j) <- prod.(i + j) + (ai2 * a.(j))
      done
    end
  done;
  reduce_product prod

(* ------------------------------------------------------------------ *)
(* Conversions and derived operations.                                 *)
(* ------------------------------------------------------------------ *)

let of_nat (n : Nat.t) : t =
  let n = Nat.rem n Ed25519_p.p in
  Array.init limbs (fun i ->
      match Nat.to_int_opt (Nat.low_bits (Nat.shift_right n (i * limb_bits)) limb_bits) with
      | Some v -> v
      | None -> assert false)

let to_nat (a : t) : Nat.t =
  let r = ref Nat.zero in
  for i = limbs - 1 downto 0 do
    r := Nat.add (Nat.shift_left !r limb_bits) (Nat.of_int a.(i))
  done;
  !r

let of_int (x : int) : t = canonicalize (Array.init limbs (fun i -> if i = 0 then x else 0))

(* Square-and-multiply over the fast field. The exponent's bits are
   extracted into an int array up front, so the hot loop never goes
   back through the arbitrary-precision layer. *)
let pow (base : t) (e : Nat.t) : t =
  let bits = Nat.bits e in
  let result = ref (one ()) in
  let b = ref base in
  let n = Array.length bits in
  for i = 0 to n - 1 do
    if bits.(i) = 1 then result := mul !result !b;
    if i < n - 1 then b := sqr !b
  done;
  !result

(* Fermat inversion by addition chain: 254 squarings + 11 multiplies,
   ~2.5x fewer multiplications than the generic [pow] above (which
   remains as the oracle the tests compare against). *)
let inv (a : t) : t = Addchain.pow_p_minus_2 ~mul ~sqr a

let is_zero (a : t) : bool = Array.for_all (fun l -> l = 0) a

let copy : t -> t = Array.copy

let parity (a : t) : int = a.(0) land 1

(* ------------------------------------------------------------------ *)
(* Square roots and batched inversion.                                 *)
(* ------------------------------------------------------------------ *)

(* sqrt(-1) = 2^((p-1)/4); (p-1)/4 = 2^253 - 5 = 2*(2^252 - 3) + 1,
   so it falls out of the shared chain: (2^(2^252-3))^2 * 2. *)
let sqrt_m1 : t =
  let two = of_int 2 in
  mul (sqr (Addchain.pow_2_252_minus_3 ~mul ~sqr two)) two

(* x with v * x^2 = u, if one exists: the combined Ed25519 decompression
   trick x = u * v^3 * (u * v^7)^((p-5)/8), patched by sqrt(-1) when the
   candidate squares to -u/v. One addition chain, no inversion. *)
let sqrt_ratio ~(u : t) ~(v : t) : t option =
  let v3 = mul (sqr v) v in
  let v7 = mul (sqr v3) v in
  let x = mul (mul u v3) (Addchain.pow_2_252_minus_3 ~mul ~sqr (mul u v7)) in
  let check = mul v (sqr x) in
  if equal check u then Some x
  else if equal check (neg u) then Some (mul x sqrt_m1)
  else None

(* All inverses with a single field inversion (Montgomery's trick):
   prefix products, one [inv], then walk back. Zero entries are mapped
   to zero (matching [neg]'s treatment of the non-invertible element). *)
let inv_many (xs : t array) : t array =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let scratch = Array.make n (one ()) in
    let acc = ref (one ()) in
    for i = 0 to n - 1 do
      scratch.(i) <- !acc;
      if not (is_zero xs.(i)) then acc := mul !acc xs.(i)
    done;
    let inv_acc = ref (inv !acc) in
    let out = Array.make n (zero ()) in
    for i = n - 1 downto 0 do
      if not (is_zero xs.(i)) then begin
        out.(i) <- mul !inv_acc scratch.(i);
        inv_acc := mul !inv_acc xs.(i)
      end
    done;
    out
  end
