(** The BA* agreement protocol (section 7) as a sans-IO state machine.

    One [t] runs one round of agreement: Reduction (Algorithm 7), the
    BinaryBA* loop (Algorithm 8) with the common coin (Algorithm 9),
    and the final/tentative classification (Algorithm 3). The caller
    owns all I/O: it feeds [Deliver]/[Timer] events in and executes
    [Broadcast]/[Set_timer] actions out. The machine holds no secrets -
    key material stays behind the [my_votes] closure, mirroring the
    paper's participant-replacement property. *)

type ctx = {
  params : Params.t;
  round : int;
  empty_hash : string;  (** H(Empty(round, H(last block))) *)
  my_votes : step:Vote.step -> value:string -> Vote.t list;
      (** Sortition + signing. Honest users return zero or one vote;
          byzantine harnesses may return several. *)
  validate : Vote.t -> int;  (** weighted vote count; 0 if invalid (Algorithm 6) *)
}

type action =
  | Broadcast of Vote.t
  | Set_timer of { token : int; delay : float }
  | Bin_decided of { value : string; bin_steps : int }
      (** BinaryBA* returned; final classification still pending *)
  | Decided of { value : string; final : bool; bin_steps : int }
  | Hang  (** exceeded MaxSteps; wait for recovery (section 8.2) *)

type event =
  | Start of string  (** the highest-priority proposed block's hash *)
  | Deliver of Vote.t
  | Timer of int

type phase =
  | Idle
  | Reduction_one_wait
  | Reduction_two_wait
  | Bin_wait of int
  | Final_wait
  | Finished
  | Hung

type t

val create : ctx -> t

val handle : t -> event -> action list
(** Feed one event; execute the returned actions. Votes for future
    steps are buffered; stale timer tokens are ignored.
    @raise Invalid_argument on [Start] in a non-idle state. *)

val phase : t -> phase
val bin_steps : t -> int

val clone : t -> t
(** Fork the machine for state-space exploration: ctx closures are
    shared (pure), all mutable state is copied. *)

val digest : t -> string
(** Canonical digest of the behavior-determining state (phase, BinaryBA*
    bookkeeping, counter tallies and voter sets). Two machines that
    received the same vote *set* in different orders digest equal. *)

val logged_votes : t -> Vote.step -> Vote.t list
(** All valid votes received (or sent) for a step this round. *)

val certificate_votes : t -> Vote.t list
(** Votes from the last BinaryBA* step for the decided value - a block
    certificate (section 8.3). *)

val final_certificate_votes : t -> Vote.t list
(** Final-step votes for the decided value - proves finality. *)
