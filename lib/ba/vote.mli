(** Committee vote messages (Algorithm 4) and their validation
    (Algorithm 6). *)

open Algorand_crypto

type step =
  | Reduction_one
  | Reduction_two
  | Bin of int  (** BinaryBA* steps, numbered from 1 *)
  | Final

val step_to_string : step -> string
val compare_step : step -> step -> int
val equal_step : step -> step -> bool

val committee_role : round:int -> step:step -> string
(** Sortition role for a committee seat: distinct per round and step,
    so each step draws a fresh committee (participant replacement). *)

val proposer_role : round:int -> string

type t = {
  round : int;
  step : step;
  voter_pk : string;  (** composite user key *)
  sorthash : string;  (** VRF output from the committee sortition *)
  sortproof : string;
  prev_hash : string;  (** H(last agreed block): binds the vote to a fork *)
  value : string;  (** block hash being voted for *)
  signature : string;
}

val signed_body : t -> string
val size_bytes : t -> int

val gossip_id : t -> string
(** Relay-dedup id: one message per (voter, round, step) - deliberately
    excluding the value, per the section 8.4 relay rule. *)

val make :
  signer:Signature_scheme.signer ->
  prover:Vrf.prover ->
  pk:string ->
  seed:string ->
  tau:float ->
  w:int ->
  total_weight:int ->
  round:int ->
  step:step ->
  prev_hash:string ->
  value:string ->
  t option
(** Run sortition and sign; [None] when not selected for the committee
    (Algorithm 4 sends nothing in that case). *)

type validation_ctx = {
  sig_scheme : Signature_scheme.scheme;
  vrf_scheme : Vrf.scheme;
  sig_pk_of : string -> string;  (** project the signing key from a composite key *)
  vrf_pk_of : string -> string;
  seed : string;
  total_weight : int;
  weight_of : string -> int;
  last_block_hash : string;
  tau_of_step : step -> float;
}

val validate : validation_ctx -> t -> int
(** Algorithm 6 (ProcessMsg): the weighted vote count the message
    carries, or 0 if invalid or off-fork. *)

val validate_credential : validation_ctx -> t -> int
(** [validate] minus the signature check (fork binding + sortition
    credential only). Callers that batch signatures — certificate
    validation — pair this with [signature_triple]. *)

val signature_triple : validation_ctx -> t -> string * string * string
(** The [(pk, msg, signature)] triple [validate] would check, for
    feeding [Signature_scheme.verify_batch]. *)
