(* Committee vote messages (Algorithm 4) and their validation
   (Algorithm 6, ProcessMsg). A vote binds (round, step, value) to the
   voter's sortition credential and to the hash of the previous block,
   so votes from users on a different fork are discarded. *)

open Algorand_crypto
module Sortition = Algorand_sortition.Sortition

type step =
  | Reduction_one
  | Reduction_two
  | Bin of int  (** BinaryBA* steps, numbered from 1 *)
  | Final

let step_to_string = function
  | Reduction_one -> "reduction-1"
  | Reduction_two -> "reduction-2"
  | Bin i -> "bin-" ^ string_of_int i
  | Final -> "final"

let compare_step (a : step) (b : step) : int =
  let rank = function Reduction_one -> (0, 0) | Reduction_two -> (1, 0) | Bin i -> (2, i) | Final -> (3, 0) in
  compare (rank a) (rank b)

let equal_step a b = compare_step a b = 0

(* The sortition role for a committee seat (section 5.1): distinct per
   round and step so every step draws a fresh committee. *)
let committee_role ~(round : int) ~(step : step) : string =
  Printf.sprintf "committee|%d|%s" round (step_to_string step)

let proposer_role ~(round : int) : string = Printf.sprintf "proposer|%d" round

type t = {
  round : int;
  step : step;
  voter_pk : string;
  sorthash : string;  (** VRF output from the committee sortition *)
  sortproof : string;
  prev_hash : string;  (** H(last agreed block); binds the vote to a fork *)
  value : string;  (** the block hash being voted for *)
  signature : string;
}

let signed_body (v : t) : string =
  String.concat "|"
    [
      string_of_int v.round;
      step_to_string v.step;
      v.sorthash;
      v.sortproof;
      v.prev_hash;
      v.value;
    ]

let size_bytes (v : t) : int =
  (* round/step encoding + pk + sorthash + proof + prev + value + sig *)
  16 + String.length v.voter_pk + String.length v.sorthash + String.length v.sortproof
  + String.length v.prev_hash + String.length v.value + String.length v.signature

(* A unique gossip id: one message per (voter, round, step) is relayed
   (section 8.4), so the id deliberately excludes the value - an
   equivocating committee member's second vote for the same step is
   dropped by honest relays. *)
let gossip_id (v : t) : string =
  Sha256.digest_concat [ "vote"; string_of_int v.round; step_to_string v.step; v.voter_pk ]

(* Construct and sign a vote; performs the sortition check and returns
   None when not selected (Algorithm 4 gossips nothing in that case). *)
let make ~(signer : Signature_scheme.signer) ~(prover : Vrf.prover) ~(pk : string)
    ~(seed : string) ~(tau : float) ~(w : int) ~(total_weight : int) ~(round : int)
    ~(step : step) ~(prev_hash : string) ~(value : string) : t option =
  let role = committee_role ~round ~step in
  let sel = Sortition.select ~prover ~seed ~tau ~role ~w ~total_weight in
  if sel.j = 0 then None
  else begin
    let unsigned =
      {
        round;
        step;
        voter_pk = pk;
        sorthash = sel.vrf_hash;
        sortproof = sel.vrf_proof;
        prev_hash;
        value;
        signature = "";
      }
    in
    Some { unsigned with signature = signer.sign (signed_body unsigned) }
  end

type validation_ctx = {
  sig_scheme : Signature_scheme.scheme;
  vrf_scheme : Vrf.scheme;
  sig_pk_of : string -> string;
      (** project the signing key out of a composite user key *)
  vrf_pk_of : string -> string;
  seed : string;
  total_weight : int;
  weight_of : string -> int;
  last_block_hash : string;
  tau_of_step : step -> float;
}

(* The signature check as a (pk, msg, signature) triple, so certificate
   validation can defer it into one batched verification. *)
let signature_triple (ctx : validation_ctx) (v : t) : string * string * string =
  (ctx.sig_pk_of v.voter_pk, signed_body { v with signature = "" }, v.signature)

(* Everything in Algorithm 6 except the signature: fork binding plus
   the sortition credential. Returns the weighted vote count, or 0. *)
let validate_credential (ctx : validation_ctx) (v : t) : int =
  if not (String.equal v.prev_hash ctx.last_block_hash) then 0
  else
    Sortition.verify ~scheme:ctx.vrf_scheme ~pk:(ctx.vrf_pk_of v.voter_pk)
      ~vrf_hash:v.sorthash ~vrf_proof:v.sortproof ~seed:ctx.seed
      ~tau:(ctx.tau_of_step v.step)
      ~role:(committee_role ~round:v.round ~step:v.step) ~w:(ctx.weight_of v.voter_pk)
      ~total_weight:ctx.total_weight

(* Algorithm 6: returns the number of weighted votes the message
   carries, or 0 if it is invalid or off-fork. *)
let validate (ctx : validation_ctx) (v : t) : int =
  let pk, msg, signature = signature_triple ctx v in
  if not (ctx.sig_scheme.verify ~pk ~msg ~signature) then 0
  else validate_credential ctx v
