(* Incremental CountVotes (Algorithm 5). The pseudocode's blocking loop
   becomes an accumulator fed by message-delivery events; the caller
   arms its own timeout. Each voter's public key counts once per step
   (first vote wins, as in the pseudocode's [voters] set), and the
   recorded sortition hashes feed CommonCoin (Algorithm 9). *)

type t = {
  threshold : float;  (** T * tau: strictly-greater-than wins *)
  counts : (string, int) Hashtbl.t;  (** value -> weighted votes *)
  voters : (string, unit) Hashtbl.t;  (** pks already counted *)
  mutable messages : (string * int) list;  (** (sorthash, votes) for the coin *)
  mutable reached : string option;  (** first value to cross the threshold *)
  mutable total_votes : int;
}

let create ~(threshold : float) : t =
  {
    threshold;
    counts = Hashtbl.create 32;
    voters = Hashtbl.create 32;
    messages = [];
    reached = None;
    total_votes = 0;
  }

(* Feed one validated vote carrying [votes] weighted sub-user votes.
   Returns [`Reached value] the first time some value crosses the
   threshold, [`Counted] for any other accepted vote, and [`Ignored]
   for duplicates / zero-vote messages. *)
let add (t : t) ~(pk : string) ~(votes : int) ~(value : string) ~(sorthash : string) :
    [ `Reached of string | `Counted | `Ignored ] =
  if votes <= 0 || Hashtbl.mem t.voters pk then `Ignored
  else begin
    Hashtbl.replace t.voters pk ();
    t.messages <- (sorthash, votes) :: t.messages;
    t.total_votes <- t.total_votes + votes;
    let current = match Hashtbl.find_opt t.counts value with Some c -> c | None -> 0 in
    let updated = current + votes in
    Hashtbl.replace t.counts value updated;
    if t.reached = None && float_of_int updated > t.threshold then begin
      t.reached <- Some value;
      `Reached value
    end
    else `Counted
  end

(* Independent copy for state-space exploration: the model checker
   forks a machine per schedule branch, so the accumulators must not
   share mutable tables. *)
let copy (t : t) : t =
  {
    threshold = t.threshold;
    counts = Hashtbl.copy t.counts;
    voters = Hashtbl.copy t.voters;
    messages = t.messages;
    reached = t.reached;
    total_votes = t.total_votes;
  }

(* Canonical (value, votes) listing, sorted by value - order-independent
   input for state digests. *)
let snapshot (t : t) : (string * int) list =
  Hashtbl.fold (fun value votes acc -> (value, votes) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let voters (t : t) : string list =
  Hashtbl.fold (fun pk () acc -> pk :: acc) t.voters [] |> List.sort String.compare

let reached (t : t) : string option = t.reached
let votes_for (t : t) (value : string) : int =
  match Hashtbl.find_opt t.counts value with Some c -> c | None -> 0

let total_votes (t : t) : int = t.total_votes
let messages (t : t) : (string * int) list = t.messages
let distinct_voters (t : t) : int = Hashtbl.length t.voters
