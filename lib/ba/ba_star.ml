(* The BA* agreement protocol (section 7), as a sans-IO state machine.

   The paper presents BA* as blocking pseudocode (Algorithms 3, 7, 8):
   Reduction's two steps, then the BinaryBA* loop whose three-step
   period votes / counts / flips a common coin, then the final-step
   classification into final or tentative consensus. Here each
   CommitteeVote becomes a [Broadcast] action, each blocking
   CountVotes becomes a vote accumulator plus a [Set_timer] action, and
   the caller (a node in the simulator, or a test harness) feeds
   [Deliver]/[Timer] events back in. The machine holds no secrets: key
   material stays behind the [my_votes] closure, mirroring the paper's
   point that participants keep no private state besides their keys
   and can be replaced after every message.

   Event-driven equivalences with the pseudocode:
   - votes for *future* steps arriving early are accumulated and
     count the moment the machine enters that step;
   - a CountVotes success "cancels" the pending timer by token
     invalidation;
   - the implementation note in section 9 (voting for the next three
     steps after returning vs. looking back three steps) is the
     pseudocode variant: we broadcast the next-three-step votes. *)

type ctx = {
  params : Params.t;
  round : int;
  empty_hash : string;  (** H(Empty(round, H(last block))) *)
  my_votes : step:Vote.step -> value:string -> Vote.t list;
      (** Sortition + signing closure. Honest nodes return zero or one
          vote; byzantine test harnesses may return several
          (equivocation). *)
  validate : Vote.t -> int;
      (** Weighted vote count of a message; 0 if invalid (Algorithm 6). *)
}

type action =
  | Broadcast of Vote.t
  | Set_timer of { token : int; delay : float }
  | Bin_decided of { value : string; bin_steps : int }
      (** BinaryBA* returned; final classification still pending. *)
  | Decided of { value : string; final : bool; bin_steps : int }
  | Hang  (** exceeded MaxSteps: wait for the recovery protocol (8.2) *)

type event = Start of string  (** initial highest-priority block hash *)
           | Deliver of Vote.t
           | Timer of int

type phase =
  | Idle
  | Reduction_one_wait
  | Reduction_two_wait
  | Bin_wait of int
  | Final_wait
  | Finished
  | Hung

type t = {
  ctx : ctx;
  mutable phase : phase;
  mutable timer_token : int;  (** token of the timer we currently honor *)
  mutable initial_hash : string;  (** BA*'s input block hash *)
  mutable bin_input : string;  (** Reduction's output: BinaryBA*'s block_hash *)
  mutable bin_result : string;  (** BinaryBA*'s return value *)
  mutable bin_steps : int;
  counters : (Vote.step, Vote_counter.t) Hashtbl.t;
  votes_log : (Vote.step, Vote.t list ref) Hashtbl.t;  (** valid votes, for certificates *)
}

let create (ctx : ctx) : t =
  {
    ctx;
    phase = Idle;
    timer_token = -1;
    initial_hash = "";
    bin_input = "";
    bin_result = "";
    bin_steps = 0;
    counters = Hashtbl.create 16;
    votes_log = Hashtbl.create 16;
  }

let threshold_of_step (p : Params.t) (step : Vote.step) : float =
  match step with Vote.Final -> Params.final_threshold p | _ -> Params.step_threshold p

let counter (t : t) (step : Vote.step) : Vote_counter.t =
  match Hashtbl.find_opt t.counters step with
  | Some c -> c
  | None ->
    let c = Vote_counter.create ~threshold:(threshold_of_step t.ctx.params step) in
    Hashtbl.replace t.counters step c;
    c

let log_vote (t : t) (v : Vote.t) : unit =
  match Hashtbl.find_opt t.votes_log v.step with
  | Some l -> l := v :: !l
  | None -> Hashtbl.replace t.votes_log v.step (ref [ v ])

let logged_votes (t : t) (step : Vote.step) : Vote.t list =
  match Hashtbl.find_opt t.votes_log step with Some l -> !l | None -> []

let fresh_timer (t : t) ~(delay : float) : action =
  t.timer_token <- t.timer_token + 1;
  Set_timer { token = t.timer_token; delay }

let broadcasts (t : t) ~(step : Vote.step) ~(value : string) : action list =
  List.map (fun v -> Broadcast v) (t.ctx.my_votes ~step ~value)

(* The vote each phase is waiting to count. *)
let step_of_phase = function
  | Reduction_one_wait -> Some Vote.Reduction_one
  | Reduction_two_wait -> Some Vote.Reduction_two
  | Bin_wait s -> Some (Vote.Bin s)
  | Final_wait -> Some Vote.Final
  | Idle | Finished | Hung -> None

(* -------------------- phase transitions -------------------- *)

(* After BinaryBA* returns: classify final vs tentative (Algorithm 3).
   Final requires the final-step committee to have already crossed its
   threshold on the same value, or to do so within lambda_step. *)
let rec finish_binary (t : t) ~(value : string) : action list =
  t.bin_result <- value;
  t.phase <- Final_wait;
  let announce = Bin_decided { value; bin_steps = t.bin_steps } in
  match Vote_counter.reached (counter t Vote.Final) with
  | Some r -> announce :: classify t ~final_value:(Some r)
  | None -> [ announce; fresh_timer t ~delay:t.ctx.params.lambda_step ]

and classify (t : t) ~(final_value : string option) : action list =
  t.phase <- Finished;
  let final = match final_value with Some r -> String.equal r t.bin_result | None -> false in
  [ Decided { value = t.bin_result; final; bin_steps = t.bin_steps } ]

(* Enter BinaryBA* step [s], voting for [value]. *)
and enter_bin (t : t) ~(s : int) ~(value : string) : action list =
  if s > t.ctx.params.max_steps then begin
    t.phase <- Hung;
    [ Hang ]
  end
  else begin
    t.bin_steps <- s;
    t.phase <- Bin_wait s;
    let actions =
      broadcasts t ~step:(Vote.Bin s) ~value @ [ fresh_timer t ~delay:t.ctx.params.lambda_step ]
    in
    (* Early completion: the committee may already have crossed the
       threshold from votes that arrived before we entered the step. *)
    match Vote_counter.reached (counter t (Vote.Bin s)) with
    | Some v -> actions @ resolve_bin t ~s ~result:(`Reached v)
    | None -> actions
  end

(* Would a threshold crossing of [v] at bin step [s] end the loop? The
   returning branches are A (non-empty value) and B (the empty value). *)
and crossing_returns (t : t) ~(s : int) ~(v : string) : bool =
  match (s - 1) mod 3 with
  | 0 -> not (String.equal v t.ctx.empty_hash)
  | 1 -> String.equal v t.ctx.empty_hash
  | _ -> false

(* Section 9 look-back: on a timeout at step [s], check whether any of
   the last three steps' counters crossed the threshold on a value that
   would have returned there; deciders stopped voting, so this recorded
   crossing is the laggard's evidence. *)
and look_back_decision (t : t) ~(s : int) : string option =
  let rec scan k =
    if k > 3 || s - k < 1 then None
    else begin
      let s' = s - k in
      match Hashtbl.find_opt t.counters (Vote.Bin s') with
      | Some c -> (
        match Vote_counter.reached c with
        | Some v when crossing_returns t ~s:s' ~v -> Some v
        | _ -> scan (k + 1))
      | None -> scan (k + 1)
    end
  in
  scan 1

(* Resolve BinaryBA* step [s] (Algorithm 8's three-branch period). *)
and resolve_bin (t : t) ~(s : int) ~(result : [ `Reached of string | `Timeout ]) :
    action list =
  let empty = t.ctx.empty_hash in
  let vote_next_three ~value =
    match t.ctx.params.ba_variant with
    | Params.Vote_next_three ->
      List.concat_map
        (fun off -> broadcasts t ~step:(Vote.Bin (s + off)) ~value)
        [ 1; 2; 3 ]
    | Params.Look_back -> []
  in
  (* In look-back mode a timeout first consults recent steps: the
     deciders stopped voting, so their recorded threshold crossing is
     the laggard's evidence (section 9). *)
  let look_back_hit =
    match (result, t.ctx.params.ba_variant) with
    | `Timeout, Params.Look_back -> look_back_decision t ~s
    | _ -> None
  in
  match look_back_hit with
  | Some v -> finish_binary t ~value:v
  | None -> (
  match (s - 1) mod 3 with
  | 0 -> (
    (* Branch A: timeout -> block_hash; non-empty consensus returns. *)
    match result with
    | `Timeout -> enter_bin t ~s:(s + 1) ~value:t.bin_input
    | `Reached v when not (String.equal v empty) ->
      let final_vote = if s = 1 then broadcasts t ~step:Vote.Final ~value:v else [] in
      vote_next_three ~value:v @ final_vote @ finish_binary t ~value:v
    | `Reached v -> enter_bin t ~s:(s + 1) ~value:v)
  | 1 -> (
    (* Branch B: timeout -> empty_hash; empty consensus returns. *)
    match result with
    | `Timeout -> enter_bin t ~s:(s + 1) ~value:empty
    | `Reached v when String.equal v empty ->
      vote_next_three ~value:v @ finish_binary t ~value:v
    | `Reached v -> enter_bin t ~s:(s + 1) ~value:v)
  | _ -> (
    (* Branch C: timeout -> common coin decides the next vote. *)
    match result with
    | `Timeout ->
      let coin = Common_coin.flip (Vote_counter.messages (counter t (Vote.Bin s))) in
      let value = if coin = 0 then t.bin_input else empty in
      enter_bin t ~s:(s + 1) ~value
    | `Reached v -> enter_bin t ~s:(s + 1) ~value:v))

(* Resolve a Reduction step (Algorithm 7). *)
and resolve_reduction_one (t : t) ~(result : [ `Reached of string | `Timeout ]) :
    action list =
  let value = match result with `Reached v -> v | `Timeout -> t.ctx.empty_hash in
  t.phase <- Reduction_two_wait;
  let actions =
    broadcasts t ~step:Vote.Reduction_two ~value
    @ [ fresh_timer t ~delay:t.ctx.params.lambda_step ]
  in
  match Vote_counter.reached (counter t Vote.Reduction_two) with
  | Some v -> actions @ resolve_reduction_two t ~result:(`Reached v)
  | None -> actions

and resolve_reduction_two (t : t) ~(result : [ `Reached of string | `Timeout ]) :
    action list =
  let hblock = match result with `Reached v -> v | `Timeout -> t.ctx.empty_hash in
  t.bin_input <- hblock;
  enter_bin t ~s:1 ~value:hblock

(* -------------------- event dispatch -------------------- *)

let handle (t : t) (event : event) : action list =
  match event with
  | Start hblock -> (
    match t.phase with
    | Idle ->
      t.initial_hash <- hblock;
      t.phase <- Reduction_one_wait;
      let p = t.ctx.params in
      (* Others may still be waiting for block proposals, hence the
         longer lambda_block + lambda_step window (Algorithm 7). *)
      let actions =
        broadcasts t ~step:Vote.Reduction_one ~value:hblock
        @ [ fresh_timer t ~delay:(p.lambda_block +. p.lambda_step) ]
      in
      (match Vote_counter.reached (counter t Vote.Reduction_one) with
      | Some v -> actions @ resolve_reduction_one t ~result:(`Reached v)
      | None -> actions)
    | _ -> invalid_arg "Ba_star.handle: Start in non-idle state")
  | Deliver v -> (
    if v.round <> t.ctx.round then []
    else begin
      let votes = t.ctx.validate v in
      if votes = 0 then []
      else begin
        log_vote t v;
        let c = counter t v.step in
        match
          Vote_counter.add c ~pk:v.voter_pk ~votes ~value:v.value ~sorthash:v.sorthash
        with
        | `Ignored | `Counted -> []
        | `Reached value -> (
          (* Only act if this is the step we are blocked on. *)
          match step_of_phase t.phase with
          | Some step when Vote.equal_step step v.step -> (
            match t.phase with
            | Reduction_one_wait -> resolve_reduction_one t ~result:(`Reached value)
            | Reduction_two_wait -> resolve_reduction_two t ~result:(`Reached value)
            | Bin_wait s -> resolve_bin t ~s ~result:(`Reached value)
            | Final_wait -> classify t ~final_value:(Some value)
            | Idle | Finished | Hung -> [])
          | _ -> [])
      end
    end)
  | Timer token -> (
    if token <> t.timer_token then [] (* stale timer *)
    else begin
      match t.phase with
      | Reduction_one_wait -> resolve_reduction_one t ~result:`Timeout
      | Reduction_two_wait -> resolve_reduction_two t ~result:`Timeout
      | Bin_wait s -> resolve_bin t ~s ~result:`Timeout
      | Final_wait -> classify t ~final_value:None
      | Idle | Finished | Hung -> []
    end)

let phase (t : t) : phase = t.phase
let bin_steps (t : t) : int = t.bin_steps

(* -------------------- exploration support -------------------- *)

(* Fork the machine for state-space exploration. The ctx closures are
   shared (they are pure given the same inputs: sortition and signing
   are deterministic), but every mutable table is copied so branches
   evolve independently. *)
let clone (t : t) : t =
  let counters = Hashtbl.create (Hashtbl.length t.counters) in
  Hashtbl.iter (fun step c -> Hashtbl.replace counters step (Vote_counter.copy c)) t.counters;
  let votes_log = Hashtbl.create (Hashtbl.length t.votes_log) in
  Hashtbl.iter (fun step l -> Hashtbl.replace votes_log step (ref !l)) t.votes_log;
  {
    ctx = t.ctx;
    phase = t.phase;
    timer_token = t.timer_token;
    initial_hash = t.initial_hash;
    bin_input = t.bin_input;
    bin_result = t.bin_result;
    bin_steps = t.bin_steps;
    counters;
    votes_log;
  }

let phase_tag = function
  | Idle -> "I"
  | Reduction_one_wait -> "R1"
  | Reduction_two_wait -> "R2"
  | Bin_wait s -> "B" ^ string_of_int s
  | Final_wait -> "F"
  | Finished -> "D"
  | Hung -> "H"

(* Cheap canonical digest of everything that determines future
   behavior: phase, BinaryBA* bookkeeping, and each step counter's
   value tallies and voter set (sorted, so delivery order of an
   equivalent vote set yields an identical digest - the property the
   checker's visited-state dedup relies on). *)
let digest (t : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (phase_tag t.phase);
  Buffer.add_char buf '|';
  Buffer.add_string buf (string_of_int t.timer_token);
  Buffer.add_char buf '|';
  Buffer.add_string buf t.initial_hash;
  Buffer.add_string buf t.bin_input;
  Buffer.add_string buf t.bin_result;
  Buffer.add_string buf (string_of_int t.bin_steps);
  let steps =
    Hashtbl.fold (fun step _ acc -> step :: acc) t.counters []
    |> List.sort Vote.compare_step
  in
  List.iter
    (fun step ->
      let c = Hashtbl.find t.counters step in
      Buffer.add_char buf '|';
      Buffer.add_string buf (Vote.step_to_string step);
      List.iter
        (fun (value, votes) ->
          Buffer.add_char buf ';';
          Buffer.add_string buf value;
          Buffer.add_char buf '=';
          Buffer.add_string buf (string_of_int votes))
        (Vote_counter.snapshot c);
      List.iter
        (fun pk ->
          Buffer.add_char buf ',';
          Buffer.add_string buf pk)
        (Vote_counter.voters c);
      match Vote_counter.reached c with
      | Some v ->
        Buffer.add_char buf '!';
        Buffer.add_string buf v
      | None -> ())
    steps;
  Algorand_crypto.Sha256.digest (Buffer.contents buf)

(* Votes usable as a certificate for the decided value: the last
   BinaryBA* step's votes for it (section 8.3). *)
let certificate_votes (t : t) : Vote.t list =
  List.filter
    (fun (v : Vote.t) -> String.equal v.value t.bin_result)
    (logged_votes t (Vote.Bin t.bin_steps))

(* Final-step votes, proving finality to a late joiner. *)
let final_certificate_votes (t : t) : Vote.t list =
  List.filter (fun (v : Vote.t) -> String.equal v.value t.bin_result) (logged_votes t Vote.Final)
