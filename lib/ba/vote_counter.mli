(** Incremental CountVotes (Algorithm 5): an accumulator fed by
    message-delivery events, reporting the first value to cross the
    [T * tau] threshold. Each voter key counts once. *)

type t

val create : threshold:float -> t

val add :
  t ->
  pk:string ->
  votes:int ->
  value:string ->
  sorthash:string ->
  [ `Reached of string | `Counted | `Ignored ]
(** Feed one validated vote. [`Reached v] fires exactly once, when [v]
    first exceeds the threshold (strictly). *)

val copy : t -> t
(** Independent copy (exploration forks must not share tables). *)

val snapshot : t -> (string * int) list
(** Canonical (value, votes) pairs sorted by value, for state digests. *)

val voters : t -> string list
(** Counted voter keys, sorted. *)

val reached : t -> string option
val votes_for : t -> string -> int
val total_votes : t -> int

val messages : t -> (string * int) list
(** (sorthash, votes) pairs of every counted message - the common
    coin's input (Algorithm 9). *)

val distinct_voters : t -> int
