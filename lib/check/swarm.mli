(** The simulation swarm: one coverage-guided torture entrypoint that
    composes every fault injector, attack and fuzzer - churn, loss,
    duplication, flooding, corruption, equivocation, partitions, the
    bytes wire, hostile workloads, undecidable messages, adaptive
    corruption - per episode, audits the full invariant set, fingerprints
    coverage via the observability registry, breeds a corpus of novel
    compositions, and shrinks violations to one-line reproducers.
    Deterministic end to end: the budget is accounted in simulated
    engine events, never wall clock. *)

type stressor =
  | Churn of { fraction : float; down_for : float }
  | Loss of float
  | Dup of float
  | Flood of { flooders : float; rate : float }
  | Corrupt of float
  | Equivocate of float
  | Partition
  | Bytes_wire
  | Hostile_txs of { rate : float; zipf : float }
  | Undecidable of float
  | Adaptive of float

val family : stressor -> string
val families : stressor list -> int
(** Distinct stressor families in a composition. *)

type config = {
  seed : int;
  users : int;
  rounds : int;
  stressors : stressor list;
}

val to_string : config -> string
(** One-line replay form: [seed=S;users=U;rounds=R;st=a:p,b,c:p:q]. *)

val of_string : string -> (config, string) result

val to_harness : config -> Algorand_core.Harness.config
(** Materialize the composition onto the unified harness entrypoint
    ({!Algorand_core.Harness.attacks_of}). *)

type episode = {
  config : config;
  violation : string option;
      (** first violated invariant: agreement, conservation,
          convergence, liveness, or decode *)
  detail : string;
  fingerprint : string list;  (** {!Algorand_obs.Registry.fingerprint} *)
  events : int;  (** engine events consumed - the budget currency *)
}

val run_episode : config -> episode
(** Run one composition to quiescence and audit the full invariant
    set. A pure function of the config. *)

val fresh_config : Algorand_sim.Rng.t -> config
val mutate : Algorand_sim.Rng.t -> config -> config

val shrink : config -> invariant:string -> config
(** Greedy 1-minimal deletion over the stressor composition (via
    {!Shrink.minimize_seq} with "still violates the same invariant"
    as oracle), then parameter shrinking. Deterministic. *)

val reproducer : config -> invariant:string -> string
(** The one-line replayable reproducer printed on every violation. *)

val events_per_sec : int
(** Simulated-events-per-second constant behind [--budget-sec]. *)

type corpus_entry = {
  entry_config : config;
  coverage : string;  (** digest of the episode's full fingerprint *)
  novel : int;  (** fingerprint items first exercised by this episode *)
}

type report = {
  episodes : int;
  total_events : int;
  corpus : corpus_entry list;  (** in discovery order *)
  found : (config * string * string) list;
      (** minimized (config, invariant, detail) per violation *)
  max_families : int;
  coverage_items : int;
}

val corpus_digest : report -> string
(** Digest over the corpus (configs + coverage, in order) - the value
    the CI determinism check compares across two identical runs. *)

val run :
  ?log:(string -> unit) -> budget_sec:int -> seed_stream:int -> unit -> report
(** Run the swarm: draw compositions (biased toward corpus mutations
    once coverage exists), run episodes until the deterministic event
    budget is spent, shrink and report every violation. *)
