(** Invariant audits over a checker world: the machine-checked versions
    of the paper's claims (agreement, final uniqueness, certificate
    soundness/uniqueness via [Core.Certificate], bounded liveness). *)

module Certificate = Algorand_core.Certificate

type violation = { invariant : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val agreement : World.t -> violation list
(** No two nodes decided different block hashes this round. *)

val no_conflicting_finals : World.t -> violation list
val certificate_soundness : World.t -> violation list
(** Every decided node's assembled certificate re-validates (Algorithm 6
    on every vote + quorum) under the world's own params. *)

val certificate_uniqueness : World.t -> violation list
val bounded_liveness : World.t -> violation list
(** Only meaningful at schedule exhaustion: every node decided, none
    hung. *)

val certificate_of : World.t -> int -> (Certificate.t * bool) option
(** Node [i]'s certificate for its decision (deduped last-bin-step
    votes), paired with its finality flag. *)

val check_step : World.t -> violation list
(** Safety invariants; evaluate after every transition. *)

val check_leaf : World.t -> violation list
(** [check_step] plus bounded liveness; evaluate at terminal states. *)
