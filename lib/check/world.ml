(* The model checker's world: N BA* machines for one round, a multiset
   of in-flight vote deliveries, and one armed timer per machine. The
   simulator runs this same protocol through a WAN model that yields
   exactly one delivery order per seed; here delivery order is the
   *choice point* a scheduler (lib/check/schedule.ml) explores.

   The world is the sans-IO cluster of test/test_ba_star.ml made
   forkable: [clone] and [digest] (built on Ba_star.clone/digest) let a
   DFS branch on every delivery choice and dedup states reached by
   equivalent vote sets delivered in different orders. Timers fire only
   at quiescence (no deliverable message left), the classic
   "synchronous timeout" abstraction: the adversary may reorder and
   interleave arbitrarily but not starve a step forever, matching the
   paper's weak-synchrony window rather than full asynchrony. *)

open Algorand_crypto
module Vote = Algorand_ba.Vote
module Ba_star = Algorand_ba.Ba_star
module Params = Algorand_ba.Params
module Identity = Algorand_core.Identity

type scenario = Agree | Split

(* Fixed block hashes the scenarios vote over. *)
let block_a = Sha256.digest "check-block-a"
let block_b = Sha256.digest "check-block-b"
let empty_hash = Sha256.digest "check-empty-block"

type config = {
  nodes : int;
  round : int;
  params : Params.t;
  scenario : scenario;
  seed : string;  (** sortition seed: vary to vary committee draws *)
}

let default_config =
  {
    nodes = 4;
    round = 1;
    params = { Params.paper with tau_step = 40.0; tau_final = 60.0; max_steps = 12 };
    scenario = Agree;
    seed = "check-seed";
  }

type pending = { seq : int; src : int; dst : int; vote : Vote.t }

type trace_event =
  | Deliver of { seq : int; src : int; dst : int; step : Vote.step; value : string }
  | Timer_round

type t = {
  config : config;
  users : Identity.t array;  (** needed post-create by {!forge_vote} *)
  machines : Ba_star.t array;
  vctx : Vote.validation_ctx;
  mutable pending : pending list;  (** oldest (lowest seq) first *)
  mutable next_seq : int;
  timers : int option array;  (** latest armed timer token per machine *)
  decided : (string * bool) option array;
  hung : bool array;
  mutable trace_rev : trace_event list;
  mutable timer_rounds : int;
}

let input_of (c : config) (i : int) : string =
  match c.scenario with Agree -> block_a | Split -> if i mod 2 = 0 then block_a else block_b

let create (config : config) : t =
  let sig_scheme = Signature_scheme.sim and vrf_scheme = Vrf.sim in
  let users =
    Array.init config.nodes (fun i ->
        Identity.generate ~sig_scheme ~vrf_scheme ~seed:(Printf.sprintf "check%d" i))
  in
  let weight = 100 in
  let total_weight = weight * config.nodes in
  let prev_hash = String.make 32 'P' in
  let params = config.params in
  let vctx : Vote.validation_ctx =
    {
      sig_scheme;
      vrf_scheme;
      sig_pk_of = Identity.sig_pk;
      vrf_pk_of = Identity.vrf_pk;
      seed = config.seed;
      total_weight;
      weight_of = (fun _ -> weight);
      last_block_hash = prev_hash;
      tau_of_step = (function Vote.Final -> params.tau_final | _ -> params.tau_step);
    }
  in
  let machine i =
    let ctx : Ba_star.ctx =
      {
        params;
        round = config.round;
        empty_hash;
        my_votes =
          (fun ~step ~value ->
            match
              Vote.make ~signer:users.(i).signer ~prover:users.(i).prover
                ~pk:users.(i).pk ~seed:config.seed
                ~tau:
                  (match step with
                  | Vote.Final -> params.tau_final
                  | _ -> params.tau_step)
                ~w:weight ~total_weight ~round:config.round ~step ~prev_hash ~value
            with
            | Some v -> [ v ]
            | None -> []);
        validate = (fun v -> Vote.validate vctx v);
      }
    in
    Ba_star.create ctx
  in
  {
    config;
    users;
    machines = Array.init config.nodes machine;
    vctx;
    pending = [];
    next_seq = 0;
    timers = Array.make config.nodes None;
    decided = Array.make config.nodes None;
    hung = Array.make config.nodes false;
    trace_rev = [];
    timer_rounds = 0;
  }

let config (t : t) : config = t.config
let validation_ctx (t : t) : Vote.validation_ctx = t.vctx
let machines (t : t) : Ba_star.t array = t.machines
let decisions (t : t) : (string * bool) option array = t.decided
let hung (t : t) : bool array = t.hung
let pending (t : t) : pending list = t.pending
let timer_rounds (t : t) : int = t.timer_rounds
let trace (t : t) : trace_event list = List.rev t.trace_rev
let timers_armed (t : t) : bool = Array.exists Option.is_some t.timers
let all_done (t : t) : bool =
  let ok = ref true in
  Array.iteri (fun i d -> if d = None && not t.hung.(i) then ok := false) t.decided;
  !ok

(* Apply the actions one machine returned from a single event. The
   broadcasts become pending deliveries to *every* node (including the
   sender: a node hears its own gossip), so the scheduler owns each
   copy's fate independently. *)
let apply_actions (t : t) (origin : int) (actions : Ba_star.action list) : unit =
  List.iter
    (fun (a : Ba_star.action) ->
      match a with
      | Ba_star.Broadcast v ->
        for dst = 0 to t.config.nodes - 1 do
          t.pending <- t.pending @ [ { seq = t.next_seq; src = origin; dst; vote = v } ];
          t.next_seq <- t.next_seq + 1
        done
      | Ba_star.Set_timer { token; delay = _ } -> t.timers.(origin) <- Some token
      | Ba_star.Bin_decided _ -> ()
      | Ba_star.Decided { value; final; _ } -> t.decided.(origin) <- Some (value, final)
      | Ba_star.Hang -> t.hung.(origin) <- true)
    actions

let start (t : t) : unit =
  Array.iteri
    (fun i m ->
      apply_actions t i (Ba_star.handle m (Ba_star.Start (input_of t.config i))))
    t.machines

let deliver (t : t) (p : pending) : unit =
  t.pending <- List.filter (fun q -> q.seq <> p.seq) t.pending;
  t.trace_rev <-
    Deliver { seq = p.seq; src = p.src; dst = p.dst; step = p.vote.step; value = p.vote.value }
    :: t.trace_rev;
  apply_actions t p.dst (Ba_star.handle t.machines.(p.dst) (Ba_star.Deliver p.vote))

let deliver_seq (t : t) (seq : int) : bool =
  match List.find_opt (fun q -> q.seq = seq) t.pending with
  | Some p ->
    deliver t p;
    true
  | None -> false

(* Content-addressed delivery, for replaying (possibly shrunk) traces
   whose seq numbers no longer line up: the first pending message with
   the same src/dst/step/value is the same protocol message. *)
let deliver_matching (t : t) ~(src : int) ~(dst : int) ~(step : Vote.step)
    ~(value : string) : bool =
  match
    List.find_opt
      (fun q ->
        q.src = src && q.dst = dst
        && Vote.equal_step q.vote.step step
        && String.equal q.vote.value value)
      t.pending
  with
  | Some p ->
    deliver t p;
    true
  | None -> false

(* Fire every armed timer, in node order - one lockstep timeout round.
   Only schedulers call this, and only at quiescence (fuzz/DFS) so the
   timeout abstraction stays honest. *)
let fire_timers (t : t) : unit =
  t.trace_rev <- Timer_round :: t.trace_rev;
  t.timer_rounds <- t.timer_rounds + 1;
  Array.iteri
    (fun i m ->
      match t.timers.(i) with
      | Some token ->
        t.timers.(i) <- None;
        apply_actions t i (Ba_star.handle m (Ba_star.Timer token))
      | None -> ())
    t.machines

(* Adversary hooks for the gallery (lib/check/gallery.ml). A forged
   vote is a *legitimately signed* vote for whatever value the
   adversary picks - what a corrupted committee member can produce for
   steps whose ephemeral keys it still holds. [Vote.make] runs real
   sortition, so forging fails (None) for steps where the voter is not
   on the committee; the adversary cannot grant itself seats. *)
let forge_vote (t : t) ~(voter : int) ~(step : Vote.step) ~(value : string) :
    Vote.t option =
  let params = t.config.params in
  let weight = 100 in
  Vote.make
    ~signer:t.users.(voter).Identity.signer
    ~prover:t.users.(voter).Identity.prover
    ~pk:t.users.(voter).Identity.pk ~seed:t.config.seed
    ~tau:(match step with Vote.Final -> params.tau_final | _ -> params.tau_step)
    ~w:weight
    ~total_weight:(weight * t.config.nodes)
    ~round:t.config.round ~step
    ~prev_hash:(String.make 32 'P')
    ~value

(* Put an adversary-chosen vote in flight to every node, exactly as a
   broadcast from [src] would be: the scheduler owns each copy's fate. *)
let inject (t : t) ~(src : int) (vote : Vote.t) : unit =
  for dst = 0 to t.config.nodes - 1 do
    t.pending <- t.pending @ [ { seq = t.next_seq; src; dst; vote } ];
    t.next_seq <- t.next_seq + 1
  done

(* The canonical frontier the DFS branches over: all pending messages
   in the least (step, dst) class. Messages to different nodes (or for
   different steps) are kept in a fixed canonical order - the
   partial-order reduction: only the relative order of messages racing
   into the *same* counter can change which value crosses a threshold
   first. *)
let frontier (t : t) : pending list =
  match t.pending with
  | [] -> []
  | first :: rest ->
    let key (p : pending) = (p.vote.step, p.dst) in
    let least =
      List.fold_left
        (fun acc p ->
          let (s, d) = key p and (s', d') = acc in
          let c = Vote.compare_step s s' in
          if c < 0 || (c = 0 && d < d') then key p else acc)
        (key first) rest
    in
    List.filter (fun p -> key p = least) t.pending

let clone (t : t) : t =
  {
    config = t.config;
    users = t.users;
    machines = Array.map Ba_star.clone t.machines;
    vctx = t.vctx;
    pending = t.pending;
    next_seq = t.next_seq;
    timers = Array.copy t.timers;
    decided = Array.copy t.decided;
    hung = Array.copy t.hung;
    trace_rev = t.trace_rev;
    timer_rounds = t.timer_rounds;
  }

(* Canonical digest of the whole world: machine digests plus the
   canonical multiset of in-flight messages and per-node verdicts.
   Two schedules that delivered the same vote sets (in any order) and
   left the same messages in flight collide here, which is what makes
   bounded DFS tractable. *)
let digest (t : t) : string =
  let buf = Buffer.create 512 in
  Array.iter
    (fun m ->
      Buffer.add_string buf (Ba_star.digest m);
      Buffer.add_char buf '|')
    t.machines;
  let canon =
    List.map
      (fun (p : pending) ->
        Printf.sprintf "%d>%d:%s:%s:%s" p.src p.dst
          (Vote.step_to_string p.vote.step)
          p.vote.voter_pk p.vote.value)
      t.pending
    |> List.sort String.compare
  in
  List.iter
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf ';')
    canon;
  Array.iter
    (fun d ->
      match d with
      | Some (v, f) ->
        Buffer.add_string buf v;
        Buffer.add_string buf (if f then "F" else "T")
      | None -> Buffer.add_char buf '.')
    t.decided;
  Array.iter (fun h -> Buffer.add_char buf (if h then 'H' else '.')) t.hung;
  Array.iter
    (fun tok ->
      match tok with
      | Some k -> Buffer.add_string buf (string_of_int k)
      | None -> Buffer.add_char buf '_')
    t.timers;
  Sha256.digest (Buffer.contents buf)

(* ------------------------- trace rendering ------------------------- *)

let value_tag (v : string) : string =
  if String.equal v block_a then "A"
  else if String.equal v block_b then "B"
  else if String.equal v empty_hash then "empty"
  else String.sub (Hex.of_string v) 0 8

let pp_trace_event (fmt : Format.formatter) (e : trace_event) : unit =
  match e with
  | Deliver { seq; src; dst; step; value } ->
    Format.fprintf fmt "deliver #%d %s n%d->n%d value=%s" seq
      (Vote.step_to_string step) src dst (value_tag value)
  | Timer_round -> Format.fprintf fmt "timeout-round"

let render_trace (events : trace_event list) : string =
  String.concat "\n"
    (List.map (fun e -> Format.asprintf "%a" pp_trace_event e) events)
