(* Invariant audits evaluated after every world transition (and, for
   bounded liveness, at terminal states). These are the machine-checked
   versions of the paper's claims:

   - agreement (Theorem 1 / section 7.5): no two honest nodes conclude
     BA* with different block hashes for the same round;
   - no conflicting finals (section 5.2): at most one FINAL value;
   - certificate soundness (section 8.3): every decided node can
     assemble a certificate that re-validates under Algorithm 6 and
     crosses the vote threshold - audited with Core.Certificate, the
     same code a light client would run;
   - certificate uniqueness: no two valid certificates for different
     values in one round;
   - bounded liveness: once the schedule is exhausted (all messages
     delivered, timers fired), every node has decided within MaxSteps.

   A violation carries enough detail to read the counterexample without
   re-running it; the schedule that produced it is reported (and
   shrunk) by the caller. *)

module Vote = Algorand_ba.Vote
module Ba_star = Algorand_ba.Ba_star
module Certificate = Algorand_core.Certificate

type violation = { invariant : string; detail : string }

let pp_violation fmt (v : violation) =
  Format.fprintf fmt "%s: %s" v.invariant v.detail

(* --------------------------- agreement ---------------------------- *)

let decided_values (w : World.t) : (int * string * bool) list =
  let acc = ref [] in
  Array.iteri
    (fun i d -> match d with Some (v, f) -> acc := (i, v, f) :: !acc | None -> ())
    (World.decisions w);
  List.rev !acc

let agreement (w : World.t) : violation list =
  let decided = decided_values w in
  let distinct =
    List.sort_uniq String.compare (List.map (fun (_, v, _) -> v) decided)
  in
  if List.length distinct <= 1 then []
  else
    [
      {
        invariant = "agreement";
        detail =
          Printf.sprintf "conflicting decisions: %s"
            (String.concat ", "
               (List.map
                  (fun (i, v, _) -> Printf.sprintf "n%d=%s" i (World.value_tag v))
                  decided));
      };
    ]

let no_conflicting_finals (w : World.t) : violation list =
  let finals =
    List.filter (fun (_, _, f) -> f) (decided_values w)
    |> List.map (fun (_, v, _) -> v)
    |> List.sort_uniq String.compare
  in
  if List.length finals <= 1 then []
  else
    [
      {
        invariant = "final-uniqueness";
        detail =
          Printf.sprintf "two different FINAL values: %s"
            (String.concat ", " (List.map World.value_tag finals));
      };
    ]

(* -------------------------- certificates -------------------------- *)

let dedup_by_voter (votes : Vote.t list) : Vote.t list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (v : Vote.t) ->
      if Hashtbl.mem seen v.voter_pk then false
      else begin
        Hashtbl.replace seen v.voter_pk ();
        true
      end)
    votes

(* Assemble node [i]'s certificate for its decision, exactly as the
   simulator's Node does: the last BinaryBA* step's votes for the
   decided value. *)
let certificate_of (w : World.t) (i : int) : (Certificate.t * bool) option =
  match (World.decisions w).(i) with
  | None -> None
  | Some (value, final) ->
    let m = (World.machines w).(i) in
    let step = Vote.Bin (Ba_star.bin_steps m) in
    let votes = dedup_by_voter (Ba_star.certificate_votes m) in
    Some (Certificate.make ~round:(World.config w).round ~step ~block_hash:value ~votes, final)

let certificate_soundness (w : World.t) : violation list =
  let ctx = World.validation_ctx w in
  let params = (World.config w).params in
  let acc = ref [] in
  Array.iteri
    (fun i d ->
      match d with
      | None -> ()
      | Some (_, _) -> (
        match certificate_of w i with
        | None -> ()
        | Some (cert, _) -> (
          match Certificate.validate ~params ~ctx cert with
          | Ok () -> ()
          | Error e ->
            acc :=
              {
                invariant = "certificate";
                detail =
                  Format.asprintf "n%d decided %s but its certificate fails: %a" i
                    (World.value_tag cert.block_hash) Certificate.pp_error e;
              }
              :: !acc)))
    (World.decisions w);
  List.rev !acc

let certificate_uniqueness (w : World.t) : violation list =
  let ctx = World.validation_ctx w in
  let params = (World.config w).params in
  let valid_values = ref [] in
  Array.iteri
    (fun i _ ->
      match certificate_of w i with
      | Some (cert, _) when Certificate.validate ~params ~ctx cert = Ok () ->
        if
          not
            (List.exists (fun (v, _) -> String.equal v cert.block_hash) !valid_values)
        then valid_values := (cert.block_hash, i) :: !valid_values
      | _ -> ())
    (World.machines w);
  match !valid_values with
  | (_ :: _ :: _) as vs ->
    [
      {
        invariant = "certificate-uniqueness";
        detail =
          Printf.sprintf "valid certificates for different values: %s"
            (String.concat ", "
               (List.map
                  (fun (v, i) -> Printf.sprintf "n%d certifies %s" i (World.value_tag v))
                  (List.rev vs)));
      };
    ]
  | _ -> []

(* ----------------------------- liveness --------------------------- *)

let bounded_liveness (w : World.t) : violation list =
  let acc = ref [] in
  Array.iteri
    (fun i d ->
      if (World.hung w).(i) then
        acc :=
          {
            invariant = "liveness";
            detail = Printf.sprintf "n%d hung (exceeded MaxSteps)" i;
          }
          :: !acc
      else if d = None then
        acc :=
          {
            invariant = "liveness";
            detail = Printf.sprintf "n%d undecided at schedule exhaustion" i;
          }
          :: !acc)
    (World.decisions w);
  List.rev !acc

(* ---------------------------- entry points ------------------------ *)

let check_step (w : World.t) : violation list =
  agreement w @ no_conflicting_finals w @ certificate_soundness w
  @ certificate_uniqueness w

let check_leaf (w : World.t) : violation list = check_step w @ bounded_liveness w
