(** The model checker's world: N BA* machines for one round, the
    multiset of in-flight vote deliveries, and one armed timer per
    machine. Delivery order is the choice point schedulers explore;
    [clone]/[digest] make the world forkable and dedupable for DFS.
    Timers fire only at quiescence (weak synchrony: the adversary
    reorders freely but cannot starve a step forever). *)

module Vote = Algorand_ba.Vote
module Ba_star = Algorand_ba.Ba_star
module Params = Algorand_ba.Params

type scenario =
  | Agree  (** every node starts BA* with the same proposed block *)
  | Split  (** a dishonest proposer equivocated: half see A, half B *)

val block_a : string
val block_b : string
val empty_hash : string

type config = {
  nodes : int;
  round : int;
  params : Params.t;
  scenario : scenario;
  seed : string;
}

val default_config : config
(** 4 nodes, paper params with small committees ([tau_step]=40,
    [tau_final]=60, [max_steps]=12), [Agree]. *)

type pending = { seq : int; src : int; dst : int; vote : Vote.t }

type trace_event =
  | Deliver of { seq : int; src : int; dst : int; step : Vote.step; value : string }
  | Timer_round  (** every armed timer fired, in node order *)

type t

val create : config -> t
val start : t -> unit
(** Feed [Start] to every machine; their first votes become pending. *)

val config : t -> config
val machines : t -> Ba_star.t array
val validation_ctx : t -> Vote.validation_ctx
val decisions : t -> (string * bool) option array
val hung : t -> bool array
val pending : t -> pending list
val timers_armed : t -> bool
val all_done : t -> bool
val timer_rounds : t -> int
val trace : t -> trace_event list

val deliver : t -> pending -> unit
val deliver_seq : t -> int -> bool
val deliver_matching :
  t -> src:int -> dst:int -> step:Vote.step -> value:string -> bool
(** Content-addressed delivery for replaying shrunk traces whose seq
    numbers no longer line up. False if no such message is in flight. *)

val fire_timers : t -> unit
(** One lockstep timeout round. Call only at quiescence. *)

val frontier : t -> pending list
(** The pending messages in the least (step, dst) class - the only
    messages the DFS branches over (partial-order reduction: only the
    relative order of messages racing into the same counter matters). *)

val forge_vote :
  t -> voter:int -> step:Vote.step -> value:string -> Vote.t option
(** A legitimately signed vote for an adversary-chosen value - what a
    corrupted committee member can produce for steps whose ephemeral
    keys it still holds. Runs real sortition: [None] when [voter] is
    not on the committee for [step] (corruption grants no seats). *)

val inject : t -> src:int -> Vote.t -> unit
(** Put a vote in flight to every node, exactly as a broadcast from
    [src] would be; the scheduler owns each copy's fate. *)

val clone : t -> t
val digest : t -> string

val value_tag : string -> string
(** "A" / "B" / "empty" / hex prefix - for rendering traces. *)

val pp_trace_event : Format.formatter -> trace_event -> unit
val render_trace : trace_event list -> string
