(** The adversary gallery: named attacks from the literature replayed
    against the small-world model checker, each with its own audit.
    Entries: Conti et al.'s "undecidable messages" (valid but
    unserviceable votes fed to an honest laggard across period
    boundaries) and Wang-style adaptive corruption racing the section
    11 ephemeral-key erasure. *)

type undecidable_report = {
  violations : Invariant.violation list;
  stale_deliveries : int;  (** messages delivered past their step horizon *)
  decided : int;
  hung : int;
}

type adaptive_report = {
  violations : Invariant.violation list;
  corrupted : int;  (** nodes corrupted on VRF reveal *)
  forged : int;  (** equivocating votes the adversary could sign *)
  retro_forged : int;
      (** forgeries for the revealing step itself - possible only with
          erasure off; must be 0 under the section 11 model *)
  decided : int;
}

val undecidable_run :
  ?config:World.config -> laggard:int -> unit -> undecidable_report
(** Withhold all traffic to [laggard] while the cluster runs ahead,
    then release the (by now stale) backlog; repeat to completion.
    Safety invariants are audited after every transition. *)

val adaptive_run :
  ?config:World.config ->
  seed:int ->
  budget:int ->
  erasure:bool ->
  unit ->
  adaptive_report
(** Seeded random schedule in which the adversary corrupts up to
    [budget] senders the moment their votes reveal their committee
    seats, then injects equivocating forgeries - for the next step
    only when [erasure] is on (the paper's model), or for the
    revealing step itself when off (the counterfactual). *)
