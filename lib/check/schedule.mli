(** Schedule exploration over a checker {!World}: FIFO replay, bounded
    DFS over delivery orders (partial-order reduced, digest-deduped),
    and seeded random-walk fuzzing. Every transition is followed by the
    {!Invariant} audit; violations freeze the schedule into a
    replayable trace. *)

type stats = {
  mutable transitions : int;
  mutable states : int;
  mutable schedules : int;
  mutable deduped : int;
  mutable truncated : int;
}

val fresh_stats : unit -> stats

type report = { violation : Invariant.violation; trace : World.trace_event list }

type outcome = {
  stats : stats;
  violations : report list;
  complete : bool;  (** DFS only: the bounded space was exhausted *)
}

val run_fifo : ?max_depth:int -> World.t -> outcome
(** The canonical single schedule: deliver in send order, time out at
    quiescence. *)

val run_fuzz : ?max_depth:int -> rng:Algorand_sim.Rng.t -> World.t -> outcome
(** One random walk: pick any in-flight message uniformly. Run many
    worlds with [Rng.split] streams for a fuzzing campaign. *)

val run_replay : World.t -> World.trace_event list -> outcome
(** Re-execute a recorded (possibly shrunk) trace against a fresh
    world. Deliveries are matched by content (src, dst, step, value) so
    shrunk traces survive seq renumbering; unmatched entries are
    skipped. Stops at the first violation. *)

val explore_dfs :
  ?stop_on_violation:bool ->
  ?max_depth:int ->
  ?max_states:int ->
  World.t ->
  outcome
(** Bounded exhaustive enumeration of delivery orders from a started
    world. Branches only on {!World.frontier} (messages racing into the
    same node's counter for the same step - the partial-order
    reduction); dedups on {!World.digest}. [complete] is true iff the
    reduced space was exhausted within the depth/state budgets. *)
