(** Structure-aware mutation fuzzing of the wire codec: a corpus of
    valid encodings is mutated (bit flips, truncation, splices,
    length-field bombs, field swaps, stacked 1-3 deep) and every
    mutant is pushed through [Codec.decode] under three oracles — no
    exception, allocation linear in the input, and re-encode/re-decode
    self-consistency for mutants that still parse. Failing frames
    shrink to 1-minimal reproducers via {!Shrink.minimize_seq}. *)

module Codec = Algorand_core.Codec

type failure = {
  mutation : string;  (** mutator that produced the frame *)
  frame_hex : string;  (** shrunk reproducer, hex *)
  frame_len : int;
  reason : string;
}

type report = {
  mutations : int;
  rejected : int;  (** mutants the decoder dropped (the normal case) *)
  decoded : int;  (** mutants that still decoded to a message *)
  failures : failure list;  (** must be empty *)
}

val corpus : unit -> string list
(** The valid encodings the mutators start from: every message kind,
    deterministically constructed. *)

val check_frame :
  limits:Codec.limits -> string -> ([ `Rejected | `Decoded ], string) result
(** One frame through the three oracles. *)

val run : ?limits:Codec.limits -> ?seed:int -> mutations:int -> unit -> report
(** Deterministic for a given [seed]. *)

type reassembly_report = {
  streams : int;
  clean_streams : int;  (** uncorrupted streams recovered exactly *)
  poisoned_streams : int;  (** corrupted streams rejected via a framing error *)
  reassembly_failures : failure list;  (** must be empty *)
}

val reassembly_run : ?seed:int -> streams:int -> unit -> reassembly_report
(** Fuzz the transport's {!Algorand_transport.Frame.Reassembler}:
    corpus frames are concatenated into streams, cut at adversarial
    segment boundaries (1-byte dribble, jittered chunks, coalesced
    blobs) and sometimes byte-corrupted. Oracles: an intact stream
    recovers exactly the encoded frames under every segmentation; the
    reassembler never raises, never emits more bytes than it was fed,
    and stays poisoned after a framing error. *)
