(* Structure-aware mutation fuzzing of the wire codec - the
   untrusted-ingress surface that every bytes-on-the-wire delivery
   runs through.

   A corpus of valid encodings (one per message kind, plus structural
   variants) is mutated with byte-level and structure-aware operators:
   bit flips, truncations, extensions, splices of two corpus frames,
   length-field bombs (an 8-byte window overwritten with a huge
   declared length - frames are length-prefixed, so random offsets hit
   real length fields often), and field swaps within the
   length-prefixed framing.

   Oracles, per mutant:
   - the decoder must not raise - any exception is a finding;
   - the decoder must not allocate more than a small multiple of its
     input (a 16-byte frame claiming 2^60 bytes must be rejected, not
     materialized);
   - a mutant that still decodes must re-encode to something that
     decodes back to the same message id (codec self-consistency).

   Failures shrink through {!Shrink.minimize_seq} over the frame's
   bytes to a 1-minimal reproducer. *)

open Algorand_crypto
module Codec = Algorand_core.Codec
module Message = Algorand_core.Message
module Certificate = Algorand_core.Certificate
module Block = Algorand_ledger.Block
module Transaction = Algorand_ledger.Transaction
module Wire = Algorand_ledger.Wire
module Vote = Algorand_ba.Vote
module Rng = Algorand_sim.Rng

(* ------------------------------ corpus ----------------------------- *)

(* Deterministic sample values, sim crypto: the fuzzer needs valid
   encodings to mutate, not valid signatures. *)
let corpus () : string list =
  let sig_scheme = Signature_scheme.sim in
  let signer, pk = sig_scheme.generate ~seed:"wirefuzz" in
  let _, pk2 = sig_scheme.generate ~seed:"wirefuzz2" in
  let h32 s = Sha256.digest s in
  let tx n =
    Transaction.make ~signer ~sender:pk ~recipient:pk2 ~amount:(n * 7) ~nonce:n
  in
  let vote step : Vote.t =
    {
      round = 11;
      step;
      voter_pk = pk ^ pk2;
      sorthash = h32 "sort";
      sortproof = "proofbytes";
      prev_hash = h32 "prev";
      value = h32 "value";
      signature = "sig";
    }
  in
  let block ~txs ~padding : Block.t =
    {
      header =
        {
          round = 12;
          prev_hash = h32 "p";
          timestamp = 99.25;
          seed = h32 "s";
          seed_proof = "sp";
          proposer_pk = pk ^ pk2;
          proposer_vrf_hash = h32 "v";
          proposer_vrf_proof = "vp";
        };
      txs;
      padding;
    }
  in
  let cert =
    Certificate.make ~round:5 ~step:(Vote.Bin 3) ~block_hash:(h32 "b")
      ~votes:(List.init 4 (fun i -> { (vote (Vote.Bin 3)) with round = i }))
  in
  List.map Codec.encode
    [
      Message.Tx (tx 1);
      Message.Priority
        {
          round = 4;
          proposer_pk = pk ^ pk2;
          prev_hash = h32 "p";
          vrf_hash = h32 "v";
          vrf_proof = "vp";
          priority = h32 "pr";
        };
      Message.Block_gossip (block ~txs:[ tx 1; tx 2; tx 3 ] ~padding:2048);
      Message.Block_gossip (block ~txs:[] ~padding:0);
      Message.Block_reply (block ~txs:[ tx 4 ] ~padding:100);
      Message.Ba_vote (vote Vote.Reduction_one);
      Message.Ba_vote (vote Vote.Reduction_two);
      Message.Ba_vote (vote (Vote.Bin 1));
      Message.Ba_vote (vote (Vote.Bin 150));
      Message.Ba_vote (vote Vote.Final);
      Message.Block_request
        { round = 6; block_hash = h32 "b"; requester = 3; attempt = 1 };
      Message.Fork_proposal
        {
          attempt = 1;
          proposer_pk = pk ^ pk2;
          vrf_hash = h32 "v";
          vrf_proof = "vp";
          priority = h32 "pr";
          suffix = [ block ~txs:[ tx 5 ] ~padding:16 ];
          tip_hash = h32 "tip";
        };
      Message.Round_request { from_round = 2; requester = 7; attempt = 0 };
      Message.Round_reply
        {
          to_ = 7;
          current_round = 9;
          items = [ (block ~txs:[ tx 6 ] ~padding:0, cert) ];
        };
    ]

(* ----------------------------- mutators ---------------------------- *)

let random_bytes (rng : Rng.t) (len : int) : string =
  String.init len (fun _ -> Char.chr (Rng.int rng 256))

let bit_flip (rng : Rng.t) (s : string) : string =
  if s = "" then s
  else begin
    let b = Bytes.of_string s in
    let pos = Rng.int rng (Bytes.length b) in
    let bit = Rng.int rng 8 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    Bytes.to_string b
  end

let byte_set (rng : Rng.t) (s : string) : string =
  if s = "" then s
  else begin
    let b = Bytes.of_string s in
    Bytes.set b (Rng.int rng (Bytes.length b)) (Char.chr (Rng.int rng 256));
    Bytes.to_string b
  end

let truncate (rng : Rng.t) (s : string) : string =
  if s = "" then s else String.sub s 0 (Rng.int rng (String.length s))

let extend (rng : Rng.t) (s : string) : string =
  s ^ random_bytes rng (1 + Rng.int rng 32)

(* Overwrite an 8-byte window with a huge big-endian value. The wire
   format is length-prefixed u64s, so this lands on real length (and
   round/step/padding) fields often - the declared-length-bomb shape. *)
let length_bomb (rng : Rng.t) (s : string) : string =
  if String.length s < 8 then s
  else begin
    let b = Bytes.of_string s in
    let off = Rng.int rng (Bytes.length b - 7) in
    let v =
      match Rng.int rng 4 with
      | 0 -> Int64.shift_left 1L 60
      | 1 -> Int64.max_int
      | 2 -> Int64.minus_one (* top bit set: negative as an OCaml 63-bit int *)
      | _ -> Int64.of_int (1 lsl 40)
    in
    Bytes.set_int64_be b off v;
    Bytes.to_string b
  end

(* Swap two top-level length-prefixed fields, keeping the framing
   valid: exercises decoders against structurally well-formed frames
   whose field order (hence meaning) is wrong. *)
let field_swap (rng : Rng.t) (s : string) : string =
  match Wire.split s with
  | exception _ -> byte_set rng s
  | fields when List.length fields >= 2 ->
    let arr = Array.of_list fields in
    let i = Rng.int rng (Array.length arr) in
    let j = Rng.int rng (Array.length arr) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp;
    Wire.concat (Array.to_list arr)
  | _ -> byte_set rng s

let splice (rng : Rng.t) (a : string) (b : string) : string =
  let head = if a = "" then "" else String.sub a 0 (Rng.int rng (String.length a)) in
  let tail =
    if b = "" then ""
    else begin
      let off = Rng.int rng (String.length b) in
      String.sub b off (String.length b - off)
    end
  in
  head ^ tail

let mutators : (string * (Rng.t -> string list -> string -> string)) list =
  [
    ("bit-flip", fun rng _ s -> bit_flip rng s);
    ("byte-set", fun rng _ s -> byte_set rng s);
    ("truncate", fun rng _ s -> truncate rng s);
    ("extend", fun rng _ s -> extend rng s);
    ("length-bomb", fun rng _ s -> length_bomb rng s);
    ("field-swap", fun rng _ s -> field_swap rng s);
    ( "splice",
      fun rng corpus s ->
        splice rng s (List.nth corpus (Rng.int rng (List.length corpus))) );
    ("garbage", fun rng _ _ -> random_bytes rng (Rng.int rng 256));
  ]

(* ------------------------------ oracles ---------------------------- *)

(* Allocation budget for one decode: linear in the input with a
   constant floor. The multiplier covers the nested copying of the
   framing (frame -> fields -> sub-fields, one copy per layer); what
   it must never cover is a declared length the input did not pay
   for. *)
let alloc_budget (len : int) : float = (64.0 *. float_of_int len) +. 65_536.0

let check_frame ~(limits : Codec.limits) (frame : string) :
    ([ `Rejected | `Decoded ], string) result =
  (* Empty the minor heap first: on OCaml 5 the allocation counters
     flush at collection boundaries, so a minor GC landing inside the
     measured window would attribute the whole minor heap to this
     decode. Starting from an empty nursery, an in-budget decode
     cannot trigger one. *)
  Gc.minor ();
  let before = Gc.allocated_bytes () in
  match Codec.decode ~limits frame with
  | exception e -> Error ("decode raised: " ^ Printexc.to_string e)
  | decoded -> (
    let allocated = Gc.allocated_bytes () -. before in
    if allocated > alloc_budget (String.length frame) then
      Error
        (Printf.sprintf "over-allocation: %.0f bytes for a %d-byte frame" allocated
           (String.length frame))
    else
      match decoded with
      | None -> Ok `Rejected
      | Some m -> (
        (* Self-consistency: whatever decoded must survive its own
           re-encoding with an identical message id. *)
        match Codec.decode ~limits (Codec.encode m) with
        | exception e -> Error ("re-decode raised: " ^ Printexc.to_string e)
        | Some m' when String.equal (Message.id m) (Message.id m') -> Ok `Decoded
        | Some _ -> Error "re-decode changed the message id"
        | None -> Error "re-encoding of a decoded mutant does not decode"))

(* ------------------------------- run ------------------------------- *)

type failure = {
  mutation : string;
  frame_hex : string;  (** shrunk reproducer, hex *)
  frame_len : int;
  reason : string;
}

type report = {
  mutations : int;
  rejected : int;  (** mutants the decoder dropped (the normal case) *)
  decoded : int;  (** mutants that still decoded to a message *)
  failures : failure list;
}

let explode (s : string) : char list = List.init (String.length s) (String.get s)
let implode (cs : char list) : string = String.init (List.length cs) (List.nth cs)

let shrink_frame ~(limits : Codec.limits) (frame : string) : string =
  let failing cs = Result.is_error (check_frame ~limits (implode cs)) in
  implode (Shrink.minimize_seq ~max_passes:8 ~keep:failing (explode frame))

let run ?(limits = Codec.default_limits) ?(seed = 1) ~(mutations : int) () : report =
  let rng = Rng.split (Rng.create seed) "wirefuzz" in
  let corpus = corpus () in
  let n_corpus = List.length corpus in
  let n_mutators = List.length mutators in
  let rejected = ref 0 and decoded = ref 0 and failures = ref [] in
  for _ = 1 to mutations do
    let base = List.nth corpus (Rng.int rng n_corpus) in
    let name, mutate = List.nth mutators (Rng.int rng n_mutators) in
    (* Stack 1-3 mutations: single corruptions are the common case,
       compounding catches decoders that only guard the first layer. *)
    let rounds = 1 + Rng.int rng 3 in
    let mutant = ref (mutate rng corpus base) in
    for _ = 2 to rounds do
      mutant := mutate rng corpus !mutant
    done;
    match check_frame ~limits !mutant with
    | Ok `Rejected -> incr rejected
    | Ok `Decoded -> incr decoded
    | Error reason ->
      let shrunk = shrink_frame ~limits !mutant in
      failures :=
        {
          mutation = name;
          frame_hex = Hex.of_string shrunk;
          frame_len = String.length shrunk;
          reason;
        }
        :: !failures
  done;
  {
    mutations;
    rejected = !rejected;
    decoded = !decoded;
    failures = List.rev !failures;
  }

(* ------------------------- frame reassembly ------------------------ *)

(* The transport's segmentation boundary: TCP delivers the same frame
   stream cut at arbitrary byte offsets, so the reassembler must
   recover exactly the encoded frames under every cut, and survive
   (poisoned, not crashed) when the stream bytes themselves are
   corrupted. *)

module Frame = Algorand_transport.Frame

type reassembly_report = {
  streams : int;
  clean_streams : int;  (** uncorrupted streams recovered exactly *)
  poisoned_streams : int;  (** corrupted streams rejected via a framing error *)
  reassembly_failures : failure list;
}

(* Cut [stream] into segments: 1-byte dribble, fixed small chunks,
   random jitter, or one coalesced blob. *)
let segment (rng : Rng.t) (stream : string) : string list =
  let n = String.length stream in
  if n = 0 then []
  else
    match Rng.int rng 4 with
    | 0 -> List.init n (fun i -> String.sub stream i 1)
    | 1 ->
      let k = 2 + Rng.int rng 6 in
      let rec cut off acc =
        if off >= n then List.rev acc
        else begin
          let len = min k (n - off) in
          cut (off + len) (String.sub stream off len :: acc)
        end
      in
      cut 0 []
    | 2 ->
      let rec cut off acc =
        if off >= n then List.rev acc
        else begin
          let len = min (1 + Rng.int rng 64) (n - off) in
          cut (off + len) (String.sub stream off len :: acc)
        end
      in
      cut 0 []
    | _ -> [ stream ]

let feed_all (r : Frame.Reassembler.t) (segments : string list) :
    (string list, Frame.Reassembler.error) result =
  List.fold_left
    (fun acc seg ->
      match acc with
      | Error _ as e -> e
      | Ok frames -> (
        match Frame.Reassembler.feed r seg with
        | Ok more -> Ok (frames @ more)
        | Error _ as e -> e))
    (Ok []) segments

let reassembly_run ?(seed = 1) ~(streams : int) () : reassembly_report =
  let rng = Rng.split (Rng.create seed) "reassembly" in
  let corpus = corpus () in
  let n_corpus = List.length corpus in
  let max_frame = 1 lsl 20 in
  let clean = ref 0 and poisoned = ref 0 and failures = ref [] in
  let fail mutation reason stream =
    failures :=
      {
        mutation;
        frame_hex = Hex.of_string stream;
        frame_len = String.length stream;
        reason;
      }
      :: !failures
  in
  for _ = 1 to streams do
    let payloads =
      List.init
        (1 + Rng.int rng 6)
        (fun _ -> List.nth corpus (Rng.int rng n_corpus))
    in
    let stream = String.concat "" (List.map Frame.encode payloads) in
    let corrupt = Rng.int rng 3 = 0 in
    let stream' =
      if not corrupt then stream
      else
        match Rng.int rng 3 with
        | 0 -> length_bomb rng stream
        | 1 -> bit_flip rng stream
        | _ ->
          (* Bomb the first header directly: random corruption rarely
             lands on the 4 header bytes, and the oversized->poison
             path deserves guaranteed coverage. *)
          let b = Bytes.of_string stream in
          Bytes.set_int32_be b 0 0xFFFFFF00l;
          Bytes.to_string b
    in
    let r = Frame.Reassembler.create ~max_frame_bytes:max_frame in
    match feed_all r (segment rng stream') with
    | exception e ->
      fail "segment" ("reassembler raised: " ^ Printexc.to_string e) stream'
    | Ok frames when stream' = stream ->
      (* Any segmentation of an intact stream must recover the exact
         frame sequence. *)
      if frames = payloads then incr clean
      else fail "segment" "segmentation changed the recovered frames" stream'
    | Ok frames ->
      (* A corrupted length prefix reframes the stream; the recovered
         payloads must still be bounded by what was fed (no invented
         bytes), and decode-layer oracles take it from there. *)
      let fed = String.length stream' in
      let got = List.fold_left (fun a f -> a + String.length f) 0 frames in
      if got <= fed then incr clean
      else fail "corrupt" "reassembler emitted more bytes than were fed" stream'
    | Error e ->
      incr poisoned;
      (* Poison is sticky: every later feed must keep failing. *)
      (match Frame.Reassembler.feed r "x" with
      | Error `Closed -> ()
      | Ok _ | Error (`Oversized _) ->
        fail "poison"
          (Format.asprintf "feed after %a was not rejected as closed"
             Frame.Reassembler.pp_error e)
          stream');
      if not corrupt then
        fail "segment" "intact stream hit a framing error" stream'
  done;
  {
    streams;
    clean_streams = !clean;
    poisoned_streams = !poisoned;
    reassembly_failures = List.rev !failures;
  }
