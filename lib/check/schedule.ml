(* Schedule exploration strategies over a checker World.

   The simulator yields exactly one delivery schedule per seed; BA*'s
   safety claims quantify over *all* schedules. Three strategies close
   the gap at small scale:

   - [run_fifo]: the canonical single schedule (delivery in send
     order, timeouts at quiescence) - a baseline and determinism probe;
   - [explore_dfs]: bounded exhaustive enumeration of delivery orders
     with a partial-order reduction (branch only on the relative order
     of messages racing into the same node's counter for the same step;
     everything else commutes and is kept in canonical order) and
     visited-state dedup on World.digest (vote *sets*, not sequences);
   - [run_fuzz]: a seeded random walk that picks any in-flight message
     uniformly, complementing the DFS beyond the reduction and the
     depth bound.

   Every transition is followed by the invariant audit; a violation
   freezes the schedule into a replayable trace for the shrinker. *)

type stats = {
  mutable transitions : int;  (** world transitions applied *)
  mutable states : int;  (** distinct states visited (DFS) / steps (walks) *)
  mutable schedules : int;  (** maximal schedules completed *)
  mutable deduped : int;  (** DFS branches folded by the state digest *)
  mutable truncated : int;  (** paths cut by depth or state budget *)
}

let fresh_stats () = { transitions = 0; states = 0; schedules = 0; deduped = 0; truncated = 0 }

type report = { violation : Invariant.violation; trace : World.trace_event list }

type outcome = {
  stats : stats;
  violations : report list;
  complete : bool;  (** DFS only: the bounded space was exhausted *)
}

(* Backstop on lockstep timeout rounds: BA* hangs by MaxSteps on its
   own; this only guards the checker against a cycling regression. *)
let timer_cap (w : World.t) : int = ((World.config w).params.max_steps * 4) + 16

let reports_of (w : World.t) (vs : Invariant.violation list) : report list =
  let trace = World.trace w in
  List.map (fun violation -> { violation; trace }) vs

(* ------------------------- linear walks --------------------------- *)

(* One maximal schedule driven by [pick]; returns the violations hit.
   The walk ends at the first violation, at schedule exhaustion, or at
   the depth bound. *)
let drive ~(pick : World.t -> World.pending option) ~(max_depth : int) (stats : stats)
    (w : World.t) : report list =
  let rec go depth =
    stats.states <- stats.states + 1;
    match Invariant.check_step w with
    | _ :: _ as vs ->
      stats.schedules <- stats.schedules + 1;
      reports_of w vs
    | [] ->
      if World.all_done w then begin
        stats.schedules <- stats.schedules + 1;
        reports_of w (Invariant.bounded_liveness w)
      end
      else if depth >= max_depth then begin
        stats.truncated <- stats.truncated + 1;
        stats.schedules <- stats.schedules + 1;
        []
      end
      else begin
        match World.pending w with
        | [] ->
          if World.timers_armed w && World.timer_rounds w < timer_cap w then begin
            World.fire_timers w;
            stats.transitions <- stats.transitions + 1;
            go (depth + 1)
          end
          else begin
            (* Stuck: nothing in flight, nothing to time out. *)
            stats.schedules <- stats.schedules + 1;
            reports_of w (Invariant.bounded_liveness w)
          end
        | _ -> (
          match pick w with
          | Some p ->
            World.deliver w p;
            stats.transitions <- stats.transitions + 1;
            go (depth + 1)
          | None ->
            stats.schedules <- stats.schedules + 1;
            reports_of w (Invariant.bounded_liveness w))
      end
  in
  go 0

let run_fifo ?(max_depth = 10_000) (w : World.t) : outcome =
  let stats = fresh_stats () in
  let violations =
    drive ~pick:(fun w -> match World.pending w with p :: _ -> Some p | [] -> None)
      ~max_depth stats w
  in
  { stats; violations; complete = false }

let run_fuzz ?(max_depth = 10_000) ~(rng : Algorand_sim.Rng.t) (w : World.t) : outcome =
  let stats = fresh_stats () in
  let pick w =
    match World.pending w with
    | [] -> None
    | ps -> Some (List.nth ps (Algorand_sim.Rng.int rng (List.length ps)))
  in
  let violations = drive ~pick ~max_depth stats w in
  { stats; violations; complete = false }

(* --------------------------- replay ------------------------------- *)

(* Re-execute a recorded (possibly shrunk) trace. Deliveries are
   matched by content, so traces survive seq renumbering after events
   are dropped; a trace entry with no matching in-flight message is
   skipped. Stops at the first violation. *)
let run_replay (w : World.t) (trace : World.trace_event list) : outcome =
  let stats = fresh_stats () in
  let rec go = function
    | [] ->
      stats.schedules <- stats.schedules + 1;
      if World.all_done w then reports_of w (Invariant.bounded_liveness w) else []
    | e :: rest ->
      let applied =
        match e with
        | World.Deliver { src; dst; step; value; _ } ->
          World.deliver_matching w ~src ~dst ~step ~value
        | World.Timer_round ->
          if World.timers_armed w then begin
            World.fire_timers w;
            true
          end
          else false
      in
      if not applied then go rest
      else begin
        stats.transitions <- stats.transitions + 1;
        match Invariant.check_step w with
        | _ :: _ as vs ->
          stats.schedules <- stats.schedules + 1;
          reports_of w vs
        | [] -> go rest
      end
  in
  let violations = go trace in
  { stats; violations; complete = false }

(* ----------------------------- DFS -------------------------------- *)

exception Stop_search

let explore_dfs ?(stop_on_violation = true) ?(max_depth = 400)
    ?(max_states = 200_000) (root : World.t) : outcome =
  let stats = fresh_stats () in
  let violations = ref [] in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let budget_cut = ref false in
  let rec go (w : World.t) (depth : int) : unit =
    stats.states <- stats.states + 1;
    match Invariant.check_step w with
    | _ :: _ as vs ->
      violations := !violations @ reports_of w vs;
      stats.schedules <- stats.schedules + 1;
      if stop_on_violation then raise Stop_search
    | [] ->
      if World.all_done w then begin
        stats.schedules <- stats.schedules + 1;
        match Invariant.bounded_liveness w with
        | [] -> ()
        | vs ->
          violations := !violations @ reports_of w vs;
          if stop_on_violation then raise Stop_search
      end
      else if depth >= max_depth then begin
        stats.truncated <- stats.truncated + 1;
        stats.schedules <- stats.schedules + 1
      end
      else begin
        let branches =
          match World.frontier w with
          | [] ->
            if World.timers_armed w && World.timer_rounds w < timer_cap w then
              [ `Timers ]
            else [ `Stuck ]
          | ps -> List.map (fun p -> `Deliver p) ps
        in
        match branches with
        | [ `Stuck ] ->
          stats.schedules <- stats.schedules + 1;
          (match Invariant.bounded_liveness w with
          | [] -> ()
          | vs ->
            violations := !violations @ reports_of w vs;
            if stop_on_violation then raise Stop_search)
        | bs ->
          List.iter
            (fun b ->
              if stats.states >= max_states then budget_cut := true
              else begin
                let w' = World.clone w in
                (match b with
                | `Timers -> World.fire_timers w'
                | `Deliver (p : World.pending) ->
                  if not (World.deliver_seq w' p.seq) then
                    invalid_arg "Schedule.explore_dfs: frontier message vanished"
                | `Stuck -> assert false);
                stats.transitions <- stats.transitions + 1;
                let d = World.digest w' in
                if Hashtbl.mem visited d then stats.deduped <- stats.deduped + 1
                else begin
                  Hashtbl.replace visited d ();
                  go w' (depth + 1)
                end
              end)
            bs
      end
  in
  let stopped_early = ref false in
  (try go root 0 with Stop_search -> stopped_early := true);
  if !budget_cut then stats.truncated <- stats.truncated + 1;
  {
    stats;
    violations = !violations;
    complete = (not !budget_cut) && stats.truncated = 0 && not !stopped_early;
  }
