(* The simulation swarm: one coverage-guided torture entrypoint that
   composes every fault injector, attack and fuzzer the repo has grown
   - crash churn, message loss, duplication, flooding, on-path
   corruption, byzantine equivocation, partitions, the bytes-mode wire,
   hostile transaction workloads, and the adversary-gallery entries
   (undecidable messages, adaptive corruption) - in the style of
   FoundationDB's simulation swarm.

   Per seed the mutator draws a *composition* of stressors, the harness
   runs a long-horizon episode under all of them at once, and the full
   invariant set is audited: agreement (no double-final round),
   restarted-node convergence, bounded liveness (every node stopped at
   quiescence), money-supply conservation, and zero decode failures
   when the wire is bytes-mode and nothing corrupts frames.

   Coverage guidance uses the observability layer as the signal: each
   episode is fingerprinted by which registry counters fired and which
   histogram buckets were populated (Registry.fingerprint). Episodes
   that exercise any new fingerprint item join a corpus, and the
   mutator biases toward corpus entries - compositions that reached
   novel behavior breed.

   Violations are shrunk with the same greedy machinery the model
   checker uses (Shrink.minimize_seq over the stressor composition,
   then parameter shrinking) and emitted as a one-line replayable
   reproducer: `algorand-check swarm --replay '<config>'`.

   Everything is deterministic: the budget is accounted in simulated
   engine events (not wall clock), so a given (budget, seed-stream)
   pair always runs the identical episode sequence and produces the
   identical corpus digest. *)

open Algorand_crypto
module Harness = Algorand_core.Harness
module Params = Algorand_ba.Params
module Metrics = Algorand_sim.Metrics
module Rng = Algorand_sim.Rng
module Registry = Algorand_obs.Registry
module Workload = Algorand_ledger.Workload

(* ------------------------- stressor algebra ------------------------ *)

type stressor =
  | Churn of { fraction : float; down_for : float }
      (** periodic crash-restart ticks over a random node fraction *)
  | Loss of float  (** uniform per-message drop probability *)
  | Dup of float  (** uniform per-message duplication probability *)
  | Flood of { flooders : float; rate : float }
      (** garbage-frame flooders vs the overlay's per-peer defense *)
  | Corrupt of float  (** on-path per-frame corruption probability *)
  | Equivocate of float
      (** fraction of users with equivocating proposers / double voters *)
  | Partition  (** a network split that heals inside the episode *)
  | Bytes_wire  (** every message crosses the WAN as Codec bytes *)
  | Hostile_txs of { rate : float; zipf : float }
      (** Zipf-skewed stream with invalid/duplicate/self-pay traffic *)
  | Undecidable of float
      (** laggard fraction fed only valid-but-stale protocol traffic *)
  | Adaptive of float
      (** committee members corrupted as their VRF proofs reveal them *)

let family = function
  | Churn _ -> "churn"
  | Loss _ -> "loss"
  | Dup _ -> "dup"
  | Flood _ -> "flood"
  | Corrupt _ -> "corrupt"
  | Equivocate _ -> "equivocate"
  | Partition -> "partition"
  | Bytes_wire -> "bytes"
  | Hostile_txs _ -> "hostile"
  | Undecidable _ -> "undecidable"
  | Adaptive _ -> "adaptive"

let n_families = 11

let family_name =
  [|
    "churn"; "loss"; "dup"; "flood"; "corrupt"; "equivocate"; "partition";
    "bytes"; "hostile"; "undecidable"; "adaptive";
  |]

let family_index (s : stressor) : int =
  let f = family s in
  let rec go i = if family_name.(i) = f then i else go (i + 1) in
  go 0

let families (ss : stressor list) : int =
  List.sort_uniq String.compare (List.map family ss) |> List.length

type config = {
  seed : int;
  users : int;
  rounds : int;
  stressors : stressor list;
}

(* ------------------------ one-line codec --------------------------- *)

(* The replay format: `seed=S;users=U;rounds=R;st=a:p1:p2,b,c:p1`. All
   float parameters come from the mutator's fixed palettes, so "%g"
   round-trips them exactly. *)

let stressor_to_string = function
  | Churn { fraction; down_for } -> Printf.sprintf "churn:%g:%g" fraction down_for
  | Loss p -> Printf.sprintf "loss:%g" p
  | Dup p -> Printf.sprintf "dup:%g" p
  | Flood { flooders; rate } -> Printf.sprintf "flood:%g:%g" flooders rate
  | Corrupt p -> Printf.sprintf "corrupt:%g" p
  | Equivocate f -> Printf.sprintf "equivocate:%g" f
  | Partition -> "partition"
  | Bytes_wire -> "bytes"
  | Hostile_txs { rate; zipf } -> Printf.sprintf "hostile:%g:%g" rate zipf
  | Undecidable f -> Printf.sprintf "undecidable:%g" f
  | Adaptive f -> Printf.sprintf "adaptive:%g" f

let to_string (c : config) : string =
  Printf.sprintf "seed=%d;users=%d;rounds=%d;st=%s" c.seed c.users c.rounds
    (String.concat "," (List.map stressor_to_string c.stressors))

let stressor_of_string (s : string) : (stressor, string) result =
  match String.split_on_char ':' s with
  | [ "churn"; f; d ] -> (
    try Ok (Churn { fraction = float_of_string f; down_for = float_of_string d })
    with _ -> Error ("bad churn params: " ^ s))
  | [ "loss"; p ] -> (
    try Ok (Loss (float_of_string p)) with _ -> Error ("bad loss param: " ^ s))
  | [ "dup"; p ] -> (
    try Ok (Dup (float_of_string p)) with _ -> Error ("bad dup param: " ^ s))
  | [ "flood"; f; r ] -> (
    try Ok (Flood { flooders = float_of_string f; rate = float_of_string r })
    with _ -> Error ("bad flood params: " ^ s))
  | [ "corrupt"; p ] -> (
    try Ok (Corrupt (float_of_string p)) with _ -> Error ("bad corrupt param: " ^ s))
  | [ "equivocate"; f ] -> (
    try Ok (Equivocate (float_of_string f))
    with _ -> Error ("bad equivocate param: " ^ s))
  | [ "partition" ] -> Ok Partition
  | [ "bytes" ] -> Ok Bytes_wire
  | [ "hostile"; r; z ] -> (
    try Ok (Hostile_txs { rate = float_of_string r; zipf = float_of_string z })
    with _ -> Error ("bad hostile params: " ^ s))
  | [ "undecidable"; f ] -> (
    try Ok (Undecidable (float_of_string f))
    with _ -> Error ("bad undecidable param: " ^ s))
  | [ "adaptive"; f ] -> (
    try Ok (Adaptive (float_of_string f))
    with _ -> Error ("bad adaptive param: " ^ s))
  | _ -> Error ("unknown stressor: " ^ s)

let of_string (s : string) : (config, string) result =
  let kv part =
    match String.index_opt part '=' with
    | Some i ->
      Some
        ( String.sub part 0 i,
          String.sub part (i + 1) (String.length part - i - 1) )
    | None -> None
  in
  let parts = String.split_on_char ';' (String.trim s) in
  let find key =
    List.find_map
      (fun p -> match kv p with Some (k, v) when k = key -> Some v | _ -> None)
      parts
  in
  match (find "seed", find "users", find "rounds", find "st") with
  | Some seed, Some users, Some rounds, Some st -> (
    match
      (int_of_string_opt seed, int_of_string_opt users, int_of_string_opt rounds)
    with
    | Some seed, Some users, Some rounds ->
      let items =
        if String.equal st "" then [] else String.split_on_char ',' st
      in
      let rec parse acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
          match stressor_of_string x with
          | Ok s -> parse (s :: acc) rest
          | Error e -> Error e)
      in
      Result.map
        (fun stressors -> { seed; users; rounds; stressors })
        (parse [] items)
    | _ -> Error "seed/users/rounds must be integers")
  | _ -> Error "expected seed=..;users=..;rounds=..;st=.."

(* --------------------- harness materialization -------------------- *)

(* Small fast deployments, same parameter shape the sim CLI uses for
   its churn/flood/corrupt paths: short lambdas, MaxSteps 6, recovery
   clock on - a full episode is tens of thousands of engine events,
   so a budgeted swarm run gets through many compositions. *)
let swarm_params =
  {
    Params.paper with
    lambda_priority = 1.0;
    lambda_stepvar = 1.0;
    lambda_block = 10.0;
    lambda_step = 5.0;
    max_steps = 6;
    recovery_interval = 150.0;
  }

let to_harness (c : config) : Harness.config =
  let base =
    {
      Harness.default with
      users = c.users;
      rounds = c.rounds;
      rng_seed = c.seed;
      params = swarm_params;
      crypto = Harness.Sim_crypto;
      block_bytes = 20_000;
      recovery_enabled = true;
      tx_rate_per_s = 0.5;
      max_sim_time = 3_600.0;
    }
  in
  List.fold_left
    (fun (hc : Harness.config) s ->
      match s with
      | Churn { fraction; down_for } ->
        {
          hc with
          stressors =
            hc.stressors
            @ [
                Harness.Crash_churn
                  (Harness.Periodic
                     { start = 5.0; period = 12.0; fraction; down_for; until = 80.0 });
              ];
        }
      | Loss p -> { hc with loss = p }
      | Dup p -> { hc with duplication = p }
      | Flood { flooders; rate } ->
        {
          hc with
          stressors =
            hc.stressors
            @ [
                Harness.Flood
                  {
                    flooders;
                    rate_per_s = rate;
                    frame_bytes = 512;
                    from_ = 2.0;
                    until = 1_000.0;
                  };
              ];
        }
      | Corrupt p ->
        {
          hc with
          stressors = hc.stressors @ [ Harness.Corrupt { p; from_ = 0.0; until = 60.0 } ];
        }
      | Equivocate f ->
        {
          hc with
          malicious_fraction = Float.max hc.malicious_fraction f;
          stressors = hc.stressors @ [ Harness.Equivocate ];
        }
      | Partition ->
        {
          hc with
          stressors =
            hc.stressors @ [ Harness.Partition { from_ = 4.0; until = 40.0 } ];
        }
      | Bytes_wire -> { hc with wire = `Bytes }
      | Hostile_txs { rate; zipf } ->
        {
          hc with
          tx_rate_per_s = rate;
          tx_profile =
            Some
              {
                Harness.tx_zipf_s = zipf;
                tx_mix = Workload.hostile;
                tx_burst = None;
              };
        }
      | Undecidable f ->
        {
          hc with
          stressors =
            hc.stressors
            @ [ Harness.Undecidable { fraction = f; from_ = 5.0; until = 60.0 } ];
        }
      | Adaptive f ->
        {
          hc with
          stressors =
            hc.stressors
            @ [ Harness.Adaptive_corrupt { fraction = f; from_ = 0.0; until = 120.0 } ];
        })
    base c.stressors

(* --------------------------- episodes ------------------------------ *)

type episode = {
  config : config;
  violation : string option;  (** invariant name, when one fired *)
  detail : string;
  fingerprint : string list;  (** Registry.fingerprint of the episode *)
  events : int;  (** engine events consumed - the budget currency *)
}

let has_family (c : config) (name : string) : bool =
  List.exists (fun s -> String.equal (family s) name) c.stressors

(* The paper's guarantees assume > 2/3 of the weight honest and
   online. Compositions that push the combined adversarial fraction
   (equivocators + adaptively-corrupted + simultaneously-crashed) past
   that envelope still run and still audit safety - agreement held in
   every episode we have seen beyond it - but an unfinished node there
   is the expected outcome, not a violation. Flooders are likewise
   excluded from the liveness audit: peers ban them by design
   (section 8.4 gossip limits), and a banned node cannot finish. *)
let faulty_fraction (c : config) : float =
  List.fold_left
    (fun acc s ->
      match s with
      | Equivocate f | Adaptive f -> acc +. f
      | Churn { fraction; _ } -> acc +. fraction
      | _ -> acc)
    0.0 c.stressors

let in_envelope (c : config) : bool = faulty_fraction c < 1.0 /. 3.0

(* Run one composition to quiescence and audit the full invariant set.
   The first violated invariant names the episode's verdict (the order
   here fixes which invariant a shrink preserves). *)
let run_episode (c : config) : episode =
  let r = Harness.run (to_harness c) in
  Harness.cleanup_stores r.harness;
  let fingerprint = Registry.fingerprint (Metrics.registry r.harness.metrics) in
  let ints l = String.concat "," (List.map string_of_int l) in
  let violation, detail =
    if r.safety.double_final <> [] then
      (Some "agreement", Printf.sprintf "double-final rounds [%s]" (ints r.safety.double_final))
    else if not r.txs.conservation_ok then
      ( Some "conservation",
        Printf.sprintf "money supply changed (%d txs committed)" r.txs.committed )
    else if in_envelope c && r.churn.divergent_restarted <> [] then
      ( Some "convergence",
        Printf.sprintf "divergent restarted nodes [%s]" (ints r.churn.divergent_restarted) )
    else if in_envelope c && (not (has_family c "flood")) && r.churn.unfinished <> [] then
      ( Some "liveness",
        Printf.sprintf "unfinished at quiescence: %s"
          (String.concat ","
             (List.map
                (fun i ->
                  let n = r.harness.nodes.(i) in
                  Printf.sprintf
                    "n%d(down=%b stopped=%b resync=%b hung=%b round=%d tip=%d)" i
                    (Algorand_core.Node.is_down n)
                    (Algorand_core.Node.is_stopped n)
                    (Algorand_core.Node.is_resyncing n)
                    (Algorand_core.Node.is_hung n)
                    (Algorand_core.Node.round n)
                    (Algorand_ledger.Chain.tip
                       (Algorand_core.Node.chain n))
                      .height)
                r.churn.unfinished)) )
    else if
      has_family c "bytes"
      && (not (has_family c "flood"))
      && (not (has_family c "corrupt"))
      && r.wire.decode_failures > 0
    then
      ( Some "decode",
        Printf.sprintf "%d decode failures on a clean bytes wire" r.wire.decode_failures )
    else (None, "")
  in
  { config = c; violation; detail; fingerprint; events = r.events }

(* ----------------------------- mutator ----------------------------- *)

(* Fixed parameter palettes: small enough that "%g" round-trips every
   value, hot enough that compositions stay inside the protocol's
   tolerated envelope (equivocators < 1/3, partitions that heal). *)

let pick (rng : Rng.t) (a : 'a array) : 'a = a.(Rng.int rng (Array.length a))

let random_stressor (rng : Rng.t) (fam : int) : stressor =
  match fam with
  | 0 ->
    Churn
      {
        fraction = pick rng [| 0.1; 0.2 |];
        down_for = pick rng [| 8.0; 16.0 |];
      }
  | 1 -> Loss (pick rng [| 0.02; 0.05; 0.1 |])
  | 2 -> Dup (pick rng [| 0.05; 0.1 |])
  | 3 -> Flood { flooders = pick rng [| 0.1; 0.2 |]; rate = pick rng [| 50.0; 200.0 |] }
  | 4 -> Corrupt (pick rng [| 0.02; 0.05 |])
  | 5 -> Equivocate (pick rng [| 0.1; 0.2 |])
  | 6 -> Partition
  | 7 -> Bytes_wire
  | 8 ->
    Hostile_txs { rate = pick rng [| 2.0; 5.0 |]; zipf = pick rng [| 0.0; 1.1 |] }
  | 9 -> Undecidable (pick rng [| 0.15; 0.25 |])
  | _ -> Adaptive (pick rng [| 0.1; 0.2 |])

let fresh_config (rng : Rng.t) : config =
  let users = 8 + Rng.int rng 7 in
  let rounds = 3 + Rng.int rng 2 in
  let k = 1 + Rng.int rng 6 in
  let fams = Rng.sample_indices rng ~n:n_families ~k in
  {
    seed = Rng.int rng 1_000_000;
    users;
    rounds;
    stressors = List.map (random_stressor rng) fams;
  }

(* Mutate a corpus entry: one structural or parametric change, so the
   swarm walks outward from compositions that reached novel coverage. *)
let mutate (rng : Rng.t) (c : config) : config =
  match Rng.int rng 5 with
  | 0 ->
    (* add a stressor from a family not yet present *)
    let present = List.map family c.stressors in
    let missing =
      List.filter
        (fun f -> not (List.mem family_name.(f) present))
        (List.init n_families Fun.id)
    in
    (match missing with
    | [] -> { c with seed = Rng.int rng 1_000_000 }
    | ms ->
      let fam = List.nth ms (Rng.int rng (List.length ms)) in
      { c with stressors = c.stressors @ [ random_stressor rng fam ] })
  | 1 when List.length c.stressors > 1 ->
    (* drop one *)
    let i = Rng.int rng (List.length c.stressors) in
    { c with stressors = List.filteri (fun j _ -> j <> i) c.stressors }
  | 2 ->
    (* redraw one stressor's parameters within its family *)
    (match c.stressors with
    | [] -> { c with seed = Rng.int rng 1_000_000 }
    | ss ->
      let i = Rng.int rng (List.length ss) in
      {
        c with
        stressors =
          List.mapi
            (fun j s -> if j = i then random_stressor rng (family_index s) else s)
            ss;
      })
  | 3 ->
    { c with users = 8 + Rng.int rng 7; rounds = 3 + Rng.int rng 2 }
  | _ -> { c with seed = Rng.int rng 1_000_000 }

(* --------------------------- shrinking ----------------------------- *)

(* Minimize a violating composition: greedy 1-minimal deletion over the
   stressor list (the model checker's own Shrink.minimize_seq, with
   "still violates the same invariant" as the oracle), then parameter
   shrinking toward the smallest deployment. Fully deterministic:
   episodes are pure functions of their config. *)
let shrink (c : config) ~(invariant : string) : config =
  let violates c' =
    match (run_episode c').violation with
    | Some v -> String.equal v invariant
    | None -> false
  in
  let stressors =
    Shrink.minimize_seq
      ~keep:(fun ss -> violates { c with stressors = ss })
      c.stressors
  in
  let c = { c with stressors } in
  let c = if c.rounds > 3 && violates { c with rounds = 3 } then { c with rounds = 3 } else c in
  let c = if c.users > 8 && violates { c with users = 8 } then { c with users = 8 } else c in
  c

let reproducer (c : config) ~(invariant : string) : string =
  Printf.sprintf "REPRODUCE: algorand-check swarm --replay '%s'  # invariant=%s"
    (to_string c) invariant

(* ---------------------------- the swarm ---------------------------- *)

(* Budget currency: simulated engine events, not wall clock, so a
   (budget, stream) pair is deterministic. The constant approximates
   events this machine class grinds per second at swarm deployment
   sizes; --budget-sec therefore lands in the right wall-clock ballpark
   while staying bit-reproducible. *)
let events_per_sec = 100_000

type corpus_entry = {
  entry_config : config;
  coverage : string;  (** digest of the episode's full fingerprint *)
  novel : int;  (** fingerprint items first exercised by this episode *)
}

type report = {
  episodes : int;
  total_events : int;
  corpus : corpus_entry list;  (** in discovery order *)
  found : (config * string * string) list;
      (** minimized (config, invariant, detail) per violation *)
  max_families : int;  (** most stressor families composed in one episode *)
  coverage_items : int;  (** distinct fingerprint items exercised *)
}

let coverage_digest (fp : string list) : string =
  String.sub (Sha256.digest_hex (String.concat ";" fp)) 0 16

(* The corpus digest the CI determinism check compares across runs:
   covers every corpus entry's config and coverage, in order. *)
let corpus_digest (r : report) : string =
  Sha256.digest_hex
    (String.concat "\n"
       (List.map
          (fun e -> to_string e.entry_config ^ "#" ^ e.coverage)
          r.corpus))

let run ?(log : string -> unit = ignore) ~(budget_sec : int)
    ~(seed_stream : int) () : report =
  let rng = Rng.create (0x5a2a + (seed_stream * 7919)) in
  let budget = budget_sec * events_per_sec in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  let corpus = ref [] in
  let corpus_n = ref 0 in
  let found = ref [] in
  let episodes = ref 0 in
  let total = ref 0 in
  let max_fams = ref 0 in
  while !total < budget do
    let c =
      if !corpus_n > 0 && Rng.bool rng then
        mutate rng (List.nth !corpus (Rng.int rng !corpus_n)).entry_config
      else fresh_config rng
    in
    let e = run_episode c in
    incr episodes;
    total := !total + max 1_000 e.events;
    max_fams := max !max_fams (families c.stressors);
    let novel =
      List.filter (fun item -> not (Hashtbl.mem seen item)) e.fingerprint
    in
    List.iter (fun item -> Hashtbl.replace seen item ()) novel;
    if novel <> [] then begin
      corpus :=
        !corpus
        @ [
            {
              entry_config = c;
              coverage = coverage_digest e.fingerprint;
              novel = List.length novel;
            };
          ];
      incr corpus_n
    end;
    log
      (Printf.sprintf "ep=%d cfg='%s' fams=%d events=%d cov+=%d %s" !episodes
         (to_string c)
         (families c.stressors)
         e.events (List.length novel)
         (match e.violation with
         | None -> "verdict=ok"
         | Some v -> Printf.sprintf "verdict=VIOLATION:%s" v));
    match e.violation with
    | None -> ()
    | Some invariant ->
      log (Printf.sprintf "shrinking %s violation: %s" invariant e.detail);
      let min_c = shrink c ~invariant in
      let min_e = run_episode min_c in
      let detail =
        match min_e.violation with Some _ -> min_e.detail | None -> e.detail
      in
      found := !found @ [ (min_c, invariant, detail) ];
      log (reproducer min_c ~invariant)
  done;
  {
    episodes = !episodes;
    total_events = !total;
    corpus = !corpus;
    found = !found;
    max_families = !max_fams;
    coverage_items = Hashtbl.length seen;
  }
