(* Counterexample shrinking: a violating schedule found by DFS or
   fuzzing is typically padded with deliveries that played no part in
   the violation (votes to nodes that never disagreed, late messages to
   already-decided machines, whole timeout rounds). Greedy delta
   debugging against a replay oracle strips them: repeatedly try
   deleting each event, keep any deletion under which the *same*
   invariant still fires on replay, and stop at a fixpoint - the result
   is 1-minimal (no single event can be dropped). Replay matches
   deliveries by content, so renumbering after a deletion is harmless;
   the final trace is the deterministic reproducer test_check.ml
   re-executes byte-for-byte. *)

(* Does replaying [trace] against a fresh world reproduce a violation
   of [invariant]? *)
let reproduces ~(config : World.config) ~(invariant : string)
    (trace : World.trace_event list) : bool =
  let w = World.create config in
  World.start w;
  let outcome = Schedule.run_replay w trace in
  List.exists
    (fun (r : Schedule.report) -> String.equal r.violation.invariant invariant)
    outcome.violations

let drop_nth (lst : 'a list) (n : int) : 'a list =
  List.filteri (fun i _ -> i <> n) lst

(* One pass of single-element deletions, last element first (later
   elements are most often dead weight: everything after the violation
   already got truncated by the recorder). Returns the shrunk sequence
   and whether anything was removed. *)
let delete_pass ~(keep : 'a list -> bool) (items : 'a list) : 'a list * bool =
  let changed = ref false in
  let rec go i tr =
    if i < 0 then tr
    else begin
      let cand = drop_nth tr i in
      if keep cand then begin
        changed := true;
        go (i - 1) cand
      end
      else go (i - 1) tr
    end
  in
  let tr = go (List.length items - 1) items in
  (tr, !changed)

(* Generic greedy delta debugging: repeated deletion passes until no
   single deletion preserves [keep] (1-minimal). Schedule traces and
   the wire fuzzer's byte sequences both shrink through this. *)
let minimize_seq ?(max_passes = 16) ~(keep : 'a list -> bool) (items : 'a list) :
    'a list =
  if not (keep items) then items
  else begin
    let rec fixpoint tr passes =
      if passes >= max_passes then tr
      else begin
        let tr', changed = delete_pass ~keep tr in
        if changed then fixpoint tr' (passes + 1) else tr'
      end
    in
    fixpoint items 0
  end

let minimize ?max_passes ~(config : World.config) ~(invariant : string)
    (trace : World.trace_event list) : World.trace_event list =
  minimize_seq ?max_passes ~keep:(reproduces ~config ~invariant) trace

(* Render the minimal reproducer: the replayable delivery script plus
   the violation it ends in. *)
let render ~(invariant : Invariant.violation) (trace : World.trace_event list) :
    string =
  Printf.sprintf "%s\n-- %d events -->\n%s"
    (Format.asprintf "%a" Invariant.pp_violation invariant)
    (List.length trace) (World.render_trace trace)
