(** Counterexample shrinking: greedy delta debugging of a violating
    schedule against a replay oracle, to a 1-minimal deterministic
    reproducer. *)

val reproduces :
  config:World.config -> invariant:string -> World.trace_event list -> bool
(** Replay the trace against a fresh world; true iff the named
    invariant fires again. *)

val minimize_seq : ?max_passes:int -> keep:('a list -> bool) -> 'a list -> 'a list
(** Generic greedy delta debugging: repeated single-element deletion
    passes until no deletion preserves [keep] (1-minimal). Returns the
    input unchanged if [keep] does not hold on it. *)

val minimize :
  ?max_passes:int ->
  config:World.config ->
  invariant:string ->
  World.trace_event list ->
  World.trace_event list
(** Repeated single-event deletion passes until no deletion preserves
    the violation (1-minimal). Returns the input unchanged if it does
    not reproduce in the first place. *)

val render : invariant:Invariant.violation -> World.trace_event list -> string
