(* Summary statistics matching the paper's graphs, which plot the
   minimum, 25th percentile, median, 75th percentile and maximum of
   round completion times across users.

   NaN inputs (e.g. a phase timestamp a round never reached) are
   quarantined: they are counted in [nans] and excluded from the sort
   and every statistic. Sorting NaNs with a total order would otherwise
   scatter them through the array and silently corrupt every
   percentile - polymorphic [compare] on floats is not even a
   consistent order in their presence. *)

type summary = {
  count : int;  (** finite samples actually summarized *)
  nans : int;  (** NaN samples dropped from the summary *)
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
  mean : float;
}

let percentile (sorted : float array) (p : float) : float =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let frac = rank -. floor rank in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize (xs : float list) : summary =
  let nans = List.fold_left (fun n x -> if Float.is_nan x then n + 1 else n) 0 xs in
  let a = Array.of_list (List.filter (fun x -> not (Float.is_nan x)) xs) in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 0 then
    { count = 0; nans; min = nan; p25 = nan; median = nan; p75 = nan; max = nan; mean = nan }
  else
    {
      count = n;
      nans;
      min = a.(0);
      p25 = percentile a 0.25;
      median = percentile a 0.5;
      p75 = percentile a 0.75;
      max = a.(n - 1);
      mean = Array.fold_left ( +. ) 0.0 a /. float_of_int n;
    }

let pp_summary fmt (s : summary) =
  Format.fprintf fmt "min=%.2f p25=%.2f med=%.2f p75=%.2f max=%.2f (n=%d%s)"
    s.min s.p25 s.median s.p75 s.max s.count
    (if s.nans > 0 then Printf.sprintf ", %d NaN dropped" s.nans else "")

let mean (xs : float list) : float =
  let n, sum =
    List.fold_left
      (fun (n, sum) x -> if Float.is_nan x then (n, sum) else (n + 1, sum +. x))
      (0, 0.0) xs
  in
  if n = 0 then nan else sum /. float_of_int n
