(** Summary statistics matching the paper's plots (min / p25 / median /
    p75 / max across users). NaN samples never reach the sort: they are
    counted in [nans] and excluded from every statistic. *)

type summary = {
  count : int;  (** finite samples actually summarized *)
  nans : int;  (** NaN samples dropped from the summary *)
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
  mean : float;
}

val percentile : float array -> float -> float
(** Linear interpolation on a sorted array (NaN-free; see {!summarize}). *)

val summarize : float list -> summary
val pp_summary : Format.formatter -> summary -> unit

val mean : float list -> float
(** Mean of the non-NaN samples; NaN only when there are none. *)
