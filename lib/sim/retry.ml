(* Reusable retry schedule: exponential backoff with jitter over the
   simulation engine. One instance covers one outstanding request
   ("get this block", "catch me up"); the caller's [attempt] callback
   receives the attempt index so it can rotate through peers, and
   cancels the schedule when the response lands.

   Attempt 0 fires synchronously inside [start]; attempt n waits
   base * multiplier^(n-1) (capped at [max_delay]) perturbed by a
   uniform +-[jitter] fraction, so a cohort of restarting nodes does
   not re-request in lockstep. *)

type policy = {
  base_delay : float;  (** delay before the first retry (attempt 1) *)
  multiplier : float;  (** backoff factor per further attempt *)
  max_delay : float;  (** backoff cap *)
  jitter : float;  (** fractional jitter: delay *= 1 + U(-jitter, +jitter) *)
  max_attempts : int;  (** give up after this many attempts; 0 = never *)
}

let default_policy =
  { base_delay = 2.0; multiplier = 2.0; max_delay = 30.0; jitter = 0.2; max_attempts = 0 }

type t = {
  engine : Engine.t;
  rng : Rng.t;
  policy : policy;
  attempt : int -> unit;
  on_exhausted : (unit -> unit) option;
  mutable attempts : int;  (** attempts fired so far *)
  mutable active : bool;
  mutable generation : int;  (** invalidates timers armed before a cancel *)
}

let delay_before (t : t) ~(n : int) : float =
  let d = t.policy.base_delay *. (t.policy.multiplier ** float_of_int (n - 1)) in
  let d = Float.min d t.policy.max_delay in
  if t.policy.jitter <= 0.0 then d
  else d *. (1.0 +. (t.policy.jitter *. ((2.0 *. Rng.float t.rng 1.0) -. 1.0)))

let rec arm (t : t) : unit =
  let n = t.attempts in
  if t.policy.max_attempts > 0 && n >= t.policy.max_attempts then begin
    t.active <- false;
    match t.on_exhausted with Some f -> f () | None -> ()
  end
  else begin
    let gen = t.generation in
    let fire () =
      if t.active && t.generation = gen then begin
        t.attempts <- n + 1;
        t.attempt n;
        (* The callback may have cancelled us (response already in). *)
        if t.active then arm t
      end
    in
    if n = 0 then fire () else Engine.schedule t.engine ~delay:(delay_before t ~n) fire
  end

let start ~(engine : Engine.t) ~(rng : Rng.t) ~(policy : policy)
    ~(attempt : int -> unit) ?on_exhausted () : t =
  let t =
    {
      engine;
      rng;
      policy;
      attempt;
      on_exhausted;
      attempts = 0;
      active = true;
      generation = 0;
    }
  in
  arm t;
  t

let cancel (t : t) : unit =
  t.active <- false;
  t.generation <- t.generation + 1

let active (t : t) : bool = t.active
let attempts (t : t) : int = t.attempts
