(* Reusable retry schedule: exponential backoff with jitter over the
   simulation engine. One instance covers one outstanding request
   ("get this block", "catch me up"); the caller's [attempt] callback
   receives the attempt index so it can rotate through peers, and
   cancels the schedule when the response lands.

   Attempt 0 fires synchronously inside [start]; attempt n waits
   base * multiplier^(n-1) (capped at [max_delay]) perturbed by a
   uniform +-[jitter] fraction, so a cohort of restarting nodes does
   not re-request in lockstep.

   Observability: with a registry, each instance feeds per-kind
   counters ("retry.<name>.attempts") plus histograms of the backoff
   delays it draws and, at cancel/exhaustion, of how many attempts the
   request needed. With an enabled trace, every backed-off attempt is
   an instant event and the request's whole lifetime a span. *)

module Registry = Algorand_obs.Registry
module Trace = Algorand_obs.Trace

type policy = {
  base_delay : float;  (** delay before the first retry (attempt 1) *)
  multiplier : float;  (** backoff factor per further attempt *)
  max_delay : float;  (** backoff cap *)
  jitter : float;  (** fractional jitter: delay *= 1 + U(-jitter, +jitter) *)
  max_attempts : int;  (** give up after this many attempts; 0 = never *)
}

let default_policy =
  { base_delay = 2.0; multiplier = 2.0; max_delay = 30.0; jitter = 0.2; max_attempts = 0 }

type obs = {
  name : string;
  trace : Trace.t option;
  c_attempts : Registry.counter option;
  h_delay : Registry.histogram option;
  h_per_request : Registry.histogram option;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  policy : policy;
  attempt : int -> unit;
  on_exhausted : (unit -> unit) option;
  obs : obs;
  started_at : float;
  mutable attempts : int;  (** attempts fired so far *)
  mutable active : bool;
  mutable generation : int;  (** invalidates timers armed before a cancel *)
}

let delay_before (t : t) ~(n : int) : float =
  let d = t.policy.base_delay *. (t.policy.multiplier ** float_of_int (n - 1)) in
  let d = Float.min d t.policy.max_delay in
  if t.policy.jitter <= 0.0 then d
  else d *. (1.0 +. (t.policy.jitter *. ((2.0 *. Rng.float t.rng 1.0) -. 1.0)))

(* The request is over (cancelled or exhausted): record how many
   attempts it took and close its trace span. *)
let finish (t : t) ~(outcome : string) : unit =
  (match t.obs.h_per_request with
  | Some h -> Registry.observe h (float_of_int t.attempts)
  | None -> ());
  match t.obs.trace with
  | Some tr when Trace.enabled tr ->
    Trace.span tr ~start_ts:t.started_at ~ts:(Engine.now t.engine) ~cat:"retry"
      ~name:t.obs.name
      ~detail:[ ("attempts", string_of_int t.attempts); ("outcome", outcome) ]
      ()
  | _ -> ()

let rec arm (t : t) : unit =
  let n = t.attempts in
  if t.policy.max_attempts > 0 && n >= t.policy.max_attempts then begin
    t.active <- false;
    finish t ~outcome:"exhausted";
    match t.on_exhausted with Some f -> f () | None -> ()
  end
  else begin
    let gen = t.generation in
    let fire () =
      if t.active && t.generation = gen then begin
        t.attempts <- n + 1;
        if n > 0 then begin
          (match t.obs.c_attempts with Some c -> Registry.incr c | None -> ());
          match t.obs.trace with
          | Some tr when Trace.enabled tr ->
            Trace.instant tr ~ts:(Engine.now t.engine) ~cat:"retry"
              ~name:(t.obs.name ^ ".attempt")
              ~detail:[ ("n", string_of_int n) ]
              ()
          | _ -> ()
        end;
        t.attempt n;
        (* The callback may have cancelled us (response already in). *)
        if t.active then arm t
      end
    in
    if n = 0 then fire ()
    else begin
      let d = delay_before t ~n in
      (match t.obs.h_delay with Some h -> Registry.observe h d | None -> ());
      Engine.schedule t.engine ~delay:d fire
    end
  end

let start ~(engine : Engine.t) ~(rng : Rng.t) ~(policy : policy)
    ~(attempt : int -> unit) ?on_exhausted ?(name = "request") ?registry ?trace () : t =
  let obs =
    {
      name;
      trace;
      c_attempts =
        Option.map (fun r -> Registry.counter r ("retry." ^ name ^ ".attempts")) registry;
      h_delay =
        Option.map (fun r -> Registry.histogram r ("retry." ^ name ^ ".backoff_delay_s")) registry;
      h_per_request =
        Option.map
          (fun r ->
            Registry.histogram r ~lo:1.0 ~growth:2.0 ~buckets:12
              ("retry." ^ name ^ ".attempts_per_request"))
          registry;
    }
  in
  let t =
    {
      engine;
      rng;
      policy;
      attempt;
      on_exhausted;
      obs;
      started_at = Engine.now engine;
      attempts = 0;
      active = true;
      generation = 0;
    }
  in
  arm t;
  t

let cancel (t : t) : unit =
  if t.active then finish t ~outcome:"cancelled";
  t.active <- false;
  t.generation <- t.generation + 1

let active (t : t) : bool = t.active
let attempts (t : t) : int = t.attempts
