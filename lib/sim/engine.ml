(* The discrete-event simulation loop: a virtual clock and a queue of
   thunks. Handlers run at their scheduled virtual time and may
   schedule further events. *)

let noop () = ()

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable now : float;
  mutable events_processed : int;
  mutable reorder_hook : ((unit -> unit) array -> (unit -> unit) array) option;
  mutable scratch : (unit -> unit) array;
      (* reusable batch buffer: grown on demand, cleared after use so a
         drained batch does not pin its closures until the next one *)
}

let create () : t =
  {
    queue = Event_queue.create ();
    now = 0.0;
    events_processed = 0;
    reorder_hook = None;
    scratch = [||];
  }

let now (t : t) : float = t.now

let schedule (t : t) ~(delay : float) (f : unit -> unit) : unit =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Event_queue.push t.queue ~time:(t.now +. delay) f

let at (t : t) ~(time : float) (f : unit -> unit) : unit =
  Event_queue.push t.queue ~time:(max time t.now) f

let set_reorder_hook (t : t) hook = t.reorder_hook <- hook

(* Pop every event sharing the minimal timestamp - a "batch" of
   simultaneous events whose FIFO order is an artifact of insertion
   order, not causality. Events the batch itself schedules at the same
   time form a *later* batch (they are causally downstream). The batch
   is collected into a reusable scratch buffer - no list cells, no
   reverse, one exact-size array allocated for the caller. *)
let pop_batch (t : t) ~(time : float) : (unit -> unit) array =
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | Some time' when time' = time -> (
      match Event_queue.pop t.queue with
      | Some (_, f) ->
        if !n >= Array.length t.scratch then begin
          let ncap = max 16 (2 * Array.length t.scratch) in
          let s = Array.make ncap noop in
          Array.blit t.scratch 0 s 0 !n;
          t.scratch <- s
        end;
        t.scratch.(!n) <- f;
        incr n
      | None -> continue := false)
    | _ -> continue := false
  done;
  let batch = Array.sub t.scratch 0 !n in
  Array.fill t.scratch 0 !n noop;
  batch

(* Run until the queue drains or the clock passes [until]. Returns the
   number of events processed. With a reorder hook installed, events
   sharing a timestamp are popped as a batch, passed through the hook
   (which returns them in the order to run), and executed; [max_events]
   is then only checked between batches. *)
let run (t : t) ?(until = infinity) ?(max_events = max_int) () : int =
  let processed_before = t.events_processed in
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | None -> continue := false
    | Some time when time > until -> continue := false
    | Some time ->
      if t.events_processed - processed_before >= max_events then continue := false
      else begin
        match t.reorder_hook with
        | Some hook ->
          let batch = pop_batch t ~time in
          let batch = hook batch in
          t.now <- time;
          Array.iter
            (fun f ->
              t.events_processed <- t.events_processed + 1;
              f ())
            batch
        | None -> (
          match Event_queue.pop t.queue with
          | None -> continue := false
          | Some (time, f) ->
            t.now <- time;
            t.events_processed <- t.events_processed + 1;
            f ())
      end
  done;
  t.events_processed - processed_before

let pending (t : t) : int = Event_queue.length t.queue
let peak_pending (t : t) : int = Event_queue.peak t.queue
let events_processed (t : t) : int = t.events_processed

let next_time (t : t) : float option = Event_queue.peek_time t.queue

(* Move the clock forward without running anything: the real-time
   driver advances virtual time to the wall-clock mapping between
   polls, so callbacks invoked from socket readiness see an up-to-date
   [now]. Never advances past a pending event (which would make its
   later execution move the clock backwards) and never moves back. *)
let advance_to (t : t) (time : float) : unit =
  let ceiling =
    match Event_queue.peek_time t.queue with
    | Some next -> Float.min time next
    | None -> time
  in
  if ceiling > t.now then t.now <- ceiling
