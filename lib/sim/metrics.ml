(* Experiment instrumentation: per-user round phase timestamps (for the
   Figure 7 breakdown), per-user bytes sent/received (section 10.3
   bandwidth costs), and per-step BA* completion times (section 10.5
   timeout validation). *)

type phase = Block_proposal | Ba_no_final | Ba_final

let phase_name = function
  | Block_proposal -> "block proposal"
  | Ba_no_final -> "BA* w/o final step"
  | Ba_final -> "BA* final step"

type round_record = {
  user : int;
  round : int;
  mutable started : float;
  mutable proposal_done : float;  (** got (or gave up on) the proposed block *)
  mutable ba_done : float;  (** BinaryBA* returned *)
  mutable final_done : float;  (** final-step vote count resolved *)
  mutable steps_taken : int;
  mutable final : bool;
}

type t = {
  mutable rounds : round_record list;
  mutable bytes_sent : float array;  (** per user *)
  mutable bytes_received : float array;
  mutable step_durations : float list;  (** per (user, round, step) wall time *)
  mutable priority_gossip_times : float list;  (** proposer priority msg propagation *)
  mutable crashes : int;  (** node crashes injected *)
  mutable restarts : int;  (** nodes brought back up *)
  mutable rejoin_latencies : float list;
      (** restart (or lag detection) to BA* rejoin, sim-seconds *)
  mutable retry_attempts : int;  (** re-issued requests (block fetch + catch-up) *)
}

let create ~(users : int) : t =
  {
    rounds = [];
    bytes_sent = Array.make users 0.0;
    bytes_received = Array.make users 0.0;
    step_durations = [];
    priority_gossip_times = [];
    crashes = 0;
    restarts = 0;
    rejoin_latencies = [];
    retry_attempts = 0;
  }

let start_round (t : t) ~(user : int) ~(round : int) ~(now : float) : round_record =
  let r =
    {
      user;
      round;
      started = now;
      proposal_done = nan;
      ba_done = nan;
      final_done = nan;
      steps_taken = 0;
      final = false;
    }
  in
  t.rounds <- r :: t.rounds;
  r

let record_bytes_sent (t : t) ~(user : int) (bytes : int) : unit =
  t.bytes_sent.(user) <- t.bytes_sent.(user) +. float_of_int bytes

let record_bytes_received (t : t) ~(user : int) (bytes : int) : unit =
  t.bytes_received.(user) <- t.bytes_received.(user) +. float_of_int bytes

let record_step_duration (t : t) (d : float) : unit =
  t.step_durations <- d :: t.step_durations

let record_priority_gossip (t : t) (d : float) : unit =
  t.priority_gossip_times <- d :: t.priority_gossip_times

let record_crash (t : t) : unit = t.crashes <- t.crashes + 1
let record_restart (t : t) : unit = t.restarts <- t.restarts + 1

let record_rejoin (t : t) (latency : float) : unit =
  t.rejoin_latencies <- latency :: t.rejoin_latencies

let record_retry (t : t) : unit = t.retry_attempts <- t.retry_attempts + 1

(* Completed-round durations for a given round across users. *)
let round_completion_times (t : t) ~(round : int) : float list =
  List.filter_map
    (fun r ->
      if r.round = round && not (Float.is_nan r.final_done) then
        Some (r.final_done -. r.started)
      else None)
    t.rounds

let all_round_completion_times (t : t) : float list =
  List.filter_map
    (fun r ->
      if (not (Float.is_nan r.final_done)) && r.round > 0 then Some (r.final_done -. r.started)
      else None)
    t.rounds

(* Phase durations across completed rounds (Figure 7 decomposition). *)
let phase_times (t : t) (phase : phase) : float list =
  List.filter_map
    (fun r ->
      if Float.is_nan r.final_done then None
      else begin
        match phase with
        | Block_proposal -> Some (r.proposal_done -. r.started)
        | Ba_no_final -> Some (r.ba_done -. r.proposal_done)
        | Ba_final -> Some (r.final_done -. r.ba_done)
      end)
    t.rounds

let completed_rounds (t : t) : int =
  List.length (List.filter (fun r -> not (Float.is_nan r.final_done)) t.rounds)
