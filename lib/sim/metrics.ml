(* Experiment instrumentation: per-user round phase timestamps (for the
   Figure 7 breakdown), per-user bytes sent/received (section 10.3
   bandwidth costs), and per-step BA* completion times (section 10.5
   timeout validation).

   Scalar counts and duration distributions live in a typed
   Registry (snapshot-able mid-run, exported as JSON by the CLI);
   the exact per-sample lists needed for the paper's percentile plots
   are kept alongside, and round records are indexed per round so
   per-round queries do not rescan the whole history. The carried
   Trace handle is how Node / Harness / Gossip / Retry reach the
   structured event trace without extra plumbing. *)

module Registry = Algorand_obs.Registry
module Trace = Algorand_obs.Trace

type phase = Block_proposal | Ba_no_final | Ba_final

let phase_name = function
  | Block_proposal -> "block proposal"
  | Ba_no_final -> "BA* w/o final step"
  | Ba_final -> "BA* final step"

type round_record = {
  user : int;
  round : int;
  mutable started : float;
  mutable proposal_done : float;  (** got (or gave up on) the proposed block *)
  mutable ba_done : float;  (** BinaryBA* returned *)
  mutable final_done : float;  (** final-step vote count resolved *)
  mutable steps_taken : int;
  mutable final : bool;
}

type t = {
  registry : Registry.t;
  trace : Trace.t;
  by_round : (int, round_record list ref) Hashtbl.t;  (** per-round index *)
  mutable records : round_record list;  (** every record, newest first *)
  mutable record_count : int;
  bytes_sent : float array;  (** per user *)
  bytes_received : float array;
  mutable step_durations : float list;  (** per (user, round, step) wall time *)
  mutable priority_gossip_times : float list;  (** proposer priority msg propagation *)
  mutable rejoin_latencies : float list;
      (** restart (or lag detection) to BA* rejoin, sim-seconds *)
  c_crashes : Registry.counter;
  c_restarts : Registry.counter;
  c_retries : Registry.counter;
  c_rounds_started : Registry.counter;
  h_step : Registry.histogram;
  h_priority : Registry.histogram;
  h_rejoin : Registry.histogram;
}

let create ?registry ?trace ~(users : int) () : t =
  let registry = match registry with Some r -> r | None -> Registry.create () in
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  {
    registry;
    trace;
    by_round = Hashtbl.create 64;
    records = [];
    record_count = 0;
    bytes_sent = Array.make users 0.0;
    bytes_received = Array.make users 0.0;
    step_durations = [];
    priority_gossip_times = [];
    rejoin_latencies = [];
    c_crashes = Registry.counter registry "node.crashes";
    c_restarts = Registry.counter registry "node.restarts";
    c_retries = Registry.counter registry "retry.reissued_requests";
    c_rounds_started = Registry.counter registry "round.records_started";
    h_step = Registry.histogram registry "ba.step_duration_s";
    h_priority = Registry.histogram registry "proposal.priority_gossip_s";
    h_rejoin = Registry.histogram registry "node.rejoin_latency_s";
  }

let registry (t : t) : Registry.t = t.registry
let trace (t : t) : Trace.t = t.trace

let start_round (t : t) ~(user : int) ~(round : int) ~(now : float) : round_record =
  let r =
    {
      user;
      round;
      started = now;
      proposal_done = nan;
      ba_done = nan;
      final_done = nan;
      steps_taken = 0;
      final = false;
    }
  in
  (match Hashtbl.find_opt t.by_round round with
  | Some l -> l := r :: !l
  | None -> Hashtbl.replace t.by_round round (ref [ r ]));
  t.records <- r :: t.records;
  t.record_count <- t.record_count + 1;
  Registry.incr t.c_rounds_started;
  r

let record_bytes_sent (t : t) ~(user : int) (bytes : int) : unit =
  t.bytes_sent.(user) <- t.bytes_sent.(user) +. float_of_int bytes

let record_bytes_received (t : t) ~(user : int) (bytes : int) : unit =
  t.bytes_received.(user) <- t.bytes_received.(user) +. float_of_int bytes

let record_step_duration (t : t) (d : float) : unit =
  t.step_durations <- d :: t.step_durations;
  Registry.observe t.h_step d

let record_priority_gossip (t : t) (d : float) : unit =
  t.priority_gossip_times <- d :: t.priority_gossip_times;
  Registry.observe t.h_priority d

let record_crash (t : t) : unit = Registry.incr t.c_crashes
let record_restart (t : t) : unit = Registry.incr t.c_restarts

let record_rejoin (t : t) (latency : float) : unit =
  t.rejoin_latencies <- latency :: t.rejoin_latencies;
  Registry.observe t.h_rejoin latency

let record_retry (t : t) : unit = Registry.incr t.c_retries

let crashes (t : t) : int = Registry.count t.c_crashes
let restarts (t : t) : int = Registry.count t.c_restarts
let retry_attempts (t : t) : int = Registry.count t.c_retries

let records (t : t) : round_record list = t.records
let record_count (t : t) : int = t.record_count
let bytes_sent (t : t) : float array = t.bytes_sent
let bytes_received (t : t) : float array = t.bytes_received
let step_durations (t : t) : float list = t.step_durations
let priority_gossip_times (t : t) : float list = t.priority_gossip_times
let rejoin_latencies (t : t) : float list = t.rejoin_latencies

let completed (r : round_record) : bool = not (Float.is_nan r.final_done)

(* Completed-round durations for a given round across users: one index
   lookup, not a scan of every record ever started. *)
let round_completion_times (t : t) ~(round : int) : float list =
  match Hashtbl.find_opt t.by_round round with
  | None -> []
  | Some l ->
    List.filter_map
      (fun r -> if completed r then Some (r.final_done -. r.started) else None)
      !l

let all_round_completion_times (t : t) : float list =
  List.filter_map
    (fun r -> if completed r && r.round > 0 then Some (r.final_done -. r.started) else None)
    t.records

(* Phase durations across completed rounds (Figure 7 decomposition).
   A round completed via catch-up (the block and certificate grafted
   from a peer) never passed through the proposal / BinaryBA* phases,
   so its intermediate timestamps are still NaN: such records are
   skipped here and counted by [incomplete_phase_records] - one NaN
   duration would otherwise poison the whole decomposition. *)
let phase_endpoints (r : round_record) (phase : phase) : float * float =
  match phase with
  | Block_proposal -> (r.started, r.proposal_done)
  | Ba_no_final -> (r.proposal_done, r.ba_done)
  | Ba_final -> (r.ba_done, r.final_done)

let phase_times (t : t) (phase : phase) : float list =
  List.filter_map
    (fun r ->
      if not (completed r) then None
      else begin
        let a, b = phase_endpoints r phase in
        if Float.is_nan a || Float.is_nan b then None else Some (b -. a)
      end)
    t.records

(* Completed records missing an intermediate timestamp (catch-up,
   pipelining edge cases): excluded from every phase decomposition. *)
let incomplete_phase_records (t : t) : int =
  List.fold_left
    (fun n r ->
      if completed r && (Float.is_nan r.proposal_done || Float.is_nan r.ba_done) then n + 1
      else n)
    0 t.records

let completed_rounds (t : t) : int =
  List.fold_left (fun n r -> if completed r then n + 1 else n) 0 t.records
