(** Discrete-event simulation loop: a virtual clock plus a queue of
    thunks. Fully deterministic (FIFO tie-breaking). *)

type t

val create : unit -> t
val now : t -> float

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** @raise Invalid_argument on negative delays. *)

val at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time scheduling; past times are clamped to now. *)

val run : t -> ?until:float -> ?max_events:int -> unit -> int
(** Process events until the queue drains, the clock passes [until], or
    [max_events] have run. Returns the number processed. *)

val set_reorder_hook : t -> ((unit -> unit) array -> (unit -> unit) array) option -> unit
(** Scheduler hook for the model checker: events sharing a timestamp
    are popped as a batch and the hook returns them in the order to
    execute, letting a checker permute FIFO tie-breaking (the one
    ordering freedom a discrete-event run has). Events a batch
    schedules at the same time form a later batch; [max_events] is
    checked between batches while a hook is installed. [None] restores
    deterministic FIFO. *)

val pending : t -> int

val peak_pending : t -> int
(** High-water mark of simultaneously pending events over the engine's
    lifetime (the queue's live-heap peak). *)

val events_processed : t -> int
(** Total events executed since creation. *)

val next_time : t -> float option
(** Timestamp of the earliest pending event, if any. *)

val advance_to : t -> float -> unit
(** Move the virtual clock forward to [time] without running events -
    clamped so it never passes a pending event and never moves
    backwards. Used by real-time drivers that map wall-clock onto the
    virtual clock between socket polls. *)
