(** Experiment instrumentation: per-user round phase timestamps (the
    Figure 7 breakdown), per-user bytes sent/received (section 10.3),
    and per-step BA* completion times (section 10.5).

    Scalar counts and duration distributions live in a typed
    {!Algorand_obs.Registry} (snapshot-able mid-run); the exact
    per-sample lists needed for the paper's percentile plots are kept
    alongside, and round records are indexed per round so per-round
    queries do not rescan the whole history. The carried {!Trace}
    handle is how Node / Harness / Gossip / Retry reach the structured
    event trace without extra plumbing. *)

module Registry = Algorand_obs.Registry
module Trace = Algorand_obs.Trace

type phase = Block_proposal | Ba_no_final | Ba_final

val phase_name : phase -> string

type round_record = {
  user : int;
  round : int;
  mutable started : float;
  mutable proposal_done : float;  (** got (or gave up on) the proposed block *)
  mutable ba_done : float;  (** BinaryBA* returned *)
  mutable final_done : float;  (** final-step vote count resolved *)
  mutable steps_taken : int;
  mutable final : bool;
}
(** One user's progress through one round. The node mutates the
    timestamps in place as phases complete; a round finished via
    catch-up grafting leaves its intermediate timestamps NaN. *)

type t

val create : ?registry:Registry.t -> ?trace:Trace.t -> users:int -> unit -> t
val registry : t -> Registry.t
val trace : t -> Trace.t

val start_round : t -> user:int -> round:int -> now:float -> round_record

(** {1 Recording} *)

val record_bytes_sent : t -> user:int -> int -> unit
val record_bytes_received : t -> user:int -> int -> unit
val record_step_duration : t -> float -> unit
val record_priority_gossip : t -> float -> unit
val record_crash : t -> unit
val record_restart : t -> unit

val record_rejoin : t -> float -> unit
(** Restart (or lag detection) to BA* rejoin, sim-seconds. *)

val record_retry : t -> unit

(** {1 Queries} *)

val crashes : t -> int
val restarts : t -> int
val retry_attempts : t -> int

val records : t -> round_record list
(** Every record ever started, newest first. *)

val record_count : t -> int

val bytes_sent : t -> float array
(** Cumulative bytes sent per user (live array; do not mutate). *)

val bytes_received : t -> float array
val step_durations : t -> float list
val priority_gossip_times : t -> float list
val rejoin_latencies : t -> float list

val completed : round_record -> bool

val round_completion_times : t -> round:int -> float list
(** Completed-round durations for one round across users: one index
    lookup, not a scan of every record. *)

val all_round_completion_times : t -> float list

val phase_times : t -> phase -> float list
(** Phase durations across completed rounds (the Figure 7
    decomposition). Records completed via catch-up grafting (NaN
    intermediates) are skipped; {!incomplete_phase_records} counts
    them. *)

val incomplete_phase_records : t -> int
val completed_rounds : t -> int
