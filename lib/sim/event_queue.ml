(* An unboxed binary min-heap of timestamped events. Instead of a
   record per entry (which costs an allocation per push and keeps every
   popped payload reachable through the heap array), the heap is three
   parallel flat arrays: an unboxed float array of times, an int array
   of insertion sequence numbers, and an [Obj.t] array of payloads.
   Pushing allocates nothing; popping clears the vacated payload slot
   so dead closures are collectable. Ties are broken by insertion
   sequence so the simulation is fully deterministic.

   Safety of the [Obj.t] payload column: the array is created from an
   immediate ([Obj.repr 0]) and its static type is [Obj.t array], so
   the runtime representation is a generic (boxed) array - never the
   flat-float form - and any value, boxed or immediate, can be stored
   in it. Reads magic the slot back to ['a]; the only writers are
   [push] (an ['a]) and the [nil] sentinel, which [pop]/[peek_time]
   never expose. *)

type 'a t = {
  mutable times : float array;  (* slot 0 is a dummy; unboxed floats *)
  mutable seqs : int array;
  mutable payloads : Obj.t array;
  mutable size : int;
  mutable next_seq : int;
  mutable peak : int;
}

let nil : Obj.t = Obj.repr 0

let create () : 'a t =
  { times = [||]; seqs = [||]; payloads = [||]; size = 0; next_seq = 0; peak = 0 }

let is_empty (t : 'a t) : bool = t.size = 0
let length (t : 'a t) : int = t.size
let peak (t : 'a t) : int = t.peak

let before (t : 'a t) (i : int) (j : int) : bool =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap (t : 'a t) (i : int) (j : int) : unit =
  let tm = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tm;
  let sq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- sq;
  let pl = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- pl

(* Template-free growth: fresh columns are seeded from constants, not
   from a live entry, so an empty queue can grow and a grown queue
   holds no stray reference to whichever payload happened to be pushed
   first. *)
let grow (t : 'a t) : unit =
  let cap = Array.length t.times in
  if t.size + 1 >= cap then begin
    let ncap = max 16 (2 * cap) in
    let times = Array.make ncap 0.0 in
    let seqs = Array.make ncap 0 in
    let payloads = Array.make ncap nil in
    Array.blit t.times 0 times 0 cap;
    Array.blit t.seqs 0 seqs 0 cap;
    Array.blit t.payloads 0 payloads 0 cap;
    t.times <- times;
    t.seqs <- seqs;
    t.payloads <- payloads
  end

let push (t : 'a t) ~(time : float) (payload : 'a) : unit =
  grow t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.size <- t.size + 1;
  if t.size > t.peak then t.peak <- t.size;
  let i = ref t.size in
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.payloads.(!i) <- Obj.repr payload;
  while !i > 1 && before t !i (!i / 2) do
    let p = !i / 2 in
    swap t !i p;
    i := p
  done

let pop (t : 'a t) : (float * 'a) option =
  if t.size = 0 then None
  else begin
    let time = t.times.(1) in
    let payload : 'a = Obj.obj t.payloads.(1) in
    let n = t.size in
    t.times.(1) <- t.times.(n);
    t.seqs.(1) <- t.seqs.(n);
    t.payloads.(1) <- t.payloads.(n);
    (* Clear the vacated slot: a popped payload must not stay pinned in
       the array, invisible to the program but visible to the GC. *)
    t.payloads.(n) <- nil;
    t.size <- n - 1;
    let i = ref 1 in
    let continue = ref true in
    while !continue do
      let l = 2 * !i and r = (2 * !i) + 1 in
      let smallest = ref !i in
      if l <= t.size && before t l !smallest then smallest := l;
      if r <= t.size && before t r !smallest then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap t !smallest !i;
        i := !smallest
      end
    done;
    Some (time, payload)
  end

let peek_time (t : 'a t) : float option =
  if t.size = 0 then None else Some t.times.(1)
