(** Retry schedule with exponential backoff and jitter over the
    simulation engine. One instance covers one outstanding request; the
    [attempt] callback gets the attempt index (0, 1, 2, ...) so callers
    can rotate peers, and {!cancel} stops the schedule once the
    response lands. Attempt 0 fires synchronously inside {!start}. *)

type policy = {
  base_delay : float;  (** delay before the first retry (attempt 1) *)
  multiplier : float;  (** backoff factor per further attempt *)
  max_delay : float;  (** backoff cap *)
  jitter : float;  (** fractional jitter: delay *= 1 + U(-jitter, +jitter) *)
  max_attempts : int;  (** give up after this many attempts; 0 = never *)
}

val default_policy : policy

type t

val start :
  engine:Engine.t ->
  rng:Rng.t ->
  policy:policy ->
  attempt:(int -> unit) ->
  ?on_exhausted:(unit -> unit) ->
  ?name:string ->
  ?registry:Algorand_obs.Registry.t ->
  ?trace:Algorand_obs.Trace.t ->
  unit ->
  t
(** [name] labels this request kind for observability (default
    ["request"]). With [registry], the instance maintains
    ["retry.<name>.attempts"] (backed-off attempts fired),
    ["retry.<name>.backoff_delay_s"] (delays drawn) and
    ["retry.<name>.attempts_per_request"] (observed at cancel or
    exhaustion). With an enabled [trace], each backed-off attempt
    emits an instant event and the request lifetime a span. *)

val cancel : t -> unit
(** Stop retrying (response landed or the request was abandoned).
    Idempotent; armed timers become no-ops. *)

val active : t -> bool
val attempts : t -> int
