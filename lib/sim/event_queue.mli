(** Binary min-heap of timestamped events with FIFO tie-breaking.

    The heap is stored as parallel flat arrays (unboxed float times,
    int sequence numbers, payloads) so the push/pop hot path allocates
    nothing, and popped payload slots are cleared so dead closures are
    collectable - both matter at million-user event volumes. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val peak : 'a t -> int
(** High-water mark of simultaneously pending entries over the queue's
    lifetime. *)

val push : 'a t -> time:float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
val peek_time : 'a t -> float option
