(* Point-to-point message delivery over the simulated WAN.

   Model, following the paper's experimental setup (section 10):
   - each process has a capped uplink (default 20 Mbit/s); sends are
     serialized through it FIFO, so a large block queued ahead of a
     small vote delays the vote (this is what makes block size matter);
   - propagation latency comes from the 20-city topology with jitter;
   - an adversary hook may drop or delay any message (weak synchrony,
     partitions, targeted DoS). *)

open Algorand_sim

type 'msg action =
  | Deliver
  | Drop
  | Delay of float
  | Duplicate of { first : float; second : float }
      (** deliver two copies, each with its own extra delay *)
  | Tamper of 'msg
      (** deliver a substituted payload at the normal arrival time: an
          on-path adversary corrupting bytes in flight *)

type 'msg adversary = now:float -> src:int -> dst:int -> 'msg -> 'msg action

type 'msg t = {
  engine : Engine.t;
  topology : Topology.t;
  bandwidth_bps : float;  (** uplink capacity per process, bits/second *)
  uplink_free_at : float array;
  handlers : (src:int -> bytes:int -> 'msg -> unit) option array;
  up : bool array;  (** crashed processes neither send nor receive *)
  mutable adversary : 'msg adversary;
  mutable messages_sent : int;
  mutable bytes_sent : float;
  on_send : (src:int -> bytes:int -> unit) option;
  on_receive : (dst:int -> bytes:int -> unit) option;
}

let no_adversary : 'msg adversary = fun ~now:_ ~src:_ ~dst:_ _ -> Deliver

let create ?(bandwidth_bps = 20e6) ?on_send ?on_receive ~(engine : Engine.t)
    ~(topology : Topology.t) () : 'msg t =
  let n = Topology.nodes topology in
  {
    engine;
    topology;
    bandwidth_bps;
    uplink_free_at = Array.make n 0.0;
    handlers = Array.make n None;
    up = Array.make n true;
    adversary = no_adversary;
    messages_sent = 0;
    bytes_sent = 0.0;
    on_send;
    on_receive;
  }

let set_handler (t : 'msg t) (node : int) (h : src:int -> bytes:int -> 'msg -> unit) : unit =
  t.handlers.(node) <- Some h

let set_adversary (t : 'msg t) (a : 'msg adversary) : unit = t.adversary <- a

let nodes (t : 'msg t) : int = Array.length t.handlers
let now (t : 'msg t) : float = Engine.now t.engine

(* Crash/restart visibility: a down process's sends are suppressed and
   deliveries to it are dropped - including messages already in flight
   when it went down (checked at delivery time). *)
let set_up (t : 'msg t) (node : int) (up : bool) : unit = t.up.(node) <- up
let is_up (t : 'msg t) (node : int) : bool = t.up.(node)

(* Send [msg] of [bytes] from [src] to [dst]. The sender's uplink is
   occupied for the serialization time regardless of what the adversary
   later does to the packet (dropping happens in the network, not at
   the sender). *)
let send (t : 'msg t) ~(src : int) ~(dst : int) ~(bytes : int) (msg : 'msg) : unit =
  if src = dst || not t.up.(src) then ()
  else begin
    let now = Engine.now t.engine in
    let tx_time = float_of_int (8 * bytes) /. t.bandwidth_bps in
    let start = Float.max now t.uplink_free_at.(src) in
    t.uplink_free_at.(src) <- start +. tx_time;
    t.messages_sent <- t.messages_sent + 1;
    t.bytes_sent <- t.bytes_sent +. float_of_int bytes;
    (match t.on_send with Some f -> f ~src ~bytes | None -> ());
    let latency = Topology.latency t.topology ~src ~dst in
    let base_arrival = start +. tx_time +. latency in
    let deliver_msg msg () =
      if t.up.(dst) then begin
        match t.handlers.(dst) with
        | Some h ->
          (match t.on_receive with Some f -> f ~dst ~bytes | None -> ());
          h ~src ~bytes msg
        | None -> ()
      end
    in
    let deliver = deliver_msg msg in
    match t.adversary ~now ~src ~dst msg with
    | Drop -> ()
    | Deliver -> Engine.at t.engine ~time:base_arrival deliver
    | Delay extra -> Engine.at t.engine ~time:(base_arrival +. extra) deliver
    | Duplicate { first; second } ->
      Engine.at t.engine ~time:(base_arrival +. first) deliver;
      Engine.at t.engine ~time:(base_arrival +. second) deliver
    | Tamper msg' -> Engine.at t.engine ~time:base_arrival (deliver_msg msg')
  end
