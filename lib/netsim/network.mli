(** Point-to-point delivery over the simulated WAN: capped FIFO uplinks
    (so large blocks delay queued votes), topology latency, and an
    adversary hook that may drop or delay anything. *)

open Algorand_sim

type 'msg action =
  | Deliver
  | Drop
  | Delay of float
  | Duplicate of { first : float; second : float }
      (** deliver two copies, each with its own extra delay *)
  | Tamper of 'msg
      (** deliver a substituted payload at the normal arrival time: an
          on-path adversary corrupting bytes in flight *)

type 'msg adversary = now:float -> src:int -> dst:int -> 'msg -> 'msg action

type 'msg t

val no_adversary : 'msg adversary

val create :
  ?bandwidth_bps:float ->
  ?on_send:(src:int -> bytes:int -> unit) ->
  ?on_receive:(dst:int -> bytes:int -> unit) ->
  engine:Engine.t ->
  topology:Topology.t ->
  unit ->
  'msg t
(** [bandwidth_bps] is the per-process uplink (default 20 Mbit/s, the
    paper's cap). *)

val set_handler : 'msg t -> int -> (src:int -> bytes:int -> 'msg -> unit) -> unit
val set_adversary : 'msg t -> 'msg adversary -> unit
val nodes : 'msg t -> int

val now : 'msg t -> float
(** Current sim-time of the underlying engine. *)

val set_up : 'msg t -> int -> bool -> unit
(** Crash/restart visibility: a down process's sends are suppressed and
    deliveries to it (including messages already in flight when it went
    down) are dropped. All processes start up. *)

val is_up : 'msg t -> int -> bool

val send : 'msg t -> src:int -> dst:int -> bytes:int -> 'msg -> unit
(** Occupies the sender's uplink for the serialization time; the
    adversary is consulted after the send is committed. Self-sends and
    sends from down processes are dropped. *)
