(** Canned network adversaries (sections 3 and 10.4). *)

val none : 'msg Network.adversary

val partition : group_of:(int -> int) -> until:float -> 'msg Network.adversary
(** Sever all links between groups until [until]. *)

val target_nodes :
  targeted:(int -> bool) -> active:(float -> bool) -> 'msg Network.adversary
(** Targeted DoS: drop everything to/from the targeted nodes. *)

val uniform_loss : rng:Algorand_sim.Rng.t -> p:float -> 'msg Network.adversary
val uniform_delay : extra:float -> 'msg Network.adversary

val duplicate :
  rng:Algorand_sim.Rng.t -> p:float -> window:float -> 'msg Network.adversary
(** With probability [p] deliver a message twice, the two copies
    independently delayed by uniform draws from [\[0, window)]. *)

val hold_until : release:float -> 'msg Network.adversary
(** Full adversarial scheduling: delay (not drop) everything until
    [release] - the asynchronous period of weak synchrony. *)

val reorder : rng:Algorand_sim.Rng.t -> window:float -> 'msg Network.adversary
(** Delay every message by an independent uniform draw from
    [\[0, window)]: lossless adversarial reordering within a bounded
    horizon (the checker's harness-level schedule perturbation). *)

val compose : 'msg Network.adversary list -> 'msg Network.adversary
(** First non-Deliver verdict wins. *)
