(** Canned network adversaries (sections 3 and 10.4). *)

val none : 'msg Network.adversary

val partition : group_of:(int -> int) -> until:float -> 'msg Network.adversary
(** Sever all links between groups until [until]. *)

val target_nodes :
  targeted:(int -> bool) -> active:(float -> bool) -> 'msg Network.adversary
(** Targeted DoS: drop everything to/from the targeted nodes. *)

val uniform_loss : rng:Algorand_sim.Rng.t -> p:float -> 'msg Network.adversary
val uniform_delay : extra:float -> 'msg Network.adversary

val duplicate :
  rng:Algorand_sim.Rng.t -> p:float -> window:float -> 'msg Network.adversary
(** With probability [p] deliver a message twice, the two copies
    independently delayed by uniform draws from [\[0, window)]. *)

val hold_until : release:float -> 'msg Network.adversary
(** Full adversarial scheduling: delay (not drop) everything until
    [release] - the asynchronous period of weak synchrony. *)

val reorder : rng:Algorand_sim.Rng.t -> window:float -> 'msg Network.adversary
(** Delay every message by an independent uniform draw from
    [\[0, window)]: lossless adversarial reordering within a bounded
    horizon (the checker's harness-level schedule perturbation). *)

val corrupt :
  rng:Algorand_sim.Rng.t -> p:float -> 'msg Gossip.packet Network.adversary
(** On-path byte corruption: with probability [p], [Raw] frames arrive
    with flipped bytes, truncated, or extended with junk; [Plain]
    packets are replaced with garbage frames. Receivers must drop and
    count these at ingress. *)

val flood :
  engine:Algorand_sim.Engine.t ->
  rng:Algorand_sim.Rng.t ->
  gossip:'msg Gossip.t ->
  node:int ->
  rate_per_s:float ->
  bytes:int ->
  until:float ->
  unit
(** Schedule [node] to pump garbage frames at its peers at
    [rate_per_s] (each at most [bytes] long) until sim-time [until].
    Frames traverse the normal uplink and ingress paths, so the
    overlay's flood defense (quotas, ban scores) is what contains
    them. *)

val compose : 'msg Network.adversary list -> 'msg Network.adversary
(** First non-Deliver verdict wins. *)
