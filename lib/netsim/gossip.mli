(** The gossip overlay (section 4): stake-weighted bidirectional peer
    links, validate-before-relay, at-most-once relay per message id. *)

open Algorand_sim

type 'msg config = {
  msg_id : 'msg -> string;
  validate : int -> 'msg -> bool;
      (** Relay gate; stateful validators get re-asked on later copies
          of a message they rejected. *)
  deliver : int -> src:int -> 'msg -> unit;
  fanout : int;  (** connections initiated per node (the paper uses 4) *)
  point_to_point : 'msg -> bool;
      (** addressed messages: delivered and deduplicated, never relayed *)
}

type 'msg t

val create :
  ?registry:Algorand_obs.Registry.t ->
  ?trace:Algorand_obs.Trace.t ->
  net:'msg Network.t ->
  rng:Rng.t ->
  weights:float array ->
  'msg config ->
  'msg t
(** With [registry], the overlay maintains "gossip.delivered",
    "gossip.duplicates_dropped", "gossip.invalid_dropped",
    "gossip.relayed" (fan-out sends while relaying),
    "gossip.originated" and "gossip.p2p_sends" counters. With an
    enabled [trace], peer-graph changes ({!redraw}, {!relink}) emit
    instant events. *)

val broadcast : 'msg t -> node:int -> bytes:int -> 'msg -> unit
(** Originate a message at [node]. *)

val peers : 'msg t -> int -> int list

val send_to : 'msg t -> src:int -> dst:int -> bytes:int -> 'msg -> unit
(** Point-to-point send outside the overlay (block-fetch replies,
    byzantine equivocation). *)

val mark_seen : 'msg t -> node:int -> 'msg -> unit

val redraw : 'msg t -> weights:float array -> unit
(** Replace every node's peers (section 8.4: peers are re-drawn each
    round, healing disconnected components). *)

val relink : 'msg t -> node:int -> weights:float array -> unit
(** Re-link a single rejoining node: sever its old links, clear its
    dedup state, and draw it fresh weighted bidirectional peers.
    Everyone else's links are untouched. *)

val flush_seen : 'msg t -> unit
val duplicates_dropped : 'msg t -> int
val invalid_dropped : 'msg t -> int
