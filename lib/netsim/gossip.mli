(** The gossip overlay (section 4): stake-weighted bidirectional peer
    links, validate-before-relay, at-most-once relay per message id.

    With a {!codec} installed, the overlay runs bytes-on-the-wire:
    every message is encoded at the sender and decoded at each
    receiving hop before anything else looks at it; undecodable frames
    are dropped and counted. With {!limits}, each node meters its
    ingress per peer (bounded leaky-bucket queue, per-peer window
    quotas) and bans peers whose ban score — fed by undecodable frames
    and quota violations — crosses the threshold. *)

open Algorand_sim

type 'msg packet = Plain of 'msg | Raw of string
    (** What travels through {!Network}: typed values in the classic
        mode, encoded bytes in bytes-on-the-wire mode. [Raw] frames
        without an installed codec count as decode failures. *)

type 'msg codec = {
  enc : 'msg -> string;
  dec : string -> 'msg option;
}

type limits = {
  queue_capacity : int;  (** max ingress-queue depth per node *)
  drain_per_s : float;  (** ingress-queue service rate, messages/second *)
  quota_window_s : float;  (** per-peer quota window length *)
  quota_msgs : int;  (** max messages accepted from one peer per window *)
  ban_threshold : int;  (** ban score at which a peer is disconnected *)
  decode_fail_score : int;  (** score added per undecodable frame *)
  quota_score : int;
      (** score added per per-peer quota violation (queue tail drops are
          counted but unscored: shared-queue overflow does not
          implicate the frame's sender) *)
}

val default_limits : limits
(** Generous for honest traffic at paper scale; a deliberate flooder
    crosses the ban threshold within a few simulated seconds. *)

type 'msg config = {
  msg_id : 'msg -> string;
  validate : int -> 'msg -> bool;
      (** Relay gate; stateful validators get re-asked on later copies
          of a message they rejected. *)
  deliver : int -> src:int -> 'msg -> unit;
  fanout : int;  (** connections initiated per node (the paper uses 4) *)
  point_to_point : 'msg -> bool;
      (** addressed messages: delivered and deduplicated, never relayed *)
}

type 'msg t

val create :
  ?registry:Algorand_obs.Registry.t ->
  ?trace:Algorand_obs.Trace.t ->
  ?codec:'msg codec ->
  ?limits:limits ->
  net:'msg packet Network.t ->
  rng:Rng.t ->
  weights:float array ->
  'msg config ->
  'msg t
(** With [registry], the overlay maintains "gossip.delivered",
    "gossip.duplicates_dropped", "gossip.invalid_dropped",
    "gossip.relayed" (fan-out sends while relaying),
    "gossip.originated", "gossip.p2p_sends", "gossip.decode_fail",
    "gossip.quota_drops" and "gossip.banned_peers" counters plus a
    "gossip.ingress_queue_depth" histogram. With an enabled [trace],
    peer-graph changes ({!redraw}, {!relink}, bans) emit instant
    events. Ingress pipeline order: ban check, flood admission,
    decode, dedup, validate, deliver + relay (a hop relays the [Raw]
    bytes it received — no re-encode). *)

val broadcast : 'msg t -> node:int -> bytes:int -> 'msg -> unit
(** Originate a message at [node] (encoded first when in wire mode). *)

val inject_raw : 'msg t -> node:int -> bytes:int -> string -> unit
(** Send an arbitrary frame from [node] to all its peers, bypassing
    the codec: the flood/garbage attack primitive. Receivers treat it
    as untrusted ingress like anything else. *)

val peers : 'msg t -> int -> int list

val banned_by : 'msg t -> int -> int list
(** Peers that [node] has disconnected for misbehavior, sorted. *)

val send_to : 'msg t -> src:int -> dst:int -> bytes:int -> 'msg -> unit
(** Point-to-point send outside the overlay (block-fetch replies,
    byzantine equivocation). *)

val mark_seen : 'msg t -> node:int -> 'msg -> unit

val redraw : 'msg t -> weights:float array -> unit
(** Replace every node's peers (section 8.4: peers are re-drawn each
    round, healing disconnected components). Banned pairs are never
    re-linked. *)

val relink : 'msg t -> node:int -> weights:float array -> unit
(** Re-link a single rejoining node: sever its old links, clear its
    dedup state (and, as a restart, its own ban list and ingress
    meters), and draw it fresh weighted bidirectional peers. Everyone
    else's links — and their bans against it — are untouched. *)

val flush_seen : 'msg t -> unit
val duplicates_dropped : 'msg t -> int
val invalid_dropped : 'msg t -> int
val decode_failures : 'msg t -> int
val quota_drops : 'msg t -> int
val banned_links : 'msg t -> int
