(* Canned network adversaries for experiments (sections 3, 10.4):
   partitions (weak synchrony), targeted message dropping (DoS on
   chosen users), and uniform loss. These compose with the app-level
   byzantine behaviors (equivocation, double voting) configured on
   malicious nodes themselves. *)

let none : 'msg Network.adversary = Network.no_adversary

(* Sever all links between the two groups until [until]. *)
let partition ~(group_of : int -> int) ~(until : float) : 'msg Network.adversary =
 fun ~now ~src ~dst _ ->
  if now < until && group_of src <> group_of dst then Network.Drop else Network.Deliver

(* Drop everything sent by or to the targeted nodes (targeted DoS)
   while [active] says so. *)
let target_nodes ~(targeted : int -> bool) ~(active : float -> bool) :
    'msg Network.adversary =
 fun ~now ~src ~dst _ ->
  if active now && (targeted src || targeted dst) then Network.Drop else Network.Deliver

(* Drop each message independently with probability [p]. *)
let uniform_loss ~(rng : Algorand_sim.Rng.t) ~(p : float) : 'msg Network.adversary =
 fun ~now:_ ~src:_ ~dst:_ _ ->
  if Algorand_sim.Rng.float rng 1.0 < p then Network.Drop else Network.Deliver

(* Deliver each message twice with probability [p], the two copies
   independently delayed by uniform draws from [0, window). Exercises
   the overlay's at-most-once relay and the receivers' stateful
   re-validation (a retransmitting WAN, or a replaying attacker). *)
let duplicate ~(rng : Algorand_sim.Rng.t) ~(p : float) ~(window : float) :
    'msg Network.adversary =
 fun ~now:_ ~src:_ ~dst:_ _ ->
  if Algorand_sim.Rng.float rng 1.0 < p then
    Network.Duplicate
      {
        first = Algorand_sim.Rng.float rng window;
        second = Algorand_sim.Rng.float rng window;
      }
  else Network.Deliver

(* Add [extra] seconds of delay to every message (degraded WAN). *)
let uniform_delay ~(extra : float) : 'msg Network.adversary =
 fun ~now:_ ~src:_ ~dst:_ _ -> Network.Delay extra

(* Full adversarial scheduling for a time window: hold every message
   until [release] (models the asynchronous period of weak synchrony -
   messages are not lost, only arbitrarily delayed). *)
let hold_until ~(release : float) : 'msg Network.adversary =
 fun ~now ~src:_ ~dst:_ _ ->
  if now < release then Network.Delay (release -. now) else Network.Deliver

(* Adversarial reordering: delay each message by an independent uniform
   draw from [0, window). Messages are never lost, but any two messages
   in flight within the window may swap - the bounded-asynchrony
   schedule perturbation the model checker's harness fuzz mode layers
   under the engine's tie-break hook. *)
let reorder ~(rng : Algorand_sim.Rng.t) ~(window : float) : 'msg Network.adversary =
 fun ~now:_ ~src:_ ~dst:_ _ ->
  if window <= 0.0 then Network.Deliver
  else Network.Delay (Algorand_sim.Rng.float rng window)

(* Random bytes for corruption and garbage injection. *)
let random_bytes (rng : Algorand_sim.Rng.t) (len : int) : string =
  String.init len (fun _ -> Char.chr (Algorand_sim.Rng.int rng 256))

(* Flip [n] bytes of [s] at random positions to random values. *)
let flip_bytes (rng : Algorand_sim.Rng.t) (s : string) (n : int) : string =
  let b = Bytes.of_string s in
  for _ = 1 to n do
    let pos = Algorand_sim.Rng.int rng (Bytes.length b) in
    Bytes.set b pos (Char.chr (Algorand_sim.Rng.int rng 256))
  done;
  Bytes.to_string b

(* On-path corruption: with probability [p], the bytes that arrive are
   not the bytes that were sent. Raw frames get flipped bytes or a
   truncation; typed (Plain) packets are replaced outright with
   garbage bytes - a corrupted typed message has no meaningful partial
   value, so it arrives as an unparseable frame either way. Receivers
   must survive this at their ingress (decode failure, counted). *)
let corrupt ~(rng : Algorand_sim.Rng.t) ~(p : float) :
    'msg Gossip.packet Network.adversary =
 fun ~now:_ ~src:_ ~dst:_ pkt ->
  if Algorand_sim.Rng.float rng 1.0 >= p then Network.Deliver
  else
    match pkt with
    | Gossip.Raw s when String.length s > 0 ->
      let s' =
        match Algorand_sim.Rng.int rng 3 with
        | 0 -> flip_bytes rng s (1 + Algorand_sim.Rng.int rng 4)
        | 1 -> String.sub s 0 (Algorand_sim.Rng.int rng (String.length s))
        | _ -> s ^ random_bytes rng (1 + Algorand_sim.Rng.int rng 16)
      in
      Network.Tamper (Gossip.Raw s')
    | Gossip.Raw _ | Gossip.Plain _ ->
      Network.Tamper (Gossip.Raw (random_bytes rng (8 + Algorand_sim.Rng.int rng 64)))

(* Flooding: a malicious node pumps garbage frames at its peers at
   [rate_per_s] until [until]. This is an origination behavior, not an
   in-flight one, so it is driven off the engine rather than the
   per-message hook; the frames go through the normal uplink and
   ingress paths, which is exactly what the flood defense meters. *)
let flood ~(engine : Algorand_sim.Engine.t) ~(rng : Algorand_sim.Rng.t)
    ~(gossip : 'msg Gossip.t) ~(node : int) ~(rate_per_s : float) ~(bytes : int)
    ~(until : float) : unit =
  if rate_per_s > 0.0 then begin
    let period = 1.0 /. rate_per_s in
    let rec tick () =
      if Algorand_sim.Engine.now engine < until then begin
        let len = max 1 (min bytes (8 + Algorand_sim.Rng.int rng (max 1 bytes))) in
        Gossip.inject_raw gossip ~node ~bytes (random_bytes rng len);
        Algorand_sim.Engine.at engine
          ~time:(Algorand_sim.Engine.now engine +. period)
          tick
      end
    in
    Algorand_sim.Engine.at engine ~time:(Algorand_sim.Engine.now engine +. period) tick
  end

(* Chain adversaries: the first non-Deliver verdict wins. *)
let compose (advs : 'msg Network.adversary list) : 'msg Network.adversary =
 fun ~now ~src ~dst msg ->
  let rec go = function
    | [] -> Network.Deliver
    | a :: rest -> (
      match a ~now ~src ~dst msg with Network.Deliver -> go rest | verdict -> verdict)
  in
  go advs
