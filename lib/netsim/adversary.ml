(* Canned network adversaries for experiments (sections 3, 10.4):
   partitions (weak synchrony), targeted message dropping (DoS on
   chosen users), and uniform loss. These compose with the app-level
   byzantine behaviors (equivocation, double voting) configured on
   malicious nodes themselves. *)

let none : 'msg Network.adversary = Network.no_adversary

(* Sever all links between the two groups until [until]. *)
let partition ~(group_of : int -> int) ~(until : float) : 'msg Network.adversary =
 fun ~now ~src ~dst _ ->
  if now < until && group_of src <> group_of dst then Network.Drop else Network.Deliver

(* Drop everything sent by or to the targeted nodes (targeted DoS)
   while [active] says so. *)
let target_nodes ~(targeted : int -> bool) ~(active : float -> bool) :
    'msg Network.adversary =
 fun ~now ~src ~dst _ ->
  if active now && (targeted src || targeted dst) then Network.Drop else Network.Deliver

(* Drop each message independently with probability [p]. *)
let uniform_loss ~(rng : Algorand_sim.Rng.t) ~(p : float) : 'msg Network.adversary =
 fun ~now:_ ~src:_ ~dst:_ _ ->
  if Algorand_sim.Rng.float rng 1.0 < p then Network.Drop else Network.Deliver

(* Deliver each message twice with probability [p], the two copies
   independently delayed by uniform draws from [0, window). Exercises
   the overlay's at-most-once relay and the receivers' stateful
   re-validation (a retransmitting WAN, or a replaying attacker). *)
let duplicate ~(rng : Algorand_sim.Rng.t) ~(p : float) ~(window : float) :
    'msg Network.adversary =
 fun ~now:_ ~src:_ ~dst:_ _ ->
  if Algorand_sim.Rng.float rng 1.0 < p then
    Network.Duplicate
      {
        first = Algorand_sim.Rng.float rng window;
        second = Algorand_sim.Rng.float rng window;
      }
  else Network.Deliver

(* Add [extra] seconds of delay to every message (degraded WAN). *)
let uniform_delay ~(extra : float) : 'msg Network.adversary =
 fun ~now:_ ~src:_ ~dst:_ _ -> Network.Delay extra

(* Full adversarial scheduling for a time window: hold every message
   until [release] (models the asynchronous period of weak synchrony -
   messages are not lost, only arbitrarily delayed). *)
let hold_until ~(release : float) : 'msg Network.adversary =
 fun ~now ~src:_ ~dst:_ _ ->
  if now < release then Network.Delay (release -. now) else Network.Deliver

(* Adversarial reordering: delay each message by an independent uniform
   draw from [0, window). Messages are never lost, but any two messages
   in flight within the window may swap - the bounded-asynchrony
   schedule perturbation the model checker's harness fuzz mode layers
   under the engine's tie-break hook. *)
let reorder ~(rng : Algorand_sim.Rng.t) ~(window : float) : 'msg Network.adversary =
 fun ~now:_ ~src:_ ~dst:_ _ ->
  if window <= 0.0 then Network.Deliver
  else Network.Delay (Algorand_sim.Rng.float rng window)

(* Chain adversaries: the first non-Deliver verdict wins. *)
let compose (advs : 'msg Network.adversary list) : 'msg Network.adversary =
 fun ~now ~src ~dst msg ->
  let rec go = function
    | [] -> Network.Deliver
    | a :: rest -> (
      match a ~now ~src ~dst msg with Network.Deliver -> go rest | verdict -> verdict)
  in
  go advs
