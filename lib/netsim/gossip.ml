(* The gossip overlay (section 4): each user connects to a small set of
   peers, signs what it originates, validates before relaying, and
   never relays the same message twice. Peer selection is weighted by
   stake to mitigate pollution attacks, and peers are re-drawn every
   round to heal possible disconnections (section 8.4).

   The overlay is generic in the message type; the application supplies
   a message id (for dedup), a validator (relay gating) and a delivery
   callback. *)

open Algorand_sim
module Registry = Algorand_obs.Registry
module Trace = Algorand_obs.Trace

type 'msg config = {
  msg_id : 'msg -> string;
  validate : int -> 'msg -> bool;
      (** [validate node msg]: relay (and deliver) only if true. *)
  deliver : int -> src:int -> 'msg -> unit;
  fanout : int;  (** outgoing peers per node; the paper uses 4 (8 total with inbound) *)
  point_to_point : 'msg -> bool;
      (** addressed messages (catch-up requests and their replies):
          delivered and deduplicated like everything else but never
          relayed onward *)
}

(* Overlay-health counters. Registry-backed when a registry is wired
   in (so the CLI's metrics snapshot carries them); always mirrored in
   plain ints for the in-process accessors. *)
type counters = {
  mutable duplicates_dropped : int;
  mutable invalid_dropped : int;
  c_delivered : Registry.counter option;
  c_duplicates : Registry.counter option;
  c_invalid : Registry.counter option;
  c_relayed : Registry.counter option;  (** fan-out sends while relaying *)
  c_originated : Registry.counter option;
  c_p2p : Registry.counter option;
}

type 'msg t = {
  net : 'msg Network.t;
  config : 'msg config;
  rng : Rng.t;
  trace : Trace.t option;
  counters : counters;
  mutable peers : int list array;
  seen : (string, unit) Hashtbl.t array;
}

let bump (c : Registry.counter option) : unit =
  match c with Some c -> Registry.incr c | None -> ()

(* Draw peers for every node, weighted by stake. Each node initiates
   [fanout] connections; like the paper's TCP links these are
   bidirectional (a user "accepts incoming connections"), giving
   2 * fanout neighbors on average and - crucially - leaving no node
   without an inbound path. *)
let draw_peers (t : 'msg t) ~(weights : float array) : unit =
  let n = Network.nodes t.net in
  let chosen = Array.init n (fun _ -> Hashtbl.create 8) in
  for node = 0 to n - 1 do
    let budget = min t.config.fanout (n - 1) in
    (* Rejection-sample distinct weighted peers; cap attempts for tiny nets. *)
    let attempts = ref 0 in
    let picked = ref 0 in
    while !picked < budget && !attempts < 50 * budget do
      incr attempts;
      let candidate = Rng.weighted_index t.rng weights in
      if candidate <> node && not (Hashtbl.mem chosen.(node) candidate) then begin
        Hashtbl.replace chosen.(node) candidate ();
        Hashtbl.replace chosen.(candidate) node ();
        incr picked
      end
    done
  done;
  for node = 0 to n - 1 do
    t.peers.(node) <- Hashtbl.fold (fun k () acc -> k :: acc) chosen.(node) []
  done

let create ?registry ?trace ~(net : 'msg Network.t) ~(rng : Rng.t)
    ~(weights : float array) (config : 'msg config) : 'msg t =
  let n = Network.nodes net in
  let c name = Option.map (fun r -> Registry.counter r ("gossip." ^ name)) registry in
  let t =
    {
      net;
      config;
      rng;
      trace;
      counters =
        {
          duplicates_dropped = 0;
          invalid_dropped = 0;
          c_delivered = c "delivered";
          c_duplicates = c "duplicates_dropped";
          c_invalid = c "invalid_dropped";
          c_relayed = c "relayed";
          c_originated = c "originated";
          c_p2p = c "p2p_sends";
        };
      peers = Array.make n [];
      seen = Array.init n (fun _ -> Hashtbl.create 64);
    }
  in
  draw_peers t ~weights;
  let handle node ~src ~bytes:sz msg =
    let id = config.msg_id msg in
    if Hashtbl.mem t.seen.(node) id then begin
      t.counters.duplicates_dropped <- t.counters.duplicates_dropped + 1;
      bump t.counters.c_duplicates
    end
    else if not (config.validate node msg) then begin
      (* Not marked seen: validation is stateful (e.g. the priority-
         based block discard of section 6), so a copy arriving later -
         when this node knows more - gets a fresh chance. *)
      t.counters.invalid_dropped <- t.counters.invalid_dropped + 1;
      bump t.counters.c_invalid
    end
    else begin
      Hashtbl.replace t.seen.(node) id ();
      bump t.counters.c_delivered;
      config.deliver node ~src msg;
      if not (config.point_to_point msg) then
        List.iter
          (fun peer ->
            if peer <> src then begin
              bump t.counters.c_relayed;
              Network.send net ~src:node ~dst:peer ~bytes:sz msg
            end)
          t.peers.(node)
    end
  in
  for node = 0 to n - 1 do
    Network.set_handler net node (handle node)
  done;
  t

(* Originate a message at [node]: mark seen, deliver locally, forward. *)
let broadcast (t : 'msg t) ~(node : int) ~(bytes : int) (msg : 'msg) : unit =
  let id = t.config.msg_id msg in
  if not (Hashtbl.mem t.seen.(node) id) then begin
    Hashtbl.replace t.seen.(node) id ();
    bump t.counters.c_originated;
    List.iter (fun peer -> Network.send t.net ~src:node ~dst:peer ~bytes msg) t.peers.(node)
  end

(* Forget dedup state older than the current round to bound memory; the
   protocol never re-gossips old-round messages anyway. *)
let flush_seen (t : 'msg t) : unit = Array.iter Hashtbl.reset t.seen

(* Trace overlay-topology changes: they are rare (once per round, or
   per rejoin) and explain why a node's neighborhood shifted. *)
let trace_instant (t : 'msg t) ~(node : int) (name : string) : unit =
  match t.trace with
  | Some tr when Trace.enabled tr ->
    Trace.instant tr ~node ~ts:(Network.now t.net) ~cat:"gossip" ~name ()
  | _ -> ()

(* Re-draw the whole peer graph (section 8.4: "Algorand replaces gossip
   peers each round", healing nodes that landed in a disconnected
   component). In-flight messages are unaffected. *)
let redraw (t : 'msg t) ~(weights : float array) : unit =
  trace_instant t ~node:(-1) "redraw";
  draw_peers t ~weights

(* Re-link a single (rejoining) node: sever its old links, clear its
   dedup state - a fresh process knows nothing it has relayed - and
   draw it a fresh set of weighted bidirectional peers. Everyone else's
   links are untouched. *)
let relink (t : 'msg t) ~(node : int) ~(weights : float array) : unit =
  trace_instant t ~node "relink";
  Hashtbl.reset t.seen.(node);
  let n = Network.nodes t.net in
  for i = 0 to n - 1 do
    if i <> node then t.peers.(i) <- List.filter (fun p -> p <> node) t.peers.(i)
  done;
  let budget = min t.config.fanout (n - 1) in
  let chosen = Hashtbl.create 8 in
  let attempts = ref 0 in
  while Hashtbl.length chosen < budget && !attempts < 50 * budget do
    incr attempts;
    let candidate = Rng.weighted_index t.rng weights in
    if candidate <> node then Hashtbl.replace chosen candidate ()
  done;
  let links = Hashtbl.fold (fun k () acc -> k :: acc) chosen [] in
  t.peers.(node) <- links;
  List.iter
    (fun peer ->
      if not (List.mem node t.peers.(peer)) then t.peers.(peer) <- node :: t.peers.(peer))
    links

let duplicates_dropped (t : 'msg t) : int = t.counters.duplicates_dropped
let invalid_dropped (t : 'msg t) : int = t.counters.invalid_dropped

let peers (t : 'msg t) (node : int) : int list = t.peers.(node)

(* Point-to-point send outside the overlay: block-fetch replies, and
   byzantine senders that show different messages to different peers. *)
let send_to (t : 'msg t) ~(src : int) ~(dst : int) ~(bytes : int) (msg : 'msg) : unit =
  bump t.counters.c_p2p;
  Network.send t.net ~src ~dst ~bytes msg

(* Mark a message as seen at [node] without delivering it (used by
   originators of direct sends so their own relays stay consistent). *)
let mark_seen (t : 'msg t) ~(node : int) (msg : 'msg) : unit =
  Hashtbl.replace t.seen.(node) (t.config.msg_id msg) ()
