(* The gossip overlay (section 4): each user connects to a small set of
   peers, signs what it originates, validates before relaying, and
   never relays the same message twice. Peer selection is weighted by
   stake to mitigate pollution attacks, and peers are re-drawn every
   round to heal possible disconnections (section 8.4).

   The overlay is generic in the message type; the application supplies
   a message id (for dedup), a validator (relay gating) and a delivery
   callback.

   Hostile-wire mode: with a [codec] installed, every message travels
   as encoded bytes ([Raw] packets) and is decoded at each hop before
   anything else looks at it - decode failure means the frame is
   dropped and counted, exactly like a real ingress parser. Because
   frames on the wire are just bytes, a network adversary can corrupt
   them in flight and malicious peers can inject arbitrary garbage
   ({!inject_raw}).

   Flood defense ([limits]): each node meters its ingress per peer.
   A leaky-bucket ingress queue bounds total inflow, a per-peer window
   quota bounds any single peer, and a ban score - fed by undecodable
   frames and quota violations - disconnects a peer that keeps
   misbehaving and re-draws a replacement link. All bookkeeping is
   deterministic (driven by sim-time and the overlay's own RNG). *)

open Algorand_sim
module Registry = Algorand_obs.Registry
module Trace = Algorand_obs.Trace

(* What actually travels through the simulated WAN: a typed value in
   the classic mode, encoded bytes in bytes-on-the-wire mode. [Raw]
   frames can arrive in either mode (flooders inject them); without a
   codec they are unparseable by definition and count as decode
   failures. *)
type 'msg packet = Plain of 'msg | Raw of string

type 'msg codec = {
  enc : 'msg -> string;
  dec : string -> 'msg option;
}

(* Per-peer flood-defense policy. All quantities are per receiving
   node. The ingress queue is a leaky bucket: depth drains at
   [drain_per_s] and every arrival adds one; arrivals that would push
   the depth past [queue_capacity] are tail-dropped (deterministic drop
   policy: the latest frame loses). *)
type limits = {
  queue_capacity : int;  (** max ingress-queue depth per node *)
  drain_per_s : float;  (** ingress-queue service rate, messages/second *)
  quota_window_s : float;  (** per-peer quota window length *)
  quota_msgs : int;  (** max messages accepted from one peer per window *)
  ban_threshold : int;  (** ban score at which a peer is disconnected *)
  decode_fail_score : int;  (** score added per undecodable frame *)
  quota_score : int;  (** score added per per-peer quota violation *)
}

let default_limits : limits =
  {
    queue_capacity = 512;
    drain_per_s = 2_000.0;
    quota_window_s = 1.0;
    quota_msgs = 200;
    ban_threshold = 100;
    decode_fail_score = 10;
    quota_score = 1;
  }

type 'msg config = {
  msg_id : 'msg -> string;
  validate : int -> 'msg -> bool;
      (** [validate node msg]: relay (and deliver) only if true. *)
  deliver : int -> src:int -> 'msg -> unit;
  fanout : int;  (** outgoing peers per node; the paper uses 4 (8 total with inbound) *)
  point_to_point : 'msg -> bool;
      (** addressed messages (catch-up requests and their replies):
          delivered and deduplicated like everything else but never
          relayed onward *)
}

(* Overlay-health counters. Registry-backed when a registry is wired
   in (so the CLI's metrics snapshot carries them); always mirrored in
   plain ints for the in-process accessors. *)
type counters = {
  mutable duplicates_dropped : int;
  mutable invalid_dropped : int;
  mutable decode_failures : int;
  mutable quota_drops : int;
  mutable banned_links : int;
  c_delivered : Registry.counter option;
  c_duplicates : Registry.counter option;
  c_invalid : Registry.counter option;
  c_relayed : Registry.counter option;  (** fan-out sends while relaying *)
  c_originated : Registry.counter option;
  c_p2p : Registry.counter option;
  c_decode_fail : Registry.counter option;
  c_quota_drops : Registry.counter option;
  c_banned : Registry.counter option;
  h_ingress_depth : Registry.histogram option;
}

(* Per-(receiver, sender) flood-defense bookkeeping. *)
type peer_meter = {
  mutable window_start : float;
  mutable window_count : int;
  mutable ban_score : int;
}

type 'msg t = {
  net : 'msg packet Network.t;
  config : 'msg config;
  codec : 'msg codec option;
  limits : limits option;
  rng : Rng.t;
  trace : Trace.t option;
  counters : counters;
  mutable peers : int list array;
  mutable weights : float array;  (** last weights, for ban-replacement draws *)
  seen : (string, unit) Hashtbl.t array;
  banned : (int, unit) Hashtbl.t array;  (** [banned.(node)]: peers node cut off *)
  meters : (int * int, peer_meter) Hashtbl.t;  (** (receiver, sender) *)
  queue_depth : float array;  (** leaky-bucket ingress depth per node *)
  queue_drained_at : float array;
}

let bump (c : Registry.counter option) : unit =
  match c with Some c -> Registry.incr c | None -> ()

let observe (h : Registry.histogram option) (v : float) : unit =
  match h with Some h -> Registry.observe h v | None -> ()

(* A is severed from B when either side banned the other: links are
   bidirectional, so a ban cuts the pair both ways. *)
let link_banned (t : 'msg t) a b =
  Hashtbl.mem t.banned.(a) b || Hashtbl.mem t.banned.(b) a

(* Draw peers for every node, weighted by stake. Each node initiates
   [fanout] connections; like the paper's TCP links these are
   bidirectional (a user "accepts incoming connections"), giving
   2 * fanout neighbors on average and - crucially - leaving no node
   without an inbound path. Banned pairs are never re-linked. *)
let draw_peers (t : 'msg t) ~(weights : float array) : unit =
  t.weights <- Array.copy weights;
  let n = Network.nodes t.net in
  let chosen = Array.init n (fun _ -> Hashtbl.create 8) in
  for node = 0 to n - 1 do
    let budget = min t.config.fanout (n - 1) in
    (* Rejection-sample distinct weighted peers; cap attempts for tiny nets. *)
    let attempts = ref 0 in
    let picked = ref 0 in
    while !picked < budget && !attempts < 50 * budget do
      incr attempts;
      let candidate = Rng.weighted_index t.rng weights in
      if
        candidate <> node
        && (not (Hashtbl.mem chosen.(node) candidate))
        && not (link_banned t node candidate)
      then begin
        Hashtbl.replace chosen.(node) candidate ();
        Hashtbl.replace chosen.(candidate) node ();
        incr picked
      end
    done
  done;
  for node = 0 to n - 1 do
    t.peers.(node) <- Hashtbl.fold (fun k () acc -> k :: acc) chosen.(node) []
  done

(* Trace overlay-topology changes: they are rare (once per round, per
   rejoin, or per ban) and explain why a node's neighborhood shifted. *)
let trace_instant ?detail (t : 'msg t) ~(node : int) (name : string) : unit =
  match t.trace with
  | Some tr when Trace.enabled tr ->
    Trace.instant tr ~node ~ts:(Network.now t.net) ~cat:"gossip" ~name ?detail ()
  | _ -> ()

let meter (t : 'msg t) ~(node : int) ~(src : int) : peer_meter =
  match Hashtbl.find_opt t.meters (node, src) with
  | Some m -> m
  | None ->
    let m = { window_start = Network.now t.net; window_count = 0; ban_score = 0 } in
    Hashtbl.replace t.meters (node, src) m;
    m

(* Disconnect [src] from [node]'s neighborhood: sever the (mutual) link,
   remember the ban so no redraw re-links the pair, and draw [node] one
   weighted replacement peer so its degree (and the overlay's
   connectivity) survives the cut. *)
let ban_peer (t : 'msg t) ~(node : int) ~(src : int) : unit =
  if not (Hashtbl.mem t.banned.(node) src) then begin
    Hashtbl.replace t.banned.(node) src ();
    t.counters.banned_links <- t.counters.banned_links + 1;
    bump t.counters.c_banned;
    trace_instant t ~node "ban" ~detail:[ ("peer", string_of_int src) ];
    t.peers.(node) <- List.filter (fun p -> p <> src) t.peers.(node);
    t.peers.(src) <- List.filter (fun p -> p <> node) t.peers.(src);
    let n = Network.nodes t.net in
    if Array.length t.weights = n then begin
      let attempts = ref 0 in
      let found = ref false in
      while (not !found) && !attempts < 200 do
        incr attempts;
        let candidate = Rng.weighted_index t.rng t.weights in
        if
          candidate <> node && candidate <> src
          && (not (List.mem candidate t.peers.(node)))
          && not (link_banned t node candidate)
        then begin
          t.peers.(node) <- candidate :: t.peers.(node);
          if not (List.mem node t.peers.(candidate)) then
            t.peers.(candidate) <- node :: t.peers.(candidate);
          found := true
        end
      done
    end
  end

let score (t : 'msg t) ~(limits : limits) ~(node : int) ~(src : int) (points : int) :
    unit =
  let m = meter t ~node ~src in
  m.ban_score <- m.ban_score + points;
  if m.ban_score >= limits.ban_threshold then ban_peer t ~node ~src

(* Ingress admission: leaky-bucket queue for the node as a whole, then
   the per-peer window quota. Returns false when the frame must be
   dropped (already counted). *)
let admit (t : 'msg t) ~(limits : limits) ~(node : int) ~(src : int) : bool =
  let now = Network.now t.net in
  (* Leaky bucket: depth decays at the service rate between arrivals. *)
  let drained = (now -. t.queue_drained_at.(node)) *. limits.drain_per_s in
  t.queue_depth.(node) <- Float.max 0.0 (t.queue_depth.(node) -. drained);
  t.queue_drained_at.(node) <- now;
  observe t.counters.h_ingress_depth t.queue_depth.(node);
  if t.queue_depth.(node) +. 1.0 > float_of_int limits.queue_capacity then begin
    (* Tail drop, counted but NOT scored: the queue is shared across
       peers, so overflow does not implicate the sender of the frame
       that happened to arrive last - a flooder filling the queue must
       not get honest peers banned. Attribution comes from the per-peer
       quota and the decode-failure score. *)
    t.counters.quota_drops <- t.counters.quota_drops + 1;
    bump t.counters.c_quota_drops;
    false
  end
  else begin
    let m = meter t ~node ~src in
    if now -. m.window_start >= limits.quota_window_s then begin
      m.window_start <- now;
      m.window_count <- 0
    end;
    if m.window_count >= limits.quota_msgs then begin
      t.counters.quota_drops <- t.counters.quota_drops + 1;
      bump t.counters.c_quota_drops;
      score t ~limits ~node ~src limits.quota_score;
      false
    end
    else begin
      m.window_count <- m.window_count + 1;
      t.queue_depth.(node) <- t.queue_depth.(node) +. 1.0;
      true
    end
  end

let create ?registry ?trace ?codec ?limits ~(net : 'msg packet Network.t)
    ~(rng : Rng.t) ~(weights : float array) (config : 'msg config) : 'msg t =
  let n = Network.nodes net in
  let c name = Option.map (fun r -> Registry.counter r ("gossip." ^ name)) registry in
  let h name =
    Option.map
      (fun r -> Registry.histogram r ~lo:1.0 ~growth:2.0 ~buckets:16 ("gossip." ^ name))
      registry
  in
  let t =
    {
      net;
      config;
      codec;
      limits;
      rng;
      trace;
      counters =
        {
          duplicates_dropped = 0;
          invalid_dropped = 0;
          decode_failures = 0;
          quota_drops = 0;
          banned_links = 0;
          c_delivered = c "delivered";
          c_duplicates = c "duplicates_dropped";
          c_invalid = c "invalid_dropped";
          c_relayed = c "relayed";
          c_originated = c "originated";
          c_p2p = c "p2p_sends";
          c_decode_fail = c "decode_fail";
          c_quota_drops = c "quota_drops";
          c_banned = c "banned_peers";
          h_ingress_depth = h "ingress_queue_depth";
        };
      peers = Array.make n [];
      weights = Array.copy weights;
      seen = Array.init n (fun _ -> Hashtbl.create 64);
      banned = Array.init n (fun _ -> Hashtbl.create 4);
      meters = Hashtbl.create 64;
      queue_depth = Array.make n 0.0;
      queue_drained_at = Array.make n 0.0;
    }
  in
  draw_peers t ~weights;
  (* The untrusted-ingress pipeline, in strict order: (1) ban check -
     frames from a cut-off peer are ignored outright; (2) flood
     admission (queue + quota); (3) decode, for Raw frames - only now
     do the bytes become a message; (4) dedup; (5) validate; (6)
     deliver + relay. Raw frames relay as the bytes that arrived, so a
     hop never re-encodes. *)
  let handle node ~src ~bytes:sz pkt =
    if Hashtbl.mem t.banned.(node) src then ()
    else begin
      let admitted =
        match t.limits with None -> true | Some l -> admit t ~limits:l ~node ~src
      in
      if admitted then begin
        let decoded =
          match pkt with
          | Plain msg -> Some msg
          | Raw frame -> (
            match t.codec with None -> None | Some c -> c.dec frame)
        in
        match decoded with
        | None ->
          t.counters.decode_failures <- t.counters.decode_failures + 1;
          bump t.counters.c_decode_fail;
          (match t.limits with
          | Some l -> score t ~limits:l ~node ~src l.decode_fail_score
          | None -> ())
        | Some msg ->
          let id = config.msg_id msg in
          if Hashtbl.mem t.seen.(node) id then begin
            t.counters.duplicates_dropped <- t.counters.duplicates_dropped + 1;
            bump t.counters.c_duplicates
          end
          else if not (config.validate node msg) then begin
            (* Not marked seen: validation is stateful (e.g. the priority-
               based block discard of section 6), so a copy arriving later -
               when this node knows more - gets a fresh chance. Marking
               seen only AFTER validation also means an invalid variant
               that shares a gossip id with an honest message (a
               corrupted copy racing the original) cannot poison the
               dedup cache and suppress the real one. *)
            t.counters.invalid_dropped <- t.counters.invalid_dropped + 1;
            bump t.counters.c_invalid
          end
          else begin
            Hashtbl.replace t.seen.(node) id ();
            bump t.counters.c_delivered;
            config.deliver node ~src msg;
            if not (config.point_to_point msg) then
              List.iter
                (fun peer ->
                  if peer <> src then begin
                    bump t.counters.c_relayed;
                    Network.send net ~src:node ~dst:peer ~bytes:sz pkt
                  end)
                t.peers.(node)
          end
      end
    end
  in
  for node = 0 to n - 1 do
    Network.set_handler net node (handle node)
  done;
  t

(* Encode for the wire when a codec is installed; the typed fast path
   otherwise. *)
let pack (t : 'msg t) (msg : 'msg) : 'msg packet =
  match t.codec with None -> Plain msg | Some c -> Raw (c.enc msg)

(* Originate a message at [node]: mark seen, deliver locally, forward. *)
let broadcast (t : 'msg t) ~(node : int) ~(bytes : int) (msg : 'msg) : unit =
  let id = t.config.msg_id msg in
  if not (Hashtbl.mem t.seen.(node) id) then begin
    Hashtbl.replace t.seen.(node) id ();
    bump t.counters.c_originated;
    let pkt = pack t msg in
    List.iter
      (fun peer -> Network.send t.net ~src:node ~dst:peer ~bytes pkt)
      t.peers.(node)
  end

(* Inject a raw frame from [node] to all its peers, bypassing the
   codec: the attack primitive behind Adversary.flood. Honest receivers
   treat whatever arrives as untrusted bytes; garbage is counted,
   scored and dropped at their ingress. *)
let inject_raw (t : 'msg t) ~(node : int) ~(bytes : int) (frame : string) : unit =
  bump t.counters.c_originated;
  List.iter
    (fun peer -> Network.send t.net ~src:node ~dst:peer ~bytes (Raw frame))
    t.peers.(node)

(* Forget dedup state older than the current round to bound memory; the
   protocol never re-gossips old-round messages anyway. *)
let flush_seen (t : 'msg t) : unit = Array.iter Hashtbl.reset t.seen

(* Re-draw the whole peer graph (section 8.4: "Algorand replaces gossip
   peers each round", healing nodes that landed in a disconnected
   component). In-flight messages are unaffected; bans persist. *)
let redraw (t : 'msg t) ~(weights : float array) : unit =
  trace_instant t ~node:(-1) "redraw";
  draw_peers t ~weights

(* Re-link a single (rejoining) node: sever its old links, clear its
   dedup state - a fresh process knows nothing it has relayed - and
   draw it a fresh set of weighted bidirectional peers. Everyone else's
   links are untouched. A restart also wipes the node's own ban list
   and meters (in-memory state), though peers that banned IT remember. *)
let relink (t : 'msg t) ~(node : int) ~(weights : float array) : unit =
  trace_instant t ~node "relink";
  t.weights <- Array.copy weights;
  Hashtbl.reset t.seen.(node);
  Hashtbl.reset t.banned.(node);
  Hashtbl.filter_map_inplace
    (fun (recv, _) m -> if recv = node then None else Some m)
    t.meters;
  t.queue_depth.(node) <- 0.0;
  t.queue_drained_at.(node) <- Network.now t.net;
  let n = Network.nodes t.net in
  for i = 0 to n - 1 do
    if i <> node then t.peers.(i) <- List.filter (fun p -> p <> node) t.peers.(i)
  done;
  let budget = min t.config.fanout (n - 1) in
  let chosen = Hashtbl.create 8 in
  let attempts = ref 0 in
  while Hashtbl.length chosen < budget && !attempts < 50 * budget do
    incr attempts;
    let candidate = Rng.weighted_index t.rng weights in
    if candidate <> node && not (link_banned t node candidate) then
      Hashtbl.replace chosen candidate ()
  done;
  let links = Hashtbl.fold (fun k () acc -> k :: acc) chosen [] in
  t.peers.(node) <- links;
  List.iter
    (fun peer ->
      if not (List.mem node t.peers.(peer)) then t.peers.(peer) <- node :: t.peers.(peer))
    links

let duplicates_dropped (t : 'msg t) : int = t.counters.duplicates_dropped
let invalid_dropped (t : 'msg t) : int = t.counters.invalid_dropped
let decode_failures (t : 'msg t) : int = t.counters.decode_failures
let quota_drops (t : 'msg t) : int = t.counters.quota_drops
let banned_links (t : 'msg t) : int = t.counters.banned_links

let banned_by (t : 'msg t) (node : int) : int list =
  Hashtbl.fold (fun p () acc -> p :: acc) t.banned.(node) [] |> List.sort compare

let peers (t : 'msg t) (node : int) : int list = t.peers.(node)

(* Point-to-point send outside the overlay: block-fetch replies, and
   byzantine senders that show different messages to different peers. *)
let send_to (t : 'msg t) ~(src : int) ~(dst : int) ~(bytes : int) (msg : 'msg) : unit =
  bump t.counters.c_p2p;
  Network.send t.net ~src ~dst ~bytes (pack t msg)

(* Mark a message as seen at [node] without delivering it (used by
   originators of direct sends so their own relays stay consistent). *)
let mark_seen (t : 'msg t) ~(node : int) (msg : 'msg) : unit =
  Hashtbl.replace t.seen.(node) (t.config.msg_id msg) ()
