(* The gossip overlay (section 4): each user connects to a small set of
   peers, signs what it originates, validates before relaying, and
   never relays the same message twice. Peer selection is weighted by
   stake to mitigate pollution attacks, and peers are re-drawn every
   round to heal possible disconnections (section 8.4).

   The overlay is generic in the message type; the application supplies
   a message id (for dedup), a validator (relay gating) and a delivery
   callback. *)

open Algorand_sim

type 'msg config = {
  msg_id : 'msg -> string;
  validate : int -> 'msg -> bool;
      (** [validate node msg]: relay (and deliver) only if true. *)
  deliver : int -> src:int -> 'msg -> unit;
  fanout : int;  (** outgoing peers per node; the paper uses 4 (8 total with inbound) *)
  point_to_point : 'msg -> bool;
      (** addressed messages (catch-up requests and their replies):
          delivered and deduplicated like everything else but never
          relayed onward *)
}

type 'msg t = {
  net : 'msg Network.t;
  config : 'msg config;
  rng : Rng.t;
  mutable peers : int list array;
  seen : (string, unit) Hashtbl.t array;
  mutable duplicates_dropped : int;
  mutable invalid_dropped : int;
}

(* Draw peers for every node, weighted by stake. Each node initiates
   [fanout] connections; like the paper's TCP links these are
   bidirectional (a user "accepts incoming connections"), giving
   2 * fanout neighbors on average and - crucially - leaving no node
   without an inbound path. *)
let draw_peers (t : 'msg t) ~(weights : float array) : unit =
  let n = Network.nodes t.net in
  let chosen = Array.init n (fun _ -> Hashtbl.create 8) in
  for node = 0 to n - 1 do
    let budget = min t.config.fanout (n - 1) in
    (* Rejection-sample distinct weighted peers; cap attempts for tiny nets. *)
    let attempts = ref 0 in
    let picked = ref 0 in
    while !picked < budget && !attempts < 50 * budget do
      incr attempts;
      let candidate = Rng.weighted_index t.rng weights in
      if candidate <> node && not (Hashtbl.mem chosen.(node) candidate) then begin
        Hashtbl.replace chosen.(node) candidate ();
        Hashtbl.replace chosen.(candidate) node ();
        incr picked
      end
    done
  done;
  for node = 0 to n - 1 do
    t.peers.(node) <- Hashtbl.fold (fun k () acc -> k :: acc) chosen.(node) []
  done

let create ~(net : 'msg Network.t) ~(rng : Rng.t) ~(weights : float array)
    (config : 'msg config) : 'msg t =
  let n = Network.nodes net in
  let t =
    {
      net;
      config;
      rng;
      peers = Array.make n [];
      seen = Array.init n (fun _ -> Hashtbl.create 64);
      duplicates_dropped = 0;
      invalid_dropped = 0;
    }
  in
  draw_peers t ~weights;
  let handle node ~src ~bytes:sz msg =
    let id = config.msg_id msg in
    if Hashtbl.mem t.seen.(node) id then t.duplicates_dropped <- t.duplicates_dropped + 1
    else if not (config.validate node msg) then
      (* Not marked seen: validation is stateful (e.g. the priority-
         based block discard of section 6), so a copy arriving later -
         when this node knows more - gets a fresh chance. *)
      t.invalid_dropped <- t.invalid_dropped + 1
    else begin
      Hashtbl.replace t.seen.(node) id ();
      config.deliver node ~src msg;
      if not (config.point_to_point msg) then
        List.iter
          (fun peer -> if peer <> src then Network.send net ~src:node ~dst:peer ~bytes:sz msg)
          t.peers.(node)
    end
  in
  for node = 0 to n - 1 do
    Network.set_handler net node (handle node)
  done;
  t

(* Originate a message at [node]: mark seen, deliver locally, forward. *)
let broadcast (t : 'msg t) ~(node : int) ~(bytes : int) (msg : 'msg) : unit =
  let id = t.config.msg_id msg in
  if not (Hashtbl.mem t.seen.(node) id) then begin
    Hashtbl.replace t.seen.(node) id ();
    List.iter (fun peer -> Network.send t.net ~src:node ~dst:peer ~bytes msg) t.peers.(node)
  end

(* Forget dedup state older than the current round to bound memory; the
   protocol never re-gossips old-round messages anyway. *)
let flush_seen (t : 'msg t) : unit = Array.iter Hashtbl.reset t.seen

(* Re-draw the whole peer graph (section 8.4: "Algorand replaces gossip
   peers each round", healing nodes that landed in a disconnected
   component). In-flight messages are unaffected. *)
let redraw (t : 'msg t) ~(weights : float array) : unit = draw_peers t ~weights

(* Re-link a single (rejoining) node: sever its old links, clear its
   dedup state - a fresh process knows nothing it has relayed - and
   draw it a fresh set of weighted bidirectional peers. Everyone else's
   links are untouched. *)
let relink (t : 'msg t) ~(node : int) ~(weights : float array) : unit =
  Hashtbl.reset t.seen.(node);
  let n = Network.nodes t.net in
  for i = 0 to n - 1 do
    if i <> node then t.peers.(i) <- List.filter (fun p -> p <> node) t.peers.(i)
  done;
  let budget = min t.config.fanout (n - 1) in
  let chosen = Hashtbl.create 8 in
  let attempts = ref 0 in
  while Hashtbl.length chosen < budget && !attempts < 50 * budget do
    incr attempts;
    let candidate = Rng.weighted_index t.rng weights in
    if candidate <> node then Hashtbl.replace chosen candidate ()
  done;
  let links = Hashtbl.fold (fun k () acc -> k :: acc) chosen [] in
  t.peers.(node) <- links;
  List.iter
    (fun peer ->
      if not (List.mem node t.peers.(peer)) then t.peers.(peer) <- node :: t.peers.(peer))
    links

let duplicates_dropped (t : 'msg t) : int = t.duplicates_dropped
let invalid_dropped (t : 'msg t) : int = t.invalid_dropped

let peers (t : 'msg t) (node : int) : int list = t.peers.(node)

(* Point-to-point send outside the overlay: block-fetch replies, and
   byzantine senders that show different messages to different peers. *)
let send_to (t : 'msg t) ~(src : int) ~(dst : int) ~(bytes : int) (msg : 'msg) : unit =
  Network.send t.net ~src ~dst ~bytes msg

(* Mark a message as seen at [node] without delivering it (used by
   originators of direct sends so their own relays stay consistent). *)
let mark_seen (t : 'msg t) ~(node : int) (msg : 'msg) : unit =
  Hashtbl.replace t.seen.(node) (t.config.msg_id msg) ()
