(* Structured event tracing: instants and spans stamped with sim-time,
   node, incarnation and protocol position, fanned out to pluggable
   sinks. Disabled by default; emission sites guard with [enabled] so a
   disabled trace is one field load and zero allocation. *)

type event = {
  ts : float;
  start_ts : float;
  node : int;
  incarnation : int;
  cat : string;
  name : string;
  round : int;
  step : int;
  detail : (string * string) list;
}

let duration (e : event) : float = e.ts -. e.start_ts

type ring = {
  buf : event option array;
  mutable next : int;  (** write cursor *)
  mutable stored : int;  (** total events ever written *)
}

type sink = Ring of ring | Jsonl of out_channel | Callback of (event -> unit)

type t = { mutable on : bool; mutable sinks : sink list }

let create () : t = { on = false; sinks = [] }
let enabled (t : t) : bool = t.on
let enable (t : t) : unit = t.on <- true
let disable (t : t) : unit = t.on <- false

let add_ring (t : t) ~(capacity : int) : unit =
  if capacity <= 0 then invalid_arg "Trace.add_ring: capacity must be positive";
  t.sinks <- Ring { buf = Array.make capacity None; next = 0; stored = 0 } :: t.sinks

let add_jsonl (t : t) (oc : out_channel) : unit = t.sinks <- Jsonl oc :: t.sinks
let add_callback (t : t) (f : event -> unit) : unit = t.sinks <- Callback f :: t.sinks

(* JSON string escaping: quotes, backslashes and control characters. *)
let escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_to_json (e : event) : string =
  let b = Buffer.create 160 in
  Buffer.add_string b (Printf.sprintf "{\"ts\":%.6f" e.ts);
  if e.start_ts <> e.ts then
    Buffer.add_string b
      (Printf.sprintf ",\"start\":%.6f,\"dur\":%.6f" e.start_ts (e.ts -. e.start_ts));
  Buffer.add_string b
    (Printf.sprintf ",\"cat\":\"%s\",\"name\":\"%s\"" (escape e.cat) (escape e.name));
  if e.node >= 0 then Buffer.add_string b (Printf.sprintf ",\"node\":%d" e.node);
  if e.incarnation >= 0 then Buffer.add_string b (Printf.sprintf ",\"inc\":%d" e.incarnation);
  if e.round >= 0 then Buffer.add_string b (Printf.sprintf ",\"round\":%d" e.round);
  if e.step >= 0 then Buffer.add_string b (Printf.sprintf ",\"step\":%d" e.step);
  (match e.detail with
  | [] -> ()
  | kvs ->
    Buffer.add_string b ",\"detail\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
      kvs;
    Buffer.add_char b '}');
  Buffer.add_char b '}';
  Buffer.contents b

let emit (t : t) (e : event) : unit =
  if t.on then
    List.iter
      (fun sink ->
        match sink with
        | Ring r ->
          r.buf.(r.next) <- Some e;
          r.next <- (r.next + 1) mod Array.length r.buf;
          r.stored <- r.stored + 1
        | Jsonl oc ->
          output_string oc (event_to_json e);
          output_char oc '\n'
        | Callback f -> f e)
      t.sinks

let instant (t : t) ?(node = -1) ?(incarnation = -1) ?(round = -1) ?(step = -1)
    ?(detail = []) ~(ts : float) ~(cat : string) ~(name : string) () : unit =
  emit t { ts; start_ts = ts; node; incarnation; cat; name; round; step; detail }

let span (t : t) ?(node = -1) ?(incarnation = -1) ?(round = -1) ?(step = -1) ?(detail = [])
    ~(start_ts : float) ~(ts : float) ~(cat : string) ~(name : string) () : unit =
  emit t { ts; start_ts; node; incarnation; cat; name; round; step; detail }

let ring_events (t : t) : event list =
  List.concat_map
    (fun sink ->
      match sink with
      | Ring r ->
        let cap = Array.length r.buf in
        let n = min r.stored cap in
        let first = if r.stored <= cap then 0 else r.next in
        List.filter_map (fun i -> r.buf.((first + i) mod cap)) (List.init n Fun.id)
      | Jsonl _ | Callback _ -> [])
    (List.rev t.sinks)

let flush (t : t) : unit =
  List.iter (function Jsonl oc -> flush oc | Ring _ | Callback _ -> ()) t.sinks
