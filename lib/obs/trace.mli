(** Structured event tracing for the simulator.

    A trace is a stream of events - instants and spans - stamped with
    sim-time, the emitting node, its incarnation, and a protocol
    position (round, step). It is disabled by default and designed to
    be zero-cost in that state: the emitting code guards every emission
    site with [if Trace.enabled t then ...], so a disabled trace costs
    one mutable-field load per site and allocates nothing.

    Events fan out to pluggable sinks: a fixed-capacity ring buffer
    (post-mortem inspection, tests), a JSONL channel (one JSON object
    per line, for offline analysis), and arbitrary callbacks (live
    assertions in tests). *)

type event = {
  ts : float;  (** emission sim-time; for spans, the span end *)
  start_ts : float;  (** span start sim-time; equals [ts] for instants *)
  node : int;  (** emitting node index, or -1 when not node-scoped *)
  incarnation : int;  (** node incarnation, or -1 when not applicable *)
  cat : string;  (** coarse category: "round", "step", "phase", "gossip", ... *)
  name : string;  (** event name within the category *)
  round : int;  (** protocol round, or -1 *)
  step : int;  (** BA* step, or -1 *)
  detail : (string * string) list;  (** free-form key/value payload *)
}

val duration : event -> float
(** [ts -. start_ts]; 0 for instants. *)

type t

val create : unit -> t
(** A fresh trace: disabled, no sinks. *)

val enabled : t -> bool
val enable : t -> unit
val disable : t -> unit

val add_ring : t -> capacity:int -> unit
(** Keep the most recent [capacity] events in memory. *)

val add_jsonl : t -> out_channel -> unit
(** Write each event as one JSON object per line. The caller owns the
    channel; call {!flush} (and close it) when done. *)

val add_callback : t -> (event -> unit) -> unit

val emit : t -> event -> unit
(** Deliver to every sink; no-op while disabled. *)

val instant :
  t ->
  ?node:int ->
  ?incarnation:int ->
  ?round:int ->
  ?step:int ->
  ?detail:(string * string) list ->
  ts:float ->
  cat:string ->
  name:string ->
  unit ->
  unit

val span :
  t ->
  ?node:int ->
  ?incarnation:int ->
  ?round:int ->
  ?step:int ->
  ?detail:(string * string) list ->
  start_ts:float ->
  ts:float ->
  cat:string ->
  name:string ->
  unit ->
  unit

val ring_events : t -> event list
(** Events retained by the ring sink(s), oldest first; [] without one. *)

val event_to_json : event -> string
(** One-line JSON object (no trailing newline). Deterministic field
    order; numbers formatted with fixed precision so identical runs
    produce bit-identical output. *)

val flush : t -> unit
(** Flush every JSONL sink's channel. *)
