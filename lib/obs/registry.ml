(* Typed metrics registry: named counters, gauges and log-bucket
   histograms, snapshot-able mid-run with deterministic serialization.
   NaN observations are quarantined into a dedicated count so they can
   never poison a sum, extremum or bucket. *)

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  lo : float;
  growth : float;
  nbuckets : int;
  bucket_counts : int array;  (** nbuckets + 2: underflow .. overflow *)
  mutable h_n : int;
  mutable nan_n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

type metric = C of counter | G of gauge | H of histogram
type t = { tbl : (string, metric) Hashtbl.t }

let create () : t = { tbl = Hashtbl.create 64 }

let get_or_make (t : t) (name : string) (kind : string) (make : unit -> metric)
    (match_ : metric -> 'a option) : 'a =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> (
    match match_ m with
    | Some x -> x
    | None -> invalid_arg (Printf.sprintf "Registry: %S already registered with another type (wanted %s)" name kind))
  | None ->
    let m = make () in
    Hashtbl.replace t.tbl name m;
    (match match_ m with Some x -> x | None -> assert false)

let counter (t : t) (name : string) : counter =
  get_or_make t name "counter"
    (fun () -> C { c = 0 })
    (function C c -> Some c | _ -> None)

let incr (c : counter) : unit = c.c <- c.c + 1
let add (c : counter) (n : int) : unit = c.c <- c.c + n
let count (c : counter) : int = c.c

let gauge (t : t) (name : string) : gauge =
  get_or_make t name "gauge"
    (fun () -> G { g = 0.0 })
    (function G g -> Some g | _ -> None)

let set (g : gauge) (v : float) : unit = g.g <- v
let value (g : gauge) : float = g.g

let histogram (t : t) ?(lo = 1e-3) ?(growth = 2.0) ?(buckets = 36) (name : string) :
    histogram =
  if lo <= 0.0 || growth <= 1.0 || buckets < 1 then
    invalid_arg "Registry.histogram: need lo > 0, growth > 1, buckets >= 1";
  get_or_make t name "histogram"
    (fun () ->
      H
        {
          lo;
          growth;
          nbuckets = buckets;
          bucket_counts = Array.make (buckets + 2) 0;
          h_n = 0;
          nan_n = 0;
          sum = 0.0;
          mn = infinity;
          mx = neg_infinity;
        })
    (function H h -> Some h | _ -> None)

let bucket_index (h : histogram) (v : float) : int =
  if v < h.lo then 0
  else if v = infinity then h.nbuckets + 1
  else begin
    let k = 1 + int_of_float (Float.floor (Float.log (v /. h.lo) /. Float.log h.growth)) in
    if k > h.nbuckets then h.nbuckets + 1 else max 1 k
  end

let observe (h : histogram) (v : float) : unit =
  if Float.is_nan v then h.nan_n <- h.nan_n + 1
  else begin
    h.h_n <- h.h_n + 1;
    h.sum <- h.sum +. v;
    if v < h.mn then h.mn <- v;
    if v > h.mx then h.mx <- v;
    let i = bucket_index h v in
    h.bucket_counts.(i) <- h.bucket_counts.(i) + 1
  end

type hist_snapshot = {
  h_count : int;
  h_nan : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) list;
}

let bucket_bound (h : histogram) (i : int) : float =
  if i = 0 then h.lo
  else if i > h.nbuckets then infinity
  else h.lo *. (h.growth ** float_of_int i)

let hist_snapshot (h : histogram) : hist_snapshot =
  let buckets = ref [] in
  for i = h.nbuckets + 1 downto 0 do
    if h.bucket_counts.(i) > 0 then
      buckets := (bucket_bound h i, h.bucket_counts.(i)) :: !buckets
  done;
  {
    h_count = h.h_n;
    h_nan = h.nan_n;
    h_sum = h.sum;
    h_min = (if h.h_n = 0 then 0.0 else h.mn);
    h_max = (if h.h_n = 0 then 0.0 else h.mx);
    h_buckets = !buckets;
  }

let counter_value (t : t) (name : string) : int option =
  match Hashtbl.find_opt t.tbl name with Some (C c) -> Some c.c | _ -> None

let gauge_value (t : t) (name : string) : float option =
  match Hashtbl.find_opt t.tbl name with Some (G g) -> Some g.g | _ -> None

let histogram_value (t : t) (name : string) : hist_snapshot option =
  match Hashtbl.find_opt t.tbl name with Some (H h) -> Some (hist_snapshot h) | _ -> None

let names (t : t) : string list =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [])

(* Coverage fingerprint: the structural exercise signal - which
   counters fired, which gauges exist, which histogram buckets are
   populated - deliberately insensitive to magnitudes, so two runs that
   stressed the same code paths (however hard) collide while a run that
   touched a new path contributes a novel item. Sorted, hence
   deterministic for identical runs. *)
let fingerprint (t : t) : string list =
  List.concat_map
    (fun name ->
      match Hashtbl.find_opt t.tbl name with
      | Some (C c) -> if c.c > 0 then [ "c:" ^ name ] else []
      | Some (G _) -> [ "g:" ^ name ]
      | Some (H h) ->
        let items = ref [] in
        for i = h.nbuckets + 1 downto 0 do
          if h.bucket_counts.(i) > 0 then
            items := Printf.sprintf "h:%s:%d" name i :: !items
        done;
        !items
      | None -> [])
    (names t)

(* Deterministic serialization: sorted names, fixed float precision,
   never a bare NaN/inf token (JSON has neither). *)
let json_float (v : float) : string =
  if Float.is_nan v then "0.0"
  else if v = infinity then "\"inf\""
  else if v = neg_infinity then "\"-inf\""
  else Printf.sprintf "%.6f" v

let sorted (t : t) (pick : string -> metric -> 'a option) : (string * 'a) list =
  List.filter_map
    (fun name ->
      match Hashtbl.find_opt t.tbl name with
      | Some m -> Option.map (fun x -> (name, x)) (pick name m)
      | None -> None)
    (names t)

let to_json (t : t) : string =
  let b = Buffer.create 1024 in
  let obj label entries render =
    Buffer.add_string b (Printf.sprintf "\"%s\":{" label);
    List.iteri
      (fun i (name, x) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":" name);
        render x)
      entries;
    Buffer.add_char b '}'
  in
  Buffer.add_char b '{';
  obj "counters"
    (sorted t (fun _ m -> match m with C c -> Some c.c | _ -> None))
    (fun c -> Buffer.add_string b (string_of_int c));
  Buffer.add_char b ',';
  obj "gauges"
    (sorted t (fun _ m -> match m with G g -> Some g.g | _ -> None))
    (fun g -> Buffer.add_string b (json_float g));
  Buffer.add_char b ',';
  obj "histograms"
    (sorted t (fun _ m -> match m with H h -> Some (hist_snapshot h) | _ -> None))
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "{\"count\":%d,\"nan\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"buckets\":["
           s.h_count s.h_nan (json_float s.h_sum) (json_float s.h_min) (json_float s.h_max));
      List.iteri
        (fun i (bound, n) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "[%s,%d]" (json_float bound) n))
        s.h_buckets;
      Buffer.add_string b "]}");
  Buffer.add_char b '}';
  Buffer.contents b
