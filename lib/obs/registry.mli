(** A typed metrics registry: named counters, gauges and histograms
    that can be snapshotted mid-run.

    Handles are created (or retrieved) by name; re-requesting a name
    returns the same underlying metric, and requesting an existing name
    with a different type raises [Invalid_argument]. Snapshots are
    deterministic: metrics are emitted sorted by name with fixed float
    formatting, so identical runs serialize bit-identically.

    Histograms use a fixed log-bucket layout: bucket 0 holds values
    below [lo], bucket k (1 <= k <= buckets) holds values in
    (lo * growth^(k-1), lo * growth^k], and one overflow bucket holds
    the rest. NaN observations are counted separately and never touch
    the buckets, sum, min or max. *)

type t

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : t -> ?lo:float -> ?growth:float -> ?buckets:int -> string -> histogram
(** Defaults: [lo = 1e-3], [growth = 2.0], [buckets = 36] - covering
    roughly a millisecond to 19 hours of sim-time. The layout is fixed
    at creation; a later lookup of the same name ignores the layout
    arguments. *)

val observe : histogram -> float -> unit

type hist_snapshot = {
  h_count : int;  (** finite observations *)
  h_nan : int;  (** NaN observations, excluded from everything else *)
  h_sum : float;
  h_min : float;  (** 0.0 when empty *)
  h_max : float;  (** 0.0 when empty *)
  h_buckets : (float * int) list;
      (** non-empty buckets as (upper bound, count); the overflow
          bucket reports [infinity] as its bound *)
}

val hist_snapshot : histogram -> hist_snapshot

(** {1 Snapshots} *)

val counter_value : t -> string -> int option
val gauge_value : t -> string -> float option
val histogram_value : t -> string -> hist_snapshot option

val names : t -> string list
(** All registered metric names, sorted. *)

val fingerprint : t -> string list
(** The registry's coverage fingerprint: one item per counter that
    fired (["c:name"]), per registered gauge (["g:name"]) and per
    populated histogram bucket (["h:name:i"]). Insensitive to the
    magnitudes themselves, so it identifies {e which} code paths a run
    exercised, not how hard - the novelty signal the simulation swarm
    feeds its corpus from. Sorted and deterministic. *)

val to_json : t -> string
(** The whole registry as one JSON object:
    [{"counters":{...},"gauges":{...},"histograms":{...}}], keys
    sorted, fixed float formatting. Never emits NaN or infinity
    tokens (the overflow bucket bound serializes as the string
    ["inf"]). *)
