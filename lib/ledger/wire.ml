(* A minimal deterministic serialization: length-prefixed byte fields
   and fixed-width integers. Canonical (one encoding per value), which
   is what hashing block and transaction contents requires. *)

let u64 (v : int) : string =
  String.init 8 (fun i -> Char.chr ((v lsr (8 * (7 - i))) land 0xff))

let read_u64 (s : string) (off : int) : int =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let field (s : string) : string = u64 (String.length s) ^ s

let concat (fields : string list) : string = String.concat "" (List.map field fields)

(* Inverse of [concat]. Length prefixes are attacker-controlled on the
   untrusted-ingress path, so the declared length is validated against
   the bytes actually present BEFORE any arithmetic that could overflow
   (a 16-byte frame may claim 2^60 bytes; [read_u64] can even surface a
   negative OCaml int). No allocation ever exceeds the input size. *)
let split (s : string) : string list =
  let n = String.length s in
  let rec go off acc =
    if off = n then List.rev acc
    else if off + 8 > n then invalid_arg "Wire.split: truncated length"
    else begin
      let len = read_u64 s off in
      if len < 0 || len > n - off - 8 then invalid_arg "Wire.split: truncated field"
      else go (off + 8 + len) (String.sub s (off + 8) len :: acc)
    end
  in
  go 0 []
