(* The pending-transaction pool each user maintains (Figure 1): users
   collect transactions from the gossip network so that, if selected as
   a block proposer, they have a block ready. Deduplicated by
   transaction id, drained in arrival order.

   The [seen] table tracks why an id is known:
     - [In_queue]: the transaction is pending, so a gossiped duplicate
       is dropped;
     - [Committed r]: it made it into the agreed block of round [r], so
       a replayed copy must not re-enter - but only until [expire]
       drops the id past the retention watermark (the chain's nonce
       rule rejects replays forever; the table is a fast-path cache,
       and keeping every id of a million-tx run would leak memory).

   [take] removes transactions *and their ids*: a transaction that
   leaves the pool uncommitted - e.g. into a proposal that then loses
   agreement - must be able to re-enter via gossip, or it is lost forever.
   Proposers therefore use the non-destructive [select]; commitment
   prunes pools via [remove_committed]. *)

type status = In_queue | Committed of int  (** the round that committed it *)

type t = {
  seen : (string, status) Hashtbl.t;
  queue : Transaction.t Queue.t;
  mutable bytes : int;
}

let create () = { seen = Hashtbl.create 64; queue = Queue.create (); bytes = 0 }

(* Returns true if the transaction was new. *)
let add (t : t) (tx : Transaction.t) : bool =
  let id = Transaction.id tx in
  if Hashtbl.mem t.seen id then false
  else begin
    Hashtbl.replace t.seen id In_queue;
    Queue.add tx t.queue;
    t.bytes <- t.bytes + Transaction.size_bytes tx;
    true
  end

let mem (t : t) (tx : Transaction.t) : bool = Hashtbl.mem t.seen (Transaction.id tx)

(* Select pending transactions up to [max_bytes] of serialized size
   without removing them - block proposers use this: a proposal may
   lose BA*, and only *committed* transactions should leave the pool
   (via [remove_committed]). *)
let select (t : t) ~(max_bytes : int) : Transaction.t list =
  let acc = ref [] and used = ref 0 and full = ref false in
  Queue.iter
    (fun tx ->
      if not !full then begin
        let sz = Transaction.size_bytes tx in
        if !used + sz > max_bytes then full := true
        else begin
          acc := tx :: !acc;
          used := !used + sz
        end
      end)
    t.queue;
  List.rev !acc

(* Take pending transactions up to [max_bytes] of serialized size,
   removing them from the pool - ids included, so an uncommitted taken
   transaction can re-enter later (the select/remove_committed
   contract above). *)
let take (t : t) ~(max_bytes : int) : Transaction.t list =
  let rec go acc used =
    match Queue.peek_opt t.queue with
    | None -> List.rev acc
    | Some tx ->
      let sz = Transaction.size_bytes tx in
      if used + sz > max_bytes then List.rev acc
      else begin
        ignore (Queue.pop t.queue);
        t.bytes <- t.bytes - sz;
        Hashtbl.remove t.seen (Transaction.id tx);
        go (tx :: acc) (used + sz)
      end
  in
  go [] 0

(* Drop transactions that made it into the agreed block of [round].
   Their ids stay [Committed round] until [expire] passes the
   watermark, so straggling gossip of a committed transaction does not
   re-enter the pool meanwhile. *)
let remove_committed (t : t) ~(round : int) (txs : Transaction.t list) : unit =
  List.iter
    (fun tx -> Hashtbl.replace t.seen (Transaction.id tx) (Committed round))
    txs;
  let keep = Queue.create () in
  Queue.iter
    (fun tx ->
      match Hashtbl.find_opt t.seen (Transaction.id tx) with
      | Some (Committed _) -> t.bytes <- t.bytes - Transaction.size_bytes tx
      | Some In_queue | None -> Queue.add tx keep)
    t.queue;
  Queue.clear t.queue;
  Queue.transfer keep t.queue

(* Evict committed ids below the watermark. Sustained traffic commits
   millions of transactions; without eviction [seen] grows without
   bound. Safe because the ledger's nonce rule rejects a replayed
   committed transaction at validation anyway - the id cache only
   short-circuits the common case. *)
let expire (t : t) ~(before_round : int) : unit =
  let stale =
    Hashtbl.fold
      (fun id status acc ->
        match status with
        | Committed r when r < before_round -> id :: acc
        | Committed _ | In_queue -> acc)
      t.seen []
  in
  List.iter (Hashtbl.remove t.seen) stale

(* Drop queued transactions the caller knows can never apply (e.g.
   nonce below the sender's committed nonce). Keeps the pool bounded
   under hostile duplicate/invalid workloads. Returns how many were
   dropped. *)
let prune (t : t) ~(stale : Transaction.t -> bool) : int =
  let keep = Queue.create () and dropped = ref 0 in
  Queue.iter
    (fun tx ->
      if stale tx then begin
        incr dropped;
        t.bytes <- t.bytes - Transaction.size_bytes tx;
        Hashtbl.remove t.seen (Transaction.id tx)
      end
      else Queue.add tx keep)
    t.queue;
  Queue.clear t.queue;
  Queue.transfer keep t.queue;
  !dropped

let size (t : t) : int = Queue.length t.queue
let bytes (t : t) : int = t.bytes
let seen_ids (t : t) : int = Hashtbl.length t.seen
