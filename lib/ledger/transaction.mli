(** Signed payment transactions. The per-sender [nonce] equals the
    sender's sequence number at application time, which is the ledger's
    replay/double-spend rejection rule. *)

open Algorand_crypto

type t = {
  sender : string;  (** public key *)
  recipient : string;
  amount : int;
  nonce : int;
  signature : string;
}

val make :
  signer:Signature_scheme.signer ->
  sender:string ->
  recipient:string ->
  amount:int ->
  nonce:int ->
  t
(** @raise Invalid_argument on negative amounts. *)

val max_key_bytes : int
val max_signature_bytes : int
(** Hostile-input field bounds enforced by [deserialize]. *)

val serialize : t -> string

val deserialize : string -> t option
(** Total on arbitrary bytes: rejects malformed integer fields and
    oversize key/signature fields instead of raising. *)

val id : t -> string
(** SHA-256 of the canonical serialization. *)

val verify_signature :
  ?sig_pk_of:(string -> string) -> scheme:Signature_scheme.scheme -> t -> bool
(** [sig_pk_of] projects the account key onto the signature key
    (composite identities carry sig_pk || vrf_pk); defaults to the
    identity function. *)

val verify_batch :
  ?sig_pk_of:(string -> string) ->
  scheme:Signature_scheme.scheme ->
  t list ->
  bool
(** All signatures checked with one [Signature_scheme.verify_batch]
    call (the block-validation fast path). Accepts iff every signature
    is valid; the empty batch is valid. *)

val filter_valid_batch :
  ?sig_pk_of:(string -> string) ->
  scheme:Signature_scheme.scheme ->
  t list ->
  t list * t list
(** Block assembly: (valid, rejected) split, batch-verified with a
    bisection fallback so one corruption costs O(log n) batch
    equations. Preserves order. *)

val size_bytes : t -> int

val pp : Format.formatter -> t -> unit
(** Total, including on hostile short keys. *)
