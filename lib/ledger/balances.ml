(* The account state derived from a chain prefix: per-key balances (the
   sortition weights of section 5.1) and per-key nonces.

   Sharding: accounts are hash-partitioned across [2^shard_bits]
   sub-maps so that block validation can check the shards in parallel
   (one domain per shard) and so a million-account state never funnels
   every update through one comparison path. Each shard is still a
   persistent map, so fork branches share prefixes cheaply: applying a
   transaction copies the (small) shard array and replaces one or two
   shard records, leaving every untouched shard physically shared.

   Observable state is independent of the shard count: [balance],
   [nonce], [total], [weights] and the apply functions agree bit for
   bit between a 1-shard and a 256-shard ledger (the conservation
   oracle in test_ledger checks this). *)

module Smap = Map.Make (String)

type shard = { balances : int Smap.t; nonces : int Smap.t }

let empty_shard = { balances = Smap.empty; nonces = Smap.empty }

type t = {
  shards : shard array;  (** length is a power of two; never mutated in place *)
  mask : int;  (** [Array.length shards - 1] *)
  total : int;
}

let default_shards = 8
let max_shards = 256

(* Round up to a power of two within [1, max_shards]. *)
let normalize_shards (n : int) : int =
  let n = max 1 (min n max_shards) in
  let rec up p = if p >= n then p else up (p * 2) in
  up 1

let create ~(shards : int) : t =
  let n = normalize_shards shards in
  { shards = Array.make n empty_shard; mask = n - 1; total = 0 }

let empty = create ~shards:default_shards

let shard_count (t : t) : int = Array.length t.shards

(* FNV-1a (32-bit constants, which fit OCaml's 63-bit int) over the
   key: deterministic across runs and OCaml versions (unlike
   [Hashtbl.hash]), cheap, and good enough to spread public keys
   (which are hashes or curve points already) over <= 256 shards. *)
let shard_of_key (t : t) (pk : string) : int =
  let h = ref 0x811c9dc5 in
  for i = 0 to String.length pk - 1 do
    h := (!h lxor Char.code pk.[i]) * 0x01000193 land 0x3fffffff
  done;
  !h land t.mask

let shard (t : t) (pk : string) : shard = t.shards.(shard_of_key t pk)

let balance (t : t) (pk : string) : int =
  match Smap.find_opt pk (shard t pk).balances with Some b -> b | None -> 0

let nonce (t : t) (pk : string) : int =
  match Smap.find_opt pk (shard t pk).nonces with Some n -> n | None -> 0

let total (t : t) : int = t.total

(* Replace one shard; the array copy is a handful of words, the maps
   are shared. *)
let with_shard (t : t) (i : int) (s : shard) : t =
  let shards = Array.copy t.shards in
  shards.(i) <- s;
  { t with shards }

let credit (t : t) (pk : string) (amount : int) : t =
  let i = shard_of_key t pk in
  let s = t.shards.(i) in
  let prev = match Smap.find_opt pk s.balances with Some b -> b | None -> 0 in
  let t = with_shard t i { s with balances = Smap.add pk (prev + amount) s.balances } in
  { t with total = t.total + amount }

type tx_error = [ `Bad_nonce of int * int | `Insufficient_balance of int * int ]

let pp_tx_error fmt = function
  | `Bad_nonce (expected, got) -> Format.fprintf fmt "bad nonce: expected %d, got %d" expected got
  | `Insufficient_balance (have, want) ->
    Format.fprintf fmt "insufficient balance: have %d, want %d" have want

(* Swarm fault seeding: when set, [apply_tx] reintroduces the PR 8
   self-payment inflation bug (credit read from the pre-debit map, so
   paying yourself mints coins). Exists solely so the simulation swarm
   and its tests can prove, end to end, that a real historical bug is
   found, shrunk and reported by the conservation audit. Never set
   outside tests. *)
let chaos_selfpay_inflation : bool ref = ref false

(* Validate and apply one transaction.

   The debit is written before the credit is read, so a self-payment
   (sender = recipient) reads the already-debited balance and nets to
   zero. (The original implementation read the recipient's balance
   from the pre-debit map, so a self-payment of X minted X coins -
   silent sortition-weight inflation.) *)
let apply_tx (t : t) (tx : Transaction.t) : (t, tx_error) result =
  let expected = nonce t tx.sender in
  if tx.nonce <> expected then Error (`Bad_nonce (expected, tx.nonce))
  else begin
    let have = balance t tx.sender in
    if have < tx.amount then Error (`Insufficient_balance (have, tx.amount))
    else begin
      let si = shard_of_key t tx.sender in
      let s = t.shards.(si) in
      let pre_debit_recipient =
        if !chaos_selfpay_inflation then
          match Smap.find_opt tx.recipient (shard t tx.recipient).balances with
          | Some b -> Some b
          | None -> Some 0
        else None
      in
      let t =
        with_shard t si
          {
            balances = Smap.add tx.sender (have - tx.amount) s.balances;
            nonces = Smap.add tx.sender (expected + 1) s.nonces;
          }
      in
      (* Credit against the *updated* state: for sender = recipient this
         reads [have - amount], restoring exactly [have]. *)
      let ri = shard_of_key t tx.recipient in
      let r = t.shards.(ri) in
      let rprev =
        match pre_debit_recipient with
        | Some b -> b  (* chaos hook: the historical pre-debit read *)
        | None -> (
          match Smap.find_opt tx.recipient r.balances with Some b -> b | None -> 0)
      in
      Ok
        (with_shard t ri
           { r with balances = Smap.add tx.recipient (rprev + tx.amount) r.balances })
    end
  end

let apply_all (t : t) (txs : Transaction.t list) : (t, tx_error) result =
  List.fold_left
    (fun acc tx -> Result.bind acc (fun st -> apply_tx st tx))
    (Ok t) txs

(* ------------------------------------------------------------------ *)
(* Parallel per-shard block validation.                                *)
(* ------------------------------------------------------------------ *)

(* [apply_block] computes exactly [apply_all] but checks the shards in
   parallel when the block is big enough to pay for the domains.

   Soundness: nonces are exact per shard (all of one sender's
   transactions live in its shard and are scanned in block order). The
   balance check is *conservative*: each sender's cumulative debits
   must be covered by its balance at the start of the block, ignoring
   credits received inside the block. If every shard passes, the
   sequential application also succeeds - at any prefix the sender's
   live balance is >= start - debits_so_far, and the conservative rule
   guarantees debits_so_far + amount <= start - and the final state is
   the same net sums, so we can build it by folding debits, nonces and
   credits per shard. If any shard fails conservatively, the block may
   still be valid by spending intra-block credits, so we fall back to
   the exact sequential path. Either way the result is bit-identical
   to [apply_all]. *)

let parallel_threshold = 256
(* Below this many transactions, parallel dispatch overhead dominates. *)

(* A tiny persistent domain pool for the per-shard checks. Spawning a
   domain costs on the order of a millisecond - about what a whole
   shard's worth of work costs on a 1024-transaction block - so
   per-block Domain.spawn makes "parallel" validation slower than
   sequential. Workers are spawned once, lazily, on the first block big
   enough to want them (after any daemonizing fork), and live for the
   process. *)
module Pool = struct
  let mutex = Mutex.create ()
  let cond = Condition.create ()
  let jobs : (unit -> unit) Queue.t = Queue.create ()
  let size = ref 0

  let worker () =
    while true do
      Mutex.lock mutex;
      while Queue.is_empty jobs do
        Condition.wait cond mutex
      done;
      let job = Queue.pop jobs in
      Mutex.unlock mutex;
      job ()
    done

  (* Returns the worker count, starting the pool on first use. *)
  let ensure () : int =
    Mutex.lock mutex;
    if !size = 0 then begin
      size := max 1 (min 8 (Domain.recommended_domain_count () - 1));
      for _ = 1 to !size do
        ignore (Domain.spawn worker)
      done
    end;
    let n = !size in
    Mutex.unlock mutex;
    n

  let submit (job : unit -> unit) : unit =
    Mutex.lock mutex;
    Queue.add job jobs;
    Condition.signal cond;
    Mutex.unlock mutex
end

(* One shard's sequential pass: exact nonce check, conservative
   cumulative-debit check. Returns the updated shard (debits + nonces
   applied) or the first error. *)
let check_shard_debits (s : shard) (txs : Transaction.t list) :
    (shard, tx_error) result =
  let rec go (s : shard) = function
    | [] -> Ok s
    | (tx : Transaction.t) :: rest ->
      let expected =
        match Smap.find_opt tx.sender s.nonces with Some n -> n | None -> 0
      in
      if tx.nonce <> expected then Error (`Bad_nonce (expected, tx.nonce))
      else begin
        (* The evolving balance here is start - debits_so_far (credits
           are deliberately absent), so requiring [amount <= have] is
           exactly the conservative cumulative-debit rule. *)
        let have =
          match Smap.find_opt tx.sender s.balances with Some b -> b | None -> 0
        in
        if tx.amount > have then Error (`Insufficient_balance (have, tx.amount))
        else
          go
            {
              balances = Smap.add tx.sender (have - tx.amount) s.balances;
              nonces = Smap.add tx.sender (expected + 1) s.nonces;
            }
            rest
      end
  in
  go s txs

let apply_credits (s : shard) (credits : (string * int) list) : shard =
  List.fold_left
    (fun (s : shard) (pk, amount) ->
      let prev = match Smap.find_opt pk s.balances with Some b -> b | None -> 0 in
      { s with balances = Smap.add pk (prev + amount) s.balances })
    s credits

let apply_block ?(parallel = true) (t : t) (txs : Transaction.t list) :
    (t, tx_error) result =
  let n_txs = List.length txs in
  let n_shards = Array.length t.shards in
  if n_txs < parallel_threshold || n_shards = 1 then apply_all t txs
  else begin
    (* Group by sender shard (debit side) and recipient shard (credit
       side), preserving block order within each group. *)
    let by_sender = Array.make n_shards [] in
    let by_recipient = Array.make n_shards [] in
    List.iter
      (fun (tx : Transaction.t) ->
        let si = shard_of_key t tx.sender in
        by_sender.(si) <- tx :: by_sender.(si);
        let ri = shard_of_key t tx.recipient in
        by_recipient.(ri) <- (tx.recipient, tx.amount) :: by_recipient.(ri))
      txs;
    let run (i : int) : (shard, tx_error) result =
      check_shard_debits t.shards.(i) (List.rev by_sender.(i))
    in
    let results =
      if parallel then begin
        (* Feed shards 1..n-1 to the pool, run shard 0 inline, then wait
           for the stragglers on a countdown. *)
        ignore (Pool.ensure ());
        let results = Array.make n_shards (Ok empty_shard) in
        let remaining = ref n_shards in
        let done_mutex = Mutex.create () in
        let done_cond = Condition.create () in
        let finish i r =
          Mutex.lock done_mutex;
          results.(i) <- r;
          decr remaining;
          if !remaining = 0 then Condition.signal done_cond;
          Mutex.unlock done_mutex
        in
        for i = 1 to n_shards - 1 do
          Pool.submit (fun () ->
              (* A raised exception would hang the countdown; degrade to
                 an error, which just means the sequential fallback. *)
              finish i (try run i with _ -> Error (`Insufficient_balance (0, 0))))
        done;
        finish 0 (run 0);
        Mutex.lock done_mutex;
        while !remaining > 0 do
          Condition.wait done_cond done_mutex
        done;
        Mutex.unlock done_mutex;
        Array.to_list results
      end
      else List.init n_shards run
    in
    (* Any conservative failure: fall back to the exact sequential
       semantics (the block may spend credits received earlier in the
       same block). *)
    if List.exists Result.is_error results then apply_all t txs
    else begin
      let shards =
        Array.of_list (List.map (function Ok s -> s | Error _ -> assert false) results)
      in
      Array.iteri
        (fun i credits -> shards.(i) <- apply_credits shards.(i) (List.rev credits))
        by_recipient;
      Ok { t with shards }
    end
  end

(* ------------------------------------------------------------------ *)

(* Sorted like the pre-sharding single map: a global merge of the
   per-shard (individually sorted) bindings, so sortition iteration
   order is independent of the shard count. *)
let weights (t : t) : (string * int) list =
  let cmp (a, _) (b, _) = String.compare a b in
  Array.fold_left
    (fun acc s -> List.merge cmp acc (Smap.bindings s.balances))
    [] t.shards

let holders (t : t) : int =
  Array.fold_left (fun acc s -> acc + Smap.cardinal s.balances) 0 t.shards

(* The money-conservation invariant: [total] must equal the actual map
   sum, and no balance may be negative. [apply_tx] preserves it by
   construction; the randomized oracle in test_ledger drives arbitrary
   valid/invalid sequences (including self-payments) through it. *)
let invariant (t : t) : bool =
  let sum = ref 0 and ok = ref true in
  Array.iter
    (fun s ->
      Smap.iter
        (fun _ b ->
          if b < 0 then ok := false;
          sum := !sum + b)
        s.balances)
    t.shards;
  !ok && !sum = t.total
