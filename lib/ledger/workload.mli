(** Deterministic hostile transaction workload generator: Zipf hot-key
    skew, configurable invalid / duplicate / self-payment mixes, and
    square-wave arrival bursts, all replayable from a seed via a
    self-contained splitmix64 stream (no dependency on the simulator's
    RNG, stable across processes). *)

module Scheme = Algorand_crypto.Signature_scheme

type mix = {
  invalid : float;  (** unappliable: bad nonce or overdraft, alternating *)
  duplicate : float;  (** byte-identical re-emission of a recent transaction *)
  self_pay : float;  (** sender = recipient (valid; must conserve money) *)
}
(** Category probabilities; the remainder is plain valid payments.
    The caller keeps [invalid +. duplicate +. self_pay <= 1.0]. *)

val clean : mix
(** All-valid traffic. *)

val hostile : mix
(** 10% invalid, 10% duplicates, 5% self-payments. *)

type burst = {
  period_s : float;  (** square-wave period *)
  duty : float;  (** fraction of each period spent bursting *)
  mult : float;  (** arrival-rate multiplier inside the burst window *)
}

type accounts =
  | Synthetic of { n : int; scheme : Scheme.scheme }
      (** [n] accounts with scheme keys derived from the workload seed *)
  | Provided of { pks : string array; signers : Scheme.signer array }
      (** existing accounts (e.g. the harness's node identities) *)

type config = {
  accounts : accounts;
  zipf_s : float;  (** 0.0 = uniform; 1.0+ = heavy hot-key skew *)
  mix : mix;
  burst : burst option;
  amount : int;  (** per-payment amount for valid transfers *)
  seed : int;
}

val default_config : config
(** 1000 synthetic sim-scheme accounts, uniform, clean, no bursts. *)

type stats = {
  generated : int;
  valid : int;
  invalid : int;
  duplicate : int;
  self_pay : int;
}

type t

val create : config -> t
(** Builds the account population (synthetic keys are derived from the
    seed; signers are materialized lazily, so a million cold accounts
    cost only their public keys).
    @raise Invalid_argument on an empty population or mismatched
    [Provided] arrays. *)

val n_accounts : t -> int
val account_pk : t -> int -> string

val next : t -> Transaction.t * int
(** The next transaction in the stream and the index of the account it
    originates from (for duplicates, the original sender). Valid and
    self-pay transactions consume the tracked per-account nonce;
    invalid and duplicate ones do not. *)

val next_n : t -> int -> Transaction.t list

val interarrival : t -> now:float -> rate_per_s:float -> float
(** Exponential interarrival at the burst-modulated effective rate:
    Poisson traffic within each square-wave regime. *)

val stats : t -> stats

val allocations : t -> stake:int -> (string * int) list
(** Genesis allocation list crediting every account [stake]. *)

val initial_balances : t -> stake:int -> shards:int -> Balances.t
(** [allocations] folded into a fresh sharded balance map. *)
