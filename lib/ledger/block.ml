(* Blocks (section 8.1): a list of transactions plus the metadata BA*
   needs - round number, the proposer's VRF-based seed for round r+1,
   the previous block's hash, a proposal timestamp, and the proposer's
   sortition credentials (section 6).

   The designated *empty block* for a round, Empty(round, prev_hash),
   is deterministic: every user can construct it locally, so agreeing
   on its hash needs no block transfer. Empty blocks carry no seed;
   the seed for the next round is then derived publicly as
   H(seed_r || r+1) (section 5.2).

   [padding] models payload bytes without materializing them: the
   evaluation sweeps block sizes up to 10 MB, and carrying real 10 MB
   strings through a simulated gossip network would only burn memory.
   Padding is covered by the hash (its length is serialized), so two
   blocks with different padding have different hashes. *)

open Algorand_crypto

type header = {
  round : int;
  prev_hash : string;
  timestamp : float;
  seed : string;  (** proposed seed for the next round (empty for empty blocks) *)
  seed_proof : string;
  proposer_pk : string;  (** empty for empty blocks *)
  proposer_vrf_hash : string;
  proposer_vrf_proof : string;
}

type t = { header : header; txs : Transaction.t list; padding : int }

let serialize_header (h : header) : string =
  Wire.concat
    [
      Wire.u64 h.round;
      h.prev_hash;
      Wire.u64 (int_of_float (h.timestamp *. 1000.0));
      h.seed;
      h.seed_proof;
      h.proposer_pk;
      h.proposer_vrf_hash;
      h.proposer_vrf_proof;
    ]

(* Blocks commit to their transactions through a Merkle root, so the
   block hash is recomputable from the header summary alone and a light
   client can check payment inclusion with a logarithmic proof. *)
let tx_root (b : t) : string = Merkle.root (List.map Transaction.id b.txs)

let hash (b : t) : string =
  Sha256.digest_concat [ serialize_header b.header; Wire.u64 b.padding; tx_root b ]

(* The header-only view a light client stores: enough to recompute the
   block hash and verify transaction inclusion proofs. *)
type summary = { s_header : header; s_padding : int; s_tx_root : string }

let summarize (b : t) : summary =
  { s_header = b.header; s_padding = b.padding; s_tx_root = tx_root b }

let hash_of_summary (s : summary) : string =
  Sha256.digest_concat [ serialize_header s.s_header; Wire.u64 s.s_padding; s.s_tx_root ]

(* The build-once tree over the block's transaction ids: its root is
   [tx_root], and a proof server amortizes it across requests
   (O(n + k log n) for k proofs instead of O(k n)). *)
let tx_tree (b : t) : Merkle.tree = Merkle.build (List.map Transaction.id b.txs)

let prove_tx (b : t) ~(tx_id : string) : Merkle.proof option =
  let ids = List.map Transaction.id b.txs in
  let rec find i = function
    | [] -> None
    | id :: rest -> if String.equal id tx_id then Some i else find (i + 1) rest
  in
  Option.bind (find 0 ids) (fun index -> Merkle.prove_tree (tx_tree b) ~index)

let summary_contains (s : summary) ~(tx_id : string) (proof : Merkle.proof) : bool =
  Merkle.verify ~root:s.s_tx_root ~leaf:tx_id proof

let empty ~(round : int) ~(prev_hash : string) : t =
  {
    header =
      {
        round;
        prev_hash;
        timestamp = 0.0;
        seed = "";
        seed_proof = "";
        proposer_pk = "";
        proposer_vrf_hash = "";
        proposer_vrf_proof = "";
      };
    txs = [];
    padding = 0;
  }

let is_empty (b : t) : bool = String.equal b.header.proposer_pk ""

let header_size_bytes = 200
(* Approximate wire size of the header fields; close enough for the
   bandwidth model, which cares about the MB-scale payload. *)

let size_bytes (b : t) : int =
  header_size_bytes
  + List.fold_left (fun acc tx -> acc + Transaction.size_bytes tx) 0 b.txs
  + b.padding

let round (b : t) = b.header.round
let prev_hash (b : t) = b.header.prev_hash

let pp fmt (b : t) =
  Format.fprintf fmt "block r=%d %s txs=%d size=%dB"
    b.header.round
    (if is_empty b then "(empty)" else Hex.of_string (String.sub (hash b) 0 4))
    (List.length b.txs) (size_bytes b)
