(* Signed payment transactions. Each payment moves [amount] currency
   units from [sender] to [recipient]; the per-sender [nonce] makes
   every transaction unique and gives the ledger a replay/double-spend
   rejection rule (a transaction is valid only when its nonce equals
   the sender's current sequence number). *)

open Algorand_crypto

type t = {
  sender : string;  (** public key *)
  recipient : string;  (** public key *)
  amount : int;
  nonce : int;
  signature : string;
}

let body ~sender ~recipient ~amount ~nonce =
  Wire.concat [ "pay"; sender; recipient; Wire.u64 amount; Wire.u64 nonce ]

let make ~(signer : Signature_scheme.signer) ~sender ~recipient ~amount ~nonce : t =
  if amount < 0 then invalid_arg "Transaction.make: negative amount";
  let signature = signer.sign (body ~sender ~recipient ~amount ~nonce) in
  { sender; recipient; amount; nonce; signature }

let serialize (t : t) : string =
  Wire.concat [ t.sender; t.recipient; Wire.u64 t.amount; Wire.u64 t.nonce; t.signature ]

(* Hostile-input safe: integer fields must be exactly 8 bytes (a short
   field would make [read_u64] raise outside the exception guard, which
   only covers the [Wire.split] scrutinee) and non-negative, matching
   the invariant [make] enforces. *)
let deserialize (s : string) : t option =
  match Wire.split s with
  | [ sender; recipient; amount; nonce; signature ]
    when String.length amount = 8 && String.length nonce = 8 ->
    let amount = Wire.read_u64 amount 0 and nonce = Wire.read_u64 nonce 0 in
    if amount < 0 || nonce < 0 then None
    else Some { sender; recipient; amount; nonce; signature }
  | _ | (exception Invalid_argument _) -> None

let id (t : t) : string = Sha256.digest (serialize t)

let verify_signature ~(scheme : Signature_scheme.scheme) (t : t) : bool =
  scheme.verify ~pk:t.sender
    ~msg:(body ~sender:t.sender ~recipient:t.recipient ~amount:t.amount ~nonce:t.nonce)
    ~signature:t.signature

let size_bytes (t : t) : int = String.length (serialize t)

let pp fmt (t : t) =
  Format.fprintf fmt "%s -> %s : %d (nonce %d)"
    (Hex.of_string (String.sub t.sender 0 4))
    (Hex.of_string (String.sub t.recipient 0 4))
    t.amount t.nonce
