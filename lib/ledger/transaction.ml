(* Signed payment transactions. Each payment moves [amount] currency
   units from [sender] to [recipient]; the per-sender [nonce] makes
   every transaction unique and gives the ledger a replay/double-spend
   rejection rule (a transaction is valid only when its nonce equals
   the sender's current sequence number). *)

open Algorand_crypto

type t = {
  sender : string;  (** public key *)
  recipient : string;  (** public key *)
  amount : int;
  nonce : int;
  signature : string;
}

(* Hostile-input bounds, shared by [deserialize] and the codec: keys
   are 32-byte scheme keys or 64-byte composite identities, signatures
   are 32 (sim) or 64 (ed25519) bytes. Anything larger is garbage and
   would otherwise let one mutated frame allocate per-field
   megabytes. *)
let max_key_bytes = 128
let max_signature_bytes = 128

let body ~sender ~recipient ~amount ~nonce =
  Wire.concat [ "pay"; sender; recipient; Wire.u64 amount; Wire.u64 nonce ]

let make ~(signer : Signature_scheme.signer) ~sender ~recipient ~amount ~nonce : t =
  if amount < 0 then invalid_arg "Transaction.make: negative amount";
  let signature = signer.sign (body ~sender ~recipient ~amount ~nonce) in
  { sender; recipient; amount; nonce; signature }

let serialize (t : t) : string =
  Wire.concat [ t.sender; t.recipient; Wire.u64 t.amount; Wire.u64 t.nonce; t.signature ]

(* Hostile-input safe: integer fields must be exactly 8 bytes (a short
   field would make [read_u64] raise outside the exception guard, which
   only covers the [Wire.split] scrutinee) and non-negative, matching
   the invariant [make] enforces; string fields are length-bounded. *)
let deserialize (s : string) : t option =
  match Wire.split s with
  | [ sender; recipient; amount; nonce; signature ]
    when String.length amount = 8
         && String.length nonce = 8
         && String.length sender <= max_key_bytes
         && String.length recipient <= max_key_bytes
         && String.length signature <= max_signature_bytes ->
    let amount = Wire.read_u64 amount 0 and nonce = Wire.read_u64 nonce 0 in
    if amount < 0 || nonce < 0 then None
    else Some { sender; recipient; amount; nonce; signature }
  | _ | (exception Invalid_argument _) -> None

let id (t : t) : string = Sha256.digest (serialize t)

let verify_signature ?(sig_pk_of = Fun.id) ~(scheme : Signature_scheme.scheme) (t : t) :
    bool =
  scheme.verify ~pk:(sig_pk_of t.sender)
    ~msg:(body ~sender:t.sender ~recipient:t.recipient ~amount:t.amount ~nonce:t.nonce)
    ~signature:t.signature

(* Batch signature checking (the block-validation fast path): all
   transactions of a block are checked with one call to the scheme's
   [verify_batch] - for ed25519 a single random-linear-combination
   equation, several times cheaper per signature than [verify].
   [sig_pk_of] projects the ledger's account key onto the signature
   key (composite identities carry sig_pk || vrf_pk). *)
let signature_triple ?(sig_pk_of = Fun.id) (t : t) : string * string * string =
  ( sig_pk_of t.sender,
    body ~sender:t.sender ~recipient:t.recipient ~amount:t.amount ~nonce:t.nonce,
    t.signature )

let verify_batch ?sig_pk_of ~(scheme : Signature_scheme.scheme) (txs : t list) : bool =
  scheme.verify_batch (List.map (signature_triple ?sig_pk_of) txs)

(* Block assembly: keep the transactions whose signatures check,
   paying the batch price when everything is clean and falling back to
   bisection when it is not - one corrupted signature in a batch of n
   costs O(log n) extra batch equations, not n single verifications.
   Order is preserved. Returns (valid, rejected). *)
let filter_valid_batch ?sig_pk_of ~(scheme : Signature_scheme.scheme) (txs : t list) :
    t list * t list =
  let rec split_filter (txs : t list) : t list * t list =
    match txs with
    | [] -> ([], [])
    | [ tx ] ->
      if verify_signature ?sig_pk_of ~scheme tx then ([ tx ], []) else ([], [ tx ])
    | _ ->
      if verify_batch ?sig_pk_of ~scheme txs then (txs, [])
      else begin
        let n = List.length txs in
        let left = List.filteri (fun i _ -> i < n / 2) txs in
        let right = List.filteri (fun i _ -> i >= n / 2) txs in
        let lv, lr = split_filter left in
        let rv, rr = split_filter right in
        (lv @ rv, lr @ rr)
      end
  in
  split_filter txs

let size_bytes (t : t) : int = String.length (serialize t)

(* Total on hostile input: [deserialize] accepts any-length keys up to
   the bound, including keys shorter than the 4-byte preview. *)
let pp fmt (t : t) =
  let short s = Hex.of_string (String.sub s 0 (min 4 (String.length s))) in
  Format.fprintf fmt "%s -> %s : %d (nonce %d)" (short t.sender) (short t.recipient)
    t.amount t.nonce
