(* Deterministic hostile transaction workload (section 10 scale runs).

   Generates payment traffic against a population of accounts with the
   shapes that hurt a ledger in practice:

     - Zipf hot-key skew: account popularity follows rank^(-s), so a
       few accounts absorb most of the traffic and their shards see
       contention while the long tail stays cold;
     - configurable invalid / duplicate / self-payment mixes, the
       admission-control workload (proposers must filter, pools must
       dedup, and self-pays must not mint money);
     - square-wave bursts that multiply the arrival rate for a duty
       fraction of each period, stressing pool bounds and batch sizes.

   Everything is driven by a self-contained splitmix64 generator so a
   (config, seed) pair replays the identical stream on any OCaml - the
   ledger library cannot depend on the simulator's RNG, and benches
   need streams that are stable across processes. *)

module Scheme = Algorand_crypto.Signature_scheme

type mix = {
  invalid : float;  (** unappliable: bad nonce or overdraft, alternating *)
  duplicate : float;  (** byte-identical re-emission of a recent transaction *)
  self_pay : float;  (** sender = recipient (valid; must conserve money) *)
}

let clean = { invalid = 0.0; duplicate = 0.0; self_pay = 0.0 }
let hostile = { invalid = 0.1; duplicate = 0.1; self_pay = 0.05 }

type burst = {
  period_s : float;  (** square-wave period *)
  duty : float;  (** fraction of each period spent bursting *)
  mult : float;  (** arrival-rate multiplier inside the burst window *)
}

type accounts =
  | Synthetic of { n : int; scheme : Scheme.scheme }
      (** [n] accounts with scheme keys derived from the workload seed *)
  | Provided of { pks : string array; signers : Scheme.signer array }
      (** existing accounts (e.g. the harness's node identities) *)

type config = {
  accounts : accounts;
  zipf_s : float;  (** 0.0 = uniform; 1.0+ = heavy hot-key skew *)
  mix : mix;
  burst : burst option;
  amount : int;  (** per-payment amount for valid transfers *)
  seed : int;
}

let default_config =
  { accounts = Synthetic { n = 1000; scheme = Scheme.sim };
    zipf_s = 0.0;
    mix = clean;
    burst = None;
    amount = 1;
    seed = 1 }

type stats = {
  generated : int;
  valid : int;
  invalid : int;
  duplicate : int;
  self_pay : int;
}

(* Ring of recently emitted valid transactions, the duplicate pool. *)
let recent_capacity = 1024

type t = {
  cfg : config;
  pks : string array;
  signers : Scheme.signer option array;  (** lazily built for [Synthetic] *)
  nonces : int array;
  cdf : float array;  (** Zipf CDF over account ranks; [||] = uniform *)
  mutable state : int64;
  recent : (Transaction.t * int) option array;
  mutable recent_pos : int;
  mutable recent_len : int;
  mutable generated : int;
  mutable n_valid : int;
  mutable n_invalid : int;
  mutable n_duplicate : int;
  mutable n_self_pay : int;
}

(* splitmix64: tiny, splittable-quality, endianness-free. *)
let next_u64 (t : t) : int64 =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let float01 (t : t) : float =
  Int64.to_float (Int64.shift_right_logical (next_u64 t) 11) *. 0x1.0p-53

let int_below (t : t) (n : int) : int =
  if n <= 0 then 0 else min (n - 1) (int_of_float (float01 t *. float_of_int n))

let n_accounts (t : t) : int = Array.length t.pks

let account_pk (t : t) (i : int) : string = t.pks.(i)

let signer_for (t : t) (i : int) : Scheme.signer =
  match t.signers.(i) with
  | Some s -> s
  | None ->
    let scheme =
      match t.cfg.accounts with
      | Synthetic { scheme; _ } -> scheme
      | Provided _ -> assert false
    in
    let signer, _pk =
      scheme.Scheme.generate ~seed:(Printf.sprintf "wl-%d-acct-%d" t.cfg.seed i)
    in
    t.signers.(i) <- Some signer;
    signer

let create (cfg : config) : t =
  let pks, signers =
    match cfg.accounts with
    | Provided { pks; signers } ->
      if Array.length pks <> Array.length signers then
        invalid_arg "Workload.create: pks/signers length mismatch";
      (Array.copy pks, Array.map Option.some signers)
    | Synthetic { n; scheme } ->
      if n <= 0 then invalid_arg "Workload.create: need at least one account";
      (* Keys are derived, not random, so the account set replays; the
         signer closures are filled in lazily because only the hot
         ranks of a skewed run ever sign anything. *)
      let pks =
        Array.init n (fun i ->
            let _signer, pk =
              scheme.Scheme.generate
                ~seed:(Printf.sprintf "wl-%d-acct-%d" cfg.seed i)
            in
            pk)
      in
      (pks, Array.make n None)
  in
  let n = Array.length pks in
  let cdf =
    if cfg.zipf_s <= 0.0 then [||]
    else begin
      let w = Array.init n (fun i -> (float_of_int (i + 1)) ** -.cfg.zipf_s) in
      let acc = ref 0.0 in
      let c = Array.map (fun x -> acc := !acc +. x; !acc) w in
      let total = !acc in
      Array.map (fun x -> x /. total) c
    end
  in
  {
    cfg;
    pks;
    signers;
    nonces = Array.make n 0;
    cdf;
    state = Int64.of_int ((cfg.seed * 2) + 1);
    recent = Array.make recent_capacity None;
    recent_pos = 0;
    recent_len = 0;
    generated = 0;
    n_valid = 0;
    n_invalid = 0;
    n_duplicate = 0;
    n_self_pay = 0;
  }

(* Zipf draw: binary search the CDF for a uniform variate. Rank 0 is
   the hottest account. *)
let draw_account (t : t) : int =
  let n = n_accounts t in
  if Array.length t.cdf = 0 then int_below t n
  else begin
    let u = float01 t in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
  end

let remember (t : t) (tx : Transaction.t) (origin : int) : unit =
  t.recent.(t.recent_pos) <- Some (tx, origin);
  t.recent_pos <- (t.recent_pos + 1) mod recent_capacity;
  t.recent_len <- min recent_capacity (t.recent_len + 1)

let make_tx (t : t) ~(sender : int) ~(recipient : int) ~(amount : int)
    ~(nonce : int) : Transaction.t =
  Transaction.make ~signer:(signer_for t sender) ~sender:t.pks.(sender)
    ~recipient:t.pks.(recipient) ~amount ~nonce

(* An amount no honest balance can cover: genesis totals are bounded by
   max_int, so half of it always overdrafts. *)
let overdraft_amount = max_int / 2

let next (t : t) : Transaction.t * int =
  t.generated <- t.generated + 1;
  let n = n_accounts t in
  let m = t.cfg.mix in
  let u = float01 t in
  let category =
    if u < m.duplicate then
      (* Until the ring has something to echo, duplicates degrade to
         fresh valid payments (never to another hostile category). *)
      if t.recent_len > 0 then `Duplicate else `Valid
    else if u < m.duplicate +. m.invalid then `Invalid
    else if u < m.duplicate +. m.invalid +. m.self_pay then `Self_pay
    else `Valid
  in
  match category with
  | `Duplicate -> begin
    (* Re-emit a recent transaction byte-for-byte (replay attack /
       gossip echo). *)
    match t.recent.(int_below t t.recent_len) with
    | Some (tx, origin) ->
      t.n_duplicate <- t.n_duplicate + 1;
      (tx, origin)
    | None -> assert false
  end
  | `Invalid ->
    (* Alternate the two rejection paths: future nonce and overdraft.
       Neither consumes the tracked nonce - the account's next valid
       payment still applies. *)
    let a = draw_account t in
    let b = if n = 1 then a else (a + 1 + int_below t (n - 1)) mod n in
    let tx =
      if t.generated land 1 = 0 then
        make_tx t ~sender:a ~recipient:b ~amount:t.cfg.amount
          ~nonce:(t.nonces.(a) + 1_000_000)
      else
        make_tx t ~sender:a ~recipient:b ~amount:overdraft_amount
          ~nonce:t.nonces.(a)
    in
    t.n_invalid <- t.n_invalid + 1;
    (tx, a)
  | `Self_pay ->
    (* Valid self-payment: consumes a nonce, must leave every balance
       unchanged (the inflation-bug regression traffic). *)
    let a = draw_account t in
    let tx = make_tx t ~sender:a ~recipient:a ~amount:t.cfg.amount ~nonce:t.nonces.(a) in
    t.nonces.(a) <- t.nonces.(a) + 1;
    t.n_self_pay <- t.n_self_pay + 1;
    remember t tx a;
    (tx, a)
  | `Valid ->
    let a = draw_account t in
    let b = if n = 1 then a else (a + 1 + int_below t (n - 1)) mod n in
    let tx = make_tx t ~sender:a ~recipient:b ~amount:t.cfg.amount ~nonce:t.nonces.(a) in
    t.nonces.(a) <- t.nonces.(a) + 1;
    t.n_valid <- t.n_valid + 1;
    remember t tx a;
    (tx, a)

let next_n (t : t) (k : int) : Transaction.t list =
  List.init k (fun _ -> fst (next t))

(* Square-wave burst modulation: the first [duty] fraction of each
   period runs at [mult] x the base rate. Interarrival times are
   exponential at the effective rate, so the stream is Poisson within
   each regime. *)
let interarrival (t : t) ~(now : float) ~(rate_per_s : float) : float =
  let rate =
    match t.cfg.burst with
    | None -> rate_per_s
    | Some b ->
      if b.period_s <= 0.0 then rate_per_s
      else begin
        let phase = Float.rem now b.period_s /. b.period_s in
        if phase < b.duty then rate_per_s *. b.mult else rate_per_s
      end
  in
  let rate = Float.max 1e-9 rate in
  let u = float01 t in
  -.Float.log (Float.max 1e-300 (1.0 -. u)) /. rate

let stats (t : t) : stats =
  {
    generated = t.generated;
    valid = t.n_valid;
    invalid = t.n_invalid;
    duplicate = t.n_duplicate;
    self_pay = t.n_self_pay;
  }

(* Genesis allocations for a synthetic population. *)
let allocations (t : t) ~(stake : int) : (string * int) list =
  Array.to_list (Array.map (fun pk -> (pk, stake)) t.pks)

let initial_balances (t : t) ~(stake : int) ~(shards : int) : Balances.t =
  Array.fold_left
    (fun acc pk -> Balances.credit acc pk stake)
    (Balances.create ~shards) t.pks
