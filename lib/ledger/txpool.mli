(** The pending-transaction pool (Figure 1): deduplicated by id,
    drained FIFO. Ids of committed transactions are retained (and
    deduplicated against) only until [expire] passes the commit-round
    watermark, so the pool stays bounded under sustained traffic. *)

type t

val create : unit -> t

val add : t -> Transaction.t -> bool
(** [true] iff the transaction was new. *)

val mem : t -> Transaction.t -> bool

val select : t -> max_bytes:int -> Transaction.t list
(** Like [take] but non-destructive: what block proposers use, since a
    losing proposal must not cost the pool its transactions. *)

val take : t -> max_bytes:int -> Transaction.t list
(** Remove and return pending transactions up to [max_bytes] of
    serialized size, oldest first. Ids are released too: an
    uncommitted taken transaction can re-enter via gossip. *)

val remove_committed : t -> round:int -> Transaction.t list -> unit
(** Drop the transactions committed by [round]'s block; their ids stay
    deduplicated until [expire] passes [round]. *)

val expire : t -> before_round:int -> unit
(** Evict committed ids from rounds below [before_round]. *)

val prune : t -> stale:(Transaction.t -> bool) -> int
(** Remove queued transactions satisfying [stale] (e.g. nonce already
    consumed on-chain); returns the number dropped. *)

val size : t -> int
val bytes : t -> int

val seen_ids : t -> int
(** Current size of the dedup table (pending + retained committed). *)
