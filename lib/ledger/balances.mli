(** Account state derived from a chain prefix: balances (the sortition
    weights of section 5.1) and per-key nonces, hash-partitioned into
    shards so block validation can check shards in parallel. Purely
    functional - fork branches share prefixes; the shard count never
    changes observable state. *)

type t

val empty : t
(** The empty state with the default shard count. *)

val create : shards:int -> t
(** Empty state partitioned into [shards] sub-maps (rounded up to a
    power of two, clamped to [1, 256]). *)

val shard_count : t -> int
val shard_of_key : t -> string -> int

val balance : t -> string -> int
val nonce : t -> string -> int
val total : t -> int
val credit : t -> string -> int -> t

type tx_error = [ `Bad_nonce of int * int | `Insufficient_balance of int * int ]

val pp_tx_error : Format.formatter -> tx_error -> unit

val apply_tx : t -> Transaction.t -> (t, tx_error) result
(** Validate (nonce, balance) and apply one payment. The debit lands
    before the credit is read, so a self-payment nets to zero instead
    of minting money. *)

val apply_all : t -> Transaction.t list -> (t, tx_error) result

val apply_block : ?parallel:bool -> t -> Transaction.t list -> (t, tx_error) result
(** Exactly [apply_all], but large blocks are validated shard-parallel
    (one domain per shard) with a conservative per-shard balance check
    and a sequential fallback for blocks that spend intra-block
    credits. Bit-identical results to [apply_all] in all cases. *)

val weights : t -> (string * int) list
(** All (account, balance) pairs, sorted by key regardless of shard
    count. *)

val holders : t -> int

val invariant : t -> bool
(** Money conservation: [total] equals the map sum and no balance is
    negative. *)

val chaos_selfpay_inflation : bool ref
(** Fault seeding for the simulation swarm: when set, [apply_tx]
    reintroduces the historical self-payment inflation bug (the credit
    reads the pre-debit balance, so paying yourself mints coins) that
    the conservation audit must then find. Test-only; defaults to
    [false]. *)
