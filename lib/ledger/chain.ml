(* The block store a user maintains. Because BA* can produce tentative
   consensus on different blocks under weak synchrony, the store is a
   tree: every accepted block is indexed by hash with a parent pointer,
   and the user tracks which leaf it currently extends. Balances after
   each block are cached so sortition weight lookups (which may look
   back several rounds, section 5.3) are O(log n).

   Safety-critical invariant maintained here: a block marked *final*
   at some round is the unique final block for that round, and the
   current tip always descends from every final block. *)

type entry = {
  block : Block.t;
  hash : string;
  parent : string;
  height : int;  (** number of blocks from genesis; equals the round *)
  balances_after : Balances.t;
  seed : string;  (** the sortition seed this block establishes for its round+1 *)
  mutable final : bool;
}

module Smap = Map.Make (String)

type t = {
  mutable entries : entry Smap.t;
  mutable tip : string;  (** hash of the block this user currently extends *)
  genesis_hash : string;
}

let create (genesis : Genesis.t) : t =
  let ghash = Genesis.hash genesis in
  let entry =
    {
      block = genesis.block;
      hash = ghash;
      parent = String.make 32 '\000';
      height = 0;
      balances_after = genesis.balances;
      seed = genesis.seed0;
      final = true;
    }
  in
  { entries = Smap.add ghash entry Smap.empty; tip = ghash; genesis_hash = ghash }

let find (t : t) (hash : string) : entry option = Smap.find_opt hash t.entries
let mem (t : t) (hash : string) : bool = Smap.mem hash t.entries
let tip (t : t) : entry = Smap.find t.tip t.entries
let genesis_entry (t : t) : entry = Smap.find t.genesis_hash t.entries

type add_error =
  [ `Unknown_parent
  | `Wrong_round of int * int
  | `Invalid_tx of Balances.tx_error
  | `Duplicate ]

let pp_add_error fmt = function
  | `Unknown_parent -> Format.fprintf fmt "unknown parent"
  | `Wrong_round (expected, got) ->
    Format.fprintf fmt "wrong round: expected %d, got %d" expected got
  | `Invalid_tx e -> Format.fprintf fmt "invalid tx: %a" Balances.pp_tx_error e
  | `Duplicate -> Format.fprintf fmt "duplicate block"

(* [derive_seed] computes the seed this block establishes: the block's
   own (verified) seed field, or H(parent_seed || round) for empty /
   seedless blocks (section 5.2). Seed *verification* is the caller's
   job (it needs the proposer VRF); here we only thread the value. *)
let derive_seed ~(parent_seed : string) (b : Block.t) : string =
  if String.equal b.header.seed "" then
    Algorand_crypto.Sha256.digest_concat
      [ "empty-seed"; parent_seed; string_of_int (Block.round b) ]
  else b.header.seed

let add (t : t) (b : Block.t) : (entry, add_error) result =
  let h = Block.hash b in
  if Smap.mem h t.entries then Error `Duplicate
  else begin
    match Smap.find_opt (Block.prev_hash b) t.entries with
    | None -> Error `Unknown_parent
    | Some parent ->
      if Block.round b <> parent.height + 1 then
        Error (`Wrong_round (parent.height + 1, Block.round b))
      else begin
        match Balances.apply_block parent.balances_after b.txs with
        | Error e -> Error (`Invalid_tx e)
        | Ok balances_after ->
          let entry =
            {
              block = b;
              hash = h;
              parent = parent.hash;
              height = parent.height + 1;
              balances_after;
              seed = derive_seed ~parent_seed:parent.seed b;
              final = false;
            }
          in
          t.entries <- Smap.add h entry t.entries;
          Ok entry
      end
  end

let set_tip (t : t) (hash : string) : unit =
  if not (Smap.mem hash t.entries) then invalid_arg "Chain.set_tip: unknown block";
  t.tip <- hash

let mark_final (t : t) (hash : string) : unit =
  match Smap.find_opt hash t.entries with
  | None -> invalid_arg "Chain.mark_final: unknown block"
  | Some e -> e.final <- true

(* Walk from [hash] back toward genesis, returning entries tip-first. *)
let ancestry (t : t) (hash : string) : entry list =
  let rec go h acc =
    match Smap.find_opt h t.entries with
    | None -> acc
    | Some e -> if e.height = 0 then e :: acc else go e.parent (e :: acc)
  in
  List.rev (go hash [])

(* The entry at [height] on the path from [hash] to genesis. *)
let ancestor_at (t : t) ~(hash : string) ~(height : int) : entry option =
  let rec go h =
    match Smap.find_opt h t.entries with
    | None -> None
    | Some e -> if e.height = height then Some e else if e.height < height then None else go e.parent
  in
  go hash

(* All current leaves (blocks with no children), i.e. fork tips. *)
let leaves (t : t) : entry list =
  let has_child = Hashtbl.create 16 in
  Smap.iter (fun _ e -> Hashtbl.replace has_child e.parent ()) t.entries;
  Smap.fold (fun h e acc -> if Hashtbl.mem has_child h then acc else e :: acc) t.entries []

(* The longest fork (by height, ties broken by hash for determinism) -
   the recovery protocol proposes this (section 8.2). *)
let longest_leaf (t : t) : entry =
  match leaves t with
  | [] -> assert false
  | first :: rest ->
    List.fold_left
      (fun best e ->
        if e.height > best.height || (e.height = best.height && String.compare e.hash best.hash < 0)
        then e
        else best)
      first rest

(* Does [ancestor] lie on the path from [hash] to genesis? *)
let descends_from (t : t) ~(hash : string) ~(ancestor : string) : bool =
  let rec go h =
    String.equal h ancestor
    ||
    match Smap.find_opt h t.entries with
    | None -> false
    | Some e -> e.height > 0 && go e.parent
  in
  go hash

let size (t : t) : int = Smap.cardinal t.entries

(* Structure-sharing copy: blocks, hashes and balance maps are
   immutable and shared with the original; entry records are fresh
   because [final] is mutable per holder. The population engine hands
   each materialized node a clone of the canonical prefix, so a round's
   worth of nodes costs O(rounds) entry records, not O(rounds) block
   copies. *)
let clone (t : t) : t =
  { entries = Smap.map (fun e -> { e with final = e.final }) t.entries;
    tip = t.tip;
    genesis_hash = t.genesis_hash }
