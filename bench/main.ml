(* The evaluation harness: regenerates every table and figure of the
   paper's section 10 (at simulation scale) plus microbenchmarks of the
   cryptographic and sortition primitives, and two ablations.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig5 fig7    # selected experiments
     SCALE=2 dune exec bench/main.exe -- fig5 # 2x the simulated users

   Experiments: micro micro-check fig3 fig4 fig5 fig6 fig7 fig8
                throughput related-work costs timeouts analysis
                ablation-committee ablation-pipeline ablation-fanout
                sim sim-check ledger ledger-check

   `micro` re-measures the crypto primitives and refreshes
   results/BENCH_crypto.json; `micro-check` is the CI smoke gate that
   fails (exit 1) when ed25519/verify regresses >2x vs the committed
   snapshot. `sim` sweeps the population engine to a million users and
   refreshes results/BENCH_sim.json; `sim-check` is its CI gate (100k
   users, fails on a >2x rounds/sec regression).

   The x-axes are scaled down from the paper's 1,000-VM deployment (see
   DESIGN.md section 2 and EXPERIMENTS.md): committee parameters stay at
   paper scale, user counts are simulation-sized. Expected *shapes*, not
   absolute values, are the reproduction target. *)

module Committee = Algorand_sortition.Committee
module Params = Algorand_ba.Params
module Harness = Algorand_core.Harness
module Node = Algorand_core.Node
module Certificate = Algorand_core.Certificate
module Metrics = Algorand_sim.Metrics
module Stats = Algorand_sim.Stats
module Nakamoto = Algorand_baselines.Nakamoto
open Algorand_crypto

let scale =
  match Sys.getenv_opt "SCALE" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 1)
  | None -> 1

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let pp_summary (s : Stats.summary) =
  Printf.sprintf "min=%6.2f p25=%6.2f med=%6.2f p75=%6.2f max=%6.2f (n=%d)" s.min s.p25
    s.median s.p75 s.max s.count

(* Each sweep also lands in results/<name>.csv for plotting. *)
let csv_dir = "results"

let csv_out (name : string) (header : string) (rows : string list) : unit =
  (try if not (Sys.file_exists csv_dir) then Sys.mkdir csv_dir 0o755 with Sys_error _ -> ());
  try
    let oc = open_out (Filename.concat csv_dir (name ^ ".csv")) in
    output_string oc (header ^ "\n");
    List.iter (fun r -> output_string oc (r ^ "\n")) rows;
    close_out oc
  with Sys_error _ -> ()

let check_safety name (r : Harness.result) =
  if r.safety.double_final <> [] then
    Printf.printf "!! SAFETY VIOLATION in %s: double-final rounds %s\n" name
      (String.concat "," (List.map string_of_int r.safety.double_final))

(* ------------------------------------------------------------------ *)
(* Microbenchmarks (Bechamel + manual loops for the heavy composites). *)
(* Emits results/BENCH_crypto.json; `micro-check` is the smoke-mode    *)
(* regression gate CI runs against the committed snapshot.             *)
(* ------------------------------------------------------------------ *)

(* Bechamel OLS estimate (ns/op) for one closure. *)
let bechamel_ns (name : string) (f : unit -> 'a) : float =
  let open Bechamel in
  let open Toolkit in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let test = Test.make ~name (Staged.stage f) in
  let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
  let analyzed = Analyze.all ols instance results in
  let out = ref Float.nan in
  Hashtbl.iter
    (fun _ r -> match Analyze.OLS.estimates r with Some [ ns ] -> out := ns | _ -> ())
    analyzed;
  !out

(* Wall-clock ns/op for operations too slow to hand to Bechamel. *)
let manual_ns ?(warmup = 2) ~iters (f : unit -> 'a) : float =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9

(* A batch of distinct-key signatures for verify_batch benchmarks. *)
let signature_batch n =
  List.init n (fun i ->
      let sk = Ed25519.generate ~seed:(Printf.sprintf "batch-bench-%d" i) in
      let msg = Printf.sprintf "batch msg %d" i in
      (Ed25519.public_key sk, msg, Ed25519.sign sk msg))

(* A certificate of ~2000 real votes (ed25519 + ECVRF sortition) plus
   the context to validate it: the committee-scale workload that batch
   verification exists for. Expected weighted votes = tau; user count
   and weights are chosen so ~2000 distinct voters win a seat. *)
let certificate_workload () =
  let sig_scheme = Signature_scheme.ed25519 and vrf_scheme = Vrf.ecvrf in
  let n_users = 2500 and w = 20 in
  let tau = 3800.0 in
  let total_weight = n_users * w in
  let seed = "bench-cert-seed" in
  let prev_hash = String.make 32 'p' in
  let block_hash = String.make 32 'b' in
  let params = { Params.paper with tau_step = tau } in
  let votes =
    List.filter_map
      (fun i ->
        let id =
          Algorand_core.Identity.generate ~sig_scheme ~vrf_scheme
            ~seed:(Printf.sprintf "cert-bench-%d" i)
        in
        Algorand_ba.Vote.make ~signer:id.signer ~prover:id.prover ~pk:id.pk ~seed ~tau
          ~w ~total_weight ~round:1 ~step:(Algorand_ba.Vote.Bin 1) ~prev_hash
          ~value:block_hash)
      (List.init n_users Fun.id)
  in
  let cert =
    Certificate.make ~round:1 ~step:(Algorand_ba.Vote.Bin 1) ~block_hash ~votes
  in
  let ctx : Algorand_ba.Vote.validation_ctx =
    {
      sig_scheme;
      vrf_scheme;
      sig_pk_of = Algorand_core.Identity.sig_pk;
      vrf_pk_of = Algorand_core.Identity.vrf_pk;
      seed;
      total_weight;
      weight_of = (fun _ -> w);
      last_block_hash = prev_hash;
      tau_of_step = (fun _ -> tau);
    }
  in
  (params, ctx, cert)

let bench_json = Filename.concat csv_dir "BENCH_crypto.json"

let write_bench_json (rows : (string * float) list) : unit =
  (try if not (Sys.file_exists csv_dir) then Sys.mkdir csv_dir 0o755 with Sys_error _ -> ());
  let oc = open_out bench_json in
  output_string oc "{\n";
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "  %S: %.0f%s\n" k v
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "}\n";
  close_out oc

(* Pull one numeric field out of a committed flat-JSON snapshot; the
   format is the flat object written above, so a string scan does. *)
let read_json_field ~(path : string) (key : string) : float option =
  try
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    let needle = Printf.sprintf "%S:" key in
    let rec find i =
      if i + String.length needle > String.length s then None
      else if String.sub s i (String.length needle) = needle then begin
        let j = ref (i + String.length needle) in
        while !j < String.length s && not (String.contains "0123456789.-" s.[!j]) do
          incr j
        done;
        let k = ref !j in
        while !k < String.length s && String.contains "0123456789.-eE+" s.[!k] do
          incr k
        done;
        float_of_string_opt (String.sub s !j (!k - !j))
      end
      else find (i + 1)
    in
    find 0
  with Sys_error _ | End_of_file -> None

let read_bench_field (key : string) : float option = read_json_field ~path:bench_json key

(* Pre-engine numbers, measured on this codebase at the seed commit
   (naive double-and-add everywhere, one-by-one certificate
   verification). Kept in the snapshot so the speedup is always
   visible next to the current numbers; DESIGN.md section "Fast-path
   elliptic-curve engine" shows the same table. *)
let pre_engine_baselines =
  [
    ("baseline_ed25519_sign_ns", 1_156_050.0);
    ("baseline_ed25519_verify_ns", 2_998_969.0);
    ("baseline_ecvrf_prove_ns", 4_568_727.0);
    ("baseline_ecvrf_verify_ns", 5_071_770.0);
    ("baseline_certificate_validate_per_vote_ns", 7_840_000.0);
  ]

let micro () =
  header "Microbenchmarks: crypto + sortition primitives";
  let kb = String.make 1024 'x' in
  let ed = Ed25519.generate ~seed:"bench" in
  let ed_pk = Ed25519.public_key ed in
  let ed_sig = Ed25519.sign ed kb in
  let ecvrf_prover, ecvrf_pk = Vrf.ecvrf.generate ~seed:"bench" in
  let _, ecvrf_proof = ecvrf_prover.prove "input" in
  let sim_prover, _ = Vrf.sim.generate ~seed:"bench" in
  let counter = ref 0 in
  let fresh () = incr counter; string_of_int !counter in
  let rows = ref [] in
  let record key ns =
    rows := (key, ns) :: !rows;
    Printf.printf "  %-40s %12.0f ns/op\n%!" key ns
  in
  record "sha256_1kib_ns" (bechamel_ns "sha256/1KiB" (fun () -> Sha256.digest kb));
  record "ed25519_sign_ns" (bechamel_ns "ed25519/sign" (fun () -> Ed25519.sign ed (fresh ())));
  record "ed25519_verify_ns"
    (bechamel_ns "ed25519/verify" (fun () ->
         Ed25519.verify ~public:ed_pk ~msg:kb ~signature:ed_sig));
  let batch = signature_batch 64 in
  record "ed25519_verify_batch_per_sig_ns"
    (manual_ns ~iters:10 (fun () ->
         if not (Ed25519.verify_batch batch) then failwith "batch must verify")
    /. 64.0);
  record "ecvrf_prove_ns" (bechamel_ns "ecvrf/prove" (fun () -> ecvrf_prover.prove (fresh ())));
  record "ecvrf_verify_ns"
    (bechamel_ns "ecvrf/verify" (fun () ->
         Vrf.ecvrf.verify ~pk:ecvrf_pk ~input:"input" ~proof:ecvrf_proof));
  record "simvrf_prove_ns"
    (bechamel_ns "simvrf/prove" (fun () -> sim_prover.prove (fresh ())));
  record "sortition_select_j_ns"
    (bechamel_ns "sortition/select_j" (fun () ->
         Algorand_sortition.Binomial.select_j ~frac:0.37 ~w:1000 ~p:0.125));
  (* Composite consensus-path costs: one vote, then a whole certificate
     (where the per-vote signature cost collapses into the batch). *)
  Printf.printf "  building ~2000-vote certificate workload...\n%!";
  let params, ctx, cert = certificate_workload () in
  let n_votes = List.length cert.votes in
  (match cert.votes with
  | v :: _ ->
    record "vote_validate_ns"
      (manual_ns ~iters:20 (fun () ->
           if Algorand_ba.Vote.validate ctx v = 0 then failwith "vote must validate"))
  | [] -> failwith "empty certificate workload");
  record "certificate_votes" (float_of_int n_votes);
  record "certificate_validate_per_vote_ns"
    (manual_ns ~warmup:1 ~iters:2 (fun () ->
         match Certificate.validate ~params ~ctx cert with
         | Ok () -> ()
         | Error e -> Format.kasprintf failwith "certificate invalid: %a" Certificate.pp_error e)
    /. float_of_int n_votes);
  let rows = List.rev !rows @ pre_engine_baselines in
  write_bench_json rows;
  Printf.printf "  -> %s\n" bench_json;
  let ratio num den =
    match (List.assoc_opt num rows, List.assoc_opt den rows) with
    | Some a, Some b when a > 0.0 -> Printf.sprintf "%.1fx" (b /. a)
    | _ -> "?"
  in
  Printf.printf "  speedup vs pre-engine baseline: verify %s, certificate/vote %s\n"
    (ratio "ed25519_verify_ns" "baseline_ed25519_verify_ns")
    (ratio "certificate_validate_per_vote_ns" "baseline_certificate_validate_per_vote_ns")

(* Smoke-mode regression gate (CI): re-measure single-signature
   verification with a short manual loop and fail when it has
   regressed more than 2x against the committed snapshot. Short
   enough for CI; the full `micro` refreshes the snapshot. *)
let micro_check () =
  header "Microbenchmark smoke check: ed25519/verify vs committed snapshot";
  match read_bench_field "ed25519_verify_ns" with
  | None ->
    Printf.printf "  no committed %s; run `bench/main.exe -- micro` first\n" bench_json;
    exit 1
  | Some committed ->
    let ed = Ed25519.generate ~seed:"bench" in
    let ed_pk = Ed25519.public_key ed in
    let msg = String.make 1024 'x' in
    let ed_sig = Ed25519.sign ed msg in
    let measured =
      manual_ns ~warmup:5 ~iters:50 (fun () ->
          if not (Ed25519.verify ~public:ed_pk ~msg ~signature:ed_sig) then
            failwith "verify must accept")
    in
    Printf.printf "  committed %12.0f ns/op\n  measured  %12.0f ns/op (%.2fx)\n%!"
      committed measured (measured /. committed);
    if measured > 2.0 *. committed then begin
      Printf.printf "  FAIL: ed25519/verify regressed more than 2x\n";
      exit 1
    end
    else Printf.printf "  OK\n"

(* ------------------------------------------------------------------ *)
(* Figure 3: committee size vs honest fraction.                        *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  header "Figure 3: committee size tau vs honest fraction h (violation <= 5e-9)";
  Printf.printf "  %-6s %-10s %-8s\n" "h" "tau_step" "T";
  List.iter
    (fun h ->
      let tau, t = Committee.required_committee_size ~h () in
      Printf.printf "  %-6.2f %-10d %-8.3f%s\n%!" h tau t
        (if h = 0.80 then "   <- paper's operating point (tau=2000, T=0.685)" else ""))
    [ 0.76; 0.78; 0.80; 0.82; 0.84; 0.86; 0.88; 0.90 ];
  let v = Committee.violation_probability ~h:0.8 ~tau:2000.0 ~t:0.685 in
  Printf.printf "  check: violation prob at (h=0.80, tau=2000, T=0.685) = %.2e\n" v

(* ------------------------------------------------------------------ *)
(* Figure 4: the implementation parameter table.                       *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  header "Figure 4: implementation parameters";
  let p = Params.paper in
  Printf.printf "  h            %.0f%%\n" (p.honest_fraction *. 100.0);
  Printf.printf "  R            %d rounds\n" p.seed_refresh_interval;
  Printf.printf "  tau_proposer %.0f\n" p.tau_proposer;
  Printf.printf "  tau_step     %.0f\n" p.tau_step;
  Printf.printf "  T_step       %.1f%%\n" (p.t_step *. 100.0);
  Printf.printf "  tau_final    %.0f\n" p.tau_final;
  Printf.printf "  T_final      %.0f%%\n" (p.t_final *. 100.0);
  Printf.printf "  MaxSteps     %d\n" p.max_steps;
  Printf.printf "  lambda_priority %.0f s\n" p.lambda_priority;
  Printf.printf "  lambda_block    %.0f s\n" p.lambda_block;
  Printf.printf "  lambda_step     %.0f s\n" p.lambda_step;
  Printf.printf "  lambda_stepvar  %.0f s\n" p.lambda_stepvar

(* ------------------------------------------------------------------ *)
(* Figures 5-8: simulated deployments.                                 *)
(* ------------------------------------------------------------------ *)

let base =
  {
    Harness.default with
    rounds = 3;
    block_bytes = 1_000_000;
    tx_rate_per_s = 1.0;
    rng_seed = 2017;
  }

let fig5 () =
  header "Figure 5: round latency vs number of users (1 MB blocks)";
  Printf.printf "  (paper: 5,000-50,000 users across 1,000 VMs; here: simulated processes)\n";
  Printf.printf "  %-8s %s\n" "users" "round completion time (s)";
  let rows =
    List.map
      (fun users ->
        let users = users * scale in
        let r = Harness.run { base with users } in
        check_safety "fig5" r;
        Printf.printf "  %-8d %s\n%!" users (pp_summary r.completion);
        let c = r.completion in
        Printf.sprintf "%d,%.3f,%.3f,%.3f,%.3f,%.3f" users c.min c.p25 c.median c.p75
          c.max)
      [ 25; 50; 75; 100 ]
  in
  csv_out "fig5" "users,min,p25,median,p75,max" rows

let fig6 () =
  header "Figure 6: scaling with constrained per-process bandwidth";
  Printf.printf
    "  (paper: 500 users/VM, crypto replaced by sleeps, lambda_step = 1 min;\n";
  Printf.printf "   here: 2 Mbit/s per process and the same lambda_step bump)\n";
  let params = { Params.paper with lambda_step = 60.0 } in
  Printf.printf "  %-8s %s\n" "users" "round completion time (s)";
  let rows =
    List.map
      (fun users ->
        let users = users * scale in
        let r =
          Harness.run
            { base with users; rounds = 2; params; bandwidth_bps = 2e6; tx_rate_per_s = 0.5 }
        in
        check_safety "fig6" r;
        Printf.printf "  %-8d %s\n%!" users (pp_summary r.completion);
        let c = r.completion in
        Printf.sprintf "%d,%.3f,%.3f,%.3f,%.3f,%.3f" users c.min c.p25 c.median c.p75
          c.max)
      [ 60; 120; 180; 240 ]
  in
  csv_out "fig6" "users,min,p25,median,p75,max" rows

let fig7 () =
  header "Figure 7: latency breakdown vs block size (50 users)";
  Printf.printf "  %-10s %-12s %-18s %-14s %-10s\n" "block" "proposal(s)" "BA* w/o final(s)"
    "final step(s)" "total(s)";
  let rows = ref [] in
  List.iter
    (fun block_bytes ->
      let r =
        Harness.run { base with users = 50 * scale; block_bytes; rounds = 2; tx_rate_per_s = 0.5 }
      in
      check_safety "fig7" r;
      let mean phase = Stats.mean (Metrics.phase_times r.harness.metrics phase) in
      let proposal = mean Metrics.Block_proposal in
      let ba = mean Metrics.Ba_no_final in
      let final = mean Metrics.Ba_final in
      let label =
        if block_bytes >= 1_000_000 then Printf.sprintf "%dMB" (block_bytes / 1_000_000)
        else Printf.sprintf "%dKB" (block_bytes / 1_000)
      in
      Printf.printf "  %-10s %-12.2f %-18.2f %-14.2f %-10.2f\n%!" label proposal ba final
        (proposal +. ba +. final);
      rows :=
        Printf.sprintf "%d,%.3f,%.3f,%.3f" block_bytes proposal ba final :: !rows)
    [ 1_000; 10_000; 100_000; 1_000_000; 2_000_000; 10_000_000 ];
  csv_out "fig7" "block_bytes,proposal_s,ba_s,final_s" (List.rev !rows)

let fig8 () =
  header "Figure 8: latency vs fraction of malicious users (equivocation attack)";
  Printf.printf "  %-12s %-10s %s\n" "malicious" "final rds" "round completion time (s)";
  let rows = ref [] in
  List.iter
    (fun pct ->
      let r =
        Harness.run
          {
            base with
            users = 50 * scale;
            rounds = 5;
            block_bytes = 500_000;
            malicious_fraction = float_of_int pct /. 100.0;
            attack = Harness.Equivocate;
            rng_seed = 31 + pct;
          }
      in
      check_safety "fig8" r;
      Printf.printf "  %-12s %-10d %s\n%!"
        (Printf.sprintf "%d%%" pct)
        r.final_rounds (pp_summary r.completion);
      let c = r.completion in
      rows :=
        Printf.sprintf "%d,%d,%.3f,%.3f,%.3f" pct r.final_rounds c.min c.median c.max
        :: !rows)
    [ 0; 5; 10; 15; 20 ];
  csv_out "fig8" "malicious_pct,final_rounds,min,median,max" (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Section 10.2: throughput vs the Bitcoin baseline.                   *)
(* ------------------------------------------------------------------ *)

let throughput () =
  header "Section 10.2: throughput (vs Bitcoin baseline)";
  let algorand block_bytes =
    let r =
      Harness.run { base with users = 50 * scale; block_bytes; rounds = 3; tx_rate_per_s = 0.5 }
    in
    check_safety "throughput" r;
    let mb_per_hour =
      float_of_int block_bytes /. 1e6 *. (3600.0 /. r.completion.median)
    in
    (r.completion.median, mb_per_hour)
  in
  let lat1, tp1 = algorand 1_000_000 in
  let lat10, tp10 = algorand 10_000_000 in
  let btc = Nakamoto.run { Nakamoto.bitcoin_default with duration_s = 20.0 *. 86_400.0 } in
  let btc_tp = btc.throughput_bytes_per_hour /. 1e6 in
  Printf.printf "  Algorand  1 MB blocks: %6.1f s/round  -> %8.1f MB/hour\n" lat1 tp1;
  Printf.printf "  Algorand 10 MB blocks: %6.1f s/round  -> %8.1f MB/hour\n" lat10 tp10;
  Printf.printf "  Bitcoin   1 MB /10min: %6.0f s confirm -> %8.1f MB/hour\n"
    btc.mean_confirmation_latency_s btc_tp;
  Printf.printf "  speedup (10 MB Algorand vs Bitcoin): %.0fx   (paper: 125x)\n"
    (tp10 /. btc_tp)

(* ------------------------------------------------------------------ *)
(* Section 2: related-work comparison table.                           *)
(* ------------------------------------------------------------------ *)

let related_work () =
  header "Section 2: Algorand vs fixed-server BFT vs Nakamoto";
  let module F = Algorand_baselines.Fixed_bft in
  let alg =
    Harness.run { base with users = 50 * scale; block_bytes = 10_000_000; rounds = 2; tx_rate_per_s = 0.5 }
  in
  check_safety "related-work" alg;
  let hb = F.run F.honey_badger_default in
  let btc = Nakamoto.run { Nakamoto.bitcoin_default with duration_s = 20.0 *. 86_400.0 } in
  Printf.printf "  %-28s %-14s %-16s %s\n" "system" "latency" "throughput" "notes";
  Printf.printf "  %-28s %-14s %-16s %s\n" "Algorand (10 MB blocks)"
    (Printf.sprintf "%.0f s" alg.completion.median)
    (Printf.sprintf "%.0f MB/h"
       (10.0 *. (3600.0 /. alg.completion.median)))
    "open membership, fresh committee per step";
  Printf.printf "  %-28s %-14s %-16s %s\n" "HoneyBadger-style fixed BFT"
    (Printf.sprintf "%.0f s" hb.mean_round_latency_s)
    (Printf.sprintf "%.0f MB/h" (hb.throughput_bytes_per_hour /. 1e6))
    "104 fixed servers (paper: ~5 min, ~200 KB/s)";
  Printf.printf "  %-28s %-14s %-16s %s\n" "Bitcoin (Nakamoto)"
    (Printf.sprintf "%.0f s" btc.mean_confirmation_latency_s)
    (Printf.sprintf "%.1f MB/h" (btc.throughput_bytes_per_hour /. 1e6))
    "6-block confirmation";
  (* The targeted-DoS contrast: fixed servers halt; Algorand degrades
     gracefully (fresh, secret committees). *)
  let hb_dosed = F.run { F.honey_badger_default with dos_servers = 36 } in
  let alg_dosed =
    Harness.run
      {
        base with
        users = 50 * scale;
        rounds = 2;
        block_bytes = 500_000;
        attack = Harness.Targeted_dos { fraction = 0.3; from_ = 0.0; until = 1e9 };
        tx_rate_per_s = 0.0;
      }
  in
  check_safety "related-work-dos" alg_dosed;
  Printf.printf "  under a 1/3 targeted DoS: fixed BFT halted=%b; Algorand committed %d/%d rounds\n"
    hb_dosed.halted
    (alg_dosed.final_rounds + alg_dosed.tentative_rounds)
    2

(* ------------------------------------------------------------------ *)
(* Section 10.3: CPU, bandwidth and storage costs.                     *)
(* ------------------------------------------------------------------ *)

let costs () =
  header "Section 10.3: costs of running Algorand";
  let r = Harness.run { base with users = 50 * scale; rounds = 2 } in
  check_safety "costs" r;
  let m = r.harness.metrics in
  let n = Array.length (Metrics.bytes_sent m) in
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
  let mbps a = mean a *. 8.0 /. r.sim_time /. 1e6 in
  Printf.printf "  bandwidth: %.2f Mbit/s sent, %.2f Mbit/s received per user (paper: ~10 Mbit/s)\n"
    (mbps (Metrics.bytes_sent m)) (mbps (Metrics.bytes_received m));
  (* Certificate sizes: measured (sim VRF) and projected at paper scale
     with ECVRF proof sizes. *)
  (match
     Array.to_list r.harness.nodes
     |> List.filter_map (fun node -> Node.certificate node ~round:1)
     |> fun l -> List.nth_opt l 0
   with
  | Some c ->
    Printf.printf "  certificate (measured, %d votes at sim scale): %d KB\n"
      (List.length c.votes)
      (Certificate.size_bytes c / 1024)
  | None -> Printf.printf "  certificate: none assembled\n");
  let quorum = Params.certificate_quorum Params.paper in
  let ecvrf_vote_bytes = 16 + 64 + 32 + Vrf.ecvrf.proof_length + 32 + 32 + 64 in
  Printf.printf
    "  certificate (projected at paper scale: %d votes x %d B): %d KB (paper: ~300 KB)\n"
    quorum ecvrf_vote_bytes
    (quorum * ecvrf_vote_bytes / 1024);
  Printf.printf "  storage per 1 MB block, certificate included, sharded 10 ways: %.0f KB\n"
    (Algorand_ledger.Storage.per_block_cost_bytes ~shards:10 ~block_bytes:1_000_000
       ~certificate_bytes:(quorum * ecvrf_vote_bytes)
    /. 1024.0);
  (* CPU: time one vote validation with the real crypto. *)
  let sig_scheme = Signature_scheme.ed25519 and vrf_scheme = Vrf.ecvrf in
  let id = Algorand_core.Identity.generate ~sig_scheme ~vrf_scheme ~seed:"cost" in
  let vctx : Algorand_ba.Vote.validation_ctx =
    {
      sig_scheme;
      vrf_scheme;
      sig_pk_of = Algorand_core.Identity.sig_pk;
      vrf_pk_of = Algorand_core.Identity.vrf_pk;
      seed = "s";
      total_weight = 1000;
      weight_of = (fun _ -> 1000);
      last_block_hash = String.make 32 'p';
      tau_of_step = (fun _ -> 2000.0);
    }
  in
  (match
     Algorand_ba.Vote.make ~signer:id.signer ~prover:id.prover ~pk:id.pk ~seed:"s"
       ~tau:2000.0 ~w:1000 ~total_weight:1000 ~round:1 ~step:(Algorand_ba.Vote.Bin 1)
       ~prev_hash:(String.make 32 'p') ~value:"v"
   with
  | Some v ->
    let t0 = Unix.gettimeofday () in
    let iters = 5 in
    for _ = 1 to iters do
      ignore (Algorand_ba.Vote.validate vctx v)
    done;
    Printf.printf "  CPU: one vote validation (ed25519 + ECVRF, pure OCaml): %.1f ms\n"
      ((Unix.gettimeofday () -. t0) /. float_of_int iters *. 1000.0)
  | None -> ())

(* ------------------------------------------------------------------ *)
(* Section 10.5: timeout parameter validation.                         *)
(* ------------------------------------------------------------------ *)

let timeouts () =
  header "Section 10.5: timeout parameters vs observed times";
  let r = Harness.run { base with users = 50 * scale; rounds = 3 } in
  check_safety "timeouts" r;
  let m = r.harness.metrics in
  let steps = Stats.summarize (Metrics.step_durations m) in
  let prio = Stats.summarize (Metrics.priority_gossip_times m) in
  let p = base.params in
  Printf.printf "  BA* step durations:        %s\n" (pp_summary steps);
  Printf.printf "    -> lambda_step = %.0fs bound holds: %b; p75-p25 = %.2fs vs lambda_stepvar = %.0fs\n"
    p.lambda_step
    (steps.p75 < p.lambda_step)
    (steps.p75 -. steps.p25) p.lambda_stepvar;
  Printf.printf "  priority gossip times:     %s\n" (pp_summary prio);
  Printf.printf "    -> lambda_priority = %.0fs bound holds: %b (paper measures ~1s)\n"
    p.lambda_priority
    (prio.max < p.lambda_priority +. p.lambda_stepvar)

(* ------------------------------------------------------------------ *)
(* Technical-report appendix analyses.                                 *)
(* ------------------------------------------------------------------ *)

let analysis () =
  header "Appendix analyses (technical report A, B.1, C.3 + section 8.3)";
  let module A = Algorand_ba.Analysis in
  Printf.printf "  B.1 proposers at tau=26: P(none) = %.2e, P(>70) = %.2e (paper: ~1e-11)\n"
    (A.no_proposer_probability ~tau:26.0)
    (A.too_many_proposers_probability ~tau:26.0 ~bound:70);
  Printf.printf "  C.3 steps: common case %d; worst-case expected %.1f (paper: 4 and 13)\n"
    A.common_case_steps
    (A.expected_worst_case_steps ~h:0.8);
  Printf.printf "  C.3 P(exceed MaxSteps=150) = %.2e\n"
    (A.max_steps_overflow_probability ~h:0.8 ~max_steps:150);
  Printf.printf "  A   blocks for an honest seed at F=1e-9: %d (logarithmic in 1/F)\n"
    (A.blocks_for_honest_seed ~h:0.8 ~failure:1e-9);
  Printf.printf
    "  8.3 certificate forgery per step at tau=2000: < 2^%.0f (paper: < 2^-166)\n"
    (A.log2_certificate_attack_per_step ~h:0.8 ~tau:2000.0 ~t:0.685)

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 4).                                    *)
(* ------------------------------------------------------------------ *)

let ablation_committee () =
  header "Ablation: committee size tau_step (latency vs violation probability)";
  Printf.printf "  %-10s %-14s %-14s %s\n" "tau_step" "viol. prob" "median lat(s)" "(threshold fixed at 0.685)";
  List.iter
    (fun tau ->
      let params = { Params.paper with tau_step = tau; tau_final = 2.0 *. tau } in
      let v = Committee.violation_probability ~h:0.8 ~tau ~t:0.685 in
      let r =
        Harness.run
          { base with users = 50 * scale; rounds = 2; params; block_bytes = 100_000; tx_rate_per_s = 0.0 }
      in
      check_safety "ablation-committee" r;
      Printf.printf "  %-10.0f %-14.2e %-14.2f\n%!" tau v r.completion.median)
    [ 100.0; 500.0; 2000.0; 4000.0 ]

let ablation_pipeline () =
  header "Ablation: final-step pipelining (section 10.2)";
  Printf.printf "  %-12s %-18s %-14s\n" "pipelining" "all-rounds done(s)" "final rounds";
  List.iter
    (fun pipeline_final ->
      let rounds = 4 in
      let r =
        Harness.run
          { base with users = 50 * scale; rounds; pipeline_final; block_bytes = 1_000_000 }
      in
      check_safety "ablation-pipeline" r;
      let last_done =
        List.fold_left
          (fun acc (rec_ : Metrics.round_record) ->
            if Float.is_nan rec_.final_done then acc else Float.max acc rec_.final_done)
          0.0 (Metrics.records r.harness.metrics)
      in
      Printf.printf "  %-12s %-18.2f %-14d\n%!"
        (if pipeline_final then "on" else "off")
        last_done r.final_rounds)
    [ false; true ]

let ablation_fanout () =
  header "Ablation: gossip fanout (dissemination vs bandwidth)";
  Printf.printf "  %-8s %-16s %-16s\n" "fanout" "median lat(s)" "MB sent/user";
  List.iter
    (fun fanout ->
      let r =
        Harness.run { base with users = 50 * scale; rounds = 2; fanout; block_bytes = 500_000 }
      in
      check_safety "ablation-fanout" r;
      let m = r.harness.metrics in
      let n = Array.length (Metrics.bytes_sent m) in
      let mb = Array.fold_left ( +. ) 0.0 (Metrics.bytes_sent m) /. float_of_int n /. 1e6 in
      Printf.printf "  %-8d %-16.2f %-16.1f\n%!" fanout r.completion.median mb)
    [ 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Figures 5-6 at paper-scale user counts: the population engine.      *)
(* ------------------------------------------------------------------ *)

let sim_bench_json = Filename.concat csv_dir "BENCH_sim.json"

(* Like [write_bench_json] but with fractional precision: rounds/sec at
   half a million users is well below 1. *)
let write_sim_json (rows : (string * float) list) : unit =
  (try if not (Sys.file_exists csv_dir) then Sys.mkdir csv_dir 0o755 with Sys_error _ -> ());
  let oc = open_out sim_bench_json in
  output_string oc "{\n";
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "  %S: %.4f%s\n" k v
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "}\n";
  close_out oc

(* Fixed committee parameters for the sweep: committee sizes stay
   constant while the population grows - the paper's core scaling claim
   (section 10.1). Scaled-down taus keep the materialized set (and the
   O(committee^2) direct-delivery traffic) small so the population
   sweep is sortition-bound, which is the cost that actually grows with
   the user count. *)
let sim_params = Params.scaled ~factor:0.01

let sim_config ~(users : int) ~(rounds : int) : Algorand_core.Population.config =
  {
    Algorand_core.Population.default with
    users;
    rounds;
    params = sim_params;
    block_bytes = 1_000_000;
    rng_seed = 2017;
  }

(* One sweep point: run, audit, and distill the numbers BENCH_sim
   tracks. *)
let sim_point ~(users : int) ~(rounds : int) :
    (string * float) list * string * Algorand_core.Population.result =
  let t0 = Unix.gettimeofday () in
  let r = Algorand_core.Population.run (sim_config ~users ~rounds) in
  let wall = Unix.gettimeofday () -. t0 in
  if not r.agreement then begin
    Printf.printf "!! population run at %d users failed its agreement audit\n" users;
    exit 1
  end;
  let stats = r.round_stats in
  let n_rounds = float_of_int (List.length stats) in
  let mean f = List.fold_left (fun a s -> a +. f s) 0.0 stats /. n_rounds in
  let latency = mean (fun (s : Algorand_core.Population.round_stat) -> s.latency_s) in
  let bytes_per_user =
    mean (fun (s : Algorand_core.Population.round_stat) -> s.modeled_bytes_per_user)
  in
  let rounds_per_s = float_of_int rounds /. wall in
  (* RSS proxy: the OCaml heap high-water mark. Process-global and
     monotone, so the sweep must visit user counts in ascending order
     for per-point numbers to mean anything. *)
  let top_heap_mb = float_of_int (Gc.quick_stat ()).top_heap_words *. 8e-6 in
  let key fmt = Printf.sprintf "sim_users_%d_%s" users fmt in
  let fields =
    [
      (key "rounds_per_s", rounds_per_s);
      (key "latency_s", latency);
      (key "events", float_of_int r.total_events);
      (key "peak_events", float_of_int r.peak_pending);
      (key "materialized", float_of_int r.max_materialized);
      (key "bytes_per_user", bytes_per_user);
      (key "top_heap_mb", top_heap_mb);
    ]
  in
  let lat_min =
    List.fold_left
      (fun a (s : Algorand_core.Population.round_stat) -> Float.min a s.latency_s)
      infinity stats
  and lat_max =
    List.fold_left
      (fun a (s : Algorand_core.Population.round_stat) -> Float.max a s.latency_s)
      0.0 stats
  in
  let csv_row =
    Printf.sprintf "%d,%.3f,%.3f,%.3f,%d,%d,%.0f,%.1f" users lat_min latency lat_max
      r.max_materialized r.peak_pending bytes_per_user top_heap_mb
  in
  Printf.printf
    "  %-9d lat=%6.2fs materialized=%-6d peak_ev=%-8d %8.0f B/user  %6.2f rounds/s  heap=%.0f MB\n%!"
    users latency r.max_materialized r.peak_pending bytes_per_user rounds_per_s
    top_heap_mb;
  (fields, csv_row, r)

let sim_csv_header = "users,lat_min,lat_mean,lat_max,materialized,peak_events,bytes_per_user,top_heap_mb"

let sim () =
  header "Figures 5-6 at paper scale: population-engine user sweep";
  Printf.printf
    "  (committee params fixed at tau_proposer=%.0f tau_step=%.0f tau_final=%.0f;\n"
    sim_params.tau_proposer sim_params.tau_step sim_params.tau_final;
  Printf.printf "   only sortition-selected users are materialized per round)\n";
  let rows = ref [] in
  Printf.printf "  Figure 5 (scale): latency vs users, 20 Mbit/s\n";
  let fig5_rows =
    List.map
      (fun users ->
        let fields, csv_row, _ = sim_point ~users ~rounds:3 in
        rows := !rows @ fields;
        csv_row)
      [ 5_000; 50_000; 100_000; 500_000; 1_000_000 ]
  in
  csv_out "fig5_scale" sim_csv_header fig5_rows;
  Printf.printf "  Figure 6 (scale): latency vs users, 2 Mbit/s, lambda_step = 1 min\n";
  let fig6_rows =
    List.map
      (fun users ->
        let t0 = Unix.gettimeofday () in
        let r =
          Algorand_core.Population.run
            {
              (sim_config ~users ~rounds:2) with
              bandwidth_bps = 2e6;
              params = { sim_params with lambda_step = 60.0 };
            }
        in
        let wall = Unix.gettimeofday () -. t0 in
        if not r.agreement then begin
          Printf.printf "!! fig6-scale population run at %d users failed its audit\n" users;
          exit 1
        end;
        let stats = r.round_stats in
        let lat acc f = List.fold_left f acc stats in
        let lat_min =
          lat infinity (fun a (s : Algorand_core.Population.round_stat) ->
              Float.min a s.latency_s)
        and lat_max =
          lat 0.0 (fun a (s : Algorand_core.Population.round_stat) ->
              Float.max a s.latency_s)
        in
        let lat_mean =
          lat 0.0 (fun a (s : Algorand_core.Population.round_stat) -> a +. s.latency_s)
          /. float_of_int (List.length stats)
        in
        rows := !rows @ [ (Printf.sprintf "sim_fig6_users_%d_latency_s" users, lat_mean) ];
        Printf.printf "  %-9d lat=%6.2fs (%.2f rounds/s wall)\n%!" users lat_mean
          (float_of_int 2 /. wall);
        Printf.sprintf "%d,%.3f,%.3f,%.3f,%d,%d,%.0f,%.1f" users lat_min lat_mean lat_max
          r.max_materialized r.peak_pending 0.0
          (float_of_int (Gc.quick_stat ()).top_heap_words *. 8e-6))
      [ 5_000; 50_000; 100_000; 500_000 ]
  in
  csv_out "fig6_scale" sim_csv_header fig6_rows;
  let rows =
    !rows
    @ [
        ("sim_max_users", 1_000_000.0);
        ("sim_sweep_rounds", 3.0);
        ("sim_tau_step", sim_params.tau_step);
        ("sim_tau_final", sim_params.tau_final);
      ]
  in
  write_sim_json rows;
  Printf.printf "  -> %s\n" sim_bench_json

(* CI smoke gate: one budgeted 100k-user run against the committed
   snapshot; fails (exit 1) when rounds/sec regresses more than 2x, or
   when the run loses agreement or determinism. *)
let sim_check () =
  header "Population-engine smoke check: 100k users vs committed snapshot";
  let committed =
    match read_json_field ~path:sim_bench_json "sim_users_100000_rounds_per_s" with
    | Some v -> v
    | None ->
      Printf.printf "  no committed %s; run `bench/main.exe -- sim` first\n" sim_bench_json;
      exit 1
  in
  let users = 100_000 and rounds = 5 in
  let t0 = Unix.gettimeofday () in
  let r = Algorand_core.Population.run (sim_config ~users ~rounds) in
  let wall = Unix.gettimeofday () -. t0 in
  if not r.agreement then begin
    Printf.printf "  FAIL: agreement audit failed\n";
    exit 1
  end;
  if List.length r.block_hashes <> rounds then begin
    Printf.printf "  FAIL: completed %d/%d rounds\n" (List.length r.block_hashes) rounds;
    exit 1
  end;
  let measured = float_of_int rounds /. wall in
  Printf.printf "  committed %8.4f rounds/s\n  measured  %8.4f rounds/s (%.2fx)\n%!"
    committed measured (committed /. measured);
  if measured < committed /. 2.0 then begin
    Printf.printf "  FAIL: population engine regressed more than 2x\n";
    exit 1
  end
  else Printf.printf "  OK (%d users, %d rounds, %.1fs wall)\n" users rounds wall

(* ------------------------------------------------------------------ *)
(* Sustained-TPS ledger benchmark: the sharded balance map under the   *)
(* hostile workload generator (million-account population, Zipf        *)
(* hot-key skew, invalid/duplicate/self-pay mixes), batch signature    *)
(* checking of block transactions, and light-client proof serving.     *)
(* Emits results/BENCH_ledger.json; `ledger-check` is its CI gate.     *)
(* ------------------------------------------------------------------ *)

module Balances = Algorand_ledger.Balances
module Workload = Algorand_ledger.Workload
module Transaction = Algorand_ledger.Transaction
module Lblock = Algorand_ledger.Block
module Lightclient = Algorand_core.Lightclient

let ledger_bench_json = Filename.concat csv_dir "BENCH_ledger.json"

let write_ledger_json (rows : (string * float) list) : unit =
  (try if not (Sys.file_exists csv_dir) then Sys.mkdir csv_dir 0o755 with Sys_error _ -> ());
  let oc = open_out ledger_bench_json in
  output_string oc "{\n";
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "  %S: %.2f%s\n" k v
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "}\n";
  close_out oc

(* A pre-generated workload stream: same (seed, mix, skew) - and hence
   the same transactions - for every shard count it is replayed
   against. *)
let ledger_stream ~(accounts : int) ~(zipf : float) ~(mix : Workload.mix)
    ~(n_txs : int) : Workload.t * Transaction.t array =
  let wl =
    Workload.create
      {
        Workload.accounts = Workload.Synthetic { n = accounts; scheme = Signature_scheme.sim };
        zipf_s = zipf;
        mix;
        burst = None;
        amount = 1;
        seed = 1009;
      }
  in
  (wl, Array.init n_txs (fun _ -> fst (Workload.next wl)))

(* One (shards, stream) point, both halves of the block path:
   - assembly: sequential per-transaction apply over the raw stream,
     filtering what does not apply (the proposer's dry run) and
     chunking survivors into blocks;
   - validation: [apply_block] over those blocks (per-shard parallel
     conservative pass with sequential fallback), which must reproduce
     the assembly-side final state. *)
type ledger_point = {
  lp_assembly_tps : float;  (** raw stream txs through the filter per second *)
  lp_validate_tps : float;  (** committed txs through apply_block per second *)
  lp_block_ms : float;  (** mean apply_block latency per block *)
  lp_applied : int;
  lp_rejected : int;
}

let ledger_point ?(parallel = true) ~(wl : Workload.t) ~(shards : int)
    ~(block_txs : int) (stream : Transaction.t array) : ledger_point =
  let b0 = Workload.initial_balances wl ~stake:1_000 ~shards in
  let blocks = ref [] and cur = ref [] and cur_n = ref 0 in
  let t0 = Unix.gettimeofday () in
  let st = ref b0 and applied = ref 0 and rejected = ref 0 in
  Array.iter
    (fun tx ->
      match Balances.apply_tx !st tx with
      | Ok st' ->
        st := st';
        incr applied;
        cur := tx :: !cur;
        incr cur_n;
        if !cur_n = block_txs then begin
          blocks := List.rev !cur :: !blocks;
          cur := [];
          cur_n := 0
        end
      | Error _ -> incr rejected)
    stream;
  if !cur <> [] then blocks := List.rev !cur :: !blocks;
  let assembly_wall = Unix.gettimeofday () -. t0 in
  let blocks = List.rev !blocks in
  let t1 = Unix.gettimeofday () in
  let st_v =
    List.fold_left
      (fun acc b ->
        match Balances.apply_block ~parallel acc b with
        | Ok acc' -> acc'
        | Error e ->
          Format.kasprintf failwith "filtered block must apply: %a" Balances.pp_tx_error e)
      b0 blocks
  in
  let validate_wall = Unix.gettimeofday () -. t1 in
  (* The money-supply audit on both final states: catching an inflation
     bug here is the whole point of running self-pays through. *)
  if not (Balances.invariant !st) || not (Balances.invariant st_v) then
    failwith "ledger bench: balance invariant violated";
  if Balances.total st_v <> Balances.total b0 then
    failwith "ledger bench: money supply changed";
  {
    lp_assembly_tps = float_of_int (Array.length stream) /. assembly_wall;
    lp_validate_tps = float_of_int !applied /. validate_wall;
    lp_block_ms =
      (if blocks = [] then 0.0
       else validate_wall /. float_of_int (List.length blocks) *. 1e3);
    lp_applied = !applied;
    lp_rejected = !rejected;
  }

(* Batch signature verification of a block's transactions (ed25519):
   the per-signature cost of one verify_batch equation vs one verify
   call per transaction, plus the bisection filter with a corruption. *)
let ledger_sig_rows () : (string * float) list =
  let scheme = Signature_scheme.ed25519 in
  let n_signers = 64 and n_txs = 256 in
  let signers =
    Array.init n_signers (fun i ->
        scheme.Signature_scheme.generate ~seed:(Printf.sprintf "ledger-sig-%d" i))
  in
  let txs =
    List.init n_txs (fun i ->
        let s = i mod n_signers in
        let signer, pk = signers.(s) in
        let _, recipient = signers.((s + 1) mod n_signers) in
        Transaction.make ~signer ~sender:pk ~recipient ~amount:1 ~nonce:(i / n_signers))
  in
  let per_tx_ns =
    manual_ns ~iters:5 (fun () ->
        List.iter
          (fun tx ->
            if not (Transaction.verify_signature ~scheme tx) then
              failwith "tx must verify")
          txs)
    /. float_of_int n_txs
  in
  let batch_ns =
    manual_ns ~iters:5 (fun () ->
        if not (Transaction.verify_batch ~scheme txs) then failwith "batch must verify")
    /. float_of_int n_txs
  in
  (* One corrupt transaction: the filter must reject exactly it. *)
  let corrupt = { (List.nth txs 37) with signature = String.make 64 '\000' } in
  let mixed = List.mapi (fun i tx -> if i = 37 then corrupt else tx) txs in
  let valid, rejected = Transaction.filter_valid_batch ~scheme mixed in
  if List.length valid <> n_txs - 1 || List.length rejected <> 1 then
    failwith "filter_valid_batch must isolate the corruption";
  Printf.printf
    "  block signature check (%d ed25519 txs): %8.0f ns/tx one-by-one, %8.0f ns/tx \
     batched (%.1fx)\n%!"
    n_txs per_tx_ns batch_ns (per_tx_ns /. batch_ns);
  [
    ("ledger_sig_per_tx_verify_ns", per_tx_ns);
    ("ledger_sig_batch_per_tx_ns", batch_ns);
    ("ledger_sig_batch_speedup_x", per_tx_ns /. batch_ns);
  ]

(* Light-client proof serving under load: k proofs over one hot block,
   naive per-request tree rebuild vs the caching server. *)
let ledger_lightclient_rows () : (string * float) list =
  let signer, pk = Signature_scheme.sim.Signature_scheme.generate ~seed:"lc-bench" in
  let txs =
    List.init 4096 (fun i ->
        Transaction.make ~signer ~sender:pk ~recipient:pk ~amount:1 ~nonce:i)
  in
  let block = { (Lblock.empty ~round:1 ~prev_hash:(String.make 32 'p')) with txs } in
  let ids = Array.of_list (List.map Transaction.id txs) in
  let n_queries = 200 in
  let query i = ids.((i * 17) mod Array.length ids) in
  let naive_s =
    manual_ns ~warmup:1 ~iters:1 (fun () ->
        for i = 0 to n_queries - 1 do
          if Lblock.prove_tx block ~tx_id:(query i) = None then failwith "must prove"
        done)
    /. 1e9
  in
  let server = Lightclient.create_server () in
  let served_s =
    manual_ns ~warmup:1 ~iters:1 (fun () ->
        for i = 0 to n_queries - 1 do
          match Lightclient.serve_proof server ~block ~tx_id:(query i) with
          | Some (s, proof) ->
            if not (Lblock.summary_contains s ~tx_id:(query i) proof) then
              failwith "served proof must verify"
          | None -> failwith "must serve"
        done)
    /. 1e9
  in
  let naive_ps = float_of_int n_queries /. naive_s in
  let served_ps = float_of_int n_queries /. served_s in
  Printf.printf
    "  light-client serving (4096-tx block, %d queries): %8.0f proofs/s naive, %8.0f \
     proofs/s cached tree (%.0fx)\n%!"
    n_queries naive_ps served_ps (served_ps /. naive_ps);
  [
    ("lightclient_naive_proofs_per_s", naive_ps);
    ("lightclient_server_proofs_per_s", served_ps);
  ]

(* The gate-scale point, shared between `ledger` (which commits its
   result) and `ledger-check` (which re-measures and compares). *)
let ledger_check_point () : ledger_point =
  let wl, stream =
    ledger_stream ~accounts:100_000 ~zipf:1.1 ~mix:Workload.hostile ~n_txs:30_000
  in
  ledger_point ~wl ~shards:8 ~block_txs:1_024 stream

let ledger () =
  header "Sustained-TPS ledger: sharded accounts under the hostile workload";
  let accounts = 1_000_000 and n_txs = 200_000 and block_txs = 1_024 in
  let zipf = 1.1 in
  Printf.printf
    "  (%d accounts, %d-tx stream, Zipf %.1f hot-key skew, %d-tx blocks)\n%!" accounts
    n_txs zipf block_txs;
  let rows = ref [] and csv_rows = ref [] in
  let mixes = [ ("clean", Workload.clean); ("hostile", Workload.hostile) ] in
  List.iter
    (fun (mix_name, mix) ->
      Printf.printf "  generating %s stream...\n%!" mix_name;
      let wl, stream = ledger_stream ~accounts ~zipf ~mix ~n_txs in
      List.iter
        (fun shards ->
          let p = ledger_point ~wl ~shards ~block_txs stream in
          Printf.printf
            "  %-8s shards=%-3d assembly %8.0f tx/s  validate %8.0f tx/s  %6.2f \
             ms/block  (%d applied, %d rejected)\n%!"
            mix_name shards p.lp_assembly_tps p.lp_validate_tps p.lp_block_ms
            p.lp_applied p.lp_rejected;
          let key fmt = Printf.sprintf "ledger_%s_shards%d_%s" fmt shards mix_name in
          rows :=
            !rows
            @ [
                (key "tps_assembly", p.lp_assembly_tps);
                (key "tps_validate", p.lp_validate_tps);
                (key "block_ms", p.lp_block_ms);
              ];
          csv_rows :=
            !csv_rows
            @ [
                Printf.sprintf "%s,%d,%d,%.0f,%.0f,%.3f,%d,%d" mix_name shards accounts
                  p.lp_assembly_tps p.lp_validate_tps p.lp_block_ms p.lp_applied
                  p.lp_rejected;
              ])
        [ 1; 8; 64 ])
    mixes;
  (* Parallel vs sequential validation at the default shard count. *)
  let wl, stream = ledger_stream ~accounts ~zipf ~mix:Workload.hostile ~n_txs in
  let seq = ledger_point ~parallel:false ~wl ~shards:8 ~block_txs stream in
  Printf.printf "  hostile  shards=8   validate %8.0f tx/s sequential (no domains)\n%!"
    seq.lp_validate_tps;
  rows := !rows @ [ ("ledger_tps_validate_shards8_hostile_seq", seq.lp_validate_tps) ];
  rows := !rows @ ledger_sig_rows ();
  rows := !rows @ ledger_lightclient_rows ();
  Printf.printf "  gate-scale point (100k accounts, 30k txs, shards=8, hostile)...\n%!";
  let gate = ledger_check_point () in
  Printf.printf "  gate      validate %8.0f tx/s\n%!" gate.lp_validate_tps;
  rows :=
    !rows
    @ [
        ("ledger_check_tps_validate", gate.lp_validate_tps);
        ("ledger_accounts", float_of_int accounts);
        ("ledger_stream_txs", float_of_int n_txs);
        ("ledger_block_txs", float_of_int block_txs);
        ("ledger_zipf_s", zipf);
      ];
  csv_out "ledger_tps" "mix,shards,accounts,assembly_tps,validate_tps,block_ms,applied,rejected"
    !csv_rows;
  write_ledger_json !rows;
  Printf.printf "  -> %s\n" ledger_bench_json

(* CI smoke gate: re-measure the gate-scale point and fail (exit 1) on
   a >2x validate-TPS regression against the committed snapshot; the
   point itself re-runs the conservation/invariant audits. *)
let ledger_check () =
  header "Ledger smoke check: 100k-account hostile workload vs committed snapshot";
  let committed =
    match read_json_field ~path:ledger_bench_json "ledger_check_tps_validate" with
    | Some v -> v
    | None ->
      Printf.printf "  no committed %s; run `bench/main.exe -- ledger` first\n"
        ledger_bench_json;
      exit 1
  in
  let p = ledger_check_point () in
  Printf.printf "  committed %10.0f tx/s\n  measured  %10.0f tx/s (%.2fx)\n%!" committed
    p.lp_validate_tps
    (committed /. p.lp_validate_tps);
  if p.lp_validate_tps < committed /. 2.0 then begin
    Printf.printf "  FAIL: ledger validate path regressed more than 2x\n";
    exit 1
  end
  else
    Printf.printf "  OK (%d applied, %d rejected, conservation + invariant hold)\n"
      p.lp_applied p.lp_rejected

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("micro", micro);
    ("micro-check", micro_check);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("throughput", throughput);
    ("related-work", related_work);
    ("costs", costs);
    ("timeouts", timeouts);
    ("analysis", analysis);
    ("ablation-committee", ablation_committee);
    ("ablation-pipeline", ablation_pipeline);
    ("ablation-fanout", ablation_fanout);
    ("sim", sim);
    ("sim-check", sim_check);
    ("ledger", ledger);
    ("ledger-check", ledger_check);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Printf.printf "unknown experiment %S; available: %s\n" name
          (String.concat " " (List.map fst experiments)))
    requested;
  Printf.printf "\n(total wall time: %.1f s)\n" (Unix.gettimeofday () -. t0)
