(** Poisson distribution, log space. Used by the committee-size
    analysis of section 7.5 (the W -> infinity limit of binomial
    sortition). *)

val log_pmf : k:int -> mean:float -> float
val pmf : k:int -> mean:float -> float

val cdf_table : mean:float -> kmax:int -> float array
(** Entry [k] is P(X <= k). *)

val cdf : k:int -> mean:float -> float

val sf : k:int -> mean:float -> float
(** Upper tail P(X > k), summed directly so far-tail values (down to
    1e-300) keep full relative precision. *)
