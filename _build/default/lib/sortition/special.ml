(* Special functions needed by the sortition numerics.

   log_gamma uses the Stirling series with an argument shift: for
   x < 10 we apply ln Gamma(x) = ln Gamma(x+1) - ln x repeatedly, then
   expand. All coefficients are simple rationals (Bernoulli terms), so
   nothing here is a transcribed magic constant. Accuracy is ~1e-12,
   far beyond what the 5e-9 violation-probability computation needs. *)

let half_log_two_pi = 0.5 *. log (2.0 *. Float.pi)

let log_gamma (x : float) : float =
  if x <= 0.0 then invalid_arg "Special.log_gamma: requires x > 0";
  let rec shift x acc = if x < 10.0 then shift (x +. 1.0) (acc -. log x) else (x, acc) in
  let x, acc = shift x 0.0 in
  let inv = 1.0 /. x in
  let inv2 = inv *. inv in
  let series =
    inv /. 12.0 *. (1.0 -. (inv2 /. 30.0 *. (1.0 -. (inv2 *. 2.0 /. 7.0))))
  in
  acc +. (((x -. 0.5) *. log x) -. x +. half_log_two_pi +. series)

let log_factorial (n : int) : float =
  if n < 0 then invalid_arg "Special.log_factorial";
  log_gamma (float_of_int n +. 1.0)

(* log of the binomial coefficient C(n, k). *)
let log_choose ~(n : int) ~(k : int) : float =
  if k < 0 || k > n then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)
