lib/sortition/committee.ml: Array Poisson
