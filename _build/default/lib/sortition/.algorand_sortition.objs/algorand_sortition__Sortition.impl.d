lib/sortition/sortition.ml: Algorand_crypto Binomial Char Sha256 String Vrf
