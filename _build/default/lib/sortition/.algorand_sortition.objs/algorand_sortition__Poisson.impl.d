lib/sortition/poisson.ml: Array Special
