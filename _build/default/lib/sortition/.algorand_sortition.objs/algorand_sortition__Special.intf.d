lib/sortition/special.mli:
