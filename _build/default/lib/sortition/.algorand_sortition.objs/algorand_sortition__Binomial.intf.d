lib/sortition/binomial.mli:
