lib/sortition/poisson.mli:
