lib/sortition/sortition.mli: Algorand_crypto Vrf
