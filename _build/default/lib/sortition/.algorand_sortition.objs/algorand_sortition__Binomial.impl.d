lib/sortition/binomial.ml: Special
