lib/sortition/committee.mli:
