lib/sortition/special.ml: Float
