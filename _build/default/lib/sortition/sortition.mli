(** Cryptographic sortition (Algorithms 1 and 2 of the paper).

    A user with weight [w] out of a total [W] evaluates a VRF on
    [seed||role] and maps the hash through the binomial CDF of
    B(.; w, tau/W); the result [j] is how many of the user's
    "sub-users" are selected for the role. Splitting weight across
    Sybil identities leaves the selected-count distribution unchanged
    (binomial additivity, section 5.1). *)

open Algorand_crypto

type selection = {
  vrf_hash : string;  (** VRF output; also the priority source (section 6) *)
  vrf_proof : string;
  j : int;  (** number of selected sub-users; 0 = not selected *)
}

val hash_fraction : string -> float
(** [hash / 2{^hashlen}] using the top 53 bits. *)

val vrf_input : seed:string -> role:string -> string

val select :
  prover:Vrf.prover ->
  seed:string ->
  tau:float ->
  role:string ->
  w:int ->
  total_weight:int ->
  selection
(** Algorithm 1. @raise Invalid_argument on nonsensical weights. *)

val verify :
  scheme:Vrf.scheme ->
  pk:string ->
  vrf_hash:string ->
  vrf_proof:string ->
  seed:string ->
  tau:float ->
  role:string ->
  w:int ->
  total_weight:int ->
  int
(** Algorithm 2: the verified number of selected sub-users, or 0 if the
    proof is invalid. *)

val sub_user_priority : vrf_hash:string -> index:int -> string
(** H(vrf_hash || index): the block-proposal priority of one sub-user. *)

val best_priority : vrf_hash:string -> j:int -> string option
(** Highest sub-user priority, or [None] when [j = 0]. *)
