(* Committee-size analysis (section 7.5 / Figure 3).

   Model: committee members are drawn by sortition with expected size
   tau from a large population in which a weighted fraction h is
   honest. In the W -> infinity limit the honest membership count g and
   the byzantine count b are independent Poisson variables with means
   h*tau and (1-h)*tau.

   BA* needs, at every step,
     liveness:  g > T*tau            (honest votes alone cross the threshold)
     safety:    g/2 + b <= T*tau     (no two values can both cross it)

   For a candidate (tau, T) the violation probability is bounded by
     P(g <= T*tau) + P(g/2 + b > T*tau)
   and Figure 3 plots the smallest tau for which some T keeps this
   below 5e-9.

   Distribution tables (pmf, prefix and suffix sums) are computed once
   per (h, tau) and shared across the threshold scan, keeping the
   binary search over tau fast. *)

let default_violation_target = 5e-9

type tables = {
  tau : float;
  cdf_g : float array;  (** cdf_g.(k) = P(g <= k) *)
  pmf_g : float array;
  sf_b : float array;  (** sf_b.(k) = P(b > k) *)
  g_hi : int;
  b_hi : int;
}

let make_tables ~(h : float) ~(tau : float) : tables =
  let mean_g = h *. tau and mean_b = (1.0 -. h) *. tau in
  let hi mean = int_of_float (mean +. (40.0 *. sqrt mean)) + 20 in
  let g_hi = hi mean_g and b_hi = hi mean_b in
  let pmf mean k = Poisson.pmf ~k ~mean in
  let pmf_g = Array.init (g_hi + 1) (pmf mean_g) in
  let cdf_g = Array.make (g_hi + 1) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun k p ->
      acc := !acc +. p;
      cdf_g.(k) <- min 1.0 !acc)
    pmf_g;
  (* Suffix sums, smallest terms first for accuracy. *)
  let pmf_b = Array.init (b_hi + 1) (pmf mean_b) in
  let sf_b = Array.make (b_hi + 2) 0.0 in
  for k = b_hi downto 0 do
    sf_b.(k) <- sf_b.(k + 1) +. pmf_b.(k)
  done;
  (* sf_b.(k) currently holds P(b >= k); shift to P(b > k). *)
  let sf_gt = Array.init (b_hi + 2) (fun k -> if k + 1 <= b_hi + 1 then sf_b.(k + 1) else 0.0) in
  { tau; cdf_g; pmf_g; sf_b = sf_gt; g_hi; b_hi }

(* P(g <= T*tau). *)
let liveness_failure_t (tb : tables) ~(t : float) : float =
  let threshold = int_of_float (t *. tb.tau) in
  if threshold < 0 then 0.0 else tb.cdf_g.(min threshold tb.g_hi)

(* P(g/2 + b > T*tau). *)
let safety_failure_t (tb : tables) ~(t : float) : float =
  let acc = ref 0.0 in
  for g = 0 to tb.g_hi do
    let budget = (t *. tb.tau) -. (float_of_int g /. 2.0) in
    let tail =
      if budget < 0.0 then 1.0
      else begin
        let k = int_of_float budget in
        if k > tb.b_hi then 0.0 else tb.sf_b.(k)
      end
    in
    acc := !acc +. (tb.pmf_g.(g) *. tail)
  done;
  !acc

let violation_t (tb : tables) ~(t : float) : float =
  liveness_failure_t tb ~t +. safety_failure_t tb ~t

(* Convenience single-shot forms. *)
let liveness_failure ~(h : float) ~(tau : float) ~(t : float) : float =
  liveness_failure_t (make_tables ~h ~tau) ~t

let safety_failure ~(h : float) ~(tau : float) ~(t : float) : float =
  safety_failure_t (make_tables ~h ~tau) ~t

let violation_probability ~(h : float) ~(tau : float) ~(t : float) : float =
  violation_t (make_tables ~h ~tau) ~t

(* Best threshold T for a given tau: scan a grid; liveness failure
   increases with T while safety failure decreases, so the minimum of
   their sum is found reliably by a grid. *)
let best_threshold ~(h : float) ~(tau : float) : float * float =
  let tb = make_tables ~h ~tau in
  let best_t = ref 0.0 and best_v = ref infinity in
  let steps = 120 in
  for i = 0 to steps do
    let t = 0.55 +. (float_of_int i *. (0.40 /. float_of_int steps)) in
    let v = violation_t tb ~t in
    if v < !best_v then begin
      best_v := v;
      best_t := t
    end
  done;
  (!best_t, !best_v)

(* Smallest expected committee size tau meeting the violation target at
   honest fraction h, with the T that achieves it. Binary search over
   tau: the violation probability decreases in tau. *)
let required_committee_size ?(target = default_violation_target) ~(h : float) () :
    int * float =
  if h <= 2.0 /. 3.0 then invalid_arg "Committee.required_committee_size: need h > 2/3";
  let feasible tau = snd (best_threshold ~h ~tau:(float_of_int tau)) <= target in
  let rec grow hi = if feasible hi then hi else grow (hi * 2) in
  let hi = grow 128 in
  let rec bisect lo hi =
    (* invariant: not (feasible lo), feasible hi *)
    if hi - lo <= 1 then hi
    else begin
      let mid = (lo + hi) / 2 in
      if feasible mid then bisect lo mid else bisect mid hi
    end
  in
  let tau = if feasible 1 then 1 else bisect 1 hi in
  let t, _ = best_threshold ~h ~tau:(float_of_int tau) in
  (tau, t)

(* The final-step parameters must keep the *safety* failure negligible
   on their own (section 7.5: tau_final = 10,000, T_final = 0.74). *)
let final_step_violation ~(h : float) ~(tau : float) ~(t : float) : float =
  safety_failure ~h ~tau ~t
