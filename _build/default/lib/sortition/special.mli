(** Special functions for the sortition numerics. *)

val log_gamma : float -> float
(** Stirling-series log-Gamma with argument shifting; accurate to
    ~1e-12 for x > 0. @raise Invalid_argument for x <= 0. *)

val log_factorial : int -> float

val log_choose : n:int -> k:int -> float
(** log C(n, k); [neg_infinity] outside 0 <= k <= n. *)
