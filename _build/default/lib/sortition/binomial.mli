(** Binomial distribution B(k; n, p) in log space, numerically stable
    across sortition's extreme regimes (n up to millions of currency
    units, p down to 1e-6). *)

val log_pmf : k:int -> n:int -> p:float -> float
val pmf : k:int -> n:int -> p:float -> float

val cdf : k:int -> n:int -> p:float -> float
(** [cdf ~k ~n ~p] is P(X <= k). *)

val select_j : frac:float -> w:int -> p:float -> int
(** The interval search at the heart of Algorithms 1-2: the number of
    selected sub-users [j] such that [frac] falls in
    [\[cdf(j-1), cdf(j))]. [frac] is the VRF hash divided by
    2{^hashlen}; [w] the user's weight; [p = tau/W]. *)
