(* Binomial distribution B(k; w, p), computed in log space so that the
   extreme regimes of sortition (w up to millions of currency units,
   p = tau/W down to 1e-6) stay numerically stable. *)

let log_pmf ~(k : int) ~(n : int) ~(p : float) : float =
  if k < 0 || k > n then neg_infinity
  else if p <= 0.0 then if k = 0 then 0.0 else neg_infinity
  else if p >= 1.0 then if k = n then 0.0 else neg_infinity
  else
    Special.log_choose ~n ~k
    +. (float_of_int k *. log p)
    +. (float_of_int (n - k) *. log1p (-.p))

let pmf ~k ~n ~p = exp (log_pmf ~k ~n ~p)

let cdf ~(k : int) ~(n : int) ~(p : float) : float =
  if k < 0 then 0.0
  else if k >= n then 1.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to k do
      acc := !acc +. pmf ~k:i ~n ~p
    done;
    min 1.0 !acc
  end

(* The interval search at the heart of Algorithm 1 / Algorithm 2:
   find j such that frac lies in
     [ sum_{k<j} B(k; w, p),  sum_{k<=j} B(k; w, p) ).
   Equivalently: the smallest j with frac < cdf(j). The paper's interval
   notation starts the first interval at B(0); the standard reading
   (and the one the reference implementation uses) assigns j = 0 to
   frac < B(0), which is what we implement.

   The scan is O(j): B(0) is computed once and the recurrence
   B(k+1) = B(k) * (w-k)/(k+1) * p/(1-p) advances the term. When w*p is
   large enough that B(0) underflows, we restart the accumulation from
   the distribution mode in log space. *)
let select_j ~(frac : float) ~(w : int) ~(p : float) : int =
  if w = 0 || p <= 0.0 then 0
  else if p >= 1.0 then w
  else begin
    let log_b0 = float_of_int w *. log1p (-.p) in
    let ratio = p /. (1.0 -. p) in
    if log_b0 > -700.0 then begin
      (* Common case: direct accumulation from k = 0. *)
      let term = ref (exp log_b0) in
      let acc = ref !term in
      let j = ref 0 in
      while frac >= !acc && !j < w do
        let k = !j in
        term := !term *. (float_of_int (w - k) /. float_of_int (k + 1)) *. ratio;
        acc := !acc +. !term;
        incr j
      done;
      !j
    end
    else begin
      (* Heavy-selection regime (w*p >> 1): walk outward from the mode.
         Below-mode mass up to k is 1 - sum_{i>k}; we accumulate the
         full pmf over a +-20 sigma window around the mode, which holds
         all representable mass. *)
      let mean = float_of_int w *. p in
      let sigma = sqrt (mean *. (1.0 -. p)) in
      let lo = max 0 (int_of_float (mean -. (20.0 *. sigma))) in
      let hi = min w (int_of_float (mean +. (20.0 *. sigma)) + 1) in
      (* Mass below the window is negligible (< 1e-80) but must still
         count toward the cdf; treat it as already accumulated. *)
      let acc = ref 0.0 in
      let j = ref lo in
      let found = ref false in
      let k = ref lo in
      while (not !found) && !k <= hi do
        acc := !acc +. exp (log_pmf ~k:!k ~n:w ~p);
        if frac < !acc then begin
          j := !k;
          found := true
        end;
        incr k
      done;
      if !found then !j else hi
    end
  end
