(* Poisson distribution, log-space. The committee-size analysis of
   section 7.5 models honest/byzantine committee membership counts as
   Poisson (the W -> infinity limit of binomial sortition), matching
   the computation behind Figure 3. *)

let log_pmf ~(k : int) ~(mean : float) : float =
  if k < 0 then neg_infinity
  else if mean <= 0.0 then if k = 0 then 0.0 else neg_infinity
  else (float_of_int k *. log mean) -. mean -. Special.log_factorial k

let pmf ~k ~mean = exp (log_pmf ~k ~mean)

(* cdf table: entry k is P(X <= k), for k in 0..kmax. *)
let cdf_table ~(mean : float) ~(kmax : int) : float array =
  let t = Array.make (kmax + 1) 0.0 in
  let acc = ref 0.0 in
  for k = 0 to kmax do
    acc := !acc +. pmf ~k ~mean;
    t.(k) <- min 1.0 !acc
  done;
  t

let cdf ~(k : int) ~(mean : float) : float =
  if k < 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to k do
      acc := !acc +. pmf ~k:i ~mean
    done;
    min 1.0 !acc
  end

(* Upper tail P(X > k). Computed by direct summation from k+1 upward
   (not 1 - cdf, which loses all precision in the far tail). *)
let sf ~(k : int) ~(mean : float) : float =
  if k < 0 then 1.0
  else begin
    let sigma = sqrt mean in
    let hi = int_of_float (mean +. (40.0 *. sigma)) + 20 in
    if k >= hi then 0.0
    else begin
      let acc = ref 0.0 in
      (* Sum smallest terms first for accuracy. *)
      for i = hi downto k + 1 do
        acc := !acc +. pmf ~k:i ~mean
      done;
      !acc
    end
  end
